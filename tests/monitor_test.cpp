// Tests for the reliability-monitoring stack: VAE training and ELBO
// semantics, SPSA on analytic objectives, likelihood-regret separation of
// in- vs out-of-distribution inputs, STARNet trust gating, LoRA-based
// adaptation, and trust-gated fusion.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>

#include "monitor/fusion.hpp"
#include "monitor/likelihood_regret.hpp"
#include "monitor/spsa.hpp"
#include "monitor/starnet.hpp"
#include "monitor/vae.hpp"
#include "util/check.hpp"
#include "util/stats.hpp"

namespace s2a::monitor {
namespace {

// Clean data: a correlated 2-mode Gaussian mixture in `dim` dimensions.
std::vector<std::vector<double>> make_clean_data(int n, int dim, Rng& rng) {
  std::vector<std::vector<double>> data;
  for (int i = 0; i < n; ++i) {
    std::vector<double> x(static_cast<std::size_t>(dim));
    const double mode = rng.bernoulli(0.5) ? 1.0 : -1.0;
    for (int d = 0; d < dim; ++d)
      x[static_cast<std::size_t>(d)] =
          mode * (d % 2 == 0 ? 1.0 : -0.5) + rng.normal(0.0, 0.3);
    data.push_back(std::move(x));
  }
  return data;
}

std::vector<double> make_anomaly(int dim, Rng& rng) {
  std::vector<double> x(static_cast<std::size_t>(dim));
  for (auto& v : x) v = rng.normal(0.0, 3.0) + 4.0;  // far off-manifold
  return x;
}

TEST(GaussianKl, ZeroForStandardNormal) {
  EXPECT_DOUBLE_EQ(gaussian_kl({0.0, 0.0}, {0.0, 0.0}), 0.0);
}

TEST(GaussianKl, PositiveOtherwise) {
  EXPECT_GT(gaussian_kl({1.0}, {0.0}), 0.0);
  EXPECT_GT(gaussian_kl({0.0}, {1.0}), 0.0);
  EXPECT_GT(gaussian_kl({0.0}, {-1.0}), 0.0);
}

TEST(GaussianKl, KnownValue) {
  // KL(N(1, 1) || N(0,1)) = 0.5.
  EXPECT_NEAR(gaussian_kl({1.0}, {0.0}), 0.5, 1e-12);
}

TEST(VaeModel, TrainingReducesLoss) {
  Rng rng(1);
  VaeConfig cfg;
  cfg.input_dim = 8;
  Vae vae(cfg, rng);
  const auto data = make_clean_data(64, 8, rng);
  nn::Adam opt(5e-3);
  opt.attach(vae.params(), vae.grads());
  double first = 0.0, last = 0.0;
  for (int e = 0; e < 60; ++e) {
    const double l = vae.train_step(data, opt, rng);
    if (e == 0) first = l;
    last = l;
  }
  EXPECT_LT(last, first * 0.8);
}

TEST(VaeModel, ElboHigherForTrainingDataThanAnomalies) {
  Rng rng(2);
  VaeConfig cfg;
  cfg.input_dim = 8;
  Vae vae(cfg, rng);
  const auto data = make_clean_data(64, 8, rng);
  vae.fit(data, 80, 16, 5e-3, rng);

  double elbo_clean = 0.0;
  for (int i = 0; i < 16; ++i) elbo_clean += vae.elbo(data[static_cast<std::size_t>(i)]);
  elbo_clean /= 16;
  double elbo_anom = 0.0;
  for (int i = 0; i < 16; ++i) elbo_anom += vae.elbo(make_anomaly(8, rng));
  elbo_anom /= 16;
  EXPECT_GT(elbo_clean, elbo_anom);
}

TEST(VaeModel, EncodeDecodeShapes) {
  Rng rng(3);
  VaeConfig cfg;
  cfg.input_dim = 6;
  cfg.latent_dim = 3;
  Vae vae(cfg, rng);
  const auto q = vae.encode(std::vector<double>(6, 0.1));
  EXPECT_EQ(q.mu.size(), 3u);
  EXPECT_EQ(q.logvar.size(), 3u);
  EXPECT_EQ(vae.decode(q.mu).size(), 6u);
}

TEST(Spsa, MinimizesQuadratic) {
  Rng rng(4);
  auto f = [](const std::vector<double>& t) {
    double s = 0.0;
    for (std::size_t i = 0; i < t.size(); ++i) {
      const double d = t[i] - static_cast<double>(i);
      s += d * d;
    }
    return s;
  };
  SpsaConfig cfg;
  cfg.iterations = 400;
  cfg.a = 0.5;
  const SpsaResult r = spsa_minimize(f, {5.0, -3.0, 7.0}, cfg, rng);
  EXPECT_LT(r.best_value, 0.5);
}

TEST(Spsa, EvaluationCountIndependentOfDimension) {
  Rng rng(5);
  auto f = [](const std::vector<double>& t) {
    double s = 0.0;
    for (double v : t) s += v * v;
    return s;
  };
  SpsaConfig cfg;
  cfg.iterations = 10;
  const SpsaResult small = spsa_minimize(f, std::vector<double>(2, 1.0), cfg, rng);
  const SpsaResult large = spsa_minimize(f, std::vector<double>(50, 1.0), cfg, rng);
  EXPECT_EQ(small.function_evaluations, large.function_evaluations);
}

TEST(Spsa, KeepsBestIterate) {
  Rng rng(6);
  auto f = [](const std::vector<double>& t) { return t[0] * t[0]; };
  SpsaConfig cfg;
  cfg.iterations = 50;
  const SpsaResult r = spsa_minimize(f, {2.0}, cfg, rng);
  EXPECT_LE(r.best_value, f({2.0}));
}

class RegretOptimizerTest : public ::testing::TestWithParam<RegretOptimizer> {};

TEST_P(RegretOptimizerTest, SeparatesCleanFromAnomalous) {
  Rng rng(7);
  VaeConfig vcfg;
  vcfg.input_dim = 8;
  Vae vae(vcfg, rng);
  const auto data = make_clean_data(64, 8, rng);
  vae.fit(data, 80, 16, 5e-3, rng);

  RegretConfig rcfg;
  rcfg.optimizer = GetParam();

  std::vector<double> scores;
  std::vector<int> labels;
  for (int i = 0; i < 12; ++i) {
    scores.push_back(
        likelihood_regret(vae, data[static_cast<std::size_t>(i)], rcfg, rng).regret);
    labels.push_back(0);
  }
  for (int i = 0; i < 12; ++i) {
    scores.push_back(likelihood_regret(vae, make_anomaly(8, rng), rcfg, rng).regret);
    labels.push_back(1);
  }
  EXPECT_GT(auc_roc(scores, labels), 0.8);
}

INSTANTIATE_TEST_SUITE_P(
    Optimizers, RegretOptimizerTest,
    ::testing::Values(RegretOptimizer::kSpsa, RegretOptimizer::kFiniteDifference),
    [](const ::testing::TestParamInfo<RegretOptimizer>& info) {
      return info.param == RegretOptimizer::kSpsa ? "spsa" : "finite_diff";
    });

TEST(Regret, SpsaUsesFarFewerEvaluationsThanFiniteDifference) {
  Rng rng(8);
  VaeConfig vcfg;
  vcfg.input_dim = 8;
  vcfg.latent_dim = 6;  // 12 posterior parameters
  Vae vae(vcfg, rng);
  const auto data = make_clean_data(32, 8, rng);
  vae.fit(data, 30, 16, 5e-3, rng);

  RegretConfig spsa_cfg;
  spsa_cfg.optimizer = RegretOptimizer::kSpsa;
  spsa_cfg.spsa.iterations = 40;
  RegretConfig fd_cfg;
  fd_cfg.optimizer = RegretOptimizer::kFiniteDifference;
  fd_cfg.fd_iterations = 40;

  const auto spsa_res = likelihood_regret(vae, data[0], spsa_cfg, rng);
  const auto fd_res = likelihood_regret(vae, data[0], fd_cfg, rng);
  EXPECT_LT(spsa_res.function_evaluations, fd_res.function_evaluations / 3);
}

TEST(Regret, NonNegativeAndEncoderElboConsistent) {
  Rng rng(9);
  VaeConfig vcfg;
  vcfg.input_dim = 8;
  Vae vae(vcfg, rng);
  const auto data = make_clean_data(32, 8, rng);
  vae.fit(data, 40, 16, 5e-3, rng);
  const auto r = likelihood_regret(vae, data[0], RegretConfig{}, rng);
  EXPECT_GE(r.regret, 0.0);
  EXPECT_NEAR(r.elbo_encoder, vae.elbo(data[0]), 1e-9);
}

TEST(StarNetMonitor, TrustsCleanFlagsCorrupted) {
  Rng rng(10);
  StarNetConfig cfg;
  cfg.vae.input_dim = 8;
  StarNet net(cfg, rng);
  const auto clean = make_clean_data(64, 8, rng);
  net.fit(clean, rng);
  ASSERT_TRUE(net.fitted());

  int clean_trusted = 0;
  for (int i = 0; i < 16; ++i)
    if (net.trusted(clean[static_cast<std::size_t>(i)], rng)) ++clean_trusted;
  int anom_trusted = 0;
  for (int i = 0; i < 16; ++i)
    if (net.trusted(make_anomaly(8, rng), rng)) ++anom_trusted;
  EXPECT_GE(clean_trusted, 12);
  EXPECT_LE(anom_trusted, 4);
}

TEST(StarNetMonitor, ThresholdMatchesCalibrationPercentile) {
  Rng rng(11);
  StarNetConfig cfg;
  cfg.vae.input_dim = 8;
  cfg.threshold_percentile = 95.0;
  StarNet net(cfg, rng);
  const auto clean = make_clean_data(64, 8, rng);
  net.fit(clean, rng);
  // About 95% of clean data should score under the threshold.
  int under = 0;
  for (const auto& x : clean)
    if (net.score(x, rng) <= net.threshold()) ++under;
  EXPECT_GE(under, static_cast<int>(clean.size() * 0.82));
}

TEST(StarNetMonitor, ScoreBeforeFitThrows) {
  Rng rng(12);
  StarNetConfig cfg;
  cfg.vae.input_dim = 4;
  StarNet net(cfg, rng);
  EXPECT_THROW(net.score({0, 0, 0, 0}, rng), CheckError);
}

TEST(CameraSim, DetectsMostObjectsCleanly) {
  Rng rng(13);
  sim::SceneConfig sc;
  const sim::Scene scene = sim::generate_scene(sc, rng);
  CameraDetectorConfig cfg;
  cfg.miss_prob = 0.0;
  cfg.false_positives_mean = 0.0;
  const auto dets = simulate_camera_detections(scene, 0, cfg, rng);
  EXPECT_EQ(dets.size(), scene.objects.size());
}

TEST(CameraSim, SeverityIncreasesMisses) {
  Rng rng(14);
  sim::SceneConfig sc;
  sc.cars_min = sc.cars_max = 5;
  CameraDetectorConfig cfg;
  cfg.miss_prob = 0.2;
  cfg.miss_per_severity = 0.1;
  int mild = 0, severe = 0;
  for (int t = 0; t < 30; ++t) {
    const sim::Scene scene = sim::generate_scene(sc, rng);
    mild += static_cast<int>(simulate_camera_detections(scene, 0, cfg, rng).size());
    severe += static_cast<int>(simulate_camera_detections(scene, 5, cfg, rng).size());
  }
  EXPECT_GT(mild, severe);
}

TEST(Fusion, UntrustedDropsLidar) {
  std::vector<lidar::Detection> ld{
      {sim::ObjectClass::kCar, {{1, 1, 0.8}, {4, 2, 1.6}}, 0.9}};
  std::vector<lidar::Detection> cd{
      {sim::ObjectClass::kPedestrian, {{5, 5, 0.9}, {0.6, 0.6, 1.75}}, 0.7}};
  const auto fused = trust_gated_fuse(ld, cd, /*lidar_trusted=*/false);
  ASSERT_EQ(fused.size(), 1u);
  EXPECT_EQ(fused[0].cls, sim::ObjectClass::kPedestrian);
}

TEST(Fusion, TrustedMergesAndDeduplicates) {
  Box3 box{{1, 1, 0.8}, {4, 2, 1.6}};
  std::vector<lidar::Detection> ld{{sim::ObjectClass::kCar, box, 0.6}};
  std::vector<lidar::Detection> cd{
      {sim::ObjectClass::kCar, box, 0.8},  // duplicate, higher score
      {sim::ObjectClass::kCyclist, {{9, 9, 0.85}, {1.8, 0.6, 1.7}}, 0.5}};
  const auto fused = trust_gated_fuse(ld, cd, /*lidar_trusted=*/true);
  ASSERT_EQ(fused.size(), 2u);
  EXPECT_DOUBLE_EQ(fused[0].score, 0.8);  // deduplicated, kept higher
  EXPECT_EQ(fused[1].cls, sim::ObjectClass::kCyclist);
}

TEST(Fusion, TrustedKeepsDistinctDetectionsOfSameClass) {
  std::vector<lidar::Detection> ld{
      {sim::ObjectClass::kCar, {{1, 1, 0.8}, {4, 2, 1.6}}, 0.9}};
  std::vector<lidar::Detection> cd{
      {sim::ObjectClass::kCar, {{20, 20, 0.8}, {4, 2, 1.6}}, 0.7}};
  EXPECT_EQ(trust_gated_fuse(ld, cd, true).size(), 2u);
}

}  // namespace
}  // namespace s2a::monitor

// ------------------------------------------------------------------
// Temporal consistency monitoring (Sec. V future enhancement).
#include "monitor/temporal.hpp"

namespace s2a::monitor {
namespace {

std::vector<std::vector<double>> clean_stream(int n, int dim, Rng& rng,
                                              double bias = 0.0) {
  std::vector<std::vector<double>> out;
  for (int i = 0; i < n; ++i) {
    std::vector<double> x(static_cast<std::size_t>(dim));
    for (auto& v : x) v = bias + rng.normal(0.0, 1.0);
    out.push_back(std::move(x));
  }
  return out;
}

TEST(TemporalMonitor, StableStreamStaysBelowThreshold) {
  Rng rng(1);
  TemporalConsistencyMonitor mon;
  mon.calibrate(clean_stream(64, 8, rng));
  for (int i = 0; i < 100; ++i) {
    std::vector<double> x(8);
    for (auto& v : x) v = rng.normal(0.0, 1.0);
    mon.update(x);
  }
  EXPECT_FALSE(mon.drifting());
  EXPECT_LT(mon.drift_score(), 3.0);
}

TEST(TemporalMonitor, GradualDriftIsDetected) {
  Rng rng(2);
  TemporalConsistencyMonitor mon;
  mon.calibrate(clean_stream(64, 8, rng));
  // Sensor bias grows slowly — each individual sample stays within ~2σ of
  // clean (per-sample monitors would pass), but the EMA walks away.
  bool alarmed = false;
  for (int i = 0; i < 200 && !alarmed; ++i) {
    const double bias = 0.01 * i;  // reaches 2σ at the end
    std::vector<double> x(8);
    for (auto& v : x) v = bias + rng.normal(0.0, 1.0);
    mon.update(x);
    alarmed = mon.drifting();
  }
  EXPECT_TRUE(alarmed);
}

TEST(TemporalMonitor, ResetClearsRunningStateNotCalibration) {
  Rng rng(3);
  TemporalConsistencyMonitor mon;
  mon.calibrate(clean_stream(32, 4, rng));
  mon.update({10, 10, 10, 10});
  EXPECT_GT(mon.drift_score(), 0.0);
  mon.reset();
  EXPECT_DOUBLE_EQ(mon.drift_score(), 0.0);
  EXPECT_TRUE(mon.calibrated());
}

TEST(TemporalMonitor, UpdateBeforeCalibrateThrows) {
  TemporalConsistencyMonitor mon;
  EXPECT_THROW(mon.update({0.0}), CheckError);
}

}  // namespace
}  // namespace s2a::monitor

namespace s2a::monitor {
namespace {

TEST(AdaptiveFusion, ReliabilityScalesLidarScores) {
  std::vector<lidar::Detection> ld{
      {sim::ObjectClass::kCar, {{1, 1, 0.8}, {4, 2, 1.6}}, 0.9}};
  std::vector<lidar::Detection> cd{
      {sim::ObjectClass::kPedestrian, {{5, 5, 0.9}, {0.6, 0.6, 1.75}}, 0.6}};
  const auto fused = reliability_weighted_fuse(ld, cd, 0.5);
  ASSERT_EQ(fused.size(), 2u);
  // LiDAR car score halved: camera detection now outranks it.
  EXPECT_EQ(fused[0].cls, sim::ObjectClass::kPedestrian);
  EXPECT_DOUBLE_EQ(fused[1].score, 0.45);
}

TEST(AdaptiveFusion, FullReliabilityMatchesTrustedGate) {
  std::vector<lidar::Detection> ld{
      {sim::ObjectClass::kCar, {{1, 1, 0.8}, {4, 2, 1.6}}, 0.9}};
  std::vector<lidar::Detection> cd{
      {sim::ObjectClass::kCyclist, {{9, 9, 0.85}, {1.8, 0.6, 1.7}}, 0.5}};
  const auto a = reliability_weighted_fuse(ld, cd, 1.0);
  const auto b = trust_gated_fuse(ld, cd, true);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_DOUBLE_EQ(a[i].score, b[i].score);
}

TEST(AdaptiveFusion, ZeroReliabilityKeepsOnlyCameraRanking) {
  std::vector<lidar::Detection> ld{
      {sim::ObjectClass::kCar, {{1, 1, 0.8}, {4, 2, 1.6}}, 0.9}};
  const auto fused = reliability_weighted_fuse(ld, {}, 0.0);
  ASSERT_EQ(fused.size(), 1u);
  EXPECT_DOUBLE_EQ(fused[0].score, 0.0);  // present but rank-dead
}

TEST(AdaptiveFusion, RegretMapsToSoftReliability) {
  EXPECT_DOUBLE_EQ(regret_to_reliability(0.5, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(regret_to_reliability(1.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(regret_to_reliability(2.0, 1.0), 0.5);
  EXPECT_DOUBLE_EQ(regret_to_reliability(10.0, 1.0), 0.1);
  EXPECT_THROW(regret_to_reliability(1.0, 0.0), CheckError);
}

// A broken monitor (NaN embedding, overflowed ELBO) must weight the
// stream at zero, never propagate non-finite values into detection
// score scaling; negative finite scores clamp to full reliability.
TEST(AdaptiveFusion, RegretReliabilityClampsNonFiniteAndNegative) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_DOUBLE_EQ(regret_to_reliability(nan, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(regret_to_reliability(inf, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(regret_to_reliability(-inf, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(regret_to_reliability(-5.0, 1.0), 1.0);
  // The scaled score stays finite even when the regret is not.
  std::vector<lidar::Detection> ld{
      {sim::ObjectClass::kCar, {{1, 1, 0.8}, {4, 2, 1.6}}, 0.9}};
  const auto fused =
      reliability_weighted_fuse(ld, {}, regret_to_reliability(nan, 1.0));
  ASSERT_EQ(fused.size(), 1u);
  EXPECT_TRUE(std::isfinite(fused[0].score));
  EXPECT_DOUBLE_EQ(fused[0].score, 0.0);
}

TEST(StarNetUncertaintyAdapter, UnfittedReportsConfident) {
  Rng rng(3);
  StarNetConfig cfg;
  cfg.vae.input_dim = 4;
  StarNet net(cfg, rng);
  StarNetUncertainty gate(net, /*seed=*/5);
  core::Observation obs;
  obs.data = {0.1, 0.2, 0.3, 0.4};
  EXPECT_DOUBLE_EQ(gate.score(obs), 0.0);
}

}  // namespace
}  // namespace s2a::monitor
