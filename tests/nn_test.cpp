// Unit tests for the nn substrate. Every layer's backward pass is verified
// against central-difference numeric gradients (both input and parameter
// gradients), and losses/optimizers are checked on analytic cases.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "nn/activations.hpp"
#include "nn/attention.hpp"
#include "nn/conv2d.hpp"
#include "nn/dense.hpp"
#include "nn/gru.hpp"
#include "nn/loss.hpp"
#include "nn/optimizer.hpp"
#include "nn/sequential.hpp"
#include "nn/tensor.hpp"
#include "util/check.hpp"

namespace s2a::nn {
namespace {

// Scalar objective used for gradient checks: L = sum of 0.5*y_i^2, so
// dL/dy = y, which exercises non-uniform output gradients.
double objective(const Tensor& y) { return 0.5 * y.squared_norm(); }

Tensor objective_grad(const Tensor& y) { return y; }

// Checks dL/d(input) and dL/d(params) of `layer` at input `x` against
// central differences.
void check_gradients(Layer& layer, const Tensor& x, double eps = 1e-5,
                     double tol = 1e-6) {
  layer.zero_grad();
  const Tensor y = layer.forward(x);
  const Tensor dx = layer.backward(objective_grad(y));

  // Input gradient.
  Tensor xm = x;
  for (std::size_t i = 0; i < x.numel(); ++i) {
    xm[i] = x[i] + eps;
    const double lp = objective(layer.forward(xm));
    xm[i] = x[i] - eps;
    const double lm = objective(layer.forward(xm));
    xm[i] = x[i];
    const double num = (lp - lm) / (2 * eps);
    ASSERT_NEAR(dx[i], num, tol * std::max(1.0, std::abs(num)))
        << "input grad mismatch at " << i;
  }

  // Parameter gradients. Note: the analytic grads were accumulated above;
  // re-forwarding for numeric probes does not touch grad buffers.
  auto params = layer.params();
  auto grads = layer.grads();
  ASSERT_EQ(params.size(), grads.size());
  for (std::size_t pi = 0; pi < params.size(); ++pi) {
    Tensor& p = *params[pi];
    const Tensor& g = *grads[pi];
    for (std::size_t i = 0; i < p.numel(); ++i) {
      const double orig = p[i];
      p[i] = orig + eps;
      const double lp = objective(layer.forward(x));
      p[i] = orig - eps;
      const double lm = objective(layer.forward(x));
      p[i] = orig;
      const double num = (lp - lm) / (2 * eps);
      ASSERT_NEAR(g[i], num, tol * std::max(1.0, std::abs(num)))
          << "param " << pi << " grad mismatch at " << i;
    }
  }
}

TEST(Tensor, ConstructionAndShape) {
  Tensor t({2, 3});
  EXPECT_EQ(t.numel(), 6u);
  EXPECT_EQ(t.dim(0), 2);
  EXPECT_EQ(t.dim(1), 3);
  for (std::size_t i = 0; i < 6; ++i) EXPECT_DOUBLE_EQ(t[i], 0.0);
}

TEST(Tensor, AtIndexing) {
  Tensor t({2, 3});
  t.at(1, 2) = 5.0;
  EXPECT_DOUBLE_EQ(t[5], 5.0);
  EXPECT_DOUBLE_EQ(t.at(1, 2), 5.0);
}

TEST(Tensor, ReshapePreservesData) {
  Tensor t({2, 3}, {1, 2, 3, 4, 5, 6});
  const Tensor r = t.reshaped({3, 2});
  EXPECT_EQ(r.dim(0), 3);
  EXPECT_DOUBLE_EQ(r[4], 5.0);
  EXPECT_THROW(t.reshaped({4, 2}), CheckError);
}

TEST(Tensor, MatmulKnownValues) {
  const Tensor a({2, 2}, {1, 2, 3, 4});
  const Tensor b({2, 2}, {5, 6, 7, 8});
  const Tensor c = matmul(a, b);
  EXPECT_DOUBLE_EQ(c[0], 19.0);
  EXPECT_DOUBLE_EQ(c[1], 22.0);
  EXPECT_DOUBLE_EQ(c[2], 43.0);
  EXPECT_DOUBLE_EQ(c[3], 50.0);
}

TEST(Tensor, MatmulVariantsAgree) {
  Rng rng(1);
  const Tensor a = Tensor::randn({3, 4}, rng);
  const Tensor b = Tensor::randn({4, 5}, rng);
  const Tensor c1 = matmul(a, b);
  // a·b == matmul_nt(a, bᵀ)
  Tensor bt({5, 4});
  for (int i = 0; i < 4; ++i)
    for (int j = 0; j < 5; ++j) bt.at(j, i) = b.at(i, j);
  const Tensor c2 = matmul_nt(a, bt);
  // a·b == matmul_tn(aᵀ, b)
  Tensor at({4, 3});
  for (int i = 0; i < 3; ++i)
    for (int j = 0; j < 4; ++j) at.at(j, i) = a.at(i, j);
  const Tensor c3 = matmul_tn(at, b);
  for (std::size_t i = 0; i < c1.numel(); ++i) {
    EXPECT_NEAR(c1[i], c2[i], 1e-12);
    EXPECT_NEAR(c1[i], c3[i], 1e-12);
  }
}

TEST(Tensor, MatmulShapeMismatchThrows) {
  const Tensor a({2, 3});
  const Tensor b({2, 3});
  EXPECT_THROW(matmul(a, b), CheckError);
}

TEST(Tensor, XavierWithinLimit) {
  Rng rng(2);
  const Tensor w = Tensor::xavier(10, 20, rng);
  const double limit = std::sqrt(6.0 / 30.0);
  for (std::size_t i = 0; i < w.numel(); ++i) {
    EXPECT_LE(std::abs(w[i]), limit);
  }
}

TEST(DenseLayer, ForwardKnownValues) {
  Rng rng(3);
  Dense d(2, 2, rng);
  d.weight() = Tensor({2, 2}, {1, 2, 3, 4});
  d.bias() = Tensor({2}, {0.5, -0.5});
  const Tensor x({1, 2}, {1, 1});
  const Tensor y = d.forward(x);
  EXPECT_DOUBLE_EQ(y[0], 3.5);   // 1+2+0.5
  EXPECT_DOUBLE_EQ(y[1], 6.5);   // 3+4-0.5
}

TEST(DenseLayer, GradientCheck) {
  Rng rng(4);
  Dense d(3, 4, rng);
  const Tensor x = Tensor::randn({2, 3}, rng);
  check_gradients(d, x);
}

TEST(DenseLayer, FrozenExcludedFromOptimizer) {
  Rng rng(4);
  Dense d(3, 4, rng);
  d.set_frozen(true);
  EXPECT_TRUE(d.params().empty());
  EXPECT_TRUE(d.grads().empty());
  // Gradient still flows to input.
  const Tensor x = Tensor::randn({2, 3}, rng);
  const Tensor y = d.forward(x);
  const Tensor dx = d.backward(objective_grad(y));
  EXPECT_GT(dx.squared_norm(), 0.0);
}

TEST(DenseLayer, MacsPerSample) {
  Rng rng(1);
  Dense d(10, 20, rng);
  EXPECT_EQ(d.macs_per_sample(), 200u);
}

TEST(LoRALayer, InitiallyMatchesBase) {
  Rng rng(5);
  Dense base(4, 3, rng);
  LoRADense lora(base, 2, 1.0, rng);
  const Tensor x = Tensor::randn({2, 4}, rng);
  const Tensor yb = base.forward(x);
  const Tensor yl = lora.forward(x);
  for (std::size_t i = 0; i < yb.numel(); ++i) EXPECT_NEAR(yb[i], yl[i], 1e-12);
}

TEST(LoRALayer, GradientCheck) {
  Rng rng(6);
  Dense base(4, 3, rng);
  LoRADense lora(base, 2, 2.0, rng);
  // Nudge B off zero so its gradient path is exercised nontrivially.
  for (Tensor* p : lora.params())
    for (std::size_t i = 0; i < p->numel(); ++i)
      (*p)[i] += 0.1 * static_cast<double>((i % 3)) - 0.1;
  const Tensor x = Tensor::randn({2, 4}, rng);
  check_gradients(lora, x);
}

TEST(LoRALayer, TrainableParamsMuchSmallerThanBase) {
  Rng rng(7);
  Dense base(64, 64, rng);
  LoRADense lora(base, 4, 1.0, rng);
  EXPECT_EQ(lora.trainable_params(), 4u * 64 * 2);
  EXPECT_LT(lora.trainable_params(), base.param_count() / 4);
}

TEST(LoRALayer, MergedWeightMatchesForward) {
  Rng rng(8);
  Dense base(3, 3, rng);
  LoRADense lora(base, 2, 1.5, rng);
  for (Tensor* p : lora.params())
    for (std::size_t i = 0; i < p->numel(); ++i) (*p)[i] += 0.05;
  const Tensor x = Tensor::randn({1, 3}, rng);
  const Tensor y = lora.forward(x);
  const Tensor w = lora.merged_weight();
  // Manual y' = x·wᵀ + b — bias equals base bias (zero-initialized here).
  for (int j = 0; j < 3; ++j) {
    double acc = 0;
    for (int i = 0; i < 3; ++i) acc += x[static_cast<std::size_t>(i)] * w.at(j, i);
    EXPECT_NEAR(y[static_cast<std::size_t>(j)], acc, 1e-9);
  }
}

TEST(Activations, ReluGradientCheck) {
  Rng rng(9);
  ReLU relu;
  // Offset inputs away from the kink at 0 so numeric gradients are valid.
  Tensor x = Tensor::randn({2, 5}, rng);
  for (std::size_t i = 0; i < x.numel(); ++i)
    if (std::abs(x[i]) < 0.1) x[i] = 0.2;
  check_gradients(relu, x);
}

TEST(Activations, LeakyReluNegativeSlope) {
  LeakyReLU lr(0.1);
  const Tensor x({1, 2}, {-2.0, 3.0});
  const Tensor y = lr.forward(x);
  EXPECT_DOUBLE_EQ(y[0], -0.2);
  EXPECT_DOUBLE_EQ(y[1], 3.0);
}

TEST(Activations, LeakyReluGradientCheck) {
  Rng rng(10);
  LeakyReLU lr(0.2);
  Tensor x = Tensor::randn({2, 5}, rng);
  for (std::size_t i = 0; i < x.numel(); ++i)
    if (std::abs(x[i]) < 0.1) x[i] = -0.2;
  check_gradients(lr, x);
}

TEST(Activations, TanhGradientCheck) {
  Rng rng(11);
  Tanh t;
  const Tensor x = Tensor::randn({3, 4}, rng);
  check_gradients(t, x);
}

TEST(Activations, SigmoidGradientCheck) {
  Rng rng(12);
  Sigmoid s;
  const Tensor x = Tensor::randn({3, 4}, rng);
  check_gradients(s, x);
}

TEST(Conv2DLayer, OutputShape) {
  Rng rng(13);
  Conv2D c(2, 4, 3, 2, 1, rng);
  const Tensor x = Tensor::randn({1, 2, 8, 8}, rng);
  const Tensor y = c.forward(x);
  EXPECT_EQ(y.shape(), (std::vector<int>{1, 4, 4, 4}));
}

TEST(Conv2DLayer, GradientCheck) {
  Rng rng(14);
  Conv2D c(2, 3, 3, 1, 1, rng);
  const Tensor x = Tensor::randn({2, 2, 4, 4}, rng);
  check_gradients(c, x, 1e-5, 1e-5);
}

TEST(Conv2DLayer, StridedGradientCheck) {
  Rng rng(15);
  Conv2D c(1, 2, 3, 2, 1, rng);
  const Tensor x = Tensor::randn({1, 1, 5, 5}, rng);
  check_gradients(c, x, 1e-5, 1e-5);
}

TEST(Conv2DLayer, IdentityKernelPassesThrough) {
  Rng rng(16);
  Conv2D c(1, 1, 1, 1, 0, rng);
  c.params()[0]->fill(1.0);
  c.params()[1]->fill(0.0);
  const Tensor x = Tensor::randn({1, 1, 3, 3}, rng);
  const Tensor y = c.forward(x);
  for (std::size_t i = 0; i < x.numel(); ++i) EXPECT_NEAR(y[i], x[i], 1e-12);
}

TEST(ConvTranspose2DLayer, OutputShapeInvertsConv) {
  Rng rng(17);
  // ConvTranspose with the same hyperparameters maps the conv output
  // spatial size back to the input size.
  Conv2D c(1, 2, 4, 2, 1, rng);
  ConvTranspose2D d(2, 1, 4, 2, 1, rng);
  const Tensor x = Tensor::randn({1, 1, 8, 8}, rng);
  const Tensor y = c.forward(x);
  const Tensor z = d.forward(y);
  EXPECT_EQ(z.shape(), x.shape());
}

TEST(ConvTranspose2DLayer, GradientCheck) {
  Rng rng(18);
  ConvTranspose2D d(2, 2, 3, 2, 1, rng);
  const Tensor x = Tensor::randn({1, 2, 3, 3}, rng);
  check_gradients(d, x, 1e-5, 1e-5);
}

TEST(GRUCellLayer, StepShapesAndRange) {
  Rng rng(19);
  GRUCell cell(3, 5, rng);
  const Tensor x = Tensor::randn({2, 3}, rng);
  const Tensor h = Tensor::zeros({2, 5});
  const Tensor h2 = cell.step(x, h);
  EXPECT_EQ(h2.shape(), (std::vector<int>{2, 5}));
  for (std::size_t i = 0; i < h2.numel(); ++i) {
    EXPECT_GT(h2[i], -1.0);
    EXPECT_LT(h2[i], 1.0);
  }
}

TEST(GRUCellLayer, GradientCheckInputsAndParams) {
  Rng rng(20);
  GRUCell cell(3, 4, rng);
  const Tensor x = Tensor::randn({2, 3}, rng);
  const Tensor h = Tensor::randn({2, 4}, rng, 0.5);

  cell.zero_grad();
  const Tensor y = cell.step(x, h);
  const auto [dx, dh] = cell.backward(objective_grad(y));

  const double eps = 1e-5;
  // Input x gradient.
  Tensor xm = x;
  for (std::size_t i = 0; i < x.numel(); ++i) {
    xm[i] = x[i] + eps;
    const double lp = objective(cell.step(xm, h));
    xm[i] = x[i] - eps;
    const double lm = objective(cell.step(xm, h));
    xm[i] = x[i];
    ASSERT_NEAR(dx[i], (lp - lm) / (2 * eps), 1e-6);
  }
  // Hidden state gradient.
  Tensor hm = h;
  for (std::size_t i = 0; i < h.numel(); ++i) {
    hm[i] = h[i] + eps;
    const double lp = objective(cell.step(x, hm));
    hm[i] = h[i] - eps;
    const double lm = objective(cell.step(x, hm));
    hm[i] = h[i];
    ASSERT_NEAR(dh[i], (lp - lm) / (2 * eps), 1e-6);
  }
  // Parameter gradients.
  auto params = cell.params();
  auto grads = cell.grads();
  for (std::size_t pi = 0; pi < params.size(); ++pi) {
    Tensor& p = *params[pi];
    for (std::size_t i = 0; i < p.numel(); ++i) {
      const double orig = p[i];
      p[i] = orig + eps;
      const double lp = objective(cell.step(x, h));
      p[i] = orig - eps;
      const double lm = objective(cell.step(x, h));
      p[i] = orig;
      ASSERT_NEAR((*grads[pi])[i], (lp - lm) / (2 * eps), 1e-6)
          << "param " << pi << " index " << i;
    }
  }
}

TEST(AttentionLayer, OutputShape) {
  Rng rng(21);
  SelfAttention att(6, rng);
  const Tensor x = Tensor::randn({4, 6}, rng);
  EXPECT_EQ(att.forward(x).shape(), (std::vector<int>{4, 6}));
}

TEST(AttentionLayer, GradientCheck) {
  Rng rng(22);
  SelfAttention att(4, rng);
  const Tensor x = Tensor::randn({3, 4}, rng);
  check_gradients(att, x, 1e-5, 1e-5);
}

TEST(AttentionLayer, MacsGrowQuadraticallyWithSequence) {
  Rng rng(23);
  SelfAttention att(8, rng);
  att.forward(Tensor::randn({2, 8}, rng));
  const std::size_t m2 = att.macs_per_sample();
  att.forward(Tensor::randn({4, 8}, rng));
  const std::size_t m4 = att.macs_per_sample();
  EXPECT_GT(m4, m2);
  EXPECT_EQ(m2, 4u * 2 * 8 * 8 + 2u * 2 * 2 * 8);
  EXPECT_EQ(m4, 4u * 4 * 8 * 8 + 2u * 4 * 4 * 8);
}

TEST(SequentialNet, MlpGradientCheck) {
  Rng rng(24);
  Sequential mlp = make_mlp(3, {5, 4}, 2, rng, /*tanh_act=*/true);
  const Tensor x = Tensor::randn({2, 3}, rng);
  check_gradients(mlp, x, 1e-5, 1e-5);
}

TEST(SequentialNet, MacsSumAcrossLayers) {
  Rng rng(25);
  Sequential mlp = make_mlp(10, {20}, 5, rng);
  EXPECT_EQ(mlp.macs_per_sample(), 10u * 20 + 20u * 5);
}

TEST(SequentialNet, ParamCount) {
  Rng rng(26);
  Sequential mlp = make_mlp(10, {20}, 5, rng);
  EXPECT_EQ(mlp.param_count(), 10u * 20 + 20 + 20u * 5 + 5);
}

TEST(Loss, MseKnownValue) {
  const Tensor pred({1, 2}, {1.0, 3.0});
  const Tensor target({1, 2}, {0.0, 0.0});
  const auto r = mse_loss(pred, target);
  EXPECT_DOUBLE_EQ(r.value, 5.0);
  EXPECT_DOUBLE_EQ(r.grad[0], 1.0);
  EXPECT_DOUBLE_EQ(r.grad[1], 3.0);
}

TEST(Loss, MseGradNumericCheck) {
  Rng rng(27);
  const Tensor pred = Tensor::randn({2, 3}, rng);
  const Tensor target = Tensor::randn({2, 3}, rng);
  const auto r = mse_loss(pred, target);
  const double eps = 1e-6;
  Tensor pm = pred;
  for (std::size_t i = 0; i < pred.numel(); ++i) {
    pm[i] = pred[i] + eps;
    const double lp = mse_loss(pm, target).value;
    pm[i] = pred[i] - eps;
    const double lm = mse_loss(pm, target).value;
    pm[i] = pred[i];
    EXPECT_NEAR(r.grad[i], (lp - lm) / (2 * eps), 1e-6);
  }
}

TEST(Loss, BceWithLogitsMatchesAnalytic) {
  const Tensor logits({1, 1}, {0.0});
  const Tensor target({1, 1}, {1.0});
  const auto r = bce_with_logits(logits, target);
  EXPECT_NEAR(r.value, std::log(2.0), 1e-12);
  EXPECT_NEAR(r.grad[0], -0.5, 1e-12);
}

TEST(Loss, BceStableForExtremeLogits) {
  const Tensor logits({1, 2}, {100.0, -100.0});
  const Tensor target({1, 2}, {1.0, 0.0});
  const auto r = bce_with_logits(logits, target);
  EXPECT_LT(r.value, 1e-10);
  EXPECT_TRUE(std::isfinite(r.grad[0]));
}

TEST(Loss, SoftmaxRowsSumToOne) {
  Rng rng(28);
  const Tensor logits = Tensor::randn({5, 7}, rng, 3.0);
  const Tensor p = softmax(logits);
  for (int i = 0; i < 5; ++i) {
    double s = 0;
    for (int j = 0; j < 7; ++j) s += p.at(i, j);
    EXPECT_NEAR(s, 1.0, 1e-12);
  }
}

TEST(Loss, CrossEntropyGradNumericCheck) {
  Rng rng(29);
  const Tensor logits = Tensor::randn({3, 4}, rng);
  const std::vector<int> labels{1, 0, 3};
  const auto r = softmax_cross_entropy(logits, labels);
  const double eps = 1e-6;
  Tensor lm = logits;
  for (std::size_t i = 0; i < logits.numel(); ++i) {
    lm[i] = logits[i] + eps;
    const double lp = softmax_cross_entropy(lm, labels).value;
    lm[i] = logits[i] - eps;
    const double lo = softmax_cross_entropy(lm, labels).value;
    lm[i] = logits[i];
    EXPECT_NEAR(r.grad[i], (lp - lo) / (2 * eps), 1e-6);
  }
}

TEST(Loss, AccuracyCountsArgmax) {
  const Tensor logits({2, 3}, {1, 5, 2, 9, 1, 1});
  EXPECT_DOUBLE_EQ(accuracy(logits, {1, 0}), 1.0);
  EXPECT_DOUBLE_EQ(accuracy(logits, {0, 0}), 0.5);
}

TEST(Optimizers, SgdConvergesOnQuadratic) {
  // Minimize (w-3)² with plain SGD.
  Tensor w({1}, {0.0});
  Tensor g({1});
  SGD opt(0.1);
  opt.attach({&w}, {&g});
  for (int i = 0; i < 200; ++i) {
    g[0] = 2.0 * (w[0] - 3.0);
    opt.step();
  }
  EXPECT_NEAR(w[0], 3.0, 1e-6);
}

TEST(Optimizers, MomentumAcceleratesConvergence) {
  auto run = [](double momentum) {
    Tensor w({1}, {0.0});
    Tensor g({1});
    SGD opt(0.01, momentum);
    opt.attach({&w}, {&g});
    for (int i = 0; i < 50; ++i) {
      g[0] = 2.0 * (w[0] - 3.0);
      opt.step();
    }
    return std::abs(w[0] - 3.0);
  };
  EXPECT_LT(run(0.9), run(0.0));
}

TEST(Optimizers, AdamConvergesOnQuadratic) {
  Tensor w({2}, {5.0, -4.0});
  Tensor g({2});
  Adam opt(0.1);
  opt.attach({&w}, {&g});
  for (int i = 0; i < 500; ++i) {
    g[0] = 2.0 * (w[0] - 1.0);
    g[1] = 2.0 * (w[1] + 2.0);
    opt.step();
  }
  EXPECT_NEAR(w[0], 1.0, 1e-3);
  EXPECT_NEAR(w[1], -2.0, 1e-3);
}

TEST(Optimizers, ClipGradNormScalesDown) {
  Tensor g({2}, {3.0, 4.0});
  const double pre = clip_grad_norm({&g}, 1.0);
  EXPECT_DOUBLE_EQ(pre, 5.0);
  EXPECT_NEAR(std::sqrt(g.squared_norm()), 1.0, 1e-12);
}

TEST(Optimizers, ClipGradNormNoopBelowThreshold) {
  Tensor g({2}, {0.3, 0.4});
  clip_grad_norm({&g}, 1.0);
  EXPECT_DOUBLE_EQ(g[0], 0.3);
  EXPECT_DOUBLE_EQ(g[1], 0.4);
}

TEST(Training, MlpLearnsXor) {
  Rng rng(31);
  Sequential net = make_mlp(2, {8}, 1, rng, /*tanh_act=*/true);
  Adam opt(0.05);
  opt.attach(net.params(), net.grads());
  const Tensor x({4, 2}, {0, 0, 0, 1, 1, 0, 1, 1});
  const Tensor t({4, 1}, {0, 1, 1, 0});
  double loss = 0;
  for (int epoch = 0; epoch < 500; ++epoch) {
    opt.zero_grad();
    const Tensor y = net.forward(x);
    const auto r = bce_with_logits(y, t);
    loss = r.value;
    net.backward(r.grad);
    opt.step();
  }
  EXPECT_LT(loss, 0.05);
  const Tensor y = net.forward(x);
  EXPECT_LT(y[0], 0.0);
  EXPECT_GT(y[1], 0.0);
  EXPECT_GT(y[2], 0.0);
  EXPECT_LT(y[3], 0.0);
}

}  // namespace
}  // namespace s2a::nn

// ------------------------------------------------------------------
// Parameter serialization round trips.
#include <sstream>

#include "nn/serialize.hpp"

namespace s2a::nn {
namespace {

TEST(Serialize, RoundTripIsBitExact) {
  Rng rng(60);
  Sequential net = make_mlp(5, {7}, 3, rng);
  std::ostringstream os;
  save_params(net.params(), os);

  Rng rng2(61);
  Sequential net2 = make_mlp(5, {7}, 3, rng2);
  std::istringstream is(os.str());
  load_params(net2.params(), is);

  auto a = net.params(), b = net2.params();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    for (std::size_t j = 0; j < a[i]->numel(); ++j)
      EXPECT_EQ((*a[i])[j], (*b[i])[j]);  // exact, not approximate

  // Behaviour matches too.
  const Tensor x = Tensor::randn({2, 5}, rng);
  const Tensor y1 = net.forward(x);
  const Tensor y2 = net2.forward(x);
  for (std::size_t i = 0; i < y1.numel(); ++i) EXPECT_EQ(y1[i], y2[i]);
}

TEST(Serialize, ShapeMismatchThrows) {
  Rng rng(62);
  Sequential small = make_mlp(3, {4}, 2, rng);
  Sequential big = make_mlp(3, {5}, 2, rng);
  std::ostringstream os;
  save_params(small.params(), os);
  std::istringstream is(os.str());
  EXPECT_THROW(load_params(big.params(), is), CheckError);
}

TEST(Serialize, TensorCountMismatchThrows) {
  Rng rng(63);
  Sequential net = make_mlp(3, {4}, 2, rng);
  std::ostringstream os;
  save_params(net.params(), os);
  std::istringstream is(os.str());
  auto params = net.params();
  params.pop_back();
  EXPECT_THROW(load_params(params, is), CheckError);
}

TEST(Serialize, RejectsForeignStream) {
  Rng rng(64);
  Sequential net = make_mlp(3, {4}, 2, rng);
  std::istringstream is("definitely not params");
  EXPECT_THROW(load_params(net.params(), is), CheckError);
}

TEST(Serialize, SpecialValuesSurvive) {
  Tensor t({3}, {0.0, -0.0, 1e-308});
  std::ostringstream os;
  save_params({&t}, os);
  Tensor u({3}, {1, 2, 3});
  std::istringstream is(os.str());
  load_params({&u}, is);
  EXPECT_EQ(u[0], 0.0);
  EXPECT_EQ(u[2], 1e-308);
}

TEST(Serialize, QuantizeSurvivesRoundTrip) {
  // Serialization persists float weights only; the int8 snapshot is
  // derived state. quantize() is deterministic from the float weights,
  // so quantize → save → load → quantize must give a bit-identical int8
  // forward (int32 accumulation has no rounding to drift).
  Rng rng(65);
  Sequential net;
  net.emplace<Conv2D>(2, 4, 3, 2, 1, rng);
  net.emplace<ReLU>();
  net.emplace<ConvTranspose2D>(4, 2, 4, 2, 1, rng);
  net.quantize();
  EXPECT_TRUE(net.is_quantized());
  std::ostringstream os;
  save_params(net.params(), os);

  Rng rng2(66);
  Sequential net2;
  net2.emplace<Conv2D>(2, 4, 3, 2, 1, rng2);
  net2.emplace<ReLU>();
  net2.emplace<ConvTranspose2D>(4, 2, 4, 2, 1, rng2);
  std::istringstream is(os.str());
  load_params(net2.params(), is);
  net2.quantize();

  set_quant_backend(QuantBackend::kInt8);
  const Tensor x = Tensor::randn({1, 2, 8, 8}, rng);
  const Tensor y1 = net.forward(x);
  const Tensor y2 = net2.forward(x);
  set_quant_backend(QuantBackend::kAuto);
  ASSERT_TRUE(y1.same_shape(y2));
  for (std::size_t i = 0; i < y1.numel(); ++i) EXPECT_EQ(y1[i], y2[i]);

  // And with the backend on float, a quantized net's forward is still
  // the float forward, bit for bit. Pinned explicitly (not kAuto) so an
  // ambient S2A_QUANT=1 can't route these forwards through int8.
  set_quant_backend(QuantBackend::kFloat);
  Rng rng3(65);
  Sequential net_float;
  net_float.emplace<Conv2D>(2, 4, 3, 2, 1, rng3);
  net_float.emplace<ReLU>();
  net_float.emplace<ConvTranspose2D>(4, 2, 4, 2, 1, rng3);
  const Tensor yf = net_float.forward(x);
  const Tensor yq = net.forward(x);
  set_quant_backend(QuantBackend::kAuto);
  for (std::size_t i = 0; i < yf.numel(); ++i) EXPECT_EQ(yf[i], yq[i]);
}

}  // namespace
}  // namespace s2a::nn
