// Equivalence and memory-contract tests for the im2col + blocked-GEMM
// conv path (nn/gemm.hpp, nn/im2col.hpp, util/scratch_arena.hpp).
//
// The load-bearing property is the determinism contract from
// docs/ARCHITECTURE.md: the GEMM path must reproduce the naive loops
// bit-for-bit (EXPECT_EQ on doubles, no tolerance) for every shape,
// stride, padding, and thread count, because the ParallelEquivalence
// suites and the S2A_NAIVE_CONV oracle both lean on it.
#include <cstdint>
#include <cstdlib>
#include <vector>

#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "nn/conv2d.hpp"
#include "nn/dense.hpp"
#include "nn/gemm.hpp"
#include "nn/im2col.hpp"
#include "nn/layer.hpp"
#include "nn/quant.hpp"
#include "nn/tensor.hpp"
#include "util/cpu_features.hpp"
#include "util/rng.hpp"
#include "util/scratch_arena.hpp"
#include "util/thread_pool.hpp"

namespace s2a::nn {
namespace {

// Restores the backend (and leaves kAuto's env untouched) on scope exit.
class ScopedBackend {
 public:
  explicit ScopedBackend(ConvBackend b) { set_conv_backend(b); }
  ~ScopedBackend() { set_conv_backend(ConvBackend::kAuto); }
};

// Forces the sharded paths to engage regardless of core count so the
// thread-count sweeps actually shard on 1-core machines.
class ScopedForceParallel {
 public:
  ScopedForceParallel() { setenv("S2A_FORCE_PARALLEL", "1", 1); }
  ~ScopedForceParallel() { unsetenv("S2A_FORCE_PARALLEL"); }
};

// Reference GEMM: the naive triple loop with the same per-element
// accumulation chain the blocked kernel promises (init from C, then
// ascending-k `acc += a*b`).
void naive_gemm(int m, int n, int k, const std::vector<double>& a,
                const std::vector<double>& b, std::vector<double>& c) {
  for (int i = 0; i < m; ++i)
    for (int j = 0; j < n; ++j) {
      double acc = c[static_cast<std::size_t>(i) * n + j];
      for (int kk = 0; kk < k; ++kk)
        acc += a[static_cast<std::size_t>(i) * k + kk] *
               b[static_cast<std::size_t>(kk) * n + j];
      c[static_cast<std::size_t>(i) * n + j] = acc;
    }
}

std::vector<double> random_vec(std::size_t n, Rng& rng) {
  std::vector<double> v(n);
  for (double& x : v) x = rng.normal(0.0, 1.0);
  return v;
}

struct GemmShape {
  int m, n, k;
};

TEST(Gemm, MatchesNaiveTripleLoopBitExact) {
  // Shapes chosen to hit k=1, single elements, non-square panels, and
  // remainder tiles in every dimension (m % MR, n % NR, k % KC).
  const GemmShape shapes[] = {
      {1, 1, 1},     {1, 8, 1},    {4, 8, 1},    {3, 5, 7},
      {4, 16, 36},   {16, 24, 36}, {17, 31, 130}, {5, 9, 257},
      {32, 144, 144}, {4, 300, 513}, {12, 1, 40},
  };
  Rng rng(1234);
  for (const auto& s : shapes) {
    const auto a = random_vec(static_cast<std::size_t>(s.m) * s.k, rng);
    const auto b = random_vec(static_cast<std::size_t>(s.k) * s.n, rng);
    // Non-zero init: the contract starts each chain from C's prior value.
    auto c_ref = random_vec(static_cast<std::size_t>(s.m) * s.n, rng);
    auto c_gemm = c_ref;
    naive_gemm(s.m, s.n, s.k, a, b, c_ref);
    util::ScratchArena arena;
    gemm(s.m, s.n, s.k, a.data(), s.k, b.data(), s.n, c_gemm.data(), s.n,
         arena);
    for (std::size_t i = 0; i < c_ref.size(); ++i)
      ASSERT_EQ(c_ref[i], c_gemm[i])
          << "m=" << s.m << " n=" << s.n << " k=" << s.k << " at " << i;
  }
}

TEST(Gemm, PackedASizeCoversPadding) {
  // The panel height follows the active kernel's MR (scalar 2, avx2 4,
  // avx512 8, ...), so test against the accessor, not a constant.
  const auto mr = static_cast<std::size_t>(gemm_mr());
  EXPECT_EQ(packed_a_size(1, 5), mr * 5);
  EXPECT_EQ(packed_a_size(static_cast<int>(mr), 3), mr * 3);
  EXPECT_EQ(packed_a_size(static_cast<int>(mr) + 1, 2), 2 * mr * 2);
}

std::size_t diff_count(const Tensor& a, const Tensor& b);

// Forces a kernel family for the scope; restores auto selection on exit.
class ScopedSimd {
 public:
  explicit ScopedSimd(util::SimdIsa isa) { util::set_simd_isa(isa); }
  ~ScopedSimd() { util::set_simd_isa(util::SimdIsa::kAuto); }
};

bool is_fused(util::SimdIsa isa) {
  return isa == util::SimdIsa::kAvx2Fma || isa == util::SimdIsa::kAvx512Fma;
}

TEST(SimdDispatch, ProbeAndSelectionAreConsistent) {
  // Scalar is always available; auto never stays unresolved; every ISA
  // the probe reports supported has a distinct stable name.
  EXPECT_TRUE(util::simd_isa_supported(util::SimdIsa::kScalar));
  EXPECT_NE(util::active_simd_isa(), util::SimdIsa::kAuto);
  const auto isas = util::supported_simd_isas();
  ASSERT_FALSE(isas.empty());
  for (std::size_t i = 0; i < isas.size(); ++i) {
    EXPECT_TRUE(util::simd_isa_supported(isas[i]));
    for (std::size_t j = i + 1; j < isas.size(); ++j)
      EXPECT_STRNE(util::simd_isa_name(isas[i]), util::simd_isa_name(isas[j]));
  }
  // Auto resolves to a bit-exact family — the fused kernels are opt-in.
  {
    ScopedSimd scoped(util::SimdIsa::kAuto);
    EXPECT_FALSE(is_fused(util::active_simd_isa()));
  }
  // The active kernel's reported geometry backs the packing layout.
  EXPECT_GE(gemm_mr(), 1);
  EXPECT_LE(gemm_mr(), kGemmMaxMR);
  EXPECT_LE(gemm_nr(), kGemmMaxNR);
  {
    ScopedSimd scoped(util::SimdIsa::kScalar);
    EXPECT_EQ(gemm_mr(), kGemmMR);
    EXPECT_EQ(gemm_nr(), kGemmNR);
    EXPECT_STREQ(gemm_kernel_name(), "scalar");
  }
}

TEST(SimdDispatch, EveryKernelHandlesEdgeShapes) {
  // Degenerate and tail-heavy shapes — m/n/k of 1, [1,1,k], partial
  // MR/NR panels around every compiled-in tile size (2, 4, 8 rows;
  // 4, 8, 16 columns), and KC straddles — against every supported
  // kernel family. Bit-exact families must match the naive loop with
  // EXPECT_EQ; the opt-in fused families get a tight relative band
  // (they skip one rounding per k step, nothing more).
  const GemmShape shapes[] = {
      {1, 1, 1},   {1, 1, 37},  {1, 1, 300}, {1, 16, 5},  {16, 1, 5},
      {2, 4, 1},   {3, 5, 2},   {4, 8, 9},   {5, 9, 11},  {7, 15, 13},
      {8, 16, 17}, {9, 17, 29}, {15, 31, 64}, {4, 576, 64}, {17, 33, 257},
  };
  Rng rng(99);
  for (const auto isa : util::supported_simd_isas()) {
    ScopedSimd scoped(isa);
    for (const auto& s : shapes) {
      const auto a = random_vec(static_cast<std::size_t>(s.m) * s.k, rng);
      const auto b = random_vec(static_cast<std::size_t>(s.k) * s.n, rng);
      auto c_ref = random_vec(static_cast<std::size_t>(s.m) * s.n, rng);
      auto c_gemm = c_ref;
      naive_gemm(s.m, s.n, s.k, a, b, c_ref);
      util::ScratchArena arena;
      gemm(s.m, s.n, s.k, a.data(), s.k, b.data(), s.n, c_gemm.data(), s.n,
           arena);
      for (std::size_t i = 0; i < c_ref.size(); ++i) {
        if (is_fused(isa)) {
          const double tol =
              1e-13 * (1.0 + std::abs(c_ref[i])) * (1.0 + s.k);
          ASSERT_NEAR(c_ref[i], c_gemm[i], tol)
              << util::simd_isa_name(isa) << " m=" << s.m << " n=" << s.n
              << " k=" << s.k << " at " << i;
        } else {
          ASSERT_EQ(c_ref[i], c_gemm[i])
              << util::simd_isa_name(isa) << " m=" << s.m << " n=" << s.n
              << " k=" << s.k << " at " << i;
        }
      }
    }
  }
}

TEST(SimdDispatch, VectorConvMatchesScalarAcrossThreadCounts) {
  // The full conv forward (pack + band split + gemm) must produce the
  // scalar kernel's bits under every bit-exact family at every thread
  // count — the vector kernels change speed, never the chain.
  ScopedForceParallel force;
  ScopedBackend backend(ConvBackend::kGemm);
  Rng rng(45);
  Conv2D conv(4, 16, 3, 2, 1, rng);
  ConvTranspose2D deconv(16, 4, 4, 2, 1, rng);
  const Tensor x = Tensor::randn({1, 4, 24, 24}, rng);
  const Tensor z = Tensor::randn({1, 16, 12, 12}, rng);

  Tensor conv_ref, deconv_ref;
  {
    ScopedSimd scalar(util::SimdIsa::kScalar);
    util::ScopedGlobalThreads threads(1);
    conv_ref = conv.forward(x);
    deconv_ref = deconv.forward(z);
  }
  for (const auto isa : util::supported_simd_isas()) {
    if (is_fused(isa)) continue;
    ScopedSimd scoped(isa);
    for (int threads : {1, 2, 4}) {
      util::ScopedGlobalThreads scoped_threads(threads);
      EXPECT_EQ(diff_count(conv_ref, conv.forward(x)), 0u)
          << util::simd_isa_name(isa) << " " << threads << " threads";
      EXPECT_EQ(diff_count(deconv_ref, deconv.forward(z)), 0u)
          << util::simd_isa_name(isa) << " " << threads << " threads";
    }
  }
}

TEST(Quant, RowQuantizationRoundTripsWithinOneStep) {
  // Symmetric per-row scales: every value must round-trip within half a
  // quantization step, and the extreme of each row must hit ±127.
  Rng rng(7);
  const int rows = 6, cols = 40;
  const auto a = random_vec(static_cast<std::size_t>(rows) * cols, rng);
  const QuantizedMatrix q = quantize_rows(a.data(), cols, rows, cols);
  ASSERT_EQ(q.rows, rows);
  ASSERT_EQ(q.cols, cols);
  for (int i = 0; i < rows; ++i) {
    const double scale = q.scales[static_cast<std::size_t>(i)];
    ASSERT_GT(scale, 0.0);
    std::int8_t amax = 0;
    for (int j = 0; j < cols; ++j) {
      const std::size_t idx = static_cast<std::size_t>(i) * cols + j;
      EXPECT_NEAR(static_cast<double>(q.data[idx]) * scale, a[idx],
                  0.5 * scale + 1e-15);
      amax = std::max<std::int8_t>(
          amax, static_cast<std::int8_t>(std::abs(q.data[idx])));
    }
    EXPECT_EQ(amax, 127) << "row " << i;
  }
  // All-zero rows quantize to zeros with a benign scale.
  const std::vector<double> zeros(16, 0.0);
  const QuantizedMatrix qz = quantize_rows(zeros.data(), 16, 1, 16);
  EXPECT_EQ(qz.scales[0], 1.0);
  for (const auto v : qz.data) EXPECT_EQ(v, 0);
}

TEST(Quant, ActivationScaleIsBandInvariant) {
  // The scale is computed over the whole tensor, so any band split the
  // conv layers apply sees the same quantization grid.
  Rng rng(8);
  const auto x = random_vec(333, rng);
  const double whole = activation_scale(x.data(), x.size());
  double banded_max = 0.0;
  for (std::size_t start = 0; start < x.size(); start += 100)
    banded_max = std::max(
        banded_max, activation_scale(x.data() + start,
                                     std::min<std::size_t>(100, x.size() -
                                                                    start)));
  EXPECT_EQ(whole, banded_max);
}

TEST(Quant, Int8GemmMatchesInt32Reference) {
  // gemm_int8 must equal the naive int32 loop EXACTLY (integer
  // accumulation has no rounding), including the bias-seeded C start.
  Rng rng(21);
  const GemmShape shapes[] = {
      {1, 1, 1}, {3, 5, 7}, {4, 16, 36}, {16, 24, 144}, {5, 33, 257},
  };
  for (const auto& s : shapes) {
    const auto a = random_vec(static_cast<std::size_t>(s.m) * s.k, rng);
    const QuantizedMatrix qa = quantize_rows(a.data(), s.k, s.m, s.k);
    const auto xf = random_vec(static_cast<std::size_t>(s.k) * s.n, rng);
    const double xs = activation_scale(xf.data(), xf.size());
    std::vector<std::int8_t> xq(xf.size());
    quantize_values(xf.data(), xf.size(), xs, xq.data());
    auto c_ref = random_vec(static_cast<std::size_t>(s.m) * s.n, rng);
    auto c_int8 = c_ref;
    for (int i = 0; i < s.m; ++i)
      for (int j = 0; j < s.n; ++j) {
        std::int32_t acc = 0;
        for (int kk = 0; kk < s.k; ++kk)
          acc += static_cast<std::int32_t>(
                     qa.data[static_cast<std::size_t>(i) * s.k + kk]) *
                 static_cast<std::int32_t>(
                     xq[static_cast<std::size_t>(kk) * s.n + j]);
        c_ref[static_cast<std::size_t>(i) * s.n + j] +=
            qa.scales[static_cast<std::size_t>(i)] * xs *
            static_cast<double>(acc);
      }
    gemm_int8(qa, s.n, xq.data(), s.n, xs, c_int8.data(), s.n);
    for (std::size_t i = 0; i < c_ref.size(); ++i)
      ASSERT_EQ(c_ref[i], c_int8[i])
          << "m=" << s.m << " n=" << s.n << " k=" << s.k << " at " << i;
  }
}

#if defined(__x86_64__) || defined(_M_X64)
TEST(Quant, ScalarAndAvx2Int8KernelsExactlyEqual) {
  if (!util::cpu_features().avx2) GTEST_SKIP() << "no AVX2 on this CPU";
  Rng rng(22);
  const GemmShape shapes[] = {
      {1, 1, 1}, {2, 7, 3}, {4, 9, 36}, {16, 40, 143}, {7, 65, 256},
  };
  for (const auto& s : shapes) {
    const auto a = random_vec(static_cast<std::size_t>(s.m) * s.k, rng);
    const QuantizedMatrix qa = quantize_rows(a.data(), s.k, s.m, s.k);
    const auto xf = random_vec(static_cast<std::size_t>(s.k) * s.n, rng);
    const double xs = activation_scale(xf.data(), xf.size());
    std::vector<std::int8_t> xq(xf.size());
    quantize_values(xf.data(), xf.size(), xs, xq.data());
    auto c_scalar = random_vec(static_cast<std::size_t>(s.m) * s.n, rng);
    auto c_avx2 = c_scalar;
    detail::gemm_int8_scalar(s.m, s.n, s.k, qa.data.data(), qa.scales.data(),
                             xq.data(), s.n, xs, c_scalar.data(), s.n);
    detail::gemm_int8_avx2(s.m, s.n, s.k, qa.data.data(), qa.scales.data(),
                           xq.data(), s.n, xs, c_avx2.data(), s.n);
    for (std::size_t i = 0; i < c_scalar.size(); ++i)
      ASSERT_EQ(c_scalar[i], c_avx2[i])
          << "m=" << s.m << " n=" << s.n << " k=" << s.k << " at " << i;
  }
}
#endif

TEST(Quant, BackendResolvesEnvOverride) {
  set_quant_backend(QuantBackend::kAuto);
  setenv("S2A_QUANT", "1", 1);
  EXPECT_EQ(quant_backend(), QuantBackend::kInt8);
  unsetenv("S2A_QUANT");
  EXPECT_EQ(quant_backend(), QuantBackend::kFloat);
  set_quant_backend(QuantBackend::kInt8);
  EXPECT_EQ(quant_backend(), QuantBackend::kInt8);
  set_quant_backend(QuantBackend::kAuto);
}

TEST(Im2Col, RoundTripScalesByReadCount) {
  // col2im(im2col(x)) multiplies each pixel by the number of output
  // pixels reading it. Integer-valued inputs keep the repeated sums
  // exact, so the identity can be checked with EXPECT_EQ.
  const int cin = 3, h = 9, w = 7, k = 3, pad = 1;
  for (int stride : {1, 2, 3}) {
    const int oh = (h + 2 * pad - k) / stride + 1;
    const int ow = (w + 2 * pad - k) / stride + 1;
    Rng rng(77);
    std::vector<double> x(static_cast<std::size_t>(cin) * h * w);
    for (double& v : x)
      v = static_cast<double>(rng.uniform_int(0, 9));
    std::vector<double> ones(x.size(), 1.0);

    const std::size_t cols =
        static_cast<std::size_t>(im2col_rows(cin, k)) * oh * ow;
    std::vector<double> col(cols), col_ones(cols);
    im2col(x.data(), cin, h, w, k, stride, pad, ow, 0, oh, col.data());
    im2col(ones.data(), cin, h, w, k, stride, pad, ow, 0, oh,
           col_ones.data());

    std::vector<double> back(x.size(), 0.0), counts(x.size(), 0.0);
    col2im(col.data(), cin, h, w, k, stride, pad, ow, 0, oh, back.data());
    col2im(col_ones.data(), cin, h, w, k, stride, pad, ow, 0, oh,
           counts.data());
    for (std::size_t i = 0; i < x.size(); ++i)
      ASSERT_EQ(back[i], x[i] * counts[i]) << "stride=" << stride << " i=" << i;
  }
}

TEST(Im2Col, BandDecompositionMatchesFullLowering) {
  // Lowering [0, oh) in one shot must equal lowering bands and
  // concatenating the column slices — the property the pool sharding
  // relies on.
  const int cin = 2, h = 11, w = 8, k = 4, stride = 2, pad = 1;
  const int oh = (h + 2 * pad - k) / stride + 1;
  const int ow = (w + 2 * pad - k) / stride + 1;
  Rng rng(78);
  const auto x = random_vec(static_cast<std::size_t>(cin) * h * w, rng);
  const int rows = im2col_rows(cin, k);

  std::vector<double> full(static_cast<std::size_t>(rows) * oh * ow);
  im2col(x.data(), cin, h, w, k, stride, pad, ow, 0, oh, full.data());

  for (int split = 1; split < oh; ++split) {
    std::vector<double> lo_band(static_cast<std::size_t>(rows) * split * ow);
    std::vector<double> hi_band(static_cast<std::size_t>(rows) *
                                (oh - split) * ow);
    im2col(x.data(), cin, h, w, k, stride, pad, ow, 0, split, lo_band.data());
    im2col(x.data(), cin, h, w, k, stride, pad, ow, split, oh,
           hi_band.data());
    for (int r = 0; r < rows; ++r) {
      for (int j = 0; j < split * ow; ++j)
        ASSERT_EQ(full[static_cast<std::size_t>(r) * oh * ow + j],
                  lo_band[static_cast<std::size_t>(r) * split * ow + j]);
      for (int j = 0; j < (oh - split) * ow; ++j)
        ASSERT_EQ(
            full[static_cast<std::size_t>(r) * oh * ow + split * ow + j],
            hi_band[static_cast<std::size_t>(r) * (oh - split) * ow + j]);
    }
  }
}

// ---- Conv forward: GEMM path vs. naive oracle ----

std::size_t diff_count(const Tensor& a, const Tensor& b) {
  if (a.numel() != b.numel()) return a.numel() + b.numel();
  std::size_t bad = 0;
  for (std::size_t i = 0; i < a.numel(); ++i)
    if (a[i] != b[i]) ++bad;
  return bad;
}

TEST(ConvBackendEquivalence, Conv2DBitExactAcrossShapes) {
  Rng rng(42);
  struct Case {
    int cin, cout, k, stride, pad, h, w;
  };
  const Case cases[] = {
      {1, 1, 1, 1, 0, 5, 5},   {2, 3, 3, 1, 1, 7, 5},
      {3, 4, 3, 2, 1, 9, 11},  {4, 16, 3, 2, 1, 48, 48},
      {2, 5, 5, 3, 2, 13, 17}, {1, 2, 4, 2, 1, 10, 6},
      {6, 4, 3, 1, 0, 9, 9},
  };
  for (const auto& c : cases) {
    Conv2D conv(c.cin, c.cout, c.k, c.stride, c.pad, rng);
    const Tensor x = Tensor::randn({2, c.cin, c.h, c.w}, rng);
    Tensor naive, fast;
    {
      ScopedBackend backend(ConvBackend::kNaive);
      naive = conv.forward(x);
    }
    {
      ScopedBackend backend(ConvBackend::kGemm);
      fast = conv.forward(x);
    }
    EXPECT_EQ(diff_count(naive, fast), 0u)
        << "cin=" << c.cin << " cout=" << c.cout << " k=" << c.k
        << " stride=" << c.stride << " pad=" << c.pad << " h=" << c.h
        << " w=" << c.w;
  }
}

TEST(ConvBackendEquivalence, ConvTranspose2DBitExactAcrossShapes) {
  Rng rng(43);
  struct Case {
    int cin, cout, k, stride, pad, h, w;
  };
  const Case cases[] = {
      {1, 1, 1, 1, 0, 5, 5},  {3, 2, 3, 1, 1, 7, 5},
      {2, 3, 4, 2, 1, 9, 11}, {32, 16, 4, 2, 1, 12, 12},
      {2, 2, 5, 3, 2, 6, 7},  {4, 1, 3, 2, 0, 5, 9},
  };
  for (const auto& c : cases) {
    ConvTranspose2D deconv(c.cin, c.cout, c.k, c.stride, c.pad, rng);
    const Tensor x = Tensor::randn({2, c.cin, c.h, c.w}, rng);
    Tensor naive, fast;
    {
      ScopedBackend backend(ConvBackend::kNaive);
      naive = deconv.forward(x);
    }
    {
      ScopedBackend backend(ConvBackend::kGemm);
      fast = deconv.forward(x);
    }
    EXPECT_EQ(diff_count(naive, fast), 0u)
        << "cin=" << c.cin << " cout=" << c.cout << " k=" << c.k
        << " stride=" << c.stride << " pad=" << c.pad << " h=" << c.h
        << " w=" << c.w;
  }
}

TEST(ConvBackendEquivalence, EnvVarSelectsNaiveOracle) {
  set_conv_backend(ConvBackend::kAuto);
  setenv("S2A_NAIVE_CONV", "1", 1);
  EXPECT_EQ(conv_backend(), ConvBackend::kNaive);
  unsetenv("S2A_NAIVE_CONV");
  EXPECT_EQ(conv_backend(), ConvBackend::kGemm);
}

TEST(ConvBackendEquivalence, GemmPathBitExactAcrossThreadCounts) {
  // The band split changes with the thread count; the per-element
  // accumulation chain must not. Forced-parallel so this shards even on
  // a 1-core box (and genuinely exercises arena slots under TSan).
  ScopedForceParallel force;
  ScopedBackend backend(ConvBackend::kGemm);
  Rng rng(44);
  Conv2D conv(4, 16, 3, 2, 1, rng);
  ConvTranspose2D deconv(16, 4, 4, 2, 1, rng);
  const Tensor x = Tensor::randn({1, 4, 48, 48}, rng);
  const Tensor z = Tensor::randn({1, 16, 24, 24}, rng);

  Tensor conv_serial, deconv_serial;
  {
    util::ScopedGlobalThreads threads(1);
    conv_serial = conv.forward(x);
    deconv_serial = deconv.forward(z);
  }
  for (int threads : {2, 3, 4, 7}) {
    util::ScopedGlobalThreads scoped(threads);
    EXPECT_EQ(diff_count(conv_serial, conv.forward(x)), 0u)
        << threads << " threads";
    EXPECT_EQ(diff_count(deconv_serial, deconv.forward(z)), 0u)
        << threads << " threads";
  }
}

TEST(Im2Col, TransposedGatherMatchesIm2Col) {
  // im2col_t is the transposed gather the weight-gradient GEMMs consume:
  // row per output pixel, taps in (ic, ky, kx) order — exactly im2col's
  // column. Both are pure copies, so the match is bitwise.
  struct Case {
    int cin, h, w, k, stride, pad;
  };
  const Case cases[] = {
      {1, 5, 5, 1, 1, 0}, {2, 9, 7, 3, 1, 1}, {3, 11, 8, 4, 2, 1},
      {2, 6, 7, 5, 3, 2},
  };
  Rng rng(79);
  for (const auto& c : cases) {
    const int oh = (c.h + 2 * c.pad - c.k) / c.stride + 1;
    const int ow = (c.w + 2 * c.pad - c.k) / c.stride + 1;
    const int kdim = im2col_rows(c.cin, c.k);
    const auto x = random_vec(static_cast<std::size_t>(c.cin) * c.h * c.w, rng);

    std::vector<double> col(static_cast<std::size_t>(kdim) * oh * ow);
    im2col(x.data(), c.cin, c.h, c.w, c.k, c.stride, c.pad, ow, 0, oh,
           col.data());
    std::vector<double> colt(static_cast<std::size_t>(oh) * ow * kdim);
    im2col_t(x.data(), c.cin, c.h, c.w, c.k, c.stride, c.pad, ow, 0, oh,
             colt.data());
    for (int p = 0; p < oh * ow; ++p)
      for (int r = 0; r < kdim; ++r)
        ASSERT_EQ(colt[static_cast<std::size_t>(p) * kdim + r],
                  col[static_cast<std::size_t>(r) * oh * ow + p])
            << "p=" << p << " r=" << r;

    // Band decomposition: rows [lo, hi) written at the band's base
    // pointer must equal the same rows of the full lowering.
    for (int split = 1; split < oh; ++split) {
      std::vector<double> band(static_cast<std::size_t>(oh - split) * ow *
                               kdim);
      im2col_t(x.data(), c.cin, c.h, c.w, c.k, c.stride, c.pad, ow, split, oh,
               band.data());
      for (std::size_t i = 0; i < band.size(); ++i)
        ASSERT_EQ(band[i],
                  colt[static_cast<std::size_t>(split) * ow * kdim + i]);
    }
  }
}

TEST(Im2Col, Col2ImBandDecompositionMatchesFullScatter) {
  // col2im_band restricted to input rows [iy_lo, iy_hi) must reproduce
  // the full col2im bitwise on those rows: each destination element's
  // terms arrive in the same (ic,ky,kx; oy asc) order, the band bounds
  // only skip terms that land outside the band.
  const int cin = 2, h = 11, w = 8, k = 4, stride = 2, pad = 1;
  const int oh = (h + 2 * pad - k) / stride + 1;
  const int ow = (w + 2 * pad - k) / stride + 1;
  const int kdim = im2col_rows(cin, k);
  Rng rng(80);
  const auto col =
      random_vec(static_cast<std::size_t>(kdim) * oh * ow, rng);

  std::vector<double> full(static_cast<std::size_t>(cin) * h * w, 0.0);
  col2im(col.data(), cin, h, w, k, stride, pad, ow, 0, oh, full.data());

  for (int split = 1; split < h; ++split) {
    std::vector<double> banded(full.size(), 0.0);
    col2im_band(col.data(), cin, h, w, k, stride, pad, ow, 0, split,
                banded.data());
    col2im_band(col.data(), cin, h, w, k, stride, pad, ow, split, h,
                banded.data());
    for (std::size_t i = 0; i < full.size(); ++i)
      ASSERT_EQ(banded[i], full[i]) << "split=" << split << " i=" << i;
  }
}

// ---- Backward: GEMM path vs. naive oracle ----

struct BackwardResult {
  Tensor dx, gw, gb;
};

// One zero_grad + forward + backward under `backend`; returns dx and
// copies of the accumulated parameter gradients.
BackwardResult run_backward(Layer& layer, const Tensor& x,
                            const Tensor& grad_out, ConvBackend backend) {
  ScopedBackend scoped(backend);
  layer.zero_grad();
  layer.forward(x);
  BackwardResult r;
  r.dx = layer.backward(grad_out);
  r.gw = *layer.grads()[0];
  r.gb = *layer.grads()[1];
  return r;
}

TEST(ConvBackendEquivalence, Conv2DBackwardBitExactAcrossShapes) {
  Rng rng(45);
  struct Case {
    int cin, cout, k, stride, pad, h, w;
  };
  const Case cases[] = {
      {1, 1, 1, 1, 0, 5, 5},   {2, 3, 3, 1, 1, 7, 5},
      {3, 4, 3, 2, 1, 9, 11},  {4, 16, 3, 2, 1, 48, 48},
      {2, 5, 5, 3, 2, 13, 17}, {1, 2, 4, 2, 1, 10, 6},
      {6, 4, 3, 1, 0, 9, 9},
  };
  for (const auto& c : cases) {
    Conv2D conv(c.cin, c.cout, c.k, c.stride, c.pad, rng);
    const Tensor x = Tensor::randn({2, c.cin, c.h, c.w}, rng);
    const Tensor g = Tensor::randn(
        {2, c.cout, conv.out_size(c.h), conv.out_size(c.w)}, rng);
    const auto naive = run_backward(conv, x, g, ConvBackend::kNaive);
    const auto fast = run_backward(conv, x, g, ConvBackend::kGemm);
    EXPECT_EQ(diff_count(naive.dx, fast.dx), 0u)
        << "dx: cin=" << c.cin << " cout=" << c.cout << " k=" << c.k
        << " stride=" << c.stride << " pad=" << c.pad;
    EXPECT_EQ(diff_count(naive.gw, fast.gw), 0u)
        << "gw: cin=" << c.cin << " cout=" << c.cout << " k=" << c.k
        << " stride=" << c.stride << " pad=" << c.pad;
    EXPECT_EQ(diff_count(naive.gb, fast.gb), 0u) << "gb";
  }
}

TEST(ConvBackendEquivalence, ConvTranspose2DBackwardBitExactAcrossShapes) {
  Rng rng(46);
  struct Case {
    int cin, cout, k, stride, pad, h, w;
  };
  const Case cases[] = {
      {1, 1, 1, 1, 0, 5, 5},  {3, 2, 3, 1, 1, 7, 5},
      {2, 3, 4, 2, 1, 9, 11}, {32, 16, 4, 2, 1, 12, 12},
      {2, 2, 5, 3, 2, 6, 7},  {4, 1, 3, 2, 0, 5, 9},
  };
  for (const auto& c : cases) {
    ConvTranspose2D deconv(c.cin, c.cout, c.k, c.stride, c.pad, rng);
    const Tensor x = Tensor::randn({2, c.cin, c.h, c.w}, rng);
    const Tensor g = Tensor::randn(
        {2, c.cout, deconv.out_size(c.h), deconv.out_size(c.w)}, rng);
    const auto naive = run_backward(deconv, x, g, ConvBackend::kNaive);
    const auto fast = run_backward(deconv, x, g, ConvBackend::kGemm);
    EXPECT_EQ(diff_count(naive.dx, fast.dx), 0u)
        << "dx: cin=" << c.cin << " cout=" << c.cout << " k=" << c.k
        << " stride=" << c.stride << " pad=" << c.pad;
    EXPECT_EQ(diff_count(naive.gw, fast.gw), 0u)
        << "gw: cin=" << c.cin << " cout=" << c.cout << " k=" << c.k
        << " stride=" << c.stride << " pad=" << c.pad;
    EXPECT_EQ(diff_count(naive.gb, fast.gb), 0u) << "gb";
  }
}

TEST(ConvBackendEquivalence, DenseBitExactBothDirections) {
  Rng rng(47);
  struct Case {
    int in, out, n;
  };
  const Case cases[] = {{1, 1, 1}, {3, 4, 2}, {17, 9, 5}, {64, 48, 16},
                        {5, 130, 3}};
  for (const auto& c : cases) {
    Dense dense(c.in, c.out, rng);
    const Tensor x = Tensor::randn({c.n, c.in}, rng);
    Tensor y_naive, y_fast;
    {
      ScopedBackend backend(ConvBackend::kNaive);
      y_naive = dense.forward(x);
    }
    {
      ScopedBackend backend(ConvBackend::kGemm);
      y_fast = dense.forward(x);
    }
    EXPECT_EQ(diff_count(y_naive, y_fast), 0u)
        << "forward: in=" << c.in << " out=" << c.out << " n=" << c.n;

    const Tensor g = Tensor::randn({c.n, c.out}, rng);
    const auto naive = run_backward(dense, x, g, ConvBackend::kNaive);
    const auto fast = run_backward(dense, x, g, ConvBackend::kGemm);
    EXPECT_EQ(diff_count(naive.dx, fast.dx), 0u)
        << "dx: in=" << c.in << " out=" << c.out << " n=" << c.n;
    EXPECT_EQ(diff_count(naive.gw, fast.gw), 0u)
        << "gw: in=" << c.in << " out=" << c.out << " n=" << c.n;
    EXPECT_EQ(diff_count(naive.gb, fast.gb), 0u) << "gb";
  }
}

TEST(ConvBackendEquivalence, BackwardBitExactAcrossThreadCounts) {
  // Sharding stripes gw over columns and dx over bands — never over a
  // reduction axis — so every gradient element's complete chain runs in
  // one task and the bits cannot depend on the thread count. The naive
  // oracle (always serial) anchors the comparison at each count.
  ScopedForceParallel force;
  Rng rng(48);
  Conv2D conv(4, 16, 3, 2, 1, rng);
  ConvTranspose2D deconv(16, 4, 4, 2, 1, rng);
  const Tensor x = Tensor::randn({1, 4, 48, 48}, rng);
  const Tensor gx = Tensor::randn({1, 16, 24, 24}, rng);
  const Tensor z = Tensor::randn({1, 16, 24, 24}, rng);
  const Tensor gz = Tensor::randn({1, 4, 48, 48}, rng);

  BackwardResult conv_oracle, deconv_oracle;
  {
    util::ScopedGlobalThreads threads(1);
    conv_oracle = run_backward(conv, x, gx, ConvBackend::kNaive);
    deconv_oracle = run_backward(deconv, z, gz, ConvBackend::kNaive);
  }
  for (int threads : {1, 2, 4}) {
    util::ScopedGlobalThreads scoped(threads);
    const auto c = run_backward(conv, x, gx, ConvBackend::kGemm);
    EXPECT_EQ(diff_count(conv_oracle.dx, c.dx), 0u) << threads << " threads";
    EXPECT_EQ(diff_count(conv_oracle.gw, c.gw), 0u) << threads << " threads";
    EXPECT_EQ(diff_count(conv_oracle.gb, c.gb), 0u) << threads << " threads";
    const auto d = run_backward(deconv, z, gz, ConvBackend::kGemm);
    EXPECT_EQ(diff_count(deconv_oracle.dx, d.dx), 0u) << threads << " threads";
    EXPECT_EQ(diff_count(deconv_oracle.gw, d.gw), 0u) << threads << " threads";
    EXPECT_EQ(diff_count(deconv_oracle.gb, d.gb), 0u) << threads << " threads";
  }
}

// ---- Backward: finite-difference gradient checks ----

// L = 0.5*||y||^2 so dL/dy = y (non-uniform output gradients), matching
// the nn_test.cpp convention. Checks dL/d(input) and dL/d(params) by
// central differences under the given backend.
void check_gradients(Layer& layer, const Tensor& x, ConvBackend backend,
                     double eps = 1e-5, double tol = 1e-6) {
  ScopedBackend scoped(backend);
  layer.zero_grad();
  const Tensor y = layer.forward(x);
  const Tensor dx = layer.backward(y);

  Tensor xm = x;
  for (std::size_t i = 0; i < x.numel(); ++i) {
    xm[i] = x[i] + eps;
    const double lp = 0.5 * layer.forward(xm).squared_norm();
    xm[i] = x[i] - eps;
    const double lm = 0.5 * layer.forward(xm).squared_norm();
    xm[i] = x[i];
    const double num = (lp - lm) / (2 * eps);
    ASSERT_NEAR(dx[i], num, tol * std::max(1.0, std::abs(num)))
        << "input grad mismatch at " << i;
  }

  auto params = layer.params();
  auto grads = layer.grads();
  ASSERT_EQ(params.size(), grads.size());
  for (std::size_t pi = 0; pi < params.size(); ++pi) {
    Tensor& p = *params[pi];
    const Tensor& g = *grads[pi];
    for (std::size_t i = 0; i < p.numel(); ++i) {
      const double orig = p[i];
      p[i] = orig + eps;
      const double lp = 0.5 * layer.forward(x).squared_norm();
      p[i] = orig - eps;
      const double lm = 0.5 * layer.forward(x).squared_norm();
      p[i] = orig;
      const double num = (lp - lm) / (2 * eps);
      ASSERT_NEAR(g[i], num, tol * std::max(1.0, std::abs(num)))
          << "param " << pi << " grad mismatch at " << i;
    }
  }
}

TEST(BackwardGradientCheck, Conv2DBothBackends) {
  for (ConvBackend backend : {ConvBackend::kNaive, ConvBackend::kGemm}) {
    Rng rng(90);
    Conv2D conv(2, 3, 3, 2, 1, rng);
    const Tensor x = Tensor::randn({2, 2, 6, 6}, rng);
    check_gradients(conv, x, backend);
  }
}

TEST(BackwardGradientCheck, ConvTranspose2DBothBackends) {
  for (ConvBackend backend : {ConvBackend::kNaive, ConvBackend::kGemm}) {
    Rng rng(91);
    ConvTranspose2D deconv(3, 2, 4, 2, 1, rng);
    const Tensor x = Tensor::randn({1, 3, 4, 4}, rng);
    check_gradients(deconv, x, backend);
  }
}

TEST(BackwardGradientCheck, DenseBothBackends) {
  for (ConvBackend backend : {ConvBackend::kNaive, ConvBackend::kGemm}) {
    Rng rng(92);
    Dense dense(3, 4, rng);
    const Tensor x = Tensor::randn({2, 3}, rng);
    check_gradients(dense, x, backend);
  }
}

// ---- ScratchArena ----

TEST(ScratchArena, AllocationsAreAligned) {
  util::ScratchArena arena;
  for (std::size_t count : {1u, 3u, 64u, 1000u, 5000u}) {
    double* p = arena.alloc(count);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) %
                  util::ScratchArena::kAlignment,
              0u)
        << "count=" << count;
  }
}

TEST(ScratchArena, FrameAllocationsDoNotOverlap) {
  util::ScratchArena arena;
  double* a = arena.alloc(100);
  double* b = arena.alloc(50);
  double* c = arena.alloc(7000);  // forces a second block mid-frame
  for (int i = 0; i < 100; ++i) a[i] = 1.0;
  for (int i = 0; i < 50; ++i) b[i] = 2.0;
  for (int i = 0; i < 7000; ++i) c[i] = 3.0;
  for (int i = 0; i < 100; ++i) ASSERT_EQ(a[i], 1.0);
  for (int i = 0; i < 50; ++i) ASSERT_EQ(b[i], 2.0);
  EXPECT_GE(arena.used(), 7150u);
}

TEST(ScratchArena, GrowOnlyReuseAfterReset) {
  util::ScratchArena arena;
  arena.alloc(3000);
  arena.alloc(3000);
  const std::size_t cap = arena.capacity();
  EXPECT_GE(cap, 6000u);
  arena.reset();
  EXPECT_EQ(arena.used(), 0u);
  // Same demand again: capacity must not grow (grow-only, but
  // converged), and the first allocation must come from the coalesced
  // block's base — i.e. no allocator traffic in steady state.
  double* p1 = arena.alloc(3000);
  arena.alloc(3000);
  EXPECT_EQ(arena.capacity(), cap);
  arena.reset();
  EXPECT_EQ(arena.alloc(3000), p1);
}

TEST(ScratchArena, SlotsAreIndependentUnderPoolTasks) {
  util::ScopedGlobalThreads threads(4);
  util::ScratchArena arena;
  const std::size_t kSlots = 8;
  arena.ensure_slots(kSlots);
  EXPECT_EQ(arena.slots(), kSlots);
  // Each task hammers its own slot; any cross-slot sharing of the bump
  // pointer or backing blocks shows up as corrupted sums (and as a race
  // under TSan).
  std::vector<double> sums(kSlots, 0.0);
  util::global_pool().parallel_for_chunks(
      0, kSlots, 1, [&](std::size_t lo, std::size_t, std::size_t c) {
        util::ScratchArena& slot = arena.slot(c);
        for (int rep = 0; rep < 50; ++rep) {
          slot.reset();
          double* buf = slot.alloc(512);
          for (int i = 0; i < 512; ++i)
            buf[i] = static_cast<double>(lo + 1);
          double s = 0.0;
          for (int i = 0; i < 512; ++i) s += buf[i];
          sums[c] = s;
        }
      });
  for (std::size_t i = 0; i < kSlots; ++i)
    EXPECT_EQ(sums[i], 512.0 * static_cast<double>(i + 1));
}

TEST(ScratchArena, EnsureSlotsNeverShrinks) {
  util::ScratchArena arena;
  arena.ensure_slots(4);
  arena.slot(3).alloc(100);
  const std::size_t cap = arena.slot(3).capacity();
  arena.ensure_slots(2);
  EXPECT_EQ(arena.slots(), 4u);
  EXPECT_EQ(arena.slot(3).capacity(), cap);
}

TEST(ScratchArena, TrainingStepsStopGrowingAfterWarmup) {
  // The zero-steady-state-allocation invariant: after the first two full
  // forward+backward steps (the second lets reset() coalesce multi-block
  // chains into one backing block, which itself counts as a growth),
  // further steps must perform zero arena growth and leave capacity
  // untouched. Forced-parallel at a fixed thread count so the slot
  // sub-arenas are exercised too.
  ScopedForceParallel force;
  util::ScopedGlobalThreads threads(4);
  ScopedBackend backend(ConvBackend::kGemm);
  Rng rng(93);
  Conv2D conv(3, 8, 3, 2, 1, rng);
  ConvTranspose2D deconv(8, 3, 4, 2, 1, rng);
  Dense dense(32, 16, rng);

  const Tensor xc = Tensor::randn({1, 3, 16, 16}, rng);
  const Tensor xd = Tensor::randn({1, 8, 8, 8}, rng);
  const Tensor xf = Tensor::randn({4, 32}, rng);
  const auto step = [&] {
    for (Layer* l : {static_cast<Layer*>(&conv), static_cast<Layer*>(&deconv),
                     static_cast<Layer*>(&dense)}) {
      l->zero_grad();
    }
    conv.backward(conv.forward(xc));
    deconv.backward(deconv.forward(xd));
    dense.backward(dense.forward(xf));
  };

  step();
  step();
  std::size_t growth = 0, capacity = 0;
  for (const Layer* l : {static_cast<const Layer*>(&conv),
                         static_cast<const Layer*>(&deconv),
                         static_cast<const Layer*>(&dense)}) {
    growth += l->scratch()->total_growth_count();
    capacity += l->scratch()->total_capacity();
  }
  EXPECT_GT(growth, 0u);
  EXPECT_GT(capacity, 0u);

  for (int rep = 0; rep < 5; ++rep) step();
  std::size_t growth_after = 0, capacity_after = 0;
  for (const Layer* l : {static_cast<const Layer*>(&conv),
                         static_cast<const Layer*>(&deconv),
                         static_cast<const Layer*>(&dense)}) {
    growth_after += l->scratch()->total_growth_count();
    capacity_after += l->scratch()->total_capacity();
  }
  EXPECT_EQ(growth_after, growth);
  EXPECT_EQ(capacity_after, capacity);
}

}  // namespace
}  // namespace s2a::nn
