// Tests for the shared thread pool (util/thread_pool.hpp): sizing and
// the S2A_THREADS override, exactly-once index coverage, deterministic
// chunking, exception propagation, inline degradation, nested-submit
// safety, and span nesting from worker threads (the obs contract the
// parallel hot paths rely on).
#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <chrono>
#include <cstdlib>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "obs/obs.hpp"
#include "util/check.hpp"
#include "util/thread_pool.hpp"

namespace s2a::util {
namespace {

// setenv/unsetenv guard so env-override tests can't leak into each other
// (or into the global pool of later tests).
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    ::setenv(name, value, 1);
  }
  ~ScopedEnv() { ::unsetenv(name_); }

 private:
  const char* name_;
};

TEST(ThreadPool, ConstructionAndTeardown) {
  for (int threads : {1, 2, 4, 8}) {
    ThreadPool pool(threads);
    EXPECT_EQ(pool.size(), threads);
  }
  // Teardown with work having been executed.
  {
    ThreadPool pool(4);
    std::atomic<int> n{0};
    pool.parallel_for(0, 100, 3, [&](std::size_t) { n.fetch_add(1); });
    EXPECT_EQ(n.load(), 100);
  }  // destructor joins here; must not hang or crash
}

TEST(ThreadPool, DefaultSizeIsPositive) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1);
}

TEST(ThreadPool, EnvOverrideSetsSize) {
  ScopedEnv env("S2A_THREADS", "3");
  ThreadPool pool;
  EXPECT_EQ(pool.size(), 3);
}

TEST(ThreadPool, InvalidEnvOverrideIgnored) {
  {
    ScopedEnv env("S2A_THREADS", "zebra");
    EXPECT_GE(ThreadPool().size(), 1);
  }
  {
    ScopedEnv env("S2A_THREADS", "-2");
    EXPECT_GE(ThreadPool().size(), 1);
  }
}

TEST(ThreadPool, ExplicitCountBeatsEnv) {
  ScopedEnv env("S2A_THREADS", "7");
  EXPECT_EQ(ThreadPool(2).size(), 2);
}

TEST(ThreadPool, EnvThreadsOneRunsInline) {
  ScopedEnv env("S2A_THREADS", "1");
  ThreadPool pool;
  ASSERT_EQ(pool.size(), 1);
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<std::thread::id> ran(64);
  pool.parallel_for(0, ran.size(), 4,
                    [&](std::size_t i) { ran[i] = std::this_thread::get_id(); });
  for (const auto& id : ran) EXPECT_EQ(id, caller);
}

class ThreadPoolCoverageTest : public ::testing::TestWithParam<int> {};

TEST_P(ThreadPoolCoverageTest, EveryIndexExactlyOnce) {
  ThreadPool pool(GetParam());
  const std::size_t n = 1000;
  std::vector<std::atomic<int>> hits(n);
  for (auto& h : hits) h.store(0);
  pool.parallel_for(0, n, 7, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST_P(ThreadPoolCoverageTest, ChunksPartitionTheRange) {
  ThreadPool pool(GetParam());
  const std::size_t begin = 5, end = 105, grain = 9;
  const std::size_t chunks = ThreadPool::num_chunks(begin, end, grain);
  std::vector<std::atomic<int>> hits(end);
  for (auto& h : hits) h.store(0);
  std::vector<std::atomic<int>> chunk_seen(chunks);
  for (auto& c : chunk_seen) c.store(0);
  pool.parallel_for_chunks(
      begin, end, grain, [&](std::size_t lo, std::size_t hi, std::size_t c) {
        // Chunk bounds are a pure function of (begin, end, grain, c) —
        // the determinism contract callers' ordered merges rely on.
        EXPECT_EQ(lo, begin + c * grain);
        EXPECT_EQ(hi, std::min(end, lo + grain));
        chunk_seen[c].fetch_add(1);
        for (std::size_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
      });
  for (std::size_t i = 0; i < begin; ++i) EXPECT_EQ(hits[i].load(), 0);
  for (std::size_t i = begin; i < end; ++i) EXPECT_EQ(hits[i].load(), 1);
  for (std::size_t c = 0; c < chunks; ++c) EXPECT_EQ(chunk_seen[c].load(), 1);
}

INSTANTIATE_TEST_SUITE_P(ThreadCounts, ThreadPoolCoverageTest,
                         ::testing::Values(1, 2, 4, 8));

TEST(ThreadPool, EmptyRangeRunsNothing) {
  ThreadPool pool(4);
  std::atomic<int> n{0};
  pool.parallel_for(10, 10, 1, [&](std::size_t) { n.fetch_add(1); });
  pool.parallel_for(10, 5, 1, [&](std::size_t) { n.fetch_add(1); });
  EXPECT_EQ(n.load(), 0);
}

TEST(ThreadPool, ZeroGrainIsAnError) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(0, 10, 0, [](std::size_t) {}), CheckError);
}

TEST(ThreadPool, WorkerExceptionPropagatesToCaller) {
  for (int threads : {1, 2, 4}) {
    ThreadPool pool(threads);
    EXPECT_THROW(
        pool.parallel_for(0, 100, 1,
                          [](std::size_t i) {
                            if (i == 37) throw std::runtime_error("boom");
                          }),
        std::runtime_error);
    // The pool stays usable after an exception.
    std::atomic<int> n{0};
    pool.parallel_for(0, 50, 4, [&](std::size_t) { n.fetch_add(1); });
    EXPECT_EQ(n.load(), 50);
  }
}

TEST(ThreadPool, ExceptionSkipsRemainingChunks) {
  ThreadPool pool(1);  // inline: chunk order is sequential and observable
  std::atomic<int> executed{0};
  try {
    pool.parallel_for_chunks(0, 100, 10,
                             [&](std::size_t, std::size_t, std::size_t c) {
                               executed.fetch_add(1);
                               if (c == 2) throw std::runtime_error("stop");
                             });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error&) {
  }
  EXPECT_EQ(executed.load(), 3);  // chunks 0, 1, 2 only
}

TEST(ThreadPool, NestedSubmitDoesNotDeadlock) {
  ThreadPool pool(4);
  const std::size_t outer = 16, inner = 32;
  std::vector<std::atomic<int>> hits(outer * inner);
  for (auto& h : hits) h.store(0);
  pool.parallel_for(0, outer, 1, [&](std::size_t o) {
    pool.parallel_for(0, inner, 4, [&](std::size_t i) {
      hits[o * inner + i].fetch_add(1);
    });
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, NestedLoopsOnWorkersRunInline) {
  ThreadPool pool(4);
  std::atomic<int> worker_tasks{0};
  pool.parallel_for(0, 64, 1, [&](std::size_t) {
    // Brief sleep so workers get scheduled even on a single-core host
    // (otherwise the participating caller can claim every chunk first).
    std::this_thread::sleep_for(std::chrono::microseconds(200));
    if (!ThreadPool::on_worker_thread()) return;
    worker_tasks.fetch_add(1);
    const std::thread::id me = std::this_thread::get_id();
    // A nested loop from a worker must execute entirely on that worker.
    pool.parallel_for(0, 8, 1, [&](std::size_t) {
      EXPECT_EQ(std::this_thread::get_id(), me);
    });
  });
  // With 3 workers racing a participating caller over 64 chunks, workers
  // execute at least one (scheduling-dependent, but 64 chunks is plenty).
  EXPECT_GE(worker_tasks.load(), 1);
}

TEST(ThreadPool, PostRunsTaskOnWorkerThread) {
  ThreadPool pool(2);
  std::promise<std::thread::id> ran;
  auto fut = ran.get_future();
  pool.post([&ran] { ran.set_value(std::this_thread::get_id()); });
  EXPECT_NE(fut.get(), std::this_thread::get_id());
}

TEST(ThreadPool, PendingPostsDrainBeforeTeardown) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 32; ++i)
      pool.post([&ran] { ran.fetch_add(1); });
  }  // destructor must drain the queue before joining
  EXPECT_EQ(ran.load(), 32);
}

TEST(ThreadPool, GlobalPoolRespondsToSetGlobalThreads) {
  set_global_threads(3);
  EXPECT_EQ(global_pool().size(), 3);
  set_global_threads(0);  // restore default
  EXPECT_GE(global_pool().size(), 1);
}

TEST(ThreadPool, ScopedGlobalThreadsRestoresDefault) {
  {
    ScopedGlobalThreads scoped(2);
    EXPECT_EQ(global_pool().size(), 2);
  }
  ScopedEnv env("S2A_THREADS", "5");
  {
    ScopedGlobalThreads scoped(2);
    EXPECT_EQ(global_pool().size(), 2);
  }
  // After restore, the default re-reads the environment.
  EXPECT_EQ(global_pool().size(), 5);
  set_global_threads(0);
}

// Spans opened inside pool tasks must land on the worker's own track at
// depth 0, while chunks the caller runs inline nest under the caller's
// open spans — the "spans nest correctly from worker threads" contract.
TEST(ThreadPool, TraceSpansNestCorrectlyAcrossThreads) {
  ThreadPool pool(4);
  obs::trace_buffer().clear();
  obs::set_enabled(true);
  const std::uint32_t base_depth = obs::current_thread_depth();
  {
    S2A_TRACE_SCOPE("outer");
    EXPECT_EQ(obs::current_thread_depth(), base_depth + 1);
    pool.parallel_for(0, 64, 1, [&](std::size_t) {
      S2A_TRACE_SCOPE("task");
      if (ThreadPool::on_worker_thread()) {
        // Fresh track: the worker has no open parent span.
        EXPECT_EQ(obs::current_thread_depth(), 1u);
      } else {
        // Caller-inline: nests under "outer".
        EXPECT_EQ(obs::current_thread_depth(), base_depth + 2);
      }
    });
    EXPECT_EQ(obs::current_thread_depth(), base_depth + 1);
  }
  EXPECT_EQ(obs::current_thread_depth(), base_depth);
  obs::set_enabled(false);

  // Exported events: every "task" span carries the depth/tid of the
  // thread that ran it, and 64 were recorded in total.
  int tasks = 0;
  for (const auto& ev : obs::trace_buffer().events()) {
    if (ev.name == nullptr || std::string(ev.name) != "task") continue;
    ++tasks;
    EXPECT_LE(ev.depth, base_depth + 1);
  }
  EXPECT_EQ(tasks, 64);
  obs::trace_buffer().clear();
}

}  // namespace
}  // namespace s2a::util
