// Tests for the simulated network link, the circuit breaker, and the
// uncertainty-gated offload executor built on them (docs/RESILIENCE.md):
// per-request determinism of the link, fault-window behavior and the
// severity-clamp regression, breaker state transitions, offload routing /
// retry / hedge / fallback semantics, loop integration (strict-mode
// failures drive the existing NOMINAL → DEGRADED → SAFE_STOP machine),
// and the chaos determinism cases — per-member LoopMetrics, offload
// metrics and breaker transitions bit-identical across S2A_THREADS ∈
// {1, 4} under the same S2A_FAULT_SEED. Labeled chaos + tsan.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <limits>
#include <memory>
#include <vector>

#include "core/fleet.hpp"
#include "core/loop.hpp"
#include "core/offload.hpp"
#include "core/policies.hpp"
#include "fault/fault.hpp"
#include "net/circuit.hpp"
#include "net/link.hpp"
#include "util/check.hpp"
#include "util/finite.hpp"
#include "util/thread_pool.hpp"

namespace s2a::core {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

std::uint64_t fault_seed() {
  const char* env = std::getenv("S2A_FAULT_SEED");
  return env != nullptr ? std::strtoull(env, nullptr, 10) : 42ULL;
}

net::LinkConfig healthy_link() {
  net::LinkConfig cfg;
  cfg.bandwidth_bytes_per_s = 1e7;
  cfg.base_latency_s = 2e-3;
  cfg.jitter_s = 1e-3;
  return cfg;
}

// ------------------------------------------------------------- LinkSim

TEST(Link, RoundTripDeterministicPerRequestId) {
  net::LinkConfig cfg = healthy_link();
  cfg.loss_prob = 0.3;
  const net::LinkSim link(cfg, {}, /*seed=*/7, /*stream_id=*/0);
  for (std::uint64_t id = 0; id < 50; ++id) {
    const net::RoundTrip a = link.roundtrip(1.0, 1024, 256, 1e-3, id);
    const net::RoundTrip b = link.roundtrip(1.0, 1024, 256, 1e-3, id);
    EXPECT_EQ(a.delivered, b.delivered);
    EXPECT_EQ(a.corrupted, b.corrupted);
    EXPECT_DOUBLE_EQ(a.response_at_s, b.response_at_s);
  }
}

TEST(Link, StreamsDecorrelated) {
  net::LinkConfig cfg = healthy_link();
  cfg.loss_prob = 0.5;
  const net::LinkSim a(cfg, {}, /*seed=*/7, /*stream_id=*/0);
  const net::LinkSim b(cfg, {}, /*seed=*/7, /*stream_id=*/1);
  int differing = 0;
  for (std::uint64_t id = 0; id < 200; ++id) {
    if (a.roundtrip(0.0, 512, 512, 0.0, id).delivered !=
        b.roundtrip(0.0, 512, 512, 0.0, id).delivered)
      ++differing;
  }
  EXPECT_GT(differing, 20);  // p=0.5 per direction: ~half should differ
}

TEST(Link, HealthyRoundTripRespectsPhysics) {
  const net::LinkSim link(healthy_link(), {}, 1);
  const net::RoundTrip rt = link.roundtrip(0.0, 10000, 10000, 2e-3, 0);
  ASSERT_TRUE(rt.delivered);
  EXPECT_FALSE(rt.corrupted);
  // Floor: two serializations (1 ms each at 10 MB/s) + two propagation
  // delays + remote compute, no jitter.
  EXPECT_GE(rt.response_at_s, 2e-3 + 2 * 2e-3 + 2e-3);
  // Ceiling: floor plus both jitter draws.
  EXPECT_LE(rt.response_at_s, 2e-3 + 2 * (2e-3 + 1e-3) + 2e-3 + 1e-9);
  EXPECT_NEAR(link.estimate_rtt_s(10000, 10000, 2e-3), 9e-3, 1e-9);
}

TEST(Link, PartitionWindowDropsTraffic) {
  const net::LinkFaultSchedule sched(
      {{net::LinkFaultKind::kPartition, 1.0, 2.0, 0.0}});
  const net::LinkSim link(healthy_link(), sched, 3);
  EXPECT_TRUE(link.roundtrip(0.5, 256, 256, 0.0, 0).delivered);
  EXPECT_FALSE(link.roundtrip(1.5, 256, 256, 0.0, 1).delivered);
  // In-flight at partition onset: sent just before the window, arrives
  // inside it — eaten too.
  EXPECT_FALSE(link.roundtrip(0.999, 256, 256, 0.0, 2).delivered);
  EXPECT_TRUE(link.roundtrip(2.5, 256, 256, 0.0, 3).delivered);
}

TEST(Link, SpikeAndCollapseSlowTheLink) {
  const net::LinkFaultSchedule sched(
      {{net::LinkFaultKind::kLatencySpike, 1.0, 2.0, 0.1},
       {net::LinkFaultKind::kBandwidthCollapse, 3.0, 4.0, 0.01}});
  const net::LinkSim link(healthy_link(), sched, 5);
  const double clean = link.roundtrip(0.0, 10000, 256, 0.0, 0).response_at_s;
  const double spiked =
      link.roundtrip(1.0, 10000, 256, 0.0, 0).response_at_s - 1.0;
  const double dripped =
      link.roundtrip(3.0, 10000, 256, 0.0, 0).response_at_s - 3.0;
  EXPECT_GE(spiked, clean + 0.1);          // both directions spiked
  EXPECT_GE(dripped, clean + 10000 / 1e7 * 90.0);  // 100x slower uplink
}

TEST(Link, CorruptWindowFlagsResponses) {
  const net::LinkFaultSchedule sched(
      {{net::LinkFaultKind::kCorrupt, 0.0, 10.0, 1.0}});
  const net::LinkSim link(healthy_link(), sched, 9);
  const net::RoundTrip rt = link.roundtrip(0.5, 256, 256, 0.0, 0);
  ASSERT_TRUE(rt.delivered);
  EXPECT_TRUE(rt.corrupted);
}

// Satellite regression: an out-of-range FaultPlan entry must not produce
// an unbounded latency spike (or a zero/negative bandwidth, or a
// probability outside [0, 1]) — severities are clamped, not trusted.
TEST(Link, SeverityClampRegression) {
  EXPECT_DOUBLE_EQ(
      net::clamp_link_magnitude(net::LinkFaultKind::kLatencySpike, 1e9),
      net::kMaxLatencySpikeS);
  EXPECT_DOUBLE_EQ(
      net::clamp_link_magnitude(net::LinkFaultKind::kLatencySpike, kNaN), 0.0);
  EXPECT_DOUBLE_EQ(
      net::clamp_link_magnitude(net::LinkFaultKind::kBandwidthCollapse, -3.0),
      net::kMinBandwidthFactor);
  EXPECT_DOUBLE_EQ(
      net::clamp_link_magnitude(net::LinkFaultKind::kCorrupt, 7.0), 1.0);

  // Through the FaultPlan path: a 1e9-second "spike" schedule still
  // yields bounded round trips.
  const fault::FaultPlan plan(
      {{fault::FaultKind::kLinkLatencySpike, 0.0, 10.0, -1, 1e9},
       {fault::FaultKind::kLinkCorrupt, 0.0, 10.0, -1, -5.0}});
  EXPECT_DOUBLE_EQ(plan.events()[0].magnitude, net::kMaxLatencySpikeS);
  EXPECT_DOUBLE_EQ(plan.events()[1].magnitude, 0.0);
  const net::LinkSim link(healthy_link(), plan.link_schedule(), 11);
  const net::RoundTrip rt = link.roundtrip(0.0, 256, 256, 0.0, 0);
  ASSERT_TRUE(rt.delivered);
  EXPECT_FALSE(rt.corrupted);  // corrupt probability clamped up to 0
  EXPECT_LE(rt.response_at_s, 2 * (net::kMaxLatencySpikeS + 4e-3) + 1e-3);
}

// ----------------------------------------------------------- FaultPlan

TEST(Fault, LinkKindsInvisibleToComponentQueries) {
  const fault::FaultPlan plan(
      {{fault::FaultKind::kLinkPartition, 0.0, 5.0, -1, 0.0}});
  EXPECT_EQ(plan.component_fault_at(1.0), nullptr);
  ASSERT_NE(plan.link_fault_at(1.0), nullptr);
  EXPECT_EQ(plan.link_fault_at(1.0)->kind, fault::FaultKind::kLinkPartition);
  EXPECT_EQ(plan.link_fault_at(6.0), nullptr);
  const net::LinkFaultSchedule sched = plan.link_schedule();
  ASSERT_EQ(sched.windows().size(), 1u);
  EXPECT_TRUE(sched.partitioned(1.0));
}

TEST(Fault, RandomLinkPlanSeededAndWellFormed) {
  const fault::FaultPlan a =
      fault::FaultPlan::random_link_plan(123, 20.0, 8, 1.0);
  const fault::FaultPlan b =
      fault::FaultPlan::random_link_plan(123, 20.0, 8, 1.0);
  ASSERT_EQ(a.events().size(), 8u);
  for (std::size_t i = 0; i < a.events().size(); ++i) {
    EXPECT_TRUE(a.events()[i].is_link_kind());
    EXPECT_EQ(a.events()[i].kind, b.events()[i].kind);
    EXPECT_DOUBLE_EQ(a.events()[i].start, b.events()[i].start);
    EXPECT_DOUBLE_EQ(a.events()[i].magnitude, b.events()[i].magnitude);
  }
  const fault::FaultPlan c =
      fault::FaultPlan::random_link_plan(124, 20.0, 8, 1.0);
  bool any_diff = false;
  for (std::size_t i = 0; i < c.events().size(); ++i)
    any_diff = any_diff || c.events()[i].start != a.events()[i].start;
  EXPECT_TRUE(any_diff);
}

// ------------------------------------------------------ CircuitBreaker

TEST(Breaker, OpensAfterConsecutiveFailures) {
  net::CircuitBreaker br({/*failure_threshold=*/3, /*open_cooldown_s=*/1.0,
                          /*probe_prob=*/1.0, /*close_after=*/2},
                         7);
  EXPECT_EQ(br.state(), net::BreakerState::kClosed);
  for (int i = 0; i < 2; ++i) br.record_failure(0.1 * i);
  EXPECT_EQ(br.state(), net::BreakerState::kClosed);
  br.record_success();  // success resets the streak
  for (int i = 0; i < 3; ++i) br.record_failure(0.3 + 0.1 * i);
  EXPECT_EQ(br.state(), net::BreakerState::kOpen);
  EXPECT_FALSE(br.allow(0.6, 0));
  EXPECT_EQ(br.metrics().opens, 1);
  EXPECT_EQ(br.metrics().blocked, 1);
}

TEST(Breaker, HalfOpenProbesThenCloses) {
  net::CircuitBreaker br({3, 1.0, /*probe_prob=*/1.0, /*close_after=*/2}, 7);
  for (int i = 0; i < 3; ++i) br.record_failure(0.0);
  ASSERT_EQ(br.state(), net::BreakerState::kOpen);
  EXPECT_FALSE(br.allow(0.5, 1));  // cooldown not elapsed
  EXPECT_TRUE(br.allow(1.5, 2));   // HALF_OPEN, probe admitted
  EXPECT_EQ(br.state(), net::BreakerState::kHalfOpen);
  br.record_success();
  EXPECT_EQ(br.state(), net::BreakerState::kHalfOpen);
  EXPECT_TRUE(br.allow(1.6, 3));
  br.record_success();
  EXPECT_EQ(br.state(), net::BreakerState::kClosed);
  EXPECT_EQ(br.metrics().half_opens, 1);
  EXPECT_EQ(br.metrics().probes, 2);
  EXPECT_EQ(br.metrics().closes, 1);
}

TEST(Breaker, FailedProbeReopensAndRestartsCooldown) {
  net::CircuitBreaker br({3, 1.0, 1.0, 2}, 7);
  for (int i = 0; i < 3; ++i) br.record_failure(0.0);
  EXPECT_TRUE(br.allow(1.5, 0));  // probe
  br.record_failure(1.5);
  EXPECT_EQ(br.state(), net::BreakerState::kOpen);
  EXPECT_EQ(br.metrics().opens, 2);
  EXPECT_FALSE(br.allow(2.0, 1));  // new cooldown from t=1.5
  EXPECT_TRUE(br.allow(2.6, 2));
}

TEST(Breaker, ProbeAdmissionSeededDeterministic) {
  auto run = [](std::uint64_t seed) {
    net::CircuitBreaker br({1, 0.1, /*probe_prob=*/0.5, 1}, seed);
    br.record_failure(0.0);
    std::vector<bool> admissions;
    for (std::uint64_t id = 0; id < 32; ++id)
      admissions.push_back(br.allow(1.0 + 1e-3 * id, id));
    return admissions;
  };
  EXPECT_EQ(run(9), run(9));
  EXPECT_NE(run(9), run(10));
}

// ----------------------------------------------- OffloadExecutor units

class SmallLocalModel : public Processor {
 public:
  std::vector<double> process(const Observation& obs, Rng&) override {
    ++calls;
    std::vector<double> out = obs.data;
    for (double& v : out) v *= 2.0;
    return out;
  }
  double energy_per_call_j() const override { return 5e-3; }
  long calls = 0;
};

class BigRemoteModel : public Processor {
 public:
  std::vector<double> process(const Observation& obs, Rng&) override {
    ++calls;
    std::vector<double> out = obs.data;
    for (double& v : out) v *= 10.0;
    return out;
  }
  long calls = 0;
};

/// Deterministic gate scripted off the observation timestamp: uncertain
/// (score 2.0) when sin(40 t) > 0.2, confident (score 0.0) otherwise —
/// roughly 40% of ticks uncertain, no RNG involved.
class ScriptedGate : public UncertaintySource {
 public:
  double score(const Observation& obs) override {
    return std::sin(40.0 * obs.timestamp) > 0.2 ? 2.0 : 0.0;
  }
};

class AlwaysUncertainGate : public UncertaintySource {
 public:
  double score(const Observation&) override { return 2.0; }
};

Observation make_obs(double t) {
  Observation obs;
  obs.data = {std::sin(t), std::cos(t), 0.5};
  obs.timestamp = t;
  return obs;
}

OffloadConfig test_offload_config() {
  OffloadConfig cfg;
  cfg.deadline_s = 0.05;
  cfg.local_compute_s = 4e-3;
  cfg.remote_compute_s = 1e-3;
  cfg.max_retries = 2;
  cfg.breaker.open_cooldown_s = 0.25;
  return cfg;
}

TEST(Offload, ConfidentTicksStayLocal) {
  SmallLocalModel local;
  BigRemoteModel remote;
  ScriptedGate gate;
  OffloadConfig cfg = test_offload_config();
  cfg.regret_gate = 10.0;  // nothing scores above this
  OffloadExecutor exec(local, remote, net::LinkSim(healthy_link(), {}, 1),
                       cfg, &gate, 1);
  Rng rng(5);
  for (int i = 0; i < 20; ++i) {
    const Observation obs = make_obs(0.05 * i);
    const std::vector<double> out = exec.process_at(0.05 * i, obs, rng);
    EXPECT_DOUBLE_EQ(out[0], obs.data[0] * 2.0);  // local answer
    EXPECT_FALSE(exec.last_served_remote());
    EXPECT_DOUBLE_EQ(exec.last_latency_s(), cfg.local_compute_s);
  }
  EXPECT_EQ(exec.metrics().gated_local, 20);
  EXPECT_EQ(exec.metrics().remote_attempts, 0);
  EXPECT_EQ(remote.calls, 0);
  EXPECT_DOUBLE_EQ(exec.energy_per_call_j(), local.energy_per_call_j());
}

TEST(Offload, UncertainTicksUpgradeToRemoteOnHealthyLink) {
  SmallLocalModel local;
  BigRemoteModel remote;
  AlwaysUncertainGate gate;
  OffloadExecutor exec(local, remote, net::LinkSim(healthy_link(), {}, 2),
                       test_offload_config(), &gate, 2);
  Rng rng(5);
  for (int i = 0; i < 20; ++i) {
    const Observation obs = make_obs(0.05 * i);
    const std::vector<double> out = exec.process_at(0.05 * i, obs, rng);
    EXPECT_DOUBLE_EQ(out[0], obs.data[0] * 10.0);  // remote answer
    EXPECT_TRUE(exec.last_served_remote());
  }
  EXPECT_EQ(exec.metrics().remote_served, 20);
  EXPECT_EQ(exec.metrics().remote_successes, 20);
  EXPECT_EQ(local.calls, 0);
}

TEST(Offload, AlwaysModesBypassThePolicy) {
  SmallLocalModel local;
  BigRemoteModel remote;
  AlwaysUncertainGate gate;
  OffloadConfig cfg = test_offload_config();
  cfg.mode = OffloadMode::kAlwaysLocal;
  OffloadExecutor exec(local, remote, net::LinkSim(healthy_link(), {}, 3),
                       cfg, &gate, 3);
  Rng rng(5);
  for (int i = 0; i < 10; ++i)
    exec.process_at(0.05 * i, make_obs(0.05 * i), rng);
  EXPECT_EQ(exec.metrics().local_served, 10);
  EXPECT_EQ(exec.metrics().remote_attempts, 0);
  EXPECT_EQ(exec.metrics().gated_local, 0);  // the gate never ran

  ScriptedGate confident_half;
  cfg.mode = OffloadMode::kAlwaysRemote;
  OffloadExecutor exec2(local, remote, net::LinkSim(healthy_link(), {}, 4),
                        cfg, &confident_half, 4);
  for (int i = 0; i < 10; ++i)
    exec2.process_at(0.05 * i, make_obs(0.05 * i), rng);
  EXPECT_EQ(exec2.metrics().remote_served, 10);
}

TEST(Offload, LossyLinkRetriesAndFallsBackDeterministically) {
  net::LinkConfig lcfg = healthy_link();
  lcfg.loss_prob = 0.5;
  auto run = [&] {
    SmallLocalModel local;
    BigRemoteModel remote;
    AlwaysUncertainGate gate;
    OffloadConfig cfg = test_offload_config();
    cfg.breaker.failure_threshold = 100;  // isolate retry behavior
    OffloadExecutor exec(local, remote, net::LinkSim(lcfg, {}, 6), cfg,
                         &gate, 6);
    Rng rng(5);
    for (int i = 0; i < 200; ++i)
      exec.process_at(0.05 * i, make_obs(0.05 * i), rng);
    return exec.metrics();
  };
  const OffloadMetrics m = run();
  EXPECT_GT(m.retries, 0);
  EXPECT_GT(m.remote_successes, 50);  // retries rescue most requests
  EXPECT_GT(m.remote_failures, 0);    // but not all
  // Every request is accounted for: attempted remote (success or
  // failure) or kept local by the cost model riding the loss EMA.
  EXPECT_EQ(m.remote_successes + m.remote_failures + m.cost_gated,
            m.requests);
  EXPECT_EQ(m.local_served + m.remote_served, m.requests);
  EXPECT_EQ(run(), m);  // bit-identical replay
}

TEST(Offload, CorruptResponsesDiscardedAndServedLocally) {
  const net::LinkFaultSchedule sched(
      {{net::LinkFaultKind::kCorrupt, 0.0, 1e6, 1.0}});
  SmallLocalModel local;
  BigRemoteModel remote;
  AlwaysUncertainGate gate;
  OffloadConfig cfg = test_offload_config();
  cfg.breaker.failure_threshold = 1000;
  OffloadExecutor exec(local, remote, net::LinkSim(healthy_link(), sched, 7),
                       cfg, &gate, 7);
  Rng rng(5);
  for (int i = 0; i < 10; ++i)
    exec.process_at(0.05 * i, make_obs(0.05 * i), rng);
  EXPECT_EQ(exec.metrics().remote_served, 0);
  EXPECT_EQ(exec.metrics().local_served, 10);
  EXPECT_GT(exec.metrics().corrupt_responses, 0);
  EXPECT_EQ(remote.calls, 0);  // a corrupted payload is never consumed
}

TEST(Offload, BreakerShortCircuitsPartitionedLink) {
  const net::LinkFaultSchedule sched(
      {{net::LinkFaultKind::kPartition, 0.0, 1e6, 0.0}});
  SmallLocalModel local;
  BigRemoteModel remote;
  AlwaysUncertainGate gate;
  OffloadConfig cfg = test_offload_config();
  cfg.breaker.failure_threshold = 3;
  cfg.breaker.open_cooldown_s = 1e5;  // stays open for the whole test
  OffloadExecutor exec(local, remote, net::LinkSim(healthy_link(), sched, 8),
                       cfg, &gate, 8);
  Rng rng(5);
  for (int i = 0; i < 50; ++i)
    exec.process_at(0.05 * i, make_obs(0.05 * i), rng);
  EXPECT_EQ(exec.breaker().state(), net::BreakerState::kOpen);
  EXPECT_GT(exec.metrics().breaker_blocked, 30);
  // Once OPEN the link is never touched again: attempts stop at the
  // trip point (3 failed requests × (1 + max_retries) visits at most).
  EXPECT_LE(exec.metrics().remote_attempts,
            3L * (1 + cfg.max_retries) + 3);
  EXPECT_EQ(exec.metrics().local_served, 50);
}

TEST(Offload, HedgedLocalBeatsSpikedRemote) {
  // A spike window well above the seeded cost model: the remote reply is
  // past its p95 budget, the hedged local computation fires and wins.
  const net::LinkFaultSchedule sched(
      {{net::LinkFaultKind::kLatencySpike, 0.0, 1e6, 0.05}});
  SmallLocalModel local;
  BigRemoteModel remote;
  AlwaysUncertainGate gate;
  OffloadConfig cfg = test_offload_config();
  cfg.deadline_s = 0.25;  // the slow reply still beats the deadline
  cfg.max_retries = 0;
  cfg.hedge_factor = 1.5;
  OffloadExecutor exec(local, remote, net::LinkSim(healthy_link(), sched, 9),
                       cfg, &gate, 9);
  Rng rng(5);
  const std::vector<double> out = exec.process_at(0.0, make_obs(0.0), rng);
  EXPECT_EQ(exec.metrics().hedged, 1);
  EXPECT_EQ(exec.metrics().hedge_local_wins, 1);
  EXPECT_FALSE(exec.last_served_remote());
  EXPECT_DOUBLE_EQ(out[0], make_obs(0.0).data[0] * 2.0);  // local answer
  EXPECT_LT(exec.last_latency_s(), 0.1);  // cheaper than waiting out the spike
}

TEST(Offload, PrepaidLocalConsumedExactlyOncePerTick) {
  SmallLocalModel local;
  BigRemoteModel remote;
  AlwaysUncertainGate gate;
  OffloadConfig cfg = test_offload_config();
  cfg.prepaid_local = true;
  OffloadExecutor exec(local, remote, net::LinkSim(healthy_link(), {}, 10),
                       cfg, &gate, 10);
  Rng rng(5);
  for (int i = 0; i < 15; ++i) {
    exec.process_at(0.05 * i, make_obs(0.05 * i), rng);
    EXPECT_TRUE(exec.last_served_remote());  // remote upgrade still wins
  }
  EXPECT_EQ(local.calls, 15);  // exactly one local consumption per tick
  EXPECT_EQ(remote.calls, 15);
}

// ------------------------------------------------- loop integration

class FiniteGuardActuator : public Actuator {
 public:
  void actuate(const Action& action, Rng&) override {
    ++count;
    saw_nonfinite = saw_nonfinite || !util::all_finite(action.data);
  }
  long count = 0;
  bool saw_nonfinite = false;
};

/// One offloading loop member: sensor → OffloadExecutor(local, remote,
/// link) → finite-guarded actuator.
struct OffloadStack {
  class DeterministicSensor : public Sensor {
   public:
    Observation sense(double now, Rng& rng) override {
      Observation obs;
      obs.data = {std::sin(now) + rng.normal(0.0, 0.05),
                  std::cos(now) + rng.normal(0.0, 0.05)};
      obs.timestamp = now;
      obs.energy_j = 1e-3;
      return obs;
    }
  };

  DeterministicSensor sensor;
  SmallLocalModel local;
  BigRemoteModel remote;
  AlwaysUncertainGate gate;
  FiniteGuardActuator act;
  PeriodicPolicy policy{1};
  std::unique_ptr<OffloadExecutor> exec;
  std::unique_ptr<SensingActionLoop> loop;

  OffloadStack(net::LinkSim link, OffloadConfig ocfg, LoopConfig lcfg,
               std::uint64_t seed) {
    exec = std::make_unique<OffloadExecutor>(local, remote, std::move(link),
                                             ocfg, &gate, seed);
    loop = std::make_unique<SensingActionLoop>(sensor, *exec, act, policy,
                                               lcfg);
  }
};

LoopConfig hysteresis_loop_config() {
  LoopConfig cfg;
  cfg.resilience.degrade_after = 2;
  cfg.resilience.recover_after = 2;
  cfg.resilience.safe_stop_after = 3;
  return cfg;
}

TEST(OffloadLoop, StrictPartitionLandsInSafeStopWithinHysteresisBound) {
  // Partition from t=0.5 to the end; strict mode means uncertain ticks
  // with no remote answer emit non-finite sentinels, which the loop's
  // actuation boundary blocks — driving DEGRADED → SAFE_STOP through
  // the existing machine, with zero non-finite actuations.
  const net::LinkFaultSchedule sched(
      {{net::LinkFaultKind::kPartition, 0.5, 1e6, 0.0}});
  OffloadConfig ocfg = test_offload_config();
  ocfg.strict_uncertain = true;
  OffloadStack stack(net::LinkSim(healthy_link(), sched, 21), ocfg,
                     hysteresis_loop_config(), 21);
  Rng rng(77);
  constexpr int kTicks = 100;
  stack.loop->run(kTicks, rng);

  EXPECT_EQ(stack.loop->state(), LoopState::kSafeStop);
  EXPECT_FALSE(stack.act.saw_nonfinite);
  EXPECT_GT(stack.loop->metrics().quarantined_actions, 0);
  // Hysteresis bound: the partition starts at tick 10 (dt=0.05); the
  // latch needs degrade_after + safe_stop_after consecutive bad ticks,
  // so it must land within a few ticks of tick 15 and the loop spends
  // the rest of the run halted.
  EXPECT_GE(stack.loop->metrics().safe_stop_ticks, kTicks - 20);
}

TEST(OffloadLoop, TransientPartitionRecoversToNominal) {
  // Partition [0.5, 1.5): the breaker opens, local fallback carries the
  // loop (non-strict → every tick still actuates finitely), and after
  // the window a HALF_OPEN probe succeeds and the breaker re-closes.
  const net::LinkFaultSchedule sched(
      {{net::LinkFaultKind::kPartition, 0.5, 1.5, 0.0}});
  OffloadStack stack(net::LinkSim(healthy_link(), sched, 22),
                     test_offload_config(), hysteresis_loop_config(), 22);
  Rng rng(78);
  constexpr int kTicks = 80;  // 4 s at dt=0.05
  stack.loop->run(kTicks, rng);

  EXPECT_EQ(stack.loop->state(), LoopState::kNominal);
  EXPECT_EQ(stack.loop->metrics().safe_stops, 0);
  EXPECT_EQ(stack.loop->metrics().quarantined_actions, 0);
  EXPECT_EQ(stack.loop->metrics().actions, kTicks);
  EXPECT_FALSE(stack.act.saw_nonfinite);
  EXPECT_GE(stack.exec->breaker().metrics().opens, 1);
  EXPECT_GE(stack.exec->breaker().metrics().closes, 1);
  EXPECT_EQ(stack.exec->breaker().state(), net::BreakerState::kClosed);
}

// --------------------------------------------- chaos determinism

// The satellite acceptance case: a fleet of offloading members sharing
// one contended uplink (static fair-share, per-member stream ids) under
// a seeded link fault plan — per-member LoopMetrics, offload metrics,
// breaker metrics and final breaker states must be bit-identical across
// thread counts. Seed comes from S2A_FAULT_SEED (default 42) so the CI
// chaos step can sweep it.
TEST(OffloadChaos, FleetDeterministicAcrossThreadCounts) {
  constexpr int kLoops = 8, kTicks = 120;
  const std::uint64_t seed = fault_seed();
  const fault::FaultPlan plan = fault::FaultPlan::random_link_plan(
      seed, /*horizon_s=*/6.0, /*events=*/6, /*mean_duration_s=*/1.0);
  net::LinkConfig lcfg = healthy_link();
  lcfg.loss_prob = 0.1;
  lcfg.sharers = kLoops;

  struct Result {
    LoopMetrics loop;
    OffloadMetrics offload;
    net::BreakerMetrics breaker;
    net::BreakerState breaker_state;
    LoopState state;
  };
  auto run_fleet = [&](int threads) {
    util::ScopedGlobalThreads t(threads);
    std::vector<std::unique_ptr<OffloadStack>> stacks;
    Fleet fleet(FleetConfig{/*batch=*/3});
    for (int i = 0; i < kLoops; ++i) {
      OffloadConfig ocfg = test_offload_config();
      ocfg.strict_uncertain = (i % 4 == 0);  // a quarter run strict
      stacks.push_back(std::make_unique<OffloadStack>(
          net::LinkSim(lcfg, plan.link_schedule(), seed,
                       /*stream_id=*/static_cast<std::uint64_t>(i)),
          ocfg, hysteresis_loop_config(), seed + i));
      fleet.add(*stacks.back()->loop, {kTicks}, /*seed=*/900 + i);
    }
    fleet.run();
    std::vector<Result> out;
    for (auto& s : stacks) {
      EXPECT_FALSE(s->act.saw_nonfinite);
      out.push_back({s->loop->metrics(), s->exec->metrics(),
                     s->exec->breaker().metrics(),
                     s->exec->breaker().state(), s->loop->state()});
    }
    return out;
  };

  const auto one = run_fleet(1);
  const auto four = run_fleet(4);
  ASSERT_EQ(one.size(), four.size());
  long remote_served_total = 0;
  for (std::size_t i = 0; i < one.size(); ++i) {
    EXPECT_EQ(one[i].loop, four[i].loop) << "member " << i;
    EXPECT_EQ(one[i].offload, four[i].offload) << "member " << i;
    EXPECT_EQ(one[i].breaker, four[i].breaker) << "member " << i;
    EXPECT_EQ(one[i].breaker_state, four[i].breaker_state) << "member " << i;
    EXPECT_EQ(one[i].state, four[i].state) << "member " << i;
    remote_served_total += one[i].offload.remote_served;
  }
  // The chaos plan must not have degenerated into never offloading.
  EXPECT_GT(remote_served_total, 0);
}

// A fully partitioned uplink mid-run: every member either recovers to
// NOMINAL via local fallback (non-strict) or latches SAFE_STOP within
// its hysteresis bound (strict) — never a wedged in-between state, and
// never a non-finite actuation.
TEST(OffloadChaos, MidRunPartitionEveryMemberRecoversOrSafeStops) {
  constexpr int kLoops = 6, kTicks = 100;
  const net::LinkFaultSchedule transient(
      {{net::LinkFaultKind::kPartition, 1.0, 2.0, 0.0}});
  const net::LinkFaultSchedule permanent(
      {{net::LinkFaultKind::kPartition, 1.0, 1e6, 0.0}});
  util::ScopedGlobalThreads t(4);
  std::vector<std::unique_ptr<OffloadStack>> stacks;
  Fleet fleet(FleetConfig{/*batch=*/2});
  for (int i = 0; i < kLoops; ++i) {
    const bool strict = i % 2 == 1;
    OffloadConfig ocfg = test_offload_config();
    ocfg.strict_uncertain = strict;
    stacks.push_back(std::make_unique<OffloadStack>(
        net::LinkSim(healthy_link(), strict ? permanent : transient, 31,
                     static_cast<std::uint64_t>(i)),
        ocfg, hysteresis_loop_config(), 31 + i));
    fleet.add(*stacks.back()->loop, {kTicks}, /*seed=*/700 + i);
  }
  const FleetStats stats = fleet.run();

  for (int i = 0; i < kLoops; ++i) {
    const bool strict = i % 2 == 1;
    EXPECT_FALSE(stacks[i]->act.saw_nonfinite) << "member " << i;
    if (strict) {
      EXPECT_EQ(stacks[i]->loop->state(), LoopState::kSafeStop)
          << "member " << i;
      // Latched within the hysteresis bound of the partition onset
      // (tick 20), not at the very end of the run.
      EXPECT_GE(stacks[i]->loop->metrics().safe_stop_ticks, kTicks - 35)
          << "member " << i;
    } else {
      EXPECT_EQ(stacks[i]->loop->state(), LoopState::kNominal)
          << "member " << i;
      EXPECT_EQ(stacks[i]->loop->metrics().actions, kTicks)
          << "member " << i;
    }
    // Zero deadline misses attributable to a stuck remote call: the
    // link is virtual-time, so members never wall-block.
    EXPECT_EQ(stats.loops[static_cast<std::size_t>(i)].deadline_misses, 0);
    EXPECT_EQ(stats.loops[static_cast<std::size_t>(i)].shed, 0);
    EXPECT_EQ(stats.loops[static_cast<std::size_t>(i)].executed, kTicks);
  }
}

}  // namespace
}  // namespace s2a::core
