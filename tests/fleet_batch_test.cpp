// Randomized differential harness for the cross-loop batched inference
// engine (core/batched_fleet.hpp), plus the nn batched-forward entry
// points and the fleet admission policy.
//
// The headline contract: a fleet member's entire observable outcome —
// LoopMetrics, loop state, clock, actuation history — is bit-identical
// whether its ticks ran under a serial per-loop fleet or fused into
// batched forwards, across member counts, gather sizes, S2A_THREADS ∈
// {1, 4}, and fault chaos. ~50 seeded configurations sweep that space:
// a synthetic (pure-function) batch processor covers the engine
// plumbing broadly and cheaply, and real conv-net configurations pin
// the whole nn stack (stack → batched im2col/GEMM forward → unstack).
// Run under TSan via check.sh (ctest -L tsan).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "core/batched_fleet.hpp"
#include "core/fleet.hpp"
#include "core/loop.hpp"
#include "core/policies.hpp"
#include "fault/fault.hpp"
#include "lidar/autoencoder.hpp"
#include "lidar/batched.hpp"
#include "lidar/detector.hpp"
#include "nn/batch.hpp"
#include "nn/conv2d.hpp"
#include "util/thread_pool.hpp"

namespace s2a::core {
namespace {

// ------------------------------------------------------------ fixtures

// Emits a flattened pseudo-occupancy grid of fixed size, driven by the
// member's own Rng stream.
class GridSensor : public Sensor {
 public:
  explicit GridSensor(std::size_t numel) : numel_(numel) {}
  Observation sense(double now, Rng& rng) override {
    Observation obs;
    obs.data.resize(numel_);
    for (std::size_t i = 0; i < numel_; ++i)
      obs.data[i] = rng.bernoulli(0.15) ? 1.0 : 0.1 * rng.uniform();
    obs.timestamp = now;
    obs.energy_j = 1e-3;
    return obs;
  }

 private:
  std::size_t numel_;
};

// Pure-function batch processor: rng-free, thread-safe, and its batched
// path really goes through nn::stack_batch/unstack_batch so the
// gather/scatter plumbing is exercised even without a conv net.
class AffineBatchProcessor : public BatchProcessor {
 public:
  explicit AffineBatchProcessor(int numel) : shape_{numel} {}

  std::vector<double> process(const Observation& obs, Rng&) override {
    std::vector<double> out(obs.data.size());
    transform(obs.data.data(), out.data(), obs.data.size());
    return out;
  }

  std::vector<std::vector<double>> process_batch(
      const std::vector<const Observation*>& obs) override {
    ++batch_calls;
    max_extent = std::max(max_extent, static_cast<long>(obs.size()));
    std::vector<const std::vector<double>*> samples;
    samples.reserve(obs.size());
    for (const Observation* o : obs) samples.push_back(&o->data);
    nn::Tensor x = nn::stack_batch(samples, shape_);
    nn::Tensor y(x.shape());
    for (std::size_t b = 0; b < obs.size(); ++b)
      transform(x.data() + b * static_cast<std::size_t>(shape_[0]),
                y.data() + b * static_cast<std::size_t>(shape_[0]),
                static_cast<std::size_t>(shape_[0]));
    return nn::unstack_batch(y);
  }

  double energy_per_call_j() const override { return 2e-4; }

  long batch_calls = 0;
  long max_extent = 0;

 private:
  static void transform(const double* in, double* out, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i)
      out[i] = std::tanh(3.0 * in[i]) + 0.25 * in[n - 1 - i];
  }
  std::vector<int> shape_;
};

// Captures the full actuation history so the differential check catches
// any divergence in the actual command stream, not just the metrics.
class RecordingActuator : public Actuator {
 public:
  void actuate(const Action& action, Rng&) override {
    ++count;
    history.push_back(action.data);
  }
  long count = 0;
  std::vector<std::vector<double>> history;
};

// One member stack: sensor (optionally fault-wrapped), slot onto the
// shared processor, recording actuator, periodic policy.
struct MemberStack {
  std::unique_ptr<GridSensor> raw;
  std::unique_ptr<fault::FaultySensor> faulty;
  std::unique_ptr<BatchSlot> slot;
  std::unique_ptr<RecordingActuator> act;
  std::unique_ptr<PeriodicPolicy> policy;
  std::unique_ptr<SensingActionLoop> loop;

  MemberStack(std::size_t numel, BatchProcessor& shared, int period,
              LoopConfig cfg, fault::FaultPlan plan) {
    raw = std::make_unique<GridSensor>(numel);
    Sensor* sensor = raw.get();
    if (!plan.empty()) {
      faulty = std::make_unique<fault::FaultySensor>(*raw, plan);
      sensor = faulty.get();
    }
    slot = std::make_unique<BatchSlot>(shared);
    act = std::make_unique<RecordingActuator>();
    policy = std::make_unique<PeriodicPolicy>(period);
    loop = std::make_unique<SensingActionLoop>(*sensor, *slot, *act, *policy,
                                               cfg);
  }
};

// Sweep parameters for one seeded configuration.
struct SweepConfig {
  int members = 4;
  int gather = 4;
  int ticks = 40;
  int period = 1;
  bool chaos = false;
  double max_staleness_s = std::numeric_limits<double>::infinity();
  std::uint64_t seed = 0;
};

SweepConfig draw_config(std::uint64_t seed) {
  Rng r(seed * 2654435761ULL + 17);
  SweepConfig c;
  c.members = r.uniform_int(1, 10);
  const int gathers[] = {1, 4, 16};
  c.gather = gathers[r.uniform_int(0, 2)];
  c.ticks = r.uniform_int(20, 80);
  c.period = r.uniform_int(1, 2);
  c.chaos = r.bernoulli(0.5);
  // Occasionally bound staleness so the peek/commit staleness gate and
  // the fallback paths get differential coverage too.
  if (r.bernoulli(0.3)) c.max_staleness_s = 0.12;
  c.seed = seed;
  return c;
}

LoopConfig loop_config_for(const SweepConfig& c) {
  LoopConfig cfg;
  cfg.dt = 0.05;
  cfg.resilience.max_staleness_s = c.max_staleness_s;
  cfg.resilience.degrade_after = 2;
  cfg.resilience.recover_after = 2;
  // Some chaos configs escalate to SAFE_STOP so the engine's handling of
  // latched members (sense skipped, outcome discarded) is covered too.
  if (c.chaos && c.seed % 3 == 0) cfg.resilience.safe_stop_after = 4;
  return cfg;
}

fault::FaultPlan plan_for(const SweepConfig& c, int member) {
  if (!c.chaos) return {};
  return fault::FaultPlan::random_component_plan(
      /*seed=*/c.seed * 1000 + static_cast<std::uint64_t>(member),
      /*horizon_s=*/c.ticks * 0.05, /*events=*/4, /*mean_duration_s=*/0.3);
}

// Runs config `c` against `shared` under one engine and returns the
// stacks for inspection. `batched` selects BatchedFleet vs a serial
// per-loop Fleet (single worker, so a thread-unsafe shared model is
// safe on the serial side too).
std::vector<std::unique_ptr<MemberStack>> run_engine(
    const SweepConfig& c, std::size_t numel, BatchProcessor& shared,
    bool batched) {
  std::vector<std::unique_ptr<MemberStack>> stacks;
  for (int m = 0; m < c.members; ++m)
    stacks.push_back(std::make_unique<MemberStack>(
        numel, shared, c.period, loop_config_for(c), plan_for(c, m)));

  FleetLoopConfig lc;
  lc.ticks = c.ticks;  // infinite deadlines: fully deterministic
  if (batched) {
    BatchedFleetConfig bc;
    bc.gather = c.gather;
    BatchedFleet fleet(shared, bc);
    for (int m = 0; m < c.members; ++m)
      fleet.add(*stacks[static_cast<std::size_t>(m)]->loop,
                *stacks[static_cast<std::size_t>(m)]->slot, lc,
                /*seed=*/c.seed * 97 + static_cast<std::uint64_t>(m));
    FleetStats fs = fleet.run();
    EXPECT_EQ(fs.executed, static_cast<long>(c.members) * c.ticks);
  } else {
    FleetConfig fc;
    fc.max_workers = 1;
    Fleet fleet(fc);
    for (int m = 0; m < c.members; ++m)
      fleet.add(*stacks[static_cast<std::size_t>(m)]->loop, lc,
                /*seed=*/c.seed * 97 + static_cast<std::uint64_t>(m));
    FleetStats fs = fleet.run();
    EXPECT_EQ(fs.executed, static_cast<long>(c.members) * c.ticks);
  }
  return stacks;
}

void expect_identical_members(
    const std::vector<std::unique_ptr<MemberStack>>& a,
    const std::vector<std::unique_ptr<MemberStack>>& b, std::uint64_t seed) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t m = 0; m < a.size(); ++m) {
    SCOPED_TRACE("seed=" + std::to_string(seed) +
                 " member=" + std::to_string(m));
    EXPECT_EQ(a[m]->loop->metrics(), b[m]->loop->metrics());
    EXPECT_EQ(a[m]->loop->state(), b[m]->loop->state());
    EXPECT_DOUBLE_EQ(a[m]->loop->now(), b[m]->loop->now());
    EXPECT_EQ(a[m]->act->count, b[m]->act->count);
    // Bitwise actuation equality: vector<double> operator== is exact.
    EXPECT_EQ(a[m]->act->history, b[m]->act->history);
  }
}

// --------------------------------------- randomized differential sweep

// 36 synthetic configurations: serial reference at 1 worker, batched
// engine at S2A_THREADS ∈ {1, 4}; every member bit-identical everywhere.
TEST(FleetBatchDifferential, RandomizedSweepSynthetic) {
  constexpr std::size_t kNumel = 24;
  for (std::uint64_t seed = 0; seed < 36; ++seed) {
    const SweepConfig c = draw_config(seed);
    AffineBatchProcessor serial_proc(static_cast<int>(kNumel));
    AffineBatchProcessor batched_proc(static_cast<int>(kNumel));

    std::vector<std::unique_ptr<MemberStack>> ref;
    {
      util::ScopedGlobalThreads threads(1);
      ref = run_engine(c, kNumel, serial_proc, /*batched=*/false);
    }
    {
      util::ScopedGlobalThreads threads(1);
      auto got = run_engine(c, kNumel, batched_proc, /*batched=*/true);
      expect_identical_members(ref, got, seed);
    }
    {
      util::ScopedGlobalThreads threads(4);
      auto got = run_engine(c, kNumel, batched_proc, /*batched=*/true);
      expect_identical_members(ref, got, seed);
    }
    // The batched engine really fused (extent > 1) whenever it could.
    if (c.members > 1 && c.gather > 1) {
      EXPECT_GT(batched_proc.max_extent, 1) << "seed=" << seed;
    }
  }
}

// 14 real conv-net configurations: the shared model is a small
// occupancy autoencoder served through BatchedReconstructionProcessor,
// so the fused path runs the full stack → batched im2col/packed-GEMM
// forward → scatter chain.
TEST(FleetBatchDifferential, RandomizedSweepConvNet) {
  lidar::AutoencoderConfig acfg;
  acfg.grid.nx = 8;
  acfg.grid.ny = 8;
  acfg.grid.nz = 2;
  acfg.c1 = 4;
  acfg.c2 = 4;
  const std::size_t numel = static_cast<std::size_t>(acfg.grid.nx) *
                            acfg.grid.ny * acfg.grid.nz;

  for (std::uint64_t seed = 100; seed < 114; ++seed) {
    SweepConfig c = draw_config(seed);
    c.members = std::min(c.members, 6);
    c.ticks = std::min(c.ticks, 40);

    // Identically-seeded twin models: the serial fleet must not share a
    // thread-unsafe model with the batched fleet under test.
    Rng wa(7), wb(7);
    lidar::OccupancyAutoencoder ae_a(acfg, wa), ae_b(acfg, wb);
    lidar::BatchedReconstructionProcessor serial_proc(ae_a, 1e-3);
    lidar::BatchedReconstructionProcessor batched_proc(ae_b, 1e-3);

    std::vector<std::unique_ptr<MemberStack>> ref;
    {
      util::ScopedGlobalThreads threads(1);
      ref = run_engine(c, numel, serial_proc, /*batched=*/false);
    }
    {
      util::ScopedGlobalThreads threads(1);
      auto got = run_engine(c, numel, batched_proc, /*batched=*/true);
      expect_identical_members(ref, got, seed);
    }
    {
      util::ScopedGlobalThreads threads(4);
      auto got = run_engine(c, numel, batched_proc, /*batched=*/true);
      expect_identical_members(ref, got, seed);
    }
  }
}

// The engine reports its fusion work: with M > 1 ready members and
// gather > 1 the fused calls must carry more members than calls.
TEST(BatchedFleet, ReportsFusedForwards) {
  util::ScopedGlobalThreads threads(4);
  constexpr std::size_t kNumel = 16;
  AffineBatchProcessor shared(static_cast<int>(kNumel));
  SweepConfig c;
  c.members = 8;
  c.gather = 4;
  c.ticks = 10;

  std::vector<std::unique_ptr<MemberStack>> stacks;
  for (int m = 0; m < c.members; ++m)
    stacks.push_back(std::make_unique<MemberStack>(
        kNumel, shared, 1, LoopConfig{}, fault::FaultPlan{}));
  BatchedFleetConfig bc;
  bc.gather = c.gather;
  BatchedFleet fleet(shared, bc);
  FleetLoopConfig lc;
  lc.ticks = c.ticks;
  for (int m = 0; m < c.members; ++m)
    fleet.add(*stacks[static_cast<std::size_t>(m)]->loop,
              *stacks[static_cast<std::size_t>(m)]->slot, lc, 50 + m);
  const FleetStats fs = fleet.run();

  EXPECT_EQ(fs.executed, 80);
  EXPECT_EQ(fleet.batched_members(), 80);  // every tick was served fused
  EXPECT_EQ(fleet.batched_forwards(), 20);  // 8 members / gather 4 per round
  EXPECT_EQ(shared.max_extent, 4);
  // 2 groups per round × 10 rounds.
  EXPECT_EQ(fs.dispatches, 20);
}

// ------------------------------------------- nn batched forward layer

// Direct kernel-level check of the acceptance grid: batch sizes
// {1,4,16} × threads {1,4}, conv and deconv, batched forward rows
// bit-identical to per-sample forwards.
TEST(BatchedForward, ConvKernelsBitExactAcrossBatchAndThreads) {
  for (int nthreads : {1, 4}) {
    util::ScopedGlobalThreads threads(nthreads);
    for (int batch : {1, 4, 16}) {
      Rng wr(11);
      nn::Conv2D conv(3, 5, 3, 2, 1, wr);
      nn::ConvTranspose2D deconv(3, 5, 4, 2, 1, wr);
      Rng xr(batch * 31 + nthreads);
      nn::Tensor x = nn::Tensor::randn({batch, 3, 12, 12}, xr);

      nn::Tensor y = conv.forward(x);
      nn::Tensor z = deconv.forward(x);
      for (int b = 0; b < batch; ++b) {
        nn::Tensor xb({1, 3, 12, 12});
        std::copy(x.data() + static_cast<std::size_t>(b) * 3 * 12 * 12,
                  x.data() + static_cast<std::size_t>(b + 1) * 3 * 12 * 12,
                  xb.data());
        const nn::Tensor yb = conv.forward(xb);
        const nn::Tensor zb = deconv.forward(xb);
        const std::size_t ystride = y.numel() / static_cast<std::size_t>(batch);
        const std::size_t zstride = z.numel() / static_cast<std::size_t>(batch);
        for (std::size_t i = 0; i < ystride; ++i)
          ASSERT_EQ(y[static_cast<std::size_t>(b) * ystride + i], yb[i])
              << "conv b=" << b << " i=" << i << " threads=" << nthreads;
        for (std::size_t i = 0; i < zstride; ++i)
          ASSERT_EQ(z[static_cast<std::size_t>(b) * zstride + i], zb[i])
              << "deconv b=" << b << " i=" << i << " threads=" << nthreads;
      }
    }
  }
}

TEST(BatchedForward, StackUnstackRoundTrip) {
  std::vector<double> a{1.0, 2.0, 3.0, 4.0, 5.0, 6.0};
  std::vector<double> b{-1.0, 0.5, 0.0, 7.0, -2.0, 9.0};
  nn::Tensor t = nn::stack_batch({&a, &b}, {2, 3});
  ASSERT_EQ(t.shape(), (std::vector<int>{2, 2, 3}));
  const auto rows = nn::unstack_batch(t);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], a);
  EXPECT_EQ(rows[1], b);
}

// Batched embedding entry points: one fused encoder/backbone forward,
// rows bit-identical to the serial per-grid calls.
TEST(BatchedForward, EmbeddingsBitExact) {
  util::ScopedGlobalThreads threads(4);
  lidar::AutoencoderConfig acfg;
  acfg.grid.nx = 8;
  acfg.grid.ny = 8;
  acfg.grid.nz = 2;
  acfg.c1 = 4;
  acfg.c2 = 4;
  Rng wr(3);
  lidar::OccupancyAutoencoder ae(acfg, wr);
  lidar::DetectorConfig dcfg;
  dcfg.grid = acfg.grid;
  dcfg.c1 = 4;
  dcfg.c2 = 4;
  Rng dr(4);
  lidar::BevDetector det(dcfg, dr);

  const int batch = 5;
  Rng xr(21);
  nn::Tensor grids = nn::Tensor::randn({batch, 2, 8, 8}, xr);
  const auto ae_rows = lidar::batched_embeddings(ae, grids);
  const auto det_rows = det.feature_embeddings(grids);
  ASSERT_EQ(ae_rows.size(), static_cast<std::size_t>(batch));
  ASSERT_EQ(det_rows.size(), static_cast<std::size_t>(batch));
  for (int b = 0; b < batch; ++b) {
    nn::Tensor gb({1, 2, 8, 8});
    std::copy(grids.data() + static_cast<std::size_t>(b) * 2 * 8 * 8,
              grids.data() + static_cast<std::size_t>(b + 1) * 2 * 8 * 8,
              gb.data());
    EXPECT_EQ(ae_rows[static_cast<std::size_t>(b)], ae.embedding(gb));
    EXPECT_EQ(det_rows[static_cast<std::size_t>(b)],
              det.feature_embedding(gb));
  }
}

// ---------------------------------------------------- admission policy

TEST(FleetAdmissionPolicy, DisabledAlwaysAdmits) {
  FleetAdmission adm{AdmissionConfig{}};  // enabled = false
  adm.record_ticks(100, 100);
  adm.record_shed(500);
  EXPECT_EQ(adm.pressure(), 0.0);
  EXPECT_EQ(adm.decide(), AdmissionDecision::kAdmitted);
}

TEST(FleetAdmissionPolicy, ThresholdsDriveDecisions) {
  AdmissionConfig cfg;
  cfg.enabled = true;
  cfg.window = 100;
  cfg.min_samples = 10;
  cfg.degrade_threshold = 0.05;
  cfg.reject_threshold = 0.20;
  FleetAdmission adm(cfg);

  // Cold start: below min_samples everything is admitted.
  adm.record_ticks(5, 5);
  EXPECT_EQ(adm.pressure(), 0.0);
  EXPECT_EQ(adm.decide(), AdmissionDecision::kAdmitted);

  // 5 bad + 45 good = 10% pressure → degrade band.
  adm.record_ticks(45, 0);
  EXPECT_NEAR(adm.pressure(), 0.10, 1e-12);
  EXPECT_EQ(adm.decide(), AdmissionDecision::kDegraded);

  // Shed work pushes past the reject threshold.
  adm.record_shed(30);
  EXPECT_GE(adm.pressure(), cfg.reject_threshold);
  EXPECT_EQ(adm.decide(), AdmissionDecision::kRejected);

  // A window of clean ticks recovers: pressure decays to zero and new
  // members are admitted again.
  adm.record_ticks(100, 0);
  EXPECT_EQ(adm.pressure(), 0.0);
  EXPECT_EQ(adm.decide(), AdmissionDecision::kAdmitted);

  EXPECT_EQ(adm.admitted(), 2);
  EXPECT_EQ(adm.degraded(), 1);
  EXPECT_EQ(adm.rejected(), 1);
}

// try_add honors the decision: rejected members are not added, degraded
// members get a scaled (reduced-rate) deadline contract.
TEST(FleetAdmissionPolicy, TryAddAppliesContracts) {
  constexpr std::size_t kNumel = 8;
  AffineBatchProcessor shared(static_cast<int>(kNumel));
  AdmissionConfig acfg;
  acfg.enabled = true;
  acfg.window = 50;
  acfg.min_samples = 10;
  acfg.degrade_threshold = 0.05;
  acfg.reject_threshold = 0.50;
  acfg.degrade_factor = 4.0;

  BatchedFleetConfig bc;
  bc.admission = acfg;
  BatchedFleet fleet(shared, bc);

  MemberStack a(kNumel, shared, 1, LoopConfig{}, {});
  FleetLoopConfig lc;
  lc.ticks = 5;
  lc.deadline_s = 0.25;
  AdmissionResult r = fleet.try_add(*a.loop, *a.slot, lc, 1);
  EXPECT_EQ(r.decision, AdmissionDecision::kAdmitted);
  EXPECT_EQ(fleet.size(), 1u);

  // Pressure into the degrade band (but below reject).
  // Reach past min_samples with a 20% bad window.
  auto& adm = const_cast<FleetAdmission&>(fleet.admission());
  adm.record_ticks(40, 8);
  MemberStack b(kNumel, shared, 1, LoopConfig{}, {});
  r = fleet.try_add(*b.loop, *b.slot, lc, 2);
  EXPECT_EQ(r.decision, AdmissionDecision::kDegraded);
  EXPECT_EQ(fleet.size(), 2u);

  // Saturate: reject — the loop must NOT be admitted.
  adm.record_shed(50);
  MemberStack c(kNumel, shared, 1, LoopConfig{}, {});
  r = fleet.try_add(*c.loop, *c.slot, lc, 3);
  EXPECT_EQ(r.decision, AdmissionDecision::kRejected);
  EXPECT_EQ(fleet.size(), 2u);
  EXPECT_GE(r.pressure, 0.5);

  // Degraded member runs at the reduced rate but still to completion
  // (deadlines are generous enough here that nothing is shed).
  const FleetStats fs = fleet.run();
  EXPECT_EQ(fs.executed, 10);
  EXPECT_EQ(fs.loops.size(), 2u);
}

}  // namespace
}  // namespace s2a::core
