// Tests for the neuromorphic stack: surrogate gradients, LIF layer
// semantics and BPTT gradient checks, flow-network training and energy
// accounting, and the DOTIE spiking detector.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "neuro/dotie.hpp"
#include "neuro/flow_nets.hpp"
#include "neuro/spiking.hpp"
#include "util/check.hpp"

namespace s2a::neuro {
namespace {

TEST(Surrogate, TriangleShape) {
  EXPECT_DOUBLE_EQ(surrogate_grad(0.0), 1.0);
  EXPECT_DOUBLE_EQ(surrogate_grad(0.5), 0.5);
  EXPECT_DOUBLE_EQ(surrogate_grad(-0.5), 0.5);
  EXPECT_DOUBLE_EQ(surrogate_grad(1.0), 0.0);
  EXPECT_DOUBLE_EQ(surrogate_grad(5.0), 0.0);
}

TEST(Surrogate, WidthScales) {
  EXPECT_DOUBLE_EQ(surrogate_grad(0.0, 2.0), 0.5);
  EXPECT_GT(surrogate_grad(1.5, 2.0), 0.0);
}

TEST(SpikingLayer, NoInputNoSpikes) {
  Rng rng(1);
  SpikingConv2D layer(1, 2, 3, 1, 1, rng);
  layer.begin_sequence();
  for (int t = 0; t < 3; ++t) {
    const nn::Tensor s = layer.step(nn::Tensor({1, 1, 4, 4}));
    // Bias could cause spikes — zero it to isolate the dynamics.
    for (std::size_t i = 0; i < s.numel(); ++i) {
      // (checked below after bias zeroing in the stronger test)
    }
  }
  SUCCEED();
}

TEST(SpikingLayer, StrongInputSpikes) {
  Rng rng(2);
  SpikingConv2D layer(1, 1, 1, 1, 0, rng, false, 0.9, 0.5);
  layer.conv().params()[0]->fill(1.0);  // weight
  layer.conv().params()[1]->fill(0.0);  // bias
  layer.begin_sequence();
  const nn::Tensor x = nn::Tensor::full({1, 1, 2, 2}, 1.0);
  const nn::Tensor s = layer.step(x);
  for (std::size_t i = 0; i < s.numel(); ++i) EXPECT_DOUBLE_EQ(s[i], 1.0);
  EXPECT_DOUBLE_EQ(layer.total_output_spikes(), 4.0);
}

TEST(SpikingLayer, MembraneIntegratesAcrossSteps) {
  Rng rng(3);
  // Threshold 1.0, input 0.4/step, leak 1.0-ish: spikes only after
  // integration over multiple steps.
  SpikingConv2D layer(1, 1, 1, 1, 0, rng, false, 0.99, 1.0);
  layer.conv().params()[0]->fill(1.0);
  layer.conv().params()[1]->fill(0.0);
  layer.begin_sequence();
  const nn::Tensor x = nn::Tensor::full({1, 1, 1, 1}, 0.4);
  EXPECT_DOUBLE_EQ(layer.step(x)[0], 0.0);  // v ≈ 0.4
  EXPECT_DOUBLE_EQ(layer.step(x)[0], 0.0);  // v ≈ 0.8
  EXPECT_DOUBLE_EQ(layer.step(x)[0], 1.0);  // v ≈ 1.19 → spike
}

TEST(SpikingLayer, LeakDrainsMembrane) {
  Rng rng(4);
  SpikingConv2D layer(1, 1, 1, 1, 0, rng, false, 0.2, 1.0);
  layer.conv().params()[0]->fill(1.0);
  layer.conv().params()[1]->fill(0.0);
  layer.begin_sequence();
  const nn::Tensor x = nn::Tensor::full({1, 1, 1, 1}, 0.4);
  // With leak 0.2 the membrane converges to 0.4/(1−0.2) = 0.5 < θ.
  for (int t = 0; t < 10; ++t) EXPECT_DOUBLE_EQ(layer.step(x)[0], 0.0);
}

TEST(SpikingLayer, ResetBySubtractionKeepsResidual) {
  Rng rng(5);
  SpikingConv2D layer(1, 1, 1, 1, 0, rng, false, 0.999, 1.0);
  layer.conv().params()[0]->fill(1.0);
  layer.conv().params()[1]->fill(0.0);
  layer.begin_sequence();
  // Input 1.5 > θ=1: spike with residual ~0.5, which with the next input
  // of 0.6 crosses again.
  EXPECT_DOUBLE_EQ(layer.step(nn::Tensor::full({1, 1, 1, 1}, 1.5))[0], 1.0);
  EXPECT_DOUBLE_EQ(layer.step(nn::Tensor::full({1, 1, 1, 1}, 0.6))[0], 1.0);
}

TEST(SpikingLayer, LearnableDynamicsExposeParams) {
  Rng rng(6);
  SpikingConv2D fixed(1, 1, 3, 1, 1, rng, false);
  SpikingConv2D learnable(1, 1, 3, 1, 1, rng, true);
  EXPECT_EQ(learnable.params().size(), fixed.params().size() + 2);
  EXPECT_NEAR(learnable.leak(), 0.9, 1e-9);
  EXPECT_NEAR(learnable.threshold(), 1.0, 1e-9);
}

TEST(SpikingLayer, BpttGradientCheckOnWeights) {
  Rng rng(7);
  SpikingConv2D layer(1, 1, 1, 1, 0, rng, true, 0.8, 0.7);
  // Use smooth inputs so most neurons sit inside the surrogate's support
  // (|u − θ| < 1) where the surrogate equals a true derivative of the
  // triangle-smoothed spike, making central differences meaningful.
  const int t_steps = 3;
  std::vector<nn::Tensor> xs;
  Rng data_rng(8);
  for (int t = 0; t < t_steps; ++t) {
    nn::Tensor x({1, 1, 2, 2});
    for (std::size_t i = 0; i < x.numel(); ++i) x[i] = data_rng.uniform(0.2, 0.6);
    xs.push_back(x);
  }

  // Objective: sum over steps of 0.5·‖membrane-pre‖² via spikes? Spikes are
  // discontinuous, so instead check the *surrogate-consistent* gradient on
  // a spike-free run: with θ=0.7 and inputs ≤0.6·w the run below never
  // spikes, making v_t smooth in the weights — then dL/d(spikes) with the
  // surrogate reduces to the smooth chain through u_t. We verify the
  // membrane recursion's parameter gradient by finite differences of a
  // surrogate-smoothed proxy loss: L = Σ_t Σ_i softcount(u_ti − θ), with
  // softcount'(x) = surrogate(x). Since backward() computes exactly
  // Σ ds·g', feeding ds=1 yields dL/dw for this proxy.
  auto proxy_loss = [&](SpikingConv2D& l) {
    // Smoothed spike count: integrate the triangle surrogate, i.e.
    // softcount(x) = piecewise quadratic with derivative max(0, 1−|x|).
    auto softcount = [](double x) {
      if (x <= -1.0) return 0.0;
      if (x >= 1.0) return 1.0;
      return x < 0.0 ? 0.5 * (1.0 + x) * (1.0 + x)
                     : 1.0 - 0.5 * (1.0 - x) * (1.0 - x);
    };
    // Reimplement the forward membrane recursion *without* spiking (the
    // run never crosses threshold, so this matches step()).
    const double lambda = l.leak(), theta = l.threshold();
    double loss = 0.0;
    nn::Tensor v;
    for (int t = 0; t < t_steps; ++t) {
      nn::Tensor u = l.conv().forward(xs[static_cast<std::size_t>(t)]);
      if (!v.empty()) u.add_scaled(v, lambda);
      for (std::size_t i = 0; i < u.numel(); ++i)
        loss += softcount(u[i] - theta);
      v = u;  // no spikes below threshold
    }
    return loss;
  };

  // Keep weights small so the run is spike-free.
  layer.conv().params()[0]->fill(0.3);
  layer.conv().params()[1]->fill(0.0);

  layer.zero_grad();
  layer.begin_sequence();
  std::vector<nn::Tensor> spike_grads;
  for (int t = 0; t < t_steps; ++t) {
    const nn::Tensor s = layer.step(xs[static_cast<std::size_t>(t)]);
    for (std::size_t i = 0; i < s.numel(); ++i)
      ASSERT_DOUBLE_EQ(s[i], 0.0) << "test requires a spike-free run";
    spike_grads.push_back(nn::Tensor::full(s.shape(), 1.0));
  }
  layer.backward(spike_grads);

  nn::Tensor& w = *layer.conv().params()[0];
  const nn::Tensor& gw = *layer.conv().grads()[0];
  const double eps = 1e-5;
  for (std::size_t i = 0; i < w.numel(); ++i) {
    const double orig = w[i];
    w[i] = orig + eps;
    const double lp = proxy_loss(layer);
    w[i] = orig - eps;
    const double lm = proxy_loss(layer);
    w[i] = orig;
    EXPECT_NEAR(gw[i], (lp - lm) / (2 * eps), 1e-5);
  }
}

TEST(FlowTensors, RoundTrips) {
  sim::FlowField f(3, 2);
  for (std::size_t i = 0; i < f.u.size(); ++i) {
    f.u[i] = static_cast<double>(i);
    f.v[i] = -static_cast<double>(i);
  }
  const sim::FlowField f2 = tensor_to_flow(flow_to_tensor(f));
  EXPECT_EQ(f2.u, f.u);
  EXPECT_EQ(f2.v, f.v);
}

TEST(FlowTensors, EventTensorChannels) {
  sim::EventFrame ev(2, 2);
  ev.pos[1] = 3.0;
  ev.neg[2] = 2.0;
  const nn::Tensor t = events_to_tensor(ev);
  EXPECT_EQ(t.shape(), (std::vector<int>{1, 2, 2, 2}));
  EXPECT_DOUBLE_EQ(t[1], 3.0);
  EXPECT_DOUBLE_EQ(t[4 + 2], 2.0);
}

class FlowNetworkTest : public ::testing::TestWithParam<FlowKind> {};

TEST_P(FlowNetworkTest, TrainingReducesLoss) {
  Rng rng(9);
  FlowNetConfig cfg;
  cfg.width = cfg.height = 8;
  cfg.base_channels = 4;
  cfg.time_bins = 4;
  auto net = make_flow_network(GetParam(), cfg, rng);
  Rng data_rng(10);
  const auto data = sim::make_flow_dataset(10, 8, 8, data_rng);
  const double first = net->train_epoch(data, rng);
  double last = first;
  for (int e = 0; e < 10; ++e) last = net->train_epoch(data, rng);
  EXPECT_LT(last, first);
}

TEST_P(FlowNetworkTest, PredictsFiniteFlowOfRightShape) {
  Rng rng(11);
  FlowNetConfig cfg;
  cfg.width = cfg.height = 8;
  cfg.base_channels = 4;
  auto net = make_flow_network(GetParam(), cfg, rng);
  Rng data_rng(12);
  const auto data = sim::make_flow_dataset(2, 8, 8, data_rng);
  const sim::FlowField f = net->predict(data[0]);
  EXPECT_EQ(f.width, 8);
  EXPECT_EQ(f.height, 8);
  for (double u : f.u) EXPECT_TRUE(std::isfinite(u));
}

TEST_P(FlowNetworkTest, EnergyIsPositive) {
  Rng rng(13);
  FlowNetConfig cfg;
  cfg.width = cfg.height = 8;
  cfg.base_channels = 4;
  auto net = make_flow_network(GetParam(), cfg, rng);
  Rng data_rng(14);
  const auto data = sim::make_flow_dataset(3, 8, 8, data_rng);
  const EnergyBreakdown e = net->mean_energy(data);
  EXPECT_GT(e.joules(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(AllFlowNets, FlowNetworkTest,
                         ::testing::ValuesIn(all_flow_kinds()),
                         [](const ::testing::TestParamInfo<FlowKind>& info) {
                           switch (info.param) {
                             case FlowKind::kEvFlowNet:
                               return "EvFlowNet";
                             case FlowKind::kSpikeFlowNet:
                               return "SpikeFlowNet";
                             case FlowKind::kFusionFlowNet:
                               return "FusionFlowNet";
                             case FlowKind::kAdaptiveSpikeNet:
                               return "AdaptiveSpikeNet";
                           }
                           return "unknown";
                         });

TEST(FlowEnergy, SnnEncoderCheaperThanAnnEquivalent) {
  // The spike-driven AC count must come in under the dense MAC count of
  // an equivalently shaped ANN encoder — the core Fig. 9 energy claim.
  Rng rng(15);
  FlowNetConfig cfg;
  cfg.width = cfg.height = 16;
  cfg.base_channels = 8;
  auto ann = make_flow_network(FlowKind::kEvFlowNet, cfg, rng);
  auto snn = make_flow_network(FlowKind::kSpikeFlowNet, cfg, rng);
  Rng data_rng(16);
  const auto data = sim::make_flow_dataset(5, 16, 16, data_rng);
  const EnergyBreakdown ea = ann->mean_energy(data);
  const EnergyBreakdown es = snn->mean_energy(data);
  EXPECT_LT(es.joules(), ea.joules());
}

TEST(FlowEnergy, ParamCountsComparableAcrossFamilies) {
  Rng rng(17);
  FlowNetConfig cfg;
  auto ann = make_flow_network(FlowKind::kEvFlowNet, cfg, rng);
  auto adaptive = make_flow_network(FlowKind::kAdaptiveSpikeNet, cfg, rng);
  // Same backbone family and size class: the SNN's per-bin readout adds a
  // 1x1 squeeze stage, the ANN stacks bins as input channels; both stay
  // within 2x of each other.
  EXPECT_LT(static_cast<double>(adaptive->param_count()),
            2.0 * static_cast<double>(ann->param_count()));
  EXPECT_GT(static_cast<double>(adaptive->param_count()),
            0.5 * static_cast<double>(ann->param_count()));
}

TEST(Dotie, FastObjectDetectedSlowBackgroundIgnored) {
  Rng rng(18);
  // Fast patch: strong events each step. Slow pan: weak events.
  sim::MovingScene fast_scene(24, 24, 1, 0.0, 0.0, rng);
  sim::EventCamera cam;
  std::vector<sim::EventFrame> frames;
  for (int t = 0; t < 6; ++t)
    frames.push_back(
        cam.events_between(fast_scene.render(t), fast_scene.render(t + 1)));

  DotieDetector detector;
  const auto boxes = detector.detect(frames);
  ASSERT_FALSE(boxes.empty());
  // All boxes should be compact (patch-sized), not scene-sized.
  for (const auto& b : boxes) {
    EXPECT_LE(b.width(), 20);
    EXPECT_LE(b.height(), 20);
    EXPECT_GT(b.spike_mass, 0.0);
  }
}

TEST(Dotie, EmptyStreamYieldsNoBoxes) {
  std::vector<sim::EventFrame> frames(4, sim::EventFrame(16, 16));
  DotieDetector detector;
  EXPECT_TRUE(detector.detect(frames).empty());
}

TEST(Dotie, ThresholdFiltersSlowMotion) {
  // A single weak event per step never crosses a high threshold.
  sim::EventFrame weak(8, 8);
  weak.pos[27] = 1.0;
  std::vector<sim::EventFrame> frames(5, weak);
  DotieConfig strict;
  strict.threshold = 10.0;
  strict.leak = 0.1;
  EXPECT_TRUE(DotieDetector(strict).detect(frames).empty());
  // The same stream with an integrating (low-leak) config does fire.
  DotieConfig lenient;
  lenient.threshold = 2.0;
  lenient.leak = 0.95;
  lenient.min_cluster_size = 1;
  EXPECT_FALSE(DotieDetector(lenient).detect(frames).empty());
}

TEST(Dotie, SpikeMapDimensionsMatch) {
  std::vector<sim::EventFrame> frames(2, sim::EventFrame(6, 4));
  int w = 0, h = 0;
  const auto map = DotieDetector().spike_map(frames, &w, &h);
  EXPECT_EQ(w, 6);
  EXPECT_EQ(h, 4);
  EXPECT_EQ(map.size(), 24u);
}

}  // namespace
}  // namespace s2a::neuro
