// Tests for the execution engines above the loop: the bounded SPSC
// stage queue, the pipelined tick engine (bit-exactness vs the
// synchronous reference, SAFE_STOP speculation discard, sense-error
// propagation), and the fleet scheduler (equivalence to serial
// execution, determinism across thread counts, straggler shedding
// under chaos, SAFE_STOP members). Run under TSan via check.sh.
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <limits>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/fleet.hpp"
#include "core/loop.hpp"
#include "core/pipeline.hpp"
#include "core/policies.hpp"
#include "fault/fault.hpp"
#include "util/spsc_queue.hpp"
#include "util/thread_pool.hpp"

namespace s2a::core {
namespace {

// ---------------------------------------------------------------- SPSC

TEST(SpscQueue, DeliversInOrderAcrossThreads) {
  util::SpscQueue<int> q(4);
  std::thread producer([&] {
    for (int i = 0; i < 200; ++i) ASSERT_TRUE(q.push(i));
    q.close();
  });
  int expected = 0, v = 0;
  while (q.pop(v)) EXPECT_EQ(v, expected++);
  EXPECT_EQ(expected, 200);
  producer.join();
}

TEST(SpscQueue, CloseDrainsThenFails) {
  util::SpscQueue<int> q(8);
  ASSERT_TRUE(q.push(1));
  ASSERT_TRUE(q.push(2));
  q.close();
  q.close();  // idempotent
  EXPECT_FALSE(q.push(3));  // producer side fails immediately
  int v = 0;
  ASSERT_TRUE(q.pop(v));
  EXPECT_EQ(v, 1);
  ASSERT_TRUE(q.pop(v));
  EXPECT_EQ(v, 2);
  EXPECT_FALSE(q.pop(v));  // drained
}

TEST(SpscQueue, CloseUnblocksFullProducer) {
  util::SpscQueue<int> q(1);
  ASSERT_TRUE(q.push(0));
  std::thread producer([&] { EXPECT_FALSE(q.push(1)); });  // blocks: full
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.close();
  producer.join();
}

// Capacity 1 degenerates to a rendezvous slot: every push must wait for
// the matching pop, so the two threads strictly alternate and ordering
// still holds with the ring's head wrapping on every element.
TEST(SpscQueue, CapacityOneAlternatesAcrossThreads) {
  util::SpscQueue<int> q(1);
  std::thread producer([&] {
    for (int i = 0; i < 500; ++i) ASSERT_TRUE(q.push(i));
    q.close();
  });
  int expected = 0, v = 0;
  while (q.pop(v)) EXPECT_EQ(v, expected++);
  EXPECT_EQ(expected, 500);
  producer.join();
}

// Drives head_ around the ring many times with the queue repeatedly
// filling and draining, so the wraparound index arithmetic (head_ +
// size_ mod capacity) is exercised at every phase offset of a capacity
// that does not divide the element count.
TEST(SpscQueue, IndexWrapsAroundPastCapacity) {
  util::SpscQueue<int> q(3);
  int next_push = 0, next_pop = 0, v = 0;
  for (int round = 0; round < 100; ++round) {
    const int burst = 1 + round % 3;  // 1..3: hits every fill level
    for (int i = 0; i < burst; ++i) ASSERT_TRUE(q.push(next_push++));
    for (int i = 0; i < burst; ++i) {
      ASSERT_TRUE(q.pop(v));
      EXPECT_EQ(v, next_pop++);
    }
  }
  EXPECT_EQ(next_pop, next_push);
  // Ring is empty but head_ has wrapped ~dozens of times; a fresh
  // fill-to-capacity still delivers in order.
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(q.push(100 + i));
  q.close();
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(q.pop(v));
    EXPECT_EQ(v, 100 + i);
  }
  EXPECT_FALSE(q.pop(v));
}

// Producer abandons mid-stream (closes without finishing its planned
// pushes, e.g. its sense chain latched SAFE_STOP): the consumer must
// receive exactly the prefix that was pushed, in order, then see
// end-of-stream — no loss, no duplication, no hang.
TEST(SpscQueue, ProducerAbandonsMidStream) {
  util::SpscQueue<int> q(4);
  constexpr int kPlanned = 100, kActual = 37;
  std::thread producer([&] {
    for (int i = 0; i < kActual; ++i) ASSERT_TRUE(q.push(i));
    q.close();  // walks away with kPlanned - kActual never sent
  });
  int expected = 0, v = 0;
  while (q.pop(v)) EXPECT_EQ(v, expected++);
  EXPECT_EQ(expected, kActual);
  EXPECT_LT(expected, kPlanned);
  EXPECT_TRUE(q.closed());
  producer.join();
}

// ---------------------------------------------------- pipeline fixtures

class WavySensor : public Sensor {
 public:
  Observation sense(double now, Rng& rng) override {
    Observation obs;
    obs.data = {std::sin(now) + rng.normal(0.0, 0.1),
                std::cos(now) + rng.normal(0.0, 0.1)};
    obs.timestamp = now;
    obs.energy_j = 1e-3;
    return obs;
  }
};

class ScaleProcessor : public Processor {
 public:
  std::vector<double> process(const Observation& obs, Rng& rng) override {
    std::vector<double> out = obs.data;
    for (double& v : out) v *= 2.0 + rng.uniform() * 1e-3;
    return out;
  }
  double energy_per_call_j() const override { return 1e-4; }
};

class CountingActuator : public Actuator {
 public:
  void actuate(const Action& action, Rng&) override {
    ++count;
    if (!action.data.empty()) last = action.data[0];
  }
  long count = 0;
  double last = 0.0;
};

// One complete loop stack, so tests can build identical twins.
struct Stack {
  WavySensor raw_sensor;
  std::unique_ptr<fault::FaultySensor> faulty;  // set iff plan non-empty
  ScaleProcessor proc;
  CountingActuator act;
  PeriodicPolicy policy{1};
  std::unique_ptr<SensingActionLoop> loop;

  explicit Stack(LoopConfig cfg = {}, fault::FaultPlan plan = {}) {
    Sensor* sensor = &raw_sensor;
    if (!plan.empty()) {
      faulty = std::make_unique<fault::FaultySensor>(raw_sensor, plan);
      sensor = faulty.get();
    }
    loop = std::make_unique<SensingActionLoop>(*sensor, proc, act, policy,
                                               cfg);
  }
};

void expect_same_result(const SensingActionLoop& a,
                        const SensingActionLoop& b) {
  EXPECT_EQ(a.metrics(), b.metrics());
  EXPECT_EQ(a.state(), b.state());
  EXPECT_DOUBLE_EQ(a.now(), b.now());
}

// ------------------------------------------------------------ pipeline

TEST(Pipeline, PipelinedBitExactVsSynchronous) {
  util::ScopedGlobalThreads threads(4);
  Stack sync_stack, pipe_stack;
  PipelinedRunner sync_runner(*sync_stack.loop,
                              {PipelineMode::kSynchronous, 4});
  PipelinedRunner pipe_runner(*pipe_stack.loop, {PipelineMode::kPipelined, 4});

  PipelineStats ss = sync_runner.run(500, /*seed=*/42);
  PipelineStats ps = pipe_runner.run(500, /*seed=*/42);

  EXPECT_FALSE(ss.pipelined);
  EXPECT_TRUE(ps.pipelined);
  EXPECT_EQ(ss.committed, 500);
  EXPECT_EQ(ps.committed, 500);
  expect_same_result(*sync_stack.loop, *pipe_stack.loop);
  EXPECT_EQ(sync_stack.act.count, pipe_stack.act.count);
  EXPECT_DOUBLE_EQ(sync_stack.act.last, pipe_stack.act.last);
}

TEST(Pipeline, BitExactUnderFaultChaos) {
  util::ScopedGlobalThreads threads(4);
  LoopConfig cfg;
  cfg.resilience.max_sense_retries = 2;
  cfg.resilience.retry_backoff_s = 0.01;
  cfg.resilience.max_staleness_s = 0.5;
  cfg.resilience.degrade_after = 2;
  cfg.resilience.recover_after = 3;
  const fault::FaultPlan plan =
      fault::FaultPlan::random_component_plan(/*seed=*/7, /*horizon_s=*/25.0,
                                              /*events=*/12,
                                              /*mean_duration_s=*/1.0);
  Stack sync_stack(cfg, plan), pipe_stack(cfg, plan);
  PipelinedRunner sync_runner(*sync_stack.loop,
                              {PipelineMode::kSynchronous, 4});
  PipelinedRunner pipe_runner(*pipe_stack.loop, {PipelineMode::kPipelined, 4});

  sync_runner.run(500, /*seed=*/11);
  pipe_runner.run(500, /*seed=*/11);
  expect_same_result(*sync_stack.loop, *pipe_stack.loop);
  // The plan actually fired (which exact kinds depends on the seed).
  EXPECT_GT(sync_stack.faulty->faults_injected(), 0);
}

TEST(Pipeline, SafeStopLatchDiscardsSpeculation) {
  util::ScopedGlobalThreads threads(4);
  LoopConfig cfg;
  cfg.resilience.max_sense_retries = 0;
  cfg.resilience.degrade_after = 2;
  cfg.resilience.safe_stop_after = 3;
  // Permanent dropout: every sense fails, so the loop degrades and then
  // latches SAFE_STOP a few ticks in — while the producer is ahead.
  const fault::FaultPlan plan(
      {{fault::FaultKind::kDropout, 0.0, 1e9, -1, 0.0}});
  Stack sync_stack(cfg, plan), pipe_stack(cfg, plan);
  PipelinedRunner sync_runner(*sync_stack.loop,
                              {PipelineMode::kSynchronous, 4});
  PipelinedRunner pipe_runner(*pipe_stack.loop, {PipelineMode::kPipelined, 4});

  PipelineStats ss = sync_runner.run(200, /*seed=*/5);
  PipelineStats ps = pipe_runner.run(200, /*seed=*/5);

  expect_same_result(*sync_stack.loop, *pipe_stack.loop);
  EXPECT_EQ(sync_stack.loop->state(), LoopState::kSafeStop);
  EXPECT_EQ(ss.committed, 200);
  EXPECT_EQ(ps.committed, 200);
  EXPECT_GE(ps.discarded, 0);
  // The synchronous path senses only until the latch.
  EXPECT_LT(ss.produced, 200);
}

TEST(Pipeline, AutoFallsBackSingleThreadedAndMatches) {
  Stack pipe_stack;
  PipelineStats ps;
  {
    util::ScopedGlobalThreads threads(1);
    PipelinedRunner runner(*pipe_stack.loop, {PipelineMode::kAuto, 4});
    ps = runner.run(300, /*seed=*/42);
    EXPECT_FALSE(ps.pipelined);  // no spare worker → in-order path
  }
  Stack sync_stack;
  {
    util::ScopedGlobalThreads threads(4);
    PipelinedRunner runner(*sync_stack.loop, {PipelineMode::kAuto, 4});
    PipelineStats ss = runner.run(300, /*seed=*/42);
    EXPECT_TRUE(ss.pipelined);
  }
  // Metric determinism across S2A_THREADS ∈ {1, 4}.
  expect_same_result(*sync_stack.loop, *pipe_stack.loop);
}

class ExplodingSensor : public Sensor {
 public:
  explicit ExplodingSensor(int fail_at) : fail_at_(fail_at) {}
  Observation sense(double now, Rng&) override {
    if (++calls_ > fail_at_)
      throw std::logic_error("sensor wiring bug");  // not a SensorFault
    Observation obs;
    obs.data = {1.0};
    obs.timestamp = now;
    return obs;
  }

 private:
  int fail_at_, calls_ = 0;
};

TEST(Pipeline, NonFaultSenseErrorPropagates) {
  util::ScopedGlobalThreads threads(4);
  ExplodingSensor sensor(50);
  ScaleProcessor proc;
  CountingActuator act;
  PeriodicPolicy policy(1);
  SensingActionLoop loop(sensor, proc, act, policy);
  PipelinedRunner runner(loop, {PipelineMode::kPipelined, 4});
  Rng root(3);
  Rng sense_rng = root.spawn();
  Rng commit_rng = root.spawn();
  EXPECT_THROW(runner.run(200, sense_rng, commit_rng), std::logic_error);
  // Every tick before the failing sense still committed.
  EXPECT_EQ(loop.metrics().ticks, 50);
}

// --------------------------------------------------------------- fleet

TEST(Fleet, MatchesSerialExecutionPerLoop) {
  util::ScopedGlobalThreads threads(4);
  constexpr int kLoops = 8, kTicks = 200;
  std::vector<std::unique_ptr<Stack>> serial, fleet_stacks;
  Fleet fleet;
  for (int i = 0; i < kLoops; ++i) {
    serial.push_back(std::make_unique<Stack>());
    fleet_stacks.push_back(std::make_unique<Stack>());
    fleet.add(*fleet_stacks.back()->loop, {kTicks}, /*seed=*/100 + i);
  }
  FleetStats stats = fleet.run();
  for (int i = 0; i < kLoops; ++i) {
    Rng rng(100 + i);
    serial[i]->loop->run(kTicks, rng);
    expect_same_result(*serial[i]->loop, *fleet_stacks[i]->loop);
    EXPECT_EQ(stats.loops[i].executed, kTicks);
    EXPECT_EQ(stats.loops[i].shed, 0);
  }
  EXPECT_EQ(stats.executed, static_cast<long>(kLoops) * kTicks);
  EXPECT_EQ(stats.shed, 0);
  EXPECT_GT(stats.dispatches, 0);
}

TEST(Fleet, DeterministicAcrossThreadCounts) {
  constexpr int kLoops = 6, kTicks = 150;
  auto run_fleet = [&](int threads) {
    util::ScopedGlobalThreads t(threads);
    std::vector<std::unique_ptr<Stack>> stacks;
    Fleet fleet(FleetConfig{/*batch=*/3});
    for (int i = 0; i < kLoops; ++i) {
      stacks.push_back(std::make_unique<Stack>());
      fleet.add(*stacks.back()->loop, {kTicks}, /*seed=*/500 + i);
    }
    fleet.run();
    std::vector<LoopMetrics> out;
    for (auto& s : stacks) out.push_back(s->loop->metrics());
    return out;
  };
  const std::vector<LoopMetrics> one = run_fleet(1);
  const std::vector<LoopMetrics> four = run_fleet(4);
  ASSERT_EQ(one.size(), four.size());
  for (std::size_t i = 0; i < one.size(); ++i) EXPECT_EQ(one[i], four[i]);
}

// A processor that stalls — the fleet's straggler. The stall is a real
// sleep (sensing/processing latency is I/O-like wait), so shedding
// fires even on a single-core host.
class StallingProcessor : public Processor {
 public:
  explicit StallingProcessor(int ms) : ms_(ms) {}
  std::vector<double> process(const Observation& obs, Rng&) override {
    std::this_thread::sleep_for(std::chrono::milliseconds(ms_));
    return obs.data;
  }

 private:
  int ms_;
};

TEST(Fleet, ShedsStragglerWithoutStallingHealthyLoops) {
  util::ScopedGlobalThreads threads(4);
  constexpr int kHealthy = 12, kTicks = 60;

  std::vector<std::unique_ptr<Stack>> healthy;
  Fleet fleet(FleetConfig{/*batch=*/4});
  for (int i = 0; i < kHealthy; ++i) {
    healthy.push_back(std::make_unique<Stack>());
    // Generous 1 s/tick budget: healthy loops must never miss or shed.
    fleet.add(*healthy.back()->loop, {kTicks, /*deadline_s=*/1.0},
              /*seed=*/900 + i);
  }

  WavySensor straggler_sensor;
  StallingProcessor straggler_proc(5);
  CountingActuator straggler_act;
  PeriodicPolicy straggler_policy(1);
  SensingActionLoop straggler(straggler_sensor, straggler_proc,
                              straggler_act, straggler_policy);
  // 0.5 ms/tick budget against a 5 ms/tick stall: hopeless. shed_slack 4
  // → abandoned once it is > 2 ms behind schedule.
  const std::size_t straggler_id = fleet.add(
      straggler, {kTicks, /*deadline_s=*/5e-4, /*shed_slack=*/4.0},
      /*seed=*/1);

  FleetStats stats = fleet.run();

  const FleetLoopStats& sl = stats.loops[straggler_id];
  EXPECT_GT(sl.shed, 0) << "straggler was never shed";
  // Every tick it did execute blew its 0.5 ms budget by 10x.
  EXPECT_EQ(sl.deadline_misses, sl.executed);
  EXPECT_EQ(sl.executed + sl.shed, kTicks);
  for (int i = 0; i < kHealthy; ++i) {
    EXPECT_EQ(stats.loops[i].executed, kTicks);
    EXPECT_EQ(stats.loops[i].shed, 0);
    EXPECT_EQ(stats.loops[i].deadline_misses, 0);
  }
  // Accounting closes: every requested tick was executed or shed.
  EXPECT_EQ(stats.executed + stats.shed,
            static_cast<long>(kHealthy + 1) * kTicks);
  EXPECT_GT(stats.ticks_per_s, 0.0);
}

TEST(Fleet, SafeStopMemberRunsToCompletionHalted) {
  util::ScopedGlobalThreads threads(4);
  LoopConfig cfg;
  cfg.resilience.max_sense_retries = 0;
  cfg.resilience.degrade_after = 1;
  cfg.resilience.safe_stop_after = 2;
  const fault::FaultPlan plan(
      {{fault::FaultKind::kDropout, 0.0, 1e9, -1, 0.0}});
  Stack doomed(cfg, plan), fine;
  Fleet fleet;
  const std::size_t d = fleet.add(*doomed.loop, {100}, /*seed=*/3);
  const std::size_t f = fleet.add(*fine.loop, {100}, /*seed=*/4);
  FleetStats stats = fleet.run();
  EXPECT_EQ(stats.loops[d].executed, 100);  // SAFE_STOP ticks still tick
  EXPECT_EQ(stats.loops[d].final_state, LoopState::kSafeStop);
  EXPECT_GT(doomed.loop->metrics().safe_stop_ticks, 0);
  EXPECT_EQ(stats.loops[f].final_state, LoopState::kNominal);
  EXPECT_EQ(stats.loops[f].executed, 100);
}

TEST(Fleet, LatencyPercentilesPopulated) {
  util::ScopedGlobalThreads threads(2);
  Stack s;
  Fleet fleet;
  fleet.add(*s.loop, {50}, /*seed=*/9);
  FleetStats stats = fleet.run();
  EXPECT_GE(stats.loops[0].p95_tick_ms, stats.loops[0].p50_tick_ms);
  EXPECT_GE(stats.loops[0].max_tick_ms, stats.loops[0].p95_tick_ms);
}

}  // namespace
}  // namespace s2a::core
