// Unit tests for the util substrate: RNG determinism and distribution
// sanity, statistics, AUC, table formatting, geometry, and AP computation.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>
#include <vector>

#include "util/check.hpp"
#include "util/finite.hpp"
#include "util/geometry.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace s2a {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Rng, UniformIntCoversRangeInclusively) {
  Rng rng(3);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int v = rng.uniform_int(-2, 3);
    ASSERT_GE(v, -2);
    ASSERT_LE(v, 3);
    saw_lo |= (v == -2);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalMomentsApproximatelyStandard) {
  Rng rng(11);
  RunningStat st;
  for (int i = 0; i < 50000; ++i) st.add(rng.normal());
  EXPECT_NEAR(st.mean(), 0.0, 0.02);
  EXPECT_NEAR(st.stddev(), 1.0, 0.02);
}

TEST(Rng, BernoulliFrequencyMatchesP) {
  Rng rng(5);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i)
    if (rng.bernoulli(0.3)) ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, BernoulliEdgeProbabilities) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, SampleWithoutReplacementIsDistinctAndInRange) {
  Rng rng(9);
  const auto s = rng.sample_without_replacement(20, 8);
  ASSERT_EQ(s.size(), 8u);
  std::vector<bool> seen(20, false);
  for (int i : s) {
    ASSERT_GE(i, 0);
    ASSERT_LT(i, 20);
    ASSERT_FALSE(seen[static_cast<std::size_t>(i)]);
    seen[static_cast<std::size_t>(i)] = true;
  }
}

TEST(Rng, SampleWithoutReplacementFullSetIsPermutation) {
  Rng rng(13);
  const auto s = rng.sample_without_replacement(5, 5);
  std::vector<int> sorted = s;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Rng, SpawnedStreamsAreDecorrelated) {
  Rng parent(1);
  Rng c1 = parent.spawn();
  Rng c2 = parent.spawn();
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (c1.next_u64() == c2.next_u64()) ++same;
  EXPECT_EQ(same, 0);
}

TEST(Stats, MeanVarianceKnownValues) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(v), 2.5);
  EXPECT_NEAR(variance(v), 5.0 / 3.0, 1e-12);
}

TEST(Stats, VarianceOfSingletonIsZero) {
  EXPECT_DOUBLE_EQ(variance({3.0}), 0.0);
  EXPECT_DOUBLE_EQ(stddev({}), 0.0);
}

TEST(Stats, PercentileInterpolates) {
  std::vector<double> v{10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100.0), 40.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50.0), 25.0);
}

TEST(Stats, AucPerfectSeparation) {
  const std::vector<double> scores{0.1, 0.2, 0.8, 0.9};
  const std::vector<int> labels{0, 0, 1, 1};
  EXPECT_DOUBLE_EQ(auc_roc(scores, labels), 1.0);
}

TEST(Stats, AucInvertedSeparation) {
  const std::vector<double> scores{0.9, 0.8, 0.2, 0.1};
  const std::vector<int> labels{0, 0, 1, 1};
  EXPECT_DOUBLE_EQ(auc_roc(scores, labels), 0.0);
}

TEST(Stats, AucTiesGiveHalfCredit) {
  const std::vector<double> scores{0.5, 0.5};
  const std::vector<int> labels{0, 1};
  EXPECT_DOUBLE_EQ(auc_roc(scores, labels), 0.5);
}

TEST(Stats, AucDegenerateSingleClass) {
  EXPECT_DOUBLE_EQ(auc_roc({0.1, 0.9}, {1, 1}), 0.5);
}

TEST(Stats, AucHandComputedMixedCase) {
  // pos scores {0.4, 0.9}, neg {0.3, 0.5}: pairs won = (0.4>0.3) +
  // (0.9>0.3) + (0.9>0.5) = 3 of 4.
  const std::vector<double> scores{0.3, 0.4, 0.5, 0.9};
  const std::vector<int> labels{0, 1, 0, 1};
  EXPECT_DOUBLE_EQ(auc_roc(scores, labels), 0.75);
}

TEST(Stats, RunningStatMatchesBatch) {
  Rng rng(17);
  std::vector<double> v;
  RunningStat st;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(3.0, 2.0);
    v.push_back(x);
    st.add(x);
  }
  EXPECT_NEAR(st.mean(), mean(v), 1e-9);
  EXPECT_NEAR(st.variance(), variance(v), 1e-9);
}

TEST(Check, ThrowsOnFailureWithMessage) {
  EXPECT_THROW(S2A_CHECK(false), CheckError);
  try {
    S2A_CHECK_MSG(1 == 2, "custom " << 42);
    FAIL();
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("custom 42"), std::string::npos);
  }
}

TEST(Table, AlignsAndPrintsAllRows) {
  Table t("Title");
  t.set_header({"A", "BBBB"});
  t.add_row({"x", "1"});
  t.add_row({"yyyy", "2"});
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("Title"), std::string::npos);
  EXPECT_NE(s.find("yyyy"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(Table, RowCellCountMismatchThrows) {
  Table t;
  t.set_header({"A", "B"});
  EXPECT_THROW(t.add_row({"only-one"}), CheckError);
}

TEST(Table, CsvEscapesCommasAndQuotes) {
  Table t;
  t.set_header({"name", "value"});
  t.add_row({"a,b", "say \"hi\""});
  std::ostringstream os;
  t.write_csv(os);
  EXPECT_NE(os.str().find("\"a,b\""), std::string::npos);
  EXPECT_NE(os.str().find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(Table, NumFormatsPrecision) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(2.0, 0), "2");
}

TEST(Geometry, Vec3BasicOps) {
  const Vec3 a{1, 2, 2};
  EXPECT_DOUBLE_EQ(a.norm(), 3.0);
  EXPECT_DOUBLE_EQ(a.range_xy(), std::sqrt(5.0));
  const Vec3 n = a.normalized();
  EXPECT_NEAR(n.norm(), 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(Vec3{}.normalized().norm(), 0.0);
}

TEST(Geometry, BoxContains) {
  const Box3 b{{0, 0, 0}, {2, 2, 2}};
  EXPECT_TRUE(b.contains({0.9, -0.9, 0.0}));
  EXPECT_FALSE(b.contains({1.1, 0.0, 0.0}));
  EXPECT_DOUBLE_EQ(b.volume(), 8.0);
}

TEST(Geometry, IouBevIdenticalBoxesIsOne) {
  const Box3 b{{1, 2, 0}, {4, 2, 1.5}};
  EXPECT_DOUBLE_EQ(iou_bev(b, b), 1.0);
}

TEST(Geometry, IouBevDisjointIsZero) {
  const Box3 a{{0, 0, 0}, {2, 2, 2}};
  const Box3 b{{10, 0, 0}, {2, 2, 2}};
  EXPECT_DOUBLE_EQ(iou_bev(a, b), 0.0);
}

TEST(Geometry, IouBevHalfOverlap) {
  // Two 2x2 squares offset by 1 in x: intersection 1*2=2, union 8-2=6.
  const Box3 a{{0, 0, 0}, {2, 2, 2}};
  const Box3 b{{1, 0, 0}, {2, 2, 2}};
  EXPECT_NEAR(iou_bev(a, b), 2.0 / 6.0, 1e-12);
}

TEST(Geometry, IouIgnoresHeightDifferences) {
  const Box3 a{{0, 0, 0}, {2, 2, 1}};
  const Box3 b{{0, 0, 100}, {2, 2, 50}};
  EXPECT_DOUBLE_EQ(iou_bev(a, b), 1.0);
}

TEST(Geometry, RayBoxHitFromOutside) {
  const Box3 b{{10, 0, 0}, {2, 2, 2}};
  const double t = ray_box_intersect({0, 0, 0}, {1, 0, 0}, b);
  EXPECT_NEAR(t, 9.0, 1e-12);
}

TEST(Geometry, RayBoxMiss) {
  const Box3 b{{10, 0, 0}, {2, 2, 2}};
  EXPECT_LT(ray_box_intersect({0, 0, 0}, {0, 1, 0}, b), 0.0);
  EXPECT_LT(ray_box_intersect({0, 0, 0}, {-1, 0, 0}, b), 0.0);
}

TEST(Geometry, RayBoxFromInsideReturnsExit) {
  const Box3 b{{0, 0, 0}, {4, 4, 4}};
  const double t = ray_box_intersect({0, 0, 0}, {1, 0, 0}, b);
  EXPECT_NEAR(t, 2.0, 1e-12);
}

TEST(Geometry, RayBoxAxisParallelInsideSlab) {
  const Box3 b{{5, 0, 0}, {2, 2, 2}};
  // Ray along +x at y=0.5, z=0.5 (inside slab bounds): hits.
  EXPECT_GT(ray_box_intersect({0, 0.5, 0.5}, {1, 0, 0}, b), 0.0);
  // Ray along +x at y=2 (outside slab): parallel miss.
  EXPECT_LT(ray_box_intersect({0, 2.0, 0.0}, {1, 0, 0}, b), 0.0);
}

TEST(Geometry, AveragePrecisionPerfectDetector) {
  // 3 detections, all matched, 3 ground truths.
  std::vector<std::pair<double, bool>> d{{0.9, true}, {0.8, true}, {0.7, true}};
  EXPECT_NEAR(average_precision(d, 3), 1.0, 1e-12);
}

TEST(Geometry, AveragePrecisionAllFalsePositives) {
  std::vector<std::pair<double, bool>> d{{0.9, false}, {0.8, false}};
  EXPECT_DOUBLE_EQ(average_precision(d, 3), 0.0);
}

TEST(Geometry, AveragePrecisionNoDetections) {
  EXPECT_DOUBLE_EQ(average_precision({}, 3), 0.0);
}

TEST(Geometry, AveragePrecisionMissedRecallLowersAp) {
  // Only 1 of 4 ground truths found: recall caps at 0.25.
  std::vector<std::pair<double, bool>> d{{0.9, true}};
  const double ap = average_precision(d, 4);
  EXPECT_GT(ap, 0.0);
  EXPECT_LT(ap, 0.3);
}

TEST(Geometry, AveragePrecisionOrderMatters) {
  // High-scored false positive hurts more than low-scored one.
  std::vector<std::pair<double, bool>> worse{{0.9, false}, {0.8, true}};
  std::vector<std::pair<double, bool>> better{{0.9, true}, {0.8, false}};
  EXPECT_GT(average_precision(better, 1), average_precision(worse, 1));
}

TEST(Finite, AcceptsCleanVectors) {
  EXPECT_TRUE(util::all_finite(std::vector<double>{}));
  EXPECT_TRUE(util::all_finite({0.0, -1.5, 1e300, -1e-300}));
  const double raw[3] = {1.0, 2.0, 3.0};
  EXPECT_TRUE(util::all_finite(raw, 3));
  EXPECT_TRUE(util::all_finite(raw, 0));  // empty range is vacuously finite
}

TEST(Finite, RejectsNaNAndInfAnywhere) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_FALSE(util::all_finite({nan}));
  EXPECT_FALSE(util::all_finite({inf}));
  EXPECT_FALSE(util::all_finite({-inf}));
  EXPECT_FALSE(util::all_finite({0.0, 1.0, nan}));  // last element
  EXPECT_FALSE(util::all_finite({inf, 0.0, 1.0}));  // first element
  EXPECT_FALSE(util::all_finite({0.0, nan, 1.0}));  // middle
}

}  // namespace
}  // namespace s2a
