// Tests for the generative-sensing stack: voxelization round trips,
// masking statistics (coverage and radial structure), autoencoder
// learning, detector training and AP evaluation, energy accounting, and
// the end-to-end pipeline.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "lidar/autoencoder.hpp"
#include "lidar/detector.hpp"
#include "lidar/energy.hpp"
#include "lidar/masking.hpp"
#include "lidar/pipeline.hpp"
#include "lidar/voxel_grid.hpp"
#include "nn/optimizer.hpp"
#include "sim/scene.hpp"

namespace s2a::lidar {
namespace {

sim::Scene one_car_scene(double x = 15.0, double y = 0.0) {
  sim::Scene scene;
  sim::SceneObject car;
  car.cls = sim::ObjectClass::kCar;
  car.box = {{x, y, 0.8}, {4.2, 1.8, 1.6}};
  scene.objects.push_back(car);
  return scene;
}

TEST(Voxelizer, EmptyCloudEmptyGrid) {
  sim::PointCloud pc;
  const VoxelGrid g = VoxelGrid::from_cloud(pc, VoxelGridConfig{});
  EXPECT_EQ(g.occupied_count(), 0u);
}

TEST(Voxelizer, CarOccupiesVoxelsNearItsCenter) {
  sim::LidarConfig lc;
  sim::LidarSimulator lidar(lc);
  Rng rng(1);
  const sim::Scene scene = one_car_scene();
  const sim::PointCloud pc = lidar.full_scan(scene, rng);
  VoxelGridConfig gc;
  const VoxelGrid g = VoxelGrid::from_cloud(pc, gc);
  ASSERT_GT(g.occupied_count(), 0u);
  // Every occupied voxel should be near the car (only object in scene).
  for (int z = 0; z < gc.nz; ++z)
    for (int y = 0; y < gc.ny; ++y)
      for (int x = 0; x < gc.nx; ++x)
        if (g.occupied(x, y, z)) {
          const Vec3 c = g.voxel_center(x, y, z);
          EXPECT_LT((c - Vec3{15.0, 0.0, 0.8}).norm(), 6.0);
        }
}

TEST(Voxelizer, GroundReturnsExcluded) {
  sim::LidarConfig lc;
  sim::LidarSimulator lidar(lc);
  Rng rng(2);
  sim::Scene empty;  // ground only
  const sim::PointCloud pc = lidar.full_scan(empty, rng);
  ASSERT_GT(pc.hit_count(), 0u);
  const VoxelGrid g = VoxelGrid::from_cloud(pc, VoxelGridConfig{});
  EXPECT_EQ(g.occupied_count(), 0u);
}

TEST(Voxelizer, TensorRoundTrip) {
  VoxelGridConfig gc;
  gc.nx = gc.ny = 8;
  gc.nz = 2;
  VoxelGrid g(gc);
  g.set(1, 2, 0, true);
  g.set(7, 7, 1, true);
  const VoxelGrid g2 = VoxelGrid::from_tensor(g.to_tensor(), gc);
  EXPECT_DOUBLE_EQ(g.iou(g2), 1.0);
  EXPECT_EQ(g2.occupied_count(), 2u);
}

TEST(Voxelizer, IouDisjointAndPartial) {
  VoxelGridConfig gc;
  gc.nx = gc.ny = 4;
  gc.nz = 1;
  VoxelGrid a(gc), b(gc);
  a.set(0, 0, 0, true);
  b.set(1, 1, 0, true);
  EXPECT_DOUBLE_EQ(a.iou(b), 0.0);
  b.set(0, 0, 0, true);
  EXPECT_DOUBLE_EQ(a.iou(b), 0.5);
}

TEST(Voxelizer, AzimuthAndRangeGeometry) {
  VoxelGridConfig gc;
  const VoxelGrid g(gc);
  // Voxel on the +x axis: azimuth near 0 (or 2π), range ≈ x.
  const int ix = gc.nx - 1, iy = gc.ny / 2;
  const double az = g.voxel_azimuth(ix, iy);
  EXPECT_TRUE(az < 0.3 || az > 2 * 3.14159 - 0.3);
  EXPECT_NEAR(g.voxel_range(ix, iy), g.voxel_center(ix, iy, 0).range_xy(),
              1e-12);
}

class MaskerCoverageTest : public ::testing::TestWithParam<double> {};

TEST_P(MaskerCoverageTest, UniformMaskerHitsTargetFraction) {
  const double keep = GetParam();
  UniformMasker m(keep);
  VoxelGridConfig gc;
  VoxelGrid g(gc);
  Rng rng(3);
  double frac = 0.0;
  const int trials = 10;
  for (int t = 0; t < trials; ++t) {
    const auto mask = m.voxel_mask(g, rng);
    std::size_t vis = 0;
    for (bool b : mask)
      if (b) ++vis;
    frac += static_cast<double>(vis) / mask.size();
  }
  frac /= trials;
  EXPECT_NEAR(frac, keep, 0.05);
}

INSTANTIATE_TEST_SUITE_P(KeepFractions, MaskerCoverageTest,
                         ::testing::Values(0.05, 0.1, 0.3, 0.7));

TEST(RadialMasking, CoverageBelowTenPercent) {
  RadialMasker m;  // defaults calibrated to the paper's <10% coverage
  sim::LidarConfig lc;
  Rng rng(4);
  double coverage = 0.0;
  const int trials = 20;
  for (int t = 0; t < trials; ++t) {
    const auto plan = m.beam_plan(lc, rng);
    coverage += static_cast<double>(plan.size()) /
                (lc.azimuth_steps * lc.elevation_steps);
  }
  coverage /= trials;
  EXPECT_LT(coverage, 0.10);
  EXPECT_GT(coverage, 0.05);
}

TEST(RadialMasking, VisibleVoxelsClusterInSegments) {
  RadialMasker m;
  VoxelGridConfig gc;
  VoxelGrid g(gc);
  Rng rng(5);
  const auto mask = m.voxel_mask(g, rng);
  // Count visible columns per angular segment; kept segments should hold
  // essentially all of the visible mass.
  const int segments = m.config().angular_segments;
  std::vector<int> per_segment(static_cast<std::size_t>(segments), 0);
  for (int y = 0; y < gc.ny; ++y)
    for (int x = 0; x < gc.nx; ++x) {
      if (!mask[static_cast<std::size_t>(y) * gc.nx + x]) continue;
      const int seg = std::min(
          segments - 1, static_cast<int>(g.voxel_azimuth(x, y) /
                                         (2 * 3.14159265358979) * segments));
      per_segment[static_cast<std::size_t>(seg)]++;
    }
  int active_segments = 0;
  for (int c : per_segment)
    if (c > 0) ++active_segments;
  const int expected_kept = static_cast<int>(
      segments * m.config().segment_keep_fraction);
  EXPECT_LE(active_segments, expected_kept + 1);
}

TEST(RadialMasking, NearVoxelsKeptMoreOftenThanFar) {
  RadialMaskerConfig cfg;
  cfg.segment_keep_fraction = 1.0;  // isolate the radial stage
  RadialMasker m(cfg);
  VoxelGridConfig gc;
  VoxelGrid g(gc);
  Rng rng(6);
  int near_vis = 0, near_total = 0, far_vis = 0, far_total = 0;
  for (int t = 0; t < 20; ++t) {
    const auto mask = m.voxel_mask(g, rng);
    for (int y = 0; y < gc.ny; ++y)
      for (int x = 0; x < gc.nx; ++x) {
        const double r = g.voxel_range(x, y);
        const bool vis = mask[static_cast<std::size_t>(y) * gc.nx + x];
        if (r < 15.0) {
          ++near_total;
          if (vis) ++near_vis;
        } else if (r > 35.0) {
          ++far_total;
          if (vis) ++far_vis;
        }
      }
  }
  EXPECT_GT(static_cast<double>(near_vis) / near_total,
            2.0 * static_cast<double>(far_vis) / far_total);
}

TEST(RadialMasking, BeamPlanAveragePulseEnergyNearPaperValue) {
  RadialMasker m;
  sim::LidarConfig lc;  // 50 µJ full pulse
  sim::LidarSimulator lidar(lc);
  Rng rng(7);
  double energy = 0.0;
  std::size_t pulses = 0;
  for (int t = 0; t < 20; ++t) {
    for (const auto& cmd : m.beam_plan(lc, rng)) {
      energy += lidar.pulse_energy_for_range(cmd.target_range);
      ++pulses;
    }
  }
  const double avg_uj = energy / pulses * 1e6;
  // Paper reports 5.5 µJ; accept a generous band around it.
  EXPECT_GT(avg_uj, 2.0);
  EXPECT_LT(avg_uj, 10.0);
}

TEST(Masking, ApplyMaskZeroesHiddenVoxels) {
  VoxelGridConfig gc;
  gc.nx = gc.ny = 4;
  gc.nz = 1;
  VoxelGrid g(gc);
  g.set(0, 0, 0, true);
  g.set(1, 0, 0, true);
  std::vector<bool> visible(16, false);
  visible[0] = true;  // only (0,0) visible
  const nn::Tensor t = Masker::apply_mask(g, visible);
  EXPECT_DOUBLE_EQ(t[0], 1.0);
  EXPECT_DOUBLE_EQ(t[1], 0.0);  // masked occupied voxel hidden
}

TEST(Autoencoder, ShapesAndParamCount) {
  Rng rng(8);
  AutoencoderConfig cfg;
  cfg.grid.nx = cfg.grid.ny = 16;
  OccupancyAutoencoder ae(cfg, rng);
  const nn::Tensor in({1, cfg.grid.nz, 16, 16});
  const nn::Tensor z = ae.encode(in);
  EXPECT_EQ(z.shape(), (std::vector<int>{1, cfg.c2, 4, 4}));
  const nn::Tensor out = ae.decode(z);
  EXPECT_EQ(out.shape(), in.shape());
  EXPECT_GT(ae.param_count(), 1000u);
}

TEST(Autoencoder, ReconstructionOutputsProbabilities) {
  Rng rng(9);
  AutoencoderConfig cfg;
  cfg.grid.nx = cfg.grid.ny = 16;
  OccupancyAutoencoder ae(cfg, rng);
  const nn::Tensor in = nn::Tensor::randn({1, cfg.grid.nz, 16, 16}, rng);
  const nn::Tensor p = ae.reconstruct(in);
  for (std::size_t i = 0; i < p.numel(); ++i) {
    EXPECT_GE(p[i], 0.0);
    EXPECT_LE(p[i], 1.0);
  }
}

TEST(Autoencoder, TrainingReducesLoss) {
  Rng rng(10);
  AutoencoderConfig cfg;
  cfg.grid.nx = cfg.grid.ny = 16;
  cfg.c1 = 8;
  cfg.c2 = 8;
  OccupancyAutoencoder ae(cfg, rng);
  nn::Adam opt(1e-2);
  opt.attach(ae.params(), ae.grads());

  // One fixed pattern, masked: can it memorize?
  nn::Tensor target({1, cfg.grid.nz, 16, 16});
  for (std::size_t i = 0; i < target.numel(); i += 7) target[i] = 1.0;
  nn::Tensor masked = target;
  for (std::size_t i = 0; i < masked.numel(); i += 2) masked[i] = 0.0;

  const double first = ae.train_step(masked, target, opt);
  double last = first;
  for (int i = 0; i < 60; ++i) last = ae.train_step(masked, target, opt);
  EXPECT_LT(last, 0.5 * first);
}

TEST(Autoencoder, SurfaceWeightsMarkNeighborhoods) {
  VoxelGridConfig gc;
  gc.nx = gc.ny = 8;
  gc.nz = 1;
  nn::Tensor target({1, 1, 8, 8});
  target[static_cast<std::size_t>(3) * 8 + 3] = 1.0;  // voxel (3,3)
  const auto w = surface_weights(target, gc, 0.1);
  EXPECT_DOUBLE_EQ(w[static_cast<std::size_t>(3) * 8 + 3], 1.0);
  EXPECT_DOUBLE_EQ(w[static_cast<std::size_t>(2) * 8 + 4], 1.0);  // neighbor
  EXPECT_DOUBLE_EQ(w[static_cast<std::size_t>(7) * 8 + 7], 0.1);  // far
}

TEST(Autoencoder, EmbeddingHasLatentWidth) {
  Rng rng(11);
  AutoencoderConfig cfg;
  cfg.grid.nx = cfg.grid.ny = 16;
  OccupancyAutoencoder ae(cfg, rng);
  const auto e = ae.embedding(nn::Tensor({1, cfg.grid.nz, 16, 16}));
  EXPECT_EQ(e.size(), static_cast<std::size_t>(cfg.c2));
}

TEST(Quantized, ReconstructionErrorWithinBand) {
  // Int8 inference (quantize() + kInt8 backend) must track the float
  // reconstruction within a tight probability band. Fixed seeds; the
  // bands have ~5x headroom over observed error so they catch scheme
  // regressions (bad scales, wrong dequant order), not rounding noise.
  Rng rng(91);
  AutoencoderConfig cfg;
  cfg.grid.nx = cfg.grid.ny = 16;
  cfg.c1 = 8;
  cfg.c2 = 8;
  OccupancyAutoencoder ae(cfg, rng);
  nn::Tensor target({1, cfg.grid.nz, 16, 16});
  for (std::size_t i = 0; i < target.numel(); i += 7) target[i] = 1.0;
  nn::Tensor masked = target;
  for (std::size_t i = 0; i < masked.numel(); i += 2) masked[i] = 0.0;
  nn::Adam opt(1e-2);
  opt.attach(ae.params(), ae.grads());
  for (int i = 0; i < 30; ++i) ae.train_step(masked, target, opt);

  const nn::Tensor p_float = ae.reconstruct(masked);
  ae.quantize();
  EXPECT_TRUE(ae.is_quantized());
  nn::set_quant_backend(nn::QuantBackend::kInt8);
  const nn::Tensor p_int8 = ae.reconstruct(masked);
  nn::set_quant_backend(nn::QuantBackend::kAuto);

  ASSERT_TRUE(p_float.same_shape(p_int8));
  double mean_abs = 0.0, max_abs = 0.0;
  for (std::size_t i = 0; i < p_float.numel(); ++i) {
    const double d = std::fabs(p_float[i] - p_int8[i]);
    mean_abs += d;
    max_abs = std::max(max_abs, d);
  }
  mean_abs /= static_cast<double>(p_float.numel());
  EXPECT_LT(mean_abs, 0.02);
  EXPECT_LT(max_abs, 0.25);
  // The int8 path really ran: quantization error is never exactly zero
  // on a trained net.
  EXPECT_GT(max_abs, 0.0);
}

TEST(Detector, PretrainedInitCopiesWeights) {
  Rng rng(12);
  AutoencoderConfig acfg;
  acfg.grid.nx = acfg.grid.ny = 16;
  OccupancyAutoencoder ae(acfg, rng);
  DetectorConfig dcfg;
  dcfg.grid = acfg.grid;
  BevDetector det(dcfg, rng);
  det.init_from_pretrained(ae);
  // The first backbone conv is the AE's first encoder conv up to a single
  // positive rescaling (transfer renormalizes to He-init scale), so the
  // filter *directions* must match exactly.
  const nn::Tensor& dw = *det.params()[0];
  const nn::Tensor& aw = *ae.encoder_conv1().params()[0];
  ASSERT_TRUE(dw.same_shape(aw));
  double dot = 0.0, da = 0.0, db = 0.0;
  for (std::size_t i = 0; i < dw.numel(); ++i) {
    dot += dw[i] * aw[i];
    da += dw[i] * dw[i];
    db += aw[i] * aw[i];
  }
  EXPECT_NEAR(dot / std::sqrt(da * db), 1.0, 1e-6);
  // And the scale matches He initialization for this filter shape.
  const double std_now = std::sqrt(da / dw.numel());
  EXPECT_NEAR(std_now, std::sqrt(2.0 / (4 * 9)), 0.25 * std_now);
}

TEST(Detector, LearnsSingleCarScene) {
  Rng rng(13);
  sim::LidarConfig lc;
  sim::LidarSimulator lidar(lc);
  DetectorConfig dcfg;
  dcfg.grid.nx = dcfg.grid.ny = 32;
  dcfg.grid.extent = 30.0;
  BevDetector det(dcfg, rng);
  nn::Adam opt(3e-3);
  opt.attach(det.params(), det.grads());

  const sim::Scene scene = one_car_scene(12.0, 4.0);
  const sim::PointCloud pc = lidar.full_scan(scene, rng);
  const nn::Tensor grid = VoxelGrid::from_cloud(pc, dcfg.grid).to_tensor();

  for (int i = 0; i < 80; ++i) det.train_step(grid, scene, opt);
  const auto dets = det.detect(grid);
  ASSERT_FALSE(dets.empty());
  // Best detection should be a car near (12, 4).
  const Detection* best = &dets[0];
  for (const auto& d : dets)
    if (d.score > best->score) best = &d;
  EXPECT_EQ(best->cls, sim::ObjectClass::kCar);
  EXPECT_NEAR(best->box.center.x, 12.0, 2.5);
  EXPECT_NEAR(best->box.center.y, 4.0, 2.5);
}

TEST(Quantized, DetectionApWithinBand) {
  // The int8 detector must keep the distance-matched AP of the float
  // detector within a band on a scene the float model solves. Fixed
  // seeds throughout.
  Rng rng(92);
  sim::LidarConfig lc;
  sim::LidarSimulator lidar(lc);
  DetectorConfig dcfg;
  dcfg.grid.nx = dcfg.grid.ny = 32;
  dcfg.grid.extent = 30.0;
  BevDetector det(dcfg, rng);
  nn::Adam opt(3e-3);
  opt.attach(det.params(), det.grads());

  const sim::Scene scene = one_car_scene(12.0, 4.0);
  const sim::PointCloud pc = lidar.full_scan(scene, rng);
  const nn::Tensor grid = VoxelGrid::from_cloud(pc, dcfg.grid).to_tensor();
  for (int i = 0; i < 80; ++i) det.train_step(grid, scene, opt);

  const auto dets_float = det.detect(grid);
  const double ap_float = evaluate_ap_distance(
      {dets_float}, {scene}, sim::ObjectClass::kCar, 2.0);
  det.quantize();
  EXPECT_TRUE(det.is_quantized());
  nn::set_quant_backend(nn::QuantBackend::kInt8);
  const auto dets_int8 = det.detect(grid);
  nn::set_quant_backend(nn::QuantBackend::kAuto);
  const double ap_int8 = evaluate_ap_distance(
      {dets_int8}, {scene}, sim::ObjectClass::kCar, 2.0);

  EXPECT_GT(ap_float, 0.5);
  EXPECT_GE(ap_int8, ap_float - 0.25);
}

TEST(Detector, FeatureEmbeddingDimMatches) {
  Rng rng(14);
  DetectorConfig dcfg;
  dcfg.grid.nx = dcfg.grid.ny = 16;
  BevDetector det(dcfg, rng);
  const auto e = det.feature_embedding(nn::Tensor({1, dcfg.grid.nz, 16, 16}));
  EXPECT_EQ(static_cast<int>(e.size()), det.embedding_dim());
}

TEST(Detector, ProposalFeaturesReflectPointCount) {
  sim::PointCloud pc;
  Detection prop;
  prop.box = {{10, 0, 1}, {4, 2, 2}};
  const auto empty_feat = TwoStageDetector::proposal_features(prop, pc);
  EXPECT_DOUBLE_EQ(empty_feat[0], 0.0);

  for (int i = 0; i < 30; ++i) {
    sim::LidarReturn r;
    r.hit = true;
    r.point = {10.0 + 0.01 * i, 0.0, 1.0};
    pc.returns.push_back(r);
  }
  const auto feat = TwoStageDetector::proposal_features(prop, pc);
  EXPECT_GT(feat[0], 0.5);
  EXPECT_NEAR(feat[1], 1.0, 1e-9);  // mean z
}

TEST(Detector, ApEvaluationOracleScoresHigh) {
  // Detections exactly equal to ground truth → AP 1.
  Rng rng(15);
  sim::SceneConfig sc;
  std::vector<sim::Scene> scenes;
  std::vector<std::vector<Detection>> dets;
  for (int i = 0; i < 3; ++i) {
    scenes.push_back(sim::generate_scene(sc, rng));
    std::vector<Detection> d;
    for (const auto& obj : scenes.back().objects)
      d.push_back({obj.cls, obj.box, 0.9});
    dets.push_back(std::move(d));
  }
  for (int c = 0; c < sim::kNumObjectClasses; ++c)
    EXPECT_NEAR(evaluate_ap(dets, scenes, static_cast<sim::ObjectClass>(c), 0.5),
                1.0, 1e-9);
}

TEST(Detector, ApPenalizesFalsePositives) {
  sim::Scene scene = one_car_scene();
  std::vector<sim::Scene> scenes{scene};
  // One true match at lower score + two high-scored false positives.
  std::vector<Detection> d{
      {sim::ObjectClass::kCar, {{40, 40, 0.8}, {4.2, 1.8, 1.6}}, 0.95},
      {sim::ObjectClass::kCar, {{-40, 40, 0.8}, {4.2, 1.8, 1.6}}, 0.9},
      {sim::ObjectClass::kCar, scene.objects[0].box, 0.5},
  };
  const double ap = evaluate_ap({d}, scenes, sim::ObjectClass::kCar, 0.5);
  EXPECT_GT(ap, 0.0);
  EXPECT_LT(ap, 0.6);
}

TEST(Detector, ApIgnoresOtherClasses) {
  sim::Scene scene = one_car_scene();
  std::vector<Detection> d{
      {sim::ObjectClass::kPedestrian, scene.objects[0].box, 0.9}};
  EXPECT_DOUBLE_EQ(evaluate_ap({d}, {scene}, sim::ObjectClass::kCar, 0.5), 0.0);
}

TEST(Energy, ConventionalScanReportMatchesConfig) {
  sim::LidarConfig lc;
  lc.azimuth_steps = 90;
  lc.elevation_steps = 8;
  sim::LidarSimulator lidar(lc);
  Rng rng(16);
  sim::Scene scene;
  const sim::PointCloud pc = lidar.full_scan(scene, rng);
  const EnergyReport r = make_energy_report(pc, lc, 0, 0);
  EXPECT_DOUBLE_EQ(r.coverage, 1.0);
  EXPECT_NEAR(r.avg_pulse_energy_j, 50e-6, 1e-12);
  EXPECT_NEAR(r.sensing_energy_j, 90 * 8 * 50e-6, 1e-9);
  EXPECT_DOUBLE_EQ(r.reconstruction_energy_j, 0.0);
}

TEST(Energy, ReconstructionOverheadUsesFlopConstant) {
  sim::LidarConfig lc;
  sim::PointCloud pc;
  const EnergyReport r = make_energy_report(pc, lc, 830000, 167500000);
  EXPECT_EQ(r.flops_per_scan, 335000000u);
  EXPECT_NEAR(r.reconstruction_energy_j, 335e6 * kJoulesPerFlop, 1e-9);
  // With the paper's constants this lands at ≈7.1 mJ.
  EXPECT_NEAR(r.reconstruction_energy_j, 7.1e-3, 0.2e-3);
}

TEST(Pipeline, EndToEndEnergyAdvantage) {
  Rng rng(17);
  sim::LidarConfig lc;
  lc.azimuth_steps = 90;
  lc.elevation_steps = 8;
  AutoencoderConfig acfg;
  acfg.grid.nx = acfg.grid.ny = 16;
  acfg.c1 = 8;
  acfg.c2 = 8;
  GenerativeSensingPipeline pipe(lc, acfg, RadialMaskerConfig{}, rng);

  const sim::Scene scene = sim::generate_scene(sim::SceneConfig{}, rng);
  const SensedScene active = pipe.sense(scene, rng);
  const SensedScene conventional = pipe.sense_conventional(scene, rng);

  EXPECT_LT(active.energy.coverage, 0.15);
  EXPECT_DOUBLE_EQ(conventional.energy.coverage, 1.0);
  // Total energy advantage should be large (paper: 9.11×).
  EXPECT_GT(conventional.energy.total_energy_j() /
                active.energy.total_energy_j(),
            3.0);
}

TEST(Pipeline, PretrainingImprovesReconstruction) {
  Rng rng(18);
  sim::LidarConfig lc;
  lc.azimuth_steps = 90;
  lc.elevation_steps = 8;
  AutoencoderConfig acfg;
  acfg.grid.nx = acfg.grid.ny = 16;
  acfg.c1 = 8;
  acfg.c2 = 8;
  GenerativeSensingPipeline pipe(lc, acfg, RadialMaskerConfig{}, rng);

  sim::SceneConfig sc;
  Rng eval_rng(19);
  const sim::Scene test_scene = sim::generate_scene(sc, eval_rng);
  const sim::PointCloud full = pipe.lidar().full_scan(test_scene, eval_rng);
  const VoxelGrid truth = VoxelGrid::from_cloud(full, acfg.grid);
  const nn::Tensor target = truth.to_tensor();

  // Held-out masked-reconstruction BCE (probability space, clamped).
  auto eval_bce = [&](Rng& r) {
    const auto visible = pipe.masker().voxel_mask(truth, r);
    const nn::Tensor masked = Masker::apply_mask(truth, visible);
    const nn::Tensor p = pipe.autoencoder().reconstruct(masked);
    double bce = 0.0;
    for (std::size_t i = 0; i < p.numel(); ++i) {
      const double pi = std::clamp(p[i], 1e-6, 1.0 - 1e-6);
      bce += -(target[i] * std::log(pi) + (1 - target[i]) * std::log(1 - pi));
    }
    return bce / static_cast<double>(p.numel());
  };

  Rng r1(20), r2(20);
  const double before = eval_bce(r1);
  pipe.pretrain(/*num_scenes=*/8, /*epochs=*/30, /*lr=*/3e-3, rng, sc);
  const double after = eval_bce(r2);
  EXPECT_LT(after, before);
}

}  // namespace
}  // namespace s2a::lidar

// ------------------------------------------------------------------
// Adaptive task-aware masking (Sec. III future work).
#include "lidar/adaptive_masking.hpp"

namespace s2a::lidar {
namespace {

TEST(TaskAwareMasking, InterestDecaysWithoutDetections) {
  TaskAwareMasker m;
  Detection d;
  d.box.center = {10.0, 0.0, 0.8};
  m.observe_detections({d});
  const double before = m.interest()[0];
  m.observe_detections({});
  m.observe_detections({});
  EXPECT_LT(m.interest()[0], before);
  EXPECT_GT(before, 0.9);
}

TEST(TaskAwareMasking, DetectionRaisesSegmentAndNeighbours) {
  TaskAwareMaskerConfig cfg;
  TaskAwareMasker m(cfg);
  Detection d;
  d.box.center = {0.0, 12.0, 0.8};  // azimuth pi/2
  m.observe_detections({d});
  const int seg = cfg.base.angular_segments / 4;  // pi/2 of 2pi
  EXPECT_DOUBLE_EQ(m.interest()[static_cast<std::size_t>(seg)], 1.0);
  EXPECT_GE(m.interest()[static_cast<std::size_t>(seg + 1)], 0.5);
  EXPECT_GE(m.interest()[static_cast<std::size_t>(seg - 1)], 0.5);
}

TEST(TaskAwareMasking, BeamBudgetConcentratesOnInterestingSegments) {
  sim::LidarConfig lc;
  TaskAwareMaskerConfig cfg;
  cfg.base.segment_keep_fraction = 0.15;
  TaskAwareMasker m(cfg);
  Detection d;
  d.box.center = {15.0, 0.0, 0.8};  // azimuth ~0 -> segment 0
  m.observe_detections({d});

  Rng rng(41);
  int seg0_fired = 0, total = 0, seg0_total_possible = 0;
  const int trials = 30;
  for (int t = 0; t < trials; ++t) {
    const auto plan = m.beam_plan(lc, rng);
    total += static_cast<int>(plan.size());
    for (const auto& cmd : plan) {
      const int seg = cmd.azimuth_idx * cfg.base.angular_segments /
                      lc.azimuth_steps;
      if (seg == 0) ++seg0_fired;
    }
    seg0_total_possible += lc.azimuth_steps / cfg.base.angular_segments *
                           lc.elevation_steps;
  }
  // Segment 0 fires at nearly in_segment_keep (its segment is almost
  // always selected); a background segment fires at ~0.15 of that.
  const double seg0_rate = static_cast<double>(seg0_fired) / seg0_total_possible;
  EXPECT_GT(seg0_rate, 0.5 * cfg.base.in_segment_keep);
  // And overall coverage stays frugal.
  EXPECT_LT(static_cast<double>(total) / trials /
                (lc.azimuth_steps * lc.elevation_steps),
            0.25);
}

TEST(TaskAwareMasking, InterestingSegmentsFireMoreFullRangePulses) {
  sim::LidarConfig lc;
  TaskAwareMaskerConfig cfg;
  cfg.base.segment_keep_fraction = 1.0;  // isolate pulse-power behaviour
  TaskAwareMasker m(cfg);
  Detection d;
  d.box.center = {15.0, 0.0, 0.8};
  m.observe_detections({d});

  Rng rng(43);
  int seg0_far = 0, seg0_n = 0, other_far = 0, other_n = 0;
  for (int t = 0; t < 20; ++t) {
    for (const auto& cmd : m.beam_plan(lc, rng)) {
      const int seg = cmd.azimuth_idx * cfg.base.angular_segments /
                      lc.azimuth_steps;
      const bool interesting = m.interest()[static_cast<std::size_t>(seg)] > 0.25;
      const bool far = cmd.target_range >= lc.max_range * 0.99;
      if (interesting) {
        ++seg0_n;
        if (far) ++seg0_far;
      } else {
        ++other_n;
        if (far) ++other_far;
      }
    }
  }
  ASSERT_GT(seg0_n, 50);
  ASSERT_GT(other_n, 50);
  EXPECT_GT(static_cast<double>(seg0_far) / seg0_n,
            2.0 * static_cast<double>(other_far) / other_n);
}

}  // namespace
}  // namespace s2a::lidar

// ------------------------------------------------------------------
// Distance-matched AP (the nuScenes-style criterion used by the benches).
namespace s2a::lidar {
namespace {

TEST(DistanceAp, ExactCentersScorePerfect) {
  sim::Scene scene = one_car_scene(10.0, 5.0);
  std::vector<Detection> d{{sim::ObjectClass::kCar, scene.objects[0].box, 0.9}};
  EXPECT_NEAR(evaluate_ap_distance({d}, {scene}, sim::ObjectClass::kCar, 2.0),
              1.0, 1e-9);
}

TEST(DistanceAp, MatchRadiusIsRespected) {
  sim::Scene scene = one_car_scene(10.0, 0.0);
  Detection close, far;
  close.cls = far.cls = sim::ObjectClass::kCar;
  close.box = scene.objects[0].box;
  close.box.center.x += 1.5;  // within 2 m
  close.score = 0.9;
  far.box = scene.objects[0].box;
  far.box.center.x += 3.0;  // outside 2 m
  far.score = 0.9;
  EXPECT_GT(evaluate_ap_distance({{close}}, {scene}, sim::ObjectClass::kCar, 2.0), 0.9);
  EXPECT_DOUBLE_EQ(evaluate_ap_distance({{far}}, {scene}, sim::ObjectClass::kCar, 2.0), 0.0);
}

TEST(DistanceAp, EachGroundTruthMatchesAtMostOnce) {
  // Two cars; a duplicate detection of car A ranked between the two true
  // positives. If the duplicate were allowed to re-match car A, AP would
  // be 1; counted (correctly) as a false positive mid-curve, it drags the
  // interpolated precision at full recall below 1.
  sim::Scene scene;
  sim::SceneObject a, b;
  a.cls = b.cls = sim::ObjectClass::kCar;
  a.box = {{10, 0, 0.8}, {4.2, 1.8, 1.6}};
  b.box = {{20, 0, 0.8}, {4.2, 1.8, 1.6}};
  scene.objects = {a, b};
  Detection hit_a{sim::ObjectClass::kCar, a.box, 0.9};
  Detection dup_a{sim::ObjectClass::kCar, a.box, 0.85};
  Detection hit_b{sim::ObjectClass::kCar, b.box, 0.8};
  const double ap = evaluate_ap_distance({{hit_a, dup_a, hit_b}}, {scene},
                                         sim::ObjectClass::kCar, 2.0);
  EXPECT_GT(ap, 0.6);
  EXPECT_LT(ap, 0.95);
}

TEST(DistanceAp, PrefersNearestUnmatchedGroundTruth) {
  // Two cars; one detection halfway but closer to car A: must match A,
  // leaving car B unmatched (recall 0.5).
  sim::Scene scene;
  sim::SceneObject a, b;
  a.cls = b.cls = sim::ObjectClass::kCar;
  a.box = {{10, 0, 0.8}, {4.2, 1.8, 1.6}};
  b.box = {{14, 0, 0.8}, {4.2, 1.8, 1.6}};
  scene.objects = {a, b};
  Detection d;
  d.cls = sim::ObjectClass::kCar;
  d.box = a.box;
  d.box.center.x += 1.0;  // 1 m from A, 3 m from B
  d.score = 0.9;
  const double ap = evaluate_ap_distance({{d}}, {scene},
                                         sim::ObjectClass::kCar, 3.5);
  EXPECT_GT(ap, 0.0);
  EXPECT_LT(ap, 0.6);  // only 1 of 2 ground truths recalled
}

}  // namespace
}  // namespace s2a::lidar

// ------------------------------------------------------------------
// Parallel-vs-serial equivalence for the sharded hot paths
// (util::ThreadPool). Voxel occupancy is merged by bitwise OR and every
// conv/deconv output element is produced by exactly one task in the
// serial summation order, so all comparisons are bit-exact — no float
// tolerance is needed at any thread count.
#include <cstdlib>
#include <thread>

#include "util/thread_pool.hpp"

namespace s2a::lidar {
namespace {

std::vector<int> equivalence_thread_counts() {
  std::vector<int> counts{2, 4};
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  if (hw > 1 && hw != 2 && hw != 4) counts.push_back(hw);
  return counts;
}

// Forces the sharded paths on even when the host has fewer cores than
// pool slots — util::effective_parallelism() would otherwise fall back
// to serial and make these equivalence tests vacuous on small CI boxes.
struct ScopedForceParallel {
  ScopedForceParallel() { setenv("S2A_FORCE_PARALLEL", "1", 1); }
  ~ScopedForceParallel() { unsetenv("S2A_FORCE_PARALLEL"); }
};

std::size_t count_mismatches(const nn::Tensor& a, const nn::Tensor& b) {
  if (a.numel() != b.numel()) return a.numel() + b.numel();
  std::size_t bad = 0;
  for (std::size_t i = 0; i < a.numel(); ++i)
    if (a[i] != b[i]) ++bad;
  return bad;
}

TEST(ParallelEquivalence, VoxelizeBitExactAcrossThreadCounts) {
  sim::LidarConfig lc;
  lc.azimuth_steps = 720;
  lc.elevation_steps = 16;  // 11520 returns: above the parallel threshold
  sim::LidarSimulator lidar(lc);
  Rng rng(101);
  const sim::Scene scene = sim::generate_scene(sim::SceneConfig{}, rng);
  const sim::PointCloud pc = lidar.full_scan(scene, rng);
  ASSERT_GE(pc.returns.size(), 10000u);

  VoxelGridConfig gc;
  nn::Tensor serial;
  {
    util::ScopedGlobalThreads threads(1);
    serial = VoxelGrid::from_cloud(pc, gc).to_tensor();
  }
  ScopedForceParallel force;
  for (int threads : equivalence_thread_counts()) {
    util::ScopedGlobalThreads scoped(threads);
    const nn::Tensor parallel = VoxelGrid::from_cloud(pc, gc).to_tensor();
    EXPECT_EQ(count_mismatches(serial, parallel), 0u) << threads << " threads";
  }
}

TEST(ParallelEquivalence, AutoencoderReconstructBitExactAcrossThreadCounts) {
  Rng rng(102);
  AutoencoderConfig cfg;  // default 48x48 grid: conv work above threshold
  OccupancyAutoencoder ae(cfg, rng);
  const nn::Tensor in =
      nn::Tensor::randn({1, cfg.grid.nz, cfg.grid.ny, cfg.grid.nx}, rng);

  nn::Tensor serial;
  {
    util::ScopedGlobalThreads threads(1);
    serial = ae.reconstruct(in);
  }
  ScopedForceParallel force;
  for (int threads : equivalence_thread_counts()) {
    util::ScopedGlobalThreads scoped(threads);
    const nn::Tensor parallel = ae.reconstruct(in);
    EXPECT_EQ(count_mismatches(serial, parallel), 0u) << threads << " threads";
  }
}

TEST(ParallelEquivalence, DetectorOutputIdenticalAcrossThreadCounts) {
  Rng rng(103);
  sim::LidarConfig lc;
  sim::LidarSimulator lidar(lc);
  DetectorConfig dcfg;
  dcfg.grid.nx = dcfg.grid.ny = 32;
  dcfg.grid.extent = 30.0;
  dcfg.score_threshold = 0.05;  // surface plenty of detections to compare
  BevDetector det(dcfg, rng);
  const sim::Scene scene = one_car_scene(12.0, 4.0);
  const sim::PointCloud pc = lidar.full_scan(scene, rng);
  const nn::Tensor grid = VoxelGrid::from_cloud(pc, dcfg.grid).to_tensor();

  std::vector<Detection> serial;
  {
    util::ScopedGlobalThreads threads(1);
    serial = det.detect(grid);
  }
  ScopedForceParallel force;
  for (int threads : equivalence_thread_counts()) {
    util::ScopedGlobalThreads scoped(threads);
    const std::vector<Detection> parallel = det.detect(grid);
    ASSERT_EQ(parallel.size(), serial.size()) << threads << " threads";
    for (std::size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(parallel[i].cls, serial[i].cls);
      EXPECT_EQ(parallel[i].score, serial[i].score);
      EXPECT_EQ(parallel[i].box.center.x, serial[i].box.center.x);
      EXPECT_EQ(parallel[i].box.center.y, serial[i].box.center.y);
      EXPECT_EQ(parallel[i].box.center.z, serial[i].box.center.z);
    }
  }
}

}  // namespace
}  // namespace s2a::lidar
