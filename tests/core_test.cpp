// Tests for the sensing-to-action loop framework: metering semantics,
// staleness accounting, trust gating, adaptive policies, and the
// multi-agent coordination math.
#include <gtest/gtest.h>

#include <cmath>

#include "core/loop.hpp"
#include "core/multi_agent.hpp"
#include "core/policies.hpp"
#include "util/check.hpp"

namespace s2a::core {
namespace {

// A scripted environment: scalar signal with a configurable burst window.
class ScriptedSensor : public Sensor {
 public:
  ScriptedSensor(double burst_start, double burst_end)
      : burst_start_(burst_start), burst_end_(burst_end) {}

  Observation sense(double now, Rng& rng) override {
    Observation obs;
    const bool burst = now >= burst_start_ && now < burst_end_;
    obs.data = {burst ? 5.0 + rng.normal(0.0, 1.0) : 0.1};
    obs.timestamp = now;
    obs.energy_j = 1e-3;
    return obs;
  }

 private:
  double burst_start_, burst_end_;
};

class PassthroughProcessor : public Processor {
 public:
  std::vector<double> process(const Observation& obs, Rng&) override {
    return obs.data;
  }
  double energy_per_call_j() const override { return 1e-4; }
};

class RecordingActuator : public Actuator {
 public:
  void actuate(const Action& action, Rng&) override {
    actions.push_back(action);
  }
  std::vector<Action> actions;
};

class AlwaysUntrusted : public TrustMonitor {
 public:
  bool trusted(const Observation&, Rng&) override { return false; }
};

TEST(Loop, PeriodicPolicyMetersSensingEnergy) {
  ScriptedSensor sensor(1e9, 1e9);  // no burst
  PassthroughProcessor proc;
  RecordingActuator act;
  PeriodicPolicy policy(4);
  SensingActionLoop loop(sensor, proc, act, policy);
  Rng rng(1);
  loop.run(100, rng);
  const auto& m = loop.metrics();
  EXPECT_EQ(m.ticks, 100);
  EXPECT_EQ(m.senses, 25);
  EXPECT_NEAR(m.duty_cycle(), 0.25, 1e-12);
  EXPECT_NEAR(m.sensing_energy_j, 25e-3, 1e-12);
  EXPECT_NEAR(m.processing_energy_j, 100e-4, 1e-12);  // acts every tick
  EXPECT_EQ(m.actions, 100);
}

TEST(Loop, StalenessGrowsWithSparserSensing) {
  auto staleness = [](int period) {
    ScriptedSensor sensor(1e9, 1e9);
    PassthroughProcessor proc;
    RecordingActuator act;
    PeriodicPolicy policy(period);
    SensingActionLoop loop(sensor, proc, act, policy);
    Rng rng(2);
    loop.run(200, rng);
    return loop.metrics().mean_staleness_s();
  };
  EXPECT_GT(staleness(10), staleness(1));
}

TEST(Loop, LatencyAddsToStaleness) {
  ScriptedSensor sensor(1e9, 1e9);
  PassthroughProcessor proc;
  RecordingActuator act;
  PeriodicPolicy policy(1);
  LoopConfig cfg;
  cfg.sensing_latency = 0.1;
  cfg.processing_latency = 0.05;
  SensingActionLoop loop(sensor, proc, act, policy, cfg);
  Rng rng(3);
  loop.run(50, rng);
  EXPECT_NEAR(loop.metrics().mean_staleness_s(), 0.15, 1e-9);
}

TEST(Loop, UntrustedObservationsNeverReachActuator) {
  ScriptedSensor sensor(1e9, 1e9);
  PassthroughProcessor proc;
  RecordingActuator act;
  PeriodicPolicy policy(1);
  AlwaysUntrusted monitor;
  SensingActionLoop loop(sensor, proc, act, policy, LoopConfig{}, &monitor);
  Rng rng(4);
  loop.run(20, rng);
  EXPECT_EQ(loop.metrics().vetoed, 20);
  EXPECT_EQ(loop.metrics().actions, 0);
  EXPECT_TRUE(act.actions.empty());
}

TEST(Loop, ActsOnLastObservationWhenSkipping) {
  ScriptedSensor sensor(1e9, 1e9);
  PassthroughProcessor proc;
  RecordingActuator act;
  PeriodicPolicy policy(5);
  SensingActionLoop loop(sensor, proc, act, policy);
  Rng rng(5);
  loop.run(10, rng);
  // All actions between senses reference the same observation timestamp.
  ASSERT_GE(act.actions.size(), 5u);
  EXPECT_DOUBLE_EQ(act.actions[1].based_on_timestamp,
                   act.actions[0].based_on_timestamp);
}

TEST(Policies, AdaptiveRampsUpDuringBurst) {
  // Burst in the middle third of the run: adaptive should sense more
  // during it than in the quiet thirds.
  ScriptedSensor sensor(5.0, 10.0);
  PassthroughProcessor proc;
  RecordingActuator act;
  AdaptiveActivityConfig acfg;
  acfg.base_rate = 0.1;
  acfg.activity_saturation = 0.5;
  AdaptiveActivityPolicy policy(acfg);
  LoopConfig cfg;
  cfg.dt = 0.05;
  SensingActionLoop loop(sensor, proc, act, policy, cfg);
  Rng rng(6);

  long senses_before = 0, senses_burst = 0;
  // 0..5s quiet.
  loop.run(100, rng);
  senses_before = loop.metrics().senses;
  // 5..10s burst.
  loop.run(100, rng);
  senses_burst = loop.metrics().senses - senses_before;
  EXPECT_GT(senses_burst, 2 * senses_before / 3 + 5);
}

TEST(Policies, AdaptiveAlwaysSensesFirstTick) {
  AdaptiveActivityPolicy policy;
  Rng rng(7);
  EXPECT_TRUE(policy.should_sense(0.0, nullptr, rng));
}

TEST(Policies, ActionAwareRampsWithReportedMagnitude) {
  ActionAwarePolicy policy(0.05, 1.0, 1.0);
  Rng rng(8);
  Observation obs;
  obs.data = {0.0};
  int low = 0, high = 0;
  for (int i = 0; i < 500; ++i)
    if (policy.should_sense(0.0, &obs, rng)) ++low;
  for (int i = 0; i < 20; ++i) policy.report_action(2.0);  // saturate
  for (int i = 0; i < 500; ++i)
    if (policy.should_sense(0.0, &obs, rng)) ++high;
  EXPECT_GT(high, 5 * low);
}

TEST(Policies, PeriodicRejectsNonPositivePeriod) {
  EXPECT_THROW(PeriodicPolicy(0), CheckError);
}

TEST(MultiAgent, AgentRangeAndCost) {
  SensingAgent a;
  a.position = {0, 0, 0};
  a.sensing_range = 10.0;
  EXPECT_TRUE(a.can_observe({6, 0, 0}));
  EXPECT_FALSE(a.can_observe({11, 0, 0}));
  // Cost grows with squared distance.
  EXPECT_GT(a.cost({8, 0, 0}), a.cost({2, 0, 0}));
  EXPECT_NEAR(a.cost({5, 0, 0}), a.energy_per_observation_j, 1e-12);
}

TEST(MultiAgent, CoordinationEliminatesRedundancy) {
  Rng rng(9);
  const auto agents = make_agent_fleet(6, 40.0, 50.0, rng);  // overlapping
  const auto targets = make_target_field(30, 40.0, rng);
  const CoverageReport ind = independent_sensing(agents, targets);
  const CoverageReport coord = coordinated_sensing(agents, targets);
  EXPECT_EQ(coord.coverage(), ind.coverage());
  EXPECT_GT(ind.redundant_observations, 0);
  EXPECT_EQ(coord.redundant_observations, 0);
  EXPECT_LT(coord.energy_j, ind.energy_j);
}

TEST(MultiAgent, CoordinatedMeetsMultiObserverRequirements) {
  SensingAgent a1, a2, a3;
  a1.position = {0, 0, 0};
  a2.position = {5, 0, 0};
  a3.position = {0, 5, 0};
  for (auto* a : {&a1, &a2, &a3}) a->sensing_range = 20.0;
  SensingTarget t;
  t.position = {2, 2, 0};
  t.required_observers = 2;
  const CoverageReport r = coordinated_sensing({a1, a2, a3}, {t});
  EXPECT_EQ(r.targets_covered, 1);
  EXPECT_EQ(r.observations, 2);  // exactly the requirement, no more
}

TEST(MultiAgent, UncoverableTargetReported) {
  SensingAgent a;
  a.position = {0, 0, 0};
  a.sensing_range = 5.0;
  SensingTarget far;
  far.position = {100, 0, 0};
  const CoverageReport ind = independent_sensing({a}, {far});
  const CoverageReport coord = coordinated_sensing({a}, {far});
  EXPECT_EQ(ind.targets_covered, 0);
  EXPECT_EQ(coord.targets_covered, 0);
}

TEST(MultiAgent, CoordinatedPicksCheapestAgent) {
  SensingAgent near_agent, far_agent;
  near_agent.position = {1, 0, 0};
  far_agent.position = {9, 0, 0};
  near_agent.sensing_range = far_agent.sensing_range = 20.0;
  SensingTarget t;
  t.position = {0, 0, 0};
  const CoverageReport r = coordinated_sensing({far_agent, near_agent}, {t});
  EXPECT_EQ(r.observations, 1);
  EXPECT_NEAR(r.energy_j, near_agent.cost(t.position), 1e-15);
}

}  // namespace
}  // namespace s2a::core

// ------------------------------------------------------------------
// Hierarchical control, LIF sensing, confidence gating (Secs. I/V/VI).
#include "core/hierarchical.hpp"

namespace s2a::core {
namespace {

TEST(Hierarchical, FastTierTracksSetpoint) {
  HierarchicalControllerConfig cfg;
  cfg.fast_gain = 0.5;
  cfg.initial_setpoint = 2.0;
  cfg.planning_period = 1000;  // slow tier effectively off
  HierarchicalController ctl(
      cfg, [](const Observation& o) { return o.data[0]; },
      [](double) { return 2.0; });
  Observation obs;
  obs.data = {0.0};
  // value 0 < setpoint 2 → parameter climbs toward max.
  const double p0 = ctl.parameter();
  for (int i = 0; i < 10; ++i) ctl.update(obs);
  EXPECT_GT(ctl.parameter(), p0);
  // value above setpoint → parameter falls.
  obs.data = {5.0};
  const double p1 = ctl.parameter();
  for (int i = 0; i < 10; ++i) ctl.update(obs);
  EXPECT_LT(ctl.parameter(), p1);
}

TEST(Hierarchical, SlowTierReplansOnSchedule) {
  HierarchicalControllerConfig cfg;
  cfg.planning_period = 5;
  int replan_calls = 0;
  HierarchicalController ctl(
      cfg, [](const Observation& o) { return o.data[0]; },
      [&](double mean) {
        ++replan_calls;
        return mean * 0.5;  // plan: hold half of recent activity
      });
  Observation obs;
  obs.data = {4.0};
  for (int i = 0; i < 15; ++i) ctl.update(obs);
  EXPECT_EQ(replan_calls, 3);
  EXPECT_EQ(ctl.replans(), 3);
  EXPECT_NEAR(ctl.setpoint(), 2.0, 1e-9);
}

TEST(Hierarchical, ParameterStaysClamped) {
  HierarchicalControllerConfig cfg;
  cfg.fast_gain = 100.0;
  cfg.parameter_min = 0.0;
  cfg.parameter_max = 1.0;
  HierarchicalController ctl(
      cfg, [](const Observation& o) { return o.data[0]; },
      [](double) { return 100.0; });
  Observation obs;
  obs.data = {-100.0};
  for (int i = 0; i < 5; ++i) ctl.update(obs);
  EXPECT_LE(ctl.parameter(), 1.0);
  obs.data = {1000.0};
  for (int i = 0; i < 5; ++i) ctl.update(obs);
  EXPECT_GE(ctl.parameter(), 0.0);
}

TEST(LifPolicy, QuietSignalSensesRarelyBusySensesOften) {
  LifSensingPolicy policy(0.8, 1.0, 0.5);
  Rng rng(1);
  Observation quiet, busy;
  quiet.data = {0.05};
  busy.data = {2.0};
  int quiet_senses = 0, busy_senses = 0;
  for (int i = 0; i < 200; ++i)
    if (policy.should_sense(0.0, &quiet, rng)) ++quiet_senses;
  for (int i = 0; i < 200; ++i)
    if (policy.should_sense(0.0, &busy, rng)) ++busy_senses;
  EXPECT_LT(quiet_senses, 30);
  EXPECT_GT(busy_senses, 150);
}

TEST(LifPolicy, MembraneResetBySubtraction) {
  LifSensingPolicy policy(0.5, 1.0, 1.0);  // retention 0.5, gain 1
  Rng rng(2);
  Observation obs;
  obs.data = {0.8};
  EXPECT_TRUE(policy.should_sense(0.0, nullptr, rng));  // bootstrap
  EXPECT_FALSE(policy.should_sense(0.0, &obs, rng));    // v = 0.8
  EXPECT_TRUE(policy.should_sense(0.0, &obs, rng));     // v = 1.2 → spike
  EXPECT_NEAR(policy.membrane(), 0.2, 1e-12);           // residual kept
  EXPECT_EQ(policy.spikes(), 1);
}

TEST(ConfidenceGate, ScalesActionsAndValidatesRange) {
  class Recorder : public Actuator {
   public:
    void actuate(const Action& a, Rng&) override { last = a.data; }
    std::vector<double> last;
  } rec;
  ConfidenceGatedActuator gate(rec);
  Rng rng(3);
  Action a;
  a.data = {2.0, -4.0};
  gate.set_confidence(0.5);
  gate.actuate(a, rng);
  EXPECT_EQ(rec.last, (std::vector<double>{1.0, -2.0}));
  EXPECT_THROW(gate.set_confidence(1.5), CheckError);
}

}  // namespace
}  // namespace s2a::core
