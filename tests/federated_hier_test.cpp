// Tests for hierarchical streaming federated aggregation: flat-vs-tree
// bit-identity at every thread count, seeded cohort sampling, top-k +
// error-feedback compression, per-edge deadline semantics, fault
// quarantine at every tree level, and the flat-memory scaling invariant
// the S2A_BENCH_FED_SCALE bench asserts at 100k clients.
#include <gtest/gtest.h>

#include <algorithm>

#include "fault/fault.hpp"
#include "federated/compress.hpp"
#include "federated/fedavg.hpp"
#include "federated/hierarchy.hpp"
#include "sim/dataset.hpp"
#include "util/thread_pool.hpp"

namespace s2a::federated {
namespace {

sim::ClassificationDataset slice_dataset(const sim::ClassificationDataset& src,
                                         std::size_t lo, std::size_t hi) {
  sim::ClassificationDataset out;
  out.feature_dim = src.feature_dim;
  out.num_classes = src.num_classes;
  for (std::size_t i = lo; i < hi; ++i) {
    out.features.push_back(src.features[i]);
    out.labels.push_back(src.labels[i]);
  }
  return out;
}

/// Shared non-IID fixture: 9 clients over a 300/150 train/test split.
struct FlFixture {
  sim::ClassificationDataset tr, te;
  std::vector<std::vector<int>> shards;
  std::vector<HardwareProfile> fleet;
};

FlFixture make_fixture(int clients = 9) {
  FlFixture f;
  Rng data_rng(21);
  const auto full = sim::make_gaussian_classes(450, 16, 10, 3.0, data_rng);
  f.tr = slice_dataset(full, 0, 300);
  f.te = slice_dataset(full, 300, 450);
  Rng part_rng(22);
  f.shards =
      sim::dirichlet_partition(f.tr.labels, clients, 10, 0.5, part_rng);
  f.fleet = make_heterogeneous_fleet(clients, part_rng);
  return f;
}

void expect_results_equal(const FlResult& a, const FlResult& b) {
  ASSERT_EQ(a.accuracy_per_round.size(), b.accuracy_per_round.size());
  for (std::size_t r = 0; r < a.accuracy_per_round.size(); ++r)
    EXPECT_DOUBLE_EQ(a.accuracy_per_round[r], b.accuracy_per_round[r])
        << "round " << r;
  EXPECT_DOUBLE_EQ(a.final_accuracy, b.final_accuracy);
  EXPECT_DOUBLE_EQ(a.total_energy_j, b.total_energy_j);
  EXPECT_DOUBLE_EQ(a.total_latency_s, b.total_latency_s);
  EXPECT_DOUBLE_EQ(a.mean_area_mm2, b.mean_area_mm2);
  EXPECT_EQ(a.dropped_client_rounds, b.dropped_client_rounds);
  EXPECT_EQ(a.nonfinite_deltas, b.nonfinite_deltas);
  EXPECT_EQ(a.survivors_per_round, b.survivors_per_round);
  EXPECT_EQ(a.client_widths, b.client_widths);
}

// ---------------------------------------------------------------------------
// Flat ≡ hierarchical bit-identity (the tentpole acceptance criterion).

class HierEquivalenceTest : public ::testing::TestWithParam<FlStrategy> {};

TEST_P(HierEquivalenceTest, TreeShapeAndThreadsDoNotChangeResults) {
  const FlFixture f = make_fixture();
  // Client-level chaos rides along so the deadline/quarantine paths are
  // part of the equivalence, not just the happy path.
  fault::FaultPlan plan({
      {fault::FaultKind::kClientStraggler, 0.0, 3.0, 1, 1e6},
      {fault::FaultKind::kClientDropout, 1.0, 3.0, 3, 0.0},
      {fault::FaultKind::kClientCorrupt, 0.0, 2.0, 5, 0.0},
  });
  FlConfig cfg;
  cfg.rounds = 3;
  cfg.client_timeout_s = 60.0;

  FlResult flat;
  {
    util::ScopedGlobalThreads threads(1);
    Rng rng(23);
    flat = run_federated(GetParam(), f.tr, f.te, f.shards, f.fleet, cfg, rng,
                         &plan);
  }

  for (int threads : {1, 4}) {
    util::ScopedGlobalThreads scoped(threads);
    {
      Rng rng(23);
      const FlResult again = run_federated(GetParam(), f.tr, f.te, f.shards,
                                           f.fleet, cfg, rng, &plan);
      expect_results_equal(again, flat);
    }
    // Full participant set, uncompressed, through a deep tree: 5 edges
    // of ≤2 clients grouped into 3 regions.
    HierConfig hier;
    hier.fl = cfg;
    hier.clients_per_edge = 2;
    hier.edges_per_region = 2;
    Rng rng(23);
    const HierResult tree = run_federated_hier(
        GetParam(), f.tr, f.te, f.shards, f.fleet, hier, rng, &plan);
    expect_results_equal(tree.fl, flat);
    EXPECT_EQ(tree.hier.edges, 5);
    EXPECT_EQ(tree.hier.regions, 3);
    EXPECT_EQ(tree.hier.dropped_edge_rounds, 0);
    EXPECT_EQ(tree.hier.quarantined_edges, 0);
  }
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, HierEquivalenceTest,
                         ::testing::Values(FlStrategy::kStaticFl,
                                           FlStrategy::kDcNas,
                                           FlStrategy::kHaloFl),
                         [](const ::testing::TestParamInfo<FlStrategy>& info) {
                           switch (info.param) {
                             case FlStrategy::kStaticFl:
                               return "StaticFl";
                             case FlStrategy::kDcNas:
                               return "DcNas";
                             case FlStrategy::kHaloFl:
                               return "HaloFl";
                           }
                           return "unknown";
                         });

// ---------------------------------------------------------------------------
// Seeded per-round sampling.

TEST(FedSampling, CohortIsSortedUniqueAndSized) {
  std::vector<std::vector<int>> shards(40, std::vector<int>{0});
  const auto cohort =
      sample_cohort(SampleMode::kUniform, 0.25, 1234, shards);
  EXPECT_EQ(cohort.size(), 10u);  // ceil(0.25 * 40)
  EXPECT_TRUE(std::is_sorted(cohort.begin(), cohort.end()));
  EXPECT_EQ(std::adjacent_find(cohort.begin(), cohort.end()), cohort.end());
  for (int c : cohort) {
    EXPECT_GE(c, 0);
    EXPECT_LT(c, 40);
  }
  // Pure function of the seed.
  EXPECT_EQ(cohort, sample_cohort(SampleMode::kUniform, 0.25, 1234, shards));
  EXPECT_NE(cohort, sample_cohort(SampleMode::kUniform, 0.25, 1235, shards));
  // kAll and fraction 1.0 train everyone.
  EXPECT_EQ(sample_cohort(SampleMode::kAll, 0.1, 7, shards).size(), 40u);
  EXPECT_EQ(sample_cohort(SampleMode::kUniform, 1.0, 7, shards).size(), 40u);
}

TEST(FedSampling, WeightedSamplingPrefersLargeShards) {
  // Client 0 holds 20 samples, everyone else 2: its inclusion frequency
  // at fraction 0.3 must dwarf a small client's.
  std::vector<std::vector<int>> shards(10, std::vector<int>{0, 1});
  shards[0].assign(20, 0);
  int big = 0, small = 0;
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    const auto cohort =
        sample_cohort(SampleMode::kWeightedByShard, 0.3, seed, shards);
    EXPECT_EQ(cohort.size(), 3u);
    big += std::count(cohort.begin(), cohort.end(), 0);
    small += std::count(cohort.begin(), cohort.end(), 9);
  }
  EXPECT_GT(big, 2 * small);
  EXPECT_GT(big, 120);  // a 10x weight should win most rounds
}

TEST(FedSampling, SampledRunsBitIdenticalAcrossThreadCounts) {
  const FlFixture f = make_fixture();
  HierConfig hier;
  hier.fl.rounds = 3;
  hier.clients_per_edge = 3;
  hier.edges_per_region = 2;
  hier.sample_mode = SampleMode::kUniform;
  hier.sample_fraction = 0.5;

  HierResult serial;
  {
    util::ScopedGlobalThreads threads(1);
    Rng rng(31);
    serial = run_federated_hier(FlStrategy::kStaticFl, f.tr, f.te, f.shards,
                                f.fleet, hier, rng);
  }
  EXPECT_EQ(serial.hier.sampled_client_rounds, 3 * 5);  // ceil(0.5 * 9)
  {
    util::ScopedGlobalThreads threads(4);
    Rng rng(31);
    const HierResult parallel = run_federated_hier(
        FlStrategy::kStaticFl, f.tr, f.te, f.shards, f.fleet, hier, rng);
    expect_results_equal(parallel.fl, serial.fl);
    EXPECT_EQ(parallel.hier.sampled_client_rounds,
              serial.hier.sampled_client_rounds);
    EXPECT_EQ(parallel.hier.client_participation,
              serial.hier.client_participation);
  }
}

// ---------------------------------------------------------------------------
// Top-k compression with error feedback.

TEST(FedCompress, KeepCountCeilsAndNeverZeroes) {
  EXPECT_EQ(topk_keep_count(10, 0.25), 3u);  // ceil(2.5)
  EXPECT_EQ(topk_keep_count(10, 1.0), 10u);
  EXPECT_EQ(topk_keep_count(10, 0.01), 1u);
  EXPECT_EQ(topk_keep_count(0, 0.5), 0u);
}

TEST(FedCompress, SelectsLargestMagnitudesTiesTowardLowIndex) {
  std::vector<double> delta{0.1, -5.0, 3.0, 0.0, 2.0};
  const SparseDelta sd = topk_compress(delta, 0.4, nullptr, nullptr);
  ASSERT_EQ(sd.entries.size(), 2u);  // ceil(0.4 * 5)
  EXPECT_EQ(sd.entries[0].index, 1u);
  EXPECT_DOUBLE_EQ(sd.entries[0].value, -5.0);
  EXPECT_EQ(sd.entries[1].index, 2u);
  EXPECT_DOUBLE_EQ(sd.entries[1].value, 3.0);
  EXPECT_EQ(sd.dense_numel, 5u);

  std::vector<double> ties{1.0, -1.0, 1.0, -1.0};
  const SparseDelta tied = topk_compress(ties, 0.5, nullptr, nullptr);
  ASSERT_EQ(tied.entries.size(), 2u);
  EXPECT_EQ(tied.entries[0].index, 0u);
  EXPECT_EQ(tied.entries[1].index, 1u);
}

TEST(FedCompress, ErrorFeedbackConservesTheUpdate) {
  // shipped + residual' == delta_in + residual_in, position-exact.
  Rng rng(5);
  std::vector<double> delta(64), resid(64);
  for (auto& v : delta) v = rng.normal();
  for (auto& v : resid) v = 0.25 * rng.normal();
  const std::vector<double> delta_in = delta;
  const std::vector<double> resid_in = resid;

  const SparseDelta sd = topk_compress(delta, 0.25, &resid, nullptr);
  EXPECT_EQ(sd.entries.size(), 16u);
  std::vector<double> shipped(64, 0.0);
  for (const auto& e : sd.entries) shipped[e.index] = e.value;
  for (std::size_t i = 0; i < 64; ++i) {
    EXPECT_DOUBLE_EQ(shipped[i] + resid[i], delta_in[i] + resid_in[i]) << i;
    // A position is either shipped or carried, never both.
    EXPECT_TRUE(shipped[i] == 0.0 || resid[i] == 0.0) << i;
  }
}

TEST(FedCompress, EligibilityMaskGuardsPositionsAndResidual) {
  std::vector<double> delta{9.0, 8.0, 7.0, 6.0};
  std::vector<double> resid{0.5, 0.5, 0.5, 0.5};
  const std::vector<unsigned char> eligible{0, 1, 0, 1};
  const SparseDelta sd = topk_compress(delta, 0.5, &resid, &eligible);
  ASSERT_EQ(sd.entries.size(), 1u);  // ceil(0.5 * 2 eligible)
  EXPECT_EQ(sd.entries[0].index, 1u);
  EXPECT_DOUBLE_EQ(sd.entries[0].value, 8.5);  // residual folded in
  // Ineligible residuals untouched; the unshipped eligible one carries.
  EXPECT_DOUBLE_EQ(resid[0], 0.5);
  EXPECT_DOUBLE_EQ(resid[2], 0.5);
  EXPECT_DOUBLE_EQ(resid[1], 0.0);
  EXPECT_DOUBLE_EQ(resid[3], 6.5);
}

TEST(FedCompress, FullFractionShipsEverythingAndDrainsResidual) {
  std::vector<double> delta{1.0, 0.0, -2.0};
  std::vector<double> resid;  // empty: grown zero-filled
  const SparseDelta sd = topk_compress(delta, 1.0, &resid, nullptr);
  ASSERT_EQ(sd.entries.size(), 2u);  // exact zeros never ship
  EXPECT_EQ(sd.entries[0].index, 0u);
  EXPECT_EQ(sd.entries[1].index, 2u);
  ASSERT_EQ(resid.size(), 3u);
  for (double r : resid) EXPECT_DOUBLE_EQ(r, 0.0);
  EXPECT_LT(sparse_wire_bytes(sd), dense_wire_bytes(3) + 16);
}

TEST(FedCompress, CompressedRunConvergesNearDenseAndSavesBytes) {
  const FlFixture f = make_fixture(6);
  HierConfig dense;
  dense.fl.rounds = 8;
  dense.clients_per_edge = 3;
  dense.edges_per_region = 2;

  HierConfig sparse = dense;
  sparse.topk_fraction = 0.25;
  sparse.error_feedback = true;

  Rng r1(41), r2(41);
  const HierResult d = run_federated_hier(FlStrategy::kStaticFl, f.tr, f.te,
                                          f.shards, f.fleet, dense, r1);
  const HierResult s = run_federated_hier(FlStrategy::kStaticFl, f.tr, f.te,
                                          f.shards, f.fleet, sparse, r2);
  // Error feedback keeps top-k in the dense run's accuracy band.
  EXPECT_GT(s.fl.final_accuracy, 0.45);
  EXPECT_NEAR(s.fl.final_accuracy, d.fl.final_accuracy, 0.2);
  // Compression is billed: 4x fewer client->edge update bytes.
  EXPECT_LT(s.hier.bytes_on_wire, d.hier.bytes_on_wire);
  EXPECT_GT(s.hier.compression_ratio(), 1.0);
  // An uncompressed run costs exactly its own dense counterfactual.
  EXPECT_DOUBLE_EQ(d.hier.compression_ratio(), 1.0);
}

// ---------------------------------------------------------------------------
// Deadlines and fault quarantine at every tree level.

TEST(FedHierFaults, ClientDeadlineIsAppliedPerEdgeAggregator) {
  const FlFixture f = make_fixture(6);
  // One pathologically slow device in each of the two edges.
  auto fleet = f.fleet;
  fleet[2].throughput_macs_per_s = 1.0;  // edge 0: clients 0..2
  fleet[5].throughput_macs_per_s = 1.0;  // edge 1: clients 3..5
  HierConfig hier;
  hier.fl.rounds = 2;
  hier.fl.client_timeout_s = 120.0;
  hier.clients_per_edge = 3;
  hier.edges_per_region = 2;

  Rng rng(51);
  const HierResult res = run_federated_hier(FlStrategy::kStaticFl, f.tr, f.te,
                                            f.shards, fleet, hier, rng);
  // Each edge drops exactly its own slow client each round; the edge's
  // wait (and so the round latency) is capped at the deadline.
  EXPECT_EQ(res.fl.dropped_client_rounds, 2 * 2);
  EXPECT_EQ(res.fl.survivors_per_round, (std::vector<int>{4, 4}));
  EXPECT_LE(res.fl.total_latency_s, 2 * hier.fl.client_timeout_s);
  EXPECT_EQ(res.hier.dropped_edge_rounds, 0);
}

TEST(FedHierFaults, CorruptEdgeQuarantinedLikeACorruptClientDelta) {
  const FlFixture f = make_fixture(9);
  HierConfig hier;
  hier.fl.rounds = 3;
  hier.clients_per_edge = 3;
  hier.edges_per_region = 2;

  // Run A: edge 0's aggregate is poisoned every round and quarantined at
  // its region. Run B: edge 0's clients (0..2) are plan-dropped instead.
  // The surviving aggregation must be bit-identical — a quarantined edge
  // is excluded exactly like a quarantined client delta.
  HierConfig poisoned = hier;
  poisoned.edge_faults = fault::FaultPlan(
      {{fault::FaultKind::kClientCorrupt, 0.0, 3.0, 0, 0.0}});
  fault::FaultPlan drop_clients({
      {fault::FaultKind::kClientDropout, 0.0, 3.0, 0, 0.0},
      {fault::FaultKind::kClientDropout, 0.0, 3.0, 1, 0.0},
      {fault::FaultKind::kClientDropout, 0.0, 3.0, 2, 0.0},
  });

  Rng r1(61), r2(61);
  const HierResult a = run_federated_hier(FlStrategy::kStaticFl, f.tr, f.te,
                                          f.shards, f.fleet, poisoned, r1);
  const HierResult b = run_federated_hier(FlStrategy::kStaticFl, f.tr, f.te,
                                          f.shards, f.fleet, hier, r2,
                                          &drop_clients);
  ASSERT_EQ(a.fl.accuracy_per_round.size(), b.fl.accuracy_per_round.size());
  for (std::size_t r = 0; r < a.fl.accuracy_per_round.size(); ++r)
    EXPECT_DOUBLE_EQ(a.fl.accuracy_per_round[r], b.fl.accuracy_per_round[r]);
  EXPECT_EQ(a.fl.survivors_per_round, b.fl.survivors_per_round);
  EXPECT_EQ(a.hier.quarantined_edges, 3);
  // Level-summed accounting: 3 stranded clients per round in run A.
  EXPECT_EQ(a.fl.dropped_client_rounds, 3 * 3);
  EXPECT_EQ(b.fl.dropped_client_rounds, 3 * 3);
  // Stranded clients still burned device energy; plan-dropped ones never
  // computed at all.
  EXPECT_GT(a.fl.total_energy_j, b.fl.total_energy_j);
}

TEST(FedHierFaults, StragglerEdgePastDeadlineIsDroppedWholesale) {
  const FlFixture f = make_fixture(9);
  HierConfig hier;
  hier.fl.rounds = 2;
  hier.clients_per_edge = 3;
  hier.edges_per_region = 2;
  hier.edge_timeout_s = 300.0;
  hier.edge_faults = fault::FaultPlan(
      {{fault::FaultKind::kClientStraggler, 0.0, 2.0, 1, 1e9}});

  Rng rng(71);
  const HierResult res = run_federated_hier(FlStrategy::kStaticFl, f.tr, f.te,
                                            f.shards, f.fleet, hier, rng);
  EXPECT_EQ(res.hier.dropped_edge_rounds, 2);
  // Edge 1's three surviving updates are stranded each round, and the
  // region waits out exactly the edge deadline.
  EXPECT_EQ(res.fl.dropped_client_rounds, 2 * 3);
  EXPECT_EQ(res.fl.survivors_per_round, (std::vector<int>{6, 6}));
  EXPECT_LE(res.fl.total_latency_s, 2 * hier.edge_timeout_s);
  EXPECT_GE(res.fl.total_latency_s, 2 * 300.0 - 1e-9);
}

TEST(FedHierFaults, RegionLossLeavesModelUnchanged) {
  const FlFixture f = make_fixture(6);
  HierConfig hier;
  hier.fl.rounds = 3;
  hier.clients_per_edge = 3;
  hier.edges_per_region = 2;
  hier.region_faults = fault::FaultPlan(
      {{fault::FaultKind::kClientDropout, 0.0, 2.0, -1, 0.0}});

  Rng rng(81);
  const HierResult res = run_federated_hier(FlStrategy::kStaticFl, f.tr, f.te,
                                            f.shards, f.fleet, hier, rng);
  EXPECT_EQ(res.hier.dropped_region_rounds, 2);
  EXPECT_EQ(res.fl.survivors_per_round[0], 0);
  EXPECT_EQ(res.fl.survivors_per_round[1], 0);
  // Rounds that lose every client leave the broadcast model untouched.
  EXPECT_DOUBLE_EQ(res.fl.accuracy_per_round[0],
                   res.fl.accuracy_per_round[1]);
  // Round 2 aggregates normally again.
  EXPECT_EQ(res.fl.survivors_per_round[2], 6);
}

// ---------------------------------------------------------------------------
// Memory-bounded streaming (the scale invariant, unit-sized).

TEST(FedHierScale, PeakAggregatorMemoryIndependentOfClientCount) {
  Rng data_rng(91);
  const auto full = sim::make_gaussian_classes(120, 8, 3, 3.0, data_rng);
  const auto tr = slice_dataset(full, 0, 80);
  const auto te = slice_dataset(full, 80, 120);

  const auto run_fleet = [&](int clients) {
    std::vector<std::vector<int>> shards(static_cast<std::size_t>(clients));
    for (int c = 0; c < clients; ++c)
      shards[static_cast<std::size_t>(c)] = {c % 80, (c * 7 + 3) % 80};
    Rng fleet_rng(92);
    const auto fleet = make_heterogeneous_fleet(clients, fleet_rng);
    HierConfig hier;
    hier.fl.rounds = 2;
    hier.fl.local_epochs = 1;
    hier.fl.hidden = 8;
    hier.clients_per_edge = 16;
    hier.edges_per_region = 4;
    Rng rng(93);
    return run_federated_hier(FlStrategy::kStaticFl, tr, te, shards, fleet,
                              hier, rng);
  };

  const HierResult small = run_fleet(64);
  const HierResult large = run_fleet(256);
  EXPECT_GT(small.hier.peak_accumulator_bytes, 0u);
  // Same model, same pool, same edge width: the streaming engine's
  // high-water mark is byte-for-byte identical at 4x the fleet size.
  EXPECT_EQ(large.hier.peak_accumulator_bytes,
            small.hier.peak_accumulator_bytes);
  EXPECT_EQ(small.hier.edges, 4);
  EXPECT_EQ(large.hier.edges, 16);
  EXPECT_EQ(large.fl.survivors_per_round, (std::vector<int>{256, 256}));
}

}  // namespace
}  // namespace s2a::federated
