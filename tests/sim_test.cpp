// Unit and property tests for the simulation substrate: cart-pole physics,
// scene generation, LiDAR ray casting and the R⁴ energy law, event camera
// semantics, corruption effects, and dataset partitioning.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "sim/cartpole.hpp"
#include "sim/corruptions.hpp"
#include "sim/dataset.hpp"
#include "sim/event_camera.hpp"
#include "sim/lidar_sim.hpp"
#include "sim/scene.hpp"
#include "util/stats.hpp"

namespace s2a::sim {
namespace {

TEST(CartPoleEnv, ResetNearUpright) {
  CartPole env;
  Rng rng(1);
  env.reset(rng);
  EXPECT_LE(std::abs(env.state().x), 0.05);
  EXPECT_LE(std::abs(env.state().theta), 0.05);
  EXPECT_FALSE(env.failed());
}

TEST(CartPoleEnv, UnactuatedPoleFalls) {
  CartPole env;
  Rng rng(2);
  env.reset(rng);
  CartPoleState s = env.state();
  s.theta = 0.05;
  env.set_state(s);
  int steps = 0;
  while (!env.failed() && steps < 1000) {
    env.step(0.0, rng);
    ++steps;
  }
  EXPECT_LT(steps, 1000) << "pole should fall without control";
}

TEST(CartPoleEnv, ForcePushesCart) {
  CartPole env;
  Rng rng(3);
  env.reset(rng);
  CartPoleState s{};  // exactly centered
  env.set_state(s);
  for (int i = 0; i < 10; ++i) env.step(1.0, rng);
  EXPECT_GT(env.state().x_dot, 0.0);
}

TEST(CartPoleEnv, EnergyConsistencyOfGravity) {
  // Pole accelerates faster from a larger angle.
  CartPole a, b;
  Rng rng(4);
  CartPoleState sa{};
  sa.theta = 0.02;
  CartPoleState sb{};
  sb.theta = 0.10;
  a.set_state(sa);
  b.set_state(sb);
  a.step(0.0, rng);
  b.step(0.0, rng);
  EXPECT_GT(b.state().theta_dot, a.state().theta_dot);
}

TEST(CartPoleEnv, DisturbanceIncreasesFailureRate) {
  auto run = [](double prob, std::uint64_t seed) {
    CartPoleConfig cfg;
    cfg.disturb_prob = prob;
    cfg.disturb_min = 6.0;
    cfg.disturb_max = 12.0;
    Rng rng(seed);
    int total = 0;
    for (int ep = 0; ep < 20; ++ep) {
      CartPole env(cfg);
      env.reset(rng);
      int t = 0;
      // A weak proportional controller; disturbances should break it.
      while (!env.failed() && t < 200) {
        env.step(0.5 * env.state().theta * 20.0, rng);
        ++t;
      }
      total += t;
    }
    return total;
  };
  EXPECT_GT(run(0.0, 5), run(0.5, 5));
}

TEST(CartPoleEnv, RetinaPeaksTrackCart) {
  CartPole env;
  CartPoleState s{};
  s.x = 1.0;
  env.set_state(s);
  const auto img = env.render_retina(64);
  ASSERT_EQ(img.size(), 128u);  // two strips of 64 px
  // Strip 1 peak tracks the cart position:
  // x=1.0 in [-2.4, 2.4] maps to pixel ≈ (1+2.4)/4.8*64 ≈ 45.
  std::size_t peak = 0;
  for (std::size_t i = 1; i < 64; ++i)
    if (img[i] > img[peak]) peak = i;
  EXPECT_NEAR(static_cast<double>(peak), 45.0, 3.0);
  // Strip 2 peak sits at its center for an upright pole.
  std::size_t peak2 = 64;
  for (std::size_t i = 65; i < 128; ++i)
    if (img[i] > img[peak2]) peak2 = i;
  EXPECT_NEAR(static_cast<double>(peak2 - 64), 31.5, 1.5);
}

TEST(CartPoleEnv, RetinaDistinguishesTilt) {
  CartPole env;
  CartPoleState left{}, right{};
  left.theta = -0.2;
  right.theta = 0.2;
  env.set_state(left);
  const auto a = env.render_retina(64);
  env.set_state(right);
  const auto b = env.render_retina(64);
  double diff = 0;
  for (std::size_t i = 0; i < a.size(); ++i) diff += std::abs(a[i] - b[i]);
  EXPECT_GT(diff, 0.5);
}

TEST(SceneGen, ObjectCountsWithinConfig) {
  Rng rng(7);
  SceneConfig cfg;
  const Scene s = generate_scene(cfg, rng);
  int cars = 0, peds = 0, cycs = 0;
  for (const auto& o : s.objects) {
    if (o.cls == ObjectClass::kCar) ++cars;
    if (o.cls == ObjectClass::kPedestrian) ++peds;
    if (o.cls == ObjectClass::kCyclist) ++cycs;
  }
  EXPECT_GE(cars, cfg.cars_min);
  EXPECT_LE(cars, cfg.cars_max);
  EXPECT_GE(peds, cfg.pedestrians_min);
  EXPECT_LE(peds, cfg.pedestrians_max);
  EXPECT_GE(cycs, cfg.cyclists_min);
  EXPECT_LE(cycs, cfg.cyclists_max);
}

TEST(SceneGen, ObjectsOutsideClearZone) {
  Rng rng(8);
  SceneConfig cfg;
  for (int trial = 0; trial < 5; ++trial) {
    const Scene s = generate_scene(cfg, rng);
    for (const auto& o : s.objects)
      EXPECT_GE(o.box.center.range_xy(), cfg.min_range * 0.9);
  }
}

TEST(SceneGen, ObjectsSitOnGround) {
  Rng rng(9);
  const Scene s = generate_scene(SceneConfig{}, rng);
  for (const auto& o : s.objects)
    EXPECT_NEAR(o.box.min().z, s.ground_z, 1e-9);
}

TEST(SceneGen, ArchetypeSizesDistinct) {
  const Vec3 car = class_archetype_size(ObjectClass::kCar);
  const Vec3 ped = class_archetype_size(ObjectClass::kPedestrian);
  EXPECT_GT(car.x, 2.0 * ped.x);
}

TEST(SceneGen, StepMovesOnlyMovingObjects) {
  Rng rng(10);
  SceneConfig cfg;
  cfg.moving_fraction = 1.0;
  Scene s = generate_scene(cfg, rng);
  const Vec3 before = s.objects[0].box.center;
  s.step(1.0);
  const Vec3 after = s.objects[0].box.center;
  EXPECT_GT((after - before).norm(), 0.0);
}

TEST(LidarSim, EnergyLawIsQuartic) {
  LidarSimulator lidar;
  const auto& cfg = lidar.config();
  const double e_half = lidar.pulse_energy_for_range(cfg.max_range / 2.0);
  const double e_full = lidar.pulse_energy_for_range(cfg.max_range);
  EXPECT_NEAR(e_full / e_half, 16.0, 1e-6);
  EXPECT_NEAR(e_full, cfg.full_pulse_energy_j, 1e-12);
}

TEST(LidarSim, EnergyFloorApplies) {
  LidarSimulator lidar;
  EXPECT_DOUBLE_EQ(lidar.pulse_energy_for_range(0.01),
                   lidar.config().min_pulse_energy_j);
}

TEST(LidarSim, ReachInvertsEnergy) {
  LidarSimulator lidar;
  // Exact above the energy floor; never less than requested below it.
  for (double r : {30.0, 50.0, 60.0}) {
    const double e = lidar.pulse_energy_for_range(r);
    EXPECT_NEAR(lidar.reach_for_energy(e), r, 1e-9);
  }
  const double e_small = lidar.pulse_energy_for_range(5.0);
  EXPECT_GE(lidar.reach_for_energy(e_small), 5.0);
}

TEST(LidarSim, FullScanFiresEveryBeam) {
  LidarConfig cfg;
  cfg.azimuth_steps = 36;
  cfg.elevation_steps = 4;
  LidarSimulator lidar(cfg);
  Rng rng(11);
  Scene scene;  // empty scene, ground only
  const PointCloud pc = lidar.full_scan(scene, rng);
  EXPECT_EQ(pc.pulses_fired, 36 * 4);
  EXPECT_NEAR(pc.emitted_energy_j, 36 * 4 * cfg.full_pulse_energy_j, 1e-12);
  EXPECT_DOUBLE_EQ(pc.coverage(cfg), 1.0);
}

TEST(LidarSim, DownwardBeamsHitGround) {
  LidarConfig cfg;
  cfg.azimuth_steps = 36;
  cfg.elevation_steps = 4;
  cfg.elevation_min_deg = -12;
  cfg.elevation_max_deg = -4;  // all beams point down
  LidarSimulator lidar(cfg);
  Rng rng(12);
  Scene scene;
  const PointCloud pc = lidar.full_scan(scene, rng);
  EXPECT_EQ(pc.hit_count(), static_cast<std::size_t>(pc.pulses_fired));
  for (const auto& r : pc.returns) EXPECT_NEAR(r.point.z, 0.0, 0.3);
}

TEST(LidarSim, ObjectProducesElevatedReturns) {
  LidarConfig cfg;
  cfg.azimuth_steps = 360;
  cfg.elevation_steps = 8;
  LidarSimulator lidar(cfg);
  Rng rng(13);
  Scene scene;
  SceneObject car;
  car.cls = ObjectClass::kCar;
  car.box = {{15.0, 0.0, 0.8}, {4.2, 1.8, 1.6}};
  scene.objects.push_back(car);
  const PointCloud pc = lidar.full_scan(scene, rng);
  int on_car = 0;
  for (const auto& r : pc.returns)
    if (r.hit && car.box.contains(r.point)) ++on_car;
  EXPECT_GT(on_car, 5);
}

TEST(LidarSim, SelectiveScanEnergyBelowFull) {
  LidarConfig cfg;
  cfg.azimuth_steps = 72;
  cfg.elevation_steps = 4;
  LidarSimulator lidar(cfg);
  Rng rng(14);
  Scene scene;
  std::vector<BeamCommand> cmds;
  for (int az = 0; az < cfg.azimuth_steps; az += 10)
    for (int el = 0; el < cfg.elevation_steps; ++el)
      cmds.push_back({az, el, 20.0});
  const PointCloud pc = lidar.selective_scan(scene, cmds, rng);
  EXPECT_EQ(pc.pulses_fired, static_cast<int>(cmds.size()));
  const PointCloud full = lidar.full_scan(scene, rng);
  EXPECT_LT(pc.emitted_energy_j, 0.05 * full.emitted_energy_j);
}

TEST(LidarSim, ShortReachPulseMissesFarTarget) {
  LidarConfig cfg;
  cfg.azimuth_steps = 360;
  cfg.elevation_steps = 1;
  cfg.elevation_min_deg = 0;
  cfg.elevation_max_deg = 0.01;
  cfg.range_noise = 0.0;
  LidarSimulator lidar(cfg);
  Rng rng(15);
  Scene scene;
  SceneObject wall;
  wall.box = {{40.0, 0.0, 2.0}, {1.0, 20.0, 6.0}};
  scene.objects.push_back(wall);
  // Beam 0 points along +x (azimuth at bin center ~0.5°).
  const PointCloud hit = lidar.selective_scan(scene, {{0, 0, 50.0}}, rng);
  const PointCloud miss = lidar.selective_scan(scene, {{0, 0, 10.0}}, rng);
  EXPECT_EQ(hit.hit_count(), 1u);
  EXPECT_EQ(miss.hit_count(), 0u);
}

TEST(EventCam, NoChangeNoEvents) {
  Image a(8, 8), b(8, 8);
  for (auto& p : a.pixels) p = 0.5;
  b = a;
  EventCamera cam;
  EXPECT_DOUBLE_EQ(cam.events_between(a, b).total_events(), 0.0);
}

TEST(EventCam, BrighteningGivesPositiveEvents) {
  Image a(4, 4), b(4, 4);
  for (auto& p : a.pixels) p = 0.2;
  for (auto& p : b.pixels) p = 0.8;
  EventCamera cam(0.15);
  const EventFrame ev = cam.events_between(a, b);
  double pos = 0, neg = 0;
  for (double p : ev.pos) pos += p;
  for (double n : ev.neg) neg += n;
  EXPECT_GT(pos, 0.0);
  EXPECT_DOUBLE_EQ(neg, 0.0);
}

TEST(EventCam, PolaritySymmetry) {
  Image a(4, 4), b(4, 4);
  for (auto& p : a.pixels) p = 0.8;
  for (auto& p : b.pixels) p = 0.2;
  EventCamera cam(0.15);
  const EventFrame ev = cam.events_between(a, b);
  double pos = 0, neg = 0;
  for (double p : ev.pos) pos += p;
  for (double n : ev.neg) neg += n;
  EXPECT_DOUBLE_EQ(pos, 0.0);
  EXPECT_GT(neg, 0.0);
}

TEST(EventCam, ThresholdControlsEventCount) {
  Rng rng(16);
  MovingScene scene(16, 16, 1, 1.0, 0.0, rng);
  const Image f0 = scene.render(0.0), f1 = scene.render(1.0);
  const double n_low = EventCamera(0.05).events_between(f0, f1).total_events();
  const double n_high = EventCamera(0.5).events_between(f0, f1).total_events();
  EXPECT_GT(n_low, n_high);
}

TEST(EventCam, StaticSceneSilent) {
  Rng rng(17);
  MovingScene scene(16, 16, 0, 0.0, 0.0, rng);  // nothing moves
  const Image f0 = scene.render(0.0), f1 = scene.render(1.0);
  EXPECT_DOUBLE_EQ(EventCamera().events_between(f0, f1).total_events(), 0.0);
}

TEST(EventCam, FlowMatchesPatchVelocityInside) {
  Rng rng(18);
  MovingScene scene(32, 32, 1, 0.0, 0.0, rng);
  const FlowField f = scene.flow(0.0);
  // Somewhere the flow is nonzero (inside the patch) and somewhere zero.
  double max_mag = 0.0;
  double min_mag = 1e9;
  for (std::size_t i = 0; i < f.u.size(); ++i) {
    const double m = std::hypot(f.u[i], f.v[i]);
    max_mag = std::max(max_mag, m);
    min_mag = std::min(min_mag, m);
  }
  EXPECT_GT(max_mag, 0.0);
  EXPECT_DOUBLE_EQ(min_mag, 0.0);
}

TEST(EventCam, DatasetShapesAndEventPresence) {
  Rng rng(19);
  const auto ds = make_flow_dataset(6, 16, 16, rng);
  ASSERT_EQ(ds.size(), 6u);
  double events = 0.0;
  for (const auto& s : ds) {
    EXPECT_EQ(s.events.width, 16);
    EXPECT_EQ(s.flow.u.size(), 256u);
    events += s.events.total_events();
  }
  EXPECT_GT(events, 0.0);
}

TEST(EventCam, AeeZeroForPerfectPrediction) {
  FlowField a(4, 4), b(4, 4);
  for (std::size_t i = 0; i < a.u.size(); ++i) {
    a.u[i] = b.u[i] = 1.5;
    a.v[i] = b.v[i] = -0.5;
  }
  EXPECT_DOUBLE_EQ(average_endpoint_error(a, b), 0.0);
}

TEST(EventCam, AeeKnownValue) {
  FlowField pred(2, 1), truth(2, 1);
  pred.u = {3.0, 0.0};
  pred.v = {4.0, 0.0};
  truth.u = {0.0, 0.0};
  truth.v = {0.0, 0.0};
  EXPECT_DOUBLE_EQ(average_endpoint_error(pred, truth), 2.5);
}

TEST(EventCam, AeeMaskRestrictsToEventPixels) {
  FlowField pred(2, 1), truth(2, 1);
  pred.u = {3.0, 100.0};
  pred.v = {4.0, 0.0};
  EventFrame mask(2, 1);
  mask.pos[0] = 1.0;  // only pixel 0 has events
  EXPECT_DOUBLE_EQ(average_endpoint_error(pred, truth, &mask), 5.0);
}

class CorruptionSeverityTest
    : public ::testing::TestWithParam<CorruptionType> {};

TEST_P(CorruptionSeverityTest, SeverityZeroIsIdentity) {
  LidarConfig cfg;
  cfg.azimuth_steps = 36;
  cfg.elevation_steps = 4;
  LidarSimulator lidar(cfg);
  Rng rng(20);
  Scene scene;
  const PointCloud pc = lidar.full_scan(scene, rng);
  const PointCloud out = apply_corruption(pc, GetParam(), 0, cfg, rng);
  EXPECT_EQ(out.returns.size(), pc.returns.size());
  for (std::size_t i = 0; i < out.returns.size(); ++i)
    EXPECT_DOUBLE_EQ(out.returns[i].range, pc.returns[i].range);
}

TEST_P(CorruptionSeverityTest, PerturbationGrowsWithSeverity) {
  LidarConfig cfg;
  cfg.azimuth_steps = 90;
  cfg.elevation_steps = 8;
  LidarSimulator lidar(cfg);
  Rng rng(21);
  Rng scene_rng(22);
  const Scene scene = generate_scene(SceneConfig{}, scene_rng);
  const PointCloud clean = lidar.full_scan(scene, rng);

  auto distortion = [&](int severity, std::uint64_t seed) {
    Rng crng(seed);
    const PointCloud c =
        apply_corruption(clean, GetParam(), severity, cfg, crng);
    double d = 0.0;
    for (std::size_t i = 0; i < c.returns.size(); ++i) {
      const auto& a = clean.returns[i];
      const auto& b = c.returns[i];
      if (a.hit != b.hit)
        d += 1.0;
      else if (a.hit)
        d += std::min(1.0, std::abs(a.range - b.range) +
                               std::abs(static_cast<double>(a.azimuth_idx -
                                                            b.azimuth_idx)));
    }
    return d;
  };

  // Average over seeds to avoid flakiness.
  double mild = 0.0, severe = 0.0;
  for (std::uint64_t s = 0; s < 5; ++s) {
    mild += distortion(1, 100 + s);
    severe += distortion(5, 200 + s);
  }
  EXPECT_GT(severe, mild);
  EXPECT_GT(severe, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllCorruptions, CorruptionSeverityTest,
    ::testing::ValuesIn(all_corruptions()),
    [](const ::testing::TestParamInfo<CorruptionType>& info) {
      return corruption_name(info.param);
    });

TEST(Corruptions, OutOfRangeSeverityIsClampedNotRejected) {
  LidarConfig cfg;
  cfg.azimuth_steps = 36;
  cfg.elevation_steps = 4;
  LidarSimulator lidar(cfg);
  Rng rng(26);
  const PointCloud pc = lidar.full_scan(Scene{}, rng);

  // Negative severities saturate to 0 (identity).
  Rng neg_rng(27);
  const PointCloud neg = apply_corruption(pc, CorruptionType::kSnow, -3, cfg, neg_rng);
  ASSERT_EQ(neg.returns.size(), pc.returns.size());
  for (std::size_t i = 0; i < neg.returns.size(); ++i)
    EXPECT_DOUBLE_EQ(neg.returns[i].range, pc.returns[i].range);

  // Severities past 5 saturate to 5: same RNG seed → identical output.
  Rng over_rng(28), max_rng(28);
  const PointCloud over = apply_corruption(pc, CorruptionType::kSnow, 99, cfg, over_rng);
  const PointCloud max = apply_corruption(pc, CorruptionType::kSnow, 5, cfg, max_rng);
  ASSERT_EQ(over.returns.size(), max.returns.size());
  for (std::size_t i = 0; i < over.returns.size(); ++i) {
    EXPECT_EQ(over.returns[i].hit, max.returns[i].hit);
    EXPECT_DOUBLE_EQ(over.returns[i].range, max.returns[i].range);
  }
}

TEST(Corruptions, NoneIgnoresNonzeroSeverity) {
  LidarConfig cfg;
  cfg.azimuth_steps = 36;
  cfg.elevation_steps = 4;
  LidarSimulator lidar(cfg);
  Rng rng(29);
  const PointCloud pc = lidar.full_scan(Scene{}, rng);
  for (int severity : {-1, 3, 99}) {
    Rng crng(30);
    const PointCloud out =
        apply_corruption(pc, CorruptionType::kNone, severity, cfg, crng);
    ASSERT_EQ(out.returns.size(), pc.returns.size());
    for (std::size_t i = 0; i < out.returns.size(); ++i)
      EXPECT_DOUBLE_EQ(out.returns[i].range, pc.returns[i].range);
  }
}

TEST(Corruptions, FogPreferentiallyDropsFarReturns) {
  LidarConfig cfg;
  cfg.azimuth_steps = 360;
  cfg.elevation_steps = 1;
  cfg.elevation_min_deg = 0.0;
  cfg.elevation_max_deg = 0.01;
  cfg.range_noise = 0.0;
  LidarSimulator lidar(cfg);
  Rng rng(23);
  Scene scene;
  SceneObject near_wall, far_wall;
  near_wall.box = {{8.0, 0.0, 2.0}, {0.5, 60.0, 8.0}};   // covers +x half
  far_wall.box = {{-60.0, 0.0, 2.0}, {0.5, 60.0, 8.0}};  // covers -x half
  scene.objects.push_back(near_wall);
  scene.objects.push_back(far_wall);
  const PointCloud clean = lidar.full_scan(scene, rng);

  int near_total = 0, far_total = 0, near_kept = 0, far_kept = 0;
  Rng crng(24);
  const PointCloud foggy =
      apply_corruption(clean, CorruptionType::kFog, 4, cfg, crng);
  for (std::size_t i = 0; i < clean.returns.size(); ++i) {
    if (!clean.returns[i].hit) continue;
    const bool is_near = clean.returns[i].range < 20.0;
    (is_near ? near_total : far_total)++;
    if (foggy.returns[i].hit) (is_near ? near_kept : far_kept)++;
  }
  ASSERT_GT(near_total, 10);
  ASSERT_GT(far_total, 10);
  EXPECT_GT(static_cast<double>(near_kept) / near_total,
            static_cast<double>(far_kept) / far_total);
}

TEST(Corruptions, BeamMissingKillsWholeRows) {
  LidarConfig cfg;
  cfg.azimuth_steps = 36;
  cfg.elevation_steps = 6;
  cfg.elevation_min_deg = -12;
  cfg.elevation_max_deg = -4;
  LidarSimulator lidar(cfg);
  Rng rng(25);
  Scene scene;
  const PointCloud clean = lidar.full_scan(scene, rng);
  Rng crng(26);
  const PointCloud out =
      apply_corruption(clean, CorruptionType::kBeamMissing, 3, cfg, crng);
  // Each elevation row is either fully alive or fully dead.
  for (int el = 0; el < cfg.elevation_steps; ++el) {
    int alive = 0, dead = 0;
    for (const auto& r : out.returns)
      if (r.elevation_idx == el) (r.hit ? alive : dead)++;
    EXPECT_TRUE(alive == 0 || dead == 0) << "row " << el;
  }
}

TEST(Dataset, GaussianClassesBalancedAndSized) {
  Rng rng(27);
  const auto ds = make_gaussian_classes(100, 8, 10, 2.5, rng);
  EXPECT_EQ(ds.size(), 100u);
  EXPECT_EQ(ds.feature_dim, 8);
  std::vector<int> counts(10, 0);
  for (int y : ds.labels) counts[static_cast<std::size_t>(y)]++;
  for (int c : counts) EXPECT_EQ(c, 10);
}

TEST(Dataset, SeparationControlsOverlap) {
  // Nearest-centroid accuracy should rise with separation.
  auto nc_accuracy = [](double sep, std::uint64_t seed) {
    Rng rng(seed);
    const auto ds = make_gaussian_classes(400, 16, 4, sep, rng);
    // Estimate centroids from the first half, test on the second half.
    std::vector<std::vector<double>> cent(4, std::vector<double>(16, 0.0));
    std::vector<int> n(4, 0);
    for (std::size_t i = 0; i < 200; ++i) {
      for (int d = 0; d < 16; ++d)
        cent[static_cast<std::size_t>(ds.labels[i])][static_cast<std::size_t>(d)] +=
            ds.features[i][static_cast<std::size_t>(d)];
      n[static_cast<std::size_t>(ds.labels[i])]++;
    }
    for (int c = 0; c < 4; ++c)
      for (int d = 0; d < 16; ++d)
        cent[static_cast<std::size_t>(c)][static_cast<std::size_t>(d)] /=
            std::max(1, n[static_cast<std::size_t>(c)]);
    int correct = 0;
    for (std::size_t i = 200; i < 400; ++i) {
      int best = 0;
      double best_d = 1e18;
      for (int c = 0; c < 4; ++c) {
        double dist = 0;
        for (int d = 0; d < 16; ++d) {
          const double diff =
              ds.features[i][static_cast<std::size_t>(d)] -
              cent[static_cast<std::size_t>(c)][static_cast<std::size_t>(d)];
          dist += diff * diff;
        }
        if (dist < best_d) {
          best_d = dist;
          best = c;
        }
      }
      if (best == ds.labels[i]) ++correct;
    }
    return correct / 200.0;
  };
  EXPECT_GT(nc_accuracy(4.0, 1), nc_accuracy(0.5, 1));
  EXPECT_GT(nc_accuracy(4.0, 1), 0.9);
}

TEST(Dataset, GammaSamplerMeanMatchesShape) {
  Rng rng(28);
  for (double shape : {0.5, 1.0, 3.0}) {
    RunningStat st;
    for (int i = 0; i < 20000; ++i) st.add(sample_gamma(shape, rng));
    EXPECT_NEAR(st.mean(), shape, 0.05 * std::max(1.0, shape));
  }
}

TEST(Dataset, DirichletPartitionCoversAllSamplesOnce) {
  Rng rng(29);
  const auto ds = make_gaussian_classes(300, 4, 10, 2.0, rng);
  const auto shards = dirichlet_partition(ds.labels, 8, 10, 0.3, rng);
  ASSERT_EQ(shards.size(), 8u);
  std::set<int> seen;
  std::size_t total = 0;
  for (const auto& s : shards) {
    EXPECT_FALSE(s.empty());
    total += s.size();
    for (int i : s) seen.insert(i);
  }
  EXPECT_EQ(total, 300u);
  EXPECT_EQ(seen.size(), 300u);
}

TEST(Dataset, SmallAlphaIsMoreSkewedThanLarge) {
  Rng rng(30);
  const auto ds = make_gaussian_classes(1000, 4, 10, 2.0, rng);
  auto skew = [&](double alpha) {
    Rng prng(31);
    const auto shards = dirichlet_partition(ds.labels, 5, 10, alpha, prng);
    // Measure label imbalance: average max class share per client.
    double total_skew = 0.0;
    for (const auto& s : shards) {
      std::vector<int> counts(10, 0);
      for (int i : s) counts[static_cast<std::size_t>(ds.labels[static_cast<std::size_t>(i)])]++;
      const int mx = *std::max_element(counts.begin(), counts.end());
      total_skew += static_cast<double>(mx) / std::max<std::size_t>(1, s.size());
    }
    return total_skew / shards.size();
  };
  EXPECT_GT(skew(0.1), skew(100.0));
}

}  // namespace
}  // namespace s2a::sim
