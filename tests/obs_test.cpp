// Tests for the observability layer (src/obs): histogram percentile
// accuracy, trace span nesting/ordering, exporter round-trips, the
// disabled-mode no-op path, ring-buffer wraparound, and thread safety.
//
// The registry and trace buffer are process-wide singletons shared with
// any instrumented library code, so each test uses uniquely named
// instruments and clears the trace buffer up front.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <sstream>
#include <thread>

#include "obs/obs.hpp"

namespace {

using namespace s2a;

/// Enables obs for the test body and restores the previous state.
class ScopedObs {
 public:
  explicit ScopedObs(bool on) : prev_(obs::enabled()) {
    obs::set_enabled(on);
  }
  ~ScopedObs() { obs::set_enabled(prev_); }

 private:
  bool prev_;
};

// ---- Histogram ----

TEST(Histogram, EmptyQuantilesAreZero) {
  obs::Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.quantile(0.5), 0.0);
  EXPECT_EQ(h.mean(), 0.0);
}

TEST(Histogram, SingleValueRoundTripsWithinBucketError) {
  // Log-bucketed storage: any value must come back within one bucket's
  // relative width, 2^(1/kSubBuckets) - 1.
  const double rel =
      std::pow(2.0, 1.0 / obs::Histogram::kSubBuckets) - 1.0;
  for (double v : {1e-7, 3.3e-4, 0.5, 1.0, 7.25, 1234.5}) {
    obs::Histogram h;
    h.record(v);
    for (double q : {0.0, 0.5, 1.0})
      EXPECT_NEAR(h.quantile(q), v, v * rel * 1.01) << "v=" << v << " q=" << q;
  }
}

TEST(Histogram, PercentilesOfUniformGrid) {
  obs::Histogram h;
  for (int i = 1; i <= 1000; ++i) h.record(static_cast<double>(i));
  const double rel =
      std::pow(2.0, 1.0 / obs::Histogram::kSubBuckets) - 1.0;
  // Buckets add their relative width; the rank itself is exact.
  EXPECT_NEAR(h.quantile(0.50), 500.0, 500.0 * (rel + 0.01));
  EXPECT_NEAR(h.quantile(0.95), 950.0, 950.0 * (rel + 0.01));
  EXPECT_NEAR(h.quantile(0.99), 990.0, 990.0 * (rel + 0.01));
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_NEAR(h.mean(), 500.5, 1e-9);
}

TEST(Histogram, QuantilesAreMonotone) {
  obs::Histogram h;
  for (int i = 0; i < 500; ++i) h.record(1e-6 * (1 + i % 37));
  double prev = 0.0;
  for (double q = 0.0; q <= 1.0; q += 0.05) {
    const double v = h.quantile(q);
    EXPECT_GE(v, prev);
    prev = v;
  }
}

TEST(Histogram, NonPositiveAndNonFiniteGoToUnderflowBucket) {
  obs::Histogram h;
  h.record(0.0);
  h.record(-3.0);
  h.record(std::nan(""));
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.quantile(0.5), 0.0);  // underflow bucket reads as 0
}

TEST(Histogram, HugeValuesSaturateInsteadOfCrashing) {
  obs::Histogram h;
  h.record(1e300);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_GT(h.quantile(1.0), 1e9);  // lands in the top bucket
}

// ---- Counters / gauges / registry ----

TEST(MetricsRegistry, SameNameSameInstrument) {
  auto& reg = obs::registry();
  obs::Counter& a = reg.counter("obs_test.same_name");
  obs::Counter& b = reg.counter("obs_test.same_name");
  EXPECT_EQ(&a, &b);
  a.add(2);
  b.add(3);
  EXPECT_EQ(a.value(), 5);
}

TEST(MetricsRegistry, GaugeSetAndAdd) {
  obs::Gauge& g = obs::registry().gauge("obs_test.gauge");
  g.set(1.5);
  g.add(2.0);
  EXPECT_DOUBLE_EQ(g.value(), 3.5);
}

TEST(MetricsRegistry, SnapshotSeesRegisteredInstruments) {
  auto& reg = obs::registry();
  reg.counter("obs_test.snap_counter").add(7);
  reg.histogram("obs_test.snap_hist").record(0.25);
  const obs::MetricsSnapshot snap = reg.snapshot();
  const auto counter = std::find_if(
      snap.counters.begin(), snap.counters.end(),
      [](const auto& c) { return c.name == "obs_test.snap_counter"; });
  ASSERT_NE(counter, snap.counters.end());
  EXPECT_EQ(counter->value, 7);
  const auto hist = std::find_if(
      snap.histograms.begin(), snap.histograms.end(),
      [](const auto& h) { return h.name == "obs_test.snap_hist"; });
  ASSERT_NE(hist, snap.histograms.end());
  EXPECT_EQ(hist->count, 1u);
}

TEST(MetricsRegistry, ThreadedCountersDontLoseIncrements) {
  obs::Counter& c = obs::registry().counter("obs_test.threaded");
  obs::Histogram& h = obs::registry().histogram("obs_test.threaded_hist");
  constexpr int kThreads = 4, kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        c.add(1);
        h.record(1e-3);
      }
    });
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), kThreads * kPerThread);
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads * kPerThread));
}

// ---- TraceScope / TraceBuffer ----

TEST(Trace, DisabledScopesRecordNothing) {
  ScopedObs off(false);
  obs::trace_buffer().clear();
  {
    S2A_TRACE_SCOPE("obs_test.disabled");
    S2A_COUNTER_ADD("obs_test.disabled_counter", 1);
    S2A_HISTOGRAM_RECORD("obs_test.disabled_hist", 1.0);
  }
  EXPECT_EQ(obs::trace_buffer().size(), 0u);
  // The metric macros short-circuit before touching the registry, so the
  // disabled-path instruments were never even registered.
  const obs::MetricsSnapshot snap = obs::registry().snapshot();
  for (const auto& c : snap.counters)
    EXPECT_NE(c.name, "obs_test.disabled_counter");
  for (const auto& h : snap.histograms)
    EXPECT_NE(h.name, "obs_test.disabled_hist");
}

TEST(Trace, NestedScopesCompleteChildFirstWithDepths) {
  ScopedObs on(true);
  obs::trace_buffer().clear();
  {
    S2A_TRACE_SCOPE("obs_test.outer");
    {
      S2A_TRACE_SCOPE_CAT("obs_test.inner", "test");
      { S2A_TRACE_SCOPE("obs_test.innermost"); }
    }
  }
  const auto events = obs::trace_buffer().events();
  ASSERT_EQ(events.size(), 3u);
  // Scopes complete innermost-first.
  EXPECT_STREQ(events[0].name, "obs_test.innermost");
  EXPECT_STREQ(events[1].name, "obs_test.inner");
  EXPECT_STREQ(events[2].name, "obs_test.outer");
  EXPECT_EQ(events[0].depth, 2u);
  EXPECT_EQ(events[1].depth, 1u);
  EXPECT_EQ(events[2].depth, 0u);
  EXPECT_STREQ(events[1].category, "test");
  // Time containment: each parent starts no later and ends no earlier.
  for (int child = 0; child < 2; ++child) {
    const auto& c = events[static_cast<std::size_t>(child)];
    const auto& p = events[static_cast<std::size_t>(child) + 1];
    EXPECT_LE(p.start_ns, c.start_ns);
    EXPECT_GE(p.start_ns + p.dur_ns, c.start_ns + c.dur_ns);
  }
  // seq reflects completion order.
  EXPECT_LT(events[0].seq, events[1].seq);
  EXPECT_LT(events[1].seq, events[2].seq);
}

TEST(Trace, RingBufferWrapsKeepingNewestEvents) {
  obs::TraceBuffer buf(8);
  for (int i = 0; i < 20; ++i) {
    obs::TraceEvent ev;
    ev.name = "wrap";
    ev.start_ns = static_cast<std::uint64_t>(i);
    buf.push(ev);
  }
  EXPECT_EQ(buf.size(), 8u);
  EXPECT_EQ(buf.pushed(), 20u);
  const auto events = buf.events();
  ASSERT_EQ(events.size(), 8u);
  // Oldest retained is #12, newest #19, in order.
  for (int i = 0; i < 8; ++i)
    EXPECT_EQ(events[static_cast<std::size_t>(i)].start_ns,
              static_cast<std::uint64_t>(12 + i));
}

TEST(Trace, ChromeExportIsWellFormedAndNested) {
  ScopedObs on(true);
  obs::trace_buffer().clear();
  {
    S2A_TRACE_SCOPE("obs_test.export_outer");
    { S2A_TRACE_SCOPE("obs_test.export_inner"); }
  }
  std::ostringstream os;
  obs::write_chrome_trace(obs::trace_buffer(), os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"obs_test.export_outer\""), std::string::npos);
  EXPECT_NE(json.find("\"obs_test.export_inner\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  // Balanced braces/brackets — cheap structural validity check.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

// ---- Exporters ----

TEST(Exporter, JsonlRoundTripsEveryInstrumentKind) {
  auto& reg = obs::registry();
  reg.counter("obs_test.rt_counter").add(42);
  reg.gauge("obs_test.rt_gauge").set(-1.25e-3);
  obs::Histogram& h = reg.histogram("obs_test.rt_hist");
  for (int i = 1; i <= 100; ++i) h.record(1e-6 * i);

  std::ostringstream os;
  obs::JsonlExporter().export_metrics(reg.snapshot(), os);

  // Parse every line back and index by name.
  std::istringstream is(os.str());
  std::string line;
  bool saw_counter = false, saw_gauge = false, saw_hist = false;
  while (std::getline(is, line)) {
    const auto m = obs::parse_metric_line(line);
    ASSERT_TRUE(m.has_value()) << "unparseable line: " << line;
    if (m->name == "obs_test.rt_counter") {
      saw_counter = true;
      EXPECT_EQ(m->kind, obs::ParsedMetric::Kind::kCounter);
      EXPECT_DOUBLE_EQ(m->value, 42.0);
    } else if (m->name == "obs_test.rt_gauge") {
      saw_gauge = true;
      EXPECT_EQ(m->kind, obs::ParsedMetric::Kind::kGauge);
      EXPECT_DOUBLE_EQ(m->value, -1.25e-3);  // num() round-trips exactly
    } else if (m->name == "obs_test.rt_hist") {
      saw_hist = true;
      EXPECT_EQ(m->kind, obs::ParsedMetric::Kind::kHistogram);
      EXPECT_EQ(m->count, 100u);
      EXPECT_DOUBLE_EQ(m->mean, h.mean());
      EXPECT_DOUBLE_EQ(m->p50, h.quantile(0.50));
      EXPECT_DOUBLE_EQ(m->p95, h.quantile(0.95));
      EXPECT_DOUBLE_EQ(m->p99, h.quantile(0.99));
    }
  }
  EXPECT_TRUE(saw_counter && saw_gauge && saw_hist);
}

TEST(Exporter, ParseRejectsMalformedLines) {
  EXPECT_FALSE(obs::parse_metric_line("").has_value());
  EXPECT_FALSE(obs::parse_metric_line("not json").has_value());
  EXPECT_FALSE(
      obs::parse_metric_line("{\"type\":\"counter\"}").has_value());
  EXPECT_FALSE(obs::parse_metric_line(
                   "{\"type\":\"weird\",\"name\":\"x\",\"value\":1}")
                   .has_value());
  EXPECT_FALSE(obs::parse_metric_line(
                   "{\"type\":\"counter\",\"name\":\"x\",\"value\":oops}")
                   .has_value());
}

TEST(Exporter, JsonlEscapesQuotesInNames) {
  obs::MetricsSnapshot snap;
  snap.counters.push_back({"weird\"name", 1});
  std::ostringstream os;
  obs::JsonlExporter().export_metrics(snap, os);
  const auto m = obs::parse_metric_line(os.str());
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->name, "weird\"name");
}

TEST(Exporter, TableBackendPrintsEveryInstrument) {
  obs::MetricsSnapshot snap;
  snap.counters.push_back({"table.counter", 9});
  snap.gauges.push_back({"table.gauge", 0.5});
  snap.histograms.push_back({"table.hist", 3, 1e-5, 1e-5, 2e-5, 3e-5});
  std::ostringstream os;
  obs::TableExporter().export_metrics(snap, os);
  const std::string out = os.str();
  EXPECT_NE(out.find("table.counter"), std::string::npos);
  EXPECT_NE(out.find("table.gauge"), std::string::npos);
  EXPECT_NE(out.find("table.hist"), std::string::npos);
  EXPECT_NE(out.find("p99"), std::string::npos);
}

// ---- Instrumented library code end-to-end ----

TEST(Obs, ResetAllZeroesValuesButKeepsInstruments) {
  auto& reg = obs::registry();
  obs::Counter& c = reg.counter("obs_test.reset_me");
  c.add(5);
  reg.reset_all();
  EXPECT_EQ(c.value(), 0);  // same instrument, zeroed in place
  c.add(1);
  EXPECT_EQ(reg.counter("obs_test.reset_me").value(), 1);
}

TEST(Obs, SecondsSinceIsNonNegativeAndOrdered) {
  const std::uint64_t t0 = obs::trace_now_ns();
  const double dt = obs::seconds_since(t0);
  EXPECT_GE(dt, 0.0);
  EXPECT_LT(dt, 60.0);
}

}  // namespace
