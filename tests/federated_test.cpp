// Tests for the federated stack: cost-model scaling laws, quantization,
// strategy selection, FedAvg convergence under non-IID shards, DC-NAS and
// HaLo-FL adaptation effects, and speculative-decoding correctness.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "federated/fedavg.hpp"
#include "federated/hardware.hpp"
#include "federated/speculative.hpp"
#include "util/check.hpp"

namespace s2a::federated {
namespace {

TEST(CostModel, EnergyQuadraticInPrecision) {
  HardwareProfile hw;
  const RoundCost fp32 = round_cost(1e9, hw, {32, 32, 32});
  const RoundCost int8 = round_cost(1e9, hw, {8, 8, 32});
  // Multiplier term scales (8·8)/(32·32) = 1/16.
  EXPECT_NEAR(int8.energy_j / fp32.energy_j, 1.0 / 16.0, 1e-9);
}

TEST(CostModel, GradientBitsAffectBackwardShare) {
  HardwareProfile hw;
  const RoundCost g32 = round_cost(1e9, hw, {32, 32, 32});
  const RoundCost g8 = round_cost(1e9, hw, {32, 32, 8});
  EXPECT_LT(g8.energy_j, g32.energy_j);
  EXPECT_GT(g8.energy_j, g32.energy_j / 3.0);
}

TEST(CostModel, LatencyScalesWithThroughputAndPacking) {
  HardwareProfile fast, slow;
  fast.throughput_macs_per_s = 4e9;
  slow.throughput_macs_per_s = 1e9;
  EXPECT_NEAR(round_cost(1e9, slow, {}).latency_s /
                  round_cost(1e9, fast, {}).latency_s,
              4.0, 1e-9);
  const RoundCost full = round_cost(1e9, fast, {32, 32, 32});
  const RoundCost half = round_cost(1e9, fast, {16, 16, 32});
  EXPECT_LT(half.latency_s, full.latency_s);
}

TEST(CostModel, AreaIndependentOfWorkload) {
  HardwareProfile hw;
  EXPECT_DOUBLE_EQ(round_cost(1e6, hw, {}).area_mm2,
                   round_cost(1e9, hw, {}).area_mm2);
}

TEST(CostModel, InvalidPrecisionThrows) {
  HardwareProfile hw;
  EXPECT_THROW(round_cost(1e6, hw, {1, 8, 8}), CheckError);
  EXPECT_THROW(round_cost(1e6, hw, {8, 64, 8}), CheckError);
}

TEST(Quantize, Fp32IsIdentity) {
  std::vector<double> v{0.1, -0.7, 2.3};
  const auto orig = v;
  fake_quantize(v, 32);
  EXPECT_EQ(v, orig);
}

TEST(Quantize, LowBitsCoarser) {
  auto err = [](int bits) {
    std::vector<double> v;
    Rng rng(1);
    for (int i = 0; i < 200; ++i) v.push_back(rng.normal());
    const auto orig = v;
    fake_quantize(v, bits);
    double e = 0.0;
    for (std::size_t i = 0; i < v.size(); ++i) e += std::abs(v[i] - orig[i]);
    return e;
  };
  EXPECT_GT(err(4), err(8));
  EXPECT_GT(err(8), err(16));
}

TEST(Quantize, PreservesZeroAndSymmetry) {
  std::vector<double> v{-1.0, 0.0, 1.0};
  fake_quantize(v, 8);
  EXPECT_DOUBLE_EQ(v[1], 0.0);
  EXPECT_DOUBLE_EQ(v[0], -v[2]);
}

TEST(Fleet, HeterogeneousCapabilities) {
  Rng rng(2);
  const auto fleet = make_heterogeneous_fleet(8, rng);
  ASSERT_EQ(fleet.size(), 8u);
  double mx = 0.0, mn = 1e18;
  for (const auto& hw : fleet) {
    mx = std::max(mx, hw.throughput_macs_per_s);
    mn = std::min(mn, hw.throughput_macs_per_s);
  }
  EXPECT_GT(mx / mn, 5.0);  // order-of-magnitude-ish spread
}

TEST(Mlp, MacsCountsActiveChannels) {
  Rng rng(3);
  const MlpParams p = init_mlp(16, 32, 10, rng);
  EXPECT_EQ(mlp_macs(p, 32), 32u * (16 + 10));
  EXPECT_EQ(mlp_macs(p, 8), 8u * (16 + 10));
}

TEST(Mlp, LocalTrainingImprovesShardAccuracy) {
  Rng rng(4);
  const auto ds = sim::make_gaussian_classes(200, 16, 4, 3.0, rng);
  MlpParams p = init_mlp(16, 32, 4, rng);
  std::vector<int> shard;
  for (int i = 0; i < 200; ++i) shard.push_back(i);
  std::vector<bool> active(32, true);
  const double before = evaluate_accuracy(p, ds, shard);
  local_train(p, ds, shard, active, PrecisionConfig{}, 5, 16, 0.05, rng);
  const double after = evaluate_accuracy(p, ds, shard);
  EXPECT_GT(after, before);
  EXPECT_GT(after, 0.8);
}

TEST(Mlp, MaskedChannelsStayUntouched) {
  Rng rng(5);
  const auto ds = sim::make_gaussian_classes(50, 8, 4, 2.0, rng);
  MlpParams p = init_mlp(8, 16, 4, rng);
  const MlpParams orig = p;
  std::vector<bool> active(16, true);
  active[3] = false;
  std::vector<int> shard;
  for (int i = 0; i < 50; ++i) shard.push_back(i);
  local_train(p, ds, shard, active, PrecisionConfig{}, 2, 16, 0.05, rng);
  // Row 3 of w1 must be identical to the original.
  for (int i = 0; i < 8; ++i)
    EXPECT_DOUBLE_EQ(p.w1[static_cast<std::size_t>(3) * 8 + i],
                     orig.w1[static_cast<std::size_t>(3) * 8 + i]);
}

TEST(Selection, WeakClientGetsNarrowWidth) {
  FlConfig cfg;
  HardwareProfile strong, weak;
  strong.throughput_macs_per_s = 1e10;
  strong.latency_budget_s = 5e-3;
  weak.throughput_macs_per_s = 2e6;
  weak.latency_budget_s = 5e-3;
  const int ws = select_width(strong, cfg, 100, 32, 10);
  const int ww = select_width(weak, cfg, 100, 32, 10);
  EXPECT_GT(ws, ww);
  EXPECT_EQ(ws, cfg.width_candidates.back());
}

TEST(Selection, WeakClientGetsLowPrecision) {
  FlConfig cfg;
  HardwareProfile strong, weak;
  strong.throughput_macs_per_s = 1e10;
  strong.energy_per_mac_j = 5e-12;
  weak.throughput_macs_per_s = 5e7;
  weak.energy_per_mac_j = 200e-12;
  weak.energy_budget_j = 1e-4;
  const PrecisionConfig ps = select_precision(strong, cfg, 1e8);
  const PrecisionConfig pw = select_precision(weak, cfg, 1e8);
  EXPECT_GE(ps.weight_bits, pw.weight_bits);
}

class StrategyTest : public ::testing::TestWithParam<FlStrategy> {};

TEST_P(StrategyTest, FederatedTrainingLearnsNonIidTask) {
  Rng rng(6);
  const auto train = sim::make_gaussian_classes(400, 16, 10, 3.0, rng);
  const auto test = sim::make_gaussian_classes(200, 16, 10, 3.0, rng);
  // NOTE: train/test share class means only if drawn from the same call;
  // re-draws have different means. Use a split of one dataset instead.
  const auto full = sim::make_gaussian_classes(600, 16, 10, 3.0, rng);
  sim::ClassificationDataset tr, te;
  tr.feature_dim = te.feature_dim = 16;
  tr.num_classes = te.num_classes = 10;
  for (std::size_t i = 0; i < 400; ++i) {
    tr.features.push_back(full.features[i]);
    tr.labels.push_back(full.labels[i]);
  }
  for (std::size_t i = 400; i < 600; ++i) {
    te.features.push_back(full.features[i]);
    te.labels.push_back(full.labels[i]);
  }
  (void)train;
  (void)test;

  const auto shards = sim::dirichlet_partition(tr.labels, 6, 10, 0.5, rng);
  const auto fleet = make_heterogeneous_fleet(6, rng);
  FlConfig cfg;
  cfg.rounds = 10;
  const FlResult res =
      run_federated(GetParam(), tr, te, shards, fleet, cfg, rng);
  EXPECT_GT(res.final_accuracy, 0.6) << strategy_name(GetParam());
  EXPECT_GT(res.total_energy_j, 0.0);
  EXPECT_GT(res.total_latency_s, 0.0);
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, StrategyTest,
                         ::testing::Values(FlStrategy::kStaticFl,
                                           FlStrategy::kDcNas,
                                           FlStrategy::kHaloFl),
                         [](const ::testing::TestParamInfo<FlStrategy>& info) {
                           switch (info.param) {
                             case FlStrategy::kStaticFl:
                               return "StaticFl";
                             case FlStrategy::kDcNas:
                               return "DcNas";
                             case FlStrategy::kHaloFl:
                               return "HaloFl";
                           }
                           return "unknown";
                         });

TEST(Strategies, AdaptiveStrategiesCutEnergyVsStatic) {
  Rng rng(7);
  const auto full = sim::make_gaussian_classes(600, 16, 10, 3.0, rng);
  sim::ClassificationDataset tr, te;
  tr.feature_dim = te.feature_dim = 16;
  tr.num_classes = te.num_classes = 10;
  for (std::size_t i = 0; i < 400; ++i) {
    tr.features.push_back(full.features[i]);
    tr.labels.push_back(full.labels[i]);
  }
  for (std::size_t i = 400; i < 600; ++i) {
    te.features.push_back(full.features[i]);
    te.labels.push_back(full.labels[i]);
  }
  Rng part_rng(8);
  const auto shards = sim::dirichlet_partition(tr.labels, 6, 10, 0.5, part_rng);
  const auto fleet = make_heterogeneous_fleet(6, part_rng);
  FlConfig cfg;
  cfg.rounds = 6;

  Rng r1(9), r2(9), r3(9);
  const FlResult base =
      run_federated(FlStrategy::kStaticFl, tr, te, shards, fleet, cfg, r1);
  const FlResult dcnas =
      run_federated(FlStrategy::kDcNas, tr, te, shards, fleet, cfg, r2);
  const FlResult halo =
      run_federated(FlStrategy::kHaloFl, tr, te, shards, fleet, cfg, r3);

  EXPECT_LT(dcnas.total_energy_j, base.total_energy_j);
  EXPECT_LT(halo.total_energy_j, base.total_energy_j);
  EXPECT_LE(halo.mean_area_mm2, base.mean_area_mm2);
}

TEST(Markov, RowsAreDistributions) {
  Rng rng(10);
  const MarkovModel m = MarkovModel::random(8, 3.0, rng);
  for (int i = 0; i < 8; ++i) {
    double row = 0.0;
    for (int j = 0; j < 8; ++j) {
      EXPECT_GE(m.prob(i, j), 0.0);
      row += m.prob(i, j);
    }
    EXPECT_NEAR(row, 1.0, 1e-9);
  }
}

TEST(Markov, SmoothedApproachesUniform) {
  Rng rng(11);
  const MarkovModel m = MarkovModel::random(8, 4.0, rng);
  const MarkovModel u = m.smoothed(1.0);
  for (int i = 0; i < 8; ++i)
    for (int j = 0; j < 8; ++j) EXPECT_NEAR(u.prob(i, j), 1.0 / 8, 1e-12);
}

TEST(Speculative, GeneratesRequestedTokens) {
  Rng rng(12);
  const MarkovModel target = MarkovModel::random(16, 4.0, rng);
  const MarkovModel draft = target.smoothed(0.3);
  std::vector<int> seq;
  const SpeculativeStats st =
      speculative_decode(target, draft, 500, SpeculativeConfig{}, rng, &seq);
  EXPECT_EQ(st.tokens_generated, 500);
  EXPECT_EQ(seq.size(), 500u);
}

TEST(Speculative, MultipleTokensPerTargetPass) {
  Rng rng(13);
  const MarkovModel target = MarkovModel::random(16, 6.0, rng);
  const MarkovModel draft = target.smoothed(0.2);  // good draft
  const SpeculativeStats st =
      speculative_decode(target, draft, 2000, SpeculativeConfig{}, rng);
  EXPECT_GT(st.tokens_per_pass(), 1.5);
  EXPECT_GT(st.speedup(SpeculativeConfig{}), 1.2);
}

TEST(Speculative, PerfectDraftAcceptsEverything) {
  Rng rng(14);
  const MarkovModel target = MarkovModel::random(8, 3.0, rng);
  const SpeculativeStats st =
      speculative_decode(target, target, 1000, SpeculativeConfig{}, rng);
  EXPECT_NEAR(st.acceptance_rate(), 1.0, 1e-12);
  // γ accepted + 1 bonus per pass.
  EXPECT_NEAR(st.tokens_per_pass(), 5.0, 0.1);
}

TEST(Speculative, BadDraftLowersAcceptance) {
  Rng rng(15);
  const MarkovModel target = MarkovModel::random(16, 6.0, rng);
  const SpeculativeStats good =
      speculative_decode(target, target.smoothed(0.1), 2000, {}, rng);
  const SpeculativeStats bad =
      speculative_decode(target, target.smoothed(0.9), 2000, {}, rng);
  EXPECT_GT(good.acceptance_rate(), bad.acceptance_rate());
}

TEST(Speculative, PreservesTargetDistribution) {
  // The headline correctness property: speculative output matches plain
  // target sampling in distribution.
  Rng rng(16);
  const MarkovModel target = MarkovModel::random(8, 4.0, rng);
  const MarkovModel draft = target.smoothed(0.5);

  Rng r1(17), r2(18);
  const std::vector<int> plain = autoregressive_decode(target, 30000, r1);
  std::vector<int> spec;
  speculative_decode(target, draft, 30000, SpeculativeConfig{}, r2, &spec);

  const auto d1 = unigram_distribution(plain, 8);
  const auto d2 = unigram_distribution(spec, 8);
  for (int j = 0; j < 8; ++j)
    EXPECT_NEAR(d1[static_cast<std::size_t>(j)], d2[static_cast<std::size_t>(j)], 0.02);
}

}  // namespace
}  // namespace s2a::federated

namespace s2a::federated {
namespace {

TEST(SpeculativeLatency, SpeedupAccountsForDraftCost) {
  SpeculativeStats st;
  st.tokens_generated = 100;
  st.target_passes = 25;   // 4 tokens per pass
  st.draft_tokens = 100;
  st.accepted = 90;
  SpeculativeConfig cfg;
  cfg.target_pass_latency = 1.0;
  cfg.draft_token_latency = 0.05;
  // latency = 25·1 + 100·0.05 = 30; baseline = 100·1 → speedup 3.33.
  EXPECT_NEAR(st.latency(cfg), 30.0, 1e-12);
  EXPECT_NEAR(st.speedup(cfg), 100.0 / 30.0, 1e-12);
  EXPECT_NEAR(st.tokens_per_pass(), 4.0, 1e-12);
  EXPECT_NEAR(st.acceptance_rate(), 0.9, 1e-12);
}

TEST(SpeculativeLatency, FreeDraftDegeneratesToTokensPerPass) {
  SpeculativeStats st;
  st.tokens_generated = 100;
  st.target_passes = 20;
  st.draft_tokens = 100;
  SpeculativeConfig cfg;
  cfg.draft_token_latency = 0.0;
  EXPECT_NEAR(st.speedup(cfg), st.tokens_per_pass(), 1e-12);
}

TEST(Markov, ConstructorRejectsNonStochasticRows) {
  // Row sums off by more than the tolerance must be caught at the
  // boundary, not silently renormalized.
  nn::Tensor bad({2, 2}, {0.9, 0.9, 0.5, 0.5});
  EXPECT_THROW(MarkovModel(2, std::move(bad)), CheckError);
  nn::Tensor negative({2, 2}, {1.5, -0.5, 0.5, 0.5});
  EXPECT_THROW(MarkovModel(2, std::move(negative)), CheckError);
}

TEST(Markov, SmoothedZeroIsIdentity) {
  Rng rng(19);
  const MarkovModel m = MarkovModel::random(8, 4.0, rng);
  const MarkovModel same = m.smoothed(0.0);
  for (int i = 0; i < 8; ++i)
    for (int j = 0; j < 8; ++j)
      EXPECT_DOUBLE_EQ(same.prob(i, j), m.prob(i, j));
}

TEST(Markov, SampleMatchesTransitionProbabilities) {
  Rng rng(20);
  const MarkovModel m = MarkovModel::random(6, 3.0, rng);
  const int current = 2;
  std::vector<double> freq(6, 0.0);
  const int draws = 60000;
  for (int i = 0; i < draws; ++i)
    freq[static_cast<std::size_t>(m.sample(current, rng))] += 1.0 / draws;
  for (int j = 0; j < 6; ++j)
    EXPECT_NEAR(freq[static_cast<std::size_t>(j)], m.prob(current, j), 0.01);
}

TEST(Speculative, GammaOneStillAmortizesViaBonusToken) {
  Rng rng(24);
  const MarkovModel target = MarkovModel::random(8, 4.0, rng);
  SpeculativeConfig cfg;
  cfg.gamma = 1;
  const SpeculativeStats st =
      speculative_decode(target, target, 1000, cfg, rng);
  // Perfect draft at γ=1: every pass yields the draft token + the bonus.
  EXPECT_NEAR(st.acceptance_rate(), 1.0, 1e-12);
  EXPECT_NEAR(st.tokens_per_pass(), 2.0, 0.1);
  EXPECT_EQ(st.tokens_generated, 1000);
  EXPECT_GE(st.draft_tokens, st.accepted);
}

TEST(Speculative, DecodeIsDeterministicForAGivenSeed) {
  Rng model_rng(25);
  const MarkovModel target = MarkovModel::random(12, 4.0, model_rng);
  const MarkovModel draft = target.smoothed(0.4);
  Rng r1(26), r2(26);
  std::vector<int> s1, s2;
  const SpeculativeStats a =
      speculative_decode(target, draft, 800, SpeculativeConfig{}, r1, &s1);
  const SpeculativeStats b =
      speculative_decode(target, draft, 800, SpeculativeConfig{}, r2, &s2);
  EXPECT_EQ(s1, s2);
  EXPECT_EQ(a.target_passes, b.target_passes);
  EXPECT_EQ(a.accepted, b.accepted);
  EXPECT_EQ(a.draft_tokens, b.draft_tokens);
}

TEST(Speculative, UnigramDistributionCountsExactly) {
  const std::vector<int> tokens{0, 1, 1, 2, 2, 2, 3, 3, 3, 3};
  const auto d = unigram_distribution(tokens, 5);
  ASSERT_EQ(d.size(), 5u);
  EXPECT_DOUBLE_EQ(d[0], 0.1);
  EXPECT_DOUBLE_EQ(d[1], 0.2);
  EXPECT_DOUBLE_EQ(d[2], 0.3);
  EXPECT_DOUBLE_EQ(d[3], 0.4);
  EXPECT_DOUBLE_EQ(d[4], 0.0);
}

}  // namespace
}  // namespace s2a::federated

// ------------------------------------------------------------------
// Parallel-vs-serial equivalence for federated rounds. run_federated is
// deterministic given the seed of the server Rng: per-client streams are
// spawned serially in client order before the parallel section, and the
// cost/aggregation reductions are client-ordered on the calling thread —
// so results are bit-exact at every thread count (no float tolerance;
// reduction order never changes).
#include <thread>

#include "util/thread_pool.hpp"

namespace s2a::federated {
namespace {

std::vector<int> fl_thread_counts() {
  std::vector<int> counts{2, 4};
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  if (hw > 1 && hw != 2 && hw != 4) counts.push_back(hw);
  return counts;
}

sim::ClassificationDataset slice_dataset(const sim::ClassificationDataset& src,
                                         std::size_t lo, std::size_t hi) {
  sim::ClassificationDataset out;
  out.feature_dim = src.feature_dim;
  out.num_classes = src.num_classes;
  for (std::size_t i = lo; i < hi; ++i) {
    out.features.push_back(src.features[i]);
    out.labels.push_back(src.labels[i]);
  }
  return out;
}

class FlEquivalenceTest : public ::testing::TestWithParam<FlStrategy> {};

TEST_P(FlEquivalenceTest, RoundResultsBitExactAcrossThreadCounts) {
  Rng data_rng(21);
  const auto full = sim::make_gaussian_classes(450, 16, 10, 3.0, data_rng);
  const auto tr = slice_dataset(full, 0, 300);
  const auto te = slice_dataset(full, 300, 450);
  Rng part_rng(22);
  const auto shards = sim::dirichlet_partition(tr.labels, 5, 10, 0.5, part_rng);
  const auto fleet = make_heterogeneous_fleet(5, part_rng);
  FlConfig cfg;
  cfg.rounds = 3;

  FlResult serial;
  {
    util::ScopedGlobalThreads threads(1);
    Rng rng(23);
    serial = run_federated(GetParam(), tr, te, shards, fleet, cfg, rng);
  }
  for (int threads : fl_thread_counts()) {
    util::ScopedGlobalThreads scoped(threads);
    Rng rng(23);  // same fixed seed -> same per-client spawned streams
    const FlResult parallel =
        run_federated(GetParam(), tr, te, shards, fleet, cfg, rng);
    ASSERT_EQ(parallel.accuracy_per_round.size(),
              serial.accuracy_per_round.size());
    for (std::size_t r = 0; r < serial.accuracy_per_round.size(); ++r)
      EXPECT_DOUBLE_EQ(parallel.accuracy_per_round[r],
                       serial.accuracy_per_round[r])
          << threads << " threads, round " << r;
    EXPECT_DOUBLE_EQ(parallel.final_accuracy, serial.final_accuracy);
    EXPECT_DOUBLE_EQ(parallel.total_energy_j, serial.total_energy_j);
    EXPECT_DOUBLE_EQ(parallel.total_latency_s, serial.total_latency_s);
    EXPECT_DOUBLE_EQ(parallel.mean_area_mm2, serial.mean_area_mm2);
    EXPECT_EQ(parallel.client_widths, serial.client_widths);
  }
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, FlEquivalenceTest,
                         ::testing::Values(FlStrategy::kStaticFl,
                                           FlStrategy::kDcNas,
                                           FlStrategy::kHaloFl),
                         [](const ::testing::TestParamInfo<FlStrategy>& info) {
                           switch (info.param) {
                             case FlStrategy::kStaticFl:
                               return "StaticFl";
                             case FlStrategy::kDcNas:
                               return "DcNas";
                             case FlStrategy::kHaloFl:
                               return "HaloFl";
                           }
                           return "unknown";
                         });

TEST(FlEquivalence, EvaluateAccuracyExactAcrossThreadCounts) {
  Rng rng(24);
  const auto ds = sim::make_gaussian_classes(500, 16, 4, 3.0, rng);
  const MlpParams p = init_mlp(16, 32, 4, rng);
  double serial = 0.0;
  {
    util::ScopedGlobalThreads threads(1);
    serial = evaluate_accuracy(p, ds);
  }
  for (int threads : fl_thread_counts()) {
    util::ScopedGlobalThreads scoped(threads);
    EXPECT_DOUBLE_EQ(evaluate_accuracy(p, ds), serial) << threads << " threads";
  }
}

}  // namespace
}  // namespace s2a::federated
