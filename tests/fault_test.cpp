// Chaos/degradation suite (docs/RESILIENCE.md): seeded fault plans
// driven through the loop engine and the federated runner, asserting
// the three headline guarantees —
//  1. recovery or SAFE_STOP: every chaos run ends NOMINAL (after the
//     plan's fault windows close) or latched in SAFE_STOP;
//  2. determinism: LoopMetrics / FlResult are bit-identical across
//     repeated runs and across thread counts;
//  3. containment: no non-finite value ever reaches Actuator::actuate
//     or the global federated model.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "core/loop.hpp"
#include "core/policies.hpp"
#include "fault/fault.hpp"
#include "federated/fedavg.hpp"
#include "util/check.hpp"
#include "util/finite.hpp"
#include "util/thread_pool.hpp"

namespace s2a::fault {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

class ConstantSensor : public core::Sensor {
 public:
  explicit ConstantSensor(double value = 1.0) : value_(value) {}
  core::Observation sense(double now, Rng&) override {
    core::Observation obs;
    obs.data = {value_};
    obs.timestamp = now;
    obs.energy_j = 1e-3;
    return obs;
  }

 private:
  double value_;
};

class PassthroughProcessor : public core::Processor {
 public:
  std::vector<double> process(const core::Observation& obs, Rng&) override {
    return obs.data;
  }
};

/// Records every actuation and asserts finiteness on arrival — the
/// "plant" that must never see NaN.
class GuardedActuator : public core::Actuator {
 public:
  void actuate(const core::Action& action, Rng&) override {
    EXPECT_TRUE(util::all_finite(action.data));
    if (!util::all_finite(action.data)) ++nonfinite_seen;
    actions.push_back(action);
  }
  std::vector<core::Action> actions;
  long nonfinite_seen = 0;
};

// ---------------------------------------------------------------- plans

TEST(FaultPlan, SameSeedSamePlan) {
  const FaultPlan a = FaultPlan::random_component_plan(42, 10.0, 6, 0.5);
  const FaultPlan b = FaultPlan::random_component_plan(42, 10.0, 6, 0.5);
  ASSERT_EQ(a.events().size(), b.events().size());
  for (std::size_t i = 0; i < a.events().size(); ++i) {
    EXPECT_EQ(a.events()[i].kind, b.events()[i].kind);
    EXPECT_DOUBLE_EQ(a.events()[i].start, b.events()[i].start);
    EXPECT_DOUBLE_EQ(a.events()[i].end, b.events()[i].end);
    EXPECT_DOUBLE_EQ(a.events()[i].magnitude, b.events()[i].magnitude);
  }
  const FaultPlan c = FaultPlan::random_component_plan(43, 10.0, 6, 0.5);
  bool any_diff = c.events().size() != a.events().size();
  for (std::size_t i = 0; !any_diff && i < a.events().size(); ++i)
    any_diff = a.events()[i].start != c.events()[i].start;
  EXPECT_TRUE(any_diff);
}

TEST(FaultPlan, WindowQueriesAreHalfOpen) {
  FaultPlan plan({{FaultKind::kDropout, 1.0, 2.0, -1, 0.0}});
  EXPECT_EQ(plan.component_fault_at(0.99), nullptr);
  ASSERT_NE(plan.component_fault_at(1.0), nullptr);
  ASSERT_NE(plan.component_fault_at(1.99), nullptr);
  EXPECT_EQ(plan.component_fault_at(2.0), nullptr);
  // Client queries never match component kinds and vice versa.
  EXPECT_EQ(plan.client_fault_at(1, 0), nullptr);
}

TEST(FaultPlan, ClientQueriesRespectTarget) {
  FaultPlan plan({{FaultKind::kClientDropout, 0.0, 2.0, 1, 0.0},
                  {FaultKind::kClientStraggler, 1.0, 3.0, -1, 4.0}});
  ASSERT_NE(plan.client_fault_at(0, 1), nullptr);
  EXPECT_EQ(plan.client_fault_at(0, 1)->kind, FaultKind::kClientDropout);
  EXPECT_EQ(plan.client_fault_at(0, 0), nullptr);  // wrong target
  ASSERT_NE(plan.client_fault_at(2, 0), nullptr);  // wildcard straggler
  EXPECT_EQ(plan.client_fault_at(2, 0)->kind, FaultKind::kClientStraggler);
  EXPECT_EQ(plan.component_fault_at(1.0), nullptr);
}

TEST(FaultPlan, InvalidEventsRejected) {
  EXPECT_THROW(FaultPlan({{FaultKind::kDropout, 2.0, 1.0, -1, 0.0}}),
               CheckError);
  EXPECT_THROW(
      FaultPlan({{FaultKind::kClientStraggler, 0.0, 1.0, -1, 0.5}}),
      CheckError);
}

// ----------------------------------------------------------- decorators

TEST(FaultySensor, DropoutThrowsInsideWindowOnly) {
  ConstantSensor inner;
  FaultySensor sensor(inner, FaultPlan({{FaultKind::kDropout, 1.0, 2.0}}));
  Rng rng(1);
  EXPECT_NO_THROW(sensor.sense(0.5, rng));
  EXPECT_THROW(sensor.sense(1.5, rng), core::SensorFault);
  EXPECT_NO_THROW(sensor.sense(2.5, rng));
  EXPECT_EQ(sensor.faults_injected(), 1);
}

TEST(FaultySensor, PayloadAndLatencyFaults) {
  ConstantSensor inner(3.0);
  FaultySensor sensor(inner,
                      FaultPlan({{FaultKind::kNaNPayload, 1.0, 2.0},
                                 {FaultKind::kInfPayload, 2.0, 3.0},
                                 {FaultKind::kLatencySpike, 3.0, 4.0, -1, 0.25}}));
  Rng rng(2);
  EXPECT_TRUE(std::isnan(sensor.sense(1.5, rng).data[0]));
  EXPECT_TRUE(std::isinf(sensor.sense(2.5, rng).data[0]));
  EXPECT_DOUBLE_EQ(sensor.sense(3.5, rng).extra_latency_s, 0.25);
  EXPECT_DOUBLE_EQ(sensor.sense(4.5, rng).extra_latency_s, 0.0);
}

TEST(FaultySensor, StuckRepeatsLastGoodFrame) {
  // A sensor whose payload encodes the sample time, so repeats show.
  class ClockSensor : public core::Sensor {
   public:
    core::Observation sense(double now, Rng&) override {
      core::Observation obs;
      obs.data = {now};
      return obs;
    }
  } inner;
  FaultySensor sensor(inner, FaultPlan({{FaultKind::kStuckPayload, 1.0, 2.0}}));
  Rng rng(3);
  EXPECT_DOUBLE_EQ(sensor.sense(0.5, rng).data[0], 0.5);
  EXPECT_DOUBLE_EQ(sensor.sense(1.5, rng).data[0], 0.5);  // frozen
  EXPECT_DOUBLE_EQ(sensor.sense(2.5, rng).data[0], 2.5);
}

TEST(FaultySensor, StuckBeforeFirstFrameIsDropout) {
  ConstantSensor inner;
  FaultySensor sensor(inner, FaultPlan({{FaultKind::kStuckPayload, 0.0, 1.0}}));
  Rng rng(4);
  EXPECT_THROW(sensor.sense(0.5, rng), core::SensorFault);
}

TEST(FaultyProcessor, CorruptsByCallIndex) {
  PassthroughProcessor inner;
  FaultyProcessor proc(inner, FaultPlan({{FaultKind::kNaNPayload, 1.0, 2.0},
                                         {FaultKind::kStuckPayload, 3.0, 4.0}}));
  Rng rng(5);
  core::Observation obs;
  obs.data = {7.0};
  EXPECT_DOUBLE_EQ(proc.process(obs, rng)[0], 7.0);  // call 0
  EXPECT_TRUE(std::isnan(proc.process(obs, rng)[0]));  // call 1
  obs.data = {8.0};
  EXPECT_DOUBLE_EQ(proc.process(obs, rng)[0], 8.0);  // call 2
  obs.data = {9.0};
  EXPECT_DOUBLE_EQ(proc.process(obs, rng)[0], 8.0);  // call 3: stuck
  EXPECT_DOUBLE_EQ(proc.process(obs, rng)[0], 9.0);  // call 4
  EXPECT_EQ(proc.faults_injected(), 2);
}

// --------------------------------------------------- loop degradation

core::LoopConfig chaos_loop_config() {
  core::LoopConfig cfg;
  cfg.dt = 0.1;
  cfg.resilience.max_sense_retries = 1;
  cfg.resilience.max_staleness_s = 0.5;
  cfg.resilience.degrade_after = 2;
  cfg.resilience.recover_after = 3;
  cfg.resilience.safe_stop_after = 10;
  return cfg;
}

TEST(LoopDegradation, RecoversAfterTransientDropout) {
  ConstantSensor inner;
  // Dropout for 0.7 s (7 ticks) starting at t=1: long enough to degrade
  // and outlive the 0.5 s staleness bound, short enough to recover.
  FaultySensor sensor(inner, FaultPlan({{FaultKind::kDropout, 1.0, 1.7}}));
  PassthroughProcessor proc;
  GuardedActuator act;
  core::PeriodicPolicy policy(1);
  core::SensingActionLoop loop(sensor, proc, act, policy,
                               chaos_loop_config());
  Rng rng(6);
  loop.run(40, rng);
  const auto& m = loop.metrics();
  EXPECT_EQ(loop.state(), core::LoopState::kNominal);
  EXPECT_EQ(m.degradations, 1);
  EXPECT_EQ(m.recoveries, 1);
  EXPECT_EQ(m.safe_stops, 0);
  EXPECT_GT(m.degraded_ticks, 0);
  EXPECT_GT(m.sensor_faults, 0);
  // Fallback (hold-last) kept commands flowing through the outage.
  EXPECT_GT(m.fallback_actions, 0);
  EXPECT_EQ(act.nonfinite_seen, 0);
}

TEST(LoopDegradation, PersistentDropoutLatchesSafeStop) {
  ConstantSensor inner;
  FaultySensor sensor(inner, FaultPlan({{FaultKind::kDropout, 1.0, 1e9}}));
  PassthroughProcessor proc;
  GuardedActuator act;
  core::PeriodicPolicy policy(1);
  auto cfg = chaos_loop_config();
  cfg.resilience.fallback = core::FallbackPolicy::kZeroAction;
  core::SensingActionLoop loop(sensor, proc, act, policy, cfg);
  Rng rng(7);
  loop.run(100, rng);
  const auto& m = loop.metrics();
  EXPECT_EQ(loop.state(), core::LoopState::kSafeStop);
  EXPECT_EQ(m.safe_stops, 1);
  EXPECT_EQ(m.recoveries, 0);
  EXPECT_GT(m.safe_stop_ticks, 50);
  // After the latch, nothing was sensed or actuated again.
  const std::size_t actuations = act.actions.size();
  loop.run(10, rng);
  EXPECT_EQ(act.actions.size(), actuations);
  EXPECT_EQ(loop.metrics().ticks, 110);
}

TEST(LoopDegradation, NaNPayloadsAreQuarantinedNotActuated) {
  ConstantSensor inner;
  FaultySensor sensor(inner, FaultPlan({{FaultKind::kNaNPayload, 1.0, 2.0}}));
  PassthroughProcessor proc;
  GuardedActuator act;
  core::PeriodicPolicy policy(1);
  core::SensingActionLoop loop(sensor, proc, act, policy,
                               chaos_loop_config());
  Rng rng(8);
  loop.run(40, rng);
  EXPECT_GT(loop.metrics().quarantined, 0);
  EXPECT_EQ(act.nonfinite_seen, 0);
  for (const auto& a : act.actions) EXPECT_TRUE(util::all_finite(a.data));
}

TEST(LoopDegradation, NonFiniteProcessorOutputBlockedAtActuationBoundary) {
  ConstantSensor sensor;
  PassthroughProcessor inner;
  FaultyProcessor proc(inner, FaultPlan({{FaultKind::kInfPayload, 5.0, 10.0}}));
  GuardedActuator act;
  core::PeriodicPolicy policy(1);
  core::SensingActionLoop loop(sensor, proc, act, policy,
                               chaos_loop_config());
  Rng rng(9);
  loop.run(30, rng);
  EXPECT_GT(loop.metrics().quarantined_actions, 0);
  EXPECT_EQ(act.nonfinite_seen, 0);
}

TEST(LoopDegradation, LatencySpikeTriggersStalenessFallback) {
  ConstantSensor inner;
  // Spike adds 1 s of acquisition delay against a 0.5 s staleness bound.
  FaultySensor sensor(inner,
                      FaultPlan({{FaultKind::kLatencySpike, 1.0, 2.0, -1, 1.0}}));
  PassthroughProcessor proc;
  GuardedActuator act;
  core::PeriodicPolicy policy(1);
  core::SensingActionLoop loop(sensor, proc, act, policy,
                               chaos_loop_config());
  Rng rng(10);
  loop.run(40, rng);
  EXPECT_GT(loop.metrics().staleness_violations, 0);
  EXPECT_GT(loop.metrics().fallback_actions, 0);
  EXPECT_EQ(loop.state(), core::LoopState::kNominal);  // spike window passed
}

TEST(LoopDegradation, StalenessBoundWithSafeStopPolicyHalts) {
  ConstantSensor sensor;
  PassthroughProcessor proc;
  GuardedActuator act;
  core::PeriodicPolicy policy(100);  // sense once, then starve
  core::LoopConfig cfg;
  cfg.dt = 0.1;
  cfg.resilience.max_staleness_s = 0.35;
  cfg.resilience.fallback = core::FallbackPolicy::kSafeStop;
  core::SensingActionLoop loop(sensor, proc, act, policy, cfg);
  Rng rng(11);
  loop.run(20, rng);
  EXPECT_EQ(loop.state(), core::LoopState::kSafeStop);
  EXPECT_EQ(loop.metrics().safe_stops, 1);
  // Acted while fresh (ticks 0..3), halted at the first stale tick.
  EXPECT_EQ(loop.metrics().actions, 4);
}

TEST(LoopDegradation, ZeroActionFallbackIssuesZeros) {
  ConstantSensor sensor(5.0);
  PassthroughProcessor proc;
  GuardedActuator act;
  core::PeriodicPolicy policy(100);  // sense once, then starve
  core::LoopConfig cfg;
  cfg.dt = 0.1;
  cfg.resilience.max_staleness_s = 0.35;
  cfg.resilience.fallback = core::FallbackPolicy::kZeroAction;
  core::SensingActionLoop loop(sensor, proc, act, policy, cfg);
  Rng rng(12);
  loop.run(10, rng);
  EXPECT_GT(loop.metrics().fallback_actions, 0);
  EXPECT_EQ(act.actions.back().data, std::vector<double>{0.0});
  EXPECT_EQ(act.actions.front().data, std::vector<double>{5.0});
}

TEST(LoopDegradation, RetryBackoffAgesObservation) {
  // First attempt of each tick in the window faults; the retry succeeds.
  class FlakySensor : public core::Sensor {
   public:
    core::Observation sense(double now, Rng&) override {
      if (fail_next_) {
        fail_next_ = false;
        throw core::SensorFault("flaky");
      }
      fail_next_ = true;
      core::Observation obs;
      obs.data = {1.0};
      obs.timestamp = now;
      return obs;
    }

   private:
    bool fail_next_ = true;
  } sensor;
  PassthroughProcessor proc;
  GuardedActuator act;
  core::PeriodicPolicy policy(1);
  core::LoopConfig cfg;
  cfg.dt = 0.1;
  cfg.resilience.max_sense_retries = 1;
  cfg.resilience.retry_backoff_s = 0.02;
  core::SensingActionLoop loop(sensor, proc, act, policy, cfg);
  Rng rng(13);
  loop.run(10, rng);
  const auto& m = loop.metrics();
  EXPECT_EQ(m.sensor_faults, 10);
  EXPECT_EQ(m.sense_retries, 10);
  EXPECT_EQ(m.senses, 10);
  // Every action was based on an observation aged by one backoff step.
  EXPECT_NEAR(m.mean_staleness_s(), 0.02, 1e-12);
}

// ------------------------------------------------------- chaos sweeps

core::LoopMetrics run_chaos_loop(std::uint64_t plan_seed, int threads) {
  util::ScopedGlobalThreads scoped(threads);
  ConstantSensor inner;
  FaultySensor sensor(
      inner, FaultPlan::random_component_plan(plan_seed, 20.0, 8, 0.8));
  PassthroughProcessor pinner;
  FaultyProcessor proc(
      pinner, FaultPlan::random_component_plan(plan_seed + 1000, 200.0, 4, 10.0));
  GuardedActuator act;
  core::PeriodicPolicy policy(1);
  auto cfg = chaos_loop_config();
  cfg.resilience.safe_stop_after = 25;
  core::SensingActionLoop loop(sensor, proc, act, policy, cfg);
  Rng rng(99);
  // 20 s of faults then 10 s of clean tail: the loop must end NOMINAL
  // (recovered) or SAFE_STOP (latched) — never dangling in DEGRADED.
  loop.run(300, rng);
  EXPECT_TRUE(loop.state() == core::LoopState::kNominal ||
              loop.state() == core::LoopState::kSafeStop)
      << "seed " << plan_seed << " ended " << state_name(loop.state());
  if (loop.state() == core::LoopState::kNominal) {
    EXPECT_EQ(loop.metrics().recoveries, loop.metrics().degradations);
  }
  EXPECT_EQ(act.nonfinite_seen, 0);
  return loop.metrics();
}

TEST(Chaos, SeededPlansRecoverOrSafeStopAndStayDeterministic) {
  for (std::uint64_t seed = 0; seed < 12; ++seed) {
    const core::LoopMetrics once = run_chaos_loop(seed, 1);
    const core::LoopMetrics again = run_chaos_loop(seed, 1);
    EXPECT_TRUE(once == again) << "seed " << seed << " not reproducible";
    const core::LoopMetrics threaded = run_chaos_loop(seed, 4);
    EXPECT_TRUE(once == threaded)
        << "seed " << seed << " diverges at 4 threads";
  }
}

}  // namespace
}  // namespace s2a::fault

// ------------------------------------------------------------------
// Federated chaos: straggler/dropout/corruption plans through
// run_federated, with bit-exact determinism across thread counts.
namespace s2a::fault {
namespace {

struct FlFixture {
  sim::ClassificationDataset train, test;
  std::vector<std::vector<int>> shards;
  std::vector<federated::HardwareProfile> fleet;
  federated::FlConfig cfg;
};

FlFixture make_fl_fixture(int clients = 5, int rounds = 4) {
  FlFixture f;
  Rng data_rng(31);
  const auto full = sim::make_gaussian_classes(450, 16, 10, 3.0, data_rng);
  f.train.feature_dim = f.test.feature_dim = 16;
  f.train.num_classes = f.test.num_classes = 10;
  for (std::size_t i = 0; i < 300; ++i) {
    f.train.features.push_back(full.features[i]);
    f.train.labels.push_back(full.labels[i]);
  }
  for (std::size_t i = 300; i < 450; ++i) {
    f.test.features.push_back(full.features[i]);
    f.test.labels.push_back(full.labels[i]);
  }
  Rng part_rng(32);
  f.shards =
      sim::dirichlet_partition(f.train.labels, clients, 10, 0.5, part_rng);
  f.fleet = federated::make_heterogeneous_fleet(clients, part_rng);
  f.cfg.rounds = rounds;
  return f;
}

TEST(FlChaos, DroppedClientsAreExcludedDeterministically) {
  const FlFixture f = make_fl_fixture();
  // Client 2 never responds in rounds 1-2; client 4 is a hopeless
  // straggler (responses 1e12x late) against the round deadline.
  FaultPlan plan({{FaultKind::kClientDropout, 1.0, 3.0, 2, 0.0},
                  {FaultKind::kClientStraggler, 0.0, 4.0, 4, 1e12}});
  auto cfg = f.cfg;
  cfg.client_timeout_s = 10.0;

  util::ScopedGlobalThreads scoped(1);
  Rng rng(33);
  const federated::FlResult res = federated::run_federated(
      federated::FlStrategy::kStaticFl, f.train, f.test, f.shards, f.fleet,
      cfg, rng, &plan);
  ASSERT_EQ(res.survivors_per_round.size(), 4u);
  EXPECT_EQ(res.survivors_per_round[0], 4);  // straggler out
  EXPECT_EQ(res.survivors_per_round[1], 3);  // straggler + dropout
  EXPECT_EQ(res.survivors_per_round[2], 3);
  EXPECT_EQ(res.survivors_per_round[3], 4);
  EXPECT_EQ(res.dropped_client_rounds, 6);
  EXPECT_EQ(res.nonfinite_deltas, 0);
  // The server never waits past the deadline.
  EXPECT_LE(res.total_latency_s, 4 * cfg.client_timeout_s + 1e-12);
  EXPECT_GT(res.final_accuracy, 0.5);
}

TEST(FlChaos, CorruptUpdateQuarantinedAndEquivalentToExclusion) {
  const FlFixture f = make_fl_fixture();
  FaultPlan corrupt({{FaultKind::kClientCorrupt, 1.0, 2.0, 3, 0.0}});
  // Exclusion baseline: the same client timed out instead (it still
  // trains, so the server-side aggregate must be identical).
  FaultPlan straggle({{FaultKind::kClientStraggler, 1.0, 2.0, 3, 1e12}});
  auto cfg = f.cfg;
  cfg.client_timeout_s = 1e6;

  util::ScopedGlobalThreads scoped(1);
  Rng r1(34), r2(34);
  const federated::FlResult qc = federated::run_federated(
      federated::FlStrategy::kStaticFl, f.train, f.test, f.shards, f.fleet,
      cfg, r1, &corrupt);
  const federated::FlResult ex = federated::run_federated(
      federated::FlStrategy::kStaticFl, f.train, f.test, f.shards, f.fleet,
      cfg, r2, &straggle);
  EXPECT_EQ(qc.nonfinite_deltas, 1);
  EXPECT_EQ(ex.nonfinite_deltas, 0);
  EXPECT_EQ(ex.dropped_client_rounds, 1);
  ASSERT_EQ(qc.accuracy_per_round.size(), ex.accuracy_per_round.size());
  for (std::size_t r = 0; r < qc.accuracy_per_round.size(); ++r)
    EXPECT_DOUBLE_EQ(qc.accuracy_per_round[r], ex.accuracy_per_round[r]);
  // The poisoned update never touched the model: accuracy stays sane.
  for (double acc : qc.accuracy_per_round) EXPECT_TRUE(std::isfinite(acc));
}

TEST(FlChaos, AllClientsLostLeavesModelUnchanged) {
  const FlFixture f = make_fl_fixture(4, 3);
  FaultPlan plan({{FaultKind::kClientDropout, 1.0, 2.0, -1, 0.0}});
  util::ScopedGlobalThreads scoped(1);
  Rng rng(35);
  const federated::FlResult res = federated::run_federated(
      federated::FlStrategy::kStaticFl, f.train, f.test, f.shards, f.fleet,
      f.cfg, rng, &plan);
  ASSERT_EQ(res.survivors_per_round.size(), 3u);
  EXPECT_EQ(res.survivors_per_round[1], 0);
  // The wiped round can't change the model, so its accuracy repeats.
  EXPECT_DOUBLE_EQ(res.accuracy_per_round[1], res.accuracy_per_round[0]);
}

TEST(FlChaos, StragglerDropDeterministicAcrossThreadCounts) {
  const FlFixture f = make_fl_fixture(6, 3);
  const FaultPlan plan = FaultPlan::random_client_plan(77, 3, 6, 5);
  auto cfg = f.cfg;
  cfg.client_timeout_s = 25.0;

  federated::FlResult serial;
  {
    util::ScopedGlobalThreads scoped(1);
    Rng rng(36);
    serial = federated::run_federated(federated::FlStrategy::kDcNas, f.train,
                                      f.test, f.shards, f.fleet, cfg, rng,
                                      &plan);
  }
  for (int threads : {2, 4}) {
    util::ScopedGlobalThreads scoped(threads);
    Rng rng(36);
    const federated::FlResult par = federated::run_federated(
        federated::FlStrategy::kDcNas, f.train, f.test, f.shards, f.fleet,
        cfg, rng, &plan);
    EXPECT_EQ(par.survivors_per_round, serial.survivors_per_round);
    EXPECT_EQ(par.dropped_client_rounds, serial.dropped_client_rounds);
    EXPECT_EQ(par.nonfinite_deltas, serial.nonfinite_deltas);
    ASSERT_EQ(par.accuracy_per_round.size(),
              serial.accuracy_per_round.size());
    for (std::size_t r = 0; r < serial.accuracy_per_round.size(); ++r)
      EXPECT_DOUBLE_EQ(par.accuracy_per_round[r],
                       serial.accuracy_per_round[r])
          << threads << " threads, round " << r;
    EXPECT_DOUBLE_EQ(par.total_energy_j, serial.total_energy_j);
    EXPECT_DOUBLE_EQ(par.total_latency_s, serial.total_latency_s);
  }
}

TEST(FlChaos, NoFaultPlanMatchesLegacyBehaviour) {
  // nullptr plan and an empty plan must agree bit-for-bit.
  const FlFixture f = make_fl_fixture(4, 3);
  util::ScopedGlobalThreads scoped(1);
  Rng r1(37), r2(37);
  const FaultPlan empty;
  const federated::FlResult none = federated::run_federated(
      federated::FlStrategy::kStaticFl, f.train, f.test, f.shards, f.fleet,
      f.cfg, r1, nullptr);
  const federated::FlResult with_empty = federated::run_federated(
      federated::FlStrategy::kStaticFl, f.train, f.test, f.shards, f.fleet,
      f.cfg, r2, &empty);
  EXPECT_EQ(none.dropped_client_rounds, 0);
  ASSERT_EQ(none.accuracy_per_round.size(),
            with_empty.accuracy_per_round.size());
  for (std::size_t r = 0; r < none.accuracy_per_round.size(); ++r)
    EXPECT_DOUBLE_EQ(none.accuracy_per_round[r],
                     with_empty.accuracy_per_round[r]);
  EXPECT_DOUBLE_EQ(none.total_energy_j, with_empty.total_energy_j);
}

}  // namespace
}  // namespace s2a::fault
