// Cross-module integration tests: full pipelines wired the way the
// examples and benches wire them, at miniature scale, asserting the
// end-to-end behaviours the paper's sections claim.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "core/batched_fleet.hpp"
#include "core/fleet.hpp"
#include "core/loop.hpp"
#include "fault/fault.hpp"
#include "lidar/batched.hpp"
#include "core/multi_agent.hpp"
#include "core/policies.hpp"
#include "koopman/agent.hpp"
#include "lidar/detector.hpp"
#include "lidar/pipeline.hpp"
#include "monitor/fusion.hpp"
#include "federated/fedavg.hpp"
#include "monitor/starnet.hpp"
#include "neuro/flow_nets.hpp"
#include "nn/optimizer.hpp"
#include "sim/corruptions.hpp"
#include "sim/dataset.hpp"
#include "util/stats.hpp"

namespace s2a {
namespace {

// ---------------------------------------------------------------------
// Sec. III: generative sensing inside the core loop — a LiDAR sensor that
// actively scans at <10% coverage, a processor that counts occupied
// voxels, and energy metering through the loop.
class GenerativeLidarSensor : public core::Sensor {
 public:
  GenerativeLidarSensor(lidar::GenerativeSensingPipeline& pipe,
                        const sim::Scene& scene)
      : pipe_(pipe), scene_(scene) {}

  core::Observation sense(double now, Rng& rng) override {
    const lidar::SensedScene s = pipe_.sense(scene_, rng);
    core::Observation obs;
    obs.data = {static_cast<double>(s.reconstructed.occupied_count())};
    obs.timestamp = now;
    obs.energy_j = s.energy.total_energy_j();
    return obs;
  }

 private:
  lidar::GenerativeSensingPipeline& pipe_;
  const sim::Scene& scene_;
};

class CountProcessor : public core::Processor {
 public:
  std::vector<double> process(const core::Observation& obs, Rng&) override {
    return obs.data;
  }
};

class NullActuator : public core::Actuator {
 public:
  void actuate(const core::Action&, Rng&) override {}
};

TEST(Integration, GenerativeSensingInsideCoreLoop) {
  Rng rng(1);
  sim::LidarConfig lc;
  lc.azimuth_steps = 90;
  lc.elevation_steps = 6;
  lidar::AutoencoderConfig ac;
  ac.grid.nx = ac.grid.ny = 16;
  ac.c1 = ac.c2 = 8;
  lidar::GenerativeSensingPipeline pipe(lc, ac, lidar::RadialMaskerConfig{},
                                        rng);
  const sim::Scene scene = sim::generate_scene(sim::SceneConfig{}, rng);

  GenerativeLidarSensor sensor(pipe, scene);
  CountProcessor proc;
  NullActuator act;
  core::PeriodicPolicy policy(1);
  core::SensingActionLoop loop(sensor, proc, act, policy);
  loop.run(5, rng);

  EXPECT_EQ(loop.metrics().senses, 5);
  // Each active scan must cost far less than a conventional one
  // (90×6 beams × 50 µJ = 27 mJ).
  EXPECT_LT(loop.metrics().sensing_energy_j / 5, 0.27e-3 * 27);
  EXPECT_GT(loop.metrics().sensing_energy_j, 0.0);
}

// ---------------------------------------------------------------------
// Sec. V: STARNet as the loop's TrustMonitor — corrupted observations
// never reach the actuator.
class EmbeddingSensor : public core::Sensor {
 public:
  EmbeddingSensor(lidar::BevDetector& det, const sim::LidarSimulator& lidar,
                  const lidar::VoxelGridConfig& grid, bool* corrupt_flag)
      : det_(det), lidar_(lidar), grid_(grid), corrupt_(corrupt_flag) {}

  core::Observation sense(double now, Rng& rng) override {
    sim::SceneConfig sc;
    sc.extent = 26.0;
    const sim::Scene scene = sim::generate_scene(sc, rng);
    sim::PointCloud pc = lidar_.full_scan(scene, rng);
    if (*corrupt_)
      pc = sim::apply_corruption(pc, sim::CorruptionType::kCrosstalk, 4,
                                 lidar_.config(), rng);
    core::Observation obs;
    obs.data = det_.feature_embedding(
        lidar::VoxelGrid::from_cloud(pc, grid_).to_tensor());
    obs.timestamp = now;
    return obs;
  }

 private:
  lidar::BevDetector& det_;
  const sim::LidarSimulator& lidar_;
  lidar::VoxelGridConfig grid_;
  bool* corrupt_;
};

class StarNetGate : public core::TrustMonitor {
 public:
  explicit StarNetGate(monitor::StarNet& net) : net_(net) {}
  bool trusted(const core::Observation& obs, Rng& rng) override {
    return net_.trusted(obs.data, rng);
  }

 private:
  monitor::StarNet& net_;
};

TEST(Integration, StarNetVetoesCorruptedObservationsInLoop) {
  Rng rng(2);
  sim::LidarConfig lc;
  lc.azimuth_steps = 120;
  lc.elevation_steps = 8;
  sim::LidarSimulator lidar(lc);
  lidar::VoxelGridConfig gc;
  gc.nx = gc.ny = 16;
  lidar::DetectorConfig dc;
  dc.grid = gc;
  lidar::BevDetector det(dc, rng);  // untrained: embeddings still informative

  // Fit STARNet on clean embeddings.
  bool corrupt = false;
  EmbeddingSensor sensor(det, lidar, gc, &corrupt);
  std::vector<std::vector<double>> clean;
  for (int i = 0; i < 64; ++i) clean.push_back(sensor.sense(0.0, rng).data);
  monitor::StarNetConfig snc;
  snc.vae.input_dim = det.embedding_dim();
  snc.threshold_percentile = 99.0;  // scene-to-scene variation is real
  monitor::StarNet net(snc, rng);
  net.fit(clean, rng);

  CountProcessor proc;
  NullActuator act;
  core::PeriodicPolicy policy(1);
  StarNetGate gate(net);
  core::SensingActionLoop loop(sensor, proc, act, policy, core::LoopConfig{},
                               &gate);

  loop.run(10, rng);
  const long vetoed_clean = loop.metrics().vetoed;
  corrupt = true;
  loop.run(10, rng);
  const long vetoed_corrupt = loop.metrics().vetoed - vetoed_clean;

  EXPECT_LE(vetoed_clean, 5);     // high-percentile threshold
  EXPECT_GE(vetoed_corrupt, 7);   // corrupted stream mostly vetoed
  EXPECT_GT(vetoed_corrupt, vetoed_clean);
}

// ---------------------------------------------------------------------
// Sec. IV + core: the trained Koopman agent driving the loop's
// action-aware sensing policy (action-to-sensing coupling).
TEST(Integration, ActionMagnitudeDrivesSensingRate) {
  core::ActionAwarePolicy policy(0.05, 1.0, 0.5);
  Rng rng(3);
  core::Observation obs;
  obs.data = {0.0};

  int calm = 0;
  for (int i = 0; i < 400; ++i) {
    policy.report_action(0.01);  // near-zero corrective action
    if (policy.should_sense(0.0, &obs, rng)) ++calm;
  }
  int stressed = 0;
  for (int i = 0; i < 400; ++i) {
    policy.report_action(1.0);  // saturated control
    if (policy.should_sense(0.0, &obs, rng)) ++stressed;
  }
  EXPECT_GT(stressed, 4 * std::max(1, calm));
}

// ---------------------------------------------------------------------
// Sec. VI: the flow network's prediction feeds DOTIE-style gating — fast
// flow regions carry most events.
TEST(Integration, EventDensityTracksMotionMagnitude) {
  Rng rng(4);
  const auto data = sim::make_flow_dataset(12, 16, 16, rng);
  double fast_events = 0.0, slow_events = 0.0;
  int fast_n = 0, slow_n = 0;
  for (const auto& s : data) {
    double mean_flow = 0.0;
    for (std::size_t i = 0; i < s.flow.u.size(); ++i)
      mean_flow += std::hypot(s.flow.u[i], s.flow.v[i]);
    mean_flow /= static_cast<double>(s.flow.u.size());
    if (mean_flow > 2.0) {
      fast_events += s.events.total_events();
      ++fast_n;
    } else if (mean_flow < 1.0) {
      slow_events += s.events.total_events();
      ++slow_n;
    }
  }
  if (fast_n > 0 && slow_n > 0) {
    EXPECT_GT(fast_events / fast_n, slow_events / slow_n);
  }
}

// ---------------------------------------------------------------------
// Sec. VII + core: coordinated sensing then federated training over the
// same fleet — the full multi-agent story in one flow.
TEST(Integration, SwarmCoordinationThenFederatedLearning) {
  Rng rng(5);
  const auto agents = core::make_agent_fleet(6, 40.0, 45.0, rng);
  const auto targets = core::make_target_field(30, 40.0, rng);
  const auto coord = core::coordinated_sensing(agents, targets);
  const auto ind = core::independent_sensing(agents, targets);
  ASSERT_EQ(coord.coverage(), ind.coverage());
  ASSERT_LT(coord.energy_j, ind.energy_j);

  // The same fleet now trains a shared model federatedly.
  const auto full = sim::make_gaussian_classes(360, 8, 4, 3.0, rng);
  sim::ClassificationDataset train, test;
  train.feature_dim = test.feature_dim = 8;
  train.num_classes = test.num_classes = 4;
  for (std::size_t i = 0; i < 240; ++i) {
    train.features.push_back(full.features[i]);
    train.labels.push_back(full.labels[i]);
  }
  for (std::size_t i = 240; i < 360; ++i) {
    test.features.push_back(full.features[i]);
    test.labels.push_back(full.labels[i]);
  }
  const auto shards = sim::dirichlet_partition(train.labels, 6, 4, 0.5, rng);
  const auto fleet = federated::make_heterogeneous_fleet(6, rng);
  federated::FlConfig cfg;
  cfg.rounds = 6;
  const auto res = federated::run_federated(
      federated::FlStrategy::kHaloFl, train, test, shards, fleet, cfg, rng);
  EXPECT_GT(res.final_accuracy, 0.6);
}

// ---------------------------------------------------------------------
// Batched execution engine end to end: a fleet of lidar reconstruction
// loops sharing ONE autoencoder through the cross-loop batching engine,
// half of them under injected sensor-fault chaos. The healthy members
// must ride through their neighbors' faults untouched — every loop
// reaches tick T, no healthy loop ever leaves NOMINAL, and nothing
// non-finite reaches an actuator.
namespace batched_fleet_e2e {

class OccupancySensor : public core::Sensor {
 public:
  explicit OccupancySensor(std::size_t numel) : numel_(numel) {}
  core::Observation sense(double now, Rng& rng) override {
    core::Observation obs;
    obs.data.resize(numel_);
    for (std::size_t i = 0; i < numel_; ++i)
      obs.data[i] = rng.bernoulli(0.2) ? 1.0 : 0.0;
    obs.timestamp = now;
    obs.energy_j = 1e-3;
    return obs;
  }

 private:
  std::size_t numel_;
};

class FiniteCheckingActuator : public core::Actuator {
 public:
  void actuate(const core::Action& action, Rng&) override {
    ++count;
    for (double v : action.data) all_finite = all_finite && std::isfinite(v);
  }
  long count = 0;
  bool all_finite = true;
};

}  // namespace batched_fleet_e2e

TEST(Integration, BatchedLidarFleetSurvivesChaos) {
  using namespace batched_fleet_e2e;
  lidar::AutoencoderConfig acfg;
  acfg.grid.nx = 8;
  acfg.grid.ny = 8;
  acfg.grid.nz = 2;
  acfg.c1 = 4;
  acfg.c2 = 4;
  const std::size_t numel = static_cast<std::size_t>(acfg.grid.nx) *
                            acfg.grid.ny * acfg.grid.nz;
  Rng wr(13);
  lidar::OccupancyAutoencoder ae(acfg, wr);
  lidar::BatchedReconstructionProcessor shared(ae, /*energy_per_call_j=*/1e-3);

  constexpr int kMembers = 8;  // members 0..3 healthy, 4..7 chaotic
  constexpr int kTicks = 30;
  struct Member {
    std::unique_ptr<OccupancySensor> sensor;
    std::unique_ptr<fault::FaultySensor> faulty;
    std::unique_ptr<core::BatchSlot> slot;
    std::unique_ptr<FiniteCheckingActuator> act;
    std::unique_ptr<core::PeriodicPolicy> policy;
    std::unique_ptr<core::SensingActionLoop> loop;
  };
  std::vector<Member> members(kMembers);

  core::BatchedFleetConfig bc;
  bc.gather = 4;
  core::BatchedFleet engine(shared, bc);
  core::LoopConfig lc;
  lc.dt = 0.05;
  lc.resilience.max_staleness_s = 0.2;
  lc.resilience.degrade_after = 2;
  lc.resilience.recover_after = 2;
  for (int m = 0; m < kMembers; ++m) {
    Member& mem = members[static_cast<std::size_t>(m)];
    mem.sensor = std::make_unique<OccupancySensor>(numel);
    core::Sensor* s = mem.sensor.get();
    if (m >= kMembers / 2) {
      mem.faulty = std::make_unique<fault::FaultySensor>(
          *mem.sensor, fault::FaultPlan::random_component_plan(
                           /*seed=*/900 + static_cast<std::uint64_t>(m),
                           /*horizon_s=*/kTicks * lc.dt, /*events=*/5,
                           /*mean_duration_s=*/0.3));
      s = mem.faulty.get();
    }
    mem.slot = std::make_unique<core::BatchSlot>(shared);
    mem.act = std::make_unique<FiniteCheckingActuator>();
    mem.policy = std::make_unique<core::PeriodicPolicy>(1);
    mem.loop = std::make_unique<core::SensingActionLoop>(
        *s, *mem.slot, *mem.act, *mem.policy, lc);
    core::FleetLoopConfig flc;
    flc.ticks = kTicks;
    engine.add(*mem.loop, *mem.slot, flc, /*seed=*/70 + m);
  }

  const core::FleetStats fs = engine.run();
  EXPECT_EQ(fs.executed, static_cast<long>(kMembers) * kTicks);
  EXPECT_GT(engine.batched_forwards(), 0);

  for (int m = 0; m < kMembers; ++m) {
    const Member& mem = members[static_cast<std::size_t>(m)];
    SCOPED_TRACE("member=" + std::to_string(m));
    EXPECT_EQ(mem.loop->metrics().ticks, kTicks);
    EXPECT_TRUE(mem.act->all_finite);  // nothing non-finite was actuated
    EXPECT_EQ(mem.loop->metrics().quarantined_actions, 0);
    if (m < kMembers / 2) {
      // Healthy members never stall: no degradation, every tick acted.
      EXPECT_EQ(mem.loop->state(), core::LoopState::kNominal);
      EXPECT_EQ(mem.loop->metrics().degraded_ticks, 0);
      EXPECT_EQ(mem.loop->metrics().safe_stop_ticks, 0);
      EXPECT_EQ(mem.act->count, kTicks);
    } else {
      // Chaotic members actually saw chaos (the plan injected faults)
      // yet still reached tick T without latching SAFE_STOP.
      EXPECT_GT(mem.faulty->faults_injected(), 0);
      EXPECT_NE(mem.loop->state(), core::LoopState::kSafeStop);
    }
  }
}

}  // namespace
}  // namespace s2a
