// Tests for the Koopman control stack: matrix inverse and LQR against
// hand-solved systems, spectral dynamics gradients and propagation,
// dynamics-model zoo behaviour, and agent training on cart-pole.
#include <gtest/gtest.h>

#include <cmath>

#include "koopman/agent.hpp"
#include "koopman/lqr.hpp"
#include "koopman/models.hpp"
#include "koopman/spectral.hpp"
#include "util/check.hpp"

namespace s2a::koopman {
namespace {

TEST(Invert, IdentityAndKnownMatrix) {
  nn::Tensor eye({2, 2}, {1, 0, 0, 1});
  const nn::Tensor inv_eye = invert(eye);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_NEAR(inv_eye[i], eye[i], 1e-12);

  // [[4, 7], [2, 6]]⁻¹ = 1/10 [[6, -7], [-2, 4]]
  nn::Tensor m({2, 2}, {4, 7, 2, 6});
  const nn::Tensor inv = invert(m);
  EXPECT_NEAR(inv[0], 0.6, 1e-12);
  EXPECT_NEAR(inv[1], -0.7, 1e-12);
  EXPECT_NEAR(inv[2], -0.2, 1e-12);
  EXPECT_NEAR(inv[3], 0.4, 1e-12);
}

TEST(Invert, SingularThrows) {
  nn::Tensor m({2, 2}, {1, 2, 2, 4});
  EXPECT_THROW(invert(m), CheckError);
}

TEST(Invert, ProductIsIdentityForRandomMatrix) {
  Rng rng(1);
  nn::Tensor m = nn::Tensor::randn({5, 5}, rng);
  for (int i = 0; i < 5; ++i) m.at(i, i) += 3.0;  // well-conditioned
  const nn::Tensor mi = invert(m);
  const nn::Tensor prod = nn::matmul(m, mi);
  for (int i = 0; i < 5; ++i)
    for (int j = 0; j < 5; ++j)
      EXPECT_NEAR(prod.at(i, j), i == j ? 1.0 : 0.0, 1e-9);
}

TEST(Lqr, ScalarSystemMatchesClosedForm) {
  // x' = a x + b u, cost q x² + r u². Scalar DARE:
  // p = q + a²p − (abp)²/(r + b²p); solve numerically and compare.
  const double a = 1.1, b = 0.5, q = 1.0, r = 0.2;
  const LqrResult res =
      solve_lqr(nn::Tensor({1, 1}, {a}), nn::Tensor({1, 1}, {b}),
                nn::Tensor({1, 1}, {q}), nn::Tensor({1, 1}, {r}));
  ASSERT_TRUE(res.converged);
  const double p = res.cost_to_go[0];
  const double k = res.gain[0];
  // Fixed-point identities.
  EXPECT_NEAR(k, a * b * p / (r + b * b * p), 1e-8);
  EXPECT_NEAR(p, q + k * k * r + (a - b * k) * (a - b * k) * p, 1e-6);
  // Closed loop must be stable.
  EXPECT_LT(std::abs(a - b * k), 1.0);
}

TEST(Lqr, StabilizesUnstableDoubleIntegrator) {
  // Discretized double integrator with dt = 0.1.
  const double dt = 0.1;
  nn::Tensor a({2, 2}, {1, dt, 0, 1});
  nn::Tensor b({2, 1}, {0, dt});
  nn::Tensor q({2, 2}, {1, 0, 0, 0.1});
  nn::Tensor r({1, 1}, {0.01});
  const LqrResult res = solve_lqr(a, b, q, r);
  ASSERT_TRUE(res.converged);

  // Simulate closed loop from x = (1, 0); must decay.
  double x0 = 1.0, x1 = 0.0;
  for (int t = 0; t < 300; ++t) {
    const double u = -(res.gain.at(0, 0) * x0 + res.gain.at(0, 1) * x1);
    const double nx0 = x0 + dt * x1;
    const double nx1 = x1 + dt * u;
    x0 = nx0;
    x1 = nx1;
  }
  EXPECT_LT(std::abs(x0), 1e-3);
  EXPECT_LT(std::abs(x1), 1e-3);
}

TEST(Spectral, PropagationMatchesAMatrix) {
  Rng rng(2);
  SpectralDynamics dyn(3, 1, 0.05, rng);
  nn::Tensor z = nn::Tensor::randn({1, 6}, rng);
  nn::Tensor a({1, 1}, {0.7});
  const nn::Tensor z_step = dyn.step(z, a);

  // Same result via dense realization: z' = A z + B a.
  const nn::Tensor amat = dyn.a_matrix();
  nn::Tensor z_dense = nn::matmul_nt(z, amat);  // (A zᵀ)ᵀ = z Aᵀ... careful
  // a_matrix is [2m, 2m] acting on column vectors: z' = A z. With z as a
  // row vector, z' = z Aᵀ = matmul_nt(z, A).
  nn::Tensor inject = nn::matmul_nt(a, dyn.b_matrix());
  z_dense.add_scaled(inject, 1.0);
  for (std::size_t i = 0; i < z_step.numel(); ++i)
    EXPECT_NEAR(z_step[i], z_dense[i], 1e-12);
}

TEST(Spectral, NegativeMuContracts) {
  Rng rng(3);
  SpectralDynamics dyn(2, 1, 0.1, rng);
  // Force strongly damped eigenvalues.
  auto params = dyn.params();  // [B weight, mu, omega]
  nn::Tensor* mu = params[params.size() - 2];
  for (std::size_t i = 0; i < mu->numel(); ++i) (*mu)[i] = -2.0;

  nn::Tensor z = nn::Tensor::randn({1, 4}, rng);
  nn::Tensor a({1, 1}, {0.0});
  const double before = z.squared_norm();
  for (int t = 0; t < 50; ++t) z = dyn.step(z, a);
  EXPECT_LT(z.squared_norm(), 1e-3 * before);
}

TEST(Spectral, GradientCheckAllParams) {
  Rng rng(4);
  SpectralDynamics dyn(2, 1, 0.1, rng);
  const nn::Tensor z = nn::Tensor::randn({2, 4}, rng);
  const nn::Tensor a = nn::Tensor::randn({2, 1}, rng);

  auto objective = [&]() {
    const nn::Tensor y = dyn.step(z, a);
    return 0.5 * y.squared_norm();
  };

  dyn.zero_grad();
  const nn::Tensor y = dyn.step(z, a);
  const nn::Tensor dz = dyn.backward(y);  // dL/dy = y

  const double eps = 1e-6;
  // Input gradient.
  nn::Tensor zm = z;
  for (std::size_t i = 0; i < z.numel(); ++i) {
    zm[i] = z[i] + eps;
    const nn::Tensor yp = dyn.step(zm, a);
    zm[i] = z[i] - eps;
    const nn::Tensor ym = dyn.step(zm, a);
    zm[i] = z[i];
    const double num =
        (0.5 * yp.squared_norm() - 0.5 * ym.squared_norm()) / (2 * eps);
    ASSERT_NEAR(dz[i], num, 1e-6);
  }
  // Parameter gradients (B, mu, omega).
  auto params = dyn.params();
  auto grads = dyn.grads();
  for (std::size_t pi = 0; pi < params.size(); ++pi) {
    nn::Tensor& p = *params[pi];
    for (std::size_t i = 0; i < p.numel(); ++i) {
      const double orig = p[i];
      p[i] = orig + eps;
      const double lp = objective();
      p[i] = orig - eps;
      const double lm = objective();
      p[i] = orig;
      ASSERT_NEAR((*grads[pi])[i], (lp - lm) / (2 * eps), 1e-5)
          << "param " << pi << " idx " << i;
    }
  }
}

TEST(Spectral, MacsLinearInModes) {
  Rng rng(5);
  SpectralDynamics small(4, 1, 0.1, rng), large(8, 1, 0.1, rng);
  EXPECT_EQ(small.macs_per_step(), 4u * 4 + 8u);
  EXPECT_EQ(large.macs_per_step(), 2u * small.macs_per_step());
}

TEST(ModelZoo, FactoryProducesAllKinds) {
  Rng rng(6);
  for (ModelKind kind : all_model_kinds()) {
    auto m = make_model(kind, 16, 1, 0.02, rng);
    ASSERT_NE(m, nullptr);
    EXPECT_EQ(m->kind(), kind);
    EXPECT_EQ(m->latent_dim(), 16);
    EXPECT_GT(m->param_count(), 0u);
  }
}

TEST(ModelZoo, SpectralHasFewestDynamicsParams) {
  Rng rng(7);
  auto spectral = make_model(ModelKind::kSpectralKoopman, 16, 1, 0.02, rng);
  for (ModelKind kind :
       {ModelKind::kDenseKoopman, ModelKind::kMlp, ModelKind::kTransformer,
        ModelKind::kRecurrent}) {
    auto other = make_model(kind, 16, 1, 0.02, rng);
    EXPECT_LT(spectral->param_count(), other->param_count())
        << model_kind_name(kind);
  }
}

TEST(ModelZoo, SpectralHasFewestPredictionMacs) {
  Rng rng(8);
  auto spectral = make_model(ModelKind::kSpectralKoopman, 16, 1, 0.02, rng);
  for (ModelKind kind :
       {ModelKind::kDenseKoopman, ModelKind::kMlp, ModelKind::kTransformer,
        ModelKind::kRecurrent}) {
    auto other = make_model(kind, 16, 1, 0.02, rng);
    EXPECT_LT(spectral->macs_per_step(), other->macs_per_step())
        << model_kind_name(kind);
  }
}

class ModelForwardTest : public ::testing::TestWithParam<ModelKind> {};

TEST_P(ModelForwardTest, ForwardShapeAndBackwardRuns) {
  Rng rng(9);
  auto m = make_model(GetParam(), 8, 1, 0.02, rng);
  RolloutContext ctx = m->initial_context();
  nn::Tensor z = nn::Tensor::randn({1, 8}, rng);
  nn::Tensor a({1, 1}, {0.5});
  const nn::Tensor zp = m->forward(z, a, ctx);
  EXPECT_EQ(zp.shape(), (std::vector<int>{1, 8}));
  const nn::Tensor dz = m->backward(zp);
  EXPECT_EQ(dz.shape(), (std::vector<int>{1, 8}));
  // Some parameter gradient must be nonzero.
  double gnorm = 0.0;
  for (auto* g : m->grads()) gnorm += g->squared_norm();
  EXPECT_GT(gnorm, 0.0);
}

TEST_P(ModelForwardTest, AdvanceKeepsContextUsable) {
  Rng rng(10);
  auto m = make_model(GetParam(), 8, 1, 0.02, rng);
  RolloutContext ctx = m->initial_context();
  nn::Tensor z = nn::Tensor::randn({1, 8}, rng);
  nn::Tensor a({1, 1}, {0.1});
  for (int t = 0; t < 6; ++t) {
    const nn::Tensor zp = m->forward(z, a, ctx);
    ctx = m->advance(std::move(ctx), z, a);
    z = zp;
    for (std::size_t i = 0; i < z.numel(); ++i)
      ASSERT_TRUE(std::isfinite(z[i]));
  }
}

INSTANTIATE_TEST_SUITE_P(AllModels, ModelForwardTest,
                         ::testing::ValuesIn(all_model_kinds()),
                         [](const ::testing::TestParamInfo<ModelKind>& info) {
                           std::string n = model_kind_name(info.param);
                           for (auto& c : n)
                             if (!isalnum(static_cast<unsigned char>(c)))
                               c = '_';
                           return n;
                         });

TEST(TransitionCollection, RespectsEpisodeStructure) {
  Rng rng(11);
  const auto data = collect_transitions(3, 40, 32, sim::CartPoleConfig{}, rng);
  ASSERT_FALSE(data.empty());
  EXPECT_TRUE(data[0].episode_start);
  int starts = 0;
  for (const auto& t : data) {
    EXPECT_EQ(t.obs.size(), 128u);  // 2 frames x 2 strips x 32 px
    EXPECT_EQ(t.next_obs.size(), 128u);
    EXPECT_GE(t.action, -1.0);
    EXPECT_LE(t.action, 1.0);
    if (t.episode_start) ++starts;
  }
  EXPECT_EQ(starts, 3);
}

TEST(AgentTraining, PredictionLossDecreases) {
  Rng rng(12);
  const auto data = collect_transitions(6, 60, 32, sim::CartPoleConfig{}, rng);
  AgentConfig cfg;
  cfg.train_epochs = 1;
  ControlAgent agent(ModelKind::kSpectralKoopman, cfg, rng);
  const double first = agent.train(data, rng);
  cfg.train_epochs = 12;
  Rng rng2(12);
  ControlAgent agent2(ModelKind::kSpectralKoopman, cfg, rng2);
  Rng rng3(13);
  const double later = agent2.train(data, rng3);
  EXPECT_LT(later, first);
}

TEST(AgentTraining, SpectralLqrBalancesBetterThanUntrainedBaseline) {
  Rng rng(14);
  const auto data = collect_transitions(12, 80, 32, sim::CartPoleConfig{}, rng);
  AgentConfig cfg;
  cfg.train_epochs = 20;
  ControlAgent agent(ModelKind::kSpectralKoopman, cfg, rng);
  agent.train(data, rng);
  ASSERT_FALSE(agent.lqr_gain().empty());

  Rng eval_rng(15);
  const double trained =
      evaluate_agent(agent, 0.0, 5, 200, sim::CartPoleConfig{}, eval_rng);

  // Uncontrolled cart-pole fails quickly (< ~60 steps on average).
  sim::CartPoleConfig env_cfg;
  Rng r2(16);
  double uncontrolled = 0.0;
  for (int ep = 0; ep < 5; ++ep) {
    sim::CartPole env(env_cfg);
    env.reset(r2);
    int t = 0;
    while (t < 200 && !env.failed()) {
      env.step(0.0, r2);
      ++t;
    }
    uncontrolled += t;
  }
  uncontrolled /= 5;
  EXPECT_GT(trained, uncontrolled);
}

TEST(AgentMacs, LqrControlFarCheaperThanMpc) {
  Rng rng(17);
  AgentConfig cfg;
  ControlAgent spectral(ModelKind::kSpectralKoopman, cfg, rng);
  ControlAgent mlp(ModelKind::kMlp, cfg, rng);
  EXPECT_LT(spectral.control_macs(), mlp.control_macs() / 10);
}

}  // namespace
}  // namespace s2a::koopman

namespace s2a::koopman {
namespace {

TEST(FrameStacking, ConcatenatesInOrder) {
  const std::vector<double> a{1, 2}, b{3, 4};
  EXPECT_EQ(stack_frames(a, b), (std::vector<double>{1, 2, 3, 4}));
}

TEST(TransitionCollection, ObsAreStackedConsecutiveFrames) {
  Rng rng(50);
  const auto data = collect_transitions(1, 10, 16, sim::CartPoleConfig{}, rng);
  ASSERT_GE(data.size(), 2u);
  // Within an episode, the second half of obs[t] equals the first half of
  // next_obs[t] (the shared current frame).
  const auto& t0 = data[0];
  const std::size_t half = t0.obs.size() / 2;
  for (std::size_t i = 0; i < half; ++i)
    EXPECT_DOUBLE_EQ(t0.obs[half + i], t0.next_obs[i]);
}

}  // namespace
}  // namespace s2a::koopman
