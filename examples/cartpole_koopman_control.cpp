// Action-to-sensing control with spectral Koopman representations
// (Sec. IV, RoboKoop): learn a linear latent embedding of visual
// cart-pole with learnable eigenvalues, control it with LQR, and compare
// the compute cost against an MPC baseline.
//
// Build & run:  ./build/examples/cartpole_koopman_control
#include <iostream>

#include "koopman/agent.hpp"
#include "util/table.hpp"

using namespace s2a;
using namespace s2a::koopman;

int main() {
  std::cout << "RoboKoop-style visual cart-pole control\n\n";
  sim::CartPoleConfig env_cfg;

  Rng data_rng(11);
  const auto data = collect_transitions(24, 100, 32, env_cfg, data_rng);
  std::cout << "Collected " << data.size()
            << " exploration transitions (2-frame retina stacks).\n";

  AgentConfig cfg;
  cfg.train_epochs = 30;
  cfg.action_cost = 0.5;
  cfg.state_cost = {0.3, 0.1, 10.0, 0.3};

  Rng model_rng(23);
  ControlAgent agent(ModelKind::kSpectralKoopman, cfg, model_rng);
  Rng train_rng(31);
  std::cout << "Training encoder + spectral dynamics (contrastive + "
               "prediction + decoding losses)...\n";
  const double loss = agent.train(data, train_rng);
  std::cout << "final latent prediction MSE: " << Table::num(loss, 5) << "\n";

  // Learned spectrum.
  auto& spectral = static_cast<SpectralKoopmanModel&>(agent.model()).spectral();
  std::cout << "\nLearned Koopman eigenvalues (mu + j*omega):\n";
  for (int i = 0; i < spectral.modes(); ++i)
    std::cout << "  mode " << i << ": " << Table::num(spectral.mu()[static_cast<std::size_t>(i)], 3)
              << " + j" << Table::num(spectral.omega()[static_cast<std::size_t>(i)], 3) << "\n";

  Table t("\nBalancing performance (mean steps, max 300)");
  t.set_header({"Disturbance prob.", "Mean balanced steps"});
  for (double p : {0.0, 0.1, 0.25}) {
    Rng eval_rng(99);
    t.add_row({Table::num(p, 2),
               Table::num(evaluate_agent(agent, p, 8, 300, env_cfg, eval_rng), 0)});
  }
  t.print(std::cout);

  Rng rng2(23);
  ControlAgent mpc_baseline(ModelKind::kMlp, cfg, rng2);
  std::cout << "\nCompute per control decision: LQR-on-Koopman "
            << agent.control_macs() << " MACs vs MLP+MPC "
            << mpc_baseline.control_macs() << " MACs ("
            << Table::num(static_cast<double>(mpc_baseline.control_macs()) /
                          agent.control_macs(), 0)
            << "x cheaper).\n";
  return 0;
}
