// Neuromorphic sensing-action loops (Sec. VI): train a hybrid SNN-ANN
// optical-flow network on simulated event-camera data, compare its energy
// against the full-ANN equivalent, and run the DOTIE spiking detector on
// the same event stream — no training, just LIF dynamics.
//
// Build & run:  ./build/examples/event_flow_neuromorphic
#include <iostream>

#include "neuro/dotie.hpp"
#include "neuro/flow_nets.hpp"
#include "util/table.hpp"

using namespace s2a;
using namespace s2a::neuro;

int main() {
  std::cout << "Neuromorphic optical flow + spiking object detection\n\n";
  Rng data_rng(42);
  const auto train = sim::make_flow_dataset(120, 16, 16, data_rng);
  const auto test = sim::make_flow_dataset(24, 16, 16, data_rng);

  double zero_aee = 0.0;
  for (const auto& s : test)
    zero_aee += sim::average_endpoint_error(sim::FlowField(16, 16), s.flow,
                                            &s.events);
  zero_aee /= static_cast<double>(test.size());

  FlowNetConfig cfg;
  Rng rng(7);
  auto snn = make_flow_network(FlowKind::kSpikeFlowNet, cfg, rng);
  auto ann = make_flow_network(FlowKind::kEvFlowNet, cfg, rng);
  std::cout << "Training Spike-FlowNet (LIF encoder, surrogate-gradient "
               "BPTT) and EvFlowNet...\n";
  Rng train_rng(9);
  for (int e = 0; e < 25; ++e) {
    snn->train_epoch(train, train_rng);
    ann->train_epoch(train, train_rng);
  }

  Table t("Optical flow on held-out event sequences");
  t.set_header({"Model", "AEE (px)", "Inference energy (nJ)"});
  t.add_row({"Zero-flow baseline", Table::num(zero_aee, 3), "0"});
  t.add_row({ann->name(), Table::num(ann->evaluate_aee(test), 3),
             Table::num(ann->mean_energy(test).joules() * 1e9, 1)});
  t.add_row({snn->name(), Table::num(snn->evaluate_aee(test), 3),
             Table::num(snn->mean_energy(test).joules() * 1e9, 1)});
  t.print(std::cout);

  // DOTIE: single-layer spiking detection of the fast-moving patch.
  std::cout << "\nDOTIE spiking detector (no training, LIF temporal "
               "filtering):\n";
  Rng scene_rng(21);
  sim::MovingScene scene(24, 24, 1, 0.2, 0.0, scene_rng);
  sim::EventCamera camera;
  std::vector<sim::EventFrame> frames;
  for (int t2 = 0; t2 < 6; ++t2)
    frames.push_back(camera.events_between(scene.render(t2), scene.render(t2 + 1)));
  DotieDetector dotie;
  const auto boxes = dotie.detect(frames);
  for (const auto& b : boxes)
    std::cout << "  box [" << b.x0 << "," << b.y0 << "]-[" << b.x1 << ","
              << b.y1 << "]  spikes=" << Table::num(b.spike_mass, 0) << "\n";
  std::cout << "(" << boxes.size()
            << " cluster(s); the slow-panning background stays below the "
               "spiking threshold)\n";
  return 0;
}
