// Quickstart: assemble a sensing-to-action loop from the core framework.
//
// A noisy scalar "pollution sensor" feeds a thresholding processor that
// drives a purifier actuator. An adaptive sensing policy keeps the duty
// cycle low while the air is clean and ramps sampling up during a surge —
// the motivating example of the paper's introduction.
//
// Build & run:  ./build/examples/quickstart
//
// With observability on, the run also writes a Chrome trace you can open
// at https://ui.perfetto.dev (see docs/OBSERVABILITY.md):
//   S2A_TRACE=quickstart_trace.json ./build/examples/quickstart
#include <iostream>

#include "core/loop.hpp"
#include "core/policies.hpp"
#include "obs/obs.hpp"
#include "util/table.hpp"

using namespace s2a;
using namespace s2a::core;

namespace {

// Environment + sensor: pollutant concentration with a surge at t ∈ [20, 35).
class PollutionSensor : public Sensor {
 public:
  Observation sense(double now, Rng& rng) override {
    Observation obs;
    const bool surge = now >= 20.0 && now < 35.0;
    obs.data = {(surge ? 8.0 : 0.5) + rng.normal(0.0, 0.2)};
    obs.timestamp = now;
    obs.energy_j = 5e-3;  // a high-fidelity chemical sample is expensive
    return obs;
  }
};

// Decision stage: purge rate proportional to concentration above target.
class PurifierController : public Processor {
 public:
  std::vector<double> process(const Observation& obs, Rng&) override {
    return {std::max(0.0, obs.data[0] - 1.0)};
  }
  double energy_per_call_j() const override { return 1e-4; }
};

class Purifier : public Actuator {
 public:
  void actuate(const Action& action, Rng&) override {
    total_purge += action.data[0];
  }
  double total_purge = 0.0;
};

}  // namespace

int main() {
  std::cout << "s2a quickstart: adaptive sensing-to-action loop\n\n";
  const bool obs_on = obs::init_from_env();

  PollutionSensor sensor;
  PurifierController controller;
  Purifier purifier;

  AdaptiveActivityConfig policy_cfg;
  policy_cfg.base_rate = 0.05;       // 5% duty cycle when idle
  policy_cfg.activity_saturation = 1.0;
  AdaptiveActivityPolicy policy(policy_cfg);

  LoopConfig loop_cfg;
  loop_cfg.dt = 0.1;  // 10 Hz tick
  SensingActionLoop loop(sensor, controller, purifier, policy, loop_cfg);

  Rng rng(1);
  loop.run(600, rng);  // 60 seconds

  const LoopMetrics& m = loop.metrics();
  Table t("Loop metrics after 60 s (pollutant surge at 20-35 s)");
  t.set_header({"Metric", "Value"});
  t.add_row({"Ticks", std::to_string(m.ticks)});
  t.add_row({"Sensor samples", std::to_string(m.senses)});
  t.add_row({"Duty cycle", Table::num(m.duty_cycle(), 3)});
  t.add_row({"Sensing energy", Table::num(m.sensing_energy_j * 1e3, 1) + " mJ"});
  t.add_row({"Mean action staleness", Table::num(m.mean_staleness_s(), 3) + " s"});
  t.add_row({"Total purge applied", Table::num(purifier.total_purge, 1)});
  t.print(std::cout);

  std::cout << "\nA static every-tick policy would have spent "
            << Table::num(600 * 5e-3 * 1e3, 0)
            << " mJ on sensing; the adaptive loop spent "
            << Table::num(m.sensing_energy_j * 1e3, 0)
            << " mJ while still reacting to the surge.\n";

  if (obs_on) {
    std::cout << "\n";
    obs::TableExporter().export_metrics(obs::registry().snapshot(),
                                        std::cout);
    if (obs::dump_trace())
      std::cout << "\nWrote Chrome trace to " << obs::trace_path()
                << " — open it at https://ui.perfetto.dev\n";
    else if (!obs::trace_path().empty())
      std::cerr << "warning: could not write Chrome trace to "
                << obs::trace_path() << "\n";
  }
  return 0;
}
