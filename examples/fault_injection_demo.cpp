// Fault injection & graceful degradation (docs/RESILIENCE.md): a
// sensing-to-action loop driven through a scripted gauntlet of sensor
// faults — dropout, NaN payloads, a latency spike, a stuck frame, and a
// spoofed-magnitude burst that a STARNet-style trust monitor vetoes.
// The loop's NOMINAL → DEGRADED → (recover | SAFE_STOP) state machine
// absorbs each fault; the demo prints the state timeline and the
// resilience counters, then re-runs a harsher plan that latches SAFE_STOP.
//
// Knobs:  S2A_FAULT_SEED=<n>  appends a random fault plan phase seeded
//         with n on top of the scripted windows (default: scripted only).
//
// Build & run:  ./build/examples/fault_injection_demo
#include <cmath>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "core/loop.hpp"
#include "core/policies.hpp"
#include "fault/fault.hpp"
#include "obs/exporter.hpp"
#include "obs/obs.hpp"
#include "util/table.hpp"

using namespace s2a;

namespace {

/// A well-behaved rangefinder — except during the spoof window, when an
/// adversarial emitter multiplies its readings far beyond anything the
/// clean distribution produces. The payload stays finite, so only the
/// trust monitor can catch it.
class RangeSensor : public core::Sensor {
 public:
  core::Observation sense(double now, Rng& rng) override {
    core::Observation obs;
    double v = 10.0 + 2.0 * std::sin(0.8 * now) + rng.normal(0.0, 0.05);
    if (now >= spoof_start && now < spoof_end) v *= 40.0;
    obs.data = {v};
    obs.timestamp = now;
    obs.energy_j = 2e-3;
    return obs;
  }
  double spoof_start = 0.0, spoof_end = 0.0;
};

class GainProcessor : public core::Processor {
 public:
  std::vector<double> process(const core::Observation& obs, Rng&) override {
    return {0.1 * obs.data[0]};
  }
};

class LoggingActuator : public core::Actuator {
 public:
  void actuate(const core::Action& action, Rng&) override {
    last = action.data[0];
    ++count;
  }
  double last = 0.0;
  long count = 0;
};

/// STARNet stand-in: trusts an observation iff its magnitude lies inside
/// the band the clean sensor was calibrated on.
class MagnitudeMonitor : public core::TrustMonitor {
 public:
  MagnitudeMonitor(double lo, double hi) : lo_(lo), hi_(hi) {}
  bool trusted(const core::Observation& obs, Rng&) override {
    for (double v : obs.data)
      if (v < lo_ || v > hi_) return false;
    return true;
  }

 private:
  double lo_, hi_;
};

const char* phase_label(double t) {
  if (t < 2.0) return "clean";
  if (t < 3.0) return "dropout";
  if (t < 4.0) return "clean";
  if (t < 5.0) return "nan payload";
  if (t < 6.0) return "clean";
  if (t < 7.0) return "latency spike";
  if (t < 8.0) return "clean";
  if (t < 9.0) return "stuck frame";
  if (t < 10.0) return "clean";
  if (t < 11.0) return "spoofed magnitude";
  return "clean tail";
}

core::LoopConfig demo_config() {
  core::LoopConfig cfg;
  cfg.dt = 0.1;
  cfg.sensing_latency = 0.02;
  cfg.resilience.max_sense_retries = 1;
  cfg.resilience.max_staleness_s = 0.5;
  cfg.resilience.fallback = core::FallbackPolicy::kHoldLastAction;
  cfg.resilience.degrade_after = 2;
  cfg.resilience.recover_after = 3;
  cfg.resilience.safe_stop_after = 25;
  return cfg;
}

}  // namespace

int main() {
  const bool obs_on = obs::init_from_env();
  std::cout << "Fault injection gauntlet on the sensing-to-action loop\n\n";

  // Scripted component faults, one window per failure mode.
  std::vector<fault::FaultEvent> events{
      {fault::FaultKind::kDropout, 2.0, 3.0, -1, 0.0},
      {fault::FaultKind::kNaNPayload, 4.0, 5.0, -1, 0.0},
      {fault::FaultKind::kLatencySpike, 6.0, 7.0, -1, 0.8},
      {fault::FaultKind::kStuckPayload, 8.0, 9.0, -1, 0.0},
  };
  if (const char* seed_env = std::getenv("S2A_FAULT_SEED")) {
    const auto extra = fault::FaultPlan::random_component_plan(
        std::strtoull(seed_env, nullptr, 10), 12.0, 3, 0.6);
    events.insert(events.end(), extra.events().begin(), extra.events().end());
    std::cout << "(S2A_FAULT_SEED=" << seed_env << ": added "
              << extra.events().size() << " random fault windows)\n\n";
  }

  RangeSensor inner;
  inner.spoof_start = 10.0;  // handled by the monitor, not the fault plan
  inner.spoof_end = 11.0;
  fault::FaultySensor sensor(inner, fault::FaultPlan(events));
  GainProcessor processor;
  LoggingActuator actuator;
  core::PeriodicPolicy policy(1);
  MagnitudeMonitor monitor(5.0, 15.0);
  core::SensingActionLoop loop(sensor, processor, actuator, policy,
                               demo_config(), &monitor);

  Rng rng(11);
  Table timeline("State timeline (dt = 0.1 s, 13 s horizon)");
  timeline.set_header({"t (s)", "phase", "transition"});
  core::LoopState prev = loop.state();
  for (int tick = 0; tick < 130; ++tick) {
    const double t = loop.now();
    loop.tick(rng);
    if (loop.state() != prev) {
      timeline.add_row({Table::num(t, 1), phase_label(t),
                        std::string(core::state_name(prev)) + " -> " +
                            core::state_name(loop.state())});
      prev = loop.state();
    }
  }
  timeline.print(std::cout);

  const core::LoopMetrics& m = loop.metrics();
  Table counters("Resilience counters after the gauntlet");
  counters.set_header({"counter", "value"});
  counters.add_row({"ticks", std::to_string(m.ticks)});
  counters.add_row({"actions actuated", std::to_string(actuator.count)});
  counters.add_row({"sensor faults (dropouts)", std::to_string(m.sensor_faults)});
  counters.add_row({"sense retries", std::to_string(m.sense_retries)});
  counters.add_row({"non-finite obs quarantined", std::to_string(m.quarantined)});
  counters.add_row({"monitor vetoes", std::to_string(m.vetoed)});
  counters.add_row({"staleness violations", std::to_string(m.staleness_violations)});
  counters.add_row({"fallback actions", std::to_string(m.fallback_actions)});
  counters.add_row({"degradations / recoveries",
                    std::to_string(m.degradations) + " / " +
                        std::to_string(m.recoveries)});
  counters.add_row({"ticks spent degraded", std::to_string(m.degraded_ticks)});
  counters.add_row({"safe stops", std::to_string(m.safe_stops)});
  std::cout << "\n";
  counters.print(std::cout);
  std::cout << "\nFinal state: " << core::state_name(loop.state())
            << " — every fault window was absorbed and the loop recovered;\n"
            << "no NaN ever reached the actuator (last command = "
            << Table::num(actuator.last, 3) << ").\n\n";

  // Second act: a sensor that dies for good. The hold-last fallback keeps
  // commands flowing only until the bad streak crosses safe_stop_after,
  // then the loop latches SAFE_STOP and refuses to actuate on fiction.
  std::cout << "Re-running with a permanently dead sensor...\n";
  RangeSensor inner2;
  fault::FaultySensor dead(
      inner2, fault::FaultPlan({{fault::FaultKind::kDropout, 3.0, 1e9}}));
  LoggingActuator actuator2;
  core::SensingActionLoop doomed(dead, processor, actuator2, policy,
                                 demo_config(), &monitor);
  Rng rng2(12);
  doomed.run(200, rng2);
  const core::LoopMetrics& dm = doomed.metrics();
  std::cout << "  state after 20 s: " << core::state_name(doomed.state())
            << " (degraded at tick "
            << (dm.ticks - dm.safe_stop_ticks - dm.degraded_ticks)
            << ", latched after " << dm.degraded_ticks << " degraded ticks; "
            << dm.safe_stop_ticks << " ticks parked in SAFE_STOP)\n";

  if (obs_on) {
    std::cout << "\n";
    obs::TableExporter().export_metrics(obs::registry().snapshot(),
                                        std::cout);
    if (obs::dump_trace())
      std::cout << "\nWrote Chrome trace to " << obs::trace_path()
                << " — open it at https://ui.perfetto.dev\n";
  }
  return 0;
}
