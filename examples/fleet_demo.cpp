// Fleet scheduler demo (docs/ARCHITECTURE.md "Pipelined engine & fleet
// scheduler"): a mixed fleet of sensing-to-action loops — most healthy,
// one wall-clock straggler, one with a permanently-failing sensor —
// scheduled EDF over the shared thread pool with per-tick deadlines.
// Prints the per-loop outcome table (executed/shed ticks, deadline
// misses, p50/p95 tick latency, final resilience state) and the
// aggregate throughput, then re-runs one healthy loop under the
// pipelined single-loop engine to show sense/commit overlap.
//
// Knobs:  S2A_THREADS=<n>  pool size (default: hardware concurrency)
//
// Build & run:  ./build/examples/fleet_demo
#include <chrono>
#include <cmath>
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "core/fleet.hpp"
#include "core/loop.hpp"
#include "core/pipeline.hpp"
#include "core/policies.hpp"
#include "fault/fault.hpp"
#include "util/thread_pool.hpp"

using namespace s2a;

namespace {

/// Rangefinder whose acquisition blocks for a bit — sensing latency is
/// I/O wait, which is exactly what the fleet and pipeline engines hide.
class BlockingRangeSensor : public core::Sensor {
 public:
  explicit BlockingRangeSensor(int acquire_us) : acquire_us_(acquire_us) {}
  core::Observation sense(double now, Rng& rng) override {
    std::this_thread::sleep_for(std::chrono::microseconds(acquire_us_));
    core::Observation obs;
    obs.data = {10.0 + 2.0 * std::sin(0.8 * now) + rng.normal(0.0, 0.05)};
    obs.timestamp = now;
    obs.energy_j = 2e-3;
    return obs;
  }

 private:
  int acquire_us_;
};

class GainProcessor : public core::Processor {
 public:
  std::vector<double> process(const core::Observation& obs, Rng&) override {
    return {0.1 * obs.data[0]};
  }
  double energy_per_call_j() const override { return 1e-4; }
};

/// The straggler: its perception stage has wedged and each call stalls
/// for tens of milliseconds of wall clock.
class WedgedProcessor : public core::Processor {
 public:
  std::vector<double> process(const core::Observation& obs, Rng&) override {
    std::this_thread::sleep_for(std::chrono::milliseconds(15));
    return obs.data;
  }
};

class NullActuator : public core::Actuator {
 public:
  void actuate(const core::Action&, Rng&) override { ++count; }
  long count = 0;
};

struct DemoLoop {
  std::unique_ptr<core::Sensor> sensor;
  std::unique_ptr<fault::FaultySensor> faulty;
  std::unique_ptr<core::Processor> proc;
  NullActuator act;
  core::PeriodicPolicy policy{1};
  std::unique_ptr<core::SensingActionLoop> loop;

  DemoLoop(std::unique_ptr<core::Sensor> s,
           std::unique_ptr<core::Processor> p, core::LoopConfig cfg = {},
           fault::FaultPlan plan = {})
      : sensor(std::move(s)), proc(std::move(p)) {
    core::Sensor* front = sensor.get();
    if (!plan.empty()) {
      faulty = std::make_unique<fault::FaultySensor>(*sensor, plan);
      front = faulty.get();
    }
    loop = std::make_unique<core::SensingActionLoop>(*front, *proc, act,
                                                     policy, cfg);
  }
};

}  // namespace

int main() {
  constexpr int kHealthy = 14, kTicks = 40, kAcquireUs = 300;

  std::vector<std::unique_ptr<DemoLoop>> loops;
  core::Fleet fleet(core::FleetConfig{/*batch=*/4});

  // Healthy members: blocking sensor + cheap processing, 100 ms/tick
  // deadline budget they comfortably make.
  for (int i = 0; i < kHealthy; ++i) {
    loops.push_back(std::make_unique<DemoLoop>(
        std::make_unique<BlockingRangeSensor>(kAcquireUs),
        std::make_unique<GainProcessor>()));
    fleet.add(*loops.back()->loop, {kTicks, /*deadline_s=*/0.1},
              /*seed=*/100 + i);
  }

  // The straggler: 15 ms stalls against a 1 ms/tick contract — EDF keeps
  // dispatching it first (earliest deadline) until admission control
  // sheds it rather than letting it starve the fleet.
  loops.push_back(std::make_unique<DemoLoop>(
      std::make_unique<BlockingRangeSensor>(kAcquireUs),
      std::make_unique<WedgedProcessor>()));
  const std::size_t straggler = fleet.add(
      *loops.back()->loop, {kTicks, /*deadline_s=*/1e-3, /*shed_slack=*/4.0},
      /*seed=*/900);

  // The doomed member: permanent sensor dropout; its own resilience
  // machine degrades and latches SAFE_STOP while the fleet keeps going.
  core::LoopConfig doomed_cfg;
  doomed_cfg.resilience.max_sense_retries = 0;
  doomed_cfg.resilience.degrade_after = 2;
  doomed_cfg.resilience.safe_stop_after = 3;
  loops.push_back(std::make_unique<DemoLoop>(
      std::make_unique<BlockingRangeSensor>(kAcquireUs),
      std::make_unique<GainProcessor>(), doomed_cfg,
      fault::FaultPlan({{fault::FaultKind::kDropout, 0.0, 1e9, -1, 0.0}})));
  const std::size_t doomed =
      fleet.add(*loops.back()->loop, {kTicks, /*deadline_s=*/0.1},
                /*seed=*/901);

  std::printf("Fleet: %zu loops on a %d-slot pool\n\n", fleet.size(),
              util::global_pool().size());
  core::FleetStats stats = fleet.run();

  std::printf("%-4s %-10s %9s %6s %7s %10s %10s  %s\n", "id", "kind",
              "executed", "shed", "misses", "p50 ms", "p95 ms", "state");
  for (std::size_t i = 0; i < stats.loops.size(); ++i) {
    const core::FleetLoopStats& ls = stats.loops[i];
    const char* kind = i == straggler ? "straggler"
                       : i == doomed  ? "doomed"
                                      : "healthy";
    std::printf("%-4zu %-10s %9ld %6ld %7ld %10.3f %10.3f  %s\n", i, kind,
                ls.executed, ls.shed, ls.deadline_misses, ls.p50_tick_ms,
                ls.p95_tick_ms, core::state_name(ls.final_state));
  }
  std::printf(
      "\naggregate: %ld ticks in %.3f s = %.0f ticks/s "
      "(%d workers, %ld dispatches, %ld shed, %ld misses)\n",
      stats.executed, stats.wall_s, stats.ticks_per_s, stats.workers,
      stats.dispatches, stats.shed, stats.deadline_misses);

  // Single-loop pipelining: same stack, synchronous vs overlapped.
  const auto wall_of = [](auto&& fn) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0)
        .count();
  };
  DemoLoop sync_loop(std::make_unique<BlockingRangeSensor>(kAcquireUs),
                     std::make_unique<GainProcessor>());
  core::PipelinedRunner sync_runner(*sync_loop.loop,
                                    {core::PipelineMode::kSynchronous, 4});
  const double sync_s = wall_of([&] { sync_runner.run(200, /*seed=*/7); });

  DemoLoop pipe_loop(std::make_unique<BlockingRangeSensor>(kAcquireUs),
                     std::make_unique<GainProcessor>());
  core::PipelinedRunner pipe_runner(*pipe_loop.loop,
                                    {core::PipelineMode::kPipelined, 4});
  const double pipe_s = wall_of([&] { pipe_runner.run(200, /*seed=*/7); });

  std::printf(
      "\npipelined single loop: sync %.0f ticks/s, pipelined %.0f ticks/s "
      "(%.2fx), metrics bit-exact: %s\n",
      200 / sync_s, 200 / pipe_s, sync_s / pipe_s,
      sync_loop.loop->metrics() == pipe_loop.loop->metrics() ? "yes" : "NO");
  return 0;
}
