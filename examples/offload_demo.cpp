// Uncertainty-gated edge↔cloud offload demo (docs/RESILIENCE.md
// "Resilient edge↔cloud offload"): one sensing-to-action loop whose
// Processor is a core::OffloadExecutor routing each tick's inference
// local-vs-remote over a fault-injected net::LinkSim. Low-confidence
// ticks buy the big cloud model when the link cooperates; when the link
// partitions mid-run the circuit breaker opens, local fallback carries
// the loop, and a HALF_OPEN probe re-admits remote traffic after the
// window — printed as a routing timeline plus the final executor,
// breaker, and loop counters.
//
// Knobs:
//   S2A_OFFLOAD=policy|local|remote  routing mode (default: policy)
//   S2A_LINK_LOSS=<p>                per-direction drop probability
//   S2A_LINK_LATENCY_MS=<ms>         one-way base latency (default: 2)
//   S2A_LINK_BW_BPS=<bytes/s>        uplink bandwidth (default: 1e7)
//   S2A_FAULT_SEED=<n>               replace the scripted partition with
//                                    a seeded random link fault plan
//
// Build & run:  ./build/examples/offload_demo
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/loop.hpp"
#include "core/offload.hpp"
#include "core/policies.hpp"
#include "fault/fault.hpp"
#include "net/circuit.hpp"
#include "net/link.hpp"
#include "obs/obs.hpp"

using namespace s2a;

namespace {

/// Rangefinder with mild noise; the gate, not the sensor, decides which
/// ticks are hard.
class WaveSensor : public core::Sensor {
 public:
  core::Observation sense(double now, Rng& rng) override {
    core::Observation obs;
    obs.data = {10.0 + 2.0 * std::sin(0.8 * now) + rng.normal(0.0, 0.05),
                std::cos(0.8 * now) + rng.normal(0.0, 0.05)};
    obs.timestamp = now;
    obs.energy_j = 1e-3;
    return obs;
  }
};

/// The small on-device model and the big cloud model: same interface,
/// different quality (scale) and modeled cost (OffloadConfig).
class ScaleModel : public core::Processor {
 public:
  explicit ScaleModel(double scale, double energy_j = 0.0)
      : scale_(scale), energy_j_(energy_j) {}
  std::vector<double> process(const core::Observation& obs, Rng&) override {
    std::vector<double> out = obs.data;
    for (double& v : out) v *= scale_;
    return out;
  }
  double energy_per_call_j() const override { return energy_j_; }

 private:
  double scale_;
  double energy_j_;
};

/// Scripted confidence: ~40% of ticks score above the regret gate, so
/// the routing decision is visible without training a monitor. Swap in
/// monitor::StarNetUncertainty to gate on real likelihood regret.
class ScriptedGate : public core::UncertaintySource {
 public:
  double score(const core::Observation& obs) override {
    return std::sin(40.0 * obs.timestamp) > 0.2 ? 2.0 : 0.0;
  }
};

class CountingActuator : public core::Actuator {
 public:
  void actuate(const core::Action&, Rng&) override { ++count_; }
  long count() const { return count_; }

 private:
  long count_ = 0;
};

double env_double(const char* name, double fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::strtod(v, nullptr) : fallback;
}

core::OffloadMode env_mode() {
  const char* v = std::getenv("S2A_OFFLOAD");
  if (v == nullptr) return core::OffloadMode::kPolicy;
  const std::string s(v);
  if (s == "local") return core::OffloadMode::kAlwaysLocal;
  if (s == "remote") return core::OffloadMode::kAlwaysRemote;
  return core::OffloadMode::kPolicy;
}

const char* loop_state_name(core::LoopState s) {
  switch (s) {
    case core::LoopState::kNominal: return "NOMINAL";
    case core::LoopState::kDegraded: return "DEGRADED";
    case core::LoopState::kSafeStop: return "SAFE_STOP";
  }
  return "?";
}

}  // namespace

int main() {
  obs::init_from_env();
  net::LinkConfig lc;
  lc.loss_prob = env_double("S2A_LINK_LOSS", 0.0);
  lc.base_latency_s = env_double("S2A_LINK_LATENCY_MS", 2.0) * 1e-3;
  lc.bandwidth_bytes_per_s = env_double("S2A_LINK_BW_BPS", 1.0e7);

  // Scripted outage by default: the link partitions for [3 s, 5 s) of
  // the 10 s run. S2A_FAULT_SEED replaces it with a random plan drawn
  // through fault::FaultPlan, the same generator the chaos tests sweep.
  net::LinkFaultSchedule sched(
      {{net::LinkFaultKind::kPartition, 3.0, 5.0, 0.0}});
  std::uint64_t seed = 21;
  if (const char* seed_env = std::getenv("S2A_FAULT_SEED")) {
    seed = std::strtoull(seed_env, nullptr, 10);
    sched = fault::FaultPlan::random_link_plan(seed, /*horizon_s=*/10.0,
                                               /*events=*/4,
                                               /*mean_duration_s=*/1.5)
                .link_schedule();
    std::printf("(S2A_FAULT_SEED=%llu: random link fault plan, %zu windows)\n",
                static_cast<unsigned long long>(seed),
                sched.windows().size());
  }

  core::OffloadConfig ocfg;
  ocfg.mode = env_mode();
  ocfg.deadline_s = 0.05;       // the loop's rate contract: dt
  ocfg.local_compute_s = 4e-3;  // small model: fast but coarse
  ocfg.remote_compute_s = 1e-3; // big model: fast compute, pays the link
  ocfg.tx_energy_j = 2e-3;
  ocfg.breaker.open_cooldown_s = 0.5;

  WaveSensor sensor;
  ScaleModel local(2.0, 5e-3);
  ScaleModel remote(10.0);
  ScriptedGate gate;
  CountingActuator actuator;
  core::PeriodicPolicy policy(1);
  core::LoopConfig lcfg;
  lcfg.resilience.degrade_after = 2;
  lcfg.resilience.recover_after = 2;
  lcfg.resilience.safe_stop_after = 0;  // fall back forever, never halt

  core::OffloadExecutor exec(local, remote, net::LinkSim(lc, sched, seed),
                             ocfg, &gate, seed);
  core::SensingActionLoop loop(sensor, exec, actuator, policy, lcfg);

  std::printf("Offload routing timeline (mode %s, dt 0.05 s, 10 s horizon)\n",
              core::offload_mode_name(ocfg.mode));
  std::printf("%6s %8s %8s %8s %10s %10s\n", "t(s)", "local", "remote",
              "blocked", "breaker", "loop");

  Rng rng(11);
  constexpr int kTicks = 200, kWindow = 25;
  long prev_local = 0, prev_remote = 0, prev_blocked = 0;
  for (int i = 0; i < kTicks; ++i) {
    loop.tick(rng);
    if ((i + 1) % kWindow == 0) {
      const core::OffloadMetrics& m = exec.metrics();
      const long blocked = m.breaker_blocked + m.cost_gated;
      std::printf("%6.2f %8ld %8ld %8ld %10s %10s\n", 0.05 * (i + 1),
                  m.local_served - prev_local, m.remote_served - prev_remote,
                  blocked - prev_blocked, breaker_state_name(exec.breaker().state()),
                  loop_state_name(loop.state()));
      prev_local = m.local_served;
      prev_remote = m.remote_served;
      prev_blocked = blocked;
    }
  }

  const core::OffloadMetrics& m = exec.metrics();
  const net::BreakerMetrics& b = exec.breaker().metrics();
  std::printf("\nExecutor: %ld requests | %ld local (%ld gated, %ld cost, "
              "%ld breaker) | %ld remote | %ld retries | %ld hedged "
              "(%ld local wins)\n",
              m.requests, m.local_served, m.gated_local, m.cost_gated,
              m.breaker_blocked, m.remote_served, m.retries, m.hedged,
              m.hedge_local_wins);
  std::printf("Link:     %ld attempts, %ld successes, %ld failures, "
              "%ld corrupt | mean serve %.2f ms | EMA rtt %.2f ms loss %.2f\n",
              m.remote_attempts, m.remote_successes, m.remote_failures,
              m.corrupt_responses,
              m.requests > 0 ? m.total_latency_s / m.requests * 1e3 : 0.0,
              exec.ema_rtt_s() * 1e3, exec.ema_loss());
  std::printf("Breaker:  %ld opens, %ld half-opens, %ld closes, %ld probes, "
              "%ld blocked (final %s)\n",
              b.opens, b.half_opens, b.closes, b.probes, b.blocked,
              breaker_state_name(exec.breaker().state()));
  std::printf("Loop:     %ld actions, %ld fallbacks, %ld quarantined, "
              "final %s\n",
              loop.metrics().actions, loop.metrics().fallback_actions,
              loop.metrics().quarantined_actions,
              loop_state_name(loop.state()));
  if (obs::dump_trace())
    std::printf("Wrote Chrome trace to %s\n", obs::trace_path().c_str());
  return 0;
}
