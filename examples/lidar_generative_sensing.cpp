// Generative sensing (Sec. III) end to end: pre-train the occupancy
// autoencoder with radial masking, then actively scan fresh scenes at
// <10% beam coverage and reconstruct the rest — "sense less, generate
// more".
//
// Build & run:  ./build/examples/lidar_generative_sensing
#include <iostream>

#include "lidar/pipeline.hpp"
#include "nn/serialize.hpp"
#include "sim/scene.hpp"
#include "util/table.hpp"

using namespace s2a;

int main() {
  std::cout << "Generative LiDAR sensing (R-MAE style)\n\n";
  Rng rng(11);

  sim::LidarConfig lidar_cfg;
  lidar_cfg.azimuth_steps = 180;
  lidar_cfg.elevation_steps = 8;

  lidar::AutoencoderConfig ae_cfg;
  ae_cfg.grid.nx = ae_cfg.grid.ny = 32;

  lidar::GenerativeSensingPipeline pipeline(lidar_cfg, ae_cfg,
                                            lidar::RadialMaskerConfig{}, rng);

  std::cout << "Pre-training the occupancy autoencoder ("
            << pipeline.autoencoder().param_count() << " parameters)...\n";
  const double loss = pipeline.pretrain(/*num_scenes=*/20, /*epochs=*/15,
                                        /*lr=*/3e-3, rng);
  std::cout << "final masked-reconstruction BCE: " << Table::num(loss, 4)
            << "\n\n";

  Table t("Active scan vs conventional scan on three fresh scenes");
  t.set_header({"Scene", "Coverage", "Scan energy", "Recon IoU",
                "Energy advantage"});
  for (int i = 0; i < 3; ++i) {
    const sim::Scene scene = sim::generate_scene(sim::SceneConfig{}, rng);
    const lidar::SensedScene active = pipeline.sense(scene, rng);
    const lidar::SensedScene full = pipeline.sense_conventional(scene, rng);
    t.add_row({std::to_string(i + 1),
               Table::num(100.0 * active.energy.coverage, 1) + "%",
               Table::num(active.energy.total_energy_j() * 1e6, 0) + " uJ",
               Table::num(active.reconstructed.iou(full.sensed), 3),
               Table::num(full.energy.total_energy_j() /
                              active.energy.total_energy_j(), 1) + "x"});
  }
  t.print(std::cout);

  std::cout << "\nThe loop senses ~9% of the beams, fires most pulses at "
               "short\nreach (cheap, per the R^4 law), and the decoder "
               "fills in the\nunseen occupancy.\n";

  // Deploy without retraining: persist the pre-trained weights and load
  // them into a fresh pipeline.
  const std::string weights = "rmae_weights.s2a";
  nn::save_params_file(pipeline.autoencoder().params(), weights);
  Rng rng2(999);
  lidar::GenerativeSensingPipeline fresh(lidar_cfg, ae_cfg,
                                         lidar::RadialMaskerConfig{}, rng2);
  nn::load_params_file(fresh.autoencoder().params(), weights);
  std::cout << "\nSaved pre-trained autoencoder to '" << weights
            << "' and reloaded it into a fresh pipeline (bit-exact).\n";
  return 0;
}
