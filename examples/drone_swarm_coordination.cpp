// Federated, multi-agent sensing-action loops (Sec. VII): a drone swarm
// covers a target field — first independently (every drone senses
// everything in range), then with coordinated assignment over shared
// coverage maps. A second stage runs heterogeneity-aware federated
// learning across the same fleet.
//
// Build & run:  ./build/examples/drone_swarm_coordination
#include <iostream>

#include "core/multi_agent.hpp"
#include "federated/fedavg.hpp"
#include "sim/dataset.hpp"
#include "util/table.hpp"

using namespace s2a;

int main() {
  std::cout << "Drone swarm: coordinated sensing + federated learning\n\n";
  Rng rng(8);

  // --- Stage 1: sensing-task coordination ------------------------------
  const auto swarm = core::make_agent_fleet(8, 50.0, 40.0, rng);
  const auto targets = core::make_target_field(50, 50.0, rng);
  const core::CoverageReport ind = core::independent_sensing(swarm, targets);
  const core::CoverageReport coord = core::coordinated_sensing(swarm, targets);

  Table t1("Sensing 50 targets with 8 drones");
  t1.set_header({"Mode", "Coverage", "Observations", "Redundant",
                 "Energy (mJ)"});
  t1.add_row({"Independent", Table::num(100 * ind.coverage(), 0) + "%",
              std::to_string(ind.observations),
              std::to_string(ind.redundant_observations),
              Table::num(ind.energy_j * 1e3, 1)});
  t1.add_row({"Coordinated", Table::num(100 * coord.coverage(), 0) + "%",
              std::to_string(coord.observations),
              std::to_string(coord.redundant_observations),
              Table::num(coord.energy_j * 1e3, 1)});
  t1.print(std::cout);
  std::cout << "Energy saving from coverage sharing: "
            << Table::num(ind.energy_j / coord.energy_j, 1) << "x\n\n";

  // --- Stage 2: heterogeneity-aware federated learning -----------------
  const auto full = sim::make_gaussian_classes(900, 16, 10, 3.0, rng);
  sim::ClassificationDataset train, test;
  train.feature_dim = test.feature_dim = 16;
  train.num_classes = test.num_classes = 10;
  for (std::size_t i = 0; i < 600; ++i) {
    train.features.push_back(full.features[i]);
    train.labels.push_back(full.labels[i]);
  }
  for (std::size_t i = 600; i < 900; ++i) {
    test.features.push_back(full.features[i]);
    test.labels.push_back(full.labels[i]);
  }
  const auto shards = sim::dirichlet_partition(train.labels, 8, 10, 0.4, rng);
  const auto fleet = federated::make_heterogeneous_fleet(8, rng);

  federated::FlConfig fl_cfg;
  fl_cfg.rounds = 10;
  Table t2("Federated learning across the (heterogeneous) swarm");
  t2.set_header({"Strategy", "Accuracy", "Energy (mJ)", "Round latency (ms)"});
  for (auto strategy : {federated::FlStrategy::kStaticFl,
                        federated::FlStrategy::kHaloFl}) {
    Rng run_rng(77);
    const auto res = federated::run_federated(strategy, train, test, shards,
                                              fleet, fl_cfg, run_rng);
    t2.add_row({federated::strategy_name(strategy),
                Table::num(100 * res.final_accuracy, 1) + "%",
                Table::num(res.total_energy_j * 1e3, 3),
                Table::num(res.total_latency_s / fl_cfg.rounds * 1e3, 2)});
  }
  t2.print(std::cout);

  std::cout << "\nWeak drones train at reduced precision (HaLo-FL) so the\n"
               "round deadline holds across the whole fleet.\n";
  return 0;
}
