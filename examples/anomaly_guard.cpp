// Reliability monitoring (Sec. V, STARNet): a sensing-to-action loop that
// streams LiDAR scans through a trained detector while STARNet watches
// the detector's feature embeddings. Mid-stream, the sensor develops
// crosstalk — the monitor flags the stream and the loop falls back to the
// camera channel instead of acting on corrupted geometry.
//
// Build & run:  ./build/examples/anomaly_guard
#include <iostream>

#include "lidar/detector.hpp"
#include "lidar/voxel_grid.hpp"
#include "monitor/fusion.hpp"
#include "monitor/starnet.hpp"
#include "nn/optimizer.hpp"
#include "sim/corruptions.hpp"
#include "util/table.hpp"

using namespace s2a;

int main() {
  std::cout << "STARNet anomaly guard on a streaming LiDAR loop\n\n";
  Rng rng(3);

  sim::LidarConfig lidar_cfg;
  lidar_cfg.azimuth_steps = 180;
  lidar_cfg.elevation_steps = 10;
  sim::LidarSimulator lidar(lidar_cfg);
  lidar::VoxelGridConfig grid_cfg;
  grid_cfg.nx = grid_cfg.ny = 32;
  sim::SceneConfig scene_cfg;
  scene_cfg.extent = 28.0;

  // Train a small detector on clean scenes.
  lidar::DetectorConfig det_cfg;
  det_cfg.grid = grid_cfg;
  lidar::BevDetector detector(det_cfg, rng);
  nn::Adam opt(2e-3);
  opt.attach(detector.params(), detector.grads());
  std::cout << "Training detector on 25 clean scenes...\n";
  for (int epoch = 0; epoch < 12; ++epoch) {
    Rng scene_rng(500);  // same scenes each epoch
    for (int i = 0; i < 25; ++i) {
      const sim::Scene scene = sim::generate_scene(scene_cfg, scene_rng);
      const sim::PointCloud pc = lidar.full_scan(scene, rng);
      const nn::Tensor grid = lidar::VoxelGrid::from_cloud(pc, grid_cfg).to_tensor();
      detector.train_step(grid, scene, opt);
    }
  }

  // Calibrate the monitor on *fresh* clean scenes so the trust threshold
  // reflects deployment-time embeddings, not memorized training scenes.
  std::vector<std::vector<double>> clean_embeddings;
  for (int i = 0; i < 40; ++i) {
    const sim::Scene scene = sim::generate_scene(scene_cfg, rng);
    const sim::PointCloud pc = lidar.full_scan(scene, rng);
    const nn::Tensor grid = lidar::VoxelGrid::from_cloud(pc, grid_cfg).to_tensor();
    clean_embeddings.push_back(detector.feature_embedding(grid));
  }

  // Fit the trust monitor on the clean embedding distribution.
  monitor::StarNetConfig sn_cfg;
  sn_cfg.vae.input_dim = detector.embedding_dim();
  monitor::StarNet starnet(sn_cfg, rng);
  starnet.fit(clean_embeddings, rng);
  std::cout << "STARNet fitted; trust threshold = "
            << Table::num(starnet.threshold(), 3) << "\n\n";

  // Stream: crosstalk develops from step 6 onward.
  Table t("Streaming loop (crosstalk begins at step 6)");
  t.set_header({"Step", "Condition", "Regret score", "Trusted?", "Acting on"});
  monitor::CameraDetectorConfig cam_cfg;
  for (int step = 0; step < 12; ++step) {
    const bool corrupted = step >= 6;
    const sim::Scene scene = sim::generate_scene(scene_cfg, rng);
    sim::PointCloud pc = lidar.full_scan(scene, rng);
    if (corrupted)
      pc = sim::apply_corruption(pc, sim::CorruptionType::kCrosstalk, 4,
                                 lidar_cfg, rng);
    const nn::Tensor grid = lidar::VoxelGrid::from_cloud(pc, grid_cfg).to_tensor();
    const auto embedding = detector.feature_embedding(grid);
    const double score = starnet.score(embedding, rng);
    const bool trusted = score <= starnet.threshold();

    const auto ldet = detector.detect(grid);
    const auto cdet = monitor::simulate_camera_detections(scene, 0, cam_cfg, rng);
    const auto fused = monitor::trust_gated_fuse(ldet, cdet, trusted);
    t.add_row({std::to_string(step), corrupted ? "crosstalk" : "clean",
               Table::num(score, 3), trusted ? "yes" : "NO",
               trusted ? "LiDAR+camera (" + std::to_string(fused.size()) + " dets)"
                       : "camera only (" + std::to_string(fused.size()) + " dets)"});
  }
  t.print(std::cout);

  std::cout << "\nWithout the monitor, the loop would keep acting on ghost\n"
               "returns; with it, corrupted steps are vetoed in real time.\n";
  return 0;
}
