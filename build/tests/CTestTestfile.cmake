# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/nn_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/lidar_test[1]_include.cmake")
include("/root/repo/build/tests/koopman_test[1]_include.cmake")
include("/root/repo/build/tests/monitor_test[1]_include.cmake")
include("/root/repo/build/tests/neuro_test[1]_include.cmake")
include("/root/repo/build/tests/federated_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
