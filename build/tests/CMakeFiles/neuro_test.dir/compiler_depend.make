# Empty compiler generated dependencies file for neuro_test.
# This may be replaced when dependencies are built.
