file(REMOVE_RECURSE
  "CMakeFiles/neuro_test.dir/neuro_test.cpp.o"
  "CMakeFiles/neuro_test.dir/neuro_test.cpp.o.d"
  "neuro_test"
  "neuro_test.pdb"
  "neuro_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/neuro_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
