file(REMOVE_RECURSE
  "CMakeFiles/koopman_test.dir/koopman_test.cpp.o"
  "CMakeFiles/koopman_test.dir/koopman_test.cpp.o.d"
  "koopman_test"
  "koopman_test.pdb"
  "koopman_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/koopman_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
