# Empty dependencies file for koopman_test.
# This may be replaced when dependencies are built.
