file(REMOVE_RECURSE
  "CMakeFiles/drone_swarm_coordination.dir/drone_swarm_coordination.cpp.o"
  "CMakeFiles/drone_swarm_coordination.dir/drone_swarm_coordination.cpp.o.d"
  "drone_swarm_coordination"
  "drone_swarm_coordination.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drone_swarm_coordination.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
