# Empty compiler generated dependencies file for drone_swarm_coordination.
# This may be replaced when dependencies are built.
