file(REMOVE_RECURSE
  "CMakeFiles/event_flow_neuromorphic.dir/event_flow_neuromorphic.cpp.o"
  "CMakeFiles/event_flow_neuromorphic.dir/event_flow_neuromorphic.cpp.o.d"
  "event_flow_neuromorphic"
  "event_flow_neuromorphic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/event_flow_neuromorphic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
