# Empty dependencies file for event_flow_neuromorphic.
# This may be replaced when dependencies are built.
