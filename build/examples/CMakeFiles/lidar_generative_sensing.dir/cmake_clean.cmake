file(REMOVE_RECURSE
  "CMakeFiles/lidar_generative_sensing.dir/lidar_generative_sensing.cpp.o"
  "CMakeFiles/lidar_generative_sensing.dir/lidar_generative_sensing.cpp.o.d"
  "lidar_generative_sensing"
  "lidar_generative_sensing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lidar_generative_sensing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
