# Empty compiler generated dependencies file for lidar_generative_sensing.
# This may be replaced when dependencies are built.
