# Empty dependencies file for cartpole_koopman_control.
# This may be replaced when dependencies are built.
