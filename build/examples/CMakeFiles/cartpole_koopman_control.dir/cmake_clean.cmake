file(REMOVE_RECURSE
  "CMakeFiles/cartpole_koopman_control.dir/cartpole_koopman_control.cpp.o"
  "CMakeFiles/cartpole_koopman_control.dir/cartpole_koopman_control.cpp.o.d"
  "cartpole_koopman_control"
  "cartpole_koopman_control.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cartpole_koopman_control.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
