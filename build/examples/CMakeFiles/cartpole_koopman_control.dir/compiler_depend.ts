# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for cartpole_koopman_control.
