file(REMOVE_RECURSE
  "CMakeFiles/anomaly_guard.dir/anomaly_guard.cpp.o"
  "CMakeFiles/anomaly_guard.dir/anomaly_guard.cpp.o.d"
  "anomaly_guard"
  "anomaly_guard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anomaly_guard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
