# Empty dependencies file for anomaly_guard.
# This may be replaced when dependencies are built.
