file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_optical_flow_aee.dir/bench_fig9_optical_flow_aee.cpp.o"
  "CMakeFiles/bench_fig9_optical_flow_aee.dir/bench_fig9_optical_flow_aee.cpp.o.d"
  "bench_fig9_optical_flow_aee"
  "bench_fig9_optical_flow_aee.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_optical_flow_aee.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
