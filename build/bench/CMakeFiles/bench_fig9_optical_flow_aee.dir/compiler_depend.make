# Empty compiler generated dependencies file for bench_fig9_optical_flow_aee.
# This may be replaced when dependencies are built.
