# Empty dependencies file for bench_fig7_starnet_reliability.
# This may be replaced when dependencies are built.
