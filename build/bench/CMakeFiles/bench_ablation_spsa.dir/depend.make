# Empty dependencies file for bench_ablation_spsa.
# This may be replaced when dependencies are built.
