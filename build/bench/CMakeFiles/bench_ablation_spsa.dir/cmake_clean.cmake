file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_spsa.dir/bench_ablation_spsa.cpp.o"
  "CMakeFiles/bench_ablation_spsa.dir/bench_ablation_spsa.cpp.o.d"
  "bench_ablation_spsa"
  "bench_ablation_spsa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_spsa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
