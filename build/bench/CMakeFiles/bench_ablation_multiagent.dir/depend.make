# Empty dependencies file for bench_ablation_multiagent.
# This may be replaced when dependencies are built.
