file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_multiagent.dir/bench_ablation_multiagent.cpp.o"
  "CMakeFiles/bench_ablation_multiagent.dir/bench_ablation_multiagent.cpp.o.d"
  "bench_ablation_multiagent"
  "bench_ablation_multiagent.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_multiagent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
