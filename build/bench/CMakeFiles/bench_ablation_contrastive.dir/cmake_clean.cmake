file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_contrastive.dir/bench_ablation_contrastive.cpp.o"
  "CMakeFiles/bench_ablation_contrastive.dir/bench_ablation_contrastive.cpp.o.d"
  "bench_ablation_contrastive"
  "bench_ablation_contrastive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_contrastive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
