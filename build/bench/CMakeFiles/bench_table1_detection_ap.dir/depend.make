# Empty dependencies file for bench_table1_detection_ap.
# This may be replaced when dependencies are built.
