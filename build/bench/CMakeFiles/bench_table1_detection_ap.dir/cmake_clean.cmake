file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_detection_ap.dir/bench_table1_detection_ap.cpp.o"
  "CMakeFiles/bench_table1_detection_ap.dir/bench_table1_detection_ap.cpp.o.d"
  "bench_table1_detection_ap"
  "bench_table1_detection_ap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_detection_ap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
