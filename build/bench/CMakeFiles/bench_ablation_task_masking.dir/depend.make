# Empty dependencies file for bench_ablation_task_masking.
# This may be replaced when dependencies are built.
