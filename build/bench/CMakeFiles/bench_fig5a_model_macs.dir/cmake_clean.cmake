file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5a_model_macs.dir/bench_fig5a_model_macs.cpp.o"
  "CMakeFiles/bench_fig5a_model_macs.dir/bench_fig5a_model_macs.cpp.o.d"
  "bench_fig5a_model_macs"
  "bench_fig5a_model_macs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5a_model_macs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
