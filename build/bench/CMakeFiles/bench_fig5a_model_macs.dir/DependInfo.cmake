
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig5a_model_macs.cpp" "bench/CMakeFiles/bench_fig5a_model_macs.dir/bench_fig5a_model_macs.cpp.o" "gcc" "bench/CMakeFiles/bench_fig5a_model_macs.dir/bench_fig5a_model_macs.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/koopman/CMakeFiles/s2a_koopman.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/s2a_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/s2a_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/s2a_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
