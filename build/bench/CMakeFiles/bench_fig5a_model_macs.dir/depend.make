# Empty dependencies file for bench_fig5a_model_macs.
# This may be replaced when dependencies are built.
