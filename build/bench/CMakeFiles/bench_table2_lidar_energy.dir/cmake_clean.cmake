file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_lidar_energy.dir/bench_table2_lidar_energy.cpp.o"
  "CMakeFiles/bench_table2_lidar_energy.dir/bench_table2_lidar_energy.cpp.o.d"
  "bench_table2_lidar_energy"
  "bench_table2_lidar_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_lidar_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
