file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_masking.dir/bench_ablation_masking.cpp.o"
  "CMakeFiles/bench_ablation_masking.dir/bench_ablation_masking.cpp.o.d"
  "bench_ablation_masking"
  "bench_ablation_masking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_masking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
