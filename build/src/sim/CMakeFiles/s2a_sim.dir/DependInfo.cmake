
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/cartpole.cpp" "src/sim/CMakeFiles/s2a_sim.dir/cartpole.cpp.o" "gcc" "src/sim/CMakeFiles/s2a_sim.dir/cartpole.cpp.o.d"
  "/root/repo/src/sim/corruptions.cpp" "src/sim/CMakeFiles/s2a_sim.dir/corruptions.cpp.o" "gcc" "src/sim/CMakeFiles/s2a_sim.dir/corruptions.cpp.o.d"
  "/root/repo/src/sim/dataset.cpp" "src/sim/CMakeFiles/s2a_sim.dir/dataset.cpp.o" "gcc" "src/sim/CMakeFiles/s2a_sim.dir/dataset.cpp.o.d"
  "/root/repo/src/sim/event_camera.cpp" "src/sim/CMakeFiles/s2a_sim.dir/event_camera.cpp.o" "gcc" "src/sim/CMakeFiles/s2a_sim.dir/event_camera.cpp.o.d"
  "/root/repo/src/sim/lidar_sim.cpp" "src/sim/CMakeFiles/s2a_sim.dir/lidar_sim.cpp.o" "gcc" "src/sim/CMakeFiles/s2a_sim.dir/lidar_sim.cpp.o.d"
  "/root/repo/src/sim/scene.cpp" "src/sim/CMakeFiles/s2a_sim.dir/scene.cpp.o" "gcc" "src/sim/CMakeFiles/s2a_sim.dir/scene.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/s2a_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
