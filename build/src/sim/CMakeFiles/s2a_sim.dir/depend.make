# Empty dependencies file for s2a_sim.
# This may be replaced when dependencies are built.
