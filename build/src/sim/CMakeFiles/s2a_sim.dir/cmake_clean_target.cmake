file(REMOVE_RECURSE
  "libs2a_sim.a"
)
