file(REMOVE_RECURSE
  "CMakeFiles/s2a_sim.dir/cartpole.cpp.o"
  "CMakeFiles/s2a_sim.dir/cartpole.cpp.o.d"
  "CMakeFiles/s2a_sim.dir/corruptions.cpp.o"
  "CMakeFiles/s2a_sim.dir/corruptions.cpp.o.d"
  "CMakeFiles/s2a_sim.dir/dataset.cpp.o"
  "CMakeFiles/s2a_sim.dir/dataset.cpp.o.d"
  "CMakeFiles/s2a_sim.dir/event_camera.cpp.o"
  "CMakeFiles/s2a_sim.dir/event_camera.cpp.o.d"
  "CMakeFiles/s2a_sim.dir/lidar_sim.cpp.o"
  "CMakeFiles/s2a_sim.dir/lidar_sim.cpp.o.d"
  "CMakeFiles/s2a_sim.dir/scene.cpp.o"
  "CMakeFiles/s2a_sim.dir/scene.cpp.o.d"
  "libs2a_sim.a"
  "libs2a_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s2a_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
