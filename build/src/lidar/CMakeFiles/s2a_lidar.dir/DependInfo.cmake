
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lidar/adaptive_masking.cpp" "src/lidar/CMakeFiles/s2a_lidar.dir/adaptive_masking.cpp.o" "gcc" "src/lidar/CMakeFiles/s2a_lidar.dir/adaptive_masking.cpp.o.d"
  "/root/repo/src/lidar/autoencoder.cpp" "src/lidar/CMakeFiles/s2a_lidar.dir/autoencoder.cpp.o" "gcc" "src/lidar/CMakeFiles/s2a_lidar.dir/autoencoder.cpp.o.d"
  "/root/repo/src/lidar/detector.cpp" "src/lidar/CMakeFiles/s2a_lidar.dir/detector.cpp.o" "gcc" "src/lidar/CMakeFiles/s2a_lidar.dir/detector.cpp.o.d"
  "/root/repo/src/lidar/energy.cpp" "src/lidar/CMakeFiles/s2a_lidar.dir/energy.cpp.o" "gcc" "src/lidar/CMakeFiles/s2a_lidar.dir/energy.cpp.o.d"
  "/root/repo/src/lidar/masking.cpp" "src/lidar/CMakeFiles/s2a_lidar.dir/masking.cpp.o" "gcc" "src/lidar/CMakeFiles/s2a_lidar.dir/masking.cpp.o.d"
  "/root/repo/src/lidar/pipeline.cpp" "src/lidar/CMakeFiles/s2a_lidar.dir/pipeline.cpp.o" "gcc" "src/lidar/CMakeFiles/s2a_lidar.dir/pipeline.cpp.o.d"
  "/root/repo/src/lidar/voxel_grid.cpp" "src/lidar/CMakeFiles/s2a_lidar.dir/voxel_grid.cpp.o" "gcc" "src/lidar/CMakeFiles/s2a_lidar.dir/voxel_grid.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/s2a_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/s2a_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/s2a_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
