# Empty compiler generated dependencies file for s2a_lidar.
# This may be replaced when dependencies are built.
