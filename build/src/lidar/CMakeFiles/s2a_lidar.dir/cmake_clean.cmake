file(REMOVE_RECURSE
  "CMakeFiles/s2a_lidar.dir/adaptive_masking.cpp.o"
  "CMakeFiles/s2a_lidar.dir/adaptive_masking.cpp.o.d"
  "CMakeFiles/s2a_lidar.dir/autoencoder.cpp.o"
  "CMakeFiles/s2a_lidar.dir/autoencoder.cpp.o.d"
  "CMakeFiles/s2a_lidar.dir/detector.cpp.o"
  "CMakeFiles/s2a_lidar.dir/detector.cpp.o.d"
  "CMakeFiles/s2a_lidar.dir/energy.cpp.o"
  "CMakeFiles/s2a_lidar.dir/energy.cpp.o.d"
  "CMakeFiles/s2a_lidar.dir/masking.cpp.o"
  "CMakeFiles/s2a_lidar.dir/masking.cpp.o.d"
  "CMakeFiles/s2a_lidar.dir/pipeline.cpp.o"
  "CMakeFiles/s2a_lidar.dir/pipeline.cpp.o.d"
  "CMakeFiles/s2a_lidar.dir/voxel_grid.cpp.o"
  "CMakeFiles/s2a_lidar.dir/voxel_grid.cpp.o.d"
  "libs2a_lidar.a"
  "libs2a_lidar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s2a_lidar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
