file(REMOVE_RECURSE
  "libs2a_lidar.a"
)
