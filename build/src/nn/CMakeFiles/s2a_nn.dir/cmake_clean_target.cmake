file(REMOVE_RECURSE
  "libs2a_nn.a"
)
