# Empty compiler generated dependencies file for s2a_nn.
# This may be replaced when dependencies are built.
