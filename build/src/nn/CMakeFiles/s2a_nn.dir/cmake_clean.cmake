file(REMOVE_RECURSE
  "CMakeFiles/s2a_nn.dir/activations.cpp.o"
  "CMakeFiles/s2a_nn.dir/activations.cpp.o.d"
  "CMakeFiles/s2a_nn.dir/attention.cpp.o"
  "CMakeFiles/s2a_nn.dir/attention.cpp.o.d"
  "CMakeFiles/s2a_nn.dir/conv2d.cpp.o"
  "CMakeFiles/s2a_nn.dir/conv2d.cpp.o.d"
  "CMakeFiles/s2a_nn.dir/dense.cpp.o"
  "CMakeFiles/s2a_nn.dir/dense.cpp.o.d"
  "CMakeFiles/s2a_nn.dir/gru.cpp.o"
  "CMakeFiles/s2a_nn.dir/gru.cpp.o.d"
  "CMakeFiles/s2a_nn.dir/loss.cpp.o"
  "CMakeFiles/s2a_nn.dir/loss.cpp.o.d"
  "CMakeFiles/s2a_nn.dir/optimizer.cpp.o"
  "CMakeFiles/s2a_nn.dir/optimizer.cpp.o.d"
  "CMakeFiles/s2a_nn.dir/sequential.cpp.o"
  "CMakeFiles/s2a_nn.dir/sequential.cpp.o.d"
  "CMakeFiles/s2a_nn.dir/serialize.cpp.o"
  "CMakeFiles/s2a_nn.dir/serialize.cpp.o.d"
  "CMakeFiles/s2a_nn.dir/tensor.cpp.o"
  "CMakeFiles/s2a_nn.dir/tensor.cpp.o.d"
  "libs2a_nn.a"
  "libs2a_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s2a_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
