
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/activations.cpp" "src/nn/CMakeFiles/s2a_nn.dir/activations.cpp.o" "gcc" "src/nn/CMakeFiles/s2a_nn.dir/activations.cpp.o.d"
  "/root/repo/src/nn/attention.cpp" "src/nn/CMakeFiles/s2a_nn.dir/attention.cpp.o" "gcc" "src/nn/CMakeFiles/s2a_nn.dir/attention.cpp.o.d"
  "/root/repo/src/nn/conv2d.cpp" "src/nn/CMakeFiles/s2a_nn.dir/conv2d.cpp.o" "gcc" "src/nn/CMakeFiles/s2a_nn.dir/conv2d.cpp.o.d"
  "/root/repo/src/nn/dense.cpp" "src/nn/CMakeFiles/s2a_nn.dir/dense.cpp.o" "gcc" "src/nn/CMakeFiles/s2a_nn.dir/dense.cpp.o.d"
  "/root/repo/src/nn/gru.cpp" "src/nn/CMakeFiles/s2a_nn.dir/gru.cpp.o" "gcc" "src/nn/CMakeFiles/s2a_nn.dir/gru.cpp.o.d"
  "/root/repo/src/nn/loss.cpp" "src/nn/CMakeFiles/s2a_nn.dir/loss.cpp.o" "gcc" "src/nn/CMakeFiles/s2a_nn.dir/loss.cpp.o.d"
  "/root/repo/src/nn/optimizer.cpp" "src/nn/CMakeFiles/s2a_nn.dir/optimizer.cpp.o" "gcc" "src/nn/CMakeFiles/s2a_nn.dir/optimizer.cpp.o.d"
  "/root/repo/src/nn/sequential.cpp" "src/nn/CMakeFiles/s2a_nn.dir/sequential.cpp.o" "gcc" "src/nn/CMakeFiles/s2a_nn.dir/sequential.cpp.o.d"
  "/root/repo/src/nn/serialize.cpp" "src/nn/CMakeFiles/s2a_nn.dir/serialize.cpp.o" "gcc" "src/nn/CMakeFiles/s2a_nn.dir/serialize.cpp.o.d"
  "/root/repo/src/nn/tensor.cpp" "src/nn/CMakeFiles/s2a_nn.dir/tensor.cpp.o" "gcc" "src/nn/CMakeFiles/s2a_nn.dir/tensor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/s2a_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
