file(REMOVE_RECURSE
  "libs2a_util.a"
)
