file(REMOVE_RECURSE
  "CMakeFiles/s2a_util.dir/geometry.cpp.o"
  "CMakeFiles/s2a_util.dir/geometry.cpp.o.d"
  "CMakeFiles/s2a_util.dir/rng.cpp.o"
  "CMakeFiles/s2a_util.dir/rng.cpp.o.d"
  "CMakeFiles/s2a_util.dir/stats.cpp.o"
  "CMakeFiles/s2a_util.dir/stats.cpp.o.d"
  "CMakeFiles/s2a_util.dir/table.cpp.o"
  "CMakeFiles/s2a_util.dir/table.cpp.o.d"
  "libs2a_util.a"
  "libs2a_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s2a_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
