# Empty compiler generated dependencies file for s2a_util.
# This may be replaced when dependencies are built.
