# Empty compiler generated dependencies file for s2a_monitor.
# This may be replaced when dependencies are built.
