file(REMOVE_RECURSE
  "CMakeFiles/s2a_monitor.dir/fusion.cpp.o"
  "CMakeFiles/s2a_monitor.dir/fusion.cpp.o.d"
  "CMakeFiles/s2a_monitor.dir/likelihood_regret.cpp.o"
  "CMakeFiles/s2a_monitor.dir/likelihood_regret.cpp.o.d"
  "CMakeFiles/s2a_monitor.dir/spsa.cpp.o"
  "CMakeFiles/s2a_monitor.dir/spsa.cpp.o.d"
  "CMakeFiles/s2a_monitor.dir/starnet.cpp.o"
  "CMakeFiles/s2a_monitor.dir/starnet.cpp.o.d"
  "CMakeFiles/s2a_monitor.dir/temporal.cpp.o"
  "CMakeFiles/s2a_monitor.dir/temporal.cpp.o.d"
  "CMakeFiles/s2a_monitor.dir/vae.cpp.o"
  "CMakeFiles/s2a_monitor.dir/vae.cpp.o.d"
  "libs2a_monitor.a"
  "libs2a_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s2a_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
