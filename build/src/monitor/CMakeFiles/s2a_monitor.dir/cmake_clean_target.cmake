file(REMOVE_RECURSE
  "libs2a_monitor.a"
)
