file(REMOVE_RECURSE
  "libs2a_koopman.a"
)
