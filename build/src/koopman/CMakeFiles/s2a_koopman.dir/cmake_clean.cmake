file(REMOVE_RECURSE
  "CMakeFiles/s2a_koopman.dir/agent.cpp.o"
  "CMakeFiles/s2a_koopman.dir/agent.cpp.o.d"
  "CMakeFiles/s2a_koopman.dir/lqr.cpp.o"
  "CMakeFiles/s2a_koopman.dir/lqr.cpp.o.d"
  "CMakeFiles/s2a_koopman.dir/models.cpp.o"
  "CMakeFiles/s2a_koopman.dir/models.cpp.o.d"
  "CMakeFiles/s2a_koopman.dir/spectral.cpp.o"
  "CMakeFiles/s2a_koopman.dir/spectral.cpp.o.d"
  "libs2a_koopman.a"
  "libs2a_koopman.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s2a_koopman.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
