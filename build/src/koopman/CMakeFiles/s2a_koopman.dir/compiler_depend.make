# Empty compiler generated dependencies file for s2a_koopman.
# This may be replaced when dependencies are built.
