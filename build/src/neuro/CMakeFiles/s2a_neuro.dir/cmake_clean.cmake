file(REMOVE_RECURSE
  "CMakeFiles/s2a_neuro.dir/dotie.cpp.o"
  "CMakeFiles/s2a_neuro.dir/dotie.cpp.o.d"
  "CMakeFiles/s2a_neuro.dir/flow_nets.cpp.o"
  "CMakeFiles/s2a_neuro.dir/flow_nets.cpp.o.d"
  "CMakeFiles/s2a_neuro.dir/spiking.cpp.o"
  "CMakeFiles/s2a_neuro.dir/spiking.cpp.o.d"
  "libs2a_neuro.a"
  "libs2a_neuro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s2a_neuro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
