file(REMOVE_RECURSE
  "libs2a_neuro.a"
)
