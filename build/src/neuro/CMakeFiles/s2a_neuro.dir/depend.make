# Empty dependencies file for s2a_neuro.
# This may be replaced when dependencies are built.
