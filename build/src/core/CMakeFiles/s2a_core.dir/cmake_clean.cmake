file(REMOVE_RECURSE
  "CMakeFiles/s2a_core.dir/hierarchical.cpp.o"
  "CMakeFiles/s2a_core.dir/hierarchical.cpp.o.d"
  "CMakeFiles/s2a_core.dir/loop.cpp.o"
  "CMakeFiles/s2a_core.dir/loop.cpp.o.d"
  "CMakeFiles/s2a_core.dir/multi_agent.cpp.o"
  "CMakeFiles/s2a_core.dir/multi_agent.cpp.o.d"
  "CMakeFiles/s2a_core.dir/policies.cpp.o"
  "CMakeFiles/s2a_core.dir/policies.cpp.o.d"
  "libs2a_core.a"
  "libs2a_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s2a_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
