# Empty dependencies file for s2a_core.
# This may be replaced when dependencies are built.
