
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/hierarchical.cpp" "src/core/CMakeFiles/s2a_core.dir/hierarchical.cpp.o" "gcc" "src/core/CMakeFiles/s2a_core.dir/hierarchical.cpp.o.d"
  "/root/repo/src/core/loop.cpp" "src/core/CMakeFiles/s2a_core.dir/loop.cpp.o" "gcc" "src/core/CMakeFiles/s2a_core.dir/loop.cpp.o.d"
  "/root/repo/src/core/multi_agent.cpp" "src/core/CMakeFiles/s2a_core.dir/multi_agent.cpp.o" "gcc" "src/core/CMakeFiles/s2a_core.dir/multi_agent.cpp.o.d"
  "/root/repo/src/core/policies.cpp" "src/core/CMakeFiles/s2a_core.dir/policies.cpp.o" "gcc" "src/core/CMakeFiles/s2a_core.dir/policies.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/s2a_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
