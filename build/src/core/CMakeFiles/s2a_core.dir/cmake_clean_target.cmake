file(REMOVE_RECURSE
  "libs2a_core.a"
)
