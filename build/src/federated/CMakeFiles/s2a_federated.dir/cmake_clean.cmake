file(REMOVE_RECURSE
  "CMakeFiles/s2a_federated.dir/fedavg.cpp.o"
  "CMakeFiles/s2a_federated.dir/fedavg.cpp.o.d"
  "CMakeFiles/s2a_federated.dir/hardware.cpp.o"
  "CMakeFiles/s2a_federated.dir/hardware.cpp.o.d"
  "CMakeFiles/s2a_federated.dir/speculative.cpp.o"
  "CMakeFiles/s2a_federated.dir/speculative.cpp.o.d"
  "libs2a_federated.a"
  "libs2a_federated.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s2a_federated.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
