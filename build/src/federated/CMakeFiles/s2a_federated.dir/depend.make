# Empty dependencies file for s2a_federated.
# This may be replaced when dependencies are built.
