file(REMOVE_RECURSE
  "libs2a_federated.a"
)
