// Ablation (Sec. VII): coordinated vs independent multi-agent sensing.
// Agents that share coverage maps assign each target to the cheapest able
// observer; independent agents all sense everything in range. Sweeps
// fleet density to show where coordination pays most — the conclusions
// section cites a threefold energy reduction for multi-agent loops.
#include <iostream>

#include "core/multi_agent.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace s2a;
using namespace s2a::core;

int main() {
  Rng rng(12);
  const double arena = 50.0;
  const int targets_n = 60;

  Table t("Coordinated vs independent multi-agent sensing "
          "(60 targets, 50 m arena, 40 m sensing range)");
  t.set_header({"Agents", "Coverage", "Indep. obs", "Coord. obs",
                "Indep. energy (mJ)", "Coord. energy (mJ)", "Energy saving"});

  for (int agents_n : {2, 4, 6, 8, 12, 16}) {
    RunningStat ind_obs, coord_obs, ind_e, coord_e, cov_i, cov_c;
    for (int trial = 0; trial < 20; ++trial) {
      const auto agents = make_agent_fleet(agents_n, arena, 40.0, rng);
      const auto targets = make_target_field(targets_n, arena, rng);
      const CoverageReport ind = independent_sensing(agents, targets);
      const CoverageReport coord = coordinated_sensing(agents, targets);
      ind_obs.add(ind.observations);
      coord_obs.add(coord.observations);
      ind_e.add(ind.energy_j);
      coord_e.add(coord.energy_j);
      cov_i.add(ind.coverage());
      cov_c.add(coord.coverage());
    }
    t.add_row({std::to_string(agents_n),
               Table::num(100.0 * cov_c.mean(), 0) + "%",
               Table::num(ind_obs.mean(), 0), Table::num(coord_obs.mean(), 0),
               Table::num(ind_e.mean() * 1e3, 1),
               Table::num(coord_e.mean() * 1e3, 1),
               Table::num(ind_e.mean() / coord_e.mean(), 1) + "x"});
  }
  t.print(std::cout);

  std::cout << "\nExpected: identical coverage at a fraction of the "
               "observations;\nthe energy advantage grows with fleet density "
               "(overlap), passing\nthe ~3x the paper's conclusions cite "
               "once a few agents overlap.\n";
  return 0;
}
