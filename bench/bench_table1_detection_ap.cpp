// Reproduces Table I: Average Precision of R-MAE pre-training against
// OccMAE- and ALSO-style baselines on two detector families
// (single-stage "SECOND-lite" and two-stage "PV-RCNN-lite"), on synthetic
// KITTI-like scenes.
//
// Paper reference (KITTI val, moderate, R40):
//   SECOND            79.08 / 44.52 / 64.49   (Car / Ped / Cyclist)
//   + OccMAE          79.12 / 45.35 / 63.27
//   + ALSO            78.98 / 45.33 / 66.53
//   + R-MAE           79.10 / 46.93 / 67.75
//   PV-RCNN           82.28 / 51.51 / 69.45
//   + OccMAE          82.43 / 48.13 / 71.51
//   + ALSO            82.52 / 52.63 / 70.20
//   + R-MAE           82.82 / 51.61 / 73.82
// Expected shape: pre-training helps small classes (Ped/Cyclist) most,
// R-MAE ≥ the other pre-training schemes there, Car ≈ saturated, and the
// two-stage detector beats the single-stage across the board.
#include <iostream>
#include <memory>

#include "detection_harness.hpp"
#include "util/table.hpp"

using namespace s2a;
using namespace s2a::bench;

namespace {

struct PretrainCondition {
  std::string name;
  std::unique_ptr<lidar::Masker> masker;  // null = train from scratch
  lidar::PretrainObjective objective = lidar::PretrainObjective::kOccupancyFull;
};

std::vector<PretrainCondition> make_conditions() {
  std::vector<PretrainCondition> out;
  out.push_back({"(scratch)", nullptr, {}});
  out.push_back({"+ OccMAE", std::make_unique<lidar::UniformMasker>(0.3, "OccMAE"),
                 lidar::PretrainObjective::kOccupancyFull});
  out.push_back({"+ ALSO", std::make_unique<lidar::SurfaceMasker>(),
                 lidar::PretrainObjective::kSurfaceWeighted});
  // Coverage matched to the OccMAE baseline (~30%) so the pre-training
  // rows differ only in masking *structure*; the aggressive <10% coverage
  // is the active-sensing (Table II) operating point, not the
  // pre-training one at this model scale.
  lidar::RadialMaskerConfig rmae;
  rmae.segment_keep_fraction = 0.5;
  rmae.in_segment_keep = 0.6;
  rmae.range_decay = 1.5;
  out.push_back({"+ R-MAE (Ours)", std::make_unique<lidar::RadialMasker>(rmae),
                 lidar::PretrainObjective::kOccupancyFull});
  return out;
}

}  // namespace

int main() {
  Rng rng(2025);

  sim::LidarConfig lidar_cfg;
  lidar_cfg.azimuth_steps = 360;
  lidar_cfg.elevation_steps = 14;
  sim::LidarSimulator lidar(lidar_cfg);

  lidar::VoxelGridConfig grid_cfg;
  grid_cfg.nx = grid_cfg.ny = 48;
  grid_cfg.extent = 30.0;

  sim::SceneConfig scene_cfg;
  scene_cfg.extent = 26.0;

  // Pre-training corpus (unlabeled) is ~4x the labelled fine-tuning set:
  // the low-label regime where self-supervised pre-training pays off.
  Rng data_rng(7);
  const auto pretrain_data =
      make_detection_dataset(50, lidar, grid_cfg, scene_cfg, data_rng);
  const auto train_data =
      make_detection_dataset(12, lidar, grid_cfg, scene_cfg, data_rng);
  const auto test_data =
      make_detection_dataset(40, lidar, grid_cfg, scene_cfg, data_rng);

  lidar::DetectorConfig det_cfg;
  det_cfg.grid = grid_cfg;

  lidar::AutoencoderConfig ae_cfg;
  ae_cfg.grid = grid_cfg;
  ae_cfg.c1 = det_cfg.c1;
  ae_cfg.c2 = det_cfg.c2;

  const int pretrain_epochs = 12;
  const int finetune_epochs = 20;

  Table table(
      "Table I: Average Precision (AP, %) on synthetic KITTI-like scenes");
  table.set_header({"Model", "Car", "Pedestrian", "Cyclist"});

  const int seeds = 5;
  for (const char* family : {"SECOND-lite", "PV-RCNN-lite"}) {
    const bool two_stage = std::string(family) == "PV-RCNN-lite";
    for (auto& cond : make_conditions()) {
      // Small-data pre-training effects are noisy; average over seeds so
      // rows reflect the condition rather than one initialization.
      std::array<double, 3> ap{};
      for (int seed = 0; seed < seeds; ++seed) {
        Rng model_rng(99 + static_cast<std::uint64_t>(seed) * 101);
        Rng pre_rng(55 + static_cast<std::uint64_t>(seed) * 17);

        std::unique_ptr<lidar::OccupancyAutoencoder> ae;
        if (cond.masker != nullptr) {
          ae = std::make_unique<lidar::OccupancyAutoencoder>(ae_cfg, model_rng);
          pretrain_autoencoder(*ae, pretrain_data, *cond.masker, cond.objective,
                               pretrain_epochs, 3e-3, pre_rng);
        }

        std::array<double, 3> run{};
        if (two_stage) {
          lidar::TwoStageDetector det(det_cfg, model_rng);
          if (ae) det.init_from_pretrained(*ae);
          run = train_and_eval_two_stage(det, train_data, test_data,
                                         finetune_epochs, 2e-3);
        } else {
          lidar::BevDetector det(det_cfg, model_rng);
          if (ae) det.init_from_pretrained(*ae);
          run = train_and_eval_single_stage(det, train_data, test_data,
                                            finetune_epochs, 2e-3);
        }
        for (int c = 0; c < 3; ++c) ap[static_cast<std::size_t>(c)] += run[static_cast<std::size_t>(c)] / seeds;
      }

      const std::string label =
          cond.masker == nullptr ? family : "  " + cond.name;
      table.add_row({label, Table::num(ap[0]), Table::num(ap[1]),
                     Table::num(ap[2])});
    }
  }

  table.print(std::cout);
  std::cout << "\nPaper shape check: pre-training should lift Pedestrian "
               "(the hard\nsmall class) most, with R-MAE among the strongest "
               "pre-training rows\nthere, and PV-RCNN-lite should dominate "
               "SECOND-lite. Differences\nbelow ~5 AP are seed noise even "
               "with 5-seed averaging — see\nEXPERIMENTS.md for the "
               "paper-vs-measured discussion.\n";
  return 0;
}
