// Ablation (Sec. V design choice): SPSA vs coordinate-wise finite
// differences for the likelihood-regret inner optimization. SPSA's
// function-evaluation count is dimension-independent (2–3 per iteration),
// which is why STARNet can run on low-power edge devices; this bench
// quantifies the quality-vs-evaluations trade.
#include <iostream>

#include "monitor/likelihood_regret.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace s2a;
using namespace s2a::monitor;

namespace {

std::vector<std::vector<double>> make_clean(int n, int dim, Rng& rng) {
  std::vector<std::vector<double>> data;
  for (int i = 0; i < n; ++i) {
    std::vector<double> x(static_cast<std::size_t>(dim));
    const double mode = rng.bernoulli(0.5) ? 1.0 : -1.0;
    for (int d = 0; d < dim; ++d)
      x[static_cast<std::size_t>(d)] =
          mode * (d % 2 == 0 ? 1.0 : -0.5) + rng.normal(0.0, 0.3);
    data.push_back(std::move(x));
  }
  return data;
}

std::vector<double> make_anomaly(int dim, Rng& rng) {
  std::vector<double> x(static_cast<std::size_t>(dim));
  for (auto& v : x) v = rng.normal(0.0, 3.0) + 4.0;
  return x;
}

}  // namespace

int main() {
  Rng rng(21);
  const int dim = 16;
  VaeConfig vcfg;
  vcfg.input_dim = dim;
  vcfg.hidden = 48;
  vcfg.latent_dim = 8;  // 16 posterior parameters to optimize
  Vae vae(vcfg, rng);
  const auto clean = make_clean(96, dim, rng);
  vae.fit(clean, 80, 16, 5e-3, rng);

  Table t("SPSA vs finite-difference likelihood regret "
          "(16-parameter posterior, AUC over 24 clean + 24 anomalous)");
  t.set_header({"Optimizer", "Iterations", "Func evals/sample", "AUC"});

  for (int iters : {10, 20, 40, 80}) {
    for (bool use_spsa : {true, false}) {
      RegretConfig cfg;
      cfg.optimizer = use_spsa ? RegretOptimizer::kSpsa
                               : RegretOptimizer::kFiniteDifference;
      cfg.spsa.iterations = iters;
      cfg.fd_iterations = iters;

      std::vector<double> scores;
      std::vector<int> labels;
      int evals = 0;
      Rng srng(33);
      for (int i = 0; i < 24; ++i) {
        const auto r = likelihood_regret(
            vae, clean[static_cast<std::size_t>(i)], cfg, srng);
        scores.push_back(r.regret);
        labels.push_back(0);
        evals += r.function_evaluations;
      }
      for (int i = 0; i < 24; ++i) {
        const auto r = likelihood_regret(vae, make_anomaly(dim, srng), cfg, srng);
        scores.push_back(r.regret);
        labels.push_back(1);
        evals += r.function_evaluations;
      }
      t.add_row({use_spsa ? "SPSA" : "finite-diff", std::to_string(iters),
                 std::to_string(evals / 48), Table::num(auc_roc(scores, labels), 3)});
    }
  }
  t.print(std::cout);

  std::cout << "\nExpected: SPSA reaches comparable AUC at an order of "
               "magnitude\nfewer function evaluations per sample — the "
               "edge-deployment argument of Sec. V.\n";
  return 0;
}
