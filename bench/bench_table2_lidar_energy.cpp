// Reproduces Table II: Conventional LiDAR vs the R-MAE generative-sensing
// framework — coverage, per-pulse energy, model size, FLOPs, and the
// per-scan energy split (sensing vs reconstruction overhead).
//
// Paper reference:
//   Scene Coverage          100%        <10%
//   Energy per Laser Pulse  50 µJ       5.5 µJ
//   Model Parameters        n/a         830 K
//   FLOPs per 360° Scan     none        335 M
//   Sensing Energy per Scan 72 mJ       792 µJ
//   Reconstruction Overhead n/a         7.1 mJ
//   (combined advantage ≈ 9.11×)
// Our model is far smaller than the paper's (the substrate is a 2-D BEV
// autoencoder), so absolute FLOPs/overhead are lower; coverage, pulse
// energy, and the >3× total-energy advantage are the quantities that must
// hold.
// After the table, the bench sweeps the energy/accuracy frontier: the
// same pretrained autoencoder is quantized to int8 (nn/quant.hpp) and
// the scenes are re-sensed under identical beam plans, producing
// (total energy, reconstruction IoU) points for the conventional, float,
// and int8 paths. The points are written to BENCH_frontier.json (or
// S2A_BENCH_FRONTIER=<path>) for the CI artifact.
#include <cstdlib>
#include <fstream>
#include <iostream>

#include "lidar/pipeline.hpp"
#include "nn/gemm.hpp"
#include "nn/quant.hpp"
#include "sim/scene.hpp"
#include "util/cpu_features.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace s2a;

int main() {
  Rng rng(42);

  // Paper-matched sensor: 72 mJ / 50 µJ = 1440 pulses per scan.
  sim::LidarConfig lidar_cfg;
  lidar_cfg.azimuth_steps = 180;
  lidar_cfg.elevation_steps = 8;
  lidar_cfg.full_pulse_energy_j = 50e-6;

  lidar::AutoencoderConfig ae_cfg;
  ae_cfg.grid.nx = ae_cfg.grid.ny = 32;

  lidar::GenerativeSensingPipeline pipe(lidar_cfg, ae_cfg,
                                        lidar::RadialMaskerConfig{}, rng);
  pipe.pretrain(/*num_scenes=*/16, /*epochs=*/12, /*lr=*/3e-3, rng);

  // Average the measured quantities over scenes.
  RunningStat conv_coverage, conv_pulse, conv_sense;
  RunningStat gen_coverage, gen_pulse, gen_sense, gen_recon, gen_iou;
  std::size_t model_params = 0, flops = 0;
  const int trials = 12;
  for (int i = 0; i < trials; ++i) {
    const sim::Scene scene = sim::generate_scene(sim::SceneConfig{}, rng);
    const auto conv = pipe.sense_conventional(scene, rng);
    const auto gen = pipe.sense(scene, rng);
    conv_coverage.add(conv.energy.coverage);
    conv_pulse.add(conv.energy.avg_pulse_energy_j);
    conv_sense.add(conv.energy.sensing_energy_j);
    gen_coverage.add(gen.energy.coverage);
    gen_pulse.add(gen.energy.avg_pulse_energy_j);
    gen_sense.add(gen.energy.sensing_energy_j);
    gen_recon.add(gen.energy.reconstruction_energy_j);
    gen_iou.add(gen.reconstructed.iou(conv.sensed));
    model_params = gen.energy.model_params;
    flops = gen.energy.flops_per_scan;
  }

  Table t("Table II: Conventional LiDAR vs R-MAE generative sensing "
          "(measured on the simulated substrate; paper values in brackets)");
  t.set_header({"Metric", "Conventional", "R-MAE (ours)", "Paper R-MAE"});
  t.add_row({"Scene Coverage",
             Table::num(100.0 * conv_coverage.mean(), 0) + "%",
             Table::num(100.0 * gen_coverage.mean(), 1) + "%", "<10%"});
  t.add_row({"Energy per Laser Pulse",
             Table::num(conv_pulse.mean() * 1e6, 1) + " uJ",
             Table::num(gen_pulse.mean() * 1e6, 1) + " uJ", "5.5 uJ"});
  t.add_row({"Model Parameters", "n/a", std::to_string(model_params),
             "830K"});
  t.add_row({"FLOPs per 360 Scan", "none",
             Table::num(static_cast<double>(flops) / 1e6, 2) + " M", "335 M"});
  t.add_row({"Sensing Energy per Scan",
             Table::num(conv_sense.mean() * 1e3, 1) + " mJ",
             Table::num(gen_sense.mean() * 1e6, 0) + " uJ", "792 uJ"});
  t.add_row({"Reconstruction Overhead", "n/a",
             Table::num(gen_recon.mean() * 1e6, 1) + " uJ", "7.1 mJ"});

  const double conv_total = conv_sense.mean();
  const double gen_total = gen_sense.mean() + gen_recon.mean();
  t.add_row({"Total Energy per Scan",
             Table::num(conv_total * 1e3, 1) + " mJ",
             Table::num(gen_total * 1e6, 0) + " uJ", "7.9 mJ"});
  t.print(std::cout);

  std::cout << "\nCombined energy advantage: " << Table::num(conv_total / gen_total, 2)
            << "x (paper: 9.11x)\n";
  std::cout << "Reconstruction occupancy IoU vs full scan: "
            << Table::num(gen_iou.mean(), 3) << "\n";

  // ---- Energy/accuracy frontier: float vs int8 inference ----
  //
  // Quantize the trained autoencoder and re-sense fresh scenes under
  // both reconstruction paths. Copying the Rng before each sense() gives
  // the float and int8 paths byte-identical beam plans and point clouds,
  // so the IoU delta is purely quantization error and the energy delta
  // is purely the fp32-MAC vs int8-MAC billing (kJoulesPerFlop vs
  // kJoulesPerInt8Mac).
  pipe.autoencoder().quantize();
  RunningStat conv_e, float_e, float_recon_e, float_f_iou;
  RunningStat int8_e, int8_recon_e, int8_f_iou;
  const int frontier_trials = 8;
  for (int i = 0; i < frontier_trials; ++i) {
    const sim::Scene scene = sim::generate_scene(sim::SceneConfig{}, rng);
    const auto conv = pipe.sense_conventional(scene, rng);
    // Pin each leg's backend explicitly (not kAuto) so an ambient
    // S2A_QUANT=1 can't collapse the float point onto the int8 one.
    nn::set_quant_backend(nn::QuantBackend::kFloat);
    Rng float_rng = rng;
    const auto fgen = pipe.sense(scene, float_rng);
    nn::set_quant_backend(nn::QuantBackend::kInt8);
    Rng int8_rng = rng;
    const auto qgen = pipe.sense(scene, int8_rng);
    nn::set_quant_backend(nn::QuantBackend::kAuto);
    rng = int8_rng;  // both paths consumed the same draws; advance once
    conv_e.add(conv.energy.total_energy_j());
    float_e.add(fgen.energy.total_energy_j());
    float_recon_e.add(fgen.energy.reconstruction_energy_j);
    float_f_iou.add(fgen.reconstructed.iou(conv.sensed));
    int8_e.add(qgen.energy.total_energy_j());
    int8_recon_e.add(qgen.energy.reconstruction_energy_j);
    int8_f_iou.add(qgen.reconstructed.iou(conv.sensed));
  }

  std::cout << "\nEnergy/accuracy frontier (mean over " << frontier_trials
            << " scenes; IoU vs full scan):\n";
  std::cout << "  conventional  total " << Table::num(conv_e.mean() * 1e3, 2)
            << " mJ  IoU 1.000\n";
  std::cout << "  float         total " << Table::num(float_e.mean() * 1e6, 1)
            << " uJ  recon " << Table::num(float_recon_e.mean() * 1e6, 2)
            << " uJ  IoU " << Table::num(float_f_iou.mean(), 3) << "\n";
  std::cout << "  int8          total " << Table::num(int8_e.mean() * 1e6, 1)
            << " uJ  recon " << Table::num(int8_recon_e.mean() * 1e6, 2)
            << " uJ  IoU " << Table::num(int8_f_iou.mean(), 3) << "\n";

  const char* out_path = std::getenv("S2A_BENCH_FRONTIER");
  if (out_path == nullptr) out_path = "BENCH_frontier.json";
  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "cannot open " << out_path << " for writing\n";
    return 1;
  }
  out << "{\n  \"cpu\": \"" << util::cpu_feature_string()
      << "\",\n  \"simd\": \""
      << util::simd_isa_name(util::active_simd_isa())
      << "\",\n  \"trials\": " << frontier_trials
      << ",\n  \"joules_per_flop\": " << lidar::kJoulesPerFlop
      << ",\n  \"joules_per_int8_mac\": " << lidar::kJoulesPerInt8Mac
      << ",\n  \"points\": [\n"
      << "    {\"path\": \"conventional\", \"total_energy_j\": "
      << conv_e.mean() << ", \"recon_energy_j\": 0, \"iou\": 1.0},\n"
      << "    {\"path\": \"float\", \"total_energy_j\": " << float_e.mean()
      << ", \"recon_energy_j\": " << float_recon_e.mean()
      << ", \"iou\": " << float_f_iou.mean() << "},\n"
      << "    {\"path\": \"int8\", \"total_energy_j\": " << int8_e.mean()
      << ", \"recon_energy_j\": " << int8_recon_e.mean()
      << ", \"iou\": " << int8_f_iou.mean() << "}\n  ]\n}\n";
  std::cout << "Wrote frontier report to " << out_path << "\n";
  return 0;
}
