// Reproduces Fig. 5(a): computational load (MAC operations) of the
// dynamical-model zoo for prediction and for a full control decision.
//
// Paper shape: the spectral Koopman model needs the fewest MACs of
// {MLP, dense Koopman, Transformer, recurrent, spectral Koopman} for both
// control and prediction — its dynamics are O(m) in the number of modes,
// and LQR control is a precomputed gain instead of sampling-based MPC.
//
// The energy columns convert each model's control-decision MACs through
// the same analytic constants as the Table II bench: fp32 inference at
// 2 FLOPs/MAC x kJoulesPerFlop, int8 inference at kJoulesPerInt8Mac
// (the quantized path of nn/quant.hpp).
#include <iostream>

#include "koopman/agent.hpp"
#include "lidar/energy.hpp"
#include "util/table.hpp"

using namespace s2a;
using namespace s2a::koopman;

int main() {
  Rng rng(7);
  AgentConfig cfg;  // latent 16, retina 32, MPC 48×8 for baselines

  Table t("Fig. 5a: MACs per one-step prediction and per control decision "
          "(latent dim 16, MPC 48 samples x 8 horizon for non-LQR models)");
  t.set_header({"Model", "Prediction MACs", "Control MACs", "Dynamics params",
                "Control uJ (fp32)", "Control uJ (int8)"});

  std::size_t spectral_pred = 0, spectral_ctrl = 0;
  for (ModelKind kind : all_model_kinds()) {
    ControlAgent agent(kind, cfg, rng);
    const std::size_t pred = agent.prediction_macs();
    const std::size_t ctrl = agent.control_macs();
    std::size_t dyn_params = 0;
    for (auto* p : agent.model().params()) dyn_params += p->numel();
    if (kind == ModelKind::kSpectralKoopman) {
      spectral_pred = pred;
      spectral_ctrl = ctrl;
    }
    const double fp32_uj =
        2.0 * static_cast<double>(ctrl) * lidar::kJoulesPerFlop * 1e6;
    const double int8_uj =
        static_cast<double>(ctrl) * lidar::kJoulesPerInt8Mac * 1e6;
    t.add_row({model_kind_name(kind), std::to_string(pred),
               std::to_string(ctrl), std::to_string(dyn_params),
               Table::num(fp32_uj, 3), Table::num(int8_uj, 3)});
  }
  t.print(std::cout);

  std::cout << "\nAdvantage of spectral Koopman (paper: fewest MACs for "
               "control and prediction):\n";
  Rng rng2(7);
  for (ModelKind kind : all_model_kinds()) {
    if (kind == ModelKind::kSpectralKoopman) continue;
    ControlAgent agent(kind, cfg, rng2);
    std::cout << "  vs " << model_kind_name(kind) << ": prediction "
              << Table::num(static_cast<double>(agent.prediction_macs()) /
                            spectral_pred, 1)
              << "x, control "
              << Table::num(static_cast<double>(agent.control_macs()) /
                            spectral_ctrl, 1)
              << "x\n";
  }
  return 0;
}
