// Reproduces Fig. 9: optical-flow AEE on simulated event-camera data.
//  Left panel — AEE of EvFlowNet vs Spike-FlowNet vs Fusion-FlowNet, with
//  parameter counts and inference energy. Paper shape: Fusion-FlowNet has
//  the lowest error (~40% lower than EV-FlowNet with ~half the parameters
//  and 1.87× lower energy); Spike-FlowNet beats EV-FlowNet at 1.21× lower
//  energy.
//  Right panel — AEE vs model size for Adaptive-SpikeNet vs the
//  corresponding full-ANN. Paper shape: the learnable-dynamics SNN tracks
//  or beats the ANN at every size (~20% lower AEE) with ~10× less energy.
#include <iostream>

#include "neuro/flow_nets.hpp"
#include "util/table.hpp"

using namespace s2a;
using namespace s2a::neuro;

namespace {

struct TrainedResult {
  double aee = 0.0;
  std::size_t params = 0;
  EnergyBreakdown energy;
};

TrainedResult train_and_eval(FlowKind kind, const FlowNetConfig& cfg,
                             const std::vector<sim::FlowSample>& train,
                             const std::vector<sim::FlowSample>& test,
                             int epochs) {
  Rng rng(404);
  auto net = make_flow_network(kind, cfg, rng);
  Rng train_rng(505);
  for (int e = 0; e < epochs; ++e) net->train_epoch(train, train_rng);
  TrainedResult r;
  r.aee = net->evaluate_aee(test);
  r.params = net->param_count();
  r.energy = net->mean_energy(test);
  return r;
}

}  // namespace

int main() {
  Rng data_rng(99);
  const int w = 16, h = 16;
  const auto train = sim::make_flow_dataset(180, w, h, data_rng);
  const auto test = sim::make_flow_dataset(36, w, h, data_rng);
  const int epochs = 30;

  // Zero-flow baseline gives the scale of the task.
  double zero_aee = 0.0;
  for (const auto& s : test)
    zero_aee += sim::average_endpoint_error(sim::FlowField(w, h), s.flow,
                                            &s.events);
  zero_aee /= static_cast<double>(test.size());

  FlowNetConfig cfg;
  cfg.width = w;
  cfg.height = h;
  cfg.base_channels = 8;
  cfg.time_bins = 4;

  Table left("Fig. 9 (left): AEE / parameters / inference energy on "
             "simulated MVSEC-like event data");
  left.set_header({"Model", "AEE (px)", "Params", "Energy (nJ)",
                   "Energy vs ANN"});
  left.add_row({"Zero-flow baseline", Table::num(zero_aee, 3), "0", "0", "-"});

  double ann_energy = 0.0;
  for (FlowKind kind : {FlowKind::kEvFlowNet, FlowKind::kSpikeFlowNet,
                        FlowKind::kFusionFlowNet}) {
    const TrainedResult r = train_and_eval(kind, cfg, train, test, epochs);
    const double nj = r.energy.joules() * 1e9;
    if (kind == FlowKind::kEvFlowNet) ann_energy = nj;
    left.add_row({flow_kind_name(kind), Table::num(r.aee, 3),
                  std::to_string(r.params), Table::num(nj, 1),
                  kind == FlowKind::kEvFlowNet
                      ? "1.00x"
                      : Table::num(ann_energy / nj, 2) + "x lower"});
  }
  left.print(std::cout);
  std::cout << "\n";

  Table right("Fig. 9 (right): AEE vs model size — Adaptive-SpikeNet vs "
              "full-ANN of the same backbone");
  right.set_header({"Base channels", "ANN AEE", "SNN AEE", "ANN nJ", "SNN nJ",
                    "Energy ratio"});
  for (int c : {4, 8, 12}) {
    FlowNetConfig scfg = cfg;
    scfg.base_channels = c;
    const TrainedResult ann =
        train_and_eval(FlowKind::kEvFlowNet, scfg, train, test, epochs);
    const TrainedResult snn =
        train_and_eval(FlowKind::kAdaptiveSpikeNet, scfg, train, test, epochs);
    right.add_row({std::to_string(c), Table::num(ann.aee, 3),
                   Table::num(snn.aee, 3),
                   Table::num(ann.energy.joules() * 1e9, 1),
                   Table::num(snn.energy.joules() * 1e9, 1),
                   Table::num(ann.energy.joules() / snn.energy.joules(), 1) +
                       "x"});
  }
  right.print(std::cout);

  std::cout << "\nPaper shape check: fusion lowest AEE; spiking encoders cut\n"
               "energy well below the ANN at comparable accuracy; the\n"
               "learnable-dynamics SNN holds accuracy across sizes.\n";
  return 0;
}
