// Ablation (Sec. IV design choice): RoboKoop's contrastive spectral
// Koopman encoder (Fig. 4) vs the same architecture trained without the
// InfoNCE term. The contrastive loss regularizes the visual embedding
// toward augmentation invariance, which shows up as control robustness
// under disturbances rather than as one-step prediction loss.
#include <iostream>

#include "koopman/agent.hpp"
#include "util/table.hpp"

using namespace s2a;
using namespace s2a::koopman;

int main() {
  sim::CartPoleConfig env_cfg;
  env_cfg.disturb_min = 4.0;
  env_cfg.disturb_max = 10.0;

  Rng data_rng(11);
  const auto data = collect_transitions(24, 100, 32, env_cfg, data_rng);

  Table t("Spectral Koopman agent with vs without the contrastive loss "
          "(mean balanced steps, max 150, 8 episodes)");
  t.set_header({"Contrastive weight", "Pred. loss", "p=0.00", "p=0.15",
                "p=0.25"});

  for (double w : {0.0, 0.1, 0.2, 0.4}) {
    AgentConfig cfg;
    cfg.train_epochs = 30;
    cfg.action_cost = 0.5;
    cfg.state_cost = {0.3, 0.1, 10.0, 0.3};
    cfg.contrastive_weight = w;

    Rng model_rng(23);
    ControlAgent agent(ModelKind::kSpectralKoopman, cfg, model_rng);
    Rng train_rng(31);
    const double loss = agent.train(data, train_rng);

    std::vector<std::string> row{Table::num(w, 1), Table::num(loss, 4)};
    for (double p : {0.0, 0.15, 0.25}) {
      Rng eval_rng(1000 + static_cast<std::uint64_t>(p * 100));
      row.push_back(Table::num(
          evaluate_agent(agent, p, 8, 150, env_cfg, eval_rng), 0));
    }
    t.add_row(row);
  }
  t.print(std::cout);

  std::cout << "\nExpected: the contrastive term costs a little one-step "
               "prediction\nloss but buys augmentation-invariant embeddings "
               "— performance that\nholds (or improves) under disturbance, "
               "per RoboKoop's design.\n";
  return 0;
}
