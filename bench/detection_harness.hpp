// Shared harness for the detection experiments (Table I, Fig. 7):
// dataset generation, autoencoder pre-training under a masking strategy,
// detector fine-tuning, and per-class AP evaluation.
#pragma once

#include <memory>
#include <vector>

#include "lidar/autoencoder.hpp"
#include "lidar/detector.hpp"
#include "lidar/masking.hpp"
#include "lidar/voxel_grid.hpp"
#include "nn/optimizer.hpp"
#include "sim/lidar_sim.hpp"
#include "sim/scene.hpp"

namespace s2a::bench {

struct DetectionSample {
  sim::Scene scene;
  sim::PointCloud cloud;
  nn::Tensor grid;
};

inline std::vector<DetectionSample> make_detection_dataset(
    int scenes, const sim::LidarSimulator& lidar,
    const lidar::VoxelGridConfig& grid_cfg, const sim::SceneConfig& scene_cfg,
    Rng& rng) {
  std::vector<DetectionSample> out;
  out.reserve(static_cast<std::size_t>(scenes));
  for (int i = 0; i < scenes; ++i) {
    DetectionSample s;
    s.scene = sim::generate_scene(scene_cfg, rng);
    s.cloud = lidar.full_scan(s.scene, rng);
    s.grid = lidar::VoxelGrid::from_cloud(s.cloud, grid_cfg).to_tensor();
    out.push_back(std::move(s));
  }
  return out;
}

/// Pre-trains an autoencoder on the dataset with the given masker and
/// objective (the Table I pre-training condition).
inline void pretrain_autoencoder(lidar::OccupancyAutoencoder& ae,
                                 const std::vector<DetectionSample>& data,
                                 const lidar::Masker& masker,
                                 lidar::PretrainObjective objective,
                                 int epochs, double lr, Rng& rng) {
  nn::Adam opt(lr);
  opt.attach(ae.params(), ae.grads());
  const auto& grid_cfg = ae.config().grid;
  for (int e = 0; e < epochs; ++e) {
    for (const auto& s : data) {
      const lidar::VoxelGrid g =
          lidar::VoxelGrid::from_tensor(s.grid, grid_cfg);
      const auto visible = masker.voxel_mask(g, rng);
      const nn::Tensor masked = lidar::Masker::apply_mask(g, visible);
      ae.train_step(masked, s.grid, opt, objective);
    }
  }
}

/// Fine-tunes a single-stage detector; returns per-class AP on the test
/// set at the configured IoU thresholds.
inline std::array<double, 3> train_and_eval_single_stage(
    lidar::BevDetector& det, const std::vector<DetectionSample>& train,
    const std::vector<DetectionSample>& test, int epochs, double lr) {
  nn::Adam opt(lr);
  opt.attach(det.params(), det.grads());
  for (int e = 0; e < epochs; ++e)
    for (const auto& s : train) det.train_step(s.grid, s.scene, opt);

  std::vector<std::vector<lidar::Detection>> dets;
  std::vector<sim::Scene> scenes;
  for (const auto& s : test) {
    dets.push_back(det.detect(s.grid));
    scenes.push_back(s.scene);
  }
  std::array<double, 3> ap{};
  for (int c = 0; c < 3; ++c)
    ap[static_cast<std::size_t>(c)] = 100.0 *
        lidar::evaluate_ap_distance(dets, scenes, static_cast<sim::ObjectClass>(c),
                                    det.config().match_distance[static_cast<std::size_t>(c)]);
  return ap;
}

/// Same for the two-stage detector.
inline std::array<double, 3> train_and_eval_two_stage(
    lidar::TwoStageDetector& det, const std::vector<DetectionSample>& train,
    const std::vector<DetectionSample>& test, int epochs, double lr) {
  nn::Adam rpn_opt(lr), refine_opt(lr);
  rpn_opt.attach(det.rpn().params(), det.rpn().grads());
  refine_opt.attach(det.refine_params(), det.refine_grads());
  for (int e = 0; e < epochs; ++e)
    for (const auto& s : train)
      det.train_step(s.grid, s.cloud, s.scene, rpn_opt, refine_opt);

  std::vector<std::vector<lidar::Detection>> dets;
  std::vector<sim::Scene> scenes;
  for (const auto& s : test) {
    dets.push_back(det.detect(s.grid, s.cloud));
    scenes.push_back(s.scene);
  }
  std::array<double, 3> ap{};
  for (int c = 0; c < 3; ++c)
    ap[static_cast<std::size_t>(c)] = 100.0 *
        lidar::evaluate_ap_distance(dets, scenes, static_cast<sim::ObjectClass>(c),
                                    det.rpn().config().match_distance[static_cast<std::size_t>(c)]);
  return ap;
}

}  // namespace s2a::bench
