// Reproduces the Sec. V / Fig. 7 experiments:
//  1. STARNet anomaly-detection AUC per corruption family (paper: >0.90
//     for crosstalk 0.9658 and cross-sensor interference 0.9938, without
//     training on those faults).
//  2. Object-detection accuracy vs snow severity, LiDAR-only vs
//     STARNet-gated LiDAR+camera fusion (paper: ~15% accuracy recovery).
#include <iostream>

#include "detection_harness.hpp"
#include "monitor/fusion.hpp"
#include "monitor/starnet.hpp"
#include "sim/corruptions.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace s2a;
using namespace s2a::bench;

namespace {

double mean_ap(const std::vector<std::vector<lidar::Detection>>& dets,
               const std::vector<sim::Scene>& scenes,
               const lidar::DetectorConfig& cfg) {
  double total = 0.0;
  for (int c = 0; c < 3; ++c)
    total += lidar::evaluate_ap_distance(
        dets, scenes, static_cast<sim::ObjectClass>(c),
        cfg.match_distance[static_cast<std::size_t>(c)]);
  return 100.0 * total / 3.0;
}

}  // namespace

int main() {
  Rng rng(31);

  sim::LidarConfig lidar_cfg;
  lidar_cfg.azimuth_steps = 360;
  lidar_cfg.elevation_steps = 14;
  sim::LidarSimulator lidar(lidar_cfg);

  lidar::VoxelGridConfig grid_cfg;
  grid_cfg.nx = grid_cfg.ny = 48;
  grid_cfg.extent = 30.0;
  sim::SceneConfig scene_cfg;
  scene_cfg.extent = 26.0;

  // 1) Train the primary task network (detector) on clean data.
  Rng data_rng(5);
  const auto train_data =
      make_detection_dataset(40, lidar, grid_cfg, scene_cfg, data_rng);
  const auto test_data =
      make_detection_dataset(24, lidar, grid_cfg, scene_cfg, data_rng);

  lidar::DetectorConfig det_cfg;
  det_cfg.grid = grid_cfg;
  Rng model_rng(77);
  lidar::BevDetector detector(det_cfg, model_rng);
  (void)train_and_eval_single_stage(detector, train_data, test_data, 30, 2e-3);

  // 2) Fit STARNet's VAE on the detector's clean feature embeddings.
  std::vector<std::vector<double>> clean_embeddings;
  for (const auto& s : train_data)
    clean_embeddings.push_back(detector.feature_embedding(s.grid));
  for (const auto& s : test_data)
    clean_embeddings.push_back(detector.feature_embedding(s.grid));

  monitor::StarNetConfig sn_cfg;
  sn_cfg.vae.input_dim = detector.embedding_dim();
  sn_cfg.vae.hidden = 48;
  sn_cfg.vae.latent_dim = 6;
  monitor::StarNet starnet(sn_cfg, model_rng);
  Rng fit_rng(13);
  starnet.fit(clean_embeddings, fit_rng);

  // 3) AUC per corruption family at severity 3 (never seen in training).
  Table auc_table(
      "STARNet anomaly-detection AUC per corruption (severity 3, unseen)");
  auc_table.set_header({"Corruption", "AUC", "Paper reference"});
  Rng score_rng(17);
  for (sim::CorruptionType type : sim::all_corruptions()) {
    std::vector<double> scores;
    std::vector<int> labels;
    for (const auto& s : test_data) {
      scores.push_back(
          starnet.score(detector.feature_embedding(s.grid), score_rng));
      labels.push_back(0);
      Rng crng = score_rng.spawn();
      const sim::PointCloud corrupted =
          sim::apply_corruption(s.cloud, type, 3, lidar_cfg, crng);
      const nn::Tensor grid =
          lidar::VoxelGrid::from_cloud(corrupted, grid_cfg).to_tensor();
      scores.push_back(
          starnet.score(detector.feature_embedding(grid), score_rng));
      labels.push_back(1);
    }
    std::string ref = "-";
    if (type == sim::CorruptionType::kCrosstalk) ref = "0.9658";
    if (type == sim::CorruptionType::kCrossSensor) ref = "0.9938";
    auc_table.add_row({sim::corruption_name(type),
                       Table::num(auc_roc(scores, labels), 3), ref});
  }
  auc_table.print(std::cout);

  // 4) Fig. 7 proper: detection accuracy vs snow severity with and
  //    without STARNet trust gating + camera fallback.
  Table fig7("\nFig. 7: mean AP (%) vs snow severity — LiDAR-only vs "
             "STARNet-gated LiDAR+camera fusion");
  fig7.set_header({"Snow severity", "LiDAR only", "Camera only",
                   "STARNet-gated fusion", "Gated (untrusted %)"});

  // Monocular camera: no depth sensor, so misses and localization noise
  // are worse than LiDAR's — the fallback is a degraded but
  // weather-robust channel.
  monitor::CameraDetectorConfig cam_cfg;
  cam_cfg.miss_prob = 0.35;
  cam_cfg.center_noise = 1.0;
  Rng exp_rng(19);
  for (int severity = 0; severity <= 5; ++severity) {
    std::vector<std::vector<lidar::Detection>> lidar_only, camera_only, fused;
    std::vector<sim::Scene> scenes;
    int untrusted = 0;
    for (const auto& s : test_data) {
      Rng crng = exp_rng.spawn();
      const sim::PointCloud corrupted = sim::apply_corruption(
          s.cloud, sim::CorruptionType::kSnow, severity, lidar_cfg, crng);
      const nn::Tensor grid =
          lidar::VoxelGrid::from_cloud(corrupted, grid_cfg).to_tensor();

      const auto ldet = detector.detect(grid);
      const auto cdet =
          monitor::simulate_camera_detections(s.scene, severity, cam_cfg, crng);
      const bool trusted =
          starnet.trusted(detector.feature_embedding(grid), exp_rng);
      if (!trusted) ++untrusted;

      lidar_only.push_back(ldet);
      camera_only.push_back(cdet);
      fused.push_back(monitor::trust_gated_fuse(ldet, cdet, trusted));
      scenes.push_back(s.scene);
    }
    fig7.add_row(
        {std::to_string(severity),
         Table::num(mean_ap(lidar_only, scenes, det_cfg), 1),
         Table::num(mean_ap(camera_only, scenes, det_cfg), 1),
         Table::num(mean_ap(fused, scenes, det_cfg), 1),
         Table::num(100.0 * untrusted / test_data.size(), 0) + "%"});
  }
  fig7.print(std::cout);

  std::cout << "\nPaper shape check: LiDAR-only AP collapses with snow; the\n"
               "trust-gated loop flags heavy snow as untrustworthy, falls\n"
               "back to the camera channel, and recovers most of the\n"
               "accuracy (paper: ~15% improvement under heavy snow).\n";
  return 0;
}
