// Ablation (Sec. III future work — adaptive masking): static radial
// masking vs task-aware masking with detection feedback, on a scene
// tracked over consecutive frames. The task-aware masker funnels its beam
// budget into azimuth segments that recently contained objects
// (action-to-sensing feedback), so at matched energy it keeps eyes on the
// objects far more reliably.
#include <iostream>

#include "lidar/adaptive_masking.hpp"
#include "sim/scene.hpp"
#include <algorithm>

#include "util/stats.hpp"
#include "util/table.hpp"

using namespace s2a;

namespace {

struct FrameStats {
  double object_hit_fraction = 0.0;  ///< objects with ≥1 LiDAR return
  double energy_j = 0.0;
  int beams = 0;
};

FrameStats scan_frame(const sim::LidarSimulator& lidar, const sim::Scene& scene,
                      const std::vector<sim::BeamCommand>& plan, Rng& rng,
                      std::vector<lidar::Detection>* hits_out) {
  const sim::PointCloud pc = lidar.selective_scan(scene, plan, rng);
  FrameStats fs;
  fs.energy_j = pc.emitted_energy_j;
  fs.beams = pc.pulses_fired;

  int hit_objects = 0;
  for (const auto& obj : scene.objects) {
    bool hit = false;
    for (const auto& r : pc.returns)
      if (r.hit && obj.box.contains(r.point)) {
        hit = true;
        break;
      }
    if (hit) {
      ++hit_objects;
      if (hits_out != nullptr) {
        lidar::Detection d;
        d.cls = obj.cls;
        d.box = obj.box;
        d.score = 1.0;
        hits_out->push_back(d);
      }
    }
  }
  fs.object_hit_fraction =
      scene.objects.empty()
          ? 1.0
          : static_cast<double>(hit_objects) / scene.objects.size();
  return fs;
}

}  // namespace

int main() {
  sim::LidarConfig lc;
  lc.azimuth_steps = 360;
  lc.elevation_steps = 10;
  sim::LidarSimulator lidar(lc);

  sim::SceneConfig sc;
  sc.extent = 30.0;
  sc.moving_fraction = 0.6;

  const int frames = 20;
  const int episodes = 12;

  Table t("Static radial vs task-aware masking over tracked scenes "
          "(20 frames/episode, comparable beam counts)");
  t.set_header({"Masker", "Beams/frame", "Energy/frame (uJ)",
                "Objects hit/frame", "uJ per object hit"});

  // Static radial baseline.
  {
    Rng rng(5);
    lidar::RadialMasker masker;  // ~9% coverage
    RunningStat hit, energy, beams;
    for (int ep = 0; ep < episodes; ++ep) {
      sim::Scene scene = sim::generate_scene(sc, rng);
      for (int f = 0; f < frames; ++f) {
        const auto plan = masker.beam_plan(lc, rng);
        const FrameStats fs = scan_frame(lidar, scene, plan, rng, nullptr);
        hit.add(fs.object_hit_fraction);
        energy.add(fs.energy_j);
        beams.add(fs.beams);
        scene.step(0.1);
      }
    }
    t.add_row({"Static radial", Table::num(beams.mean(), 0),
               Table::num(energy.mean() * 1e6, 0),
               Table::num(100.0 * hit.mean(), 1) + "%",
               Table::num(energy.mean() * 1e6 / std::max(1e-6, hit.mean() * 8), 0)});
  }

  // Task-aware: lower base budget, boosted on interesting segments.
  {
    Rng rng(5);
    lidar::TaskAwareMaskerConfig cfg;
    cfg.base.segment_keep_fraction = 0.10;
    cfg.far_pulse_fraction_interesting = 0.25;
    RunningStat hit, energy, beams;
    for (int ep = 0; ep < episodes; ++ep) {
      sim::Scene scene = sim::generate_scene(sc, rng);
      lidar::TaskAwareMasker masker(cfg);  // fresh interest per episode
      // Bootstrap frame: one standard scan seeds the interest map.
      {
        lidar::RadialMasker boot;
        std::vector<lidar::Detection> hits;
        scan_frame(lidar, scene, boot.beam_plan(lc, rng), rng, &hits);
        masker.observe_detections(hits);
      }
      for (int f = 0; f < frames; ++f) {
        const auto plan = masker.beam_plan(lc, rng);
        std::vector<lidar::Detection> hits;
        const FrameStats fs = scan_frame(lidar, scene, plan, rng, &hits);
        masker.observe_detections(hits);
        hit.add(fs.object_hit_fraction);
        energy.add(fs.energy_j);
        beams.add(fs.beams);
        scene.step(0.1);
      }
    }
    t.add_row({"Task-aware (feedback)", Table::num(beams.mean(), 0),
               Table::num(energy.mean() * 1e6, 0),
               Table::num(100.0 * hit.mean(), 1) + "%",
               Table::num(energy.mean() * 1e6 / std::max(1e-6, hit.mean() * 8), 0)});
  }

  t.print(std::cout);
  std::cout << "\nExpected: with FEWER beams, detection feedback concentrates the\n"
               "budget (and full-power pulses) on segments holding objects,\n"
               "raising the per-frame object hit fraction; the energy premium\n"
               "buys range exactly where confirmed objects are.\n";
  return 0;
}
