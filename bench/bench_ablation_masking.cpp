// Ablation (Sec. III design choice): the two-stage radial masking vs its
// components — angular-segment-only, range-decay-only, and uniform random
// masking — sweeping the sensed fraction. Measures active-scan energy and
// reconstruction quality (occupancy IoU against the full scan) at matched
// coverage.
#include <iostream>

#include "lidar/pipeline.hpp"
#include "sim/scene.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace s2a;

namespace {

struct Variant {
  std::string name;
  lidar::RadialMaskerConfig cfg;
};

}  // namespace

int main() {
  Rng rng(5);
  sim::LidarConfig lidar_cfg;
  lidar_cfg.azimuth_steps = 180;
  lidar_cfg.elevation_steps = 8;
  sim::LidarSimulator lidar(lidar_cfg);

  lidar::AutoencoderConfig ae_cfg;
  ae_cfg.grid.nx = ae_cfg.grid.ny = 32;

  std::vector<Variant> variants;
  {
    Variant two_stage{"two-stage (R-MAE)", {}};
    Variant angular_only{"angular only", {}};
    angular_only.cfg.in_segment_keep = 1.0;
    angular_only.cfg.segment_keep_fraction = 0.09;
    angular_only.cfg.far_pulse_fraction = 1.0;  // no range structure
    Variant range_only{"range only", {}};
    range_only.cfg.segment_keep_fraction = 1.0;
    range_only.cfg.in_segment_keep = 0.09;
    Variant uniform{"uniform", {}};
    uniform.cfg.segment_keep_fraction = 1.0;
    uniform.cfg.in_segment_keep = 0.09;
    uniform.cfg.far_pulse_fraction = 1.0;  // fire at full power
    variants = {two_stage, angular_only, range_only, uniform};
  }

  Table t("Masking ablation: coverage-matched (~9%) active scans");
  t.set_header({"Variant", "Coverage", "Avg pulse (uJ)", "Scan energy (uJ)",
                "Recon IoU"});

  for (const auto& v : variants) {
    // Separate pipeline per variant (pre-trained under its own masking).
    Rng prng(17);
    lidar::GenerativeSensingPipeline pipe(lidar_cfg, ae_cfg, v.cfg, prng);
    pipe.pretrain(12, 10, 3e-3, prng);

    RunningStat coverage, pulse, energy, iou;
    for (int i = 0; i < 10; ++i) {
      const sim::Scene scene = sim::generate_scene(sim::SceneConfig{}, prng);
      const auto gen = pipe.sense(scene, prng);
      const auto full = pipe.sense_conventional(scene, prng);
      coverage.add(gen.energy.coverage);
      pulse.add(gen.energy.avg_pulse_energy_j);
      energy.add(gen.energy.sensing_energy_j);
      iou.add(gen.reconstructed.iou(full.sensed));
    }
    t.add_row({v.name, Table::num(100.0 * coverage.mean(), 1) + "%",
               Table::num(pulse.mean() * 1e6, 1),
               Table::num(energy.mean() * 1e6, 0),
               Table::num(iou.mean(), 3)});
  }
  t.print(std::cout);

  std::cout << "\nExpected: only the range-aware variants (two-stage, range "
               "only)\nreach ~5 uJ pulses — a ~10x scan-energy advantage. "
               "Reconstruction\nquality at matched coverage *improves* with "
               "more uniform sampling\n(whole masked wedges are hardest to "
               "inpaint at this model scale),\nso the decisive column is "
               "energy at acceptable IoU, not IoU alone\n(see "
               "EXPERIMENTS.md).\n";
  return 0;
}
