// Ablation (Sec. I–II): adaptive vs static sensing rate in the core
// sensing-to-action loop under event bursts — the paper's environmental-
// monitoring example ("reduce sampling during stable periods, increase
// during pollutant surges"). Measures energy, duty cycle, and burst
// responsiveness (staleness of the data actions use during the burst).
#include <algorithm>
#include <cmath>
#include <iostream>

#include "core/loop.hpp"
#include "core/policies.hpp"
#include "util/table.hpp"

using namespace s2a;
using namespace s2a::core;

namespace {

// Environment: quiet signal with a burst window [20 s, 30 s).
class BurstSensor : public Sensor {
 public:
  Observation sense(double now, Rng& rng) override {
    Observation obs;
    const bool burst = now >= 20.0 && now < 30.0;
    obs.data = {burst ? 4.0 + rng.normal(0.0, 1.0) : rng.normal(0.0, 0.02)};
    obs.timestamp = now;
    obs.energy_j = 2e-3;
    return obs;
  }
};

class Passthrough : public Processor {
 public:
  std::vector<double> process(const Observation& obs, Rng&) override {
    return obs.data;
  }
  double energy_per_call_j() const override { return 1e-5; }
};

class BurstTracker : public Actuator {
 public:
  void actuate(const Action& a, Rng&) override {
    const double t = a.based_on_timestamp;
    // During the burst, record how stale the acted-on data is.
    if (current_time >= 20.0 && current_time < 30.0)
      burst_staleness.push_back(current_time - t);
    current_time += 0.05;
  }
  double current_time = 0.0;
  std::vector<double> burst_staleness;
};

struct Outcome {
  double energy_mj;
  double duty;
  double burst_staleness_s;
};

Outcome run(SensingPolicy& policy, std::uint64_t seed) {
  BurstSensor sensor;
  Passthrough proc;
  BurstTracker act;
  LoopConfig cfg;
  cfg.dt = 0.05;
  SensingActionLoop loop(sensor, proc, act, policy, cfg);
  Rng rng(seed);
  loop.run(1000, rng);  // 50 s
  double burst_stale = 0.0;
  for (double s : act.burst_staleness) burst_stale += s;
  if (!act.burst_staleness.empty())
    burst_stale /= static_cast<double>(act.burst_staleness.size());
  return {loop.metrics().total_energy_j() * 1e3, loop.metrics().duty_cycle(),
          burst_stale};
}

}  // namespace

int main() {
  Table t("Adaptive vs static sensing rate under an event burst "
          "(50 s run, burst at 20-30 s, sample cost 2 mJ)");
  t.set_header({"Policy", "Energy (mJ)", "Duty cycle",
                "Burst staleness (s)"});

  {
    PeriodicPolicy every_tick(1);
    const Outcome o = run(every_tick, 1);
    t.add_row({"Static, every tick", Table::num(o.energy_mj, 1),
               Table::num(o.duty, 2), Table::num(o.burst_staleness_s, 3)});
  }
  {
    PeriodicPolicy sparse(10);
    const Outcome o = run(sparse, 1);
    t.add_row({"Static, 1/10 ticks", Table::num(o.energy_mj, 1),
               Table::num(o.duty, 2), Table::num(o.burst_staleness_s, 3)});
  }
  {
    AdaptiveActivityConfig acfg;
    acfg.base_rate = 0.1;
    acfg.activity_saturation = 0.5;
    AdaptiveActivityPolicy adaptive(acfg);
    const Outcome o = run(adaptive, 1);
    t.add_row({"Adaptive (activity EMA)", Table::num(o.energy_mj, 1),
               Table::num(o.duty, 2), Table::num(o.burst_staleness_s, 3)});
  }
  t.print(std::cout);

  std::cout << "\nExpected: the adaptive policy approaches the sparse "
               "policy's\nenergy in quiet periods while matching the "
               "every-tick policy's\nresponsiveness (low staleness) during "
               "the burst.\n";
  return 0;
}
