// Reproduces Fig. 11: relative energy / latency / area reductions of
// DC-NAS and HaLo-FL vs static FedAvg on a CIFAR-10-like classification
// task over a heterogeneous client fleet, plus the edge-cloud speculative
// decoding collaboration (Sec. VII).
//
// Paper shape: both adaptive frameworks substantially reduce energy,
// latency, and area while maintaining accuracy (the conclusions cite a
// ~3× energy reduction for multi-agent loops).
#include <cstdlib>
#include <iostream>

#include "federated/fedavg.hpp"
#include "federated/hierarchy.hpp"
#include "federated/speculative.hpp"
#include "sim/dataset.hpp"
#include "util/table.hpp"

using namespace s2a;
using namespace s2a::federated;

int main() {
  Rng rng(2024);
  const int clients = 8;

  // One dataset split into train/test (shared class means).
  const auto full = sim::make_gaussian_classes(1500, 24, 10, 3.0, rng);
  sim::ClassificationDataset train, test;
  train.feature_dim = test.feature_dim = 24;
  train.num_classes = test.num_classes = 10;
  for (std::size_t i = 0; i < 1000; ++i) {
    train.features.push_back(full.features[i]);
    train.labels.push_back(full.labels[i]);
  }
  for (std::size_t i = 1000; i < 1500; ++i) {
    test.features.push_back(full.features[i]);
    test.labels.push_back(full.labels[i]);
  }

  Rng part_rng(3);
  const auto shards = sim::dirichlet_partition(train.labels, clients, 10, 0.4,
                                               part_rng);
  const auto fleet = make_heterogeneous_fleet(clients, part_rng);

  FlConfig cfg;
  cfg.rounds = 12;

  struct Row {
    FlStrategy strategy;
    FlResult result;
  };
  std::vector<Row> rows;
  for (FlStrategy s :
       {FlStrategy::kStaticFl, FlStrategy::kDcNas, FlStrategy::kHaloFl}) {
    Rng run_rng(42);
    rows.push_back({s, run_federated(s, train, test, shards, fleet, cfg,
                                     run_rng)});
  }
  const FlResult& base = rows[0].result;

  Table t("Fig. 11: adaptive federated learning vs static FL "
          "(10-class Gaussian stand-in for CIFAR-10, 8 heterogeneous "
          "clients, Dirichlet alpha=0.4)");
  t.set_header({"Framework", "Accuracy", "Energy", "Latency", "Area",
                "Energy red.", "Latency red.", "Area red."});
  for (const auto& row : rows) {
    const FlResult& r = row.result;
    t.add_row({strategy_name(row.strategy),
               Table::num(100.0 * r.final_accuracy, 1) + "%",
               Table::num(r.total_energy_j * 1e3, 3) + " mJ",
               Table::num(r.total_latency_s * 1e3, 2) + " ms",
               Table::num(r.mean_area_mm2, 3) + " mm2",
               Table::num(100.0 * (1.0 - r.total_energy_j / base.total_energy_j), 0) + "%",
               Table::num(100.0 * (1.0 - r.total_latency_s / base.total_latency_s), 0) + "%",
               Table::num(100.0 * (1.0 - r.mean_area_mm2 / base.mean_area_mm2), 0) + "%"});
  }
  t.print(std::cout);

  // Adaptation choices, mirroring the paper's Fig. 10 heterogeneity story.
  std::cout << "\nPer-client adaptation:\n";
  for (int c = 0; c < clients; ++c) {
    const auto& p = rows[2].result.client_precisions[static_cast<std::size_t>(c)];
    std::cout << "  " << fleet[static_cast<std::size_t>(c)].name
              << ": DC-NAS width " << rows[1].result.client_widths[static_cast<std::size_t>(c)]
              << "/" << cfg.hidden << ", HaLo-FL precision " << p.weight_bits
              << "/" << p.activation_bits << "/" << p.gradient_bits << "\n";
  }

  // S2A_FED_HIER=1: replay the same three strategies through an explicit
  // client -> edge -> region tree (hierarchy.hpp). Flat run_federated is
  // the one-edge special case of the same engine and the fixed-point
  // reduction is shape-invariant, so the full-participation tree must
  // reproduce the table above bit-identically — printed as a check —
  // while the hier columns show the tree bookkeeping the flat view hides.
  if (const char* hier = std::getenv("S2A_FED_HIER");
      hier != nullptr && hier[0] == '1') {
    HierConfig hc;
    hc.fl = cfg;
    hc.clients_per_edge = 2;
    hc.edges_per_region = 2;
    Table ht("Hierarchical replay (S2A_FED_HIER=1): 8 clients -> 4 edges "
             "-> 2 regions, same rounds");
    ht.set_header({"Framework", "Accuracy", "Wire traffic", "Peak agg mem",
                   "Matches flat"});
    for (const auto& row : rows) {
      Rng run_rng(42);
      const HierResult h = run_federated_hier(row.strategy, train, test,
                                              shards, fleet, hc, run_rng);
      const FlResult& f = row.result;
      const bool matches = h.fl.final_accuracy == f.final_accuracy &&
                           h.fl.total_energy_j == f.total_energy_j &&
                           h.fl.total_latency_s == f.total_latency_s &&
                           h.fl.mean_area_mm2 == f.mean_area_mm2;
      ht.add_row({strategy_name(row.strategy),
                  Table::num(100.0 * h.fl.final_accuracy, 1) + "%",
                  Table::num(h.hier.bytes_on_wire / 1024.0, 1) + " KiB",
                  Table::num(static_cast<double>(h.hier.peak_accumulator_bytes) /
                                 1024.0, 1) + " KiB",
                  matches ? "yes" : "NO"});
    }
    std::cout << "\n";
    ht.print(std::cout);
  }

  // Edge-cloud speculative decoding (Sec. VII).
  std::cout << "\nSpeculative decoding (edge draft + cloud target, gamma=4):\n";
  Rng spec_rng(9);
  const MarkovModel target = MarkovModel::random(32, 5.0, spec_rng);
  Table st("");
  st.set_header({"Draft quality (smoothing)", "Acceptance", "Tokens/pass",
                 "Speedup"});
  for (double eps : {0.1, 0.3, 0.6, 0.9}) {
    const MarkovModel draft = target.smoothed(eps);
    Rng run_rng(77);
    const SpeculativeStats s =
        speculative_decode(target, draft, 4000, SpeculativeConfig{}, run_rng);
    st.add_row({Table::num(eps, 1), Table::num(s.acceptance_rate(), 3),
                Table::num(s.tokens_per_pass(), 2),
                Table::num(s.speedup(SpeculativeConfig{}), 2) + "x"});
  }
  st.print(std::cout);

  std::cout << "\nPaper shape check: DC-NAS and HaLo-FL cut energy/latency/"
               "area\nsubstantially at comparable accuracy; better edge "
               "drafts raise\nacceptance and wall-clock speedup.\n";
  return 0;
}
