// Reproduces Fig. 5(b): cart-pole performance under external force
// disturbances F ~ U(a_min, a_max) applied with per-step probability p,
// for every dynamics model in the RoboKoop comparison.
//
// Paper shape: all models degrade as p rises to 0.25, and the spectral
// Koopman agent retains the highest performance — its linear spectral
// structure plus LQR generalizes better off-nominal than MPC through the
// higher-capacity learned models.
#include <iostream>

#include "koopman/agent.hpp"
#include "util/table.hpp"

using namespace s2a;
using namespace s2a::koopman;

int main() {
  const std::vector<double> probs{0.0, 0.05, 0.10, 0.15, 0.20, 0.25};
  const int eval_episodes = 6;
  const int max_steps = 150;

  sim::CartPoleConfig env_cfg;
  env_cfg.disturb_min = 4.0;
  env_cfg.disturb_max = 10.0;

  // Shared exploration dataset for all models.
  Rng data_rng(11);
  const auto data = collect_transitions(24, 100, 32, env_cfg, data_rng);
  std::cout << "Training data: " << data.size() << " transitions\n";

  AgentConfig cfg;
  cfg.train_epochs = 30;
  cfg.mpc_samples = 32;
  cfg.mpc_horizon = 6;
  cfg.action_cost = 0.5;
  cfg.state_cost = {0.3, 0.1, 10.0, 0.3};

  Table t("Fig. 5b: mean balanced steps (max 150) vs disturbance "
          "probability p, F ~ U(4, 10) N");
  std::vector<std::string> header{"Model"};
  for (double p : probs) header.push_back("p=" + Table::num(p, 2));
  t.set_header(header);

  std::vector<double> spectral_row, worst_at_max(1, 1e9);
  for (ModelKind kind : all_model_kinds()) {
    Rng model_rng(23);
    ControlAgent agent(kind, cfg, model_rng);
    Rng train_rng(31);
    agent.train(data, train_rng);

    std::vector<std::string> row{model_kind_name(kind)};
    std::vector<double> returns;
    for (double p : probs) {
      Rng eval_rng(1000 + static_cast<std::uint64_t>(p * 100));
      const double ret = evaluate_agent(agent, p, eval_episodes, max_steps,
                                        env_cfg, eval_rng);
      returns.push_back(ret);
      row.push_back(Table::num(ret, 0));
    }
    if (kind == ModelKind::kSpectralKoopman) spectral_row = returns;
    t.add_row(row);
  }
  t.print(std::cout);

  if (!spectral_row.empty()) {
    std::cout << "\nSpectral Koopman retention at p=0.25: "
              << Table::num(100.0 * spectral_row.back() /
                            std::max(1.0, spectral_row.front()), 0)
              << "% of its undisturbed return (paper: maintains high "
                 "performance at p=0.25)\n";
  }
  return 0;
}
