// Google-benchmark microbenches of the hot paths: voxelization, dense and
// convolutional forward passes, LIF stepping, LiDAR ray casting, and the
// LQR solve. These bound the per-tick budget of a real-time
// sensing-to-action loop on this substrate.
#include <benchmark/benchmark.h>

#include "lidar/voxel_grid.hpp"
#include "neuro/spiking.hpp"
#include "nn/dense.hpp"
#include "nn/sequential.hpp"
#include "sim/lidar_sim.hpp"
#include "sim/scene.hpp"

namespace {

using namespace s2a;

void BM_LidarFullScan(benchmark::State& state) {
  sim::LidarConfig cfg;
  cfg.azimuth_steps = static_cast<int>(state.range(0));
  cfg.elevation_steps = 8;
  sim::LidarSimulator lidar(cfg);
  Rng rng(1);
  const sim::Scene scene = sim::generate_scene(sim::SceneConfig{}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(lidar.full_scan(scene, rng));
  }
  state.SetItemsProcessed(state.iterations() * lidar.num_beams());
}
BENCHMARK(BM_LidarFullScan)->Arg(90)->Arg(180)->Arg(360);

void BM_Voxelize(benchmark::State& state) {
  sim::LidarConfig cfg;
  cfg.azimuth_steps = 180;
  cfg.elevation_steps = 10;
  sim::LidarSimulator lidar(cfg);
  Rng rng(2);
  const sim::Scene scene = sim::generate_scene(sim::SceneConfig{}, rng);
  const sim::PointCloud pc = lidar.full_scan(scene, rng);
  lidar::VoxelGridConfig gc;
  for (auto _ : state) {
    benchmark::DoNotOptimize(lidar::VoxelGrid::from_cloud(pc, gc));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<long>(pc.returns.size()));
}
BENCHMARK(BM_Voxelize);

void BM_DenseForward(benchmark::State& state) {
  Rng rng(3);
  const int n = static_cast<int>(state.range(0));
  nn::Dense dense(n, n, rng);
  const nn::Tensor x = nn::Tensor::randn({8, n}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dense.forward(x));
  }
  state.SetItemsProcessed(state.iterations() * 8 * n * n);
}
BENCHMARK(BM_DenseForward)->Arg(32)->Arg(128)->Arg(512);

void BM_MlpForwardBackward(benchmark::State& state) {
  Rng rng(4);
  nn::Sequential mlp = nn::make_mlp(32, {64, 64}, 16, rng);
  const nn::Tensor x = nn::Tensor::randn({16, 32}, rng);
  for (auto _ : state) {
    nn::Tensor y = mlp.forward(x);
    benchmark::DoNotOptimize(mlp.backward(y));
  }
}
BENCHMARK(BM_MlpForwardBackward);

void BM_LifStep(benchmark::State& state) {
  Rng rng(5);
  neuro::SpikingConv2D layer(2, 8, 3, 2, 1, rng);
  const nn::Tensor x = nn::Tensor::randn({1, 2, 32, 32}, rng, 0.5);
  for (auto _ : state) {
    layer.begin_sequence();
    benchmark::DoNotOptimize(layer.step(x));
  }
}
BENCHMARK(BM_LifStep);

}  // namespace

BENCHMARK_MAIN();
