// Google-benchmark microbenches of the hot paths: voxelization, dense and
// convolutional forward passes, LIF stepping, LiDAR ray casting, and the
// LQR solve. These bound the per-tick budget of a real-time
// sensing-to-action loop on this substrate.
//
// The BM_Obs* series measures the observability layer itself — the cost
// of a TraceScope / histogram record when enabled, and the residual cost
// of instrumentation when disabled (the <2% overhead budget quoted in
// docs/OBSERVABILITY.md). Run with S2A_TRACE=<path> to also write a
// Chrome trace of the instrumented benchmark bodies.
// With S2A_BENCH_PARALLEL=<out.json> the binary instead times the three
// pool-sharded hot paths (lidar.voxelize, lidar.ae_reconstruct,
// fed.round) at 1 thread and at 4 threads and writes serial-vs-parallel
// p50/p95 latencies plus speedups to the given JSON file.
// With S2A_BENCH_KERNELS=<out.json> it times the GEMM conv path against
// the naive-loop oracle (single-threaded), the int8 quantized
// reconstruct against the float path, and the raw nn::gemm shapes the
// autoencoder runs — swept once per compiled-in SIMD kernel (scalar,
// avx2, ...) with speedups vs the scalar oracle — and writes
// BENCH_kernels.json. Every report header and JSON payload records the
// detected CPU features and the SIMD kernel the dispatcher selected.
// With S2A_BENCH_TRAIN=<out.json> it times the *training* hot paths:
// one autoencoder pretrain step under the GEMM backward kernels vs the
// naive oracle (single-threaded, fresh identically-seeded models per
// backend), plus one federated client update, and writes
// BENCH_train.json.
// With S2A_BENCH_FLEET=<out.json> it times the execution engines: a
// 64-loop fleet on a 4-slot pool vs the serial one-loop-at-a-time
// baseline, the pipelined single-loop engine vs the synchronous one,
// and a FaultPlan straggler chaos run with finite deadlines, writing
// aggregate ticks/sec, per-loop p50/p95 tick latency, and the chaos
// shed/stall outcome to BENCH_fleet.json.
// With S2A_BENCH_OFFLOAD=<out.json> it evaluates the uncertainty-gated
// offload policy against the always-local and always-remote baselines
// across a link loss × latency sweep, runs a mid-run partition stall
// check on a fleet sharing one uplink, and writes BENCH_offload.json —
// exiting non-zero if the policy wins at no sweep point or any member
// stalls, misses a deadline, or actuates a non-finite value.
// With S2A_BENCH_FED_SCALE=<out.json> it sweeps the hierarchical
// federated engine over {1k, 10k, 100k} simulated clients (override the
// sweep with S2A_FED_SCALE_CLIENTS=<n> for a single point, e.g. the CI
// 1k upload), timing a full-participation dense round and a
// sampled+top-k compressed round per point, and writes
// BENCH_fed_scale.json — exiting non-zero if peak aggregator memory at
// any point exceeds the smallest point's (the streaming reduction's
// O(levels + threads) bound must not grow with client count).
// With S2A_BENCH_BUDGETS=<budgets.json> it becomes the perf regression
// gate: re-times the budgeted hot paths and exits non-zero if any p95
// exceeds its recorded budget by more than the file's tolerance.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <memory>
#include <fstream>
#include <functional>
#include <iterator>
#include <string>
#include <thread>
#include <vector>

#include "core/batched_fleet.hpp"
#include "core/fleet.hpp"
#include "core/loop.hpp"
#include "core/offload.hpp"
#include "core/pipeline.hpp"
#include "core/policies.hpp"
#include "fault/fault.hpp"
#include "federated/fedavg.hpp"
#include "federated/hardware.hpp"
#include "federated/hierarchy.hpp"
#include "lidar/autoencoder.hpp"
#include "lidar/batched.hpp"
#include "lidar/voxel_grid.hpp"
#include "neuro/spiking.hpp"
#include "nn/conv2d.hpp"
#include "nn/dense.hpp"
#include "nn/gemm.hpp"
#include "nn/quant.hpp"
#include "nn/sequential.hpp"
#include "util/cpu_features.hpp"
#include "util/finite.hpp"
#include "util/scratch_arena.hpp"
#include "obs/obs.hpp"
#include "sim/dataset.hpp"
#include "sim/lidar_sim.hpp"
#include "sim/scene.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace s2a;

// Name of the SIMD ISA the GEMM dispatch resolved to — recorded in every
// BENCH_*.json payload so regression history is comparable across hosts.
const char* active_simd_name() {
  return util::simd_isa_name(util::active_simd_isa());
}

// One-line hardware banner printed at the top of every report mode.
void print_cpu_banner() {
  printf("cpu features: %s | gemm kernel: %s\n",
         util::cpu_feature_string().c_str(), nn::gemm_kernel_name());
}

void BM_LidarFullScan(benchmark::State& state) {
  sim::LidarConfig cfg;
  cfg.azimuth_steps = static_cast<int>(state.range(0));
  cfg.elevation_steps = 8;
  sim::LidarSimulator lidar(cfg);
  Rng rng(1);
  const sim::Scene scene = sim::generate_scene(sim::SceneConfig{}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(lidar.full_scan(scene, rng));
  }
  state.SetItemsProcessed(state.iterations() * lidar.num_beams());
}
BENCHMARK(BM_LidarFullScan)->Arg(90)->Arg(180)->Arg(360);

void BM_Voxelize(benchmark::State& state) {
  sim::LidarConfig cfg;
  cfg.azimuth_steps = 180;
  cfg.elevation_steps = 10;
  sim::LidarSimulator lidar(cfg);
  Rng rng(2);
  const sim::Scene scene = sim::generate_scene(sim::SceneConfig{}, rng);
  const sim::PointCloud pc = lidar.full_scan(scene, rng);
  lidar::VoxelGridConfig gc;
  for (auto _ : state) {
    benchmark::DoNotOptimize(lidar::VoxelGrid::from_cloud(pc, gc));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<long>(pc.returns.size()));
}
BENCHMARK(BM_Voxelize);

void BM_DenseForward(benchmark::State& state) {
  Rng rng(3);
  const int n = static_cast<int>(state.range(0));
  nn::Dense dense(n, n, rng);
  const nn::Tensor x = nn::Tensor::randn({8, n}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dense.forward(x));
  }
  state.SetItemsProcessed(state.iterations() * 8 * n * n);
}
BENCHMARK(BM_DenseForward)->Arg(32)->Arg(128)->Arg(512);

void BM_MlpForwardBackward(benchmark::State& state) {
  Rng rng(4);
  nn::Sequential mlp = nn::make_mlp(32, {64, 64}, 16, rng);
  const nn::Tensor x = nn::Tensor::randn({16, 32}, rng);
  for (auto _ : state) {
    nn::Tensor y = mlp.forward(x);
    benchmark::DoNotOptimize(mlp.backward(y));
  }
}
BENCHMARK(BM_MlpForwardBackward);

void BM_LifStep(benchmark::State& state) {
  Rng rng(5);
  neuro::SpikingConv2D layer(2, 8, 3, 2, 1, rng);
  const nn::Tensor x = nn::Tensor::randn({1, 2, 32, 32}, rng, 0.5);
  for (auto _ : state) {
    layer.begin_sequence();
    benchmark::DoNotOptimize(layer.step(x));
  }
}
BENCHMARK(BM_LifStep);

// ---- Observability layer (src/obs) ----
//
// Each BM_Obs* benchmark saves and restores the global enable flag so
// an S2A_TRACE run of the *other* benchmarks is unaffected.

class ObsEnabledGuard {
 public:
  explicit ObsEnabledGuard(bool on) : prev_(obs::enabled()) {
    obs::set_enabled(on);
  }
  ~ObsEnabledGuard() { obs::set_enabled(prev_); }

 private:
  bool prev_;
};

// The residual cost of a compiled-in span when obs is off: one relaxed
// load and a branch. This is what every instrumented hot path pays.
void BM_ObsDisabledTraceScope(benchmark::State& state) {
  ObsEnabledGuard guard(false);
  for (auto _ : state) {
    S2A_TRACE_SCOPE("bench.noop");
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_ObsDisabledTraceScope);

void BM_ObsEnabledTraceScope(benchmark::State& state) {
  ObsEnabledGuard guard(true);
  for (auto _ : state) {
    S2A_TRACE_SCOPE("bench.span");
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_ObsEnabledTraceScope);

void BM_ObsDisabledHistogram(benchmark::State& state) {
  ObsEnabledGuard guard(false);
  double v = 1e-6;
  for (auto _ : state) {
    S2A_HISTOGRAM_RECORD("bench.noop_hist", v);
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_ObsDisabledHistogram);

void BM_ObsEnabledHistogram(benchmark::State& state) {
  ObsEnabledGuard guard(true);
  double v = 1e-6;
  for (auto _ : state) {
    S2A_HISTOGRAM_RECORD("bench.hist", v);
    v *= 1.0000001;  // walk the buckets a little
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_ObsEnabledHistogram);

// A full instrumented loop tick with trivial components: the worst
// realistic case for relative span overhead (5 spans + 3 counters around
// almost no work). Real ticks do orders of magnitude more per span.
struct NullSensor : core::Sensor {
  core::Observation sense(double now, Rng&) override {
    core::Observation o;
    o.data = {now};
    return o;
  }
};
struct NullProcessor : core::Processor {
  std::vector<double> process(const core::Observation& obs, Rng&) override {
    return obs.data;
  }
};
struct NullActuator : core::Actuator {
  void actuate(const core::Action&, Rng&) override {}
};

void loop_tick_bench(benchmark::State& state, bool obs_on) {
  ObsEnabledGuard guard(obs_on);
  NullSensor sensor;
  NullProcessor processor;
  NullActuator actuator;
  core::PeriodicPolicy policy(1);
  core::SensingActionLoop loop(sensor, processor, actuator, policy);
  Rng rng(6);
  for (auto _ : state) loop.tick(rng);
}
void BM_LoopTickObsOff(benchmark::State& state) {
  loop_tick_bench(state, false);
}
void BM_LoopTickObsOn(benchmark::State& state) {
  loop_tick_bench(state, true);
}
BENCHMARK(BM_LoopTickObsOff);
BENCHMARK(BM_LoopTickObsOn);

// ---- Serial-vs-parallel report (S2A_BENCH_PARALLEL=<out.json>) ----
//
// Times each pool-sharded hot path at 1 thread and at kParallelThreads
// with steady_clock (google-benchmark stays out of the way so the two
// configurations see identical call sequences), then writes p50/p95 and
// the p50 speedup per workload.

constexpr int kParallelThreads = 4;

struct Percentiles {
  double p50_ms = 0.0;
  double p95_ms = 0.0;
};

Percentiles percentiles(std::vector<double> ms) {
  std::sort(ms.begin(), ms.end());
  const auto at = [&](double q) {
    const double pos = q * static_cast<double>(ms.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, ms.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return ms[lo] * (1.0 - frac) + ms[hi] * frac;
  };
  return {at(0.50), at(0.95)};
}

std::vector<double> time_reps(int reps, const std::function<void()>& fn) {
  for (int i = 0; i < 2; ++i) fn();  // warmup
  std::vector<double> ms;
  ms.reserve(static_cast<std::size_t>(reps));
  for (int i = 0; i < reps; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    ms.push_back(std::chrono::duration<double, std::milli>(t1 - t0).count());
  }
  return ms;
}

struct ParallelWorkload {
  const char* name;
  int reps;
  std::function<void()> fn;
};

// Offload executor fixtures, shared by the core.offload_tick budget
// workload and the S2A_BENCH_OFFLOAD report. The models scale the
// observation (compute cost is *modeled* via OffloadConfig, not burned),
// and the gate is scripted off the observation timestamp — ~40% of ticks
// uncertain, no RNG — so every mode and thread count replays the exact
// same decision sequence.
struct ScaleModel : core::Processor {
  double scale;
  double energy_j;
  explicit ScaleModel(double s, double e = 0.0) : scale(s), energy_j(e) {}
  std::vector<double> process(const core::Observation& obs, Rng&) override {
    std::vector<double> out = obs.data;
    for (double& v : out) v *= scale;
    return out;
  }
  double energy_per_call_j() const override { return energy_j; }
};

struct TimestampGate : core::UncertaintySource {
  double score(const core::Observation& obs) override {
    return std::sin(40.0 * obs.timestamp) > 0.2 ? 2.0 : 0.0;
  }
};

core::Observation offload_obs(double t) {
  core::Observation obs;
  obs.data = {std::sin(t), std::cos(t), 0.5};
  obs.timestamp = t;
  return obs;
}

core::OffloadConfig bench_offload_config(core::OffloadMode mode) {
  core::OffloadConfig cfg;
  cfg.mode = mode;
  cfg.deadline_s = 0.05;
  cfg.local_compute_s = 4e-3;
  cfg.remote_compute_s = 1e-3;
  cfg.max_retries = 2;
  cfg.tx_energy_j = 2e-3;
  return cfg;
}

// core.offload_tick: one executor on a healthy link, driven for a block
// of virtual ticks per rep. All waiting is virtual time, so the workload
// measures the executor's own bookkeeping (gate, cost model, breaker,
// link arithmetic), which is what the budget bounds.
struct OffloadTickFixture {
  ScaleModel local{2.0, 5e-3};
  ScaleModel remote{10.0};
  TimestampGate gate;
  core::OffloadExecutor exec;
  Rng rng{5};
  long tick = 0;

  OffloadTickFixture()
      : exec(local, remote, net::LinkSim(net::LinkConfig{}, {}, /*seed=*/77),
             bench_offload_config(core::OffloadMode::kPolicy), &gate,
             /*seed=*/77) {}

  void run_block() {
    for (int i = 0; i < 256; ++i) {
      const double now = 0.05 * static_cast<double>(tick++);
      benchmark::DoNotOptimize(exec.process_at(now, offload_obs(now), rng));
    }
  }
};

// Fed-scale fixtures, shared by the fed.hier_round_1k budget workload
// and the S2A_BENCH_FED_SCALE sweep. A tiny MLP (12 features, 16
// hidden, 4 classes — 276 params) over synthetic cyclically-assigned
// 4-sample shards: dirichlet_partition degenerates into empty shards
// past a few hundred clients, and the sweep measures the aggregation
// tree, not the sharder. Local training is deliberately trivial so the
// round cost is dominated by the engine's own sampling / streaming
// reduction / accounting — the thing the scale sweep bounds.
struct FedScaleFixture {
  sim::ClassificationDataset train, test;
  std::vector<std::vector<int>> shards;
  std::vector<federated::HardwareProfile> fleet;
  federated::HierConfig cfg;

  static FedScaleFixture make(int clients) {
    FedScaleFixture fx;
    Rng rng(21);
    fx.train = sim::make_gaussian_classes(240, 12, 4, 3.0, rng);
    fx.test = sim::make_gaussian_classes(120, 12, 4, 3.0, rng);
    const int n = static_cast<int>(fx.train.labels.size());
    fx.shards.resize(static_cast<std::size_t>(clients));
    for (int c = 0; c < clients; ++c) {
      auto& shard = fx.shards[static_cast<std::size_t>(c)];
      shard.reserve(4);
      for (int j = 0; j < 4; ++j) shard.push_back((c * 7 + j * 61 + 3) % n);
    }
    fx.fleet = federated::make_heterogeneous_fleet(clients, rng);
    fx.cfg.fl.rounds = 1;
    fx.cfg.fl.local_epochs = 1;
    fx.cfg.fl.batch = 4;
    fx.cfg.fl.hidden = 16;
    fx.cfg.clients_per_edge = 64;
    fx.cfg.edges_per_region = 32;
    return fx;
  }

  // The constrained-uplink configuration: 5% uniform cohort, top-25%
  // deltas with error feedback, updates billed through the link model.
  federated::HierConfig sampled_cfg() const {
    federated::HierConfig c = cfg;
    c.sample_mode = federated::SampleMode::kUniform;
    c.sample_fraction = 0.05;
    c.topk_fraction = 0.25;
    c.error_feedback = true;
    c.bill_uplink = true;
    return c;
  }

  federated::HierResult run(const federated::HierConfig& c) const {
    Rng round_rng(31);
    return federated::run_federated_hier(federated::FlStrategy::kStaticFl,
                                         train, test, shards, fleet, c,
                                         round_rng);
  }
};

// Inputs for the pool-sharded hot paths, built once and shared by the
// parallel report, the kernels report, and the budget gate so every mode
// times the exact same call sequences.
struct HotPathFixtures {
  sim::PointCloud pc;
  lidar::VoxelGridConfig gc;
  lidar::AutoencoderConfig ac;
  lidar::OccupancyAutoencoder ae;
  nn::Tensor bev;
  sim::ClassificationDataset train;
  sim::ClassificationDataset test;
  std::vector<std::vector<int>> shards;
  std::vector<federated::HardwareProfile> fleet;
  federated::FlConfig fc;
  // Training fixtures: a sparse occupancy target with a ~10% sensed
  // subset as input (the R-MAE masking regime), an optimizer attached to
  // `ae` (layer tensors are heap-owned, so the attachment survives the
  // fixture being moved), and a global MLP for one client update.
  nn::Tensor ae_masked, ae_target;
  nn::Adam ae_opt{1e-3};
  federated::MlpParams fed_global;
  std::vector<bool> fed_active;
  // Raw-GEMM fixture for nn.gemm_conv2 (the conv2 product shape,
  // 32x144x144). The arena lives behind a unique_ptr because
  // ScratchArena is non-movable and the fixture is returned by value.
  std::vector<double> gemm_a, gemm_b, gemm_c;
  std::unique_ptr<util::ScratchArena> gemm_arena;
  // fed.hier_round_1k: one sampled+compressed hierarchical round over a
  // 1000-client tree (value-initialized by the aggregate init below,
  // filled at the end of make()).
  std::unique_ptr<FedScaleFixture> fed_hier;

  static HotPathFixtures make() {
    // lidar.voxelize: a 360x32 scan (11520 returns) is well above the
    // kMinParallelReturns threshold, so the sharded path actually
    // engages.
    sim::LidarConfig lc;
    lc.azimuth_steps = 360;
    lc.elevation_steps = 32;
    sim::LidarSimulator lidar(lc);
    Rng rng(7);
    const sim::Scene scene = sim::generate_scene(sim::SceneConfig{}, rng);
    sim::PointCloud pc = lidar.full_scan(scene, rng);

    // lidar.ae_reconstruct: default 48x48 grid keeps the conv/deconv
    // MACs above the inline threshold.
    lidar::AutoencoderConfig ac;
    lidar::OccupancyAutoencoder ae(ac, rng);
    nn::Tensor bev =
        nn::Tensor::randn({1, ac.grid.nz, ac.grid.ny, ac.grid.nx}, rng);

    // fed.round: one round over five heterogeneous clients; a fresh Rng
    // with a fixed seed per rep keeps every rep (and both thread
    // counts) on the same arithmetic.
    Rng fed_rng(8);
    auto train = sim::make_gaussian_classes(300, 16, 10, 3.0, fed_rng);
    auto test = sim::make_gaussian_classes(150, 16, 10, 3.0, fed_rng);
    auto shards = sim::dirichlet_partition(train.labels, 5, 10, 0.5, fed_rng);
    auto fleet = federated::make_heterogeneous_fleet(5, fed_rng);
    federated::FlConfig fc;
    fc.rounds = 1;
    // Trailing members (training fixtures) start empty and are filled
    // in below.
    HotPathFixtures fx{std::move(pc),   lidar::VoxelGridConfig{},
                       ac,              std::move(ae),
                       std::move(bev),  std::move(train),
                       std::move(test), std::move(shards),
                       std::move(fleet), fc,
                       nn::Tensor{},    nn::Tensor{},
                       nn::Adam{1e-3},  federated::MlpParams{},
                       std::vector<bool>{},
                       {},              {},
                       {},              nullptr,
                       nullptr};

    // lidar.ae_pretrain_step: sparse occupancy target (~6% occupied),
    // masked input keeping ~10% of sensed voxels.
    fx.ae_target = nn::Tensor({1, fx.ac.grid.nz, fx.ac.grid.ny, fx.ac.grid.nx});
    fx.ae_masked = fx.ae_target;
    for (std::size_t i = 0; i < fx.ae_target.numel(); ++i) {
      const double occ = rng.uniform(0.0, 1.0) < 0.06 ? 1.0 : 0.0;
      fx.ae_target[i] = occ;
      fx.ae_masked[i] = rng.uniform(0.0, 1.0) < 0.1 ? occ : 0.0;
    }
    fx.ae_opt.attach(fx.ae.params(), fx.ae.grads());

    // fed.client_update: one client's local_train against the initial
    // global model (copied per rep so every rep trains the same weights).
    fx.fed_global = federated::init_mlp(fx.train.feature_dim, fx.fc.hidden,
                                        fx.train.num_classes, rng);
    fx.fed_active.assign(static_cast<std::size_t>(fx.fc.hidden), true);

    // nn.gemm_conv2: the conv2 GEMM shape timed through the public
    // nn::gemm entry (pack + blocked kernel), exactly as the budget gate
    // replays it.
    fx.gemm_a.resize(32 * 144);
    fx.gemm_b.resize(144 * 144);
    fx.gemm_c.resize(32 * 144);
    for (auto& v : fx.gemm_a) v = rng.uniform(-1.0, 1.0);
    for (auto& v : fx.gemm_b) v = rng.uniform(-1.0, 1.0);
    fx.gemm_arena = std::make_unique<util::ScratchArena>();

    // lidar.ae_reconstruct_int8: int8 snapshot of the same autoencoder.
    // The float workloads are unaffected — the snapshot only engages
    // while the quant backend resolves to int8.
    fx.ae.quantize();

    // fed.hier_round_1k: the 1k point of the S2A_BENCH_FED_SCALE sweep
    // under the constrained-uplink configuration.
    fx.fed_hier = std::make_unique<FedScaleFixture>(FedScaleFixture::make(1000));
    return fx;
  }

  std::vector<ParallelWorkload> workloads() {
    std::vector<ParallelWorkload> w;
    w.push_back({"lidar.voxelize", 100, [this] {
                   benchmark::DoNotOptimize(
                       lidar::VoxelGrid::from_cloud(pc, gc));
                 }});
    w.push_back({"lidar.ae_reconstruct", 30, [this] {
                   benchmark::DoNotOptimize(ae.reconstruct(bev));
                 }});
    w.push_back({"fed.round", 15, [this] {
                   Rng round_rng(9);
                   benchmark::DoNotOptimize(federated::run_federated(
                       federated::FlStrategy::kStaticFl, train, test, shards,
                       fleet, fc, round_rng));
                 }});
    w.push_back({"lidar.ae_pretrain_step", 25, [this] {
                   benchmark::DoNotOptimize(
                       ae.train_step(ae_masked, ae_target, ae_opt));
                 }});
    w.push_back({"fed.client_update", 60, [this] {
                   federated::MlpParams local = fed_global;
                   Rng client_rng(13);
                   benchmark::DoNotOptimize(federated::local_train(
                       local, train, shards[0], fed_active,
                       federated::PrecisionConfig{}, fc.local_epochs, fc.batch,
                       fc.lr, client_rng));
                 }});
    w.push_back({"lidar.ae_reconstruct_int8", 30, [this] {
                   nn::set_quant_backend(nn::QuantBackend::kInt8);
                   benchmark::DoNotOptimize(ae.reconstruct(bev));
                   nn::set_quant_backend(nn::QuantBackend::kAuto);
                 }});
    w.push_back({"core.offload_tick", 60,
                 [fx = std::make_shared<OffloadTickFixture>()] {
                   fx->run_block();
                 }});
    w.push_back({"fed.hier_round_1k", 15, [this] {
                   benchmark::DoNotOptimize(
                       fed_hier->run(fed_hier->sampled_cfg()));
                 }});
    w.push_back({"nn.gemm_conv2", 400, [this] {
                   std::fill(gemm_c.begin(), gemm_c.end(), 0.0);
                   nn::gemm(32, 144, 144, gemm_a.data(), 144, gemm_b.data(),
                            144, gemm_c.data(), 144, *gemm_arena);
                   benchmark::DoNotOptimize(gemm_c.data());
                   gemm_arena->reset();
                 }});
    return w;
  }
};

// Full autoencoder pretrain step (forward + weighted BCE + backward +
// Adam). Under S2A_TRACE this is what puts the nn.conv_backward /
// nn.deconv_backward spans on the timeline.
void BM_AePretrainStep(benchmark::State& state) {
  static HotPathFixtures& fx = *new HotPathFixtures(HotPathFixtures::make());
  for (auto _ : state)
    benchmark::DoNotOptimize(fx.ae.train_step(fx.ae_masked, fx.ae_target,
                                              fx.ae_opt));
}
BENCHMARK(BM_AePretrainStep);

int run_parallel_report(const char* out_path) {
  HotPathFixtures fx = HotPathFixtures::make();
  std::vector<ParallelWorkload> workloads = fx.workloads();
  print_cpu_banner();

  std::ofstream out(out_path);
  if (!out) {
    fprintf(stderr, "cannot open %s for writing\n", out_path);
    return 1;
  }
  out << "{\n  \"parallel_threads\": " << kParallelThreads
      << ",\n  \"hardware_concurrency\": "
      << std::thread::hardware_concurrency() << ",\n  \"cpu\": \""
      << util::cpu_feature_string() << "\",\n  \"simd\": \""
      << active_simd_name() << "\",\n  \"workloads\": [\n";
  for (std::size_t i = 0; i < workloads.size(); ++i) {
    const auto& wl = workloads[i];
    Percentiles serial, parallel;
    {
      util::ScopedGlobalThreads threads(1);
      serial = percentiles(time_reps(wl.reps, wl.fn));
    }
    {
      util::ScopedGlobalThreads threads(kParallelThreads);
      parallel = percentiles(time_reps(wl.reps, wl.fn));
    }
    const double speedup = parallel.p50_ms > 0.0 ? serial.p50_ms / parallel.p50_ms : 0.0;
    printf("%-22s serial p50 %8.3f ms p95 %8.3f ms | %d threads p50 %8.3f ms p95 %8.3f ms | p50 speedup %.2fx\n",
           wl.name, serial.p50_ms, serial.p95_ms, kParallelThreads,
           parallel.p50_ms, parallel.p95_ms, speedup);
    out << "    {\"name\": \"" << wl.name << "\", \"reps\": " << wl.reps
        << ",\n     \"serial\": {\"p50_ms\": " << serial.p50_ms
        << ", \"p95_ms\": " << serial.p95_ms
        << "},\n     \"parallel\": {\"p50_ms\": " << parallel.p50_ms
        << ", \"p95_ms\": " << parallel.p95_ms
        << "},\n     \"p50_speedup\": " << speedup << "}"
        << (i + 1 < workloads.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  printf("Wrote parallel report to %s\n", out_path);
  return 0;
}

// ---- Kernel report (S2A_BENCH_KERNELS=<out.json>) ----
//
// Times lidar.ae_reconstruct single-threaded under the GEMM conv backend
// and under the naive-loop oracle, the same reconstruct under the int8
// quantized path, plus the raw nn::gemm shapes the autoencoder's
// conv/deconv layers reduce to (deconvs as their per-phase compact
// GEMMs). The float reconstruct numbers are bit-exact equal in output —
// the speedup is pure kernel efficiency. The gemm shapes are swept once
// per compiled-in SIMD ISA (via set_simd_isa), recording each vector
// kernel's p50 speedup over the always-available scalar oracle.
int run_kernels_report(const char* out_path) {
  HotPathFixtures fx = HotPathFixtures::make();
  util::ScopedGlobalThreads threads(1);
  const int reps = 60;
  print_cpu_banner();

  nn::set_conv_backend(nn::ConvBackend::kGemm);
  const Percentiles gemm_path = percentiles(time_reps(
      reps, [&] { benchmark::DoNotOptimize(fx.ae.reconstruct(fx.bev)); }));
  nn::set_conv_backend(nn::ConvBackend::kNaive);
  const Percentiles naive_path = percentiles(time_reps(
      reps, [&] { benchmark::DoNotOptimize(fx.ae.reconstruct(fx.bev)); }));
  nn::set_conv_backend(nn::ConvBackend::kAuto);
  const double speedup =
      gemm_path.p50_ms > 0.0 ? naive_path.p50_ms / gemm_path.p50_ms : 0.0;
  printf("lidar.ae_reconstruct   gemm p50 %8.3f ms p95 %8.3f ms | naive p50 %8.3f ms p95 %8.3f ms | speedup %.2fx\n",
         gemm_path.p50_ms, gemm_path.p95_ms, naive_path.p50_ms,
         naive_path.p95_ms, speedup);

  // Int8 path over the identical reconstruct (fx.ae was quantized in
  // make()); the accuracy side of this trade lives in the frontier
  // section of bench_table2_lidar_energy.
  nn::set_quant_backend(nn::QuantBackend::kInt8);
  const Percentiles int8_path = percentiles(time_reps(
      reps, [&] { benchmark::DoNotOptimize(fx.ae.reconstruct(fx.bev)); }));
  nn::set_quant_backend(nn::QuantBackend::kAuto);
  const double int8_speedup =
      int8_path.p50_ms > 0.0 ? gemm_path.p50_ms / int8_path.p50_ms : 0.0;
  printf("lidar.ae_reconstruct  float p50 %8.3f ms p95 %8.3f ms |  int8 p50 %8.3f ms p95 %8.3f ms | speedup %.2fx\n",
         gemm_path.p50_ms, gemm_path.p95_ms, int8_path.p50_ms,
         int8_path.p95_ms, int8_speedup);

  // The dense products behind each autoencoder layer: conv layers are
  // one [cout, cin*k*k] x [cin*k*k, oh*ow] product, stride-2 deconvs are
  // four per-phase products over the phase-valid taps.
  struct GemmShape {
    const char* name;
    int m, n, k;
  } shapes[] = {
      {"conv1 16x576x36", 16, 576, 36},
      {"conv2 32x144x144", 32, 144, 144},
      {"dec1.phase 16x144x128", 16, 144, 128},
      {"dec2.phase 4x576x64", 4, 576, 64},
  };
  const int num_shapes = static_cast<int>(std::size(shapes));

  // Sweep every compiled-in ISA over every shape. supported_simd_isas()
  // always starts with kScalar, so scalar_p50 is filled before any
  // vector ISA needs it for its speedup column.
  const std::vector<util::SimdIsa> isas = util::supported_simd_isas();
  std::vector<std::vector<Percentiles>> per_isa(isas.size());
  std::vector<double> scalar_p50(static_cast<std::size_t>(num_shapes), 0.0);
  for (std::size_t vi = 0; vi < isas.size(); ++vi) {
    util::set_simd_isa(isas[vi]);
    for (int i = 0; i < num_shapes; ++i) {
      const auto& s = shapes[i];
      Rng rng(11);
      const nn::Tensor a = nn::Tensor::randn({s.m, s.k}, rng);
      const nn::Tensor b = nn::Tensor::randn({s.k, s.n}, rng);
      nn::Tensor c({s.m, s.n});
      util::ScratchArena arena;
      const Percentiles p = percentiles(time_reps(400, [&] {
        nn::gemm(s.m, s.n, s.k, a.data(), s.k, b.data(), s.n, c.data(), s.n,
                 arena);
        benchmark::DoNotOptimize(c.data());
        arena.reset();
      }));
      per_isa[vi].push_back(p);
      if (isas[vi] == util::SimdIsa::kScalar)
        scalar_p50[static_cast<std::size_t>(i)] = p.p50_ms;
      const double gmacs =
          static_cast<double>(s.m) * s.n * s.k / (p.p50_ms * 1e6);
      const double vs_scalar =
          p.p50_ms > 0.0 ? scalar_p50[static_cast<std::size_t>(i)] / p.p50_ms
                         : 0.0;
      printf("gemm[%-9s] %-22s p50 %8.4f ms  %6.2f GMAC/s  %5.2fx vs scalar\n",
             util::simd_isa_name(isas[vi]), s.name, p.p50_ms, gmacs,
             vs_scalar);
    }
  }
  util::set_simd_isa(util::SimdIsa::kAuto);

  // Index of the ISA auto-dispatch resolved to: the top-level
  // "gemm_shapes" section reports that kernel's numbers, so the budget
  // history tracks what the library actually runs by default.
  std::size_t auto_idx = 0;
  for (std::size_t vi = 0; vi < isas.size(); ++vi)
    if (isas[vi] == util::active_simd_isa()) auto_idx = vi;

  std::ofstream out(out_path);
  if (!out) {
    fprintf(stderr, "cannot open %s for writing\n", out_path);
    return 1;
  }
  out << "{\n  \"threads\": 1,\n  \"cpu\": \"" << util::cpu_feature_string()
      << "\",\n  \"simd\": \"" << active_simd_name()
      << "\",\n  \"ae_reconstruct\": {\n"
      << "    \"gemm\": {\"p50_ms\": " << gemm_path.p50_ms
      << ", \"p95_ms\": " << gemm_path.p95_ms << "},\n"
      << "    \"naive\": {\"p50_ms\": " << naive_path.p50_ms
      << ", \"p95_ms\": " << naive_path.p95_ms << "},\n"
      << "    \"p50_speedup\": " << speedup
      << "\n  },\n  \"ae_reconstruct_int8\": {\n"
      << "    \"float\": {\"p50_ms\": " << gemm_path.p50_ms
      << ", \"p95_ms\": " << gemm_path.p95_ms << "},\n"
      << "    \"int8\": {\"p50_ms\": " << int8_path.p50_ms
      << ", \"p95_ms\": " << int8_path.p95_ms << "},\n"
      << "    \"p50_speedup\": " << int8_speedup
      << "\n  },\n  \"gemm_shapes\": [\n";
  for (int i = 0; i < num_shapes; ++i) {
    const auto& s = shapes[i];
    const Percentiles& p = per_isa[auto_idx][static_cast<std::size_t>(i)];
    const double gmacs =
        static_cast<double>(s.m) * s.n * s.k / (p.p50_ms * 1e6);
    const double vs_scalar =
        p.p50_ms > 0.0 ? scalar_p50[static_cast<std::size_t>(i)] / p.p50_ms
                       : 0.0;
    out << "    {\"name\": \"" << s.name << "\", \"m\": " << s.m
        << ", \"n\": " << s.n << ", \"k\": " << s.k
        << ", \"p50_ms\": " << p.p50_ms << ", \"gmacs\": " << gmacs
        << ", \"p50_speedup_vs_scalar\": " << vs_scalar << "}"
        << (i + 1 < num_shapes ? "," : "") << "\n";
  }
  out << "  ],\n  \"gemm_shapes_by_isa\": {\n";
  for (std::size_t vi = 0; vi < isas.size(); ++vi) {
    out << "    \"" << util::simd_isa_name(isas[vi]) << "\": [\n";
    for (int i = 0; i < num_shapes; ++i) {
      const auto& s = shapes[i];
      const Percentiles& p = per_isa[vi][static_cast<std::size_t>(i)];
      const double gmacs =
          static_cast<double>(s.m) * s.n * s.k / (p.p50_ms * 1e6);
      const double vs_scalar =
          p.p50_ms > 0.0 ? scalar_p50[static_cast<std::size_t>(i)] / p.p50_ms
                         : 0.0;
      out << "      {\"name\": \"" << s.name << "\", \"p50_ms\": " << p.p50_ms
          << ", \"gmacs\": " << gmacs
          << ", \"p50_speedup_vs_scalar\": " << vs_scalar << "}"
          << (i + 1 < num_shapes ? "," : "") << "\n";
    }
    out << "    ]" << (vi + 1 < isas.size() ? "," : "") << "\n";
  }
  out << "  }\n}\n";
  printf("Wrote kernel report to %s\n", out_path);
  return 0;
}

// ---- Training report (S2A_BENCH_TRAIN=<out.json>) ----
//
// Times one autoencoder pretrain step (forward + BCE + GEMM backward +
// Adam) single-threaded under the GEMM kernels and under the naive
// oracle. Each backend gets a fresh model from the same seed so both
// time identical weight trajectories; the gradients agree bit-for-bit
// between the backends, so the speedup is pure kernel efficiency. Also
// times one federated client update (local_train, backend-independent —
// the federated MLP is hand-rolled).
int run_train_report(const char* out_path) {
  HotPathFixtures fx = HotPathFixtures::make();
  util::ScopedGlobalThreads threads(1);
  const int reps = 25;
  print_cpu_banner();

  const auto time_backend = [&](nn::ConvBackend backend) {
    nn::set_conv_backend(backend);
    Rng rng(7);  // same seed per backend -> identical initial weights
    lidar::OccupancyAutoencoder ae(fx.ac, rng);
    nn::Adam opt(1e-3);
    opt.attach(ae.params(), ae.grads());
    return percentiles(time_reps(reps, [&] {
      benchmark::DoNotOptimize(
          ae.train_step(fx.ae_masked, fx.ae_target, opt));
    }));
  };
  const Percentiles gemm_path = time_backend(nn::ConvBackend::kGemm);
  const Percentiles naive_path = time_backend(nn::ConvBackend::kNaive);
  nn::set_conv_backend(nn::ConvBackend::kAuto);
  const double speedup =
      gemm_path.p50_ms > 0.0 ? naive_path.p50_ms / gemm_path.p50_ms : 0.0;
  printf("lidar.ae_pretrain_step gemm p50 %8.3f ms p95 %8.3f ms | naive p50 %8.3f ms p95 %8.3f ms | speedup %.2fx\n",
         gemm_path.p50_ms, gemm_path.p95_ms, naive_path.p50_ms,
         naive_path.p95_ms, speedup);

  const Percentiles fed = percentiles(time_reps(60, [&] {
    federated::MlpParams local = fx.fed_global;
    Rng client_rng(13);
    benchmark::DoNotOptimize(federated::local_train(
        local, fx.train, fx.shards[0], fx.fed_active,
        federated::PrecisionConfig{}, fx.fc.local_epochs, fx.fc.batch,
        fx.fc.lr, client_rng));
  }));
  printf("fed.client_update      p50 %8.3f ms p95 %8.3f ms\n", fed.p50_ms,
         fed.p95_ms);

  std::ofstream out(out_path);
  if (!out) {
    fprintf(stderr, "cannot open %s for writing\n", out_path);
    return 1;
  }
  out << "{\n  \"threads\": 1,\n  \"cpu\": \"" << util::cpu_feature_string()
      << "\",\n  \"simd\": \"" << active_simd_name()
      << "\",\n  \"ae_pretrain_step\": {\n"
      << "    \"gemm\": {\"p50_ms\": " << gemm_path.p50_ms
      << ", \"p95_ms\": " << gemm_path.p95_ms << "},\n"
      << "    \"naive\": {\"p50_ms\": " << naive_path.p50_ms
      << ", \"p95_ms\": " << naive_path.p95_ms << "},\n"
      << "    \"p50_speedup\": " << speedup << "\n  },\n"
      << "  \"fed_client_update\": {\"p50_ms\": " << fed.p50_ms
      << ", \"p95_ms\": " << fed.p95_ms << "}\n}\n";
  printf("Wrote training report to %s\n", out_path);
  return 0;
}

// ---- Fleet report (S2A_BENCH_FLEET=<out.json>) ----
//
// Times the execution engines on a loop whose stages have honest edge
// latencies: the sensor models acquisition as a real blocking wait
// (sensing latency is I/O-like — the core is idle while the ADC/DMA
// fills the buffer), the processor burns CPU. The fleet's win is
// overlapping many loops' acquisition waits; the pipeline's win is
// hiding one loop's sensing latency behind its processing latency.
// Three sections:
//  * fleet:    64 loops, serial one-at-a-time baseline vs Fleet on a
//              4-slot pool (the ISSUE's >= 2x acceptance bar).
//  * pipeline: one loop, synchronous vs pipelined engine.
//  * chaos:    finite-deadline fleet with FaultPlan-driven fault
//              windows plus wall-clock stragglers — checks shedding
//              isolates the stragglers and no healthy loop stalls.

class BlockingSensor : public core::Sensor {
 public:
  explicit BlockingSensor(int acquire_us) : acquire_us_(acquire_us) {}
  core::Observation sense(double now, Rng& rng) override {
    std::this_thread::sleep_for(std::chrono::microseconds(acquire_us_));
    core::Observation obs;
    obs.data = {rng.normal(), rng.normal(), rng.normal(), rng.normal()};
    obs.timestamp = now;
    obs.energy_j = 1e-3;
    return obs;
  }

 private:
  int acquire_us_;
};

class SpinProcessor : public core::Processor {
 public:
  explicit SpinProcessor(int iters) : iters_(iters) {}
  std::vector<double> process(const core::Observation& obs, Rng&) override {
    double acc = 0.0;
    for (int i = 0; i < iters_; ++i) acc += std::sin(i * 1e-3);
    std::vector<double> out = obs.data;
    out[0] += acc * 1e-12;
    return out;
  }
  double energy_per_call_j() const override { return 1e-4; }

 private:
  int iters_;
};

class WallStallProcessor : public core::Processor {
 public:
  explicit WallStallProcessor(int ms) : ms_(ms) {}
  std::vector<double> process(const core::Observation& obs, Rng&) override {
    std::this_thread::sleep_for(std::chrono::milliseconds(ms_));
    return obs.data;
  }

 private:
  int ms_;
};

class SinkActuator : public core::Actuator {
 public:
  void actuate(const core::Action& action, Rng&) override {
    benchmark::DoNotOptimize(action.data.data());
  }
};

// Cheap occupancy-grid source for the model-serving (batched) section —
// no blocking, so the comparison isolates processor dispatch cost.
class GridSourceSensor : public core::Sensor {
 public:
  explicit GridSourceSensor(std::size_t numel) : numel_(numel) {}
  core::Observation sense(double now, Rng& rng) override {
    core::Observation obs;
    obs.data.resize(numel_);
    for (std::size_t i = 0; i < numel_; ++i)
      obs.data[i] = rng.bernoulli(0.2) ? 1.0 : 0.0;
    obs.timestamp = now;
    obs.energy_j = 1e-3;
    return obs;
  }

 private:
  std::size_t numel_;
};

// One self-contained loop stack for the fleet/pipeline sections.
struct EdgeLoop {
  BlockingSensor sensor;
  std::unique_ptr<fault::FaultySensor> faulty;
  std::unique_ptr<core::Processor> proc;
  SinkActuator act;
  core::PeriodicPolicy policy{1};
  std::unique_ptr<core::SensingActionLoop> loop;

  EdgeLoop(int acquire_us, std::unique_ptr<core::Processor> processor,
           fault::FaultPlan plan = {})
      : sensor(acquire_us), proc(std::move(processor)) {
    core::Sensor* s = &sensor;
    if (!plan.empty()) {
      faulty = std::make_unique<fault::FaultySensor>(sensor, plan);
      s = faulty.get();
    }
    core::LoopConfig cfg;
    cfg.resilience.max_sense_retries = 1;
    loop = std::make_unique<core::SensingActionLoop>(*s, *proc, act, policy,
                                                     cfg);
  }
};

int run_fleet_report(const char* out_path) {
  print_cpu_banner();
  constexpr int kLoops = 64, kTicks = 20;
  constexpr int kAcquireUs = 400, kSpinIters = 4000;
  const auto make_proc = [&] {
    return std::make_unique<SpinProcessor>(kSpinIters);
  };
  const auto wall_of = [](const std::function<void()>& fn) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0)
        .count();
  };

  // Serial baseline: the same 64 loops, one at a time, one thread.
  double serial_wall_s = 0.0;
  {
    util::ScopedGlobalThreads threads(1);
    std::vector<std::unique_ptr<EdgeLoop>> loops;
    for (int i = 0; i < kLoops; ++i)
      loops.push_back(std::make_unique<EdgeLoop>(kAcquireUs, make_proc()));
    serial_wall_s = wall_of([&] {
      for (int i = 0; i < kLoops; ++i) {
        Rng rng(1000 + i);
        loops[i]->loop->run(kTicks, rng);
      }
    });
  }
  const double serial_tps = kLoops * kTicks / serial_wall_s;

  // Fleet: same workload on a 4-slot pool (acquisition waits overlap).
  core::FleetStats fs;
  {
    util::ScopedGlobalThreads threads(kParallelThreads);
    std::vector<std::unique_ptr<EdgeLoop>> loops;
    core::Fleet fleet(core::FleetConfig{/*batch=*/4});
    for (int i = 0; i < kLoops; ++i) {
      loops.push_back(std::make_unique<EdgeLoop>(kAcquireUs, make_proc()));
      fleet.add(*loops.back()->loop, {kTicks}, /*seed=*/1000 + i);
    }
    fs = fleet.run();
  }
  double p50_sum = 0.0, p95_max = 0.0;
  for (const auto& ls : fs.loops) {
    p50_sum += ls.p50_tick_ms;
    p95_max = std::max(p95_max, ls.p95_tick_ms);
  }
  const double mean_p50_ms = p50_sum / fs.loops.size();
  const double fleet_speedup = fs.ticks_per_s / serial_tps;
  printf("fleet      %3d loops x %d ticks  serial %8.0f ticks/s | fleet(%d threads) %8.0f ticks/s | speedup %.2fx (mean p50 %.3f ms, max p95 %.3f ms)\n",
         kLoops, kTicks, serial_tps, kParallelThreads, fs.ticks_per_s,
         fleet_speedup, mean_p50_ms, p95_max);

  // Pipelined single loop: balanced stages so the overlap is visible —
  // the pipelined rate is bounded by max(sense, commit) instead of
  // their sum.
  double sync_wall_s = 0.0, pipe_wall_s = 0.0;
  constexpr int kPipeTicks = 300, kPipeSpin = 24000;
  {
    util::ScopedGlobalThreads threads(kParallelThreads);
    EdgeLoop sync_loop(kAcquireUs,
                       std::make_unique<SpinProcessor>(kPipeSpin));
    core::PipelinedRunner sync_runner(
        *sync_loop.loop, {core::PipelineMode::kSynchronous, 4});
    sync_wall_s =
        wall_of([&] { sync_runner.run(kPipeTicks, /*seed=*/42); });

    EdgeLoop pipe_loop(kAcquireUs,
                       std::make_unique<SpinProcessor>(kPipeSpin));
    core::PipelinedRunner pipe_runner(
        *pipe_loop.loop, {core::PipelineMode::kPipelined, 4});
    pipe_wall_s =
        wall_of([&] { pipe_runner.run(kPipeTicks, /*seed=*/42); });
  }
  const double pipe_speedup = sync_wall_s / pipe_wall_s;
  printf("pipeline   1 loop x %d ticks     sync %8.0f ticks/s | pipelined %17.0f ticks/s | speedup %.2fx\n",
         kPipeTicks, kPipeTicks / sync_wall_s, kPipeTicks / pipe_wall_s,
         pipe_speedup);

  // Chaos: finite deadlines, FaultPlan fault windows on every loop, and
  // four wall-clock stragglers. Healthy loops must complete every tick
  // with zero shedding (the fleet never stalls on a straggler);
  // stragglers must be shed, not waited on.
  constexpr int kChaosLoops = 32, kChaosTicks = 30, kStragglers = 4;
  core::FleetStats cs;
  {
    util::ScopedGlobalThreads threads(kParallelThreads);
    std::vector<std::unique_ptr<EdgeLoop>> loops;
    core::Fleet fleet(core::FleetConfig{/*batch=*/4});
    for (int i = 0; i < kChaosLoops; ++i) {
      const bool straggler = i < kStragglers;
      std::unique_ptr<core::Processor> proc =
          straggler ? std::unique_ptr<core::Processor>(
                          std::make_unique<WallStallProcessor>(20))
                    : std::unique_ptr<core::Processor>(
                          std::make_unique<SpinProcessor>(kSpinIters));
      loops.push_back(std::make_unique<EdgeLoop>(
          kAcquireUs, std::move(proc),
          fault::FaultPlan::random_component_plan(
              /*seed=*/7000 + i, /*horizon_s=*/kChaosTicks * 0.05,
              /*events=*/4, /*mean_duration_s=*/0.2)));
      core::FleetLoopConfig lc;
      lc.ticks = kChaosTicks;
      lc.deadline_s = straggler ? 2e-3 : 0.25;  // stragglers: hopeless
      lc.shed_slack = 4.0;
      fleet.add(*loops.back()->loop, lc, /*seed=*/3000 + i);
    }
    cs = fleet.run();
  }
  long straggler_shed = 0;
  bool healthy_complete = true, healthy_unshed = true;
  for (int i = 0; i < kChaosLoops; ++i) {
    if (i < kStragglers) {
      straggler_shed += cs.loops[i].shed;
    } else {
      healthy_complete &= cs.loops[i].executed == kChaosTicks;
      healthy_unshed &= cs.loops[i].shed == 0;
    }
  }
  const bool zero_stalls = healthy_complete && healthy_unshed;
  printf("chaos      %d loops (%d stragglers)  straggler shed %ld ticks | healthy complete %s | zero stalls %s\n",
         kChaosLoops, kStragglers, straggler_shed,
         healthy_complete ? "yes" : "NO", zero_stalls ? "yes" : "NO");

  // Batched inference: the same 64 loops all serving ONE small
  // perception model (multi-tenant shape). Per-loop dispatch must give
  // every member a private model copy (members run concurrently and the
  // conv stack is not thread-safe) and pays the full fixed cost of a
  // forward — packing, tensor/arena bookkeeping — per member tick. The
  // batched engine shares one model and fuses concurrently-ready
  // members into [B, ...] forwards, amortizing those fixed costs.
  constexpr int kBatchLoops = 64, kBatchTicks = 20, kGather = 16;
  lidar::AutoencoderConfig acfg;
  acfg.grid.nx = 8;
  acfg.grid.ny = 8;
  acfg.grid.nz = 2;
  acfg.c1 = 4;
  acfg.c2 = 4;
  const std::size_t grid_numel = static_cast<std::size_t>(acfg.grid.nx) *
                                 acfg.grid.ny * acfg.grid.nz;
  struct ModelLoop {
    GridSourceSensor sensor;
    SinkActuator act;
    core::PeriodicPolicy policy{1};
    std::unique_ptr<lidar::OccupancyAutoencoder> ae;  // per-loop mode only
    std::unique_ptr<lidar::BatchedReconstructionProcessor> own_proc;
    std::unique_ptr<core::BatchSlot> slot;
    std::unique_ptr<core::SensingActionLoop> loop;

    // Per-loop variant: a private identically-seeded model copy.
    ModelLoop(std::size_t numel, const lidar::AutoencoderConfig& cfg)
        : sensor(numel) {
      Rng wr(7);
      ae = std::make_unique<lidar::OccupancyAutoencoder>(cfg, wr);
      own_proc =
          std::make_unique<lidar::BatchedReconstructionProcessor>(*ae, 1e-4);
      loop = std::make_unique<core::SensingActionLoop>(sensor, *own_proc, act,
                                                       policy);
    }
    // Batched variant: a slot onto the one shared model.
    ModelLoop(std::size_t numel, core::BatchProcessor& shared)
        : sensor(numel) {
      slot = std::make_unique<core::BatchSlot>(shared);
      loop = std::make_unique<core::SensingActionLoop>(sensor, *slot, act,
                                                       policy);
    }
  };

  core::FleetStats per_loop_fs;
  {
    util::ScopedGlobalThreads threads(kParallelThreads);
    std::vector<std::unique_ptr<ModelLoop>> loops;
    core::Fleet fleet(core::FleetConfig{/*batch=*/4});
    for (int i = 0; i < kBatchLoops; ++i) {
      loops.push_back(std::make_unique<ModelLoop>(grid_numel, acfg));
      fleet.add(*loops.back()->loop, {kBatchTicks}, /*seed=*/5000 + i);
    }
    per_loop_fs = fleet.run();
  }

  core::FleetStats batched_fs;
  long batched_forwards = 0;
  {
    util::ScopedGlobalThreads threads(kParallelThreads);
    Rng wr(7);
    lidar::OccupancyAutoencoder shared_ae(acfg, wr);
    lidar::BatchedReconstructionProcessor shared(shared_ae, 1e-4);
    std::vector<std::unique_ptr<ModelLoop>> loops;
    core::BatchedFleetConfig bc;
    bc.gather = kGather;
    core::BatchedFleet fleet(shared, bc);
    for (int i = 0; i < kBatchLoops; ++i) {
      loops.push_back(std::make_unique<ModelLoop>(grid_numel, shared));
      fleet.add(*loops.back()->loop, *loops.back()->slot, {kBatchTicks},
                /*seed=*/5000 + i);
    }
    batched_fs = fleet.run();
    batched_forwards = fleet.batched_forwards();
  }
  const double batched_speedup =
      batched_fs.ticks_per_s / per_loop_fs.ticks_per_s;
  printf("batched    %3d loops x %d ticks  per-loop %8.0f ticks/s | batched(gather %d) %8.0f ticks/s | speedup %.2fx (%ld fused forwards)\n",
         kBatchLoops, kBatchTicks, per_loop_fs.ticks_per_s, kGather,
         batched_fs.ticks_per_s, batched_speedup, batched_forwards);

  // Admission control: a fleet serving healthy members with feasible
  // deadlines is hit by waves of hopeless stragglers. Wave 1 lands on a
  // cold window (admitted) and drives the miss/shed pressure up; wave 2
  // arrives under moderate pressure (degraded contracts); wave 3 under
  // saturation (rejected). Healthy members must never miss a deadline —
  // admission keeps the overload out instead of letting it in to shed.
  constexpr int kHealthy = 16, kHealthyTicks = 40;
  constexpr int kWave1 = 4, kWave2 = 12, kWaveTicks = 30;
  long healthy_misses = 0, healthy_shed = 0;
  long adm_admitted = 0, adm_degraded = 0, adm_rejected = 0;
  double adm_pressure = 0.0;
  bool wave2_degraded = false, wave3_rejected = false;
  {
    util::ScopedGlobalThreads threads(kParallelThreads);
    core::FleetConfig fc;
    fc.batch = 4;
    fc.admission.enabled = true;
    fc.admission.min_samples = 64;
    fc.admission.degrade_threshold = 0.05;
    fc.admission.reject_threshold = 0.25;
    core::Fleet fleet(fc);

    std::vector<std::unique_ptr<EdgeLoop>> loops;
    const auto add_healthy = [&](int n) {
      for (int i = 0; i < n; ++i) {
        loops.push_back(std::make_unique<EdgeLoop>(
            kAcquireUs, std::make_unique<SpinProcessor>(kSpinIters)));
        core::FleetLoopConfig lc;
        lc.ticks = kHealthyTicks;
        lc.deadline_s = 0.25;
        fleet.try_add(*loops.back()->loop, lc, /*seed=*/8000 + i);
      }
    };
    const auto add_stragglers = [&](int n, int base_seed) {
      core::AdmissionDecision worst = core::AdmissionDecision::kAdmitted;
      for (int i = 0; i < n; ++i) {
        loops.push_back(std::make_unique<EdgeLoop>(
            kAcquireUs, std::make_unique<WallStallProcessor>(20)));
        core::FleetLoopConfig lc;
        lc.ticks = kWaveTicks;
        lc.deadline_s = 2e-3;  // hopeless: the stall is 10x the budget
        lc.shed_slack = 4.0;
        const auto r =
            fleet.try_add(*loops.back()->loop, lc, /*seed=*/base_seed + i);
        worst = std::max(worst, r.decision);
      }
      return worst;
    };

    add_healthy(kHealthy);
    add_stragglers(kWave1, 8100);  // cold window: admitted
    const core::FleetStats s1 = fleet.run();

    wave2_degraded =
        add_stragglers(kWave2, 8200) == core::AdmissionDecision::kDegraded;
    const core::FleetStats s2 = fleet.run();

    wave3_rejected =
        add_stragglers(kWave1, 8300) == core::AdmissionDecision::kRejected;

    for (const core::FleetStats* s : {&s1, &s2}) {
      for (int i = 0; i < kHealthy; ++i) {
        healthy_misses += s->loops[static_cast<std::size_t>(i)].deadline_misses;
        healthy_shed += s->loops[static_cast<std::size_t>(i)].shed;
      }
    }
    adm_admitted = fleet.admission().admitted();
    adm_degraded = fleet.admission().degraded();
    adm_rejected = fleet.admission().rejected();
    adm_pressure = fleet.admission().pressure();
  }
  const bool zero_healthy_misses = healthy_misses == 0 && healthy_shed == 0;
  printf("admission  %d healthy + straggler waves  admitted %ld degraded %ld rejected %ld | pressure %.3f | healthy misses %ld shed %ld (%s)\n",
         kHealthy, adm_admitted, adm_degraded, adm_rejected, adm_pressure,
         healthy_misses, healthy_shed, zero_healthy_misses ? "ok" : "FAIL");

  std::ofstream out(out_path);
  if (!out) {
    fprintf(stderr, "cannot open %s for writing\n", out_path);
    return 1;
  }
  out << "{\n  \"threads\": " << kParallelThreads
      << ",\n  \"cpu\": \"" << util::cpu_feature_string()
      << "\",\n  \"simd\": \"" << active_simd_name()
      << "\",\n  \"fleet\": {\n    \"loops\": " << kLoops
      << ", \"ticks_per_loop\": " << kTicks
      << ",\n    \"serial_ticks_per_s\": " << serial_tps
      << ",\n    \"fleet_ticks_per_s\": " << fs.ticks_per_s
      << ",\n    \"speedup\": " << fleet_speedup
      << ",\n    \"mean_p50_tick_ms\": " << mean_p50_ms
      << ", \"max_p95_tick_ms\": " << p95_max
      << ",\n    \"dispatches\": " << fs.dispatches
      << ", \"deadline_misses\": " << fs.deadline_misses
      << ", \"shed\": " << fs.shed << "\n  },\n"
      << "  \"pipeline\": {\n    \"ticks\": " << kPipeTicks
      << ",\n    \"sync_ticks_per_s\": " << kPipeTicks / sync_wall_s
      << ",\n    \"pipelined_ticks_per_s\": " << kPipeTicks / pipe_wall_s
      << ",\n    \"speedup\": " << pipe_speedup << "\n  },\n"
      << "  \"chaos\": {\n    \"loops\": " << kChaosLoops
      << ", \"stragglers\": " << kStragglers
      << ",\n    \"straggler_shed_ticks\": " << straggler_shed
      << ",\n    \"healthy_complete\": "
      << (healthy_complete ? "true" : "false")
      << ",\n    \"zero_stalls\": " << (zero_stalls ? "true" : "false")
      << "\n  },\n"
      << "  \"batched\": {\n    \"loops\": " << kBatchLoops
      << ", \"ticks_per_loop\": " << kBatchTicks
      << ", \"gather\": " << kGather
      << ",\n    \"per_loop_ticks_per_s\": " << per_loop_fs.ticks_per_s
      << ",\n    \"batched_ticks_per_s\": " << batched_fs.ticks_per_s
      << ",\n    \"speedup\": " << batched_speedup
      << ",\n    \"batched_forwards\": " << batched_forwards
      << "\n  },\n"
      << "  \"admission\": {\n    \"healthy_loops\": " << kHealthy
      << ", \"straggler_waves\": [" << kWave1 << ", " << kWave2 << ", "
      << kWave1 << "]"
      << ",\n    \"admitted\": " << adm_admitted
      << ", \"degraded\": " << adm_degraded
      << ", \"rejected\": " << adm_rejected
      << ",\n    \"pressure\": " << adm_pressure
      << ",\n    \"wave2_degraded\": " << (wave2_degraded ? "true" : "false")
      << ", \"wave3_rejected\": " << (wave3_rejected ? "true" : "false")
      << ",\n    \"healthy_deadline_misses\": " << healthy_misses
      << ", \"healthy_shed\": " << healthy_shed
      << ",\n    \"zero_healthy_misses\": "
      << (zero_healthy_misses ? "true" : "false") << "\n  }\n}\n";
  printf("Wrote fleet report to %s\n", out_path);
  // Gate on the correctness-shaped outcomes (stall/miss isolation), not
  // on the throughput ratio — speedups are machine-dependent.
  return (zero_stalls && zero_healthy_misses) ? 0 : 1;
}

// ---- Offload policy report (S2A_BENCH_OFFLOAD=<out.json>) ----
//
// Two sections, both gated (non-zero exit on violation):
//  1. Policy-value sweep: policy vs always-local vs always-remote across
//     a loss × base-latency grid, 400 virtual ticks each, ~40% of ticks
//     scripted uncertain. "Accuracy" is the fraction of ticks answered
//     adequately — a confident tick is adequate either way; an uncertain
//     tick is adequate only when the remote model served it. The gate:
//     at >= 1 sweep point the policy must meet the accuracy floor AND
//     beat every baseline that also meets it on expected latency.
//  2. Partition stall check: a fleet sharing one contended uplink loses
//     the link mid-run. Strict members must latch SAFE_STOP within their
//     hysteresis bound, healthy members must finish NOMINAL, and no
//     member may emit a non-finite actuation, miss a deadline, or shed a
//     tick — the link is virtual-time, so a dead cloud must never
//     wall-block a loop.

struct OffloadPoint {
  core::OffloadMode mode = core::OffloadMode::kPolicy;
  double loss = 0.0;
  double base_ms = 0.0;
  double mean_latency_ms = 0.0;
  double p95_latency_ms = 0.0;
  double accuracy = 0.0;
  double energy_j = 0.0;
  long remote_served = 0;
  long remote_failures = 0;
};

OffloadPoint run_offload_point(core::OffloadMode mode, double loss,
                               double base_ms) {
  constexpr int kTicks = 400;
  constexpr double kDt = 0.05;
  ScaleModel local{2.0, 5e-3};
  ScaleModel remote{10.0};
  TimestampGate gate;
  net::LinkConfig lc;
  lc.loss_prob = loss;
  lc.base_latency_s = base_ms * 1e-3;
  const core::OffloadConfig cfg = bench_offload_config(mode);
  core::OffloadExecutor exec(local, remote, net::LinkSim(lc, {}, /*seed=*/77),
                             cfg, &gate, /*seed=*/77);
  Rng rng(5);
  long adequate = 0;
  double energy = 0.0;
  std::vector<double> lat_ms;
  lat_ms.reserve(kTicks);
  for (int i = 0; i < kTicks; ++i) {
    const double now = kDt * static_cast<double>(i);
    const core::Observation obs = offload_obs(now);
    exec.process_at(now, obs, rng);
    if (exec.last_served_remote() || gate.score(obs) <= cfg.regret_gate)
      ++adequate;
    lat_ms.push_back(exec.last_latency_s() * 1e3);
    energy += exec.energy_per_call_j();
  }
  OffloadPoint p;
  p.mode = mode;
  p.loss = loss;
  p.base_ms = base_ms;
  p.mean_latency_ms = exec.metrics().total_latency_s / kTicks * 1e3;
  p.p95_latency_ms = percentiles(lat_ms).p95_ms;
  p.accuracy = static_cast<double>(adequate) / kTicks;
  p.energy_j = energy;
  p.remote_served = exec.metrics().remote_served;
  p.remote_failures = exec.metrics().remote_failures;
  return p;
}

// One offloading fleet member for the partition stall check: sensor →
// OffloadExecutor(local, remote, link) → finite-guarded actuator, with
// an always-uncertain gate so every tick exercises the remote path.
struct OffloadMember {
  struct SineSensor : core::Sensor {
    core::Observation sense(double now, Rng& rng) override {
      core::Observation obs;
      obs.data = {std::sin(now) + rng.normal(0.0, 0.05),
                  std::cos(now) + rng.normal(0.0, 0.05)};
      obs.timestamp = now;
      obs.energy_j = 1e-3;
      return obs;
    }
  };
  struct FiniteGuard : core::Actuator {
    void actuate(const core::Action& action, Rng&) override {
      saw_nonfinite = saw_nonfinite || !util::all_finite(action.data);
    }
    bool saw_nonfinite = false;
  };
  struct AlwaysUncertain : core::UncertaintySource {
    double score(const core::Observation&) override { return 2.0; }
  };

  SineSensor sensor;
  ScaleModel local{2.0, 5e-3};
  ScaleModel remote{10.0};
  AlwaysUncertain gate;
  FiniteGuard act;
  core::PeriodicPolicy policy{1};
  std::unique_ptr<core::OffloadExecutor> exec;
  std::unique_ptr<core::SensingActionLoop> loop;

  OffloadMember(net::LinkSim link, core::OffloadConfig ocfg,
                std::uint64_t seed) {
    core::LoopConfig lcfg;
    lcfg.resilience.degrade_after = 2;
    lcfg.resilience.recover_after = 2;
    lcfg.resilience.safe_stop_after = 3;
    exec = std::make_unique<core::OffloadExecutor>(local, remote,
                                                   std::move(link), ocfg,
                                                   &gate, seed);
    loop = std::make_unique<core::SensingActionLoop>(sensor, *exec, act,
                                                     policy, lcfg);
  }
};

int run_offload_report(const char* out_path) {
  constexpr double kAccuracyFloor = 0.9;
  constexpr int kSweepTicks = 400;
  const double kLosses[] = {0.0, 0.1, 0.3};
  const double kBaseMs[] = {2.0, 10.0};
  const core::OffloadMode kModes[] = {core::OffloadMode::kPolicy,
                                      core::OffloadMode::kAlwaysLocal,
                                      core::OffloadMode::kAlwaysRemote};
  print_cpu_banner();

  std::vector<OffloadPoint> sweep;
  bool policy_wins = false;
  int winning_points = 0;
  for (double loss : kLosses) {
    for (double base_ms : kBaseMs) {
      OffloadPoint pts[3];
      for (int m = 0; m < 3; ++m) {
        pts[m] = run_offload_point(kModes[m], loss, base_ms);
        sweep.push_back(pts[m]);
      }
      const OffloadPoint& pol = pts[0];
      const OffloadPoint& loc = pts[1];
      const OffloadPoint& rem = pts[2];
      // Beating a baseline: either it misses the accuracy floor outright
      // or the policy's expected latency is lower at the same floor.
      const bool beats_local = loc.accuracy < kAccuracyFloor ||
                               pol.mean_latency_ms < loc.mean_latency_ms;
      const bool beats_remote = rem.accuracy < kAccuracyFloor ||
                                pol.mean_latency_ms < rem.mean_latency_ms;
      const bool win =
          pol.accuracy >= kAccuracyFloor && beats_local && beats_remote;
      if (win) ++winning_points;
      policy_wins = policy_wins || win;
      printf("offload  loss %.2f base %4.0fms | policy %6.2fms acc %.2f | "
             "local %6.2fms acc %.2f | remote %6.2fms acc %.2f | %s\n",
             loss, base_ms, pol.mean_latency_ms, pol.accuracy,
             loc.mean_latency_ms, loc.accuracy, rem.mean_latency_ms,
             rem.accuracy, win ? "policy wins" : "no win");
    }
  }

  // Partition stall check: every third member runs strict over a
  // permanently partitioned link; the rest see a 1 s transient outage.
  // All 24 share one uplink (static fair share).
  constexpr int kMembers = 24, kPartTicks = 100;
  const net::LinkFaultSchedule transient(
      {{net::LinkFaultKind::kPartition, 1.0, 2.0, 0.0}});
  const net::LinkFaultSchedule permanent(
      {{net::LinkFaultKind::kPartition, 1.0, 1e6, 0.0}});
  net::LinkConfig shared_lc;
  shared_lc.sharers = kMembers;

  int strict_members = 0, safe_stops = 0, nominal = 0;
  bool nonfinite = false, hysteresis_ok = true, healthy_complete = true;
  long part_misses = 0, part_shed = 0;
  bool executed_ok = true;
  {
    core::Fleet fleet(core::FleetConfig{/*batch=*/4});
    std::vector<std::unique_ptr<OffloadMember>> members;
    for (int i = 0; i < kMembers; ++i) {
      const bool strict = i % 3 == 0;
      strict_members += strict ? 1 : 0;
      core::OffloadConfig ocfg =
          bench_offload_config(core::OffloadMode::kPolicy);
      ocfg.strict_uncertain = strict;
      members.push_back(std::make_unique<OffloadMember>(
          net::LinkSim(shared_lc, strict ? permanent : transient,
                       /*seed=*/31, static_cast<std::uint64_t>(i)),
          ocfg, /*seed=*/static_cast<std::uint64_t>(31 + i)));
      core::FleetLoopConfig lc;
      lc.ticks = kPartTicks;
      lc.deadline_s = 0.25;
      fleet.add(*members.back()->loop, lc, /*seed=*/700 + i);
    }
    const core::FleetStats stats = fleet.run();
    for (int i = 0; i < kMembers; ++i) {
      const bool strict = i % 3 == 0;
      const auto& m = *members[static_cast<std::size_t>(i)];
      nonfinite = nonfinite || m.act.saw_nonfinite;
      if (strict) {
        if (m.loop->state() == core::LoopState::kSafeStop) ++safe_stops;
        // Latched near the partition onset, not at the end of the run.
        hysteresis_ok = hysteresis_ok &&
                        m.loop->metrics().safe_stop_ticks >= kPartTicks - 35;
      } else {
        if (m.loop->state() == core::LoopState::kNominal) ++nominal;
        healthy_complete =
            healthy_complete && m.loop->metrics().actions == kPartTicks;
      }
      part_misses += stats.loops[static_cast<std::size_t>(i)].deadline_misses;
      part_shed += stats.loops[static_cast<std::size_t>(i)].shed;
      executed_ok = executed_ok &&
                    stats.loops[static_cast<std::size_t>(i)].executed ==
                        stats.loops[static_cast<std::size_t>(i)].requested;
    }
  }
  const bool partition_ok =
      safe_stops == strict_members && nominal == kMembers - strict_members &&
      !nonfinite && hysteresis_ok && healthy_complete && part_misses == 0 &&
      part_shed == 0 && executed_ok;
  printf("partition %d members (%d strict) | safe_stops %d/%d nominal %d/%d | "
         "misses %ld shed %ld nonfinite %s (%s)\n",
         kMembers, strict_members, safe_stops, strict_members, nominal,
         kMembers - strict_members, part_misses, part_shed,
         nonfinite ? "yes" : "no", partition_ok ? "ok" : "FAIL");

  std::ofstream out(out_path);
  if (!out) {
    fprintf(stderr, "cannot open %s for writing\n", out_path);
    return 1;
  }
  out << "{\n  \"cpu\": \"" << util::cpu_feature_string()
      << "\",\n  \"simd\": \"" << active_simd_name()
      << "\",\n  \"ticks_per_point\": " << kSweepTicks
      << ",\n  \"accuracy_floor\": " << kAccuracyFloor
      << ",\n  \"sweep\": [\n";
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    const OffloadPoint& p = sweep[i];
    out << "    {\"mode\": \"" << core::offload_mode_name(p.mode)
        << "\", \"loss\": " << p.loss
        << ", \"base_latency_ms\": " << p.base_ms
        << ", \"mean_latency_ms\": " << p.mean_latency_ms
        << ", \"p95_latency_ms\": " << p.p95_latency_ms
        << ", \"accuracy\": " << p.accuracy
        << ", \"energy_j\": " << p.energy_j
        << ", \"remote_served\": " << p.remote_served
        << ", \"remote_failures\": " << p.remote_failures << "}"
        << (i + 1 < sweep.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"policy_wins\": " << (policy_wins ? "true" : "false")
      << ",\n  \"winning_points\": " << winning_points
      << ",\n  \"partition\": {\n    \"members\": " << kMembers
      << ", \"strict_members\": " << strict_members
      << ", \"ticks\": " << kPartTicks
      << ",\n    \"safe_stops\": " << safe_stops
      << ", \"nominal\": " << nominal
      << ",\n    \"deadline_misses\": " << part_misses
      << ", \"shed\": " << part_shed
      << ",\n    \"nonfinite_actuations\": " << (nonfinite ? 1 : 0)
      << ",\n    \"ok\": " << (partition_ok ? "true" : "false")
      << "\n  }\n}\n";
  printf("Wrote offload report to %s\n", out_path);
  if (!policy_wins)
    fprintf(stderr,
            "offload gate: policy beat no baseline pair at the accuracy "
            "floor\n");
  if (!partition_ok)
    fprintf(stderr, "offload gate: partition stall check failed\n");
  return (policy_wins && partition_ok) ? 0 : 1;
}

// ---- Fed-scale report (S2A_BENCH_FED_SCALE=<out.json>) ----
//
// Sweeps the hierarchical federated engine over {1k, 10k, 100k}
// simulated clients (S2A_FED_SCALE_CLIENTS=<n> narrows the sweep to a
// single point — CI uploads the 1k point this way). Per point it times
// one full-participation dense round and one sampled + top-k compressed
// round, then asserts the tentpole invariant: peak aggregator memory
// (chunk workspaces + per-level fixed-point accumulators, HierStats::
// peak_accumulator_bytes) must not exceed the smallest point's — the
// streaming reduction is O(levels + threads) model buffers, never
// O(clients). A violation exits non-zero after the JSON is written.

struct FedScalePoint {
  int clients = 0;
  int reps = 0;
  Percentiles dense_ms, sampled_ms;
  federated::HierResult dense, sampled;
};

int run_fed_scale_report(const char* out_path) {
  print_cpu_banner();
  std::vector<int> points = {1000, 10000, 100000};
  if (const char* env = std::getenv("S2A_FED_SCALE_CLIENTS")) {
    const int n = std::atoi(env);
    if (n < 1) {
      fprintf(stderr, "S2A_FED_SCALE_CLIENTS must be a positive integer\n");
      return 1;
    }
    points = {n};
  }

  std::vector<FedScalePoint> results;
  for (const int clients : points) {
    FedScalePoint pt;
    pt.clients = clients;
    // The dense round is O(clients) local trainings; keep the wall time
    // of the 100k point sane by shrinking reps as the sweep grows.
    pt.reps = clients <= 1000 ? 10 : clients <= 10000 ? 4 : 2;
    const FedScaleFixture fx = FedScaleFixture::make(clients);
    const federated::HierConfig sampled = fx.sampled_cfg();
    pt.dense_ms =
        percentiles(time_reps(pt.reps, [&] { pt.dense = fx.run(fx.cfg); }));
    pt.sampled_ms =
        percentiles(time_reps(pt.reps, [&] { pt.sampled = fx.run(sampled); }));
    printf(
        "%7d clients (%4d edges, %3d regions) | dense p50 %9.2f ms peak %8zu B"
        " | sampled p50 %8.2f ms peak %8zu B cohort %5ld ratio %.2fx\n",
        clients, pt.dense.hier.edges, pt.dense.hier.regions,
        pt.dense_ms.p50_ms, pt.dense.hier.peak_accumulator_bytes,
        pt.sampled_ms.p50_ms, pt.sampled.hier.peak_accumulator_bytes,
        pt.sampled.hier.sampled_client_rounds,
        pt.sampled.hier.compression_ratio());
    results.push_back(std::move(pt));
  }

  // The hard scale assertion: the streaming reduction's memory bound is
  // set by tree fanout and thread count, so a hundredfold client-count
  // increase must leave the high-water mark exactly where the smallest
  // point put it.
  int failures = 0;
  const auto& base = results.front();
  for (const FedScalePoint& pt : results) {
    for (const bool dense : {true, false}) {
      const std::size_t peak = (dense ? pt.dense : pt.sampled)
                                   .hier.peak_accumulator_bytes;
      const std::size_t limit = (dense ? base.dense : base.sampled)
                                    .hier.peak_accumulator_bytes;
      if (peak > limit) {
        fprintf(stderr,
                "fed-scale gate: %s peak aggregator memory grew with client "
                "count (%zu B at %d clients > %zu B at %d clients)\n",
                dense ? "dense" : "sampled", peak, pt.clients, limit,
                base.clients);
        ++failures;
      }
    }
  }

  std::ofstream out(out_path);
  if (!out) {
    fprintf(stderr, "cannot open %s for writing\n", out_path);
    return 1;
  }
  out << "{\n  \"cpu\": \"" << util::cpu_feature_string() << "\",\n  \"simd\": \""
      << active_simd_name()
      << "\",\n  \"sampled_config\": {\"sample_fraction\": 0.05, "
         "\"topk_fraction\": 0.25, \"error_feedback\": true, "
         "\"bill_uplink\": true},\n  \"peak_memory_flat\": "
      << (failures == 0 ? "true" : "false") << ",\n  \"points\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const FedScalePoint& pt = results[i];
    const auto emit = [&](const char* key, const federated::HierResult& r,
                          const Percentiles& p, bool last) {
      out << "     \"" << key << "\": {\"p50_ms\": " << p.p50_ms
          << ", \"p95_ms\": " << p.p95_ms << ", \"peak_accumulator_bytes\": "
          << r.hier.peak_accumulator_bytes << ",\n       \"bytes_on_wire\": "
          << r.hier.bytes_on_wire << ", \"dense_bytes\": " << r.hier.dense_bytes
          << ", \"compression_ratio\": " << r.hier.compression_ratio()
          << ",\n       \"sampled_client_rounds\": "
          << r.hier.sampled_client_rounds << ", \"final_accuracy\": "
          << r.fl.final_accuracy << "}" << (last ? "" : ",") << "\n";
    };
    out << "    {\"clients\": " << pt.clients << ", \"edges\": "
        << pt.dense.hier.edges << ", \"regions\": " << pt.dense.hier.regions
        << ", \"reps\": " << pt.reps << ",\n";
    emit("dense", pt.dense, pt.dense_ms, false);
    emit("sampled", pt.sampled, pt.sampled_ms, true);
    out << "    }" << (i + 1 < results.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  printf("Wrote fed-scale report to %s\n", out_path);
  if (failures > 0) {
    fprintf(stderr, "fed-scale gate: %d peak-memory violation(s)\n", failures);
    return 1;
  }
  printf("fed-scale gate: peak aggregator memory flat across the sweep\n");
  return 0;
}

// ---- Perf regression gate (S2A_BENCH_BUDGETS=<budgets.json>) ----
//
// Re-times the budgeted hot paths single-threaded and fails if any p95
// exceeds its committed budget by more than the file's tolerance
// (default 1.25: a >25% p95 regression). scripts/check.sh runs this as
// its `perf` stage; S2A_SKIP_PERF=1 skips it there (e.g. on noisy
// shared runners).

struct Budget {
  std::string name;
  double p95_ms = 0.0;
};

// Purpose-built scanner for the committed BENCH_budgets.json — the file
// is machine-written with one "name"/"p95_ms" pair per budget entry, so
// a full JSON parser would be dead weight here.
bool parse_budgets(const std::string& text, double* tolerance,
                   std::vector<Budget>* budgets) {
  const auto number_after = [&](std::size_t pos, double* out) {
    pos = text.find(':', pos);
    if (pos == std::string::npos) return false;
    *out = std::strtod(text.c_str() + pos + 1, nullptr);
    return true;
  };
  const std::size_t tol_pos = text.find("\"tolerance\"");
  if (tol_pos == std::string::npos || !number_after(tol_pos, tolerance))
    return false;
  std::size_t pos = text.find("\"budgets\"");
  if (pos == std::string::npos) return false;
  while ((pos = text.find("\"name\"", pos)) != std::string::npos) {
    const std::size_t q0 = text.find('"', text.find(':', pos) + 1);
    const std::size_t q1 = text.find('"', q0 + 1);
    const std::size_t p95_pos = text.find("\"p95_ms\"", q1);
    if (q0 == std::string::npos || q1 == std::string::npos ||
        p95_pos == std::string::npos)
      return false;
    Budget b;
    b.name = text.substr(q0 + 1, q1 - q0 - 1);
    if (!number_after(p95_pos, &b.p95_ms)) return false;
    budgets->push_back(std::move(b));
    pos = p95_pos;
  }
  return !budgets->empty();
}

int run_budget_gate(const char* budgets_path) {
  std::ifstream in(budgets_path);
  if (!in) {
    fprintf(stderr, "cannot read budgets file %s\n", budgets_path);
    return 1;
  }
  const std::string text((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
  double tolerance = 0.0;
  std::vector<Budget> budgets;
  if (!parse_budgets(text, &tolerance, &budgets) || tolerance < 1.0) {
    fprintf(stderr, "malformed budgets file %s\n", budgets_path);
    return 1;
  }

  HotPathFixtures fx = HotPathFixtures::make();
  std::vector<ParallelWorkload> workloads = fx.workloads();
  util::ScopedGlobalThreads threads(1);
  print_cpu_banner();
  int failures = 0;
  for (const Budget& b : budgets) {
    const ParallelWorkload* wl = nullptr;
    for (const ParallelWorkload& w : workloads)
      if (b.name == w.name) wl = &w;
    if (wl == nullptr) {
      fprintf(stderr, "budget names unknown workload '%s'\n", b.name.c_str());
      ++failures;
      continue;
    }
    const Percentiles p = percentiles(time_reps(wl->reps, wl->fn));
    const double limit = b.p95_ms * tolerance;
    const bool ok = p.p95_ms <= limit;
    printf("%-22s p95 %8.3f ms  budget %8.3f ms x%.2f = %8.3f ms  %s\n",
           b.name.c_str(), p.p95_ms, b.p95_ms, tolerance, limit,
           ok ? "OK" : "FAIL");
    if (!ok) ++failures;
  }
  if (failures > 0) {
    fprintf(stderr, "perf gate: %d budget(s) exceeded (>%.0f%% p95 regression)\n",
            failures, (tolerance - 1.0) * 100.0);
    return 1;
  }
  printf("perf gate: all budgets within tolerance\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Report/gate modes replace the google-benchmark run entirely so every
  // configuration executes an identical call sequence.
  if (const char* out = std::getenv("S2A_BENCH_PARALLEL"))
    return run_parallel_report(out);
  if (const char* out = std::getenv("S2A_BENCH_KERNELS"))
    return run_kernels_report(out);
  if (const char* out = std::getenv("S2A_BENCH_TRAIN"))
    return run_train_report(out);
  if (const char* out = std::getenv("S2A_BENCH_FLEET"))
    return run_fleet_report(out);
  if (const char* out = std::getenv("S2A_BENCH_OFFLOAD"))
    return run_offload_report(out);
  if (const char* out = std::getenv("S2A_BENCH_FED_SCALE"))
    return run_fed_scale_report(out);
  if (const char* budgets = std::getenv("S2A_BENCH_BUDGETS"))
    return run_budget_gate(budgets);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  // S2A_TRACE=<path> traces the instrumented benchmark bodies (voxelize,
  // loop ticks, ...) and writes a Chrome trace on exit.
  s2a::obs::init_from_env();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (s2a::obs::dump_trace())
    printf("Wrote Chrome trace to %s\n", s2a::obs::trace_path().c_str());
  return 0;
}
