// Google-benchmark microbenches of the hot paths: voxelization, dense and
// convolutional forward passes, LIF stepping, LiDAR ray casting, and the
// LQR solve. These bound the per-tick budget of a real-time
// sensing-to-action loop on this substrate.
//
// The BM_Obs* series measures the observability layer itself — the cost
// of a TraceScope / histogram record when enabled, and the residual cost
// of instrumentation when disabled (the <2% overhead budget quoted in
// docs/OBSERVABILITY.md). Run with S2A_TRACE=<path> to also write a
// Chrome trace of the instrumented benchmark bodies.
#include <benchmark/benchmark.h>

#include "core/loop.hpp"
#include "core/policies.hpp"
#include "lidar/voxel_grid.hpp"
#include "neuro/spiking.hpp"
#include "nn/dense.hpp"
#include "nn/sequential.hpp"
#include "obs/obs.hpp"
#include "sim/lidar_sim.hpp"
#include "sim/scene.hpp"

namespace {

using namespace s2a;

void BM_LidarFullScan(benchmark::State& state) {
  sim::LidarConfig cfg;
  cfg.azimuth_steps = static_cast<int>(state.range(0));
  cfg.elevation_steps = 8;
  sim::LidarSimulator lidar(cfg);
  Rng rng(1);
  const sim::Scene scene = sim::generate_scene(sim::SceneConfig{}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(lidar.full_scan(scene, rng));
  }
  state.SetItemsProcessed(state.iterations() * lidar.num_beams());
}
BENCHMARK(BM_LidarFullScan)->Arg(90)->Arg(180)->Arg(360);

void BM_Voxelize(benchmark::State& state) {
  sim::LidarConfig cfg;
  cfg.azimuth_steps = 180;
  cfg.elevation_steps = 10;
  sim::LidarSimulator lidar(cfg);
  Rng rng(2);
  const sim::Scene scene = sim::generate_scene(sim::SceneConfig{}, rng);
  const sim::PointCloud pc = lidar.full_scan(scene, rng);
  lidar::VoxelGridConfig gc;
  for (auto _ : state) {
    benchmark::DoNotOptimize(lidar::VoxelGrid::from_cloud(pc, gc));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<long>(pc.returns.size()));
}
BENCHMARK(BM_Voxelize);

void BM_DenseForward(benchmark::State& state) {
  Rng rng(3);
  const int n = static_cast<int>(state.range(0));
  nn::Dense dense(n, n, rng);
  const nn::Tensor x = nn::Tensor::randn({8, n}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dense.forward(x));
  }
  state.SetItemsProcessed(state.iterations() * 8 * n * n);
}
BENCHMARK(BM_DenseForward)->Arg(32)->Arg(128)->Arg(512);

void BM_MlpForwardBackward(benchmark::State& state) {
  Rng rng(4);
  nn::Sequential mlp = nn::make_mlp(32, {64, 64}, 16, rng);
  const nn::Tensor x = nn::Tensor::randn({16, 32}, rng);
  for (auto _ : state) {
    nn::Tensor y = mlp.forward(x);
    benchmark::DoNotOptimize(mlp.backward(y));
  }
}
BENCHMARK(BM_MlpForwardBackward);

void BM_LifStep(benchmark::State& state) {
  Rng rng(5);
  neuro::SpikingConv2D layer(2, 8, 3, 2, 1, rng);
  const nn::Tensor x = nn::Tensor::randn({1, 2, 32, 32}, rng, 0.5);
  for (auto _ : state) {
    layer.begin_sequence();
    benchmark::DoNotOptimize(layer.step(x));
  }
}
BENCHMARK(BM_LifStep);

// ---- Observability layer (src/obs) ----
//
// Each BM_Obs* benchmark saves and restores the global enable flag so
// an S2A_TRACE run of the *other* benchmarks is unaffected.

class ObsEnabledGuard {
 public:
  explicit ObsEnabledGuard(bool on) : prev_(obs::enabled()) {
    obs::set_enabled(on);
  }
  ~ObsEnabledGuard() { obs::set_enabled(prev_); }

 private:
  bool prev_;
};

// The residual cost of a compiled-in span when obs is off: one relaxed
// load and a branch. This is what every instrumented hot path pays.
void BM_ObsDisabledTraceScope(benchmark::State& state) {
  ObsEnabledGuard guard(false);
  for (auto _ : state) {
    S2A_TRACE_SCOPE("bench.noop");
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_ObsDisabledTraceScope);

void BM_ObsEnabledTraceScope(benchmark::State& state) {
  ObsEnabledGuard guard(true);
  for (auto _ : state) {
    S2A_TRACE_SCOPE("bench.span");
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_ObsEnabledTraceScope);

void BM_ObsDisabledHistogram(benchmark::State& state) {
  ObsEnabledGuard guard(false);
  double v = 1e-6;
  for (auto _ : state) {
    S2A_HISTOGRAM_RECORD("bench.noop_hist", v);
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_ObsDisabledHistogram);

void BM_ObsEnabledHistogram(benchmark::State& state) {
  ObsEnabledGuard guard(true);
  double v = 1e-6;
  for (auto _ : state) {
    S2A_HISTOGRAM_RECORD("bench.hist", v);
    v *= 1.0000001;  // walk the buckets a little
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_ObsEnabledHistogram);

// A full instrumented loop tick with trivial components: the worst
// realistic case for relative span overhead (5 spans + 3 counters around
// almost no work). Real ticks do orders of magnitude more per span.
struct NullSensor : core::Sensor {
  core::Observation sense(double now, Rng&) override {
    core::Observation o;
    o.data = {now};
    return o;
  }
};
struct NullProcessor : core::Processor {
  std::vector<double> process(const core::Observation& obs, Rng&) override {
    return obs.data;
  }
};
struct NullActuator : core::Actuator {
  void actuate(const core::Action&, Rng&) override {}
};

void loop_tick_bench(benchmark::State& state, bool obs_on) {
  ObsEnabledGuard guard(obs_on);
  NullSensor sensor;
  NullProcessor processor;
  NullActuator actuator;
  core::PeriodicPolicy policy(1);
  core::SensingActionLoop loop(sensor, processor, actuator, policy);
  Rng rng(6);
  for (auto _ : state) loop.tick(rng);
}
void BM_LoopTickObsOff(benchmark::State& state) {
  loop_tick_bench(state, false);
}
void BM_LoopTickObsOn(benchmark::State& state) {
  loop_tick_bench(state, true);
}
BENCHMARK(BM_LoopTickObsOff);
BENCHMARK(BM_LoopTickObsOn);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  // S2A_TRACE=<path> traces the instrumented benchmark bodies (voxelize,
  // loop ticks, ...) and writes a Chrome trace on exit.
  s2a::obs::init_from_env();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (s2a::obs::dump_trace())
    printf("Wrote Chrome trace to %s\n", s2a::obs::trace_path().c_str());
  return 0;
}
