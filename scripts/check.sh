#!/usr/bin/env bash
# Repo health check: tier-1 build + tests, a -Werror configure, and an
# ASan/UBSan build of the observability tests. Run from anywhere:
#
#   ./scripts/check.sh            # everything
#   ./scripts/check.sh tier1      # just the tier-1 verify
#   ./scripts/check.sh werror     # just the -Werror build
#   ./scripts/check.sh asan       # just the sanitizer build + obs_test
#
# Each stage uses its own build tree (build/, build-werror/, build-asan/)
# so they don't invalidate each other's caches.
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="$(nproc 2>/dev/null || echo 4)"
STAGE="${1:-all}"

run_tier1() {
  echo "==> tier-1: build + ctest (build/)"
  cmake -B build -S .
  cmake --build build -j "$JOBS"
  ctest --test-dir build --output-on-failure -j "$JOBS"
}

run_werror() {
  echo "==> -Wall -Wextra -Werror build (build-werror/)"
  cmake -B build-werror -S . -DCMAKE_CXX_FLAGS="-Werror"
  cmake --build build-werror -j "$JOBS"
}

run_asan() {
  echo "==> ASan/UBSan build of the obs layer (build-asan/)"
  cmake -B build-asan -S . -DCMAKE_BUILD_TYPE=Debug \
    -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all -fno-omit-frame-pointer"
  cmake --build build-asan -j "$JOBS" --target obs_test
  ./build-asan/tests/obs_test
}

case "$STAGE" in
  tier1) run_tier1 ;;
  werror) run_werror ;;
  asan) run_asan ;;
  all)
    run_tier1
    run_werror
    run_asan
    echo "==> all checks passed"
    ;;
  *)
    echo "usage: $0 [tier1|werror|asan|all]" >&2
    exit 2
    ;;
esac
