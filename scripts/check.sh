#!/usr/bin/env bash
# Repo health check: tier-1 build + tests, a -Werror configure, an
# ASan/UBSan build of the full test suite, a TSan build of the threaded
# tests, and the perf regression gate. Run from anywhere:
#
#   ./scripts/check.sh            # everything
#   ./scripts/check.sh tier1      # just the tier-1 verify
#   ./scripts/check.sh werror     # just the -Werror build
#   ./scripts/check.sh asan       # just the ASan/UBSan build + full suite
#   ./scripts/check.sh tsan       # just the TSan build + threaded tests
#   ./scripts/check.sh perf       # just the perf regression gate
#   ./scripts/check.sh docs       # just the docs-consistency check
#   ./scripts/check.sh coverage   # gcovr line-coverage report (needs gcovr)
#
# S2A_SKIP_PERF=1 skips the perf gate (use on noisy shared runners where
# p95 latencies aren't meaningful).
#
# Suite selection is by ctest label (tests/CMakeLists.txt): `tsan` marks
# the concurrency-bearing suites, `chaos` the fault-injection ones,
# `slow` the long-running ones. Stages select labels instead of
# hard-coding test names, so a new suite only needs the right LABELS.
#
# Each stage uses its own build tree (build/, build-werror/, build-asan/,
# build-tsan/, build-cov/) so they don't invalidate each other's caches.
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="$(nproc 2>/dev/null || echo 4)"
STAGE="${1:-all}"

run_tier1() {
  echo "==> tier-1: build + ctest (build/)"
  cmake -B build -S .
  cmake --build build -j "$JOBS"
  ctest --test-dir build --output-on-failure -j "$JOBS"
}

run_werror() {
  echo "==> -Wall -Wextra -Werror build (build-werror/)"
  cmake -B build-werror -S . -DCMAKE_CXX_FLAGS="-Werror"
  cmake --build build-werror -j "$JOBS"
}

run_asan() {
  echo "==> ASan/UBSan build + full test suite (build-asan/)"
  # RelWithDebInfo keeps the instrumented suite fast enough to run whole.
  cmake -B build-asan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all -fno-omit-frame-pointer"
  cmake --build build-asan -j "$JOBS"
  ctest --test-dir build-asan --output-on-failure -j "$JOBS"
}

run_tsan() {
  echo "==> TSan build + threaded tests (build-tsan/)"
  cmake -B build-tsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMAKE_CXX_FLAGS="-fsanitize=thread -fno-sanitize-recover=all -fno-omit-frame-pointer"
  cmake --build build-tsan -j "$JOBS" \
    --target thread_pool_test obs_test nn_kernels_test lidar_test \
             federated_test federated_hier_test fault_test fleet_test \
             net_test fleet_batch_test
  # Run every tsan-labeled suite (concurrency-bearing: kernel sharding,
  # obs, fault chaos, the pipelined/fleet/batched execution engines).
  # Force a multi-threaded global pool — and force the sharded paths past
  # the effective_parallelism() serial fallback — so the parallel paths
  # actually run under TSan even on small CI machines.
  S2A_THREADS=4 S2A_FORCE_PARALLEL=1 \
    ctest --test-dir build-tsan -L tsan --output-on-failure
}

run_perf() {
  if [[ "${S2A_SKIP_PERF:-0}" == "1" ]]; then
    echo "==> perf gate skipped (S2A_SKIP_PERF=1)"
    return 0
  fi
  echo "==> perf regression gate (BENCH_budgets.json, build/)"
  cmake -B build -S .
  cmake --build build -j "$JOBS" --target bench_perf_micro
  S2A_BENCH_BUDGETS=BENCH_budgets.json ./build/bench/bench_perf_micro
}

run_coverage() {
  if ! command -v gcovr >/dev/null 2>&1; then
    echo "==> coverage skipped (gcovr not installed)"
    return 0
  fi
  echo "==> line coverage: -O0 --coverage build + gcovr report (build-cov/)"
  cmake -B build-cov -S . -DCMAKE_BUILD_TYPE=Debug \
    -DCMAKE_CXX_FLAGS="-O0 --coverage"
  cmake --build build-cov -j "$JOBS"
  # The slow label (long-running integration/differential suites) is
  # excluded: the fast suites already touch the same code paths and the
  # -O0 instrumented build makes the slow ones minutes-long.
  ctest --test-dir build-cov -LE slow --output-on-failure -j "$JOBS"
  mkdir -p build-cov/coverage
  gcovr --root . --filter 'src/' --exclude-throw-branches \
    --html-details build-cov/coverage/index.html \
    --print-summary
  # Soft floor: report posture, don't gate the build on it yet.
  local pct
  pct="$(gcovr --root . --filter 'src/' --exclude-throw-branches 2>/dev/null \
         | awk '/^TOTAL/ {gsub("%","",$NF); print $NF}')"
  if [[ -n "$pct" ]]; then
    echo "    total line coverage: ${pct}% (soft floor: 70%)"
    awk -v p="$pct" 'BEGIN { if (p+0 < 70) print "    WARNING: below the 70% soft floor" }'
  fi
  echo "    HTML report: build-cov/coverage/index.html"
}

run_docs() {
  echo "==> docs consistency: every S2A_* env var read in the tree is documented"
  # Every getenv("S2A_...") in src/bench/examples must appear in README.md
  # or docs/ — undocumented knobs are how the manuals drift.
  local missing=0
  local vars
  vars="$(grep -rhoE 'getenv\("S2A_[A-Z0-9_]+"\)' src bench examples tests 2>/dev/null \
          | sed -E 's/getenv\("([^"]+)"\)/\1/' | sort -u)"
  for var in $vars; do
    if ! grep -rq "$var" README.md docs/; then
      echo "ERROR: $var is read in the code but documented nowhere in README.md or docs/" >&2
      missing=1
    fi
  done
  if [[ "$missing" != 0 ]]; then
    echo "==> docs consistency FAILED" >&2
    return 1
  fi
  echo "    $(echo "$vars" | wc -l) env vars checked, all documented"
}

case "$STAGE" in
  tier1) run_tier1 ;;
  werror) run_werror ;;
  asan) run_asan ;;
  tsan) run_tsan ;;
  perf) run_perf ;;
  docs) run_docs ;;
  coverage) run_coverage ;;
  all)
    run_tier1
    run_werror
    run_asan
    run_tsan
    run_perf
    run_docs
    echo "==> all checks passed"
    ;;
  *)
    echo "usage: $0 [tier1|werror|asan|tsan|perf|docs|coverage|all]" >&2
    exit 2
    ;;
esac
