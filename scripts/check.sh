#!/usr/bin/env bash
# Repo health check: tier-1 build + tests, a -Werror configure, an
# ASan/UBSan build of the full test suite, and a TSan build of the
# threaded tests. Run from anywhere:
#
#   ./scripts/check.sh            # everything
#   ./scripts/check.sh tier1      # just the tier-1 verify
#   ./scripts/check.sh werror     # just the -Werror build
#   ./scripts/check.sh asan       # just the ASan/UBSan build + full suite
#   ./scripts/check.sh tsan       # just the TSan build + threaded tests
#
# Each stage uses its own build tree (build/, build-werror/, build-asan/,
# build-tsan/) so they don't invalidate each other's caches.
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="$(nproc 2>/dev/null || echo 4)"
STAGE="${1:-all}"

run_tier1() {
  echo "==> tier-1: build + ctest (build/)"
  cmake -B build -S .
  cmake --build build -j "$JOBS"
  ctest --test-dir build --output-on-failure -j "$JOBS"
}

run_werror() {
  echo "==> -Wall -Wextra -Werror build (build-werror/)"
  cmake -B build-werror -S . -DCMAKE_CXX_FLAGS="-Werror"
  cmake --build build-werror -j "$JOBS"
}

run_asan() {
  echo "==> ASan/UBSan build + full test suite (build-asan/)"
  # RelWithDebInfo keeps the instrumented suite fast enough to run whole.
  cmake -B build-asan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all -fno-omit-frame-pointer"
  cmake --build build-asan -j "$JOBS"
  ctest --test-dir build-asan --output-on-failure -j "$JOBS"
}

run_tsan() {
  echo "==> TSan build + threaded tests (build-tsan/)"
  cmake -B build-tsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMAKE_CXX_FLAGS="-fsanitize=thread -fno-sanitize-recover=all -fno-omit-frame-pointer"
  cmake --build build-tsan -j "$JOBS" \
    --target thread_pool_test obs_test lidar_test federated_test
  # Force a multi-threaded global pool so the parallel paths actually run
  # under TSan even on small CI machines.
  S2A_THREADS=4 ./build-tsan/tests/thread_pool_test
  S2A_THREADS=4 ./build-tsan/tests/obs_test
  S2A_THREADS=4 ./build-tsan/tests/lidar_test
  S2A_THREADS=4 ./build-tsan/tests/federated_test
}

case "$STAGE" in
  tier1) run_tier1 ;;
  werror) run_werror ;;
  asan) run_asan ;;
  tsan) run_tsan ;;
  all)
    run_tier1
    run_werror
    run_asan
    run_tsan
    echo "==> all checks passed"
    ;;
  *)
    echo "usage: $0 [tier1|werror|asan|tsan|all]" >&2
    exit 2
    ;;
esac
