// Metrics substrate for the observability layer (docs/OBSERVABILITY.md).
//
// Three instrument kinds, all safe to hammer from hot paths:
//  * Counter   — monotonically increasing event count (atomic add).
//  * Gauge     — last-written value (atomic store / CAS add).
//  * Histogram — streaming latency/size distribution over fixed
//                log-spaced buckets; p50/p95/p99 read out at export time.
//
// Instruments are registered once (mutex-guarded, allocates) and then
// updated lock-free with relaxed atomics — recording never allocates,
// never takes a lock, and never throws. The intended access pattern is
// the macros in obs.hpp, which cache the registry lookup in a
// function-local static so steady state is one branch + one atomic op.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace s2a::obs {

class Counter {
 public:
  void add(std::int64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  void add(double delta) {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Streaming histogram over fixed log-spaced buckets.
///
/// Positive values are bucketed by binary exponent with kSubBuckets
/// linear subdivisions per octave, so any recorded value is reproduced
/// by quantile() within a relative error of 2^(1/kSubBuckets) - 1
/// (~4.4% at 16 sub-buckets). Values at or below zero land in a
/// dedicated underflow bucket; values beyond the top octave saturate
/// into the last bucket. Bucket counts are relaxed atomics: record() is
/// allocation- and lock-free, and concurrent recorders only race on
/// independent fetch_adds.
class Histogram {
 public:
  static constexpr int kMinExp = -30;      ///< 2^-30 ≈ 0.93e-9
  static constexpr int kMaxExp = 34;       ///< 2^34  ≈ 1.7e10
  static constexpr int kSubBuckets = 16;   ///< per octave
  static constexpr int kBucketCount =
      (kMaxExp - kMinExp) * kSubBuckets + 1;  ///< +1 underflow bucket

  void record(double v);

  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  double mean() const {
    const std::uint64_t n = count();
    return n > 0 ? sum() / static_cast<double>(n) : 0.0;
  }
  /// Value at quantile q in [0, 1], interpolated within the bucket.
  /// Returns 0 when the histogram is empty.
  double quantile(double q) const;
  void reset();

 private:
  static int bucket_index(double v);
  static double bucket_lower(int index);
  static double bucket_upper(int index);

  std::atomic<std::uint64_t> buckets_[kBucketCount]{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// A point-in-time read of every registered instrument, in registration
/// order — the unit exporters consume (exporter.hpp).
struct MetricsSnapshot {
  struct CounterSample {
    std::string name;
    std::int64_t value = 0;
  };
  struct GaugeSample {
    std::string name;
    double value = 0.0;
  };
  struct HistogramSample {
    std::string name;
    std::uint64_t count = 0;
    double mean = 0.0, p50 = 0.0, p95 = 0.0, p99 = 0.0;
  };
  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSample> histograms;
};

/// Named instrument registry. Lookup-or-create is mutex-guarded and may
/// allocate; returned references stay valid for the registry's lifetime
/// (instruments are never removed), so hot paths should resolve once and
/// cache — which is exactly what the obs.hpp macros do.
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  MetricsSnapshot snapshot() const;
  /// Zeroes every instrument's value. Instruments are never *removed*, so
  /// references cached by call sites stay valid across resets.
  void reset_all();

 private:
  template <typename T>
  struct Named {
    std::string name;
    // unique_ptr keeps the instrument's address stable across the
    // vector's reallocations (atomics are not movable anyway).
    std::unique_ptr<T> value;
  };
  template <typename T>
  static T& lookup(std::vector<Named<T>>& v, const std::string& name);

  mutable std::mutex mu_;
  std::vector<Named<Counter>> counters_;
  std::vector<Named<Gauge>> gauges_;
  std::vector<Named<Histogram>> histograms_;
};

/// The process-wide registry the instrumentation macros write into.
MetricsRegistry& registry();

}  // namespace s2a::obs
