#include "obs/metrics.hpp"

#include <cmath>

namespace s2a::obs {

namespace {

// CAS-add for the atomic<double> sum (fetch_add on floating atomics is
// C++20 but not universally lowered well; the CAS loop is portable).
void atomic_add(std::atomic<double>& a, double delta) {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + delta,
                                  std::memory_order_relaxed)) {
  }
}

}  // namespace

int Histogram::bucket_index(double v) {
  if (!(v > 0.0) || !std::isfinite(v)) return 0;  // underflow bucket
  int exp = 0;
  const double frac = std::frexp(v, &exp);  // v = frac * 2^exp, frac in [0.5,1)
  if (exp <= kMinExp) return 1;             // first real bucket
  if (exp > kMaxExp) return kBucketCount - 1;
  // Linear subdivision of the octave [2^(exp-1), 2^exp): frac-0.5 in [0,0.5).
  int sub = static_cast<int>((frac - 0.5) * 2.0 * kSubBuckets);
  if (sub >= kSubBuckets) sub = kSubBuckets - 1;
  return 1 + (exp - 1 - kMinExp) * kSubBuckets + sub;
}

double Histogram::bucket_lower(int index) {
  if (index <= 0) return 0.0;
  const int linear = index - 1;
  const int exp = kMinExp + linear / kSubBuckets;
  const int sub = linear % kSubBuckets;
  const double octave_lo = std::ldexp(0.5, exp + 1);  // 2^exp
  return octave_lo * (1.0 + static_cast<double>(sub) / kSubBuckets);
}

double Histogram::bucket_upper(int index) {
  if (index <= 0) return 0.0;
  return bucket_lower(index + 1 <= kBucketCount - 1 ? index + 1 : index);
}

void Histogram::record(double v) {
  buckets_[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  atomic_add(sum_, v);
}

double Histogram::quantile(double q) const {
  const std::uint64_t n = count();
  if (n == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the q-th sample (1-based, nearest-rank).
  const std::uint64_t rank =
      std::max<std::uint64_t>(1, static_cast<std::uint64_t>(
                                     std::ceil(q * static_cast<double>(n))));
  std::uint64_t seen = 0;
  for (int i = 0; i < kBucketCount; ++i) {
    const std::uint64_t c = buckets_[i].load(std::memory_order_relaxed);
    if (c == 0) continue;
    if (seen + c >= rank) {
      const double lo = bucket_lower(i);
      const double hi = bucket_upper(i);
      // Interpolate by the rank's position within this bucket.
      const double frac =
          (static_cast<double>(rank - seen) - 0.5) / static_cast<double>(c);
      return lo + (hi - lo) * frac;
    }
    seen += c;
  }
  return bucket_upper(kBucketCount - 1);
}

void Histogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

template <typename T>
T& MetricsRegistry::lookup(std::vector<Named<T>>& v, const std::string& name) {
  for (auto& entry : v)
    if (entry.name == name) return *entry.value;
  v.push_back(Named<T>{name, std::make_unique<T>()});
  return *v.back().value;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  return lookup(counters_, name);
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  return lookup(gauges_, name);
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  return lookup(histograms_, name);
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& c : counters_)
    snap.counters.push_back({c.name, c.value->value()});
  snap.gauges.reserve(gauges_.size());
  for (const auto& g : gauges_)
    snap.gauges.push_back({g.name, g.value->value()});
  snap.histograms.reserve(histograms_.size());
  for (const auto& h : histograms_)
    snap.histograms.push_back({h.name, h.value->count(), h.value->mean(),
                               h.value->quantile(0.50), h.value->quantile(0.95),
                               h.value->quantile(0.99)});
  return snap;
}

void MetricsRegistry::reset_all() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& c : counters_) c.value->reset();
  for (auto& g : gauges_) g.value->reset();
  for (auto& h : histograms_) h.value->reset();
}

MetricsRegistry& registry() {
  static MetricsRegistry instance;
  return instance;
}

}  // namespace s2a::obs
