#include "obs/obs.hpp"

#include <cstdlib>

namespace s2a::obs {

namespace {

std::string& trace_path_storage() {
  static std::string path;
  return path;
}

}  // namespace

bool init_from_env() {
  const char* obs_flag = std::getenv("S2A_OBS");
  if (obs_flag != nullptr && obs_flag[0] != '\0' &&
      !(obs_flag[0] == '0' && obs_flag[1] == '\0'))
    set_enabled(true);
  const char* trace = std::getenv("S2A_TRACE");
  if (trace != nullptr && trace[0] != '\0') {
    trace_path_storage() = trace;
    set_enabled(true);
  }
  return enabled();
}

const std::string& trace_path() { return trace_path_storage(); }

bool dump_trace(const std::string& path) {
  const std::string& target = path.empty() ? trace_path() : path;
  if (target.empty()) return false;
  return write_chrome_trace_file(trace_buffer(), target);
}

}  // namespace s2a::obs
