// Metric export backends (docs/OBSERVABILITY.md).
//
// An Exporter turns a MetricsSnapshot into bytes on a stream. Two
// backends ship in-tree:
//  * JsonlExporter — one JSON object per line, machine-readable; the
//    matching parse_metric_line() gives lossless round-trips (tested in
//    tests/obs_test.cpp).
//  * TableExporter — aligned human-readable tables via util/table.hpp,
//    the same formatting every bench binary uses.
#pragma once

#include <optional>
#include <ostream>
#include <string>

#include "obs/metrics.hpp"

namespace s2a::obs {

class Exporter {
 public:
  virtual ~Exporter() = default;
  virtual void export_metrics(const MetricsSnapshot& snapshot,
                              std::ostream& os) = 0;
};

/// One JSON object per line:
///   {"type":"counter","name":"loop.vetoed","value":3}
///   {"type":"gauge","name":"fed.round_latency_s","value":0.125}
///   {"type":"histogram","name":"loop.tick_s","count":600,
///    "mean":1.2e-05,"p50":1.1e-05,"p95":2.0e-05,"p99":3.1e-05}
class JsonlExporter : public Exporter {
 public:
  void export_metrics(const MetricsSnapshot& snapshot,
                      std::ostream& os) override;
};

/// A parsed JSONL metric line (the inverse of JsonlExporter, scoped to
/// exactly the shape it emits — not a general JSON parser).
struct ParsedMetric {
  enum class Kind { kCounter, kGauge, kHistogram } kind = Kind::kCounter;
  std::string name;
  double value = 0.0;  ///< counter/gauge value
  std::uint64_t count = 0;
  double mean = 0.0, p50 = 0.0, p95 = 0.0, p99 = 0.0;
};

/// Parses one JsonlExporter line; nullopt on malformed input.
std::optional<ParsedMetric> parse_metric_line(const std::string& line);

/// Aligned text tables (one per instrument kind present in the snapshot).
class TableExporter : public Exporter {
 public:
  void export_metrics(const MetricsSnapshot& snapshot,
                      std::ostream& os) override;
};

}  // namespace s2a::obs
