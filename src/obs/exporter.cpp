#include "obs/exporter.hpp"

#include <cmath>
#include <cstdlib>
#include <iomanip>
#include <sstream>

#include "util/table.hpp"

namespace s2a::obs {

namespace {

// Shortest double representation that round-trips (max_digits10).
std::string num(double v) {
  std::ostringstream ss;
  ss << std::setprecision(17) << v;
  return ss.str();
}

// 4 significant digits, scientific when small — histogram values span
// nanoseconds to simulated minutes, so fixed precision doesn't fit.
std::string sig(double v) {
  std::ostringstream ss;
  ss << std::setprecision(4) << v;
  return ss.str();
}

void escape(std::ostream& os, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') os << '\\';
    os << c;
  }
}

/// Extracts the value of `"key":` in `line` as raw text (up to the next
/// ',' or '}'), or nullopt. Keys JsonlExporter emits are never nested.
std::optional<std::string> field(const std::string& line,
                                 const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const auto pos = line.find(needle);
  if (pos == std::string::npos) return std::nullopt;
  auto begin = pos + needle.size();
  auto end = begin;
  bool in_string = false;
  for (; end < line.size(); ++end) {
    const char c = line[end];
    if (c == '"' && (end == begin || line[end - 1] != '\\')) in_string = !in_string;
    if (!in_string && (c == ',' || c == '}')) break;
  }
  return line.substr(begin, end - begin);
}

std::optional<std::string> string_field(const std::string& line,
                                        const std::string& key) {
  auto raw = field(line, key);
  if (!raw || raw->size() < 2 || raw->front() != '"' || raw->back() != '"')
    return std::nullopt;
  std::string out;
  for (std::size_t i = 1; i + 1 < raw->size(); ++i) {
    if ((*raw)[i] == '\\' && i + 2 < raw->size()) ++i;
    out += (*raw)[i];
  }
  return out;
}

std::optional<double> number_field(const std::string& line,
                                   const std::string& key) {
  auto raw = field(line, key);
  if (!raw || raw->empty()) return std::nullopt;
  char* end = nullptr;
  const double v = std::strtod(raw->c_str(), &end);
  if (end == raw->c_str()) return std::nullopt;
  return v;
}

}  // namespace

void JsonlExporter::export_metrics(const MetricsSnapshot& snapshot,
                                   std::ostream& os) {
  for (const auto& c : snapshot.counters) {
    os << "{\"type\":\"counter\",\"name\":\"";
    escape(os, c.name);
    os << "\",\"value\":" << c.value << "}\n";
  }
  for (const auto& g : snapshot.gauges) {
    os << "{\"type\":\"gauge\",\"name\":\"";
    escape(os, g.name);
    os << "\",\"value\":" << num(g.value) << "}\n";
  }
  for (const auto& h : snapshot.histograms) {
    os << "{\"type\":\"histogram\",\"name\":\"";
    escape(os, h.name);
    os << "\",\"count\":" << h.count << ",\"mean\":" << num(h.mean)
       << ",\"p50\":" << num(h.p50) << ",\"p95\":" << num(h.p95)
       << ",\"p99\":" << num(h.p99) << "}\n";
  }
}

std::optional<ParsedMetric> parse_metric_line(const std::string& line) {
  const auto type = string_field(line, "type");
  const auto name = string_field(line, "name");
  if (!type || !name) return std::nullopt;
  ParsedMetric m;
  m.name = *name;
  if (*type == "counter" || *type == "gauge") {
    m.kind = *type == "counter" ? ParsedMetric::Kind::kCounter
                                : ParsedMetric::Kind::kGauge;
    const auto v = number_field(line, "value");
    if (!v) return std::nullopt;
    m.value = *v;
    return m;
  }
  if (*type == "histogram") {
    m.kind = ParsedMetric::Kind::kHistogram;
    const auto count = number_field(line, "count");
    const auto mean = number_field(line, "mean");
    const auto p50 = number_field(line, "p50");
    const auto p95 = number_field(line, "p95");
    const auto p99 = number_field(line, "p99");
    if (!count || !mean || !p50 || !p95 || !p99) return std::nullopt;
    m.count = static_cast<std::uint64_t>(*count);
    m.mean = *mean;
    m.p50 = *p50;
    m.p95 = *p95;
    m.p99 = *p99;
    return m;
  }
  return std::nullopt;
}

void TableExporter::export_metrics(const MetricsSnapshot& snapshot,
                                   std::ostream& os) {
  if (!snapshot.counters.empty()) {
    Table t("Counters");
    t.set_header({"Name", "Value"});
    for (const auto& c : snapshot.counters)
      t.add_row({c.name, std::to_string(c.value)});
    t.print(os);
  }
  if (!snapshot.gauges.empty()) {
    Table t("Gauges");
    t.set_header({"Name", "Value"});
    for (const auto& g : snapshot.gauges) t.add_row({g.name, sig(g.value)});
    t.print(os);
  }
  if (!snapshot.histograms.empty()) {
    Table t("Histograms");
    t.set_header({"Name", "Count", "Mean", "p50", "p95", "p99"});
    for (const auto& h : snapshot.histograms)
      t.add_row({h.name, std::to_string(h.count), sig(h.mean), sig(h.p50),
                 sig(h.p95), sig(h.p99)});
    t.print(os);
  }
}

}  // namespace s2a::obs
