// s2a::obs — umbrella header for the observability layer: metrics,
// profiling spans, exporters, and the instrumentation macros the rest of
// the library uses. See docs/OBSERVABILITY.md for the user guide.
//
// Switches, outermost first:
//  * Compile time — defining S2A_OBS_COMPILED_OUT turns every macro below
//    into nothing; the library contains zero instrumentation code.
//  * Run time — obs::set_enabled(true) (or S2A_OBS=1 / S2A_TRACE=<path>
//    via init_from_env()). While disabled (the default), each macro costs
//    one relaxed atomic load and a predictable branch — measured at well
//    under 1 ns (bench_perf_micro, BM_Obs* series).
//
// Macro names must be string literals: the trace buffer stores pointers,
// and the metric macros cache the registry lookup in a function-local
// static, so one call site is one instrument.
#pragma once

#include <string>

#include "obs/exporter.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace s2a::obs {

/// Reads the environment switches:
///   S2A_OBS=1          enable metrics + tracing
///   S2A_TRACE=<path>   enable, and remember <path> for dump_trace()
/// Returns true when observability ended up enabled.
bool init_from_env();

/// Path captured from S2A_TRACE ("" when unset).
const std::string& trace_path();

/// Writes the Chrome trace to `path` if given, else to the S2A_TRACE
/// path, else does nothing. Returns true when a file was written.
bool dump_trace(const std::string& path = "");

/// Seconds between two trace_now_ns() stamps — for metering a region
/// into a histogram without a TraceScope.
inline double seconds_since(std::uint64_t start_ns) {
  return static_cast<double>(trace_now_ns() - start_ns) / 1e9;
}

}  // namespace s2a::obs

#define S2A_OBS_CONCAT_IMPL(a, b) a##b
#define S2A_OBS_CONCAT(a, b) S2A_OBS_CONCAT_IMPL(a, b)

#ifndef S2A_OBS_COMPILED_OUT

/// RAII span covering the rest of the enclosing block.
#define S2A_TRACE_SCOPE(name) \
  ::s2a::obs::TraceScope S2A_OBS_CONCAT(s2a_obs_scope_, __LINE__)(name)
#define S2A_TRACE_SCOPE_CAT(name, category)                            \
  ::s2a::obs::TraceScope S2A_OBS_CONCAT(s2a_obs_scope_, __LINE__)(name, \
                                                                  category)

/// Counter increment; `name` must be a string literal (one instrument
/// per call site, resolved once).
#define S2A_COUNTER_ADD(name, delta)                                   \
  do {                                                                 \
    if (::s2a::obs::enabled()) {                                       \
      static ::s2a::obs::Counter& s2a_obs_instrument =                 \
          ::s2a::obs::registry().counter(name);                        \
      s2a_obs_instrument.add(delta);                                   \
    }                                                                  \
  } while (0)

#define S2A_GAUGE_SET(name, value)                                     \
  do {                                                                 \
    if (::s2a::obs::enabled()) {                                       \
      static ::s2a::obs::Gauge& s2a_obs_instrument =                   \
          ::s2a::obs::registry().gauge(name);                          \
      s2a_obs_instrument.set(value);                                   \
    }                                                                  \
  } while (0)

#define S2A_HISTOGRAM_RECORD(name, value)                              \
  do {                                                                 \
    if (::s2a::obs::enabled()) {                                       \
      static ::s2a::obs::Histogram& s2a_obs_instrument =               \
          ::s2a::obs::registry().histogram(name);                      \
      s2a_obs_instrument.record(value);                                \
    }                                                                  \
  } while (0)

#else  // S2A_OBS_COMPILED_OUT

#define S2A_TRACE_SCOPE(name) \
  do {                        \
  } while (0)
#define S2A_TRACE_SCOPE_CAT(name, category) \
  do {                                      \
  } while (0)
#define S2A_COUNTER_ADD(name, delta) \
  do {                               \
  } while (0)
#define S2A_GAUGE_SET(name, value) \
  do {                             \
  } while (0)
#define S2A_HISTOGRAM_RECORD(name, value) \
  do {                                    \
  } while (0)

#endif  // S2A_OBS_COMPILED_OUT
