#include "obs/trace.hpp"

#include <chrono>
#include <fstream>

namespace s2a::obs {

namespace {

std::atomic<bool> g_enabled{false};

// Dense thread index: 0 for the first thread to trace, 1 for the next...
// Chrome trace viewers sort tracks by tid, so small dense ids beat the
// platform's opaque thread handles.
std::uint32_t thread_index() {
  static std::atomic<std::uint32_t> next{0};
  thread_local std::uint32_t id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

std::uint32_t& thread_depth() {
  thread_local std::uint32_t depth = 0;
  return depth;
}

void json_escape(std::ostream& os, const char* s) {
  for (; s != nullptr && *s != '\0'; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') os << '\\';
    os << c;
  }
}

}  // namespace

std::uint32_t current_thread_depth() { return thread_depth(); }

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }
void set_enabled(bool on) { g_enabled.store(on, std::memory_order_relaxed); }

std::uint64_t trace_now_ns() {
  using clock = std::chrono::steady_clock;
  static const clock::time_point epoch = clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() -
                                                           epoch)
          .count());
}

TraceBuffer::TraceBuffer(std::size_t capacity) : slots_(capacity) {}

void TraceBuffer::push(const TraceEvent& ev) {
  const std::uint64_t idx = cursor_.fetch_add(1, std::memory_order_relaxed);
  TraceEvent& slot = slots_[idx % slots_.size()];
  slot = ev;
  slot.seq = idx;
}

std::size_t TraceBuffer::size() const {
  const std::uint64_t n = cursor_.load(std::memory_order_relaxed);
  return n < slots_.size() ? static_cast<std::size_t>(n) : slots_.size();
}

std::uint64_t TraceBuffer::pushed() const {
  return cursor_.load(std::memory_order_relaxed);
}

std::vector<TraceEvent> TraceBuffer::events() const {
  const std::uint64_t n = cursor_.load(std::memory_order_relaxed);
  std::vector<TraceEvent> out;
  if (n <= slots_.size()) {
    out.assign(slots_.begin(), slots_.begin() + static_cast<long>(n));
  } else {
    // Wrapped: oldest retained event sits at the cursor position.
    out.reserve(slots_.size());
    const std::size_t start = static_cast<std::size_t>(n % slots_.size());
    out.insert(out.end(), slots_.begin() + static_cast<long>(start),
               slots_.end());
    out.insert(out.end(), slots_.begin(),
               slots_.begin() + static_cast<long>(start));
  }
  return out;
}

void TraceBuffer::clear() {
  cursor_.store(0, std::memory_order_relaxed);
  for (auto& s : slots_) s = TraceEvent{};
}

TraceBuffer& trace_buffer() {
  static TraceBuffer instance;
  return instance;
}

TraceScope::TraceScope(const char* name, const char* category)
    : name_(name), category_(category) {
  if (!enabled()) return;
  active_ = true;
  depth_ = thread_depth()++;
  start_ns_ = trace_now_ns();
}

TraceScope::~TraceScope() {
  if (!active_) return;
  const std::uint64_t end_ns = trace_now_ns();
  --thread_depth();
  TraceEvent ev;
  ev.name = name_;
  ev.category = category_;
  ev.start_ns = start_ns_;
  ev.dur_ns = end_ns - start_ns_;
  ev.tid = thread_index();
  ev.depth = depth_;
  trace_buffer().push(ev);
}

void write_chrome_trace(const TraceBuffer& buffer, std::ostream& os) {
  // Default ostream precision (6 significant digits) truncates
  // microsecond timestamps a few seconds into a run.
  const auto old_precision = os.precision(15);
  os << "{\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& ev : buffer.events()) {
    if (ev.name == nullptr) continue;
    if (!first) os << ",";
    first = false;
    os << "\n{\"name\":\"";
    json_escape(os, ev.name);
    os << "\",\"cat\":\"";
    json_escape(os, ev.category != nullptr ? ev.category : "s2a");
    // Complete events ("ph":"X"); ts/dur are microseconds (double).
    os << "\",\"ph\":\"X\",\"pid\":1,\"tid\":" << ev.tid
       << ",\"ts\":" << static_cast<double>(ev.start_ns) / 1e3
       << ",\"dur\":" << static_cast<double>(ev.dur_ns) / 1e3 << "}";
  }
  os << "\n],\"displayTimeUnit\":\"ms\"}\n";
  os.precision(old_precision);
}

bool write_chrome_trace_file(const TraceBuffer& buffer,
                             const std::string& path) {
  std::ofstream f(path);
  if (!f) return false;
  write_chrome_trace(buffer, f);
  return f.good();
}

}  // namespace s2a::obs
