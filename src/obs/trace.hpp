// Profiling spans for the observability layer (docs/OBSERVABILITY.md).
//
// A TraceScope is an RAII span: construction stamps a start time,
// destruction pushes one completed event into a process-wide ring
// buffer. Events carry the thread and nesting depth so an exported trace
// reconstructs the call tree. The buffer is a fixed-capacity ring with
// an atomic write cursor — recording is lock-free, allocation-free, and
// overwrites the oldest events when full (a profiler should never stall
// or OOM the system it measures).
//
// Span names and categories must be string literals (or otherwise
// outlive the buffer): only the pointer is stored.
//
// Export is Chrome trace_event JSON ("ph":"X" complete events), loadable
// in chrome://tracing or https://ui.perfetto.dev.
#pragma once

#include <atomic>
#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace s2a::obs {

struct TraceEvent {
  const char* name = nullptr;
  const char* category = nullptr;
  std::uint64_t start_ns = 0;  ///< steady-clock time at scope entry
  std::uint64_t dur_ns = 0;
  std::uint32_t tid = 0;    ///< dense per-process thread index
  std::uint32_t depth = 0;  ///< nesting depth at entry (0 = top level)
  std::uint64_t seq = 0;    ///< global completion order
};

class TraceBuffer {
 public:
  static constexpr std::size_t kDefaultCapacity = 1 << 16;

  explicit TraceBuffer(std::size_t capacity = kDefaultCapacity);

  /// Lock-free: claims a slot with an atomic cursor and writes in place.
  /// Wraps (overwriting the oldest event) once `capacity` is exceeded.
  void push(const TraceEvent& ev);

  std::size_t capacity() const { return slots_.size(); }
  /// Number of retained events (≤ capacity).
  std::size_t size() const;
  /// Total events ever pushed, including overwritten ones.
  std::uint64_t pushed() const;
  /// Retained events, oldest first. Not synchronized with concurrent
  /// writers — call from a quiescent point (end of run, test assertions).
  std::vector<TraceEvent> events() const;
  void clear();

 private:
  std::vector<TraceEvent> slots_;
  std::atomic<std::uint64_t> cursor_{0};
};

/// The process-wide span buffer TraceScope writes into.
TraceBuffer& trace_buffer();

/// Master observability switch. Disabled (the default) makes TraceScope
/// construction a single relaxed atomic load and the obs.hpp metric
/// macros a load + branch — nothing is recorded anywhere.
bool enabled();
void set_enabled(bool on);

/// RAII profiling span. When observability is disabled at construction,
/// the scope is inert: no clock read, no buffer write, no depth change.
class TraceScope {
 public:
  explicit TraceScope(const char* name, const char* category = "s2a");
  ~TraceScope();

  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  const char* name_;
  const char* category_;
  std::uint64_t start_ns_ = 0;
  std::uint32_t depth_ = 0;
  bool active_ = false;
};

/// Steady-clock nanoseconds since process-local epoch (first use).
std::uint64_t trace_now_ns();

/// Current span nesting depth of the calling thread (0 = no open span).
/// Depth is thread-local: a span opened inside a util::ThreadPool task
/// starts at depth 0 on a worker thread (its own track in the exported
/// trace) but nests under the caller's open spans when the pool runs the
/// task inline on the submitting thread. Exposed so the parallel-path
/// tests can assert both behaviours mechanically.
std::uint32_t current_thread_depth();

/// Writes the buffer as Chrome trace_event JSON ({"traceEvents":[...]}).
/// Timestamps are microseconds; nesting is reconstructed by Perfetto from
/// the spans' time containment per thread.
void write_chrome_trace(const TraceBuffer& buffer, std::ostream& os);

/// Convenience: write_chrome_trace to `path`; returns false on I/O error.
bool write_chrome_trace_file(const TraceBuffer& buffer,
                             const std::string& path);

}  // namespace s2a::obs
