// Uncertainty-gated edge↔cloud offload (Sec. VII; CoSense-LLM in
// PAPERS.md): a core::Processor that routes each tick's heavy processing
// local-vs-remote over a net::LinkSim, and survives the link misbehaving.
//
// Decision policy, in order:
//  1. Uncertainty gate — remote only when the UncertaintySource score
//     exceeds `regret_gate` (low-confidence inputs buy the bigger remote
//     model; confident ones stay on the cheap local path). STARNet's
//     likelihood regret plugs in via monitor::StarNetUncertainty.
//  2. Circuit breaker — after `breaker.failure_threshold` consecutive
//     remote failures the breaker OPENs and calls are answered locally
//     without touching the link; seeded HALF_OPEN probes re-admit remote
//     traffic once the cooldown passes (net/circuit.hpp).
//  3. Cost model — EMA round-trip latency/deviation/loss observed on this
//     link must predict the per-request deadline is makeable; the
//     prediction decays optimistically while gated so a healed link gets
//     re-tried instead of being written off forever.
// The remote path itself is resilient: bounded retries with exponential
// backoff + deterministic (counter-hashed) jitter, per-attempt timeouts
// carved from the request deadline, and a hedged local computation fired
// when the remote response is past its p95 budget — first finisher wins,
// the loser is cancelled.
//
// Failure semantics: by default every remote failure silently falls back
// to the local model, so a dead cloud degrades answer quality but never
// safety (the loop stays NOMINAL). With `strict_uncertain` set, an
// uncertain input whose remote path fails emits a non-finite sentinel
// action instead — the loop's actuation boundary blocks it
// (quarantined_actions), applies the fallback policy, and drives the
// existing NOMINAL → DEGRADED → SAFE_STOP machine; no parallel error
// channel is invented. Use strict mode when acting on a low-confidence
// local answer is worse than not acting.
//
// Determinism: all latency arithmetic runs on the loop clock, and all
// randomness (link draws, backoff jitter, probe admission) is hashed from
// member-local counters — per-member metrics are bit-identical at every
// thread count (tests/net_test.cpp chaos cases).
#pragma once

#include <cstddef>
#include <cstdint>

#include "core/loop.hpp"
#include "net/circuit.hpp"
#include "net/link.hpp"

namespace s2a::core {

/// Per-observation confidence score; higher = less confident. The
/// OffloadExecutor offloads when score > OffloadConfig::regret_gate.
class UncertaintySource {
 public:
  virtual ~UncertaintySource() = default;
  virtual double score(const Observation& obs) = 0;
};

/// Routing mode. kAlwaysLocal / kAlwaysRemote are the bench baselines
/// (S2A_BENCH_OFFLOAD): they bypass the gate, breaker, and cost model so
/// the policy's value shows up against naive routing.
enum class OffloadMode { kPolicy = 0, kAlwaysLocal, kAlwaysRemote };
const char* offload_mode_name(OffloadMode mode);

struct OffloadConfig {
  OffloadMode mode = OffloadMode::kPolicy;
  /// Offload when UncertaintySource::score(obs) exceeds this. With no
  /// gate wired in, every tick counts as uncertain.
  double regret_gate = 1.0;
  /// Per-request completion budget. Derive it from the loop's rate
  /// contract: the result must land inside the tick, so deadline_s ≤
  /// LoopConfig::dt (or the fleet's FleetLoopConfig::deadline_s).
  double deadline_s = 0.05;
  int max_retries = 2;          ///< extra attempts after the first
  double backoff_base_s = 2e-3; ///< retry k waits base * 2^(k-1) * jitter
  double backoff_jitter_frac = 0.5;  ///< jitter multiplier in [1, 1+frac)
  /// Per-attempt timeout; 0 derives deadline_s / (max_retries + 1).
  double attempt_timeout_s = 0.0;
  /// Fire the hedged local computation when the remote response is past
  /// hedge_factor * (EMA rtt + 2·dev) — the running p95 budget. 0
  /// disables hedging.
  double hedge_factor = 1.5;
  /// While the cost model refuses the link, its EMA loss decays by this
  /// factor per gated call — bounded optimism so recovery is possible.
  double gate_decay = 0.05;
  /// EMA loss above this predicts a dead link regardless of latency.
  double loss_gate = 0.9;
  double local_compute_s = 4e-3;   ///< modeled local inference time
  double remote_compute_s = 1e-3;  ///< modeled cloud inference time
  std::size_t request_bytes = 0;   ///< 0 → obs.data.size() * sizeof(double)
  std::size_t response_bytes = 0;  ///< 0 → request_bytes heuristic
  double tx_energy_j = 0.0;        ///< radio energy per remote attempt
  /// Strict mode: uncertain ticks whose remote path fails emit a
  /// non-finite sentinel (blocked at the loop's actuation boundary)
  /// instead of silently serving the low-confidence local answer.
  bool strict_uncertain = false;
  /// Always run the local model first and treat remote as an upgrade.
  /// Required when the local Processor is a batched_fleet BatchSlot —
  /// the staged row must be consumed exactly once per tick.
  bool prepaid_local = false;
  net::BreakerConfig breaker;
};

/// Cumulative executor counters; compared bit-exactly in the chaos
/// determinism tests alongside LoopMetrics and BreakerMetrics.
struct OffloadMetrics {
  long requests = 0;
  long local_served = 0;       ///< ticks answered by the local model
  long remote_served = 0;      ///< ticks answered by the remote model
  long gated_local = 0;        ///< confident ticks kept local by the gate
  long cost_gated = 0;         ///< uncertain ticks kept local by the cost model
  long breaker_blocked = 0;    ///< uncertain ticks kept local by the breaker
  long remote_attempts = 0;    ///< link round trips issued
  long retries = 0;            ///< attempts beyond the first
  long remote_successes = 0;   ///< requests whose remote path delivered
  long remote_failures = 0;    ///< requests whose remote path gave up
  long corrupt_responses = 0;  ///< delivered-but-damaged responses discarded
  long hedged = 0;             ///< ticks where the local hedge fired
  long hedge_local_wins = 0;   ///< hedges where local beat the remote reply
  long strict_denied = 0;      ///< strict-mode sentinel emissions
  double total_latency_s = 0.0;  ///< summed modeled serve latency

  friend bool operator==(const OffloadMetrics&, const OffloadMetrics&) =
      default;
};

class OffloadExecutor : public Processor {
 public:
  /// `local` and `remote` are the small on-device and big cloud models;
  /// `link` is this member's endpoint (value — construct with a
  /// per-member stream id when a fleet shares one uplink). `gate` may be
  /// null (every tick uncertain). `seed` keys backoff jitter and probe
  /// admission.
  OffloadExecutor(Processor& local, Processor& remote, net::LinkSim link,
                  OffloadConfig cfg = {}, UncertaintySource* gate = nullptr,
                  std::uint64_t seed = 0);

  std::vector<double> process(const Observation& obs, Rng& rng) override;
  std::vector<double> process_at(double now, const Observation& obs,
                                 Rng& rng) override;
  double energy_per_call_j() const override { return last_energy_j_; }

  const OffloadMetrics& metrics() const { return metrics_; }
  const net::CircuitBreaker& breaker() const { return breaker_; }
  const OffloadConfig& config() const { return cfg_; }
  /// Did the last process_at() serve the remote model's answer?
  bool last_served_remote() const { return last_served_remote_; }
  /// Modeled serve latency of the last process_at().
  double last_latency_s() const { return last_latency_s_; }
  /// Cost-model state (diagnostics / bench reporting).
  double ema_rtt_s() const { return ema_rtt_; }
  double ema_loss() const { return ema_loss_; }

 private:
  std::size_t request_bytes(const Observation& obs) const;
  std::size_t response_bytes(const Observation& obs) const;
  double attempt_timeout() const;
  /// Does the cost model predict the deadline is makeable?
  bool predicts_deadline_met() const;
  void seed_cost_model(const Observation& obs);
  void observe_success(double rtt_s);
  void observe_failure();

  std::vector<double> serve_local(const Observation& obs, Rng& rng,
                                  std::vector<double>* prepaid,
                                  double latency_s);
  std::vector<double> serve_remote(const Observation& obs, Rng& rng,
                                   double latency_s);
  std::vector<double> strict_sentinel(double latency_s);

  Processor& local_;
  Processor& remote_;
  net::LinkSim link_;
  OffloadConfig cfg_;
  UncertaintySource* gate_;
  std::uint64_t seed_;
  net::CircuitBreaker breaker_;

  // EMA cost model (seeded from LinkSim::estimate_rtt_s on first use).
  bool cost_seeded_ = false;
  double ema_rtt_ = 0.0;
  double ema_dev_ = 0.0;
  double ema_loss_ = 0.0;

  std::uint64_t request_counter_ = 0;
  double last_energy_j_ = 0.0;
  double last_latency_s_ = 0.0;
  bool last_served_remote_ = false;
  OffloadMetrics metrics_;
};

}  // namespace s2a::core
