#include "core/policies.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace s2a::core {

PeriodicPolicy::PeriodicPolicy(int period) : period_(period) {
  S2A_CHECK(period >= 1);
}

bool PeriodicPolicy::should_sense(double, const Observation*, Rng&) {
  const bool fire = (counter_ % period_) == 0;
  ++counter_;
  return fire;
}

AdaptiveActivityPolicy::AdaptiveActivityPolicy(AdaptiveActivityConfig config)
    : cfg_(config) {
  S2A_CHECK(cfg_.base_rate >= 0.0 && cfg_.base_rate <= cfg_.max_rate);
  S2A_CHECK(cfg_.max_rate <= 1.0);
  S2A_CHECK(cfg_.activity_saturation > 0.0);
  S2A_CHECK(cfg_.ema_alpha > 0.0 && cfg_.ema_alpha <= 1.0);
}

bool AdaptiveActivityPolicy::should_sense(double, const Observation* last,
                                          Rng& rng) {
  if (last == nullptr) return true;  // bootstrap

  // Innovation = mean absolute change since the previous observation we
  // inspected. Updated lazily: only when a new observation arrived.
  if (!last->data.empty()) {
    if (prev_data_.size() == last->data.size()) {
      double innovation = 0.0;
      bool changed = false;
      for (std::size_t i = 0; i < prev_data_.size(); ++i) {
        innovation += std::abs(last->data[i] - prev_data_[i]);
        changed |= last->data[i] != prev_data_[i];
      }
      innovation /= static_cast<double>(prev_data_.size());
      if (changed)
        activity_ =
            (1.0 - cfg_.ema_alpha) * activity_ + cfg_.ema_alpha * innovation;
    }
    prev_data_ = last->data;
  }

  const double frac =
      std::min(1.0, activity_ / cfg_.activity_saturation);
  const double rate = cfg_.base_rate + (cfg_.max_rate - cfg_.base_rate) * frac;
  return rng.bernoulli(rate);
}

ActionAwarePolicy::ActionAwarePolicy(double base_rate, double max_rate,
                                     double saturation)
    : base_(base_rate), max_(max_rate), saturation_(saturation) {
  S2A_CHECK(0.0 <= base_rate && base_rate <= max_rate && max_rate <= 1.0);
  S2A_CHECK(saturation > 0.0);
}

void ActionAwarePolicy::report_action(double magnitude) {
  smoothed_magnitude_ = 0.7 * smoothed_magnitude_ + 0.3 * std::abs(magnitude);
}

bool ActionAwarePolicy::should_sense(double, const Observation* last,
                                     Rng& rng) {
  if (last == nullptr) return true;
  const double frac = std::min(1.0, smoothed_magnitude_ / saturation_);
  return rng.bernoulli(base_ + (max_ - base_) * frac);
}

}  // namespace s2a::core
