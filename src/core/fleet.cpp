#include "core/fleet.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <mutex>

#include "obs/obs.hpp"
#include "util/check.hpp"
#include "util/thread_pool.hpp"

namespace s2a::core {

namespace {

double percentile(std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

}  // namespace

const char* admission_name(AdmissionDecision decision) {
  switch (decision) {
    case AdmissionDecision::kAdmitted:
      return "admitted";
    case AdmissionDecision::kDegraded:
      return "degraded";
    case AdmissionDecision::kRejected:
      return "rejected";
  }
  return "?";
}

FleetAdmission::FleetAdmission(AdmissionConfig cfg) : cfg_(cfg) {
  S2A_CHECK(cfg_.window >= 1);
  S2A_CHECK(cfg_.min_samples >= 1);
  S2A_CHECK(cfg_.degrade_threshold >= 0.0);
  S2A_CHECK(cfg_.reject_threshold >= cfg_.degrade_threshold);
  S2A_CHECK(cfg_.degrade_factor >= 1.0);
  ring_.resize(static_cast<std::size_t>(cfg_.window), 0);
}

void FleetAdmission::push_locked(bool bad) {
  const std::size_t window = ring_.size();
  if (filled_ == window) bad_ -= ring_[head_];
  ring_[head_] = bad ? 1 : 0;
  bad_ += ring_[head_];
  head_ = (head_ + 1) % window;
  if (filled_ < window) ++filled_;
}

double FleetAdmission::pressure_locked() const {
  if (filled_ < static_cast<std::size_t>(cfg_.min_samples)) return 0.0;
  return static_cast<double>(bad_) / static_cast<double>(filled_);
}

void FleetAdmission::record_ticks(long total, long bad) {
  if (!cfg_.enabled || total <= 0) return;
  S2A_CHECK(bad >= 0 && bad <= total);
  std::lock_guard<std::mutex> lk(mu_);
  // Order within the window is worker-interleaving dependent, but the
  // pressure signal only counts bad entries, so it is robust to that.
  for (long i = 0; i < total; ++i) push_locked(i < bad);
  S2A_GAUGE_SET("fleet.admission.pressure", pressure_locked());
}

void FleetAdmission::record_shed(long ticks) {
  if (!cfg_.enabled || ticks <= 0) return;
  std::lock_guard<std::mutex> lk(mu_);
  // Shed work is the strongest overload evidence there is; cap the ring
  // writes at one full window since more cannot change the signal.
  const long n = std::min<long>(ticks, static_cast<long>(ring_.size()));
  for (long i = 0; i < n; ++i) push_locked(true);
  S2A_GAUGE_SET("fleet.admission.pressure", pressure_locked());
}

double FleetAdmission::pressure() const {
  std::lock_guard<std::mutex> lk(mu_);
  return pressure_locked();
}

AdmissionDecision FleetAdmission::decide() {
  std::lock_guard<std::mutex> lk(mu_);
  AdmissionDecision d = AdmissionDecision::kAdmitted;
  if (cfg_.enabled && filled_ >= static_cast<std::size_t>(cfg_.min_samples)) {
    const double p = pressure_locked();
    if (p >= cfg_.reject_threshold)
      d = AdmissionDecision::kRejected;
    else if (p >= cfg_.degrade_threshold)
      d = AdmissionDecision::kDegraded;
  }
  switch (d) {
    case AdmissionDecision::kAdmitted:
      ++admitted_;
      S2A_COUNTER_ADD("fleet.admission.admitted", 1);
      break;
    case AdmissionDecision::kDegraded:
      ++degraded_;
      S2A_COUNTER_ADD("fleet.admission.degraded", 1);
      break;
    case AdmissionDecision::kRejected:
      ++rejected_;
      S2A_COUNTER_ADD("fleet.admission.rejected", 1);
      break;
  }
  S2A_GAUGE_SET("fleet.admission.pressure", pressure_locked());
  return d;
}

long FleetAdmission::admitted() const {
  std::lock_guard<std::mutex> lk(mu_);
  return admitted_;
}

long FleetAdmission::degraded() const {
  std::lock_guard<std::mutex> lk(mu_);
  return degraded_;
}

long FleetAdmission::rejected() const {
  std::lock_guard<std::mutex> lk(mu_);
  return rejected_;
}

Fleet::Fleet(FleetConfig cfg) : cfg_(cfg), admission_(cfg.admission) {
  S2A_CHECK(cfg_.batch >= 1);
  S2A_CHECK(cfg_.max_workers >= 0);
}

std::size_t Fleet::add(SensingActionLoop& loop, FleetLoopConfig cfg,
                       std::uint64_t seed) {
  S2A_CHECK(cfg.ticks >= 0);
  S2A_CHECK(cfg.deadline_s > 0.0);
  members_.emplace_back(&loop, cfg, seed);
  return members_.size() - 1;
}

AdmissionResult Fleet::try_add(SensingActionLoop& loop, FleetLoopConfig cfg,
                               std::uint64_t seed) {
  AdmissionResult r;
  r.pressure = admission_.pressure();
  r.decision = admission_.decide();
  if (r.decision == AdmissionDecision::kRejected) return r;
  if (r.decision == AdmissionDecision::kDegraded)
    cfg.deadline_s *= admission_.config().degrade_factor;  // +inf stays +inf
  r.index = add(loop, cfg, seed);
  return r;
}

FleetStats Fleet::run() {
  using Clock = std::chrono::steady_clock;
  const Clock::time_point t0 = Clock::now();
  const auto elapsed = [t0] {
    return std::chrono::duration<double>(Clock::now() - t0).count();
  };

  FleetStats stats;
  stats.loops.resize(members_.size());

  // Ready heap keyed (next deadline, executed ticks, id): EDF, with the
  // executed-ticks tie-break degenerating to round-robin fairness when
  // every deadline is +inf (pure throughput mode).
  struct Entry {
    double deadline;
    long executed;
    std::size_t id;
  };
  const auto later = [](const Entry& a, const Entry& b) {
    if (a.deadline != b.deadline) return a.deadline > b.deadline;
    if (a.executed != b.executed) return a.executed > b.executed;
    return a.id > b.id;
  };

  std::vector<Entry> ready;
  ready.reserve(members_.size());
  for (std::size_t i = 0; i < members_.size(); ++i) {
    Member& m = members_[i];
    m.executed = 0;
    m.shed = 0;
    m.deadline_misses = 0;
    m.remaining = m.cfg.ticks;
    m.tick_ms.clear();
    // The k-th tick (1-based) is due at k * deadline_s from now: a rate
    // contract fixed at admission, not reset by late dispatches.
    m.next_deadline = m.cfg.deadline_s;  // +inf stays +inf
    if (m.remaining > 0) ready.push_back({m.next_deadline, 0, i});
  }
  std::make_heap(ready.begin(), ready.end(), later);

  std::mutex mu;
  std::condition_variable cv;
  int active = 0;  // members currently owned by a worker
  std::atomic<long> dispatches{0};

  int workers = util::global_pool().size();
  if (cfg_.max_workers > 0) workers = std::min(workers, cfg_.max_workers);
  workers = std::min<int>(workers, static_cast<int>(members_.size()));
  if (workers < 1) workers = 1;

  const long batch = cfg_.batch;

  const auto worker = [&](std::size_t /*worker_id*/) {
    for (;;) {
      Entry e{};
      {
        std::unique_lock<std::mutex> lk(mu);
        cv.wait(lk, [&] { return !ready.empty() || active == 0; });
        if (ready.empty()) {
          if (active == 0) return;  // fleet drained
          continue;                 // lost a race; wait again
        }
        std::pop_heap(ready.begin(), ready.end(), later);
        e = ready.back();
        ready.pop_back();
        ++active;
        S2A_GAUGE_SET("fleet.ready_queue_depth",
                      static_cast<double>(ready.size()));
      }
      dispatches.fetch_add(1, std::memory_order_relaxed);

      // Exclusive ownership: `e.id` is out of the heap until requeued,
      // so this member's loop, Rng, and counters are single-threaded.
      Member& m = members_[e.id];
      const bool timed = std::isfinite(m.cfg.deadline_s);
      {
        S2A_TRACE_SCOPE_CAT("fleet.dispatch", "core");

        // Admission control: a member that has fallen hopelessly behind
        // its rate contract is shed — its remaining ticks are abandoned
        // so stragglers release their workers instead of stalling the
        // fleet. (The member's loop keeps whatever state it reached;
        // only future work is dropped.)
        if (timed && m.cfg.shed_slack > 0.0 &&
            elapsed() - m.next_deadline >
                m.cfg.shed_slack * m.cfg.deadline_s) {
          m.shed += m.remaining;
          S2A_COUNTER_ADD("fleet.shed_ticks", m.remaining);
          admission_.record_shed(m.remaining);
          m.remaining = 0;
        }

        const long n = std::min<long>(batch, m.remaining);
        long bad = 0;
        for (long k = 0; k < n; ++k) {
          const double start_s =
              (cfg_.record_latencies || timed) ? elapsed() : 0.0;
          m.loop->tick(m.rng);
          --m.remaining;
          ++m.executed;
          if (cfg_.record_latencies || timed) {
            const double end_s = elapsed();
            if (cfg_.record_latencies)
              m.tick_ms.push_back((end_s - start_s) * 1e3);
            if (timed) {
              if (end_s > m.next_deadline) {
                ++m.deadline_misses;
                ++bad;
                S2A_COUNTER_ADD("fleet.deadline_misses", 1);
              }
              m.next_deadline += m.cfg.deadline_s;
            }
          }
        }
        S2A_COUNTER_ADD("fleet.ticks", n);
        admission_.record_ticks(n, bad);  // one lock per dispatch, not tick
      }

      {
        std::lock_guard<std::mutex> lk(mu);
        --active;
        if (m.remaining > 0) {
          ready.push_back({m.next_deadline, m.executed, e.id});
          std::push_heap(ready.begin(), ready.end(), later);
          cv.notify_one();
        } else if (ready.empty() && active == 0) {
          cv.notify_all();  // wake everyone so they can observe "drained"
        }
      }
    }
  };

  if (!members_.empty())
    util::global_pool().parallel_for(0, static_cast<std::size_t>(workers), 1,
                                     worker);

  stats.workers = workers;
  stats.dispatches = dispatches.load(std::memory_order_relaxed);
  stats.wall_s = elapsed();
  for (std::size_t i = 0; i < members_.size(); ++i) {
    Member& m = members_[i];
    FleetLoopStats& ls = stats.loops[i];
    ls.requested = m.cfg.ticks;
    ls.executed = m.executed;
    ls.shed = m.shed;
    ls.deadline_misses = m.deadline_misses;
    ls.final_state = m.loop->state();
    if (!m.tick_ms.empty()) {
      std::sort(m.tick_ms.begin(), m.tick_ms.end());
      ls.p50_tick_ms = percentile(m.tick_ms, 0.50);
      ls.p95_tick_ms = percentile(m.tick_ms, 0.95);
      ls.max_tick_ms = m.tick_ms.back();
    }
    stats.executed += ls.executed;
    stats.shed += ls.shed;
    stats.deadline_misses += ls.deadline_misses;
  }
  stats.ticks_per_s =
      stats.wall_s > 0.0 ? static_cast<double>(stats.executed) / stats.wall_s
                         : 0.0;
  return stats;
}

}  // namespace s2a::core
