// The sensing-to-action loop (Fig. 1): sensing → processing → actuation →
// environment, iterated on a fixed tick. This is the framework the
// paper's five subsystems plug into; the abstractions here are
// deliberately value-based (observations and actions are double vectors)
// so any substrate — LiDAR grids, retinas, event frames, FL embeddings —
// can be wired in by an adapter.
//
// The loop models the two failure axes Sec. I calls out:
//  * staleness — sensing + processing latency means actions execute on an
//    environment state that is `latency` old; the loop tracks the age of
//    the observation behind every action.
//  * energy — every sense and process step is metered.
// A sensing policy decides per tick whether to sense (Sec. II's
// rate/resolution adaptation), and an optional trust monitor can veto
// acting on an untrusted observation (Sec. V).
//
// Robustness (Sec. I/V, docs/RESILIENCE.md): sensors may fail at runtime
// by throwing SensorFault — the loop retries with configurable backoff,
// quarantines non-finite payloads at the sense boundary, bounds the age
// of acted-on data (`ResilienceConfig::max_staleness_s`) with a
// configurable fallback policy, and drives a NOMINAL → DEGRADED →
// SAFE_STOP state machine with hysteresis so transient faults recover
// and persistent ones latch into a safe halt. Actions are validated
// before actuation: a non-finite action never reaches the Actuator.
//
// tick() is instrumented with s2a::obs spans (loop.tick with nested
// loop.sense / loop.trust_check / loop.process / loop.actuate) and
// counters; see docs/OBSERVABILITY.md. Inert unless obs is enabled.
//
// Execution engines: tick() is the synchronous reference path. The same
// loop can be driven staged — sense_stage() / commit_tick() below — by
// the pipelined engine (pipeline.hpp: sense(t+1) overlaps commit(t)) or
// by the fleet scheduler (fleet.hpp: many loops, EDF dispatch); both
// reproduce the resilience semantics of this file unchanged.
#pragma once

#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace s2a::core {

struct Observation {
  std::vector<double> data;
  double timestamp = 0.0;
  double energy_j = 0.0;  ///< sensing energy spent acquiring it
  /// Additional acquisition delay beyond LoopConfig::sensing_latency
  /// (e.g. an injected latency spike); ages the observation.
  double extra_latency_s = 0.0;
};

struct Action {
  std::vector<double> data;
  double based_on_timestamp = 0.0;  ///< timestamp of the observation used
};

/// Thrown by a Sensor whose acquisition failed outright (hardware
/// dropout, bus error, injected fault). The loop catches exactly this
/// type and retries within the configured budget; any other exception
/// propagates as a programming error.
class SensorFault : public std::runtime_error {
 public:
  explicit SensorFault(const std::string& what) : std::runtime_error(what) {}
};

/// Sensing front-end: acquire an observation of the environment now.
/// May throw SensorFault when acquisition fails.
class Sensor {
 public:
  virtual ~Sensor() = default;
  virtual Observation sense(double now, Rng& rng) = 0;
};

/// Perception/decision stage: observation → action vector.
class Processor {
 public:
  virtual ~Processor() = default;
  virtual std::vector<double> process(const Observation& obs, Rng& rng) = 0;
  /// Time-aware variant: the loop calls this with its current virtual
  /// time, which time-indexed processors (core::OffloadExecutor routing
  /// over a net::LinkSim whose fault windows are keyed by the loop
  /// clock) need. The default forwards to process(), so plain
  /// processors are unaffected.
  virtual std::vector<double> process_at(double now, const Observation& obs,
                                         Rng& rng) {
    (void)now;
    return process(obs, rng);
  }
  /// Energy of one process() call (metered into the loop totals).
  virtual double energy_per_call_j() const { return 0.0; }
};

/// Actuation back-end: apply the action to the environment.
class Actuator {
 public:
  virtual ~Actuator() = default;
  virtual void actuate(const Action& action, Rng& rng) = 0;
};

/// Per-tick sensing decision (the sensing-rate knob of Sec. II).
class SensingPolicy {
 public:
  virtual ~SensingPolicy() = default;
  /// `last` is the most recent observation (nullptr before the first).
  virtual bool should_sense(double now, const Observation* last, Rng& rng) = 0;
};

/// Optional reliability gate (STARNet's role in the loop).
class TrustMonitor {
 public:
  virtual ~TrustMonitor() = default;
  virtual bool trusted(const Observation& obs, Rng& rng) = 0;
};

/// What to do when the freshest trusted observation is older than
/// `max_staleness_s` (or the processor emitted a non-finite action).
enum class FallbackPolicy {
  kHoldLastAction = 0,  ///< re-issue the last good action
  kZeroAction,          ///< issue an all-zero action of the last size
  kSafeStop,            ///< latch into SAFE_STOP immediately
};
const char* fallback_name(FallbackPolicy policy);

/// Degradation state machine (docs/RESILIENCE.md). SAFE_STOP is latched:
/// once entered the loop stops sensing and actuating for good.
enum class LoopState { kNominal = 0, kDegraded, kSafeStop };
const char* state_name(LoopState state);

/// Runtime-robustness knobs. The defaults change nothing for healthy
/// components: retries only trigger on SensorFault, the staleness bound
/// defaults to +inf, and SAFE_STOP escalation is off until
/// `safe_stop_after` is set.
struct ResilienceConfig {
  /// Extra sense attempts after a SensorFault, within the same tick.
  int max_sense_retries = 2;
  /// Modeled delay added per failed attempt (linear backoff: attempt k
  /// adds k * retry_backoff_s); ages the eventually-acquired observation.
  double retry_backoff_s = 0.0;
  /// Acting on data older than this triggers the fallback policy.
  double max_staleness_s = std::numeric_limits<double>::infinity();
  FallbackPolicy fallback = FallbackPolicy::kHoldLastAction;
  /// Consecutive bad ticks before NOMINAL → DEGRADED (0 disables).
  int degrade_after = 3;
  /// Consecutive good ticks before DEGRADED → NOMINAL.
  int recover_after = 3;
  /// Consecutive bad ticks before DEGRADED → SAFE_STOP (0 disables).
  int safe_stop_after = 0;
};

struct LoopConfig {
  double dt = 0.05;               ///< tick period (s)
  double sensing_latency = 0.0;   ///< acquisition delay (s)
  double processing_latency = 0.0;
  ResilienceConfig resilience;
};

/// Result of one tick's sense stage, produced by sense_stage() and
/// consumed — possibly on another thread, possibly never — by
/// commit_tick(). The engine API in pipeline.hpp overlaps the sense
/// stage of tick t+1 with the commit stage of tick t; metric deltas are
/// carried here instead of applied in place so a speculative sense that
/// turns out to land after a SAFE_STOP latch can be discarded without
/// leaving a trace in the metrics.
struct SenseOutcome {
  bool attempted = false;  ///< the policy decided to sense this tick
  bool ok = false;         ///< a trusted, finite observation was acquired
  Observation obs;         ///< valid iff ok

  // Metric deltas accumulated by the sense stage, applied at commit.
  long senses = 0;
  long sensor_faults = 0;
  long sense_retries = 0;
  long quarantined = 0;
  long vetoed = 0;
  double sensing_energy_j = 0.0;
};

struct LoopMetrics {
  long ticks = 0;
  long senses = 0;   ///< successful acquisitions
  long actions = 0;  ///< actuations driven by a processed observation
  long vetoed = 0;   ///< observations rejected by the trust monitor
  double sensing_energy_j = 0.0;
  double processing_energy_j = 0.0;
  double total_staleness_s = 0.0;  ///< summed over observation-driven actions

  // Robustness counters (docs/RESILIENCE.md).
  long sensor_faults = 0;       ///< SensorFault throws caught
  long sense_retries = 0;       ///< extra attempts made after a fault
  long quarantined = 0;         ///< non-finite observations rejected
  long quarantined_actions = 0; ///< non-finite actions blocked pre-actuate
  long staleness_violations = 0;
  long fallback_actions = 0;    ///< actuations issued by the fallback policy
  long degraded_ticks = 0;      ///< ticks spent in DEGRADED
  long safe_stop_ticks = 0;     ///< ticks spent halted in SAFE_STOP
  long degradations = 0;        ///< NOMINAL → DEGRADED transitions
  long recoveries = 0;          ///< DEGRADED → NOMINAL transitions
  long safe_stops = 0;          ///< → SAFE_STOP transitions (0 or 1)

  friend bool operator==(const LoopMetrics&, const LoopMetrics&) = default;

  double mean_staleness_s() const {
    return actions > 0 ? total_staleness_s / actions : 0.0;
  }
  double duty_cycle() const {
    return ticks > 0 ? static_cast<double>(senses) / ticks : 0.0;
  }
  double total_energy_j() const {
    return sensing_energy_j + processing_energy_j;
  }
};

/// The loop engine. Owns nothing: components are injected by reference so
/// callers can inspect them afterwards.
class SensingActionLoop {
 public:
  SensingActionLoop(Sensor& sensor, Processor& processor, Actuator& actuator,
                    SensingPolicy& policy, LoopConfig config = {},
                    TrustMonitor* monitor = nullptr);

  /// One iteration: consult the policy, maybe sense (through the retry /
  /// finite-check / trust gates), process, validate, actuate. When the
  /// policy skips sensing, the last trusted observation is reused — its
  /// growing age shows up in the staleness metric and, past
  /// `max_staleness_s`, triggers the fallback policy. In SAFE_STOP the
  /// tick only advances time.
  void tick(Rng& rng);
  void run(int ticks, Rng& rng);

  // --- Staged execution (the engine API; see pipeline.hpp / fleet.hpp) ---
  //
  // tick(rng) ≡ sense_stage(now(), last_observation(), rng) followed by
  // commit_tick(outcome, rng) on the same generator. The split exists so
  // an engine can overlap the sense stage of tick t+1 with the commit
  // stage of tick t on another thread:
  //  * sense_stage touches only the policy / sensor / trust monitor and
  //    its arguments — never loop state — so it is safe to run while a
  //    previous tick commits;
  //  * commit_tick touches only loop state plus the processor / actuator.
  // Component contract: each component is driven by exactly one stage
  // (policy+sensor+monitor by sense, processor+actuator by commit), so
  // components must not share mutable state across that line.

  /// The sense half of a tick at time `now` with `last` the most recent
  /// trusted observation (nullptr before the first): policy decision,
  /// bounded-retry acquisition, finite-value quarantine, trust gate.
  /// Mutates no loop state; all effects are in the returned outcome.
  SenseOutcome sense_stage(double now, const Observation* last, Rng& rng);

  /// The commit half of a tick: applies the outcome's metric deltas,
  /// installs its observation, then processes / validates / actuates and
  /// advances the state machine and the clock. In SAFE_STOP the outcome
  /// is discarded wholesale (none of its deltas apply — exactly as if
  /// the tick had never sensed) and the tick only advances time.
  void commit_tick(SenseOutcome& outcome, Rng& rng);

  /// The observation commit_tick(outcome, ...) would hand to the
  /// Processor, or nullptr when the commit will not process this tick
  /// (SAFE_STOP latched, no observation to act on, or the freshest one
  /// is past max_staleness_s). Mirrors commit_tick's gating exactly so
  /// a batching engine (batched_fleet.hpp) can run the processor work
  /// for several members in one fused call *before* committing them;
  /// mutates nothing. Only meaningful between this member's sense stage
  /// and its commit — the answer depends on loop state.
  const Observation* peek_process_input(const SenseOutcome& outcome) const;

  double now() const { return now_; }
  const LoopConfig& config() const { return cfg_; }
  const LoopMetrics& metrics() const { return metrics_; }
  LoopState state() const { return state_; }
  const Observation* last_observation() const {
    return has_observation_ ? &last_obs_ : nullptr;
  }
  const Action* last_action() const {
    return has_action_ ? &last_action_ : nullptr;
  }

 private:
  /// Action substitution for stale/blocked ticks per the fallback policy
  /// (hold-last / zero / latch SAFE_STOP).
  void apply_fallback(Rng& rng);
  void enter_safe_stop();
  void update_state_machine(bool bad_tick);

  Sensor& sensor_;
  Processor& processor_;
  Actuator& actuator_;
  SensingPolicy& policy_;
  LoopConfig cfg_;
  TrustMonitor* monitor_;

  double now_ = 0.0;
  Observation last_obs_;
  bool has_observation_ = false;
  Action last_action_;
  bool has_action_ = false;
  LoopState state_ = LoopState::kNominal;
  int bad_streak_ = 0;
  int good_streak_ = 0;
  LoopMetrics metrics_;
};

}  // namespace s2a::core
