// The sensing-to-action loop (Fig. 1): sensing → processing → actuation →
// environment, iterated on a fixed tick. This is the framework the
// paper's five subsystems plug into; the abstractions here are
// deliberately value-based (observations and actions are double vectors)
// so any substrate — LiDAR grids, retinas, event frames, FL embeddings —
// can be wired in by an adapter.
//
// The loop models the two failure axes Sec. I calls out:
//  * staleness — sensing + processing latency means actions execute on an
//    environment state that is `latency` old; the loop tracks the age of
//    the observation behind every action.
//  * energy — every sense and process step is metered.
// A sensing policy decides per tick whether to sense (Sec. II's
// rate/resolution adaptation), and an optional trust monitor can veto
// acting on an untrusted observation (Sec. V).
//
// tick() is instrumented with s2a::obs spans (loop.tick with nested
// loop.sense / loop.trust_check / loop.process / loop.actuate) and
// counters; see docs/OBSERVABILITY.md. Inert unless obs is enabled.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "util/rng.hpp"

namespace s2a::core {

struct Observation {
  std::vector<double> data;
  double timestamp = 0.0;
  double energy_j = 0.0;  ///< sensing energy spent acquiring it
};

struct Action {
  std::vector<double> data;
  double based_on_timestamp = 0.0;  ///< timestamp of the observation used
};

/// Sensing front-end: acquire an observation of the environment now.
class Sensor {
 public:
  virtual ~Sensor() = default;
  virtual Observation sense(double now, Rng& rng) = 0;
};

/// Perception/decision stage: observation → action vector.
class Processor {
 public:
  virtual ~Processor() = default;
  virtual std::vector<double> process(const Observation& obs, Rng& rng) = 0;
  /// Energy of one process() call (metered into the loop totals).
  virtual double energy_per_call_j() const { return 0.0; }
};

/// Actuation back-end: apply the action to the environment.
class Actuator {
 public:
  virtual ~Actuator() = default;
  virtual void actuate(const Action& action, Rng& rng) = 0;
};

/// Per-tick sensing decision (the sensing-rate knob of Sec. II).
class SensingPolicy {
 public:
  virtual ~SensingPolicy() = default;
  /// `last` is the most recent observation (nullptr before the first).
  virtual bool should_sense(double now, const Observation* last, Rng& rng) = 0;
};

/// Optional reliability gate (STARNet's role in the loop).
class TrustMonitor {
 public:
  virtual ~TrustMonitor() = default;
  virtual bool trusted(const Observation& obs, Rng& rng) = 0;
};

struct LoopConfig {
  double dt = 0.05;               ///< tick period (s)
  double sensing_latency = 0.0;   ///< acquisition delay (s)
  double processing_latency = 0.0;
};

struct LoopMetrics {
  long ticks = 0;
  long senses = 0;
  long actions = 0;
  long vetoed = 0;  ///< observations rejected by the trust monitor
  double sensing_energy_j = 0.0;
  double processing_energy_j = 0.0;
  double total_staleness_s = 0.0;  ///< summed over actions

  double mean_staleness_s() const {
    return actions > 0 ? total_staleness_s / actions : 0.0;
  }
  double duty_cycle() const {
    return ticks > 0 ? static_cast<double>(senses) / ticks : 0.0;
  }
  double total_energy_j() const {
    return sensing_energy_j + processing_energy_j;
  }
};

/// The loop engine. Owns nothing: components are injected by reference so
/// callers can inspect them afterwards.
class SensingActionLoop {
 public:
  SensingActionLoop(Sensor& sensor, Processor& processor, Actuator& actuator,
                    SensingPolicy& policy, LoopConfig config = {},
                    TrustMonitor* monitor = nullptr);

  /// One iteration: consult the policy, maybe sense (through the trust
  /// gate), process, actuate. When the policy skips sensing, the last
  /// trusted observation is reused — its growing age shows up in the
  /// staleness metric.
  void tick(Rng& rng);
  void run(int ticks, Rng& rng);

  double now() const { return now_; }
  const LoopMetrics& metrics() const { return metrics_; }
  const Observation* last_observation() const {
    return has_observation_ ? &last_obs_ : nullptr;
  }

 private:
  Sensor& sensor_;
  Processor& processor_;
  Actuator& actuator_;
  SensingPolicy& policy_;
  LoopConfig cfg_;
  TrustMonitor* monitor_;

  double now_ = 0.0;
  Observation last_obs_;
  bool has_observation_ = false;
  LoopMetrics metrics_;
};

}  // namespace s2a::core
