// Cross-loop batched inference engine: the fleet's EDF ready-heap pops
// a *group* of members per dispatch and their processor work runs as
// ONE fused batched forward instead of N per-loop forwards.
//
// Why: with per-loop dispatch (fleet.hpp), every member's tick pays the
// full fixed cost of a forward pass — weight packing, arena and tensor
// bookkeeping, pool dispatch — for a few microseconds of useful MACs.
// Gathering B concurrently-ready members into one [B, ...] forward
// (nn/batch.hpp) amortizes all of that across the group: the conv
// kernels pack each layer's weight panel once per call and shard the
// flattened (image, output-row) band space across the pool in a single
// pass. This is the "millions of users" multi-tenant serving shape: one
// shared model, many small per-member inputs.
//
// Execution model (single coordinator, no locks):
//  * run() executes on the calling thread. Each dispatch pops up to
//    `gather` members from the EDF heap (same (deadline, executed, id)
//    key as core::Fleet, so group composition is deterministic at
//    infinite deadlines), then drives one tick of each member in three
//    phases:
//      1. sense   — members' sense stages run in parallel on the global
//                   pool (disjoint state: each member's own loop args +
//                   Rng stream);
//      2. process — peek_process_input() asks each loop whether its
//                   commit would process and on which observation; the
//                   eligible observations go through ONE
//                   BatchProcessor::process_batch() call and the rows
//                   are staged into the members' BatchSlots;
//      3. commit  — commit_tick() runs serially per member, in group
//                   order. The slot hands the staged row to the loop's
//                   Processor::process() call, so the NOMINAL/DEGRADED/
//                   SAFE_STOP machine, metrics, fallbacks, and
//                   actuation validation are the stock loop code,
//                   untouched.
//  * Deadline accounting matches core::Fleet: rate contracts, miss
//    counting at commit end, shed_slack shedding at pop time, and the
//    same FleetAdmission policy behind try_add().
//
// Bit-exactness: a member's tick outcome is bit-identical to the same
// loop/seed running under a serial per-loop engine, provided the
// BatchProcessor contract below holds — proven across member counts,
// gather sizes, thread counts, and fault chaos by
// tests/fleet_batch_test.cpp.
#pragma once

#include <cstdint>
#include <vector>

#include "core/fleet.hpp"
#include "core/loop.hpp"

namespace s2a::core {

/// A Processor that can also serve a whole group in one fused call.
///
/// Contract:
///  * process_batch(obs)[i] must be bit-identical to process(*obs[i])
///    for every i — same arithmetic, only gathered. The nn batched
///    entry points (nn/batch.hpp + the batch-first conv kernels)
///    provide exactly this.
///  * process()/process_batch() must not draw from the loop Rng: the
///    fused call has no per-member generator to consume from, so a
///    randomized processor would diverge from the serial path. (The
///    `rng` parameter of process() exists to satisfy the Processor
///    interface; implementations must ignore it.)
///  * process_batch() is called from the coordinator thread only; it
///    may freely use the global pool internally (the conv kernels do).
class BatchProcessor : public Processor {
 public:
  virtual std::vector<std::vector<double>> process_batch(
      const std::vector<const Observation*>& obs) = 0;
};

/// Per-member Processor adapter: the loop's processor_ slot. During a
/// batched dispatch the engine stages the member's row of the fused
/// forward here; the loop's own commit_tick() then consumes it through
/// the ordinary Processor::process() call. Outside an engine dispatch
/// (or if nothing was staged) it transparently delegates to the shared
/// processor's serial path, so a loop built on a BatchSlot also runs
/// correctly under tick()/run()/Fleet.
///
/// Composing with core::OffloadExecutor (offload.hpp): a BatchSlot used
/// as the executor's *local* model must be driven with
/// OffloadConfig::prepaid_local so the staged row is consumed exactly
/// once per tick — otherwise a tick routed remote would leave a stale
/// staged row behind for the next tick to serve.
class BatchSlot : public Processor {
 public:
  explicit BatchSlot(BatchProcessor& shared) : shared_(shared) {}

  std::vector<double> process(const Observation& obs, Rng& rng) override {
    if (staged_) {
      staged_ = false;
      return std::move(staged_row_);
    }
    return shared_.process(obs, rng);
  }
  double energy_per_call_j() const override {
    return shared_.energy_per_call_j();
  }

  void stage(std::vector<double> row) {
    staged_row_ = std::move(row);
    staged_ = true;
  }
  bool staged() const { return staged_; }
  BatchProcessor& shared() const { return shared_; }

 private:
  BatchProcessor& shared_;
  std::vector<double> staged_row_;
  bool staged_ = false;
};

struct BatchedFleetConfig {
  /// Max members fused into one dispatch group (the batch axis of the
  /// shared forward). 1 degenerates to serial per-loop dispatch.
  int gather = 8;
  /// Record per-tick latencies for the p50/p95/max stats.
  bool record_latencies = true;
  /// Admission control (disabled by default; see FleetAdmission).
  AdmissionConfig admission{};
};

/// Schedules many independently-seeded loops that share one
/// BatchProcessor. Owns the per-member Rng streams but not the loops or
/// slots; every loop and slot must outlive run(). Reuses
/// FleetLoopConfig / FleetLoopStats / FleetStats from fleet.hpp
/// (FleetStats::workers reports the pool parallelism available to the
/// fused phases; dispatches counts groups).
class BatchedFleet {
 public:
  explicit BatchedFleet(BatchProcessor& shared, BatchedFleetConfig cfg = {});

  /// Admits a loop whose Processor is `slot` (a BatchSlot bound to this
  /// fleet's shared BatchProcessor). Returns the member index.
  std::size_t add(SensingActionLoop& loop, BatchSlot& slot,
                  FleetLoopConfig cfg, std::uint64_t seed);

  /// Admission-controlled add (see Fleet::try_add).
  AdmissionResult try_add(SensingActionLoop& loop, BatchSlot& slot,
                          FleetLoopConfig cfg, std::uint64_t seed);

  const FleetAdmission& admission() const { return admission_; }

  std::size_t size() const { return members_.size(); }

  /// Executes every admitted member to completion (or shedding) on the
  /// calling thread. Callable repeatedly, like Fleet::run().
  FleetStats run();

  /// Fused process_batch() calls and member-ticks served by them during
  /// the last run() (a fused call with one eligible member still counts:
  /// the batch axis just has extent 1).
  long batched_forwards() const { return batched_forwards_; }
  long batched_members() const { return batched_members_; }

 private:
  struct Member {
    SensingActionLoop* loop = nullptr;
    BatchSlot* slot = nullptr;
    FleetLoopConfig cfg;
    Rng rng;
    long executed = 0;
    long shed = 0;
    long deadline_misses = 0;
    long remaining = 0;
    double next_deadline = std::numeric_limits<double>::infinity();
    std::vector<double> tick_ms;

    Member(SensingActionLoop* l, BatchSlot* s, FleetLoopConfig c,
           std::uint64_t seed)
        : loop(l), slot(s), cfg(c), rng(seed) {}
  };

  BatchProcessor& shared_;
  BatchedFleetConfig cfg_;
  std::vector<Member> members_;
  FleetAdmission admission_;
  long batched_forwards_ = 0;
  long batched_members_ = 0;
};

}  // namespace s2a::core
