#include "core/offload.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "obs/obs.hpp"
#include "util/check.hpp"

namespace s2a::core {

namespace {
constexpr double kEmaAlpha = 0.2;
constexpr std::size_t kDefaultPayloadBytes = 1024;
}  // namespace

const char* offload_mode_name(OffloadMode mode) {
  switch (mode) {
    case OffloadMode::kPolicy:
      return "policy";
    case OffloadMode::kAlwaysLocal:
      return "always_local";
    case OffloadMode::kAlwaysRemote:
      return "always_remote";
  }
  return "?";
}

OffloadExecutor::OffloadExecutor(Processor& local, Processor& remote,
                                 net::LinkSim link, OffloadConfig cfg,
                                 UncertaintySource* gate, std::uint64_t seed)
    : local_(local),
      remote_(remote),
      link_(std::move(link)),
      cfg_(cfg),
      gate_(gate),
      seed_(seed),
      breaker_(cfg.breaker, net::mix_seed(seed, 0x5EEDu)) {
  S2A_CHECK(cfg_.deadline_s > 0.0);
  S2A_CHECK(cfg_.max_retries >= 0);
  S2A_CHECK(cfg_.backoff_base_s >= 0.0 && cfg_.backoff_jitter_frac >= 0.0);
  S2A_CHECK(cfg_.attempt_timeout_s >= 0.0);
  S2A_CHECK(cfg_.hedge_factor >= 0.0);
  S2A_CHECK(cfg_.gate_decay >= 0.0 && cfg_.gate_decay < 1.0);
  S2A_CHECK(cfg_.loss_gate > 0.0 && cfg_.loss_gate <= 1.0);
  S2A_CHECK(cfg_.local_compute_s >= 0.0 && cfg_.remote_compute_s >= 0.0);
  S2A_CHECK(cfg_.tx_energy_j >= 0.0);
}

std::size_t OffloadExecutor::request_bytes(const Observation& obs) const {
  if (cfg_.request_bytes > 0) return cfg_.request_bytes;
  return obs.data.empty() ? kDefaultPayloadBytes
                          : obs.data.size() * sizeof(double);
}

std::size_t OffloadExecutor::response_bytes(const Observation& obs) const {
  return cfg_.response_bytes > 0 ? cfg_.response_bytes : request_bytes(obs);
}

double OffloadExecutor::attempt_timeout() const {
  if (cfg_.attempt_timeout_s > 0.0) return cfg_.attempt_timeout_s;
  return cfg_.deadline_s / static_cast<double>(cfg_.max_retries + 1);
}

void OffloadExecutor::seed_cost_model(const Observation& obs) {
  if (cost_seeded_) return;
  ema_rtt_ = link_.estimate_rtt_s(request_bytes(obs), response_bytes(obs),
                                  cfg_.remote_compute_s);
  ema_dev_ = 0.25 * ema_rtt_;
  ema_loss_ = link_.config().loss_prob;
  cost_seeded_ = true;
}

bool OffloadExecutor::predicts_deadline_met() const {
  if (ema_loss_ > cfg_.loss_gate) return false;
  // Expected serve latency: p95-ish round trip plus the expected cost of
  // one loss-driven retry (timeout burned + backoff).
  const double expected = ema_rtt_ + 2.0 * ema_dev_ +
                          ema_loss_ * (attempt_timeout() + cfg_.backoff_base_s);
  return expected <= cfg_.deadline_s;
}

void OffloadExecutor::observe_success(double rtt_s) {
  ema_rtt_ = (1.0 - kEmaAlpha) * ema_rtt_ + kEmaAlpha * rtt_s;
  ema_dev_ = (1.0 - kEmaAlpha) * ema_dev_ +
             kEmaAlpha * std::abs(rtt_s - ema_rtt_);
  ema_loss_ = (1.0 - kEmaAlpha) * ema_loss_;
  S2A_GAUGE_SET("core.offload_ema_rtt_s", ema_rtt_);
}

void OffloadExecutor::observe_failure() {
  ema_loss_ = (1.0 - kEmaAlpha) * ema_loss_ + kEmaAlpha;
  S2A_GAUGE_SET("core.offload_ema_loss", ema_loss_);
}

std::vector<double> OffloadExecutor::serve_local(const Observation& obs,
                                                 Rng& rng,
                                                 std::vector<double>* prepaid,
                                                 double latency_s) {
  ++metrics_.local_served;
  S2A_COUNTER_ADD("core.offload_local_served", 1);
  last_latency_s_ = latency_s;
  metrics_.total_latency_s += latency_s;
  S2A_HISTOGRAM_RECORD("core.offload_latency_s", latency_s);
  if (prepaid != nullptr) return std::move(*prepaid);
  last_energy_j_ += local_.energy_per_call_j();
  return local_.process(obs, rng);
}

std::vector<double> OffloadExecutor::serve_remote(const Observation& obs,
                                                  Rng& rng,
                                                  double latency_s) {
  ++metrics_.remote_served;
  S2A_COUNTER_ADD("core.offload_remote_served", 1);
  last_served_remote_ = true;
  last_latency_s_ = latency_s;
  metrics_.total_latency_s += latency_s;
  S2A_HISTOGRAM_RECORD("core.offload_latency_s", latency_s);
  return remote_.process(obs, rng);
}

std::vector<double> OffloadExecutor::strict_sentinel(double latency_s) {
  // The loop's actuation boundary blocks this (quarantined_actions),
  // applies the fallback policy, and counts a bad tick toward the
  // NOMINAL → DEGRADED → SAFE_STOP machine — the existing error channel.
  ++metrics_.strict_denied;
  S2A_COUNTER_ADD("core.offload_strict_denied", 1);
  last_latency_s_ = latency_s;
  metrics_.total_latency_s += latency_s;
  return {std::numeric_limits<double>::quiet_NaN()};
}

std::vector<double> OffloadExecutor::process(const Observation& obs,
                                             Rng& rng) {
  return process_at(obs.timestamp, obs, rng);
}

std::vector<double> OffloadExecutor::process_at(double now,
                                                const Observation& obs,
                                                Rng& rng) {
  S2A_TRACE_SCOPE_CAT("core.offload_tick", "core");
  ++metrics_.requests;
  last_energy_j_ = 0.0;
  last_served_remote_ = false;
  seed_cost_model(obs);

  // prepaid_local: the local model runs unconditionally up front (a
  // BatchSlot's staged row must be consumed exactly once per tick);
  // remote success upgrades the answer afterwards.
  std::vector<double> prepaid_out;
  bool have_prepaid = false;
  if (cfg_.prepaid_local) {
    prepaid_out = local_.process(obs, rng);
    last_energy_j_ += local_.energy_per_call_j();
    have_prepaid = true;
  }
  std::vector<double>* prepaid = have_prepaid ? &prepaid_out : nullptr;

  const bool policy = cfg_.mode == OffloadMode::kPolicy;

  // 1. Uncertainty gate.
  if (cfg_.mode == OffloadMode::kAlwaysLocal) {
    return serve_local(obs, rng, prepaid, cfg_.local_compute_s);
  }
  if (policy && gate_ != nullptr && gate_->score(obs) <= cfg_.regret_gate) {
    ++metrics_.gated_local;
    S2A_COUNTER_ADD("core.offload_gated_local", 1);
    return serve_local(obs, rng, prepaid, cfg_.local_compute_s);
  }

  // 2. Circuit breaker (policy mode only — the always-remote baseline
  // measures naive routing, so it gets no protection).
  bool probing = false;
  if (policy) {
    const std::uint64_t admission_id = ++request_counter_;
    if (!breaker_.allow(now, admission_id)) {
      ++metrics_.breaker_blocked;
      S2A_COUNTER_ADD("core.offload_breaker_blocked", 1);
      if (cfg_.strict_uncertain) return strict_sentinel(0.0);
      return serve_local(obs, rng, prepaid, cfg_.local_compute_s);
    }
    probing = breaker_.state() == net::BreakerState::kHalfOpen;

    // 3. Cost model (probes bypass it — a probe *is* the exploration
    // that refreshes the model).
    if (!probing && !predicts_deadline_met()) {
      ++metrics_.cost_gated;
      S2A_COUNTER_ADD("core.offload_cost_gated", 1);
      // Optimistic decay: a link written off by the model is re-tried
      // eventually instead of being gated forever.
      ema_loss_ *= (1.0 - cfg_.gate_decay);
      if (cfg_.strict_uncertain) return strict_sentinel(0.0);
      return serve_local(obs, rng, prepaid, cfg_.local_compute_s);
    }
  }

  // Remote attempt loop: bounded retries, exponential backoff with
  // deterministic hashed jitter, per-attempt timeouts.
  const double hedge_budget =
      cfg_.hedge_factor > 0.0
          ? cfg_.hedge_factor * (ema_rtt_ + 2.0 * ema_dev_)
          : std::numeric_limits<double>::infinity();
  const double budget = attempt_timeout();
  double elapsed = 0.0;
  bool success = false;
  for (int attempt = 0; attempt <= cfg_.max_retries; ++attempt) {
    if (attempt > 0) {
      ++metrics_.retries;
      S2A_COUNTER_ADD("core.offload_retries", 1);
      const double scale = static_cast<double>(1 << (attempt - 1));
      Rng jitter_rng(net::mix_seed(seed_ ^ 0xB0FFu, ++request_counter_));
      const double jitter =
          1.0 + cfg_.backoff_jitter_frac * jitter_rng.uniform();
      elapsed += cfg_.backoff_base_s * scale * jitter;
    }
    ++metrics_.remote_attempts;
    S2A_COUNTER_ADD("core.offload_remote_attempts", 1);
    last_energy_j_ += cfg_.tx_energy_j;
    const double send_s = now + elapsed;
    const net::RoundTrip rt =
        link_.roundtrip(send_s, request_bytes(obs), response_bytes(obs),
                        cfg_.remote_compute_s, ++request_counter_);
    if (rt.delivered) {
      const double rtt = rt.response_at_s - send_s;
      if (!rt.corrupted && rtt <= budget) {
        elapsed += rtt;
        success = true;
        observe_success(rtt);
        break;
      }
      if (rt.corrupted && rtt <= budget) {
        // Corruption is detected on arrival; the wait is paid, the
        // payload is discarded, and the attempt counts as failed.
        ++metrics_.corrupt_responses;
        S2A_COUNTER_ADD("core.offload_corrupt_responses", 1);
        elapsed += rtt;
        observe_failure();
        continue;
      }
    }
    // Lost, partitioned, or past the attempt timeout: the full timeout
    // is burned waiting.
    elapsed += budget;
    observe_failure();
  }

  if (policy) {
    if (success) {
      breaker_.record_success();
    } else {
      breaker_.record_failure(now + elapsed);
    }
  }

  // Hedging: a local computation was fired once the remote response went
  // past its p95 budget; first finisher wins, the loser is cancelled.
  const bool hedge_fired =
      std::isfinite(hedge_budget) && (!success || elapsed > hedge_budget);
  if (hedge_fired) {
    ++metrics_.hedged;
    S2A_COUNTER_ADD("core.offload_hedged", 1);
  }

  if (success) {
    ++metrics_.remote_successes;
    const double local_finish = hedge_fired
                                    ? hedge_budget + cfg_.local_compute_s
                                    : std::numeric_limits<double>::infinity();
    if (local_finish < elapsed) {
      // The hedged local answer beat the (late but delivered) remote
      // reply; the remote result is cancelled unread.
      ++metrics_.hedge_local_wins;
      S2A_COUNTER_ADD("core.offload_hedge_local_wins", 1);
      return serve_local(obs, rng, prepaid, local_finish);
    }
    return serve_remote(obs, rng, elapsed);
  }

  ++metrics_.remote_failures;
  S2A_COUNTER_ADD("core.offload_remote_failures", 1);
  if (cfg_.strict_uncertain) return strict_sentinel(elapsed);
  // Local fallback: with a hedge in flight the local answer has been
  // cooking since the hedge budget expired, so the failure costs
  // min(hedge point, full retry window) + local compute.
  const double fallback_latency =
      (hedge_fired ? std::min(hedge_budget, elapsed) : elapsed) +
      cfg_.local_compute_s;
  return serve_local(obs, rng, prepaid, fallback_latency);
}

}  // namespace s2a::core
