#include "core/hierarchical.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace s2a::core {

HierarchicalController::HierarchicalController(
    HierarchicalControllerConfig config,
    std::function<double(const Observation&)> summarize,
    std::function<double(double)> replan)
    : cfg_(config),
      summarize_(std::move(summarize)),
      replan_(std::move(replan)),
      parameter_((config.parameter_min + config.parameter_max) / 2.0),
      setpoint_(config.initial_setpoint) {
  S2A_CHECK(cfg_.planning_period >= 1);
  S2A_CHECK(cfg_.parameter_max > cfg_.parameter_min);
  S2A_CHECK(static_cast<bool>(summarize_) && static_cast<bool>(replan_));
}

double HierarchicalController::update(const Observation& obs) {
  const double value = summarize_(obs);

  // Fast tier: proportional pursuit of the current setpoint.
  parameter_ += cfg_.fast_gain * (setpoint_ - value);
  parameter_ = std::clamp(parameter_, cfg_.parameter_min, cfg_.parameter_max);

  // Slow tier: replan the setpoint from the recent mean.
  running_sum_ += value;
  if (++ticks_since_plan_ >= cfg_.planning_period) {
    const double recent_mean = running_sum_ / ticks_since_plan_;
    setpoint_ = replan_(recent_mean);
    running_sum_ = 0.0;
    ticks_since_plan_ = 0;
    ++replans_;
  }
  return parameter_;
}

LifSensingPolicy::LifSensingPolicy(double leak, double threshold,
                                   double input_gain)
    : leak_(leak), threshold_(threshold), gain_(input_gain) {
  S2A_CHECK(leak >= 0.0 && leak < 1.0);
  S2A_CHECK(threshold > 0.0 && input_gain > 0.0);
}

bool LifSensingPolicy::should_sense(double, const Observation* last, Rng&) {
  if (last == nullptr) return true;  // bootstrap

  double activity = 0.0;
  for (double v : last->data) activity += std::abs(v);
  if (!last->data.empty()) activity /= static_cast<double>(last->data.size());

  membrane_ = leak_ * membrane_ + gain_ * activity;
  if (membrane_ >= threshold_) {
    membrane_ -= threshold_;  // reset by subtraction
    ++spikes_;
    return true;
  }
  return false;
}

void ConfidenceGatedActuator::set_confidence(double c) {
  S2A_CHECK(c >= 0.0 && c <= 1.0);
  confidence_ = c;
}

void ConfidenceGatedActuator::actuate(const Action& action, Rng& rng) {
  Action gated = action;
  for (double& v : gated.data) v *= confidence_;
  inner_.actuate(gated, rng);
}

}  // namespace s2a::core
