// Pipelined tick engine: sense(t+1) overlaps commit(t) (Sec. II's
// latency argument — end-to-end reaction time, not any single stage,
// bounds autonomy; so sensing latency and processing latency should
// hide each other instead of adding).
//
// Execution model (built on SensingActionLoop's staged API, loop.hpp):
//
//     producer (pool worker)          consumer (calling thread)
//     ──────────────────────          ─────────────────────────
//     sense_stage(t)   ──┐
//     sense_stage(t+1)   ├─▶ bounded SpscQueue ─▶ commit_tick(t)
//     sense_stage(t+2) ──┘      (depth = queue_depth)   commit_tick(t+1)
//
// The producer runs the sense chain (policy → sensor retries → trust
// monitor) against its own simulated clock and its own copy of the
// latest trusted observation; the consumer runs the commit chain
// (process → validate → actuate → state machine) on the caller's
// thread. The queue bound is the pipeline depth: the sense chain can
// run at most `queue_depth` ticks ahead.
//
// Determinism: the two chains use two *independent* RNG streams
// (sense_rng / commit_rng), each consumed in per-stage serial order, so
// pipelined and synchronous execution of the same streams produce
// bit-identical LoopMetrics, loop state, and observation/action history.
// The only divergence is unobservable: after a SAFE_STOP latch the
// producer may have sensed a few ticks speculatively — commit_tick
// discards those outcomes wholesale, and since SAFE_STOP is permanent
// neither mode ever senses again, so the extra sense_rng draws (and
// extra calls into the policy / sensor / trust monitor) never influence
// any committed result.
//
// Error semantics match the synchronous path: a non-SensorFault
// exception escaping the sense chain at tick t is rethrown on the
// calling thread after the ticks before t have committed; an exception
// from the commit chain propagates immediately (the producer is stopped
// and joined first). Exception: a sense-chain error raised only
// speculatively after SAFE_STOP latched is swallowed, because the
// synchronous path would never have executed that sense at all.
#pragma once

#include <cstddef>
#include <cstdint>

#include "core/loop.hpp"

namespace s2a::core {

enum class PipelineMode {
  /// Pipeline when it can help: pool has a spare worker, we are not
  /// already on a pool thread, and there is more than one tick.
  /// Otherwise run synchronously. This is the default.
  kAuto = 0,
  /// Always the in-order reference path (identical to loop.run()).
  kSynchronous,
  /// Always overlap, falling back to synchronous only when the pool has
  /// no spare worker to run the sense chain on.
  kPipelined,
};

struct PipelineConfig {
  PipelineMode mode = PipelineMode::kAuto;
  /// Stage-queue capacity = how many ticks the sense chain may run
  /// ahead of the commit chain (also bounds post-SAFE_STOP speculation).
  std::size_t queue_depth = 4;
};

struct PipelineStats {
  bool pipelined = false;  ///< did this run actually overlap stages
  long produced = 0;       ///< sense outcomes produced
  long committed = 0;      ///< ticks committed (== requested ticks)
  long discarded = 0;      ///< speculative outcomes never committed
};

/// Drives one SensingActionLoop with the pipelined (or synchronous)
/// engine. Owns nothing; the loop outlives the runner.
class PipelinedRunner {
 public:
  explicit PipelinedRunner(SensingActionLoop& loop, PipelineConfig cfg = {});

  /// Runs `ticks` ticks. The two streams must be independent (e.g. two
  /// Rng::spawn() children of one root); the sense chain consumes only
  /// sense_rng and the commit chain only commit_rng, in tick order, so
  /// results are bit-exact across modes and thread counts.
  PipelineStats run(int ticks, Rng& sense_rng, Rng& commit_rng);

  /// Convenience: derives the two streams from one seed
  /// (root.spawn() twice, sense stream first).
  PipelineStats run(int ticks, std::uint64_t seed);

 private:
  PipelineStats run_synchronous(int ticks, Rng& sense_rng, Rng& commit_rng);
  PipelineStats run_pipelined(int ticks, Rng& sense_rng, Rng& commit_rng);

  SensingActionLoop& loop_;
  PipelineConfig cfg_;
};

}  // namespace s2a::core
