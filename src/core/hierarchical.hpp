// Hierarchical sensing-action control (Sec. I–II: "low-level actions —
// such as adjusting sensor thresholds — complement higher-level planning
// decisions, enabling efficient distribution of computational effort").
//
// Two tiers over one loop:
//  * The fast tier runs every tick: a proportional rule adjusts a sensor
//    parameter (gain/threshold) to hold a setpoint on a cheap statistic
//    of the observation.
//  * The slow tier runs every `planning_period` ticks: it re-plans the
//    setpoint itself from a longer-horizon summary (the "planning"
//    decision), so expensive reasoning is amortized.
//
// Also here: LifSensingPolicy — the neuromorphic unification of Sec. VI
// applied to the loop's sensing decision: observation activity charges a
// LIF membrane and the loop *senses when the neuron spikes*, so the
// sampling rate is event-driven rather than clocked.
#pragma once

#include <functional>

#include "core/loop.hpp"

namespace s2a::core {

struct HierarchicalControllerConfig {
  double fast_gain = 0.2;      ///< proportional step of the fast tier
  int planning_period = 20;    ///< ticks between slow-tier replans
  double initial_setpoint = 1.0;
  double parameter_min = 0.0, parameter_max = 10.0;
};

/// Wraps the two tiers around a scalar sensor parameter. The embedding
/// application chooses what the parameter *is* (a DVS threshold, a LiDAR
/// power budget, an AGC gain) by reading parameter() each tick.
class HierarchicalController {
 public:
  /// `summarize` maps an observation to the scalar the fast tier tracks;
  /// `replan` maps the recent mean of that scalar to a new setpoint.
  HierarchicalController(HierarchicalControllerConfig config,
                         std::function<double(const Observation&)> summarize,
                         std::function<double(double)> replan);

  /// One tick: fast proportional update every call, slow replan every
  /// `planning_period` calls. Returns the updated parameter.
  double update(const Observation& obs);

  double parameter() const { return parameter_; }
  double setpoint() const { return setpoint_; }
  long replans() const { return replans_; }

 private:
  HierarchicalControllerConfig cfg_;
  std::function<double(const Observation&)> summarize_;
  std::function<double(double)> replan_;
  double parameter_;
  double setpoint_;
  double running_sum_ = 0.0;
  int ticks_since_plan_ = 0;
  long replans_ = 0;
};

/// Event-driven sensing decision: a single LIF neuron integrates the
/// mean absolute observation value; the loop senses on its spikes.
/// Idle signals let the membrane leak to rest (few samples); busy signals
/// charge it every tick (sampling tracks activity) — the spike-based
/// sensing-rate adaptation neuromorphic loops get for free (Sec. VI).
class LifSensingPolicy : public SensingPolicy {
 public:
  LifSensingPolicy(double leak = 0.8, double threshold = 1.0,
                   double input_gain = 0.5);

  bool should_sense(double now, const Observation* last, Rng& rng) override;

  double membrane() const { return membrane_; }
  long spikes() const { return spikes_; }

 private:
  double leak_, threshold_, gain_;
  double membrane_ = 0.0;
  long spikes_ = 0;
};

/// Confidence-gated actuation (Sec. V future work: "uncertainty-aware
/// control mechanisms can modulate actions based on confidence levels"):
/// wraps an actuator and scales action magnitudes by a confidence in
/// [0, 1] supplied per tick (e.g. 1 − normalized likelihood regret).
class ConfidenceGatedActuator : public Actuator {
 public:
  explicit ConfidenceGatedActuator(Actuator& inner) : inner_(inner) {}

  void set_confidence(double c);
  double confidence() const { return confidence_; }

  void actuate(const Action& action, Rng& rng) override;

 private:
  Actuator& inner_;
  double confidence_ = 1.0;
};

}  // namespace s2a::core
