#include "core/multi_agent.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace s2a::core {

bool SensingAgent::can_observe(const Vec3& target) const {
  return (target - position).norm() <= sensing_range;
}

double SensingAgent::cost(const Vec3& target) const {
  const double d = (target - position).norm();
  // Normalized to the nominal energy at half range.
  const double half = sensing_range / 2.0;
  return energy_per_observation_j * (d * d) / (half * half);
}

CoverageReport independent_sensing(const std::vector<SensingAgent>& agents,
                                   const std::vector<SensingTarget>& targets) {
  CoverageReport r;
  r.targets_total = static_cast<int>(targets.size());
  for (const auto& t : targets) {
    int observers = 0;
    for (const auto& a : agents) {
      if (!a.can_observe(t.position)) continue;
      ++observers;
      ++r.observations;
      r.energy_j += a.cost(t.position);
    }
    if (observers >= t.required_observers) ++r.targets_covered;
    r.redundant_observations += std::max(0, observers - t.required_observers);
  }
  return r;
}

CoverageReport coordinated_sensing(const std::vector<SensingAgent>& agents,
                                   const std::vector<SensingTarget>& targets) {
  CoverageReport r;
  r.targets_total = static_cast<int>(targets.size());
  for (const auto& t : targets) {
    // Rank able agents by cost; take the cheapest `required_observers`.
    std::vector<std::pair<double, std::size_t>> able;
    for (std::size_t i = 0; i < agents.size(); ++i)
      if (agents[i].can_observe(t.position))
        able.push_back({agents[i].cost(t.position), i});
    std::sort(able.begin(), able.end());

    const int take =
        std::min<int>(t.required_observers, static_cast<int>(able.size()));
    for (int k = 0; k < take; ++k) {
      r.energy_j += able[static_cast<std::size_t>(k)].first;
      ++r.observations;
    }
    if (take >= t.required_observers) ++r.targets_covered;
  }
  return r;
}

std::vector<SensingAgent> make_agent_fleet(int agents, double arena,
                                           double range, Rng& rng) {
  S2A_CHECK(agents > 0 && arena > 0.0 && range > 0.0);
  std::vector<SensingAgent> fleet;
  for (int i = 0; i < agents; ++i) {
    SensingAgent a;
    a.position = {rng.uniform(-arena, arena), rng.uniform(-arena, arena), 10.0};
    a.sensing_range = range;
    fleet.push_back(a);
  }
  return fleet;
}

std::vector<SensingTarget> make_target_field(int targets, double arena,
                                             Rng& rng) {
  S2A_CHECK(targets > 0 && arena > 0.0);
  std::vector<SensingTarget> field;
  for (int i = 0; i < targets; ++i) {
    SensingTarget t;
    t.position = {rng.uniform(-arena, arena), rng.uniform(-arena, arena), 0.0};
    t.required_observers = rng.bernoulli(0.2) ? 2 : 1;
    field.push_back(t);
  }
  return field;
}

}  // namespace s2a::core
