#include "core/batched_fleet.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "obs/obs.hpp"
#include "util/check.hpp"
#include "util/thread_pool.hpp"

namespace s2a::core {

namespace {

double percentile(std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

}  // namespace

BatchedFleet::BatchedFleet(BatchProcessor& shared, BatchedFleetConfig cfg)
    : shared_(shared), cfg_(cfg), admission_(cfg.admission) {
  S2A_CHECK(cfg_.gather >= 1);
}

std::size_t BatchedFleet::add(SensingActionLoop& loop, BatchSlot& slot,
                              FleetLoopConfig cfg, std::uint64_t seed) {
  S2A_CHECK(cfg.ticks >= 0);
  S2A_CHECK(cfg.deadline_s > 0.0);
  S2A_CHECK_MSG(&slot.shared() == &shared_,
                "BatchSlot is bound to a different BatchProcessor");
  members_.emplace_back(&loop, &slot, cfg, seed);
  return members_.size() - 1;
}

AdmissionResult BatchedFleet::try_add(SensingActionLoop& loop, BatchSlot& slot,
                                      FleetLoopConfig cfg,
                                      std::uint64_t seed) {
  AdmissionResult r;
  r.pressure = admission_.pressure();
  r.decision = admission_.decide();
  if (r.decision == AdmissionDecision::kRejected) return r;
  if (r.decision == AdmissionDecision::kDegraded)
    cfg.deadline_s *= admission_.config().degrade_factor;  // +inf stays +inf
  r.index = add(loop, slot, cfg, seed);
  return r;
}

FleetStats BatchedFleet::run() {
  using Clock = std::chrono::steady_clock;
  const Clock::time_point t0 = Clock::now();
  const auto elapsed = [t0] {
    return std::chrono::duration<double>(Clock::now() - t0).count();
  };

  FleetStats stats;
  stats.loops.resize(members_.size());
  batched_forwards_ = 0;
  batched_members_ = 0;

  // Same EDF key as core::Fleet: (next deadline, executed ticks, id),
  // degenerating to round-robin at +inf deadlines — so with infinite
  // deadlines the group composition of every dispatch is a pure
  // function of (member count, gather), independent of thread count.
  struct Entry {
    double deadline;
    long executed;
    std::size_t id;
  };
  const auto later = [](const Entry& a, const Entry& b) {
    if (a.deadline != b.deadline) return a.deadline > b.deadline;
    if (a.executed != b.executed) return a.executed > b.executed;
    return a.id > b.id;
  };

  std::vector<Entry> ready;
  ready.reserve(members_.size());
  for (std::size_t i = 0; i < members_.size(); ++i) {
    Member& m = members_[i];
    m.executed = 0;
    m.shed = 0;
    m.deadline_misses = 0;
    m.remaining = m.cfg.ticks;
    m.tick_ms.clear();
    m.next_deadline = m.cfg.deadline_s;  // +inf stays +inf
    if (m.remaining > 0) ready.push_back({m.next_deadline, 0, i});
  }
  std::make_heap(ready.begin(), ready.end(), later);

  util::ThreadPool& pool = util::global_pool();
  const std::size_t gather = static_cast<std::size_t>(cfg_.gather);
  long dispatches = 0;

  std::vector<std::size_t> group;
  group.reserve(gather);
  std::vector<SenseOutcome> outcomes(gather);
  std::vector<const Observation*> inputs;
  inputs.reserve(gather);
  std::vector<std::size_t> staged;  // group indices fed to the fused call
  staged.reserve(gather);

  while (!ready.empty()) {
    // Pop a dispatch group, shedding the hopelessly late at pop time
    // exactly as Fleet does.
    group.clear();
    const double pop_s = elapsed();
    while (group.size() < gather && !ready.empty()) {
      std::pop_heap(ready.begin(), ready.end(), later);
      const Entry e = ready.back();
      ready.pop_back();
      Member& m = members_[e.id];
      if (std::isfinite(m.cfg.deadline_s) && m.cfg.shed_slack > 0.0 &&
          pop_s - m.next_deadline > m.cfg.shed_slack * m.cfg.deadline_s) {
        m.shed += m.remaining;
        S2A_COUNTER_ADD("fleet.shed_ticks", m.remaining);
        admission_.record_shed(m.remaining);
        m.remaining = 0;
        continue;
      }
      group.push_back(e.id);
    }
    if (group.empty()) continue;
    ++dispatches;
    S2A_GAUGE_SET("fleet.ready_queue_depth", static_cast<double>(ready.size()));
    S2A_TRACE_SCOPE_CAT("fleet.batch_dispatch", "core");
    const std::size_t gn = group.size();
    const double start_s = elapsed();

    // Phase 1: sense stages in parallel. Disjoint writes: member i's
    // loop, Rng, and outcomes[i] are touched by exactly one task.
    pool.parallel_for(0, gn, 1, [&](std::size_t i) {
      Member& m = members_[group[i]];
      outcomes[i] = SenseOutcome{};
      if (m.loop->state() != LoopState::kSafeStop)
        outcomes[i] = m.loop->sense_stage(m.loop->now(),
                                          m.loop->last_observation(), m.rng);
    });

    // Phase 2: one fused forward over every member whose commit will
    // process. peek_process_input mirrors commit_tick's gating, so a
    // staged row is consumed by construction (checked below).
    inputs.clear();
    staged.clear();
    for (std::size_t i = 0; i < gn; ++i) {
      Member& m = members_[group[i]];
      if (const Observation* in = m.loop->peek_process_input(outcomes[i])) {
        inputs.push_back(in);
        staged.push_back(i);
      }
    }
    if (!inputs.empty()) {
      S2A_TRACE_SCOPE_CAT("fleet.batched_forward", "core");
      std::vector<std::vector<double>> rows = shared_.process_batch(inputs);
      S2A_CHECK(rows.size() == inputs.size());
      for (std::size_t j = 0; j < staged.size(); ++j)
        members_[group[staged[j]]].slot->stage(std::move(rows[j]));
      ++batched_forwards_;
      batched_members_ += static_cast<long>(inputs.size());
      S2A_COUNTER_ADD("fleet.batched_forwards", 1);
      S2A_COUNTER_ADD("fleet.batched_members", inputs.size());
    }

    // Phase 3: commits, serial in group order. All loop state, the
    // degradation machine, fallbacks, and actuation run here unchanged.
    long bad = 0;
    for (std::size_t i = 0; i < gn; ++i) {
      Member& m = members_[group[i]];
      const bool timed = std::isfinite(m.cfg.deadline_s);
      m.loop->commit_tick(outcomes[i], m.rng);
      // peek said "will process" iff commit processed: a row staged in
      // phase 2 must have been consumed.
      S2A_CHECK(!m.slot->staged());
      --m.remaining;
      ++m.executed;
      if (cfg_.record_latencies || timed) {
        // A member's tick spans the whole group dispatch: its action
        // cannot issue before the fused forward that computed it.
        const double end_s = elapsed();
        if (cfg_.record_latencies)
          m.tick_ms.push_back((end_s - start_s) * 1e3);
        if (timed) {
          if (end_s > m.next_deadline) {
            ++m.deadline_misses;
            ++bad;
            S2A_COUNTER_ADD("fleet.deadline_misses", 1);
          }
          m.next_deadline += m.cfg.deadline_s;
        }
      }
      if (m.remaining > 0) {
        ready.push_back({m.next_deadline, m.executed, group[i]});
        std::push_heap(ready.begin(), ready.end(), later);
      }
    }
    S2A_COUNTER_ADD("fleet.ticks", gn);
    admission_.record_ticks(static_cast<long>(gn), bad);
  }

  stats.workers = pool.size();
  stats.dispatches = dispatches;
  stats.wall_s = elapsed();
  for (std::size_t i = 0; i < members_.size(); ++i) {
    Member& m = members_[i];
    FleetLoopStats& ls = stats.loops[i];
    ls.requested = m.cfg.ticks;
    ls.executed = m.executed;
    ls.shed = m.shed;
    ls.deadline_misses = m.deadline_misses;
    ls.final_state = m.loop->state();
    if (!m.tick_ms.empty()) {
      std::sort(m.tick_ms.begin(), m.tick_ms.end());
      ls.p50_tick_ms = percentile(m.tick_ms, 0.50);
      ls.p95_tick_ms = percentile(m.tick_ms, 0.95);
      ls.max_tick_ms = m.tick_ms.back();
    }
    stats.executed += ls.executed;
    stats.shed += ls.shed;
    stats.deadline_misses += ls.deadline_misses;
  }
  stats.ticks_per_s =
      stats.wall_s > 0.0 ? static_cast<double>(stats.executed) / stats.wall_s
                         : 0.0;
  return stats;
}

}  // namespace s2a::core
