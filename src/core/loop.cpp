#include "core/loop.hpp"

#include "obs/obs.hpp"
#include "util/check.hpp"
#include "util/finite.hpp"

namespace s2a::core {

const char* fallback_name(FallbackPolicy policy) {
  switch (policy) {
    case FallbackPolicy::kHoldLastAction:
      return "hold_last_action";
    case FallbackPolicy::kZeroAction:
      return "zero_action";
    case FallbackPolicy::kSafeStop:
      return "safe_stop";
  }
  return "?";
}

const char* state_name(LoopState state) {
  switch (state) {
    case LoopState::kNominal:
      return "NOMINAL";
    case LoopState::kDegraded:
      return "DEGRADED";
    case LoopState::kSafeStop:
      return "SAFE_STOP";
  }
  return "?";
}

SensingActionLoop::SensingActionLoop(Sensor& sensor, Processor& processor,
                                     Actuator& actuator, SensingPolicy& policy,
                                     LoopConfig config, TrustMonitor* monitor)
    : sensor_(sensor),
      processor_(processor),
      actuator_(actuator),
      policy_(policy),
      cfg_(config),
      monitor_(monitor) {
  S2A_CHECK(cfg_.dt > 0.0);
  S2A_CHECK(cfg_.sensing_latency >= 0.0 && cfg_.processing_latency >= 0.0);
  const ResilienceConfig& rc = cfg_.resilience;
  S2A_CHECK(rc.max_sense_retries >= 0);
  S2A_CHECK(rc.retry_backoff_s >= 0.0);
  S2A_CHECK(rc.max_staleness_s > 0.0);
  S2A_CHECK(rc.degrade_after >= 0 && rc.safe_stop_after >= 0);
  S2A_CHECK(rc.recover_after >= 1);
}

SenseOutcome SensingActionLoop::sense_stage(double now,
                                            const Observation* last,
                                            Rng& rng) {
  SenseOutcome out;
  if (!policy_.should_sense(now, last, rng)) return out;
  out.attempted = true;

  const ResilienceConfig& rc = cfg_.resilience;
  const int attempts = 1 + rc.max_sense_retries;
  double backoff_s = 0.0;
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      ++out.sense_retries;
      // Linear backoff: the k-th retry waits k * retry_backoff_s. The
      // wait is modeled, not slept — it ages the eventual observation.
      backoff_s += rc.retry_backoff_s * attempt;
    }
    Observation obs;
    try {
      S2A_TRACE_SCOPE_CAT("loop.sense", "core");
      obs = sensor_.sense(now, rng);
    } catch (const SensorFault&) {
      ++out.sensor_faults;
      continue;
    }
    ++out.senses;
    out.sensing_energy_j += obs.energy_j;
    // Acquisition latency: the data describes the world as of now, but it
    // becomes available `sensing_latency` (plus any sensor-reported extra
    // delay and retry backoff) later; model by backdating.
    obs.timestamp =
        now - cfg_.sensing_latency - obs.extra_latency_s - backoff_s;

    // Boundary validation: a payload with NaN/Inf anywhere is quarantined
    // — it never becomes the loop's current observation. Treated like a
    // fault: the remaining retry budget may still yield clean data.
    if (!util::all_finite(obs.data)) {
      ++out.quarantined;
      continue;
    }

    bool trusted = true;
    if (monitor_ != nullptr) {
      S2A_TRACE_SCOPE_CAT("loop.trust_check", "core");
      trusted = monitor_->trusted(obs, rng);
    }
    if (trusted) {
      out.obs = std::move(obs);
      out.ok = true;
      return out;
    }
    ++out.vetoed;
    // A veto is a judgement on well-formed data, not an acquisition
    // failure — retrying the same instant would just re-sample the same
    // distrusted world, so the tick gives up here.
    return out;
  }
  return out;
}

void SensingActionLoop::apply_fallback(Rng& rng) {
  switch (cfg_.resilience.fallback) {
    case FallbackPolicy::kHoldLastAction:
      if (has_action_) {
        ++metrics_.fallback_actions;
        S2A_COUNTER_ADD("loop.fallback_actions", 1);
        S2A_TRACE_SCOPE_CAT("loop.actuate", "core");
        actuator_.actuate(last_action_, rng);
      }
      break;
    case FallbackPolicy::kZeroAction:
      if (has_action_) {
        Action zero;
        zero.data.assign(last_action_.data.size(), 0.0);
        zero.based_on_timestamp = last_action_.based_on_timestamp;
        last_action_ = zero;
        ++metrics_.fallback_actions;
        S2A_COUNTER_ADD("loop.fallback_actions", 1);
        S2A_TRACE_SCOPE_CAT("loop.actuate", "core");
        actuator_.actuate(zero, rng);
      }
      break;
    case FallbackPolicy::kSafeStop:
      enter_safe_stop();
      break;
  }
}

void SensingActionLoop::enter_safe_stop() {
  if (state_ == LoopState::kSafeStop) return;
  state_ = LoopState::kSafeStop;
  ++metrics_.safe_stops;
  S2A_COUNTER_ADD("loop.safe_stops", 1);
}

void SensingActionLoop::update_state_machine(bool bad_tick) {
  const ResilienceConfig& rc = cfg_.resilience;
  if (bad_tick) {
    ++bad_streak_;
    good_streak_ = 0;
  } else {
    ++good_streak_;
    bad_streak_ = 0;
  }
  switch (state_) {
    case LoopState::kNominal:
      if (rc.degrade_after > 0 && bad_streak_ >= rc.degrade_after) {
        state_ = LoopState::kDegraded;
        ++metrics_.degradations;
        S2A_COUNTER_ADD("loop.degradations", 1);
      }
      break;
    case LoopState::kDegraded:
      if (good_streak_ >= rc.recover_after) {
        state_ = LoopState::kNominal;
        ++metrics_.recoveries;
        S2A_COUNTER_ADD("loop.recoveries", 1);
      } else if (rc.safe_stop_after > 0 && bad_streak_ >= rc.safe_stop_after) {
        enter_safe_stop();
      }
      break;
    case LoopState::kSafeStop:
      break;
  }
  if (state_ == LoopState::kDegraded) {
    ++metrics_.degraded_ticks;
    S2A_COUNTER_ADD("loop.degraded_ticks", 1);
    S2A_GAUGE_SET("loop.time_in_degraded_s", metrics_.degraded_ticks * cfg_.dt);
  }
  S2A_GAUGE_SET("loop.state", static_cast<double>(state_));
}

void SensingActionLoop::commit_tick(SenseOutcome& outcome, Rng& rng) {
  ++metrics_.ticks;

  if (state_ == LoopState::kSafeStop) {
    // Latched halt: no sensing, no actuation; only time advances. An
    // outcome produced speculatively by a pipelined engine is discarded
    // wholesale here — none of its deltas apply, exactly as if the tick
    // had never sensed, which is what the synchronous path does.
    ++metrics_.safe_stop_ticks;
    S2A_COUNTER_ADD("loop.safe_stop_ticks", 1);
    now_ += cfg_.dt;
    return;
  }

  // Apply the sense stage's metric deltas and install its observation.
  metrics_.senses += outcome.senses;
  metrics_.sensor_faults += outcome.sensor_faults;
  metrics_.sense_retries += outcome.sense_retries;
  metrics_.quarantined += outcome.quarantined;
  metrics_.vetoed += outcome.vetoed;
  metrics_.sensing_energy_j += outcome.sensing_energy_j;
  S2A_COUNTER_ADD("loop.senses", outcome.senses);
  S2A_COUNTER_ADD("loop.sensor_faults", outcome.sensor_faults);
  S2A_COUNTER_ADD("loop.sense_retries", outcome.sense_retries);
  S2A_COUNTER_ADD("loop.quarantined", outcome.quarantined);
  S2A_COUNTER_ADD("loop.vetoed", outcome.vetoed);
  bool bad_tick = outcome.attempted && !outcome.ok;
  if (outcome.ok) {
    last_obs_ = std::move(outcome.obs);
    has_observation_ = true;
  }

  if (has_observation_) {
    const double act_time = now_ + cfg_.processing_latency;
    const double age = act_time - last_obs_.timestamp;
    if (age > cfg_.resilience.max_staleness_s) {
      // Too stale to act on: substitute per the fallback policy instead
      // of processing year-old data as if it were fresh.
      bad_tick = true;
      ++metrics_.staleness_violations;
      S2A_COUNTER_ADD("loop.staleness_violations", 1);
      apply_fallback(rng);
    } else {
      Action action;
      {
        S2A_TRACE_SCOPE_CAT("loop.process", "core");
        action.data = processor_.process_at(now_, last_obs_, rng);
      }
      metrics_.processing_energy_j += processor_.energy_per_call_j();
      action.based_on_timestamp = last_obs_.timestamp;

      if (!util::all_finite(action.data)) {
        // Actuation boundary: a non-finite command never reaches the
        // plant. Blocked, counted, and substituted like a stale tick.
        bad_tick = true;
        ++metrics_.quarantined_actions;
        S2A_COUNTER_ADD("loop.quarantined_actions", 1);
        apply_fallback(rng);
      } else {
        metrics_.total_staleness_s += age;
        S2A_HISTOGRAM_RECORD("loop.staleness_s", age);
        ++metrics_.actions;
        S2A_COUNTER_ADD("loop.actions", 1);
        {
          S2A_TRACE_SCOPE_CAT("loop.actuate", "core");
          actuator_.actuate(action, rng);
        }
        last_action_ = std::move(action);
        has_action_ = true;
      }
    }
  }

  update_state_machine(bad_tick);
  now_ += cfg_.dt;
}

const Observation* SensingActionLoop::peek_process_input(
    const SenseOutcome& outcome) const {
  // Every branch below must stay in lockstep with commit_tick: a
  // non-null return promises that commit_tick(outcome, ...) will call
  // processor_.process() on exactly this observation's payload.
  if (state_ == LoopState::kSafeStop) return nullptr;
  const Observation* obs =
      outcome.ok ? &outcome.obs : (has_observation_ ? &last_obs_ : nullptr);
  if (obs == nullptr) return nullptr;
  const double age = (now_ + cfg_.processing_latency) - obs->timestamp;
  if (age > cfg_.resilience.max_staleness_s) return nullptr;
  return obs;
}

void SensingActionLoop::tick(Rng& rng) {
  S2A_TRACE_SCOPE_CAT("loop.tick", "core");
  SenseOutcome outcome;
  if (state_ != LoopState::kSafeStop) {
    outcome =
        sense_stage(now_, has_observation_ ? &last_obs_ : nullptr, rng);
  }
  commit_tick(outcome, rng);
}

void SensingActionLoop::run(int ticks, Rng& rng) {
  S2A_CHECK(ticks >= 0);
  for (int i = 0; i < ticks; ++i) tick(rng);
}

}  // namespace s2a::core
