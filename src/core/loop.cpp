#include "core/loop.hpp"

#include "util/check.hpp"

namespace s2a::core {

SensingActionLoop::SensingActionLoop(Sensor& sensor, Processor& processor,
                                     Actuator& actuator, SensingPolicy& policy,
                                     LoopConfig config, TrustMonitor* monitor)
    : sensor_(sensor),
      processor_(processor),
      actuator_(actuator),
      policy_(policy),
      cfg_(config),
      monitor_(monitor) {
  S2A_CHECK(cfg_.dt > 0.0);
  S2A_CHECK(cfg_.sensing_latency >= 0.0 && cfg_.processing_latency >= 0.0);
}

void SensingActionLoop::tick(Rng& rng) {
  ++metrics_.ticks;

  const Observation* current = has_observation_ ? &last_obs_ : nullptr;
  if (policy_.should_sense(now_, current, rng)) {
    Observation obs = sensor_.sense(now_, rng);
    ++metrics_.senses;
    metrics_.sensing_energy_j += obs.energy_j;
    // Acquisition latency: the data describes the world as of now, but it
    // becomes available `sensing_latency` later; model by backdating.
    obs.timestamp = now_ - cfg_.sensing_latency;

    if (monitor_ == nullptr || monitor_->trusted(obs, rng)) {
      last_obs_ = std::move(obs);
      has_observation_ = true;
    } else {
      ++metrics_.vetoed;
    }
  }

  if (has_observation_) {
    Action action;
    action.data = processor_.process(last_obs_, rng);
    metrics_.processing_energy_j += processor_.energy_per_call_j();
    action.based_on_timestamp = last_obs_.timestamp;

    const double act_time = now_ + cfg_.processing_latency;
    metrics_.total_staleness_s += act_time - last_obs_.timestamp;
    ++metrics_.actions;
    actuator_.actuate(action, rng);
  }

  now_ += cfg_.dt;
}

void SensingActionLoop::run(int ticks, Rng& rng) {
  S2A_CHECK(ticks >= 0);
  for (int i = 0; i < ticks; ++i) tick(rng);
}

}  // namespace s2a::core
