#include "core/loop.hpp"

#include "obs/obs.hpp"
#include "util/check.hpp"

namespace s2a::core {

SensingActionLoop::SensingActionLoop(Sensor& sensor, Processor& processor,
                                     Actuator& actuator, SensingPolicy& policy,
                                     LoopConfig config, TrustMonitor* monitor)
    : sensor_(sensor),
      processor_(processor),
      actuator_(actuator),
      policy_(policy),
      cfg_(config),
      monitor_(monitor) {
  S2A_CHECK(cfg_.dt > 0.0);
  S2A_CHECK(cfg_.sensing_latency >= 0.0 && cfg_.processing_latency >= 0.0);
}

void SensingActionLoop::tick(Rng& rng) {
  S2A_TRACE_SCOPE_CAT("loop.tick", "core");
  ++metrics_.ticks;

  const Observation* current = has_observation_ ? &last_obs_ : nullptr;
  if (policy_.should_sense(now_, current, rng)) {
    Observation obs;
    {
      S2A_TRACE_SCOPE_CAT("loop.sense", "core");
      obs = sensor_.sense(now_, rng);
    }
    ++metrics_.senses;
    S2A_COUNTER_ADD("loop.senses", 1);
    metrics_.sensing_energy_j += obs.energy_j;
    // Acquisition latency: the data describes the world as of now, but it
    // becomes available `sensing_latency` later; model by backdating.
    obs.timestamp = now_ - cfg_.sensing_latency;

    bool trusted = true;
    if (monitor_ != nullptr) {
      S2A_TRACE_SCOPE_CAT("loop.trust_check", "core");
      trusted = monitor_->trusted(obs, rng);
    }
    if (trusted) {
      last_obs_ = std::move(obs);
      has_observation_ = true;
    } else {
      ++metrics_.vetoed;
      S2A_COUNTER_ADD("loop.vetoed", 1);
    }
  }

  if (has_observation_) {
    Action action;
    {
      S2A_TRACE_SCOPE_CAT("loop.process", "core");
      action.data = processor_.process(last_obs_, rng);
    }
    metrics_.processing_energy_j += processor_.energy_per_call_j();
    action.based_on_timestamp = last_obs_.timestamp;

    const double act_time = now_ + cfg_.processing_latency;
    metrics_.total_staleness_s += act_time - last_obs_.timestamp;
    S2A_HISTOGRAM_RECORD("loop.staleness_s", act_time - last_obs_.timestamp);
    ++metrics_.actions;
    S2A_COUNTER_ADD("loop.actions", 1);
    {
      S2A_TRACE_SCOPE_CAT("loop.actuate", "core");
      actuator_.actuate(action, rng);
    }
  }

  now_ += cfg_.dt;
}

void SensingActionLoop::run(int ticks, Rng& rng) {
  S2A_CHECK(ticks >= 0);
  for (int i = 0; i < ticks; ++i) tick(rng);
}

}  // namespace s2a::core
