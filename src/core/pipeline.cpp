#include "core/pipeline.hpp"

#include <atomic>
#include <exception>
#include <future>
#include <utility>

#include "obs/obs.hpp"
#include "util/check.hpp"
#include "util/spsc_queue.hpp"
#include "util/thread_pool.hpp"

namespace s2a::core {

PipelinedRunner::PipelinedRunner(SensingActionLoop& loop, PipelineConfig cfg)
    : loop_(loop), cfg_(cfg) {
  S2A_CHECK(cfg_.queue_depth >= 1);
}

PipelineStats PipelinedRunner::run(int ticks, Rng& sense_rng,
                                   Rng& commit_rng) {
  S2A_CHECK(ticks >= 0);
  if (ticks == 0) return {};

  bool pipelined;
  switch (cfg_.mode) {
    case PipelineMode::kSynchronous:
      pipelined = false;
      break;
    case PipelineMode::kPipelined:
      // Still needs a spare worker to carry the sense chain; a
      // single-threaded pool (S2A_THREADS=1) or a nested call from
      // inside a pool task degrades to the in-order path — results are
      // bit-exact either way, only the schedule changes.
      pipelined =
          util::global_pool().size() >= 2 && !util::ThreadPool::on_worker_thread();
      break;
    case PipelineMode::kAuto:
    default:
      pipelined = ticks > 1 && util::global_pool().size() >= 2 &&
                  !util::ThreadPool::on_worker_thread();
      break;
  }
  return pipelined ? run_pipelined(ticks, sense_rng, commit_rng)
                   : run_synchronous(ticks, sense_rng, commit_rng);
}

PipelineStats PipelinedRunner::run(int ticks, std::uint64_t seed) {
  Rng root(seed);
  Rng sense_rng = root.spawn();
  Rng commit_rng = root.spawn();
  return run(ticks, sense_rng, commit_rng);
}

PipelineStats PipelinedRunner::run_synchronous(int ticks, Rng& sense_rng,
                                               Rng& commit_rng) {
  PipelineStats stats;
  for (int t = 0; t < ticks; ++t) {
    SenseOutcome outcome;
    if (loop_.state() != LoopState::kSafeStop) {
      S2A_TRACE_SCOPE_CAT("core.pipeline_stage", "sense");
      outcome = loop_.sense_stage(loop_.now(), loop_.last_observation(),
                                  sense_rng);
      ++stats.produced;
    }
    {
      S2A_TRACE_SCOPE_CAT("core.pipeline_stage", "commit");
      loop_.commit_tick(outcome, commit_rng);
    }
    ++stats.committed;
  }
  return stats;
}

PipelineStats PipelinedRunner::run_pipelined(int ticks, Rng& sense_rng,
                                             Rng& commit_rng) {
  PipelineStats stats;
  stats.pipelined = true;

  util::SpscQueue<SenseOutcome> queue(cfg_.queue_depth);
  std::atomic<bool> stop{false};
  std::atomic<long> produced{0};
  std::exception_ptr sense_error;  // written by producer before it exits
  std::promise<void> done;
  std::future<void> joined = done.get_future();

  // The producer runs the whole sense chain against a local simulated
  // clock and a local copy of the newest trusted observation. That copy
  // tracks what the loop's own last_observation() will be when the
  // corresponding tick commits — commit_tick installs exactly the ok
  // outcomes, in order — so the sense chain never touches loop state
  // shared with the committing thread.
  Rng* sense_rng_p = &sense_rng;
  SensingActionLoop* loop = &loop_;
  util::global_pool().post([&queue, &stop, &produced, &sense_error, &done,
                            sense_rng_p, loop, ticks] {
    try {
      double now = loop->now();
      const double dt = loop->config().dt;
      Observation last;
      bool has_last = false;
      if (const Observation* obs = loop->last_observation()) {
        last = *obs;
        has_last = true;
      }
      for (int t = 0; t < ticks && !stop.load(std::memory_order_relaxed);
           ++t) {
        SenseOutcome out;
        {
          S2A_TRACE_SCOPE_CAT("core.pipeline_stage", "sense");
          out = loop->sense_stage(now, has_last ? &last : nullptr,
                                  *sense_rng_p);
        }
        if (out.ok) {
          last = out.obs;  // copy: the outcome still travels the queue
          has_last = true;
        }
        now += dt;
        if (!queue.push(std::move(out))) break;  // consumer closed: done
        produced.fetch_add(1, std::memory_order_relaxed);
      }
    } catch (...) {
      sense_error = std::current_exception();
    }
    queue.close();  // consumer drains what was queued, then pop() fails
    done.set_value();
  });

  // The consumer (this thread) runs the commit chain in tick order.
  bool starved = false;  // needed an outcome the producer never delivered
  long popped = 0;
  try {
    for (int t = 0; t < ticks; ++t) {
      if (loop_.state() == LoopState::kSafeStop) {
        // Latched: the synchronous path stops sensing here, so anything
        // still in flight is speculation. Stop the producer and commit
        // the remaining ticks empty (commit_tick discards the outcome
        // in SAFE_STOP anyway; it only advances time).
        stop.store(true, std::memory_order_relaxed);
        queue.close();
        SenseOutcome empty;
        loop_.commit_tick(empty, commit_rng);
        ++stats.committed;
        continue;
      }
      SenseOutcome out;
      if (!queue.pop(out)) {
        starved = true;  // producer died before delivering tick t
        break;
      }
      ++popped;
      S2A_GAUGE_SET("core.pipeline.queue_depth",
                    static_cast<double>(queue.depth()));
      {
        S2A_TRACE_SCOPE_CAT("core.pipeline_stage", "commit");
        loop_.commit_tick(out, commit_rng);
      }
      ++stats.committed;
    }
  } catch (...) {
    // Commit-chain error: quiesce the producer, then propagate.
    stop.store(true, std::memory_order_relaxed);
    queue.close();
    joined.wait();
    throw;
  }

  stop.store(true, std::memory_order_relaxed);
  queue.close();
  joined.wait();

  stats.produced = produced.load(std::memory_order_relaxed);
  stats.discarded = stats.produced - popped;

  if (starved && sense_error != nullptr) {
    std::rethrow_exception(sense_error);
  }
  // A sense_error raised only speculatively (after SAFE_STOP latched)
  // is dropped: the synchronous path never executes that sense.
  return stats;
}

}  // namespace s2a::core
