// Federated, multi-agent sensing-action coordination (Sec. VII): agents
// share coverage information and divide sensing tasks so that each target
// is observed by the cheapest able agent, instead of every agent sensing
// everything in range. The coordinated/independent comparison quantifies
// the redundancy and energy the paper's drone-swarm example eliminates —
// the conclusions section cites a threefold energy reduction.
#pragma once

#include <vector>

#include "util/geometry.hpp"
#include "util/rng.hpp"

namespace s2a::core {

struct SensingAgent {
  Vec3 position;
  double sensing_range = 30.0;
  /// Energy to observe one target; scales with squared distance (transmit
  /// power) in cost().
  double energy_per_observation_j = 1e-3;

  bool can_observe(const Vec3& target) const;
  double cost(const Vec3& target) const;
};

struct SensingTarget {
  Vec3 position;
  /// Targets needing multiple observers (e.g. triangulation) set this >1.
  int required_observers = 1;
};

struct CoverageReport {
  int targets_total = 0;
  int targets_covered = 0;        ///< met their required observer count
  int observations = 0;           ///< total (agent, target) pairs sensed
  double energy_j = 0.0;
  /// Observations beyond each target's requirement.
  int redundant_observations = 0;

  double coverage() const {
    return targets_total > 0
               ? static_cast<double>(targets_covered) / targets_total
               : 1.0;
  }
};

/// Every agent independently senses everything in range (no sharing) —
/// the uncoordinated baseline.
CoverageReport independent_sensing(const std::vector<SensingAgent>& agents,
                                   const std::vector<SensingTarget>& targets);

/// Greedy coordinated assignment: targets are assigned to their cheapest
/// able agents until each target's requirement is met. Shared coverage
/// maps mean zero redundant observations by construction.
CoverageReport coordinated_sensing(const std::vector<SensingAgent>& agents,
                                   const std::vector<SensingTarget>& targets);

/// Random fleet and target field over a square arena (benchmark helper).
std::vector<SensingAgent> make_agent_fleet(int agents, double arena,
                                           double range, Rng& rng);
std::vector<SensingTarget> make_target_field(int targets, double arena,
                                             Rng& rng);

}  // namespace s2a::core
