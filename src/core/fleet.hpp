// Fleet scheduler: hundreds-to-thousands of sensing-to-action loops
// multiplexed over the shared util::ThreadPool — the "millions of
// users" serving engine the ROADMAP calls for. Each admitted loop gets
// a per-tick deadline budget; dispatch is EDF (earliest next deadline
// first) from a ready heap, and admission control sheds the hopelessly
// overdue rather than letting one straggler stall the fleet.
//
// Model:
//  * add() admits a loop with a tick count, an optional per-tick
//    deadline, and a seed — each member owns an independent Rng stream.
//  * run() spins min(pool size, members, max_workers) workers. Each
//    worker pops the earliest-deadline member, executes up to `batch`
//    ticks of it serially (a member is owned by exactly one worker at a
//    time — the per-loop NOMINAL→DEGRADED→SAFE_STOP machine and all
//    loop state stay single-threaded), then requeues it.
//  * A member's k-th tick is due at admission + k * deadline_s (a rate
//    contract, not a per-dispatch timer). Ticks finishing late count as
//    deadline misses; a member that falls more than
//    shed_slack * deadline_s behind has its remaining ticks shed.
//
// Determinism: with the default deadline_s = +inf (pure throughput
// mode) nothing wall-clock-dependent can fire, members are keyed by
// (executed ticks, id) — round-robin fairness — and every per-loop
// result is bit-exact for a given seed across any thread count, batch
// size, or dispatch interleaving, because each loop's ticks run
// serially against its own Rng. Finite deadlines buy load shedding at
// the price of wall-clock dependence; per-loop metrics of *unshed*
// loops remain exact, shed counts do not (docs/RESILIENCE.md).
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "core/loop.hpp"

namespace s2a::core {

/// Per-member admission contract.
struct FleetLoopConfig {
  int ticks = 0;  ///< ticks to execute
  /// Wall-clock budget per tick; the k-th tick is due at admission
  /// + k * deadline_s. +inf (default) disables misses and shedding.
  double deadline_s = std::numeric_limits<double>::infinity();
  /// Shed a member once it is more than shed_slack * deadline_s behind
  /// its schedule (<= 0 disables shedding; misses still count).
  double shed_slack = 8.0;
};

/// Per-member outcome, in add() order.
struct FleetLoopStats {
  long requested = 0;
  long executed = 0;
  long shed = 0;  ///< requested ticks abandoned by admission control
  long deadline_misses = 0;
  double p50_tick_ms = 0.0;
  double p95_tick_ms = 0.0;
  double max_tick_ms = 0.0;
  LoopState final_state = LoopState::kNominal;
};

struct FleetStats {
  long executed = 0;
  long shed = 0;
  long deadline_misses = 0;
  long dispatches = 0;  ///< ready-heap pops (batches, not ticks)
  int workers = 0;
  double wall_s = 0.0;
  double ticks_per_s = 0.0;  ///< aggregate executed ticks / wall_s
  std::vector<FleetLoopStats> loops;
};

struct FleetConfig {
  /// Max ticks one dispatch executes before the member is requeued.
  /// Larger batches amortize heap traffic; smaller ones interleave
  /// finer under contention.
  int batch = 4;
  /// Cap on concurrent workers (0 = pool size).
  int max_workers = 0;
  /// Record per-tick latencies for the p50/p95/max stats. Turn off for
  /// very long runs to skip the per-tick timestamping.
  bool record_latencies = true;
};

/// Schedules many independently-seeded loops. Owns the per-member Rng
/// streams but not the loops; every loop must outlive run().
class Fleet {
 public:
  explicit Fleet(FleetConfig cfg = {});

  /// Admits a loop. Returns the member index (add() order, also the
  /// index into FleetStats::loops).
  std::size_t add(SensingActionLoop& loop, FleetLoopConfig cfg,
                  std::uint64_t seed);

  std::size_t size() const { return members_.size(); }

  /// Executes every admitted member to completion (or shedding).
  /// Callable repeatedly — each call re-arms the remaining tick counts
  /// from the configs and continues the loops from their current state.
  FleetStats run();

 private:
  struct Member {
    SensingActionLoop* loop = nullptr;
    FleetLoopConfig cfg;
    Rng rng;
    long executed = 0;  ///< ticks executed this run()
    long shed = 0;
    long deadline_misses = 0;
    long remaining = 0;
    double next_deadline = std::numeric_limits<double>::infinity();
    std::vector<double> tick_ms;

    Member(SensingActionLoop* l, FleetLoopConfig c, std::uint64_t seed)
        : loop(l), cfg(c), rng(seed) {}
  };

  FleetConfig cfg_;
  std::vector<Member> members_;
};

}  // namespace s2a::core
