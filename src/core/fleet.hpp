// Fleet scheduler: hundreds-to-thousands of sensing-to-action loops
// multiplexed over the shared util::ThreadPool — the "millions of
// users" serving engine the ROADMAP calls for. Each admitted loop gets
// a per-tick deadline budget; dispatch is EDF (earliest next deadline
// first) from a ready heap, and admission control sheds the hopelessly
// overdue rather than letting one straggler stall the fleet.
//
// Model:
//  * add() admits a loop with a tick count, an optional per-tick
//    deadline, and a seed — each member owns an independent Rng stream.
//  * run() spins min(pool size, members, max_workers) workers. Each
//    worker pops the earliest-deadline member, executes up to `batch`
//    ticks of it serially (a member is owned by exactly one worker at a
//    time — the per-loop NOMINAL→DEGRADED→SAFE_STOP machine and all
//    loop state stay single-threaded), then requeues it.
//  * A member's k-th tick is due at admission + k * deadline_s (a rate
//    contract, not a per-dispatch timer). Ticks finishing late count as
//    deadline misses; a member that falls more than
//    shed_slack * deadline_s behind has its remaining ticks shed.
//
// Determinism: with the default deadline_s = +inf (pure throughput
// mode) nothing wall-clock-dependent can fire, members are keyed by
// (executed ticks, id) — round-robin fairness — and every per-loop
// result is bit-exact for a given seed across any thread count, batch
// size, or dispatch interleaving, because each loop's ticks run
// serially against its own Rng. Finite deadlines buy load shedding at
// the price of wall-clock dependence; per-loop metrics of *unshed*
// loops remain exact, shed counts do not (docs/RESILIENCE.md).
#pragma once

#include <cstdint>
#include <limits>
#include <mutex>
#include <vector>

#include "core/loop.hpp"

namespace s2a::core {

/// Per-member admission contract.
struct FleetLoopConfig {
  int ticks = 0;  ///< ticks to execute
  /// Wall-clock budget per tick; the k-th tick is due at admission
  /// + k * deadline_s. +inf (default) disables misses and shedding.
  double deadline_s = std::numeric_limits<double>::infinity();
  /// Shed a member once it is more than shed_slack * deadline_s behind
  /// its schedule (<= 0 disables shedding; misses still count).
  double shed_slack = 8.0;
};

/// Per-member outcome, in add() order.
struct FleetLoopStats {
  long requested = 0;
  long executed = 0;
  long shed = 0;  ///< requested ticks abandoned by admission control
  long deadline_misses = 0;
  double p50_tick_ms = 0.0;
  double p95_tick_ms = 0.0;
  double max_tick_ms = 0.0;
  LoopState final_state = LoopState::kNominal;
};

struct FleetStats {
  long executed = 0;
  long shed = 0;
  long deadline_misses = 0;
  long dispatches = 0;  ///< ready-heap pops (batches, not ticks)
  int workers = 0;
  double wall_s = 0.0;
  double ticks_per_s = 0.0;  ///< aggregate executed ticks / wall_s
  std::vector<FleetLoopStats> loops;
};

// --- Admission control -------------------------------------------------
//
// Shedding (above) is reactive: a member already admitted falls behind
// and its remaining work is dropped. Admission control is the proactive
// counterpart (CoSense-LLM's cost-aware framing): track the fleet's
// rolling deadline-miss/shed rate and stop *taking* work the fleet
// cannot serve — reject a new member outright, or admit it on a
// degraded (reduced-rate) contract — before its deadlines ever slip.

/// Knobs for FleetAdmission. Disabled by default: try_add() == add().
struct AdmissionConfig {
  bool enabled = false;
  /// Rolling window of recent tick outcomes (miss/shed = bad) that
  /// defines the pressure signal. Must cover at least a dispatch wave;
  /// a window much smaller than the healthy tick rate forgets overload
  /// as soon as the stragglers shed.
  int window = 4096;
  /// No decisions until this many outcomes are recorded (cold start).
  int min_samples = 64;
  /// pressure >= this admits new members on a degraded contract.
  double degrade_threshold = 0.05;
  /// pressure >= this rejects new members outright.
  double reject_threshold = 0.15;
  /// Degraded contract: the member's deadline_s is multiplied by this
  /// (a reduced tick rate; +inf deadlines are unaffected).
  double degrade_factor = 4.0;
};

enum class AdmissionDecision { kAdmitted = 0, kDegraded, kRejected };
const char* admission_name(AdmissionDecision decision);

/// What try_add() did: the decision, the member index (valid unless
/// rejected), and the pressure that drove it.
struct AdmissionResult {
  AdmissionDecision decision = AdmissionDecision::kAdmitted;
  std::size_t index = 0;
  double pressure = 0.0;
};

/// Rolling deadline-miss/shed-rate tracker shared by the fleet engines.
/// Thread-safe: workers record tick outcomes concurrently; decide() is
/// called from the admitting thread. Exposed via the fleet.admission.*
/// counters and the fleet.admission.pressure gauge in s2a::obs.
class FleetAdmission {
 public:
  explicit FleetAdmission(AdmissionConfig cfg = {});

  /// Records `total` executed ticks of which `bad` missed their
  /// deadline. No-op when disabled.
  void record_ticks(long total, long bad);
  /// Records shed ticks — work the fleet accepted and then abandoned —
  /// as bad outcomes. No-op when disabled.
  void record_shed(long ticks);

  /// Bad fraction of the rolling window (0 while below min_samples).
  double pressure() const;
  /// Decision for one prospective member at current pressure; bumps the
  /// admitted/degraded/rejected counters.
  AdmissionDecision decide();

  long admitted() const;
  long degraded() const;
  long rejected() const;
  const AdmissionConfig& config() const { return cfg_; }

 private:
  void push_locked(bool bad);
  double pressure_locked() const;

  AdmissionConfig cfg_;
  mutable std::mutex mu_;
  std::vector<unsigned char> ring_;
  std::size_t head_ = 0;
  std::size_t filled_ = 0;
  long bad_ = 0;
  long admitted_ = 0;
  long degraded_ = 0;
  long rejected_ = 0;
};

struct FleetConfig {
  /// Max ticks one dispatch executes before the member is requeued.
  /// Larger batches amortize heap traffic; smaller ones interleave
  /// finer under contention.
  int batch = 4;
  /// Cap on concurrent workers (0 = pool size).
  int max_workers = 0;
  /// Record per-tick latencies for the p50/p95/max stats. Turn off for
  /// very long runs to skip the per-tick timestamping.
  bool record_latencies = true;
  /// Admission control (disabled by default; see FleetAdmission).
  AdmissionConfig admission{};
};

/// Schedules many independently-seeded loops. Owns the per-member Rng
/// streams but not the loops; every loop must outlive run().
class Fleet {
 public:
  explicit Fleet(FleetConfig cfg = {});

  /// Admits a loop unconditionally. Returns the member index (add()
  /// order, also the index into FleetStats::loops).
  std::size_t add(SensingActionLoop& loop, FleetLoopConfig cfg,
                  std::uint64_t seed);

  /// Admission-controlled add: consults the rolling miss/shed pressure
  /// and either admits, admits on a degraded (deadline_s scaled by
  /// AdmissionConfig::degrade_factor) contract, or rejects — in which
  /// case the loop is NOT added. With admission disabled behaves like
  /// add().
  AdmissionResult try_add(SensingActionLoop& loop, FleetLoopConfig cfg,
                          std::uint64_t seed);

  const FleetAdmission& admission() const { return admission_; }

  std::size_t size() const { return members_.size(); }

  /// Executes every admitted member to completion (or shedding).
  /// Callable repeatedly — each call re-arms the remaining tick counts
  /// from the configs and continues the loops from their current state.
  FleetStats run();

 private:
  struct Member {
    SensingActionLoop* loop = nullptr;
    FleetLoopConfig cfg;
    Rng rng;
    long executed = 0;  ///< ticks executed this run()
    long shed = 0;
    long deadline_misses = 0;
    long remaining = 0;
    double next_deadline = std::numeric_limits<double>::infinity();
    std::vector<double> tick_ms;

    Member(SensingActionLoop* l, FleetLoopConfig c, std::uint64_t seed)
        : loop(l), cfg(c), rng(seed) {}
  };

  FleetConfig cfg_;
  std::vector<Member> members_;
  FleetAdmission admission_;
};

}  // namespace s2a::core
