// Sensing policies (Sec. I–II): when to spend a sample.
//
// PeriodicPolicy is the static baseline. AdaptiveActivityPolicy implements
// the paper's pollutant-surge example: track the innovation (change)
// between consecutive observations with an EMA; sense at a low base rate
// in stable periods and ramp toward every-tick sensing when activity
// spikes. ActionAwarePolicy is an action-to-sensing hook (Sec. IV): the
// controller's recent action magnitude drives the sensing rate — large
// corrective actions mean the plant is off-nominal and observability
// should rise.
#pragma once

#include "core/loop.hpp"

namespace s2a::core {

/// Sense every `period` ticks (period 1 = every tick).
class PeriodicPolicy : public SensingPolicy {
 public:
  explicit PeriodicPolicy(int period);
  bool should_sense(double now, const Observation* last, Rng& rng) override;

 private:
  int period_, counter_ = 0;
};

struct AdaptiveActivityConfig {
  double base_rate = 0.1;     ///< sensing probability when fully idle
  double max_rate = 1.0;      ///< probability at/above activity saturation
  double activity_saturation = 1.0;  ///< innovation EMA mapping to max rate
  double ema_alpha = 0.3;     ///< innovation smoothing
};

class AdaptiveActivityPolicy : public SensingPolicy {
 public:
  explicit AdaptiveActivityPolicy(AdaptiveActivityConfig config = {});
  bool should_sense(double now, const Observation* last, Rng& rng) override;

  double activity() const { return activity_; }

 private:
  AdaptiveActivityConfig cfg_;
  std::vector<double> prev_data_;
  double activity_ = 0.0;
};

/// Action-to-sensing coupling: the loop's controller reports its action
/// magnitudes via report_action(); sensing probability interpolates from
/// base to max with the smoothed magnitude.
class ActionAwarePolicy : public SensingPolicy {
 public:
  ActionAwarePolicy(double base_rate, double max_rate, double saturation);
  bool should_sense(double now, const Observation* last, Rng& rng) override;
  void report_action(double magnitude);

 private:
  double base_, max_, saturation_;
  double smoothed_magnitude_ = 0.0;
};

}  // namespace s2a::core
