// DOTIE-style spiking object detection (Sec. VI, [67]): a single layer of
// per-pixel LIF neurons temporally isolates fast-moving objects — dense
// event streams charge a neuron's membrane faster than the leak drains
// it — and the spiking pixels are clustered into bounding boxes. No
// training, no frames, microwatt-class compute.
#pragma once

#include <vector>

#include "sim/event_camera.hpp"

namespace s2a::neuro {

struct DotieConfig {
  double leak = 0.6;        ///< membrane retention per step
  double threshold = 2.5;   ///< spikes when accumulated events exceed this
  int min_cluster_size = 3; ///< discard smaller connected components
};

struct EventBox {
  int x0 = 0, y0 = 0, x1 = 0, y1 = 0;  ///< inclusive pixel bounds
  double spike_mass = 0.0;             ///< total spikes inside
  int width() const { return x1 - x0 + 1; }
  int height() const { return y1 - y0 + 1; }
  bool contains(int x, int y) const {
    return x >= x0 && x <= x1 && y >= y0 && y <= y1;
  }
};

class DotieDetector {
 public:
  explicit DotieDetector(DotieConfig config = {}) : cfg_(config) {}

  /// Integrates a sequence of event frames through the LIF layer and
  /// clusters the spiking pixels (4-connectivity) into boxes.
  std::vector<EventBox> detect(const std::vector<sim::EventFrame>& frames) const;

  /// The per-pixel spike counts after integration (exposed for tests).
  std::vector<double> spike_map(const std::vector<sim::EventFrame>& frames,
                                int* width = nullptr,
                                int* height = nullptr) const;

 private:
  DotieConfig cfg_;
};

}  // namespace s2a::neuro
