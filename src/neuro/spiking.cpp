#include "neuro/spiking.hpp"

#include <cmath>

#include "util/check.hpp"

namespace s2a::neuro {

double surrogate_grad(double v_minus_theta, double width) {
  const double a = std::abs(v_minus_theta) / width;
  return a >= 1.0 ? 0.0 : (1.0 - a) / width;
}

namespace {
double sigmoid(double x) { return 1.0 / (1.0 + std::exp(-x)); }
double softplus(double x) {
  return x > 20.0 ? x : std::log1p(std::exp(x));
}
double inv_sigmoid(double y) { return std::log(y / (1.0 - y)); }
double inv_softplus(double y) {
  return y > 20.0 ? y : std::log(std::expm1(y));
}
}  // namespace

SpikingConv2D::SpikingConv2D(int in_channels, int out_channels, int kernel,
                             int stride, int padding, Rng& rng,
                             bool learnable_dynamics, double init_leak,
                             double init_threshold)
    : conv_(in_channels, out_channels, kernel, stride, padding, rng),
      learnable_(learnable_dynamics),
      p_leak_({1}),
      p_threshold_({1}),
      g_leak_({1}),
      g_threshold_({1}) {
  S2A_CHECK(init_leak > 0.0 && init_leak < 1.0);
  S2A_CHECK(init_threshold > 0.0);
  p_leak_[0] = inv_sigmoid(init_leak);
  p_threshold_[0] = inv_softplus(init_threshold);
}

double SpikingConv2D::leak() const { return sigmoid(p_leak_[0]); }
double SpikingConv2D::threshold() const { return softplus(p_threshold_[0]); }

void SpikingConv2D::begin_sequence() {
  membrane_ = nn::Tensor();
  inputs_.clear();
  pre_membranes_.clear();
  spikes_.clear();
  total_spikes_ = 0.0;
}

nn::Tensor SpikingConv2D::step(const nn::Tensor& x) {
  inputs_.push_back(x);
  const nn::Tensor c = conv_.forward(x);
  nn::Tensor u = c;
  const double lambda = leak();
  if (!membrane_.empty()) u.add_scaled(membrane_, lambda);
  pre_membranes_.push_back(u);

  const double theta = threshold();
  nn::Tensor s(u.shape());
  nn::Tensor v = u;
  for (std::size_t i = 0; i < u.numel(); ++i) {
    if (u[i] >= theta) {
      s[i] = 1.0;
      v[i] = u[i] - theta;
      total_spikes_ += 1.0;
    }
  }
  membrane_ = v;
  spikes_.push_back(s);
  return s;
}

std::vector<nn::Tensor> SpikingConv2D::backward(
    const std::vector<nn::Tensor>& grad_spikes) {
  return backward_impl(grad_spikes, /*membrane_target=*/false);
}

std::vector<nn::Tensor> SpikingConv2D::backward_membrane(
    const std::vector<nn::Tensor>& grad_membranes) {
  return backward_impl(grad_membranes, /*membrane_target=*/true);
}

std::vector<nn::Tensor> SpikingConv2D::backward_impl(
    const std::vector<nn::Tensor>& grad_out, bool membrane_target) {
  const int t_steps = static_cast<int>(inputs_.size());
  S2A_CHECK(static_cast<int>(grad_out.size()) == t_steps);
  S2A_CHECK(t_steps > 0);

  const double lambda = leak();
  const double theta = threshold();
  const double d_lambda_dp = lambda * (1.0 - lambda);          // sigmoid'
  const double d_theta_dp = sigmoid(p_threshold_[0]);          // softplus'

  std::vector<nn::Tensor> grad_inputs(static_cast<std::size_t>(t_steps));
  nn::Tensor dv;  // dL/dv_t flowing backward through the membrane chain
  double acc_dlambda = 0.0, acc_dtheta = 0.0;

  for (int t = t_steps - 1; t >= 0; --t) {
    const nn::Tensor& u = pre_membranes_[static_cast<std::size_t>(t)];
    const nn::Tensor& s = spikes_[static_cast<std::size_t>(t)];
    const nn::Tensor& gs = grad_out[static_cast<std::size_t>(t)];
    S2A_CHECK(gs.same_shape(u));

    nn::Tensor du(u.shape());
    for (std::size_t i = 0; i < u.numel(); ++i) {
      const double dvi = dv.empty() ? 0.0 : dv[i];
      if (membrane_target) {
        // Readout is u_t itself: no surrogate at this layer's output.
        du[i] = gs[i] + dvi;
        acc_dtheta += dvi * (-s[i]);
      } else {
        const double g = surrogate_grad(u[i] - theta);
        // Reset path detached (standard surrogate-gradient practice): the
        // spike indicator in v_t = u_t − θ·s_t is treated as a constant.
        du[i] = gs[i] * g + dvi;
        acc_dtheta += gs[i] * (-g) + dvi * (-s[i]);
      }
    }

    // λ enters u_t = λ·v_{t−1} + c_t (only for t > 0).
    if (t > 0) {
      // v_{t−1} = membrane after step t−1: recompute from stored tensors.
      const nn::Tensor& u_prev = pre_membranes_[static_cast<std::size_t>(t - 1)];
      const nn::Tensor& s_prev = spikes_[static_cast<std::size_t>(t - 1)];
      nn::Tensor dv_prev(u.shape());
      for (std::size_t i = 0; i < u.numel(); ++i) {
        const double v_prev = u_prev[i] - theta * s_prev[i];
        acc_dlambda += du[i] * v_prev;
        dv_prev[i] = du[i] * lambda;
      }
      dv = dv_prev;
    }

    // Through the convolution for this step (recompute-forward to restore
    // the layer's cached input, then backprop).
    conv_.forward(inputs_[static_cast<std::size_t>(t)]);
    grad_inputs[static_cast<std::size_t>(t)] = conv_.backward(du);
  }

  if (learnable_) {
    g_leak_[0] += acc_dlambda * d_lambda_dp;
    g_threshold_[0] += acc_dtheta * d_theta_dp;
  }
  return grad_inputs;
}

std::vector<nn::Tensor*> SpikingConv2D::params() {
  auto p = conv_.params();
  if (learnable_) {
    p.push_back(&p_leak_);
    p.push_back(&p_threshold_);
  }
  return p;
}

std::vector<nn::Tensor*> SpikingConv2D::grads() {
  auto g = conv_.grads();
  if (learnable_) {
    g.push_back(&g_leak_);
    g.push_back(&g_threshold_);
  }
  return g;
}

void SpikingConv2D::zero_grad() {
  for (auto* g : grads()) g->fill(0.0);
}

std::size_t SpikingConv2D::fanout() const {
  // Each *output* spike implies the neuron integrated Cin·k·k synaptic
  // accumulates that step; we charge AC energy per output-neuron update,
  // the convention of the Spike-FlowNet energy model.
  return static_cast<std::size_t>(conv_.in_channels()) * conv_.kernel() *
         conv_.kernel();
}

}  // namespace s2a::neuro
