#include "neuro/dotie.hpp"

#include <queue>

#include "util/check.hpp"

namespace s2a::neuro {

std::vector<double> DotieDetector::spike_map(
    const std::vector<sim::EventFrame>& frames, int* width,
    int* height) const {
  S2A_CHECK(!frames.empty());
  const int w = frames[0].width, h = frames[0].height;
  if (width != nullptr) *width = w;
  if (height != nullptr) *height = h;

  const std::size_t n = static_cast<std::size_t>(w) * h;
  std::vector<double> membrane(n, 0.0), spikes(n, 0.0);
  for (const auto& f : frames) {
    S2A_CHECK(f.width == w && f.height == h);
    for (std::size_t i = 0; i < n; ++i) {
      membrane[i] = cfg_.leak * membrane[i] + f.pos[i] + f.neg[i];
      if (membrane[i] >= cfg_.threshold) {
        spikes[i] += 1.0;
        membrane[i] -= cfg_.threshold;  // reset by subtraction
      }
    }
  }
  return spikes;
}

std::vector<EventBox> DotieDetector::detect(
    const std::vector<sim::EventFrame>& frames) const {
  int w = 0, h = 0;
  const std::vector<double> spikes = spike_map(frames, &w, &h);

  std::vector<bool> visited(spikes.size(), false);
  std::vector<EventBox> boxes;
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      const std::size_t start = static_cast<std::size_t>(y) * w + x;
      if (visited[start] || spikes[start] <= 0.0) continue;

      // BFS over the 4-connected spiking component.
      EventBox box{x, y, x, y, 0.0};
      int size = 0;
      std::queue<std::pair<int, int>> frontier;
      frontier.push({x, y});
      visited[start] = true;
      while (!frontier.empty()) {
        const auto [cx, cy] = frontier.front();
        frontier.pop();
        const std::size_t ci = static_cast<std::size_t>(cy) * w + cx;
        box.spike_mass += spikes[ci];
        box.x0 = std::min(box.x0, cx);
        box.x1 = std::max(box.x1, cx);
        box.y0 = std::min(box.y0, cy);
        box.y1 = std::max(box.y1, cy);
        ++size;
        const int dx[4] = {1, -1, 0, 0};
        const int dy[4] = {0, 0, 1, -1};
        for (int d = 0; d < 4; ++d) {
          const int nx = cx + dx[d], ny = cy + dy[d];
          if (nx < 0 || nx >= w || ny < 0 || ny >= h) continue;
          const std::size_t ni = static_cast<std::size_t>(ny) * w + nx;
          if (visited[ni] || spikes[ni] <= 0.0) continue;
          visited[ni] = true;
          frontier.push({nx, ny});
        }
      }
      if (size >= cfg_.min_cluster_size) boxes.push_back(box);
    }
  }
  return boxes;
}

}  // namespace s2a::neuro
