// Spiking (LIF) convolution layers with surrogate-gradient BPTT
// (Sec. VI). Neurons integrate leaky membrane potential, emit a spike
// when it crosses threshold, and reset by subtraction:
//   u_t = λ·v_{t−1} + c_t,   s_t = H(u_t − θ),   v_t = u_t − θ·s_t.
// Backward uses a triangular surrogate for H' (Neftci et al. [62]).
// Adaptive-SpikeNet's contribution — learnable neuronal dynamics [49] —
// is the `learnable_dynamics` flag: λ and θ become trainable parameters
// (through sigmoid/softplus transforms that keep them in range).
#pragma once

#include <vector>

#include "nn/conv2d.hpp"

namespace s2a::neuro {

/// Triangular surrogate derivative of the Heaviside spike function,
/// centred on the threshold: max(0, 1 − |x|/width) / width.
double surrogate_grad(double v_minus_theta, double width = 1.0);

/// Energy constants at 45 nm (Horowitz; standard in the SNN literature):
/// a 32-bit MAC costs 4.6 pJ, an accumulate (AC) 0.9 pJ. SNN layers pay
/// AC per *spike-driven* synaptic op; ANN layers pay MAC per synaptic op.
inline constexpr double kEnergyPerMac = 4.6e-12;
inline constexpr double kEnergyPerAc = 0.9e-12;

/// Conv2D wrapped in LIF dynamics, unrolled over a spike-train sequence.
/// Drive with begin_sequence() then step(x_t) for t = 0..T−1; backward
/// takes dL/d(spikes_t) for every step and returns dL/d(input_t).
class SpikingConv2D {
 public:
  SpikingConv2D(int in_channels, int out_channels, int kernel, int stride,
                int padding, Rng& rng, bool learnable_dynamics = false,
                double init_leak = 0.9, double init_threshold = 1.0);

  void begin_sequence();
  /// One timestep: returns the binary spike map for this step.
  nn::Tensor step(const nn::Tensor& x);
  /// BPTT through all recorded steps. grad_spikes[t] is dL/d(spikes_t);
  /// returns dL/d(input_t) per step. Parameter gradients accumulate.
  std::vector<nn::Tensor> backward(const std::vector<nn::Tensor>& grad_spikes);

  /// BPTT when the readout is the pre-threshold membrane u_t instead of
  /// the spike train (Spike-FlowNet reads accumulated membrane potential
  /// at the final encoder layer): grad_membranes[t] is dL/du_t.
  std::vector<nn::Tensor> backward_membrane(
      const std::vector<nn::Tensor>& grad_membranes);

  /// Pre-threshold membrane recorded at step t (valid after step()).
  const nn::Tensor& pre_membrane(int t) const { return pre_membranes_[static_cast<std::size_t>(t)]; }

  std::vector<nn::Tensor*> params();
  std::vector<nn::Tensor*> grads();
  void zero_grad();

  double leak() const;
  double threshold() const;
  bool learnable_dynamics() const { return learnable_; }

  /// Spike statistics since the last begin_sequence() — the quantity the
  /// AC-energy model integrates.
  double total_output_spikes() const { return total_spikes_; }
  /// Synaptic fan-out per input spike (Cout·k·k): one AC op each.
  std::size_t fanout() const;
  /// Dense MAC count per step (what an ANN layer of this shape would pay).
  std::size_t dense_macs_per_step() const { return conv_.macs_per_sample(); }

  nn::Conv2D& conv() { return conv_; }
  int steps_recorded() const { return static_cast<int>(inputs_.size()); }

 private:
  std::vector<nn::Tensor> backward_impl(const std::vector<nn::Tensor>& grad_out,
                                        bool membrane_target);

  nn::Conv2D conv_;
  bool learnable_;
  // Raw dynamics parameters; leak = sigmoid(p_leak), threshold =
  // softplus(p_threshold) keep them in valid ranges while trainable.
  nn::Tensor p_leak_, p_threshold_, g_leak_, g_threshold_;
  nn::Tensor membrane_;
  std::vector<nn::Tensor> inputs_, pre_membranes_, spikes_;
  double total_spikes_ = 0.0;
};

}  // namespace s2a::neuro
