#include "neuro/flow_nets.hpp"

#include <algorithm>
#include <cmath>

#include "nn/activations.hpp"
#include "nn/loss.hpp"
#include "util/check.hpp"

namespace s2a::neuro {

const char* flow_kind_name(FlowKind kind) {
  switch (kind) {
    case FlowKind::kEvFlowNet:
      return "EvFlowNet (ANN)";
    case FlowKind::kSpikeFlowNet:
      return "Spike-FlowNet (hybrid)";
    case FlowKind::kFusionFlowNet:
      return "Fusion-FlowNet (events+frames)";
    case FlowKind::kAdaptiveSpikeNet:
      return "Adaptive-SpikeNet (learnable SNN)";
  }
  return "?";
}

std::vector<FlowKind> all_flow_kinds() {
  return {FlowKind::kEvFlowNet, FlowKind::kSpikeFlowNet,
          FlowKind::kFusionFlowNet, FlowKind::kAdaptiveSpikeNet};
}

nn::Tensor events_to_tensor(const sim::EventFrame& ev) {
  nn::Tensor t({1, 2, ev.height, ev.width});
  const std::size_t hw = static_cast<std::size_t>(ev.height) * ev.width;
  for (std::size_t i = 0; i < hw; ++i) {
    t[i] = ev.pos[i];
    t[hw + i] = ev.neg[i];
  }
  return t;
}

nn::Tensor event_bins_to_tensor(const std::vector<sim::EventFrame>& bins) {
  S2A_CHECK(!bins.empty());
  const int h = bins[0].height, w = bins[0].width;
  const int b = static_cast<int>(bins.size());
  nn::Tensor t({1, 2 * b, h, w});
  const std::size_t hw = static_cast<std::size_t>(h) * w;
  for (int k = 0; k < b; ++k) {
    S2A_CHECK(bins[static_cast<std::size_t>(k)].height == h &&
              bins[static_cast<std::size_t>(k)].width == w);
    for (std::size_t i = 0; i < hw; ++i) {
      t[static_cast<std::size_t>(2 * k) * hw + i] =
          bins[static_cast<std::size_t>(k)].pos[i];
      t[static_cast<std::size_t>(2 * k + 1) * hw + i] =
          bins[static_cast<std::size_t>(k)].neg[i];
    }
  }
  return t;
}

nn::Tensor frame_to_tensor(const sim::Image& img) {
  nn::Tensor t({1, 1, img.height, img.width});
  for (std::size_t i = 0; i < img.pixels.size(); ++i) t[i] = img.pixels[i];
  return t;
}

nn::Tensor flow_to_tensor(const sim::FlowField& f) {
  nn::Tensor t({1, 2, f.height, f.width});
  const std::size_t hw = f.u.size();
  for (std::size_t i = 0; i < hw; ++i) {
    t[i] = f.u[i];
    t[hw + i] = f.v[i];
  }
  return t;
}

sim::FlowField tensor_to_flow(const nn::Tensor& t) {
  S2A_CHECK(t.shape().size() == 4 && t.dim(0) == 1 && t.dim(1) == 2);
  sim::FlowField f(t.dim(3), t.dim(2));
  const std::size_t hw = f.u.size();
  for (std::size_t i = 0; i < hw; ++i) {
    f.u[i] = t[i];
    f.v[i] = t[hw + i];
  }
  return f;
}

double FlowNetwork::evaluate_aee(const std::vector<sim::FlowSample>& data) {
  S2A_CHECK(!data.empty());
  double total = 0.0;
  for (const auto& s : data)
    total += sim::average_endpoint_error(predict(s), s.flow, &s.events);
  return total / static_cast<double>(data.size());
}

EnergyBreakdown FlowNetwork::mean_energy(
    const std::vector<sim::FlowSample>& data) {
  S2A_CHECK(!data.empty());
  EnergyBreakdown sum;
  for (const auto& s : data) {
    predict(s);
    const EnergyBreakdown e = last_energy();
    sum.mac_ops += e.mac_ops;
    sum.ac_ops += e.ac_ops;
  }
  sum.mac_ops /= static_cast<double>(data.size());
  sum.ac_ops /= static_cast<double>(data.size());
  return sum;
}

namespace {

// Event-pixel-weighted flow loss shared by all networks.
nn::LossResult weighted_flow_loss(const nn::Tensor& pred,
                                  const sim::FlowSample& sample,
                                  double off_event_weight) {
  auto loss = nn::mse_loss(pred, flow_to_tensor(sample.flow));
  const std::size_t hw = sample.flow.u.size();
  for (std::size_t i = 0; i < hw; ++i) {
    const bool has_event = sample.events.pos[i] + sample.events.neg[i] > 0.0;
    const double w = has_event ? 1.0 : off_event_weight;
    loss.grad[i] *= w;
    loss.grad[hw + i] *= w;
  }
  return loss;
}

// ----------------------------------------------------------- EvFlowNet

class EvFlowNetLite : public FlowNetwork {
 public:
  EvFlowNetLite(const FlowNetConfig& cfg, Rng& rng) : cfg_(cfg) {
    const int c = cfg.base_channels;
    // Full-resolution first stage: sub-pixel cross-bin shifts carry the
    // motion direction, so the earliest layer must not downsample.
    net_.emplace<nn::Conv2D>(2 * cfg.time_bins, c, 3, 1, 1, rng);
    net_.emplace<nn::ReLU>();
    net_.emplace<nn::Conv2D>(c, 2 * c, 3, 2, 1, rng);
    net_.emplace<nn::ReLU>();
    net_.emplace<nn::ConvTranspose2D>(2 * c, c, 4, 2, 1, rng);
    net_.emplace<nn::ReLU>();
    net_.emplace<nn::Conv2D>(c, 2, 3, 1, 1, rng);
    opt_ = std::make_unique<nn::Adam>(cfg.lr);
    opt_->attach(net_.params(), net_.grads());
  }

  FlowKind kind() const override { return FlowKind::kEvFlowNet; }

  sim::FlowField predict(const sim::FlowSample& s) override {
    const nn::Tensor out = net_.forward(event_bins_to_tensor(s.bins));
    last_energy_ = {static_cast<double>(net_.macs_per_sample()), 0.0};
    return tensor_to_flow(out);
  }

  double train_epoch(const std::vector<sim::FlowSample>& data,
                     Rng& rng) override {
    (void)rng;
    double total = 0.0;
    for (const auto& s : data) {
      opt_->zero_grad();
      const nn::Tensor out = net_.forward(event_bins_to_tensor(s.bins));
      auto loss = weighted_flow_loss(out, s, cfg_.off_event_weight);
      total += loss.value;
      net_.backward(loss.grad);
      opt_->step();
    }
    return total / static_cast<double>(data.size());
  }

  std::size_t param_count() override { return net_.param_count(); }
  EnergyBreakdown last_energy() const override { return last_energy_; }

 private:
  FlowNetConfig cfg_;
  nn::Sequential net_;
  std::unique_ptr<nn::Adam> opt_;
  EnergyBreakdown last_energy_;
};

// ------------------------------------------------- spiking encoder base

// Shared machinery: one temporal bin per LIF timestep (direct input
// encoding), spike accumulation into a feature map, ANN decoder.
class SpikingEncoderFlowNet : public FlowNetwork {
 public:
  SpikingEncoderFlowNet(const FlowNetConfig& cfg, bool learnable, Rng& rng)
      : cfg_(cfg),
        enc1_(2, cfg.base_channels, 3, 1, 1, rng, learnable,
              /*init_leak=*/0.8, /*init_threshold=*/0.4),
        enc2_(cfg.base_channels, 2 * cfg.base_channels, 3, 2, 1, rng,
              learnable, 0.8, 0.4) {
    const int c = cfg.base_channels;
    // Decoder consumes one temporal group of encoder features per bin —
    // Spike-FlowNet's output-accumulation trick for preserving motion
    // direction — squeezed by a 1×1 conv so the upsampling stage stays
    // cheap regardless of the bin count.
    decoder_.emplace<nn::Conv2D>(cfg.time_bins * 2 * c, 2 * c, 1, 1, 0, rng);
    decoder_.emplace<nn::ReLU>();
    decoder_.emplace<nn::ConvTranspose2D>(2 * c, c, 4, 2, 1, rng);
    decoder_.emplace<nn::ReLU>();
    decoder_.emplace<nn::Conv2D>(c, 2, 3, 1, 1, rng);
  }

  std::size_t param_count() override {
    std::size_t n = decoder_.param_count();
    for (auto* p : enc1_.params()) n += p->numel();
    for (auto* p : enc2_.params()) n += p->numel();
    return n;
  }

  EnergyBreakdown last_energy() const override { return last_energy_; }

 protected:
  void attach_optimizer(double lr) {
    opt_ = std::make_unique<nn::Adam>(lr);
    auto params = decoder_.params();
    auto grads = decoder_.grads();
    for (auto* p : enc1_.params()) params.push_back(p);
    for (auto* g : enc1_.grads()) grads.push_back(g);
    for (auto* p : enc2_.params()) params.push_back(p);
    for (auto* g : enc2_.grads()) grads.push_back(g);
    opt_->attach(std::move(params), std::move(grads));
  }

  /// Runs the per-bin spike sequence and returns accumulated encoder
  /// features (mean output spike rate per neuron).
  nn::Tensor encode_events(const sim::FlowSample& sample) {
    S2A_CHECK_MSG(static_cast<int>(sample.bins.size()) == cfg_.time_bins,
                  "dataset bins != config time_bins");
    enc1_.begin_sequence();
    enc2_.begin_sequence();
    steps_ = cfg_.time_bins;
    // Spike-FlowNet-style readout: the final encoder layer's
    // pre-threshold membranes (continuous), kept as one channel group per
    // timestep so motion direction survives the temporal pooling.
    for (int t = 0; t < steps_; ++t) {
      // Direct input encoding: event counts drive the first layer as
      // analog current.
      const nn::Tensor s1 =
          enc1_.step(events_to_tensor(sample.bins[static_cast<std::size_t>(t)]));
      enc2_.step(s1);
    }
    // (Membranes are read after all steps: the recording vector is stable.)
    const nn::Tensor& u0 = enc2_.pre_membrane(0);
    const int ch = u0.dim(1), fh = u0.dim(2), fw = u0.dim(3);
    nn::Tensor accum({1, steps_ * ch, fh, fw});
    const std::size_t block = u0.numel();
    for (int t = 0; t < steps_; ++t) {
      const nn::Tensor& ut = enc2_.pre_membrane(t);
      for (std::size_t i = 0; i < block; ++i)
        accum[static_cast<std::size_t>(t) * block + i] = ut[i];
    }

    // Energy: AC per output-neuron spike, fanin accumulates each.
    last_energy_.ac_ops =
        enc1_.total_output_spikes() * static_cast<double>(enc1_.fanout()) +
        enc2_.total_output_spikes() * static_cast<double>(enc2_.fanout());
    last_energy_.mac_ops = 0.0;  // decoder MACs accounted after its forward
    return accum;
  }

  /// BPTT back through both spiking layers given dL/d(grouped feature).
  void backward_events(const nn::Tensor& d_accum) {
    const std::size_t block = d_accum.numel() / static_cast<std::size_t>(steps_);
    const int ch = d_accum.dim(1) / steps_, fh = d_accum.dim(2),
              fw = d_accum.dim(3);
    std::vector<nn::Tensor> g2;
    for (int t = 0; t < steps_; ++t) {
      nn::Tensor g({1, ch, fh, fw});
      for (std::size_t i = 0; i < block; ++i)
        g[i] = d_accum[static_cast<std::size_t>(t) * block + i];
      g2.push_back(std::move(g));
    }
    const std::vector<nn::Tensor> d_s1 = enc2_.backward_membrane(g2);
    enc1_.backward(d_s1);
  }

  FlowNetConfig cfg_;
  SpikingConv2D enc1_, enc2_;
  nn::Sequential decoder_;
  std::unique_ptr<nn::Adam> opt_;
  int steps_ = 1;
  EnergyBreakdown last_energy_;
};

class SpikeFlowNetLite : public SpikingEncoderFlowNet {
 public:
  SpikeFlowNetLite(const FlowNetConfig& cfg, Rng& rng)
      : SpikingEncoderFlowNet(cfg, /*learnable=*/false, rng) {
    attach_optimizer(cfg.lr);
  }
  FlowKind kind() const override { return FlowKind::kSpikeFlowNet; }

  sim::FlowField predict(const sim::FlowSample& s) override {
    const nn::Tensor feat = encode_events(s);
    const nn::Tensor out = decoder_.forward(feat);
    last_energy_.mac_ops = static_cast<double>(decoder_.macs_per_sample());
    return tensor_to_flow(out);
  }

  double train_epoch(const std::vector<sim::FlowSample>& data,
                     Rng& rng) override {
    (void)rng;
    double total = 0.0;
    for (const auto& s : data) {
      opt_->zero_grad();
      const nn::Tensor feat = encode_events(s);
      const nn::Tensor out = decoder_.forward(feat);
      auto loss = weighted_flow_loss(out, s, cfg_.off_event_weight);
      total += loss.value;
      const nn::Tensor dfeat = decoder_.backward(loss.grad);
      backward_events(dfeat);
      opt_->step();
    }
    return total / static_cast<double>(data.size());
  }
};

class AdaptiveSpikeNetLite : public SpikingEncoderFlowNet {
 public:
  AdaptiveSpikeNetLite(const FlowNetConfig& cfg, Rng& rng)
      : SpikingEncoderFlowNet(cfg, /*learnable=*/true, rng) {
    attach_optimizer(cfg.lr);
  }
  FlowKind kind() const override { return FlowKind::kAdaptiveSpikeNet; }

  sim::FlowField predict(const sim::FlowSample& s) override {
    const nn::Tensor feat = encode_events(s);
    const nn::Tensor out = decoder_.forward(feat);
    last_energy_.mac_ops = static_cast<double>(decoder_.macs_per_sample());
    return tensor_to_flow(out);
  }

  double train_epoch(const std::vector<sim::FlowSample>& data,
                     Rng& rng) override {
    (void)rng;
    double total = 0.0;
    for (const auto& s : data) {
      opt_->zero_grad();
      const nn::Tensor feat = encode_events(s);
      const nn::Tensor out = decoder_.forward(feat);
      auto loss = weighted_flow_loss(out, s, cfg_.off_event_weight);
      total += loss.value;
      const nn::Tensor dfeat = decoder_.backward(loss.grad);
      backward_events(dfeat);
      opt_->step();
    }
    return total / static_cast<double>(data.size());
  }

  double leak1() const { return enc1_.leak(); }
  double threshold1() const { return enc1_.threshold(); }
};

class FusionFlowNetLite : public SpikingEncoderFlowNet {
 public:
  FusionFlowNetLite(const FlowNetConfig& cfg, Rng& rng)
      : SpikingEncoderFlowNet(cfg, /*learnable=*/false, rng) {
    const int c = cfg.base_channels;
    frame_enc_.emplace<nn::Conv2D>(1, c, 3, 1, 1, rng);
    frame_enc_.emplace<nn::ReLU>();
    frame_enc_.emplace<nn::Conv2D>(c, 2 * c, 3, 2, 1, rng);
    frame_enc_.emplace<nn::ReLU>();
    attach_optimizer(cfg.lr);
    frame_opt_ = std::make_unique<nn::Adam>(cfg.lr);
    frame_opt_->attach(frame_enc_.params(), frame_enc_.grads());
  }
  FlowKind kind() const override { return FlowKind::kFusionFlowNet; }

  sim::FlowField predict(const sim::FlowSample& s) override {
    const nn::Tensor out = forward(s);
    last_energy_.mac_ops = static_cast<double>(decoder_.macs_per_sample()) +
                           static_cast<double>(frame_enc_.macs_per_sample());
    return tensor_to_flow(out);
  }

  double train_epoch(const std::vector<sim::FlowSample>& data,
                     Rng& rng) override {
    (void)rng;
    double total = 0.0;
    for (const auto& s : data) {
      opt_->zero_grad();
      frame_opt_->zero_grad();
      const nn::Tensor out = forward(s);
      auto loss = weighted_flow_loss(out, s, cfg_.off_event_weight);
      total += loss.value;
      const nn::Tensor dfeat = decoder_.backward(loss.grad);
      // Fused feature = event groups + broadcast frame features: the frame
      // encoder's gradient is the sum over groups.
      backward_events(dfeat);
      const std::size_t block = dfeat.numel() / static_cast<std::size_t>(cfg_.time_bins);
      nn::Tensor dframe({1, dfeat.dim(1) / cfg_.time_bins, dfeat.dim(2), dfeat.dim(3)});
      for (int t = 0; t < cfg_.time_bins; ++t)
        for (std::size_t i = 0; i < block; ++i)
          dframe[i] += dfeat[static_cast<std::size_t>(t) * block + i];
      frame_enc_.backward(dframe);
      opt_->step();
      frame_opt_->step();
    }
    return total / static_cast<double>(data.size());
  }

  std::size_t param_count() override {
    return SpikingEncoderFlowNet::param_count() + frame_enc_.param_count();
  }

 private:
  nn::Tensor forward(const sim::FlowSample& s) {
    nn::Tensor fused = encode_events(s);  // [1, bins·2c, h, w]
    const nn::Tensor ff = frame_enc_.forward(frame_to_tensor(s.frame));
    // Broadcast-add the frame features into every temporal group.
    const std::size_t block = ff.numel();
    for (int t = 0; t < cfg_.time_bins; ++t)
      for (std::size_t i = 0; i < block; ++i)
        fused[static_cast<std::size_t>(t) * block + i] += ff[i];
    return decoder_.forward(fused);
  }

  nn::Sequential frame_enc_;
  std::unique_ptr<nn::Adam> frame_opt_;
};

}  // namespace

std::unique_ptr<FlowNetwork> make_flow_network(FlowKind kind,
                                               const FlowNetConfig& cfg,
                                               Rng& rng) {
  switch (kind) {
    case FlowKind::kEvFlowNet:
      return std::make_unique<EvFlowNetLite>(cfg, rng);
    case FlowKind::kSpikeFlowNet:
      return std::make_unique<SpikeFlowNetLite>(cfg, rng);
    case FlowKind::kFusionFlowNet:
      return std::make_unique<FusionFlowNetLite>(cfg, rng);
    case FlowKind::kAdaptiveSpikeNet:
      return std::make_unique<AdaptiveSpikeNetLite>(cfg, rng);
  }
  S2A_CHECK_MSG(false, "unknown flow network kind");
  return nullptr;
}

}  // namespace s2a::neuro
