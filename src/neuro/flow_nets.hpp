// The optical-flow network families of Fig. 9 (Sec. VI), scaled to the
// simulated event-camera data:
//
//  * EvFlowNetLite       — full-ANN encoder/decoder on event count maps
//                          (EV-FlowNet [48] family).
//  * SpikeFlowNetLite    — spiking (LIF) encoder driven by a rate-coded
//                          spike train + ANN decoder (Spike-FlowNet [50]).
//  * FusionFlowNetLite   — spiking event encoder fused with an ANN frame
//                          encoder, ANN decoder (Fusion-FlowNet [51]).
//  * AdaptiveSpikeNetLite— spiking encoder with *learnable* leak and
//                          threshold (Adaptive-SpikeNet [49]).
//
// Every network reports parameters and a 45 nm energy estimate: ANN layers
// pay a MAC (4.6 pJ) per synaptic op, spiking layers pay an AC (0.9 pJ)
// per spike-driven update — the accounting used by the cited papers.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "neuro/spiking.hpp"
#include "nn/optimizer.hpp"
#include "nn/sequential.hpp"
#include "sim/event_camera.hpp"

namespace s2a::neuro {

enum class FlowKind {
  kEvFlowNet = 0,
  kSpikeFlowNet,
  kFusionFlowNet,
  kAdaptiveSpikeNet,
};
const char* flow_kind_name(FlowKind kind);
std::vector<FlowKind> all_flow_kinds();

struct FlowNetConfig {
  int width = 16, height = 16;
  int base_channels = 8;   ///< encoder width c (decoder mirrors it)
  /// Temporal bins per sample. ANN models stack bins as channels
  /// (event-volume input); SNN models consume one bin per timestep with
  /// direct input encoding (Diet-SNN style [64]), so this is also the
  /// SNN unroll length. Must match the dataset's time_bins.
  int time_bins = 4;
  double lr = 2e-3;
  /// Loss weight on pixels without events (flow supervision is dense in
  /// simulation but evaluation is sparse, per the MVSEC protocol).
  double off_event_weight = 0.05;
};

struct EnergyBreakdown {
  double mac_ops = 0.0;  ///< dense multiply-accumulates
  double ac_ops = 0.0;   ///< spike-driven accumulates
  double joules() const {
    return mac_ops * kEnergyPerMac + ac_ops * kEnergyPerAc;
  }
};

class FlowNetwork {
 public:
  virtual ~FlowNetwork() = default;
  virtual FlowKind kind() const = 0;
  std::string name() const { return flow_kind_name(kind()); }

  virtual sim::FlowField predict(const sim::FlowSample& sample) = 0;
  /// One pass over the dataset (per-sample Adam updates); returns mean loss.
  virtual double train_epoch(const std::vector<sim::FlowSample>& data,
                             Rng& rng) = 0;

  virtual std::size_t param_count() = 0;
  /// Energy of the most recent predict() call.
  virtual EnergyBreakdown last_energy() const = 0;

  /// Mean AEE over a dataset, masked to event pixels.
  double evaluate_aee(const std::vector<sim::FlowSample>& data);
  /// Mean inference energy over a dataset (joules).
  EnergyBreakdown mean_energy(const std::vector<sim::FlowSample>& data);
};

std::unique_ptr<FlowNetwork> make_flow_network(FlowKind kind,
                                               const FlowNetConfig& config,
                                               Rng& rng);

/// Shared conversions (exposed for tests).
nn::Tensor events_to_tensor(const sim::EventFrame& events);
/// Stacks per-bin event frames as channels: [1, 2·bins, H, W].
nn::Tensor event_bins_to_tensor(const std::vector<sim::EventFrame>& bins);
nn::Tensor frame_to_tensor(const sim::Image& frame);
nn::Tensor flow_to_tensor(const sim::FlowField& flow);
sim::FlowField tensor_to_flow(const nn::Tensor& t);

}  // namespace s2a::neuro
