#include "koopman/models.hpp"

#include "nn/activations.hpp"
#include "util/check.hpp"

namespace s2a::koopman {

const char* model_kind_name(ModelKind kind) {
  switch (kind) {
    case ModelKind::kSpectralKoopman:
      return "Spectral Koopman";
    case ModelKind::kDenseKoopman:
      return "Dense Koopman";
    case ModelKind::kMlp:
      return "MLP";
    case ModelKind::kTransformer:
      return "Transformer";
    case ModelKind::kRecurrent:
      return "Recurrent (GRU)";
  }
  return "?";
}

std::vector<ModelKind> all_model_kinds() {
  return {ModelKind::kSpectralKoopman, ModelKind::kDenseKoopman,
          ModelKind::kMlp, ModelKind::kTransformer, ModelKind::kRecurrent};
}

// ---------------------------------------------------------------- dense

DenseKoopmanModel::DenseKoopmanModel(int latent_dim, int action_dim, Rng& rng)
    : dim_(latent_dim),
      a_(latent_dim, latent_dim, rng, /*bias=*/false),
      b_(action_dim, latent_dim, rng, /*bias=*/false) {
  // Initialize A near identity so early rollouts don't explode.
  nn::Tensor& w = a_.weight();
  for (std::size_t i = 0; i < w.numel(); ++i) w[i] *= 0.1;
  for (int i = 0; i < dim_; ++i) w.at(i, i) += 1.0;
}

nn::Tensor DenseKoopmanModel::forward(const nn::Tensor& z, const nn::Tensor& a,
                                      const RolloutContext&) {
  nn::Tensor out = a_.forward(z);
  out.add_scaled(b_.forward(a), 1.0);
  return out;
}

nn::Tensor DenseKoopmanModel::backward(const nn::Tensor& grad_out) {
  b_.backward(grad_out);
  return a_.backward(grad_out);
}

std::vector<nn::Tensor*> DenseKoopmanModel::params() {
  auto p = a_.params();
  for (auto* q : b_.params()) p.push_back(q);
  return p;
}

std::vector<nn::Tensor*> DenseKoopmanModel::grads() {
  auto g = a_.grads();
  for (auto* q : b_.grads()) g.push_back(q);
  return g;
}

std::size_t DenseKoopmanModel::macs_per_step() const {
  return a_.macs_per_sample() + b_.macs_per_sample();
}

// ------------------------------------------------------------------ mlp

MlpDynamicsModel::MlpDynamicsModel(int latent_dim, int action_dim, int hidden,
                                   Rng& rng)
    : dim_(latent_dim), action_dim_(action_dim) {
  net_.emplace<nn::Dense>(latent_dim + action_dim, hidden, rng);
  net_.emplace<nn::ReLU>();
  net_.emplace<nn::Dense>(hidden, hidden, rng);
  net_.emplace<nn::ReLU>();
  net_.emplace<nn::Dense>(hidden, latent_dim, rng);
}

nn::Tensor MlpDynamicsModel::forward(const nn::Tensor& z, const nn::Tensor& a,
                                     const RolloutContext&) {
  S2A_CHECK(z.dim(0) == a.dim(0));
  const int n = z.dim(0);
  nn::Tensor za({n, dim_ + action_dim_});
  for (int b = 0; b < n; ++b) {
    for (int i = 0; i < dim_; ++i) za.at(b, i) = z.at(b, i);
    for (int i = 0; i < action_dim_; ++i) za.at(b, dim_ + i) = a.at(b, i);
  }
  return net_.forward(za);
}

nn::Tensor MlpDynamicsModel::backward(const nn::Tensor& grad_out) {
  const nn::Tensor dza = net_.backward(grad_out);
  const int n = dza.dim(0);
  nn::Tensor dz({n, dim_});
  for (int b = 0; b < n; ++b)
    for (int i = 0; i < dim_; ++i) dz.at(b, i) = dza.at(b, i);
  return dz;
}

std::size_t MlpDynamicsModel::macs_per_step() const {
  return net_.macs_per_sample();
}

// ---------------------------------------------------------- transformer

TransformerDynamicsModel::TransformerDynamicsModel(int latent_dim,
                                                   int action_dim, int window,
                                                   Rng& rng)
    : dim_(latent_dim),
      action_dim_(action_dim),
      window_(window),
      token_proj_(latent_dim + action_dim, latent_dim, rng),
      attn_(latent_dim, rng),
      out_(latent_dim, latent_dim, rng) {
  S2A_CHECK(window >= 1);
}

nn::Tensor TransformerDynamicsModel::forward(const nn::Tensor& z,
                                             const nn::Tensor& a,
                                             const RolloutContext& ctx) {
  S2A_CHECK_MSG(z.dim(0) == 1, "transformer dynamics is per-sequence");
  // Assemble tokens: up to window_-1 most recent context pairs + current.
  std::vector<std::pair<const nn::Tensor*, const nn::Tensor*>> toks;
  const std::size_t take =
      std::min(ctx.window.size(), static_cast<std::size_t>(window_ - 1));
  for (std::size_t i = ctx.window.size() - take; i < ctx.window.size(); ++i)
    toks.push_back({&ctx.window[i].first, &ctx.window[i].second});
  toks.push_back({&z, &a});

  const int t = static_cast<int>(toks.size());
  last_tokens_ = t;
  nn::Tensor za({t, dim_ + action_dim_});
  for (int i = 0; i < t; ++i) {
    for (int j = 0; j < dim_; ++j) za.at(i, j) = (*toks[static_cast<std::size_t>(i)].first)[static_cast<std::size_t>(j)];
    for (int j = 0; j < action_dim_; ++j)
      za.at(i, dim_ + j) = (*toks[static_cast<std::size_t>(i)].second)[static_cast<std::size_t>(j)];
  }
  const nn::Tensor tokens = token_proj_.forward(za);   // [t, d]
  const nn::Tensor mixed = attn_.forward(tokens);      // [t, d]
  const nn::Tensor preds = out_.forward(mixed);        // [t, 2m]
  // Prediction = last token's output.
  nn::Tensor zp({1, dim_});
  for (int j = 0; j < dim_; ++j) zp[static_cast<std::size_t>(j)] = preds.at(t - 1, j);
  return zp;
}

nn::Tensor TransformerDynamicsModel::backward(const nn::Tensor& grad_out) {
  const int t = last_tokens_;
  S2A_CHECK(t >= 1);
  nn::Tensor dpreds({t, dim_});
  for (int j = 0; j < dim_; ++j) dpreds.at(t - 1, j) = grad_out[static_cast<std::size_t>(j)];
  const nn::Tensor dmixed = out_.backward(dpreds);
  const nn::Tensor dtokens = attn_.backward(dmixed);
  const nn::Tensor dza = token_proj_.backward(dtokens);
  // Gradient w.r.t. the *current* z (last token); context is constant.
  nn::Tensor dz({1, dim_});
  for (int j = 0; j < dim_; ++j) dz[static_cast<std::size_t>(j)] = dza.at(t - 1, j);
  return dz;
}

RolloutContext TransformerDynamicsModel::advance(RolloutContext ctx,
                                                 const nn::Tensor& z,
                                                 const nn::Tensor& a) const {
  ctx.window.push_back({z, a});
  while (static_cast<int>(ctx.window.size()) > window_ - 1)
    ctx.window.erase(ctx.window.begin());
  return ctx;
}

std::vector<nn::Tensor*> TransformerDynamicsModel::params() {
  auto p = token_proj_.params();
  for (auto* q : attn_.params()) p.push_back(q);
  for (auto* q : out_.params()) p.push_back(q);
  return p;
}

std::vector<nn::Tensor*> TransformerDynamicsModel::grads() {
  auto g = token_proj_.grads();
  for (auto* q : attn_.grads()) g.push_back(q);
  for (auto* q : out_.grads()) g.push_back(q);
  return g;
}

std::size_t TransformerDynamicsModel::macs_per_step() const {
  const std::size_t t = static_cast<std::size_t>(window_);
  const std::size_t d = static_cast<std::size_t>(dim_);
  // Token projections + attention + output head for a full window.
  return t * (d + action_dim_) * d + 4 * t * d * d + 2 * t * t * d +
         t * d * d;
}

// ------------------------------------------------------------- recurrent

RecurrentDynamicsModel::RecurrentDynamicsModel(int latent_dim, int action_dim,
                                               int hidden, Rng& rng)
    : dim_(latent_dim),
      action_dim_(action_dim),
      hidden_(hidden),
      cell_(latent_dim + action_dim, hidden, rng),
      out_(hidden, latent_dim, rng) {}

RolloutContext RecurrentDynamicsModel::initial_context() const {
  RolloutContext ctx;
  ctx.hidden = nn::Tensor({1, hidden_});
  return ctx;
}

nn::Tensor RecurrentDynamicsModel::concat_za(const nn::Tensor& z,
                                             const nn::Tensor& a) const {
  const int n = z.dim(0);
  nn::Tensor za({n, dim_ + action_dim_});
  for (int b = 0; b < n; ++b) {
    for (int i = 0; i < dim_; ++i) za.at(b, i) = z.at(b, i);
    for (int i = 0; i < action_dim_; ++i) za.at(b, dim_ + i) = a.at(b, i);
  }
  return za;
}

nn::Tensor RecurrentDynamicsModel::forward(const nn::Tensor& z,
                                           const nn::Tensor& a,
                                           const RolloutContext& ctx) {
  S2A_CHECK(z.dim(0) == 1);
  nn::Tensor h = ctx.hidden.empty() ? nn::Tensor({1, hidden_}) : ctx.hidden;
  const nn::Tensor h_new = cell_.step(concat_za(z, a), h);
  return out_.forward(h_new);
}

nn::Tensor RecurrentDynamicsModel::backward(const nn::Tensor& grad_out) {
  const nn::Tensor dh = out_.backward(grad_out);
  const auto [dza, dh0] = cell_.backward(dh);
  (void)dh0;  // context hidden is treated as constant
  nn::Tensor dz({1, dim_});
  for (int i = 0; i < dim_; ++i) dz[static_cast<std::size_t>(i)] = dza.at(0, i);
  return dz;
}

RolloutContext RecurrentDynamicsModel::advance(RolloutContext ctx,
                                               const nn::Tensor& z,
                                               const nn::Tensor& a) const {
  nn::Tensor h = ctx.hidden.empty() ? nn::Tensor({1, hidden_}) : ctx.hidden;
  ctx.hidden = cell_.step(concat_za(z, a), h);
  return ctx;
}

std::vector<nn::Tensor*> RecurrentDynamicsModel::params() {
  auto p = cell_.params();
  for (auto* q : out_.params()) p.push_back(q);
  return p;
}

std::vector<nn::Tensor*> RecurrentDynamicsModel::grads() {
  auto g = cell_.grads();
  for (auto* q : out_.grads()) g.push_back(q);
  return g;
}

std::size_t RecurrentDynamicsModel::macs_per_step() const {
  return cell_.macs_per_sample() + out_.macs_per_sample();
}

// --------------------------------------------------------------- factory

std::unique_ptr<DynamicsModel> make_model(ModelKind kind, int latent_dim,
                                          int action_dim, double dt,
                                          Rng& rng) {
  S2A_CHECK_MSG(latent_dim % 2 == 0, "latent dim must be even (complex modes)");
  switch (kind) {
    case ModelKind::kSpectralKoopman:
      return std::make_unique<SpectralKoopmanModel>(latent_dim / 2, action_dim,
                                                    dt, rng);
    case ModelKind::kDenseKoopman:
      return std::make_unique<DenseKoopmanModel>(latent_dim, action_dim, rng);
    case ModelKind::kMlp:
      return std::make_unique<MlpDynamicsModel>(latent_dim, action_dim, 64,
                                                rng);
    case ModelKind::kTransformer:
      return std::make_unique<TransformerDynamicsModel>(latent_dim, action_dim,
                                                        4, rng);
    case ModelKind::kRecurrent:
      return std::make_unique<RecurrentDynamicsModel>(latent_dim, action_dim,
                                                      32, rng);
  }
  S2A_CHECK_MSG(false, "unknown model kind");
  return nullptr;
}

}  // namespace s2a::koopman
