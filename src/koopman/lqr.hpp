// Discrete-time Linear Quadratic Regulator.
//
// RoboKoop (Sec. IV) derives optimal control from the learned spectral
// Koopman embedding by solving an LQR problem over the linear latent
// dynamics z' = A z + B a with quadratic cost zᵀQz + aᵀRa. The solver
// iterates the discrete Riccati recursion to the fixed point and returns
// the stationary gain K, so the runtime controller is a = -K z — a dot
// product, which is where the Fig. 5a MAC advantage comes from.
#pragma once

#include "nn/tensor.hpp"

namespace s2a::koopman {

struct LqrResult {
  nn::Tensor gain;        ///< K: [action_dim, state_dim]
  nn::Tensor cost_to_go;  ///< P: [state_dim, state_dim]
  bool converged = false;
  int iterations = 0;
};

/// Solves the infinite-horizon discrete LQR. `a`: [n,n], `b`: [n,m],
/// `q`: [n,n] (PSD), `r`: [m,m] (PD). Iterates up to `max_iterations`
/// Riccati steps, stopping when P changes by less than `tolerance`
/// (max-abs).
LqrResult solve_lqr(const nn::Tensor& a, const nn::Tensor& b,
                    const nn::Tensor& q, const nn::Tensor& r,
                    int max_iterations = 500, double tolerance = 1e-9);

/// Gauss–Jordan inverse of a small square matrix (throws CheckError if
/// singular). Exposed for tests.
nn::Tensor invert(const nn::Tensor& m);

}  // namespace s2a::koopman
