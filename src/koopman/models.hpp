// The dynamics-model zoo compared in Fig. 5: spectral Koopman (ours),
// dense Koopman, MLP, single-block Transformer, and GRU recurrent —
// structurally faithful, scaled-down versions of the models RoboKoop
// benchmarks against (CURL-style MLP [26], dense Koopman [27],
// Decision-Transformer-style [28,29], Dreamer-style recurrent [30]).
//
// All models share one interface: predict the next latent state from the
// current latent + action, optionally conditioned on a rollout context
// (token window for the Transformer, hidden state for the GRU). Contexts
// are value types so MPC can fork rollouts cheaply.
#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "koopman/spectral.hpp"
#include "nn/attention.hpp"
#include "nn/dense.hpp"
#include "nn/gru.hpp"
#include "nn/sequential.hpp"

namespace s2a::koopman {

enum class ModelKind {
  kSpectralKoopman = 0,
  kDenseKoopman,
  kMlp,
  kTransformer,
  kRecurrent,
};
const char* model_kind_name(ModelKind kind);
std::vector<ModelKind> all_model_kinds();

/// Value-type rollout context: window of past (z, a) pairs (Transformer)
/// and/or a recurrent hidden state (GRU). Stateless models ignore it.
struct RolloutContext {
  std::vector<std::pair<nn::Tensor, nn::Tensor>> window;
  nn::Tensor hidden;
};

class DynamicsModel {
 public:
  virtual ~DynamicsModel() = default;
  virtual ModelKind kind() const = 0;
  virtual int latent_dim() const = 0;

  virtual RolloutContext initial_context() const { return {}; }

  /// One-step prediction z' given z [1, 2m], a [1, da], and context.
  /// Caches activations for backward().
  virtual nn::Tensor forward(const nn::Tensor& z, const nn::Tensor& a,
                             const RolloutContext& ctx) = 0;
  /// Backward through the last forward(); returns dL/dz for the *current*
  /// step (context entries are treated as constants). Parameter gradients
  /// accumulate.
  virtual nn::Tensor backward(const nn::Tensor& grad_out) = 0;

  /// Context after observing (z, a) — call before predicting the step
  /// after this one.
  virtual RolloutContext advance(RolloutContext ctx, const nn::Tensor& z,
                                 const nn::Tensor& a) const {
    (void)z;
    (void)a;
    return ctx;
  }

  virtual std::vector<nn::Tensor*> params() = 0;
  virtual std::vector<nn::Tensor*> grads() = 0;
  void zero_grad() {
    for (auto* g : grads()) g->fill(0.0);
  }
  std::size_t param_count() {
    std::size_t n = 0;
    for (auto* p : params()) n += p->numel();
    return n;
  }
  /// MACs for one latent prediction step (Fig. 5a's "prediction" axis).
  virtual std::size_t macs_per_step() const = 0;
};

/// Wraps SpectralDynamics in the common interface.
class SpectralKoopmanModel : public DynamicsModel {
 public:
  SpectralKoopmanModel(int modes, int action_dim, double dt, Rng& rng)
      : dyn_(modes, action_dim, dt, rng) {}
  ModelKind kind() const override { return ModelKind::kSpectralKoopman; }
  int latent_dim() const override { return dyn_.latent_dim(); }
  nn::Tensor forward(const nn::Tensor& z, const nn::Tensor& a,
                     const RolloutContext&) override {
    return dyn_.step(z, a);
  }
  nn::Tensor backward(const nn::Tensor& grad_out) override {
    return dyn_.backward(grad_out);
  }
  std::vector<nn::Tensor*> params() override { return dyn_.params(); }
  std::vector<nn::Tensor*> grads() override { return dyn_.grads(); }
  std::size_t macs_per_step() const override { return dyn_.macs_per_step(); }
  SpectralDynamics& spectral() { return dyn_; }

 private:
  SpectralDynamics dyn_;
};

/// z' = A·z + B·a with a full (dense) learnable Koopman matrix [27].
class DenseKoopmanModel : public DynamicsModel {
 public:
  DenseKoopmanModel(int latent_dim, int action_dim, Rng& rng);
  ModelKind kind() const override { return ModelKind::kDenseKoopman; }
  int latent_dim() const override { return dim_; }
  nn::Tensor forward(const nn::Tensor& z, const nn::Tensor& a,
                     const RolloutContext&) override;
  nn::Tensor backward(const nn::Tensor& grad_out) override;
  std::vector<nn::Tensor*> params() override;
  std::vector<nn::Tensor*> grads() override;
  std::size_t macs_per_step() const override;
  /// Dense A for LQR-style analysis.
  const nn::Tensor& a_matrix() { return a_.weight(); }

 private:
  int dim_;
  nn::Dense a_, b_;
};

/// MLP over [z; a] (CURL-style latent dynamics [26]).
class MlpDynamicsModel : public DynamicsModel {
 public:
  MlpDynamicsModel(int latent_dim, int action_dim, int hidden, Rng& rng);
  ModelKind kind() const override { return ModelKind::kMlp; }
  int latent_dim() const override { return dim_; }
  nn::Tensor forward(const nn::Tensor& z, const nn::Tensor& a,
                     const RolloutContext&) override;
  nn::Tensor backward(const nn::Tensor& grad_out) override;
  std::vector<nn::Tensor*> params() override { return net_.params(); }
  std::vector<nn::Tensor*> grads() override { return net_.grads(); }
  std::size_t macs_per_step() const override;

 private:
  int dim_, action_dim_;
  nn::Sequential net_;
};

/// Single-head attention over a window of (z, a) tokens [28, 29].
class TransformerDynamicsModel : public DynamicsModel {
 public:
  TransformerDynamicsModel(int latent_dim, int action_dim, int window,
                           Rng& rng);
  ModelKind kind() const override { return ModelKind::kTransformer; }
  int latent_dim() const override { return dim_; }
  nn::Tensor forward(const nn::Tensor& z, const nn::Tensor& a,
                     const RolloutContext& ctx) override;
  nn::Tensor backward(const nn::Tensor& grad_out) override;
  RolloutContext advance(RolloutContext ctx, const nn::Tensor& z,
                         const nn::Tensor& a) const override;
  std::vector<nn::Tensor*> params() override;
  std::vector<nn::Tensor*> grads() override;
  std::size_t macs_per_step() const override;
  int window() const { return window_; }

 private:
  int dim_, action_dim_, window_;
  nn::Dense token_proj_;     // [z; a] -> d
  nn::SelfAttention attn_;   // over up to `window_` tokens
  nn::Dense out_;            // d -> 2m
  int last_tokens_ = 0;
};

/// GRU latent dynamics (Dreamer-style recurrent model [30]).
class RecurrentDynamicsModel : public DynamicsModel {
 public:
  RecurrentDynamicsModel(int latent_dim, int action_dim, int hidden, Rng& rng);
  ModelKind kind() const override { return ModelKind::kRecurrent; }
  int latent_dim() const override { return dim_; }
  RolloutContext initial_context() const override;
  nn::Tensor forward(const nn::Tensor& z, const nn::Tensor& a,
                     const RolloutContext& ctx) override;
  nn::Tensor backward(const nn::Tensor& grad_out) override;
  RolloutContext advance(RolloutContext ctx, const nn::Tensor& z,
                         const nn::Tensor& a) const override;
  std::vector<nn::Tensor*> params() override;
  std::vector<nn::Tensor*> grads() override;
  std::size_t macs_per_step() const override;

 private:
  nn::Tensor concat_za(const nn::Tensor& z, const nn::Tensor& a) const;
  int dim_, action_dim_, hidden_;
  mutable nn::GRUCell cell_;  // advance() steps it for inference
  nn::Dense out_;
};

/// Factory used by the training harness and benches.
std::unique_ptr<DynamicsModel> make_model(ModelKind kind, int latent_dim,
                                          int action_dim, double dt, Rng& rng);

}  // namespace s2a::koopman
