// Training and control harness for the RoboKoop comparison (Sec. IV,
// Fig. 5): every dynamics model gets the same visual encoder (retina →
// latent) and linear state decoder; the spectral Koopman model is
// additionally trained with a contrastive (InfoNCE) loss on augmented
// views — the contrastive spectral Koopman encoder of Fig. 4 — and
// controlled by LQR on its linear latent dynamics, while the baselines
// use sampling-based MPC through their learned models.
#pragma once

#include <array>
#include <memory>
#include <vector>

#include "koopman/lqr.hpp"
#include "koopman/models.hpp"
#include "nn/optimizer.hpp"
#include "nn/sequential.hpp"
#include "sim/cartpole.hpp"

namespace s2a::koopman {

/// One environment transition with the rendered observation and the
/// ground-truth state (used only to supervise the linear state decoder,
/// mirroring RoboKoop's access to reward/goal signals).
struct Transition {
  std::vector<double> obs, next_obs;
  double action = 0.0;
  std::array<double, 4> state{}, next_state{};
  bool episode_start = false;
};

/// Concatenates two consecutive retina frames into one observation
/// (velocities are unobservable from a single frame).
std::vector<double> stack_frames(const std::vector<double>& prev,
                                 const std::vector<double>& cur);

/// Rolls `episodes` exploration episodes (random actions with a weak
/// stabilizing bias so data covers the near-upright region). Observations
/// are 2-frame stacks of 2-strip retinas (4·retina_width values).
std::vector<Transition> collect_transitions(int episodes, int max_steps,
                                            int retina_width,
                                            const sim::CartPoleConfig& env_cfg,
                                            Rng& rng);

struct AgentConfig {
  int retina_width = 32;
  int latent_dim = 16;  ///< 8 complex Koopman modes
  int encoder_hidden = 64;
  double dt = 0.02;
  int train_epochs = 25;
  int batch_size = 32;
  double lr = 1e-3;
  int mpc_samples = 48;
  int mpc_horizon = 8;
  double contrastive_weight = 0.2;
  double contrastive_temperature = 0.2;
  double decode_weight = 1.0;
  std::array<double, 4> state_cost{1.0, 0.1, 10.0, 0.2};
  double action_cost = 0.1;
};

class ControlAgent {
 public:
  ControlAgent(ModelKind kind, AgentConfig config, Rng& rng);

  /// Joint encoder/decoder/dynamics training; returns final-epoch mean
  /// prediction loss.
  double train(const std::vector<Transition>& data, Rng& rng);

  /// Clears rollout context at episode boundaries.
  void reset_episode();
  /// Control decision in [-1, 1] from the visual observation.
  double act(const std::vector<double>& retina, Rng& rng);

  ModelKind kind() const { return model_->kind(); }
  int retina_width() const { return cfg_.retina_width; }
  /// MACs per control decision (encoder + controller, including MPC
  /// rollouts where applicable) — the Fig. 5a "control" series.
  std::size_t control_macs() const;
  /// MACs per one-step latent prediction — the Fig. 5a "prediction" series.
  std::size_t prediction_macs() const { return model_->macs_per_step(); }
  std::size_t param_count();

  DynamicsModel& model() { return *model_; }
  /// The LQR gain (spectral Koopman only; empty otherwise).
  const nn::Tensor& lqr_gain() const { return lqr_gain_; }

 private:
  nn::Tensor encode(const std::vector<double>& obs);
  nn::Tensor decode_state(const nn::Tensor& z) { return decoder_.forward(z); }
  std::vector<double> augment(const std::vector<double>& obs, Rng& rng) const;
  void train_batch_stateless(const std::vector<const Transition*>& batch,
                             double& pred_loss, Rng& rng);
  void train_window_stateful(const std::vector<Transition>& data,
                             std::size_t end_index, double& pred_loss);
  void prepare_controller();
  double act_lqr(const nn::Tensor& z);
  double act_mpc(const nn::Tensor& z, Rng& rng);

  AgentConfig cfg_;
  nn::Sequential encoder_;
  nn::Dense decoder_;  // latent -> 4-d state, linear, no bias
  std::unique_ptr<DynamicsModel> model_;
  std::unique_ptr<nn::Adam> optimizer_;
  nn::Tensor lqr_gain_;
  nn::Tensor z_goal_;
  RolloutContext ctx_;
};

/// Mean episode return (balanced steps, max `max_steps`) under external
/// force disturbances with per-step probability `disturb_prob` (Fig. 5b).
double evaluate_agent(ControlAgent& agent, double disturb_prob, int episodes,
                      int max_steps, const sim::CartPoleConfig& env_cfg,
                      Rng& rng);

}  // namespace s2a::koopman
