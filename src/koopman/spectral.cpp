#include "koopman/spectral.hpp"

#include <cmath>

#include "util/check.hpp"

namespace s2a::koopman {

SpectralDynamics::SpectralDynamics(int modes, int action_dim, double dt,
                                   Rng& rng)
    : m_(modes),
      action_dim_(action_dim),
      dt_(dt),
      mu_({modes}),
      omega_({modes}),
      gmu_({modes}),
      gomega_({modes}),
      b_(action_dim, 2 * modes, rng, /*bias=*/false) {
  S2A_CHECK(modes > 0 && action_dim > 0 && dt > 0.0);
  for (int i = 0; i < m_; ++i) {
    mu_[static_cast<std::size_t>(i)] = -0.1 + rng.normal(0.0, 0.05);
    // Spread initial frequencies so modes differentiate.
    omega_[static_cast<std::size_t>(i)] =
        (i + 1) * 0.5 + rng.normal(0.0, 0.1);
  }
}

nn::Tensor SpectralDynamics::step(const nn::Tensor& z, const nn::Tensor& a) {
  S2A_CHECK(z.shape().size() == 2 && z.dim(1) == 2 * m_);
  S2A_CHECK(a.shape().size() == 2 && a.dim(1) == action_dim_ &&
            a.dim(0) == z.dim(0));
  last_z_ = z;
  last_a_ = a;

  nn::Tensor out = b_.forward(a);  // control injection
  const int n = z.dim(0);
  for (int i = 0; i < m_; ++i) {
    const double g = std::exp(mu_[static_cast<std::size_t>(i)] * dt_);
    const double c = std::cos(omega_[static_cast<std::size_t>(i)] * dt_);
    const double s = std::sin(omega_[static_cast<std::size_t>(i)] * dt_);
    for (int b = 0; b < n; ++b) {
      const std::size_t re = static_cast<std::size_t>(b) * 2 * m_ + 2 * i;
      const std::size_t im = re + 1;
      out[re] += g * (c * z[re] - s * z[im]);
      out[im] += g * (s * z[re] + c * z[im]);
    }
  }
  return out;
}

nn::Tensor SpectralDynamics::backward(const nn::Tensor& grad_out) {
  S2A_CHECK(!last_z_.empty());
  S2A_CHECK(grad_out.same_shape(last_z_));
  // Control path (also accumulates B's gradient).
  b_.backward(grad_out);

  nn::Tensor dz(last_z_.shape());
  const int n = last_z_.dim(0);
  for (int i = 0; i < m_; ++i) {
    const double mu = mu_[static_cast<std::size_t>(i)];
    const double om = omega_[static_cast<std::size_t>(i)];
    const double g = std::exp(mu * dt_);
    const double c = std::cos(om * dt_);
    const double s = std::sin(om * dt_);
    double dmu = 0.0, domega = 0.0;
    for (int b = 0; b < n; ++b) {
      const std::size_t re = static_cast<std::size_t>(b) * 2 * m_ + 2 * i;
      const std::size_t im = re + 1;
      const double zr = last_z_[re], zi = last_z_[im];
      const double gr = grad_out[re], gi = grad_out[im];
      // out_re = g(c·zr − s·zi); out_im = g(s·zr + c·zi)
      dz[re] = g * (c * gr + s * gi);
      dz[im] = g * (-s * gr + c * gi);
      // ∂/∂µ = dt · out (same expression × dt)
      dmu += dt_ * (gr * g * (c * zr - s * zi) + gi * g * (s * zr + c * zi));
      // ∂/∂ω: c→−s·dt, s→c·dt
      domega += dt_ * (gr * g * (-s * zr - c * zi) + gi * g * (c * zr - s * zi));
    }
    gmu_[static_cast<std::size_t>(i)] += dmu;
    gomega_[static_cast<std::size_t>(i)] += domega;
  }
  return dz;
}

nn::Tensor SpectralDynamics::a_matrix() const {
  nn::Tensor a({2 * m_, 2 * m_});
  for (int i = 0; i < m_; ++i) {
    const double g = std::exp(mu_[static_cast<std::size_t>(i)] * dt_);
    const double c = std::cos(omega_[static_cast<std::size_t>(i)] * dt_);
    const double s = std::sin(omega_[static_cast<std::size_t>(i)] * dt_);
    a.at(2 * i, 2 * i) = g * c;
    a.at(2 * i, 2 * i + 1) = -g * s;
    a.at(2 * i + 1, 2 * i) = g * s;
    a.at(2 * i + 1, 2 * i + 1) = g * c;
  }
  return a;
}

std::vector<nn::Tensor*> SpectralDynamics::params() {
  auto p = b_.params();
  p.push_back(&mu_);
  p.push_back(&omega_);
  return p;
}

std::vector<nn::Tensor*> SpectralDynamics::grads() {
  auto g = b_.grads();
  g.push_back(&gmu_);
  g.push_back(&gomega_);
  return g;
}

void SpectralDynamics::zero_grad() {
  for (auto* g : grads()) g->fill(0.0);
}

}  // namespace s2a::koopman
