#include "koopman/agent.hpp"

#include <algorithm>
#include <cmath>

#include "nn/activations.hpp"
#include "nn/dense.hpp"
#include "nn/loss.hpp"
#include "util/check.hpp"

namespace s2a::koopman {

std::vector<double> stack_frames(const std::vector<double>& prev,
                                 const std::vector<double>& cur) {
  std::vector<double> out;
  out.reserve(prev.size() + cur.size());
  out.insert(out.end(), prev.begin(), prev.end());
  out.insert(out.end(), cur.begin(), cur.end());
  return out;
}

std::vector<Transition> collect_transitions(int episodes, int max_steps,
                                            int retina_width,
                                            const sim::CartPoleConfig& env_cfg,
                                            Rng& rng) {
  std::vector<Transition> data;
  for (int ep = 0; ep < episodes; ++ep) {
    sim::CartPole env(env_cfg);
    env.reset(rng);
    bool first = true;
    std::vector<double> prev = env.render_retina(retina_width);
    for (int t = 0; t < max_steps && !env.failed(); ++t) {
      Transition tr;
      tr.episode_start = first;
      first = false;
      const std::vector<double> cur = env.render_retina(retina_width);
      // Velocities are unobservable from one frame: observations stack the
      // previous and current retinas, as pixel-based RL does.
      tr.obs = stack_frames(prev, cur);
      const auto s = env.state_vector();
      std::copy(s.begin(), s.end(), tr.state.begin());
      // Exploration: random action with a weak stabilizing bias so
      // trajectories stay near the upright manifold long enough to cover it.
      tr.action = std::clamp(
          rng.uniform(-1.0, 1.0) + 0.5 * env.state().theta * 10.0, -1.0, 1.0);
      env.step(tr.action, rng);
      const std::vector<double> next = env.render_retina(retina_width);
      tr.next_obs = stack_frames(cur, next);
      const auto sn = env.state_vector();
      std::copy(sn.begin(), sn.end(), tr.next_state.begin());
      prev = cur;
      data.push_back(std::move(tr));
    }
  }
  return data;
}

ControlAgent::ControlAgent(ModelKind kind, AgentConfig config, Rng& rng)
    : cfg_(config),
      decoder_(config.latent_dim, 4, rng, /*bias=*/false) {
  // Observation = 2 stacked frames × 2 retina strips of `retina_width`.
  encoder_.emplace<nn::Dense>(4 * cfg_.retina_width, cfg_.encoder_hidden, rng);
  encoder_.emplace<nn::ReLU>();
  encoder_.emplace<nn::Dense>(cfg_.encoder_hidden, cfg_.latent_dim, rng);
  model_ = make_model(kind, cfg_.latent_dim, 1, cfg_.dt, rng);

  optimizer_ = std::make_unique<nn::Adam>(cfg_.lr);
  auto params = encoder_.params();
  auto grads = encoder_.grads();
  for (auto* p : decoder_.params()) params.push_back(p);
  for (auto* g : decoder_.grads()) grads.push_back(g);
  for (auto* p : model_->params()) params.push_back(p);
  for (auto* g : model_->grads()) grads.push_back(g);
  optimizer_->attach(std::move(params), std::move(grads));
  ctx_ = model_->initial_context();
}

nn::Tensor ControlAgent::encode(const std::vector<double>& obs) {
  S2A_CHECK_MSG(static_cast<int>(obs.size()) == 4 * cfg_.retina_width,
                "expected a 2-frame stack of 2-strip retinas");
  nn::Tensor x({1, 4 * cfg_.retina_width},
               std::vector<double>(obs.begin(), obs.end()));
  return encoder_.forward(x);
}

std::vector<double> ControlAgent::augment(const std::vector<double>& obs,
                                          Rng& rng) const {
  // Circular pixel shift within each retina strip (the 1-D analogue of
  // random crop; one shared shift keeps strips consistent) plus noise.
  const int w = cfg_.retina_width;
  const int shift = rng.uniform_int(-2, 2);
  std::vector<double> out(obs.size());
  const int strips = static_cast<int>(obs.size()) / w;
  for (int sidx = 0; sidx < strips; ++sidx)
    for (int i = 0; i < w; ++i)
      out[static_cast<std::size_t>(sidx) * w + i] =
          obs[static_cast<std::size_t>(sidx) * w +
              static_cast<std::size_t>(((i + shift) % w + w) % w)] +
          rng.normal(0.0, 0.01);
  return out;
}

void ControlAgent::train_batch_stateless(
    const std::vector<const Transition*>& batch, double& pred_loss, Rng& rng) {
  const int n = static_cast<int>(batch.size());
  const int w = 4 * cfg_.retina_width;  // 2 frames × 2 strips
  const int m = cfg_.latent_dim;

  auto to_tensor = [&](auto getter) {
    nn::Tensor t({n, w});
    for (int i = 0; i < n; ++i) {
      const auto& v = getter(*batch[static_cast<std::size_t>(i)]);
      for (int j = 0; j < w; ++j) t.at(i, j) = v[static_cast<std::size_t>(j)];
    }
    return t;
  };

  optimizer_->zero_grad();

  // Targets first (the encoder caches its last input for backward).
  const nn::Tensor z_next =
      encoder_.forward(to_tensor([](const Transition& t) -> const std::vector<double>& {
        return t.next_obs;
      }));

  const nn::Tensor z =
      encoder_.forward(to_tensor([](const Transition& t) -> const std::vector<double>& {
        return t.obs;
      }));

  nn::Tensor actions({n, 1});
  nn::Tensor states({n, 4});
  for (int i = 0; i < n; ++i) {
    actions.at(i, 0) = batch[static_cast<std::size_t>(i)]->action;
    for (int j = 0; j < 4; ++j)
      states.at(i, j) = batch[static_cast<std::size_t>(i)]->state[static_cast<std::size_t>(j)];
  }

  // Prediction loss through the dynamics model.
  const nn::Tensor zp = model_->forward(z, actions, RolloutContext{});
  auto pred = nn::mse_loss(zp, z_next);
  pred_loss += pred.value;
  nn::Tensor dz = model_->backward(pred.grad);

  // Linear state decoding loss.
  const nn::Tensor s_hat = decoder_.forward(z);
  auto dec = nn::mse_loss(s_hat, states);
  nn::Tensor ddec = dec.grad;
  for (std::size_t i = 0; i < ddec.numel(); ++i) ddec[i] *= cfg_.decode_weight;
  dz.add_scaled(decoder_.backward(ddec), 1.0);

  encoder_.backward(dz);

  // Contrastive InfoNCE on augmented views (spectral Koopman encoder only,
  // as in RoboKoop).
  if (model_->kind() == ModelKind::kSpectralKoopman &&
      cfg_.contrastive_weight > 0.0 && n > 1) {
    nn::Tensor keys({n, m});
    {
      nn::Tensor aug2({n, w});
      for (int i = 0; i < n; ++i) {
        const auto v = augment(batch[static_cast<std::size_t>(i)]->obs, rng);
        for (int j = 0; j < w; ++j) aug2.at(i, j) = v[static_cast<std::size_t>(j)];
      }
      keys = encoder_.forward(aug2);  // no-grad branch: grads not propagated
    }
    nn::Tensor aug1({n, w});
    for (int i = 0; i < n; ++i) {
      const auto v = augment(batch[static_cast<std::size_t>(i)]->obs, rng);
      for (int j = 0; j < w; ++j) aug1.at(i, j) = v[static_cast<std::size_t>(j)];
    }
    const nn::Tensor queries = encoder_.forward(aug1);

    // logits[i][j] = q_i · k_j / τ; labels are the diagonal.
    const double inv_tau = 1.0 / cfg_.contrastive_temperature;
    nn::Tensor logits = nn::matmul_nt(queries, keys);
    for (std::size_t i = 0; i < logits.numel(); ++i) logits[i] *= inv_tau;
    std::vector<int> labels(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) labels[static_cast<std::size_t>(i)] = i;
    auto nce = nn::softmax_cross_entropy(logits, labels);
    // dq = (softmax − onehot)·K / τ (per row, already averaged over batch).
    nn::Tensor dq = nn::matmul(nce.grad, keys);
    for (std::size_t i = 0; i < dq.numel(); ++i)
      dq[i] *= inv_tau * cfg_.contrastive_weight;
    encoder_.backward(dq);
  }

  nn::clip_grad_norm(model_->grads(), 5.0);
  optimizer_->step();
}

void ControlAgent::train_window_stateful(const std::vector<Transition>& data,
                                         std::size_t end_index,
                                         double& pred_loss) {
  // Build context from the preceding steps of the same episode.
  const int max_ctx = 3;
  std::size_t begin = end_index;
  while (begin > 0 && !data[begin].episode_start &&
         end_index - begin < static_cast<std::size_t>(max_ctx))
    --begin;

  RolloutContext ctx = model_->initial_context();
  for (std::size_t i = begin; i < end_index; ++i) {
    const nn::Tensor zi = encode(data[i].obs);
    nn::Tensor ai({1, 1});
    ai[0] = data[i].action;
    ctx = model_->advance(std::move(ctx), zi, ai);
  }

  const Transition& tr = data[end_index];
  optimizer_->zero_grad();
  const nn::Tensor z_next = encode(tr.next_obs);
  const nn::Tensor z = encode(tr.obs);
  nn::Tensor a({1, 1});
  a[0] = tr.action;

  const nn::Tensor zp = model_->forward(z, a, ctx);
  auto pred = nn::mse_loss(zp, z_next);
  pred_loss += pred.value;
  nn::Tensor dz = model_->backward(pred.grad);

  nn::Tensor states({1, 4});
  for (int j = 0; j < 4; ++j) states[static_cast<std::size_t>(j)] = tr.state[static_cast<std::size_t>(j)];
  const nn::Tensor s_hat = decoder_.forward(z);
  auto dec = nn::mse_loss(s_hat, states);
  nn::Tensor ddec = dec.grad;
  for (std::size_t i = 0; i < ddec.numel(); ++i) ddec[i] *= cfg_.decode_weight;
  dz.add_scaled(decoder_.backward(ddec), 1.0);

  encoder_.backward(dz);
  nn::clip_grad_norm(model_->grads(), 5.0);
  optimizer_->step();
}

double ControlAgent::train(const std::vector<Transition>& data, Rng& rng) {
  S2A_CHECK(!data.empty());
  const bool stateful = model_->kind() == ModelKind::kTransformer ||
                        model_->kind() == ModelKind::kRecurrent;
  double final_epoch_loss = 0.0;
  std::vector<int> order(data.size());
  for (std::size_t i = 0; i < data.size(); ++i) order[i] = static_cast<int>(i);

  for (int epoch = 0; epoch < cfg_.train_epochs; ++epoch) {
    rng.shuffle(order);
    double pred_loss = 0.0;
    int updates = 0;
    if (stateful) {
      // One window per update; cap work per epoch to keep epochs balanced
      // with the batched stateless path.
      const int per_epoch =
          std::max(8, static_cast<int>(data.size()) / cfg_.batch_size * 4);
      for (int u = 0; u < per_epoch; ++u) {
        train_window_stateful(
            data, static_cast<std::size_t>(order[static_cast<std::size_t>(u % order.size())]),
            pred_loss);
        ++updates;
      }
    } else {
      for (std::size_t start = 0; start + cfg_.batch_size <= data.size();
           start += cfg_.batch_size) {
        std::vector<const Transition*> batch;
        for (int i = 0; i < cfg_.batch_size; ++i)
          batch.push_back(&data[static_cast<std::size_t>(
              order[start + static_cast<std::size_t>(i)])]);
        train_batch_stateless(batch, pred_loss, rng);
        ++updates;
      }
    }
    final_epoch_loss = pred_loss / std::max(1, updates);
  }
  prepare_controller();
  return final_epoch_loss;
}

void ControlAgent::prepare_controller() {
  // Goal latent: the upright, centered configuration (a static stack).
  sim::CartPole goal_env;
  goal_env.set_state(sim::CartPoleState{});
  const auto goal_frame = goal_env.render_retina(cfg_.retina_width);
  z_goal_ = encode(stack_frames(goal_frame, goal_frame));

  if (model_->kind() != ModelKind::kSpectralKoopman) return;
  auto& spectral = static_cast<SpectralKoopmanModel&>(*model_).spectral();
  const nn::Tensor a = spectral.a_matrix();
  const nn::Tensor b = spectral.b_matrix();

  // Q = Cᵀ·diag(q)·C with C the linear state decoder: latent cost equals
  // decoded-state cost.
  const nn::Tensor& c = decoder_.weight();  // [4, 2m]
  nn::Tensor qc = c;
  for (int i = 0; i < 4; ++i)
    for (int j = 0; j < cfg_.latent_dim; ++j)
      qc.at(i, j) *= cfg_.state_cost[static_cast<std::size_t>(i)];
  const nn::Tensor q = nn::matmul_tn(c, qc);
  nn::Tensor r({1, 1});
  r[0] = cfg_.action_cost;

  const LqrResult res = solve_lqr(a, b, q, r);
  lqr_gain_ = res.gain;
}

void ControlAgent::reset_episode() { ctx_ = model_->initial_context(); }

double ControlAgent::act_lqr(const nn::Tensor& z) {
  S2A_CHECK_MSG(!lqr_gain_.empty(), "controller not prepared — train first");
  double u = 0.0;
  for (int i = 0; i < cfg_.latent_dim; ++i)
    u -= lqr_gain_.at(0, i) * (z[static_cast<std::size_t>(i)] -
                               z_goal_[static_cast<std::size_t>(i)]);
  return std::clamp(u, -1.0, 1.0);
}

double ControlAgent::act_mpc(const nn::Tensor& z, Rng& rng) {
  double best_cost = std::numeric_limits<double>::infinity();
  double best_first = 0.0;
  for (int s = 0; s < cfg_.mpc_samples; ++s) {
    RolloutContext ctx = ctx_;
    nn::Tensor zc = z;
    double cost = 0.0;
    double first = 0.0;
    for (int h = 0; h < cfg_.mpc_horizon; ++h) {
      const double a_val = rng.uniform(-1.0, 1.0);
      if (h == 0) first = a_val;
      nn::Tensor a({1, 1});
      a[0] = a_val;
      const nn::Tensor zn = model_->forward(zc, a, ctx);
      ctx = model_->advance(std::move(ctx), zc, a);
      const nn::Tensor s_hat = decoder_.forward(zn);
      for (int i = 0; i < 4; ++i)
        cost += cfg_.state_cost[static_cast<std::size_t>(i)] *
                s_hat[static_cast<std::size_t>(i)] *
                s_hat[static_cast<std::size_t>(i)];
      cost += cfg_.action_cost * a_val * a_val;
      zc = zn;
    }
    if (cost < best_cost) {
      best_cost = cost;
      best_first = first;
    }
  }
  return std::clamp(best_first, -1.0, 1.0);
}

double ControlAgent::act(const std::vector<double>& retina, Rng& rng) {
  const nn::Tensor z = encode(retina);
  double u;
  if (model_->kind() == ModelKind::kSpectralKoopman) {
    u = act_lqr(z);
  } else {
    u = act_mpc(z, rng);
    // The real (z, action) pair extends the live context.
    nn::Tensor a({1, 1});
    a[0] = u;
    ctx_ = model_->advance(std::move(ctx_), z, a);
  }
  return u;
}

std::size_t ControlAgent::control_macs() const {
  const std::size_t enc = encoder_.macs_per_sample();
  if (model_->kind() == ModelKind::kSpectralKoopman)
    return enc + static_cast<std::size_t>(cfg_.latent_dim);  // gain dot product
  const std::size_t per_step =
      model_->macs_per_step() + decoder_.macs_per_sample();
  return enc + static_cast<std::size_t>(cfg_.mpc_samples) *
                   static_cast<std::size_t>(cfg_.mpc_horizon) * per_step;
}

std::size_t ControlAgent::param_count() {
  return encoder_.param_count() + decoder_.param_count() +
         model_->param_count();
}

double evaluate_agent(ControlAgent& agent, double disturb_prob, int episodes,
                      int max_steps, const sim::CartPoleConfig& env_cfg,
                      Rng& rng) {
  sim::CartPoleConfig cfg = env_cfg;
  cfg.disturb_prob = disturb_prob;
  double total = 0.0;
  for (int ep = 0; ep < episodes; ++ep) {
    sim::CartPole env(cfg);
    env.reset(rng);
    agent.reset_episode();
    std::vector<double> prev = env.render_retina(agent.retina_width());
    int t = 0;
    while (t < max_steps && !env.failed()) {
      const std::vector<double> cur = env.render_retina(agent.retina_width());
      const double a = agent.act(stack_frames(prev, cur), rng);
      env.step(a, rng);
      prev = cur;
      ++t;
    }
    total += t;
  }
  return total / episodes;
}

}  // namespace s2a::koopman
