// Spectral Koopman latent dynamics (RoboKoop, Sec. IV / Fig. 4).
//
// The latent state holds m complex Koopman modes stored as 2m reals
// (real/imag interleaved per mode). The dynamics matrix is parameterized
// directly by learnable eigenvalues λ_i = µ_i + jω_i: one step advances
// each mode by the 2×2 rotation-scaling block
//   e^{µ·dt} [cos(ω·dt) −sin(ω·dt); sin(ω·dt) cos(ω·dt)],
// plus a learned control injection B·a. Compared to a dense Koopman
// matrix this is O(m) dynamics parameters instead of O(m²) — the source
// of the Fig. 5a compute advantage — and exposes the spectrum for
// stability-aware control.
#pragma once

#include <vector>

#include "nn/dense.hpp"
#include "nn/tensor.hpp"

namespace s2a::koopman {

class SpectralDynamics {
 public:
  /// `modes` complex modes (latent dim = 2·modes), `action_dim` inputs.
  /// Eigenvalues initialize to lightly damped (µ ≈ −0.1) with spread
  /// frequencies.
  SpectralDynamics(int modes, int action_dim, double dt, Rng& rng);

  /// One-step prediction: z' = A(µ,ω)·z + B·a for a batch.
  /// z: [N, 2m], a: [N, action_dim].
  nn::Tensor step(const nn::Tensor& z, const nn::Tensor& a);

  /// Backward through the last step(). Returns dL/dz; accumulates
  /// gradients on µ, ω, and B. (dL/da is not needed by any caller.)
  nn::Tensor backward(const nn::Tensor& grad_out);

  /// Dense [2m, 2m] realization of A — used by the LQR solver.
  nn::Tensor a_matrix() const;
  /// Control matrix B: [2m, action_dim].
  const nn::Tensor& b_matrix() const { return b_.weight(); }

  std::vector<nn::Tensor*> params();
  std::vector<nn::Tensor*> grads();
  void zero_grad();

  int modes() const { return m_; }
  int latent_dim() const { return 2 * m_; }
  /// Dynamics MACs for one prediction step: 4 per mode (2×2 block) plus
  /// the control injection — O(m), vs O(m²) for a dense Koopman matrix.
  std::size_t macs_per_step() const {
    return 4u * static_cast<std::size_t>(m_) +
           static_cast<std::size_t>(2 * m_) * action_dim_;
  }

  const nn::Tensor& mu() const { return mu_; }
  const nn::Tensor& omega() const { return omega_; }

 private:
  int m_, action_dim_;
  double dt_;
  nn::Tensor mu_, omega_, gmu_, gomega_;
  nn::Dense b_;  // action -> latent injection (no bias)
  nn::Tensor last_z_, last_a_;
};

}  // namespace s2a::koopman
