#include "koopman/lqr.hpp"

#include <cmath>

#include "util/check.hpp"

namespace s2a::koopman {

nn::Tensor invert(const nn::Tensor& m) {
  S2A_CHECK(m.shape().size() == 2 && m.dim(0) == m.dim(1));
  const int n = m.dim(0);
  // Augmented [M | I], reduced in place.
  nn::Tensor a = m;
  nn::Tensor inv({n, n});
  for (int i = 0; i < n; ++i) inv.at(i, i) = 1.0;

  for (int col = 0; col < n; ++col) {
    // Partial pivot.
    int pivot = col;
    for (int row = col + 1; row < n; ++row)
      if (std::abs(a.at(row, col)) > std::abs(a.at(pivot, col))) pivot = row;
    S2A_CHECK_MSG(std::abs(a.at(pivot, col)) > 1e-12, "singular matrix");
    if (pivot != col) {
      for (int j = 0; j < n; ++j) {
        std::swap(a.at(col, j), a.at(pivot, j));
        std::swap(inv.at(col, j), inv.at(pivot, j));
      }
    }
    const double d = a.at(col, col);
    for (int j = 0; j < n; ++j) {
      a.at(col, j) /= d;
      inv.at(col, j) /= d;
    }
    for (int row = 0; row < n; ++row) {
      if (row == col) continue;
      const double f = a.at(row, col);
      if (f == 0.0) continue;
      for (int j = 0; j < n; ++j) {
        a.at(row, j) -= f * a.at(col, j);
        inv.at(row, j) -= f * inv.at(col, j);
      }
    }
  }
  return inv;
}

LqrResult solve_lqr(const nn::Tensor& a, const nn::Tensor& b,
                    const nn::Tensor& q, const nn::Tensor& r,
                    int max_iterations, double tolerance) {
  const int n = a.dim(0);
  const int m = b.dim(1);
  S2A_CHECK(a.dim(1) == n && b.dim(0) == n);
  S2A_CHECK(q.dim(0) == n && q.dim(1) == n);
  S2A_CHECK(r.dim(0) == m && r.dim(1) == m);

  LqrResult res;
  nn::Tensor p = q;
  for (int it = 0; it < max_iterations; ++it) {
    // K = (R + BᵀPB)⁻¹ BᵀPA
    const nn::Tensor pb = nn::matmul(p, b);                 // [n,m]
    const nn::Tensor btpb = nn::matmul_tn(b, pb);           // [m,m]
    nn::Tensor gram = btpb;
    gram.add_scaled(r, 1.0);
    const nn::Tensor gram_inv = invert(gram);
    const nn::Tensor pa = nn::matmul(p, a);                 // [n,n]
    const nn::Tensor btpa = nn::matmul_tn(b, pa);           // [m,n]
    const nn::Tensor k = nn::matmul(gram_inv, btpa);        // [m,n]

    // P' = Q + Kᵀ R K + (A - BK)ᵀ P (A - BK)
    nn::Tensor acl = a;
    acl.add_scaled(nn::matmul(b, k), -1.0);
    nn::Tensor p_next = q;
    p_next.add_scaled(nn::matmul_tn(k, nn::matmul(r, k)), 1.0);
    p_next.add_scaled(nn::matmul_tn(acl, nn::matmul(p, acl)), 1.0);

    double delta = 0.0;
    for (std::size_t i = 0; i < p.numel(); ++i)
      delta = std::max(delta, std::abs(p_next[i] - p[i]));
    p = p_next;
    res.gain = k;
    res.iterations = it + 1;
    if (delta < tolerance) {
      res.converged = true;
      break;
    }
  }
  res.cost_to_go = p;
  return res;
}

}  // namespace s2a::koopman
