// Descriptive statistics and classification metrics shared by the
// experiment harnesses.
#pragma once

#include <cstddef>
#include <vector>

namespace s2a {

double mean(const std::vector<double>& v);
/// Unbiased sample variance (n-1 denominator); 0 for fewer than 2 samples.
double variance(const std::vector<double>& v);
double stddev(const std::vector<double>& v);
/// Linear-interpolated percentile, q in [0, 100].
double percentile(std::vector<double> v, double q);

/// Area under the ROC curve via the Mann–Whitney U statistic.
/// `scores` are anomaly scores; `labels` are 1 for positive (anomalous).
/// Ties contribute 0.5. Returns 0.5 if either class is empty.
double auc_roc(const std::vector<double>& scores,
               const std::vector<int>& labels);

/// Welford online mean/variance accumulator.
class RunningStat {
 public:
  void add(double x);
  std::size_t count() const { return n_; }
  double mean() const { return mean_; }
  /// Unbiased sample variance; 0 for fewer than 2 samples.
  double variance() const;
  double stddev() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

}  // namespace s2a
