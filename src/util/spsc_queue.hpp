// Bounded single-producer / single-consumer stage queue — the channel
// between the sense chain and the commit chain of the pipelined tick
// engine (src/core/pipeline.hpp).
//
// Design: a fixed-capacity ring guarded by one mutex and two condition
// variables. The bound is the point — it is the pipeline depth: a full
// queue back-pressures the producer (the sense chain can run at most
// `capacity` ticks ahead of the commit chain), so speculation after a
// SAFE_STOP latch is bounded and memory is O(capacity) regardless of run
// length. Ops are a handful of ns against stage bodies of µs–ms, so a
// lock-free ring would buy nothing but TSan anxiety.
//
// close() is the shutdown edge for both directions: a producer blocked
// in push() unblocks and sees false (consumer gave up — e.g. SAFE_STOP
// latched), and a consumer drains whatever was queued before pop()
// starts returning false (producer finished or died). Either side may
// close; the call is idempotent.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <utility>
#include <vector>

#include "util/check.hpp"

namespace s2a::util {

template <typename T>
class SpscQueue {
 public:
  explicit SpscQueue(std::size_t capacity) : capacity_(capacity) {
    S2A_CHECK(capacity_ >= 1);
    ring_.resize(capacity_);
  }

  SpscQueue(const SpscQueue&) = delete;
  SpscQueue& operator=(const SpscQueue&) = delete;

  /// Blocks while full. Returns false — dropping `value` — once closed.
  bool push(T value) {
    std::unique_lock<std::mutex> lk(mu_);
    not_full_.wait(lk, [&] { return closed_ || size_ < capacity_; });
    if (closed_) return false;
    ring_[(head_ + size_) % capacity_] = std::move(value);
    ++size_;
    lk.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Blocks while empty. Returns false once the queue is closed *and*
  /// drained — everything pushed before close() is still delivered.
  bool pop(T& out) {
    std::unique_lock<std::mutex> lk(mu_);
    not_empty_.wait(lk, [&] { return closed_ || size_ > 0; });
    if (size_ == 0) return false;  // closed and drained
    out = std::move(ring_[head_]);
    head_ = (head_ + 1) % capacity_;
    --size_;
    lk.unlock();
    not_full_.notify_one();
    return true;
  }

  /// Irreversibly shuts the channel (idempotent, either side may call):
  /// wakes a blocked producer (its push fails) and lets the consumer
  /// drain what was already queued.
  void close() {
    {
      std::lock_guard<std::mutex> lk(mu_);
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lk(mu_);
    return closed_;
  }

  /// Instantaneous occupancy — for queue-depth gauges; racy by nature.
  std::size_t depth() const {
    std::lock_guard<std::mutex> lk(mu_);
    return size_;
  }

  std::size_t capacity() const { return capacity_; }

 private:
  const std::size_t capacity_;
  std::vector<T> ring_;
  mutable std::mutex mu_;
  std::condition_variable not_full_, not_empty_;
  std::size_t head_ = 0, size_ = 0;
  bool closed_ = false;
};

}  // namespace s2a::util
