#include "util/geometry.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace s2a {

Vec3 Vec3::normalized() const {
  const double n = norm();
  if (n == 0.0) return {0.0, 0.0, 0.0};
  return {x / n, y / n, z / n};
}

bool Box3::contains(const Vec3& p) const {
  const Vec3 lo = min(), hi = max();
  return p.x >= lo.x && p.x <= hi.x && p.y >= lo.y && p.y <= hi.y &&
         p.z >= lo.z && p.z <= hi.z;
}

double iou_bev(const Box3& a, const Box3& b) {
  const double ax0 = a.center.x - a.size.x / 2, ax1 = a.center.x + a.size.x / 2;
  const double ay0 = a.center.y - a.size.y / 2, ay1 = a.center.y + a.size.y / 2;
  const double bx0 = b.center.x - b.size.x / 2, bx1 = b.center.x + b.size.x / 2;
  const double by0 = b.center.y - b.size.y / 2, by1 = b.center.y + b.size.y / 2;

  const double ix = std::max(0.0, std::min(ax1, bx1) - std::max(ax0, bx0));
  const double iy = std::max(0.0, std::min(ay1, by1) - std::max(ay0, by0));
  const double inter = ix * iy;
  const double area_a = (ax1 - ax0) * (ay1 - ay0);
  const double area_b = (bx1 - bx0) * (by1 - by0);
  const double uni = area_a + area_b - inter;
  return uni > 0.0 ? inter / uni : 0.0;
}

double ray_box_intersect(const Vec3& origin, const Vec3& dir, const Box3& box) {
  const Vec3 lo = box.min(), hi = box.max();
  double tmin = 0.0;
  double tmax = std::numeric_limits<double>::infinity();

  const double o[3] = {origin.x, origin.y, origin.z};
  const double d[3] = {dir.x, dir.y, dir.z};
  const double l[3] = {lo.x, lo.y, lo.z};
  const double h[3] = {hi.x, hi.y, hi.z};

  for (int i = 0; i < 3; ++i) {
    if (d[i] == 0.0) {
      if (o[i] < l[i] || o[i] > h[i]) return -1.0;
      continue;
    }
    double t0 = (l[i] - o[i]) / d[i];
    double t1 = (h[i] - o[i]) / d[i];
    if (t0 > t1) std::swap(t0, t1);
    tmin = std::max(tmin, t0);
    tmax = std::min(tmax, t1);
    if (tmin > tmax) return -1.0;
  }
  return tmin > 0.0 ? tmin : (tmax > 0.0 ? tmax : -1.0);
}

double average_precision(std::vector<std::pair<double, bool>> scored_matches,
                         int num_ground_truth, int recall_positions) {
  S2A_CHECK(recall_positions > 1);
  if (num_ground_truth <= 0) return 0.0;
  if (scored_matches.empty()) return 0.0;

  std::sort(scored_matches.begin(), scored_matches.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });

  // Precision/recall after each detection, score-descending.
  std::vector<double> precision, recall;
  int tp = 0, fp = 0;
  precision.reserve(scored_matches.size());
  recall.reserve(scored_matches.size());
  for (const auto& [score, matched] : scored_matches) {
    (void)score;
    matched ? ++tp : ++fp;
    precision.push_back(static_cast<double>(tp) / (tp + fp));
    recall.push_back(static_cast<double>(tp) / num_ground_truth);
  }

  // Interpolated precision: running max from the right.
  for (std::size_t i = precision.size(); i-- > 1;)
    precision[i - 1] = std::max(precision[i - 1], precision[i]);

  // Sample at R equally spaced recall positions (KITTI R40 skips recall 0).
  double ap = 0.0;
  int used = 0;
  for (int k = 1; k <= recall_positions; ++k) {
    const double r = static_cast<double>(k) / recall_positions;
    // First index whose recall >= r.
    const auto it = std::lower_bound(recall.begin(), recall.end(), r);
    if (it == recall.end()) {
      // Precision is 0 past the maximum achieved recall.
      ++used;
      continue;
    }
    ap += precision[static_cast<std::size_t>(it - recall.begin())];
    ++used;
  }
  return used > 0 ? ap / used : 0.0;
}

}  // namespace s2a
