// Deterministic, splittable random number generation.
//
// Every stochastic component of the library takes an explicit Rng (or a
// seed), never a global generator, so each experiment is reproducible and
// sub-streams can be spawned for independent components (clients, agents,
// dataset shards) without correlating their draws.
#pragma once

#include <cstdint>
#include <vector>

namespace s2a {

/// xoshiro256++ generator with splitmix64 seeding.
///
/// Self-contained so that draws are identical across platforms and standard
/// library implementations (std::*_distribution is not portable).
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  // Satisfy UniformRandomBitGenerator so Rng can drive std::shuffle etc.
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }
  result_type operator()() { return next_u64(); }

  /// Uniform double in [0, 1).
  double uniform();
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);
  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  int uniform_int(int lo, int hi);
  /// Standard normal via Box–Muller (cached second value).
  double normal();
  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev);
  /// True with probability p (clamped to [0,1]).
  bool bernoulli(double p);

  /// Fisher–Yates shuffle of an index-addressable container.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j =
          static_cast<std::size_t>(uniform_int(0, static_cast<int>(i) - 1));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Sample k distinct indices from [0, n) without replacement.
  std::vector<int> sample_without_replacement(int n, int k);

  /// Spawn an independent generator; successive spawns are decorrelated.
  Rng spawn();

 private:
  std::uint64_t s_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
  std::uint64_t spawn_counter_ = 0;
};

}  // namespace s2a
