#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <memory>

#include "util/check.hpp"

namespace s2a::util {

namespace {

thread_local bool tl_on_worker_thread = false;

int env_threads() {
  const char* s = std::getenv("S2A_THREADS");
  if (s == nullptr || *s == '\0') return 0;
  char* end = nullptr;
  const long v = std::strtol(s, &end, 10);
  if (end == s || *end != '\0') return 0;  // not a number: ignore
  if (v < 1) return 0;
  return v > 256 ? 256 : static_cast<int>(v);
}

int resolve_threads(int requested) {
  if (requested > 0) return requested > 256 ? 256 : requested;
  const int env = env_threads();
  if (env > 0) return env;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

}  // namespace

// Shared state of one parallel_for call. Helpers hold it via shared_ptr
// so a helper task that is dequeued after the loop already finished
// touches only the atomics (it sees next >= chunks and exits).
struct ThreadPool::Bulk {
  std::size_t begin = 0;
  std::size_t grain = 1;
  std::size_t chunks = 0;
  std::size_t end = 0;
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> finished{0};
  std::atomic<bool> cancelled{false};
  std::mutex mu;
  std::condition_variable done;
  std::exception_ptr error;  // first captured exception (guarded by mu)
};

bool ThreadPool::on_worker_thread() { return tl_on_worker_thread; }

ThreadPool::ThreadPool(int threads) : threads_(resolve_threads(threads)) {
  workers_.reserve(static_cast<std::size_t>(threads_ - 1));
  for (int i = 0; i < threads_ - 1; ++i)
    workers_.emplace_back([this] { worker_main(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_main() {
  tl_on_worker_thread = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_.wait(lk, [&] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ and nothing left to drain
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

std::size_t ThreadPool::num_chunks(std::size_t begin, std::size_t end,
                                   std::size_t grain) {
  if (end <= begin) return 0;
  const std::size_t n = end - begin;
  const std::size_t g = grain == 0 ? 1 : grain;
  return (n + g - 1) / g;
}

void ThreadPool::run_bulk(Bulk& bulk, const ChunkFn* fn) {
  // `fn` lives on the caller's frame. It is only dereferenced for chunks
  // claimed before completion — the caller cannot return (and invalidate
  // it) until `finished == chunks`, and a helper dequeued after that
  // exits at the `c >= chunks` check without touching it.
  for (;;) {
    const std::size_t c = bulk.next.fetch_add(1, std::memory_order_relaxed);
    if (c >= bulk.chunks) return;
    if (!bulk.cancelled.load(std::memory_order_relaxed)) {
      const std::size_t lo = bulk.begin + c * bulk.grain;
      std::size_t hi = lo + bulk.grain;
      if (hi > bulk.end) hi = bulk.end;
      try {
        (*fn)(lo, hi, c);
      } catch (...) {
        std::lock_guard<std::mutex> lk(bulk.mu);
        if (bulk.error == nullptr) bulk.error = std::current_exception();
        bulk.cancelled.store(true, std::memory_order_relaxed);
      }
    }
    // acq_rel: the caller's acquire load of `finished` must observe every
    // side effect of every chunk, not just the last one.
    if (bulk.finished.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        bulk.chunks) {
      std::lock_guard<std::mutex> lk(bulk.mu);
      bulk.done.notify_all();
    }
  }
}

void ThreadPool::parallel_for_chunks(std::size_t begin, std::size_t end,
                                     std::size_t grain, const ChunkFn& fn) {
  S2A_CHECK(grain >= 1);
  const std::size_t chunks = num_chunks(begin, end, grain);
  if (chunks == 0) return;

  // Inline execution: single-threaded pool, a single chunk, or a nested
  // call from inside a pool task (running nested loops inline is what
  // makes nested submission deadlock-free).
  if (threads_ <= 1 || chunks == 1 || tl_on_worker_thread) {
    for (std::size_t c = 0; c < chunks; ++c) {
      const std::size_t lo = begin + c * grain;
      const std::size_t hi = lo + grain < end ? lo + grain : end;
      fn(lo, hi, c);  // exceptions propagate directly
    }
    return;
  }

  auto bulk = std::make_shared<Bulk>();
  bulk->begin = begin;
  bulk->end = end;
  bulk->grain = grain;
  bulk->chunks = chunks;

  // Enqueue at most workers (= size-1) helpers; the caller claims chunks
  // too, so no task ever just waits.
  const std::size_t helpers =
      std::min<std::size_t>(workers_.size(), chunks - 1);
  const ChunkFn* fn_ptr = &fn;
  {
    std::lock_guard<std::mutex> lk(mu_);
    for (std::size_t i = 0; i < helpers; ++i)
      queue_.emplace_back([this, bulk, fn_ptr] { run_bulk(*bulk, fn_ptr); });
  }
  if (helpers == 1)
    cv_.notify_one();
  else if (helpers > 1)
    cv_.notify_all();

  run_bulk(*bulk, fn_ptr);

  {
    std::unique_lock<std::mutex> lk(bulk->mu);
    bulk->done.wait(lk, [&] {
      return bulk->finished.load(std::memory_order_acquire) == bulk->chunks;
    });
  }
  if (bulk->error) std::rethrow_exception(bulk->error);
}

void ThreadPool::post(std::function<void()> task) {
  S2A_CHECK(!workers_.empty());
  {
    std::lock_guard<std::mutex> lk(mu_);
    queue_.emplace_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              std::size_t grain, const IndexFn& fn) {
  parallel_for_chunks(begin, end, grain,
                      [&fn](std::size_t lo, std::size_t hi, std::size_t) {
                        for (std::size_t i = lo; i < hi; ++i) fn(i);
                      });
}

namespace {
std::mutex g_pool_mu;
std::unique_ptr<ThreadPool> g_pool;
}  // namespace

ThreadPool& global_pool() {
  std::lock_guard<std::mutex> lk(g_pool_mu);
  if (!g_pool) g_pool = std::make_unique<ThreadPool>();
  return *g_pool;
}

std::size_t effective_parallelism() {
  const std::size_t slots = static_cast<std::size_t>(global_pool().size());
  const char* force = std::getenv("S2A_FORCE_PARALLEL");
  if (force != nullptr && *force == '1') return slots;
  const unsigned hw = std::thread::hardware_concurrency();
  const std::size_t cores = hw > 0 ? static_cast<std::size_t>(hw) : 1;
  return std::min(slots, cores);
}

void set_global_threads(int threads) {
  std::unique_ptr<ThreadPool> fresh = std::make_unique<ThreadPool>(threads);
  std::lock_guard<std::mutex> lk(g_pool_mu);
  g_pool = std::move(fresh);  // old pool joins its workers here
}

}  // namespace s2a::util
