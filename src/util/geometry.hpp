// Small 3-D geometry vocabulary shared by the scene generator, the LiDAR
// simulator, and the detectors: vectors, axis-aligned boxes, and the
// bird's-eye-view IoU used for detection AP.
#pragma once

#include <cmath>
#include <vector>

namespace s2a {

struct Vec3 {
  double x = 0.0, y = 0.0, z = 0.0;

  Vec3 operator+(const Vec3& o) const { return {x + o.x, y + o.y, z + o.z}; }
  Vec3 operator-(const Vec3& o) const { return {x - o.x, y - o.y, z - o.z}; }
  Vec3 operator*(double s) const { return {x * s, y * s, z * s}; }
  double dot(const Vec3& o) const { return x * o.x + y * o.y + z * o.z; }
  double norm() const { return std::sqrt(dot(*this)); }
  /// Range in the horizontal (x, y) plane — the quantity LiDAR pulse
  /// energy scales with.
  double range_xy() const { return std::sqrt(x * x + y * y); }
  Vec3 normalized() const;
};

/// Axis-aligned 3-D box, stored as center + full extents.
struct Box3 {
  Vec3 center;
  Vec3 size;  ///< full width/depth/height (not half-extents)

  Vec3 min() const { return center - size * 0.5; }
  Vec3 max() const { return center + size * 0.5; }
  bool contains(const Vec3& p) const;
  double volume() const { return size.x * size.y * size.z; }
};

/// Intersection-over-union of the two boxes' bird's-eye-view footprints
/// (x–y rectangles). This is the overlap criterion KITTI-style AP uses for
/// matching at moderate difficulty.
double iou_bev(const Box3& a, const Box3& b);

/// First intersection of ray origin + t*dir (t > 0) with the box, or a
/// negative value if the ray misses. `dir` need not be normalized; the
/// returned t is in units of |dir|.
double ray_box_intersect(const Vec3& origin, const Vec3& dir, const Box3& box);

/// Average-precision computation over scored detections vs ground truth.
/// Each detection is (score, matched) after greedy IoU matching; this
/// integrates the precision-recall curve with the standard all-points
/// interpolation used by KITTI's 40-recall-position metric.
double average_precision(std::vector<std::pair<double, bool>> scored_matches,
                         int num_ground_truth, int recall_positions = 40);

}  // namespace s2a
