// Finite-value boundary checks (docs/RESILIENCE.md).
//
// The sensing-to-action loop and the federated aggregator validate every
// payload that crosses a trust boundary (sensor → loop, client delta →
// server) with these helpers: a single NaN/Inf anywhere in an
// observation or an update quarantines the whole payload instead of
// silently poisoning downstream state. Header-only so the checks inline
// into the boundary code.
#pragma once

#include <cmath>
#include <cstddef>
#include <vector>

namespace s2a::util {

/// True when every element of [data, data + n) is finite (no NaN/Inf).
/// An empty range is vacuously finite.
inline bool all_finite(const double* data, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i)
    if (!std::isfinite(data[i])) return false;
  return true;
}

inline bool all_finite(const std::vector<double>& v) {
  return all_finite(v.data(), v.size());
}

}  // namespace s2a::util
