#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "util/check.hpp"

namespace s2a {

void Table::set_header(std::vector<std::string> header) {
  header_ = std::move(header);
}

void Table::add_row(std::vector<std::string> row) {
  if (!header_.empty())
    S2A_CHECK_MSG(row.size() == header_.size(),
                  "row has " << row.size() << " cells, header has "
                             << header_.size());
  rows_.push_back(std::move(row));
}

std::string Table::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size(), 0);
  auto widen = [&](const std::vector<std::string>& row) {
    if (row.size() > width.size()) width.resize(row.size(), 0);
    for (std::size_t i = 0; i < row.size(); ++i)
      width[i] = std::max(width[i], row[i].size());
  };
  widen(header_);
  for (const auto& r : rows_) widen(r);

  std::size_t total = 0;
  for (std::size_t w : width) total += w + 3;
  if (total > 0) total -= 3;

  if (!title_.empty()) os << title_ << "\n";
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      os << std::left << std::setw(static_cast<int>(width[i])) << row[i];
      if (i + 1 < row.size()) os << " | ";
    }
    os << "\n";
  };
  if (!header_.empty()) {
    print_row(header_);
    os << std::string(total, '-') << "\n";
  }
  for (const auto& r : rows_) print_row(r);
}

namespace {
std::string csv_escape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}
}  // namespace

void Table::write_csv(std::ostream& os) const {
  auto row_out = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      os << csv_escape(row[i]);
      if (i + 1 < row.size()) os << ',';
    }
    os << '\n';
  };
  if (!header_.empty()) row_out(header_);
  for (const auto& r : rows_) row_out(r);
}

}  // namespace s2a
