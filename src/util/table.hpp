// Aligned ASCII table printing + CSV export for the benchmark harnesses.
// Every bench binary prints the rows the paper's tables/figures report
// through this type, so the outputs share one format.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace s2a {

/// Column-aligned text table with an optional title.
///
/// Usage:
///   Table t("Table II: Conventional vs R-MAE");
///   t.set_header({"Metric", "Conventional", "R-MAE"});
///   t.add_row({"Scene Coverage", "100%", "<10%"});
///   t.print(std::cout);
class Table {
 public:
  Table() = default;
  explicit Table(std::string title) : title_(std::move(title)) {}

  void set_header(std::vector<std::string> header);
  void add_row(std::vector<std::string> row);
  /// Convenience: formats doubles with the given precision.
  static std::string num(double v, int precision = 2);

  std::size_t row_count() const { return rows_.size(); }
  void print(std::ostream& os) const;
  /// Writes header + rows as RFC-4180-ish CSV (fields with commas quoted).
  void write_csv(std::ostream& os) const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace s2a
