// Grow-only aligned scratch allocator for kernel workspaces.
//
// The im2col column panels and repacked weight panels in src/nn are
// rebuilt on every forward pass but have stable sizes across calls, so
// heap-allocating them per forward wastes most of the kernel's memory
// bandwidth on page faults and allocator traffic. A ScratchArena keeps
// one aligned backing region alive for the lifetime of its owner (a
// layer, a benchmark fixture, ...) and hands out bump allocations from
// it:
//
//   arena.reset();                       // frame start: watermark -> 0
//   double* col = arena.alloc(k * n);    // 64-byte aligned, zero-copy
//   double* wp  = arena.alloc(pack_sz);  // valid until the next reset()
//
// Growth policy: alloc() never returns memory overlapping a live
// allocation from the current frame. When the current block is
// exhausted a new, geometrically larger block is chained on; reset()
// coalesces the chain into a single block of the total capacity, so a
// steady-state caller reaches one block and zero allocations after the
// first frame.
//
// Thread slots: pool-sharded kernels give each task a private sub-arena
// via slot(i). ensure_slots(n) must be called before the parallel
// section (it is NOT thread-safe); slot(i) afterwards is lock-free and
// the per-slot arenas are independent, so concurrent tasks never share
// a bump pointer. See docs/ARCHITECTURE.md "Kernels & memory".
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

namespace s2a::util {

class ScratchArena {
 public:
  /// Alignment (bytes) of every pointer returned by alloc().
  static constexpr std::size_t kAlignment = 64;

  ScratchArena() = default;
  ScratchArena(const ScratchArena&) = delete;
  ScratchArena& operator=(const ScratchArena&) = delete;

  /// Bump-allocates `count` doubles, 64-byte aligned, zero-initialized
  /// only by whatever the caller writes. The pointer stays valid (and
  /// never moves) until the next reset(), even if later alloc() calls
  /// grow the arena.
  double* alloc(std::size_t count);

  /// Frame boundary: releases every allocation at once (no destructors
  /// run — the arena only holds doubles) and coalesces multi-block
  /// chains so the next frame is served from a single region. Capacity
  /// is retained; reset() never shrinks.
  void reset();

  /// Doubles currently reserved across all blocks of *this* arena
  /// (slots not included).
  std::size_t capacity() const;
  /// Doubles handed out since the last reset().
  std::size_t used() const { return used_; }

  /// Number of backing-block allocations this arena has ever performed
  /// (slots not included). A steady-state training loop must stop
  /// incrementing this after its first couple of frames — the arena
  /// reuse tests pin that invariant.
  std::size_t growth_count() const { return growth_count_; }
  /// growth_count() summed over this arena and all slot sub-arenas.
  std::size_t total_growth_count() const;
  /// capacity() summed over this arena and all slot sub-arenas.
  std::size_t total_capacity() const;

  /// Grows the slot table to at least `n` per-task sub-arenas. Call
  /// before dispatching pool tasks; not thread-safe against slot().
  void ensure_slots(std::size_t n);
  /// The i-th sub-arena (i < slots()). Safe to call concurrently from
  /// pool tasks as long as each task sticks to its own slot.
  ScratchArena& slot(std::size_t i);
  std::size_t slots() const { return slots_.size(); }

 private:
  struct Block {
    Block(double* p, std::size_t n) : data(p), cap(n) {}
    struct Free {
      void operator()(double* p) const;
    };
    std::unique_ptr<double[], Free> data;
    std::size_t cap = 0;  // doubles
  };

  static Block make_block(std::size_t count);

  std::vector<Block> blocks_;
  std::size_t cur_block_ = 0;  // block serving the next alloc
  std::size_t cur_off_ = 0;    // doubles used in blocks_[cur_block_]
  std::size_t used_ = 0;       // doubles handed out this frame
  std::size_t growth_count_ = 0;  // lifetime make_block calls
  std::vector<std::unique_ptr<ScratchArena>> slots_;
};

}  // namespace s2a::util
