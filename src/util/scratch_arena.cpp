#include "util/scratch_arena.hpp"

#include <algorithm>
#include <new>

#include "util/check.hpp"

namespace s2a::util {

namespace {
// Smallest block worth carving up: below this the bump pointer's
// per-alloc rounding overhead rivals the block itself.
constexpr std::size_t kMinBlockDoubles = 4096;  // 32 KiB

// Doubles per alignment unit; every allocation is rounded up to this so
// the *next* bump stays kAlignment-aligned without per-call arithmetic
// on byte addresses.
constexpr std::size_t kAlignDoubles =
    ScratchArena::kAlignment / sizeof(double);

std::size_t round_up(std::size_t n) {
  return (n + kAlignDoubles - 1) / kAlignDoubles * kAlignDoubles;
}
}  // namespace

void ScratchArena::Block::Free::operator()(double* p) const {
  ::operator delete[](p, std::align_val_t{ScratchArena::kAlignment});
}

ScratchArena::Block ScratchArena::make_block(std::size_t count) {
  double* p = static_cast<double*>(::operator new[](
      count * sizeof(double), std::align_val_t{kAlignment}));
  return Block(p, count);
}

double* ScratchArena::alloc(std::size_t count) {
  const std::size_t need = round_up(count == 0 ? 1 : count);
  // Advance through existing blocks first (they survive reset()), then
  // chain a new block that at least doubles total capacity so a growing
  // workload converges in O(log size) allocations.
  while (cur_block_ < blocks_.size() &&
         blocks_[cur_block_].cap - cur_off_ < need) {
    ++cur_block_;
    cur_off_ = 0;
  }
  if (cur_block_ == blocks_.size()) {
    const std::size_t grown =
        std::max({need, capacity(), kMinBlockDoubles});
    blocks_.push_back(make_block(grown));
    ++growth_count_;
    cur_off_ = 0;
  }
  double* p = blocks_[cur_block_].data.get() + cur_off_;
  cur_off_ += need;
  used_ += need;
  return p;
}

void ScratchArena::reset() {
  if (blocks_.size() > 1) {
    // Coalesce: one block of the combined capacity replaces the chain,
    // so steady-state frames never hit the allocator again.
    std::size_t total = capacity();
    blocks_.clear();
    blocks_.push_back(make_block(total));
    ++growth_count_;
  }
  cur_block_ = 0;
  cur_off_ = 0;
  used_ = 0;
}

std::size_t ScratchArena::capacity() const {
  std::size_t total = 0;
  for (const Block& b : blocks_) total += b.cap;
  return total;
}

std::size_t ScratchArena::total_growth_count() const {
  std::size_t total = growth_count_;
  for (const auto& s : slots_) total += s->total_growth_count();
  return total;
}

std::size_t ScratchArena::total_capacity() const {
  std::size_t total = capacity();
  for (const auto& s : slots_) total += s->total_capacity();
  return total;
}

void ScratchArena::ensure_slots(std::size_t n) {
  while (slots_.size() < n) slots_.push_back(std::make_unique<ScratchArena>());
}

ScratchArena& ScratchArena::slot(std::size_t i) {
  S2A_CHECK_MSG(i < slots_.size(),
                "ScratchArena slot " << i << " requested but only "
                                     << slots_.size()
                                     << " reserved (call ensure_slots first)");
  return *slots_[i];
}

}  // namespace s2a::util
