// Lightweight precondition / invariant checking used across the library.
//
// S2A_CHECK is always on (it guards API misuse, not hot inner loops);
// S2A_DCHECK compiles out in NDEBUG builds and may sit in hot paths.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace s2a {

/// Thrown when a checked precondition or invariant fails.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "S2A_CHECK failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckError(os.str());
}
}  // namespace detail

}  // namespace s2a

#define S2A_CHECK(expr)                                               \
  do {                                                                \
    if (!(expr)) ::s2a::detail::check_failed(#expr, __FILE__, __LINE__, ""); \
  } while (false)

#define S2A_CHECK_MSG(expr, msg)                                      \
  do {                                                                \
    if (!(expr)) {                                                    \
      std::ostringstream s2a_os_;                                     \
      s2a_os_ << msg;                                                 \
      ::s2a::detail::check_failed(#expr, __FILE__, __LINE__, s2a_os_.str()); \
    }                                                                 \
  } while (false)

#ifdef NDEBUG
#define S2A_DCHECK(expr) \
  do {                   \
  } while (false)
#else
#define S2A_DCHECK(expr) S2A_CHECK(expr)
#endif
