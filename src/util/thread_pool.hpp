// Shared fixed-size thread pool for the library's data-parallel hot
// paths (voxelization, convolution forwards, federated client updates).
//
// Design goals, in order:
//  1. Determinism — parallel_for partitions [begin, end) into chunks of
//     at most `grain` indices, and every index is executed by exactly one
//     task. Callers that keep per-chunk state and merge it in chunk-index
//     order get results that are bit-exact across thread counts, because
//     the chunking depends only on (begin, end, grain), never on how the
//     OS schedules the workers.
//  2. Safety — an exception thrown by any task is captured, remaining
//     chunks are skipped, and the first exception is rethrown on the
//     calling thread once the loop has quiesced. Calling parallel_for
//     from inside a pool task degrades to inline serial execution, so
//     nested parallelism can never deadlock.
//  3. Graceful degradation — a pool of size 1 (or the S2A_THREADS=1
//     environment override) executes everything inline on the calling
//     thread with no queue traffic, so single-threaded runs behave
//     exactly like the pre-pool code.
//
// The calling thread always participates in executing chunks (it is
// counted in size()), so ThreadPool(n) spawns n-1 workers and a
// parallel_for never blocks a core just to wait.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace s2a::util {

class ThreadPool {
 public:
  /// Called once per index in [begin, end).
  using IndexFn = std::function<void(std::size_t)>;
  /// Called once per chunk with [chunk_begin, chunk_end) and the chunk's
  /// index in 0..num_chunks-1 (stable for a given begin/end/grain).
  using ChunkFn =
      std::function<void(std::size_t, std::size_t, std::size_t)>;

  /// threads > 0: exact concurrency (including the calling thread).
  /// threads <= 0: the S2A_THREADS environment variable if set to a
  /// positive integer, else std::thread::hardware_concurrency().
  explicit ThreadPool(int threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total concurrency, including the calling thread (>= 1).
  int size() const { return threads_; }

  /// True on a thread owned by any ThreadPool (used to run nested
  /// parallel loops inline instead of deadlocking on the queue).
  static bool on_worker_thread();

  /// Runs fn(i) for every i in [begin, end), sharded into chunks of at
  /// most `grain` indices. Blocks until every index has run (or an
  /// exception has been captured and the loop has quiesced). Rethrows
  /// the first exception on the calling thread.
  void parallel_for(std::size_t begin, std::size_t end, std::size_t grain,
                    const IndexFn& fn);

  /// Chunk-granular variant: fn(chunk_begin, chunk_end, chunk_index).
  /// Use this when each task accumulates into chunk-local state that the
  /// caller merges in chunk-index order for deterministic reductions.
  void parallel_for_chunks(std::size_t begin, std::size_t end,
                           std::size_t grain, const ChunkFn& fn);

  /// Number of chunks parallel_for_chunks will produce (0 when empty).
  static std::size_t num_chunks(std::size_t begin, std::size_t end,
                                std::size_t grain);

  /// Enqueues a standalone task on a worker thread and returns
  /// immediately (used by the pipelined engine to run the sense chain
  /// concurrently with the caller). Requires size() >= 2 — a
  /// single-threaded pool has no worker to run it. The task must not
  /// throw (there is no caller frame to rethrow into); arrange its own
  /// completion signalling (promise/future, queue close, ...). Pending
  /// tasks are drained before the destructor joins.
  void post(std::function<void()> task);

 private:
  struct Bulk;
  void worker_main();
  void run_bulk(Bulk& bulk, const ChunkFn* fn);

  int threads_ = 1;
  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;
};

/// Process-wide pool shared by the parallel hot paths. Constructed
/// lazily on first use; size comes from S2A_THREADS, else
/// hardware_concurrency.
ThreadPool& global_pool();

/// Parallelism the sharded hot paths can actually convert into speed:
/// min(global_pool().size(), hardware cores). An S2A_THREADS=4 override
/// on a 1-core box gives a 4-slot pool but 1 here — BENCH_parallel.json
/// measured voxelization 7x *slower* sharded in that configuration, so
/// the hot paths fall back to their serial loops when this is <= 1
/// (results are bit-exact either way; only the schedule changes).
/// S2A_FORCE_PARALLEL=1 restores pool.size() regardless of cores, so
/// tests and TSan runs can drive the sharded paths on any machine.
std::size_t effective_parallelism();

/// Replaces the global pool with one of the given size (<= 0 restores
/// the environment/hardware default). Must not race with in-flight
/// parallel work — intended for tests and benchmark harnesses sweeping
/// thread counts.
void set_global_threads(int threads);

/// RAII thread-count override for tests/benches:
///   { ScopedGlobalThreads t(4); ... }  // restores the default on exit
class ScopedGlobalThreads {
 public:
  explicit ScopedGlobalThreads(int threads) { set_global_threads(threads); }
  ~ScopedGlobalThreads() { set_global_threads(0); }
  ScopedGlobalThreads(const ScopedGlobalThreads&) = delete;
  ScopedGlobalThreads& operator=(const ScopedGlobalThreads&) = delete;
};

}  // namespace s2a::util
