// Runtime CPU feature detection and SIMD kernel selection.
//
// The GEMM micro-kernels in src/nn/gemm_*.cpp are compiled per
// instruction set (scalar always; AVX2/AVX-512 on x86-64, NEON on
// aarch64) and selected once at startup: cpu_features() probes the
// running CPU cpuid-style, and active_simd_isa() resolves the S2A_SIMD
// environment override against what the probe found. Everything
// downstream (nn::gemm packing layout, the kernel driver, bench report
// headers) keys off that one selection, so a pack/compute pair can
// never see two different micro-tile geometries.
//
// S2A_SIMD values: auto (default — the fastest *bit-exact* kernel the
// CPU supports), scalar, avx2, avx512, neon, and the explicitly opt-in
// fused variants avx2fma / avx512fma. The fused kernels skip the
// intermediate rounding of mul-then-add, so they are NOT bit-identical
// to the scalar oracle and are never chosen by auto — see
// docs/ARCHITECTURE.md "Kernels & memory".
#pragma once

#include <string>
#include <vector>

namespace s2a::util {

struct CpuFeatures {
  bool avx2 = false;
  bool fma = false;
  bool avx512f = false;
  bool neon = false;
};

/// Probes the running CPU once and caches the result for the process
/// lifetime.
const CpuFeatures& cpu_features();

/// Human/JSON summary of the probe, e.g. "avx2+fma+avx512f" or "neon"
/// or "baseline".
std::string cpu_feature_string();

/// The GEMM kernel families that can be selected. kAuto resolves to a
/// concrete ISA at startup and is never returned by active_simd_isa().
enum class SimdIsa {
  kAuto,
  kScalar,
  kAvx2,
  kAvx2Fma,
  kAvx512,
  kAvx512Fma,
  kNeon,
};

/// Stable lowercase name ("avx2", "avx512fma", ...) used by S2A_SIMD,
/// bench headers and the "simd" field of every BENCH_*.json payload.
const char* simd_isa_name(SimdIsa isa);

/// True when the kernel family is both compiled into this binary and
/// supported by the running CPU. kScalar is always true; kAuto is
/// always true (it resolves to something supported).
bool simd_isa_supported(SimdIsa isa);

/// Every concrete ISA simd_isa_supported() accepts on this machine, in
/// preference order (bit-exact families first, fused variants last).
/// Always contains at least kScalar. This is what the differential
/// kernel tests and the per-ISA bench sections iterate over.
std::vector<SimdIsa> supported_simd_isas();

/// The currently selected kernel family (never kAuto). First call
/// resolves S2A_SIMD: unset/"auto" picks the fastest bit-exact
/// supported family (avx512 > avx2 > neon > scalar); a concrete name
/// forces that family and fails loudly if unsupported.
SimdIsa active_simd_isa();

/// Process-wide override for tests and benches. kAuto re-resolves as if
/// at startup. Fails (S2A_CHECK) on unsupported families. Must not be
/// called between a pack_a() and the gemm_packed() consuming its packed
/// panel — the packing layout follows the active kernel's tile height.
void set_simd_isa(SimdIsa isa);

}  // namespace s2a::util
