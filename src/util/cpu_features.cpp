#include "util/cpu_features.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "util/check.hpp"

namespace s2a::util {

namespace {

CpuFeatures probe() {
  CpuFeatures f;
#if (defined(__x86_64__) || defined(_M_X64)) && \
    (defined(__GNUC__) || defined(__clang__))
  f.avx2 = __builtin_cpu_supports("avx2") != 0;
  f.fma = __builtin_cpu_supports("fma") != 0;
  f.avx512f = __builtin_cpu_supports("avx512f") != 0;
#elif defined(__aarch64__)
  // Advanced SIMD is baseline on AArch64.
  f.neon = true;
#endif
  return f;
}

// Kernel families compiled into this binary (must match the TU gates in
// src/nn/CMakeLists.txt and gemm.cpp's dispatch table).
bool compiled_in(SimdIsa isa) {
  switch (isa) {
    case SimdIsa::kAuto:
    case SimdIsa::kScalar:
      return true;
    case SimdIsa::kAvx2:
    case SimdIsa::kAvx2Fma:
    case SimdIsa::kAvx512:
    case SimdIsa::kAvx512Fma:
#if defined(__x86_64__) || defined(_M_X64)
      return true;
#else
      return false;
#endif
    case SimdIsa::kNeon:
#if defined(__aarch64__)
      return true;
#else
      return false;
#endif
  }
  return false;
}

SimdIsa resolve_auto() {
  const CpuFeatures& f = cpu_features();
  // Only bit-exact (mul-then-add) families are eligible for auto; the
  // fused variants change results and require an explicit S2A_SIMD.
  if (compiled_in(SimdIsa::kAvx512) && f.avx512f) return SimdIsa::kAvx512;
  if (compiled_in(SimdIsa::kAvx2) && f.avx2) return SimdIsa::kAvx2;
  if (compiled_in(SimdIsa::kNeon) && f.neon) return SimdIsa::kNeon;
  return SimdIsa::kScalar;
}

SimdIsa parse_simd_env(const char* s) {
  if (s == nullptr || *s == '\0' || std::strcmp(s, "auto") == 0)
    return SimdIsa::kAuto;
  if (std::strcmp(s, "scalar") == 0) return SimdIsa::kScalar;
  if (std::strcmp(s, "avx2") == 0) return SimdIsa::kAvx2;
  if (std::strcmp(s, "avx2fma") == 0) return SimdIsa::kAvx2Fma;
  if (std::strcmp(s, "avx512") == 0) return SimdIsa::kAvx512;
  if (std::strcmp(s, "avx512fma") == 0) return SimdIsa::kAvx512Fma;
  if (std::strcmp(s, "neon") == 0) return SimdIsa::kNeon;
  S2A_CHECK_MSG(false, "S2A_SIMD=" << s
                       << " is not one of auto|scalar|avx2|avx2fma|avx512|"
                          "avx512fma|neon");
  return SimdIsa::kAuto;  // unreachable
}

// kAuto + 1 .. kNeon stored as int; -1 = not yet resolved.
std::atomic<int> g_active{-1};

}  // namespace

const CpuFeatures& cpu_features() {
  static const CpuFeatures f = probe();
  return f;
}

std::string cpu_feature_string() {
  const CpuFeatures& f = cpu_features();
  std::string s;
  const auto add = [&s](const char* name) {
    if (!s.empty()) s += '+';
    s += name;
  };
  if (f.avx2) add("avx2");
  if (f.fma) add("fma");
  if (f.avx512f) add("avx512f");
  if (f.neon) add("neon");
  if (s.empty()) s = "baseline";
  return s;
}

const char* simd_isa_name(SimdIsa isa) {
  switch (isa) {
    case SimdIsa::kAuto:
      return "auto";
    case SimdIsa::kScalar:
      return "scalar";
    case SimdIsa::kAvx2:
      return "avx2";
    case SimdIsa::kAvx2Fma:
      return "avx2fma";
    case SimdIsa::kAvx512:
      return "avx512";
    case SimdIsa::kAvx512Fma:
      return "avx512fma";
    case SimdIsa::kNeon:
      return "neon";
  }
  return "unknown";
}

bool simd_isa_supported(SimdIsa isa) {
  if (!compiled_in(isa)) return false;
  const CpuFeatures& f = cpu_features();
  switch (isa) {
    case SimdIsa::kAuto:
    case SimdIsa::kScalar:
      return true;
    case SimdIsa::kAvx2:
      return f.avx2;
    case SimdIsa::kAvx2Fma:
      return f.avx2 && f.fma;
    case SimdIsa::kAvx512:
      return f.avx512f;
    case SimdIsa::kAvx512Fma:
      return f.avx512f && f.fma;
    case SimdIsa::kNeon:
      return f.neon;
  }
  return false;
}

std::vector<SimdIsa> supported_simd_isas() {
  std::vector<SimdIsa> out;
  for (SimdIsa isa : {SimdIsa::kScalar, SimdIsa::kAvx2, SimdIsa::kAvx512,
                      SimdIsa::kNeon, SimdIsa::kAvx2Fma, SimdIsa::kAvx512Fma})
    if (simd_isa_supported(isa)) out.push_back(isa);
  return out;
}

SimdIsa active_simd_isa() {
  int v = g_active.load(std::memory_order_acquire);
  if (v < 0) {
    SimdIsa isa = parse_simd_env(std::getenv("S2A_SIMD"));
    if (isa == SimdIsa::kAuto) isa = resolve_auto();
    S2A_CHECK_MSG(simd_isa_supported(isa),
                  "S2A_SIMD requests " << simd_isa_name(isa)
                                       << " but this CPU/binary only has "
                                       << cpu_feature_string());
    int expected = -1;
    g_active.compare_exchange_strong(expected, static_cast<int>(isa),
                                     std::memory_order_acq_rel);
    v = g_active.load(std::memory_order_acquire);
  }
  return static_cast<SimdIsa>(v);
}

void set_simd_isa(SimdIsa isa) {
  if (isa == SimdIsa::kAuto) isa = resolve_auto();
  S2A_CHECK_MSG(simd_isa_supported(isa),
                "set_simd_isa(" << simd_isa_name(isa)
                                << ") unsupported on this CPU/binary ("
                                << cpu_feature_string() << ")");
  g_active.store(static_cast<int>(isa), std::memory_order_release);
}

}  // namespace s2a::util
