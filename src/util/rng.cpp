#include "util/rng.hpp"

#include <cmath>
#include <numbers>

#include "util/check.hpp"

namespace s2a {

namespace {
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
  // xoshiro must not start from the all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

int Rng::uniform_int(int lo, int hi) {
  S2A_DCHECK(lo <= hi);
  const std::uint64_t range = static_cast<std::uint64_t>(hi) - lo + 1;
  // Modulo bias is negligible for the small ranges used here, but reject
  // anyway: cheap and exact.
  const std::uint64_t limit = Rng::max() - Rng::max() % range;
  std::uint64_t v = next_u64();
  while (v >= limit) v = next_u64();
  return lo + static_cast<int>(v % range);
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = uniform();
  while (u1 <= 0.0) u1 = uniform();
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

std::vector<int> Rng::sample_without_replacement(int n, int k) {
  S2A_CHECK_MSG(0 <= k && k <= n, "k=" << k << " n=" << n);
  std::vector<int> idx(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) idx[static_cast<std::size_t>(i)] = i;
  // Partial Fisher–Yates: only the first k slots need to be finalized.
  for (int i = 0; i < k; ++i) {
    const int j = uniform_int(i, n - 1);
    std::swap(idx[static_cast<std::size_t>(i)], idx[static_cast<std::size_t>(j)]);
  }
  idx.resize(static_cast<std::size_t>(k));
  return idx;
}

Rng Rng::spawn() {
  ++spawn_counter_;
  return Rng(next_u64() ^ (spawn_counter_ * 0xA24BAED4963EE407ULL));
}

}  // namespace s2a
