#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace s2a {

double mean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  double s = 0.0;
  for (double x : v) s += x;
  return s / static_cast<double>(v.size());
}

double variance(const std::vector<double>& v) {
  if (v.size() < 2) return 0.0;
  const double m = mean(v);
  double s = 0.0;
  for (double x : v) s += (x - m) * (x - m);
  return s / static_cast<double>(v.size() - 1);
}

double stddev(const std::vector<double>& v) { return std::sqrt(variance(v)); }

double percentile(std::vector<double> v, double q) {
  S2A_CHECK(!v.empty());
  S2A_CHECK(0.0 <= q && q <= 100.0);
  std::sort(v.begin(), v.end());
  const double pos = q / 100.0 * static_cast<double>(v.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return v[lo] * (1.0 - frac) + v[hi] * frac;
}

double auc_roc(const std::vector<double>& scores,
               const std::vector<int>& labels) {
  S2A_CHECK(scores.size() == labels.size());
  // Rank-based computation: AUC = (R_pos - n_pos(n_pos+1)/2) / (n_pos*n_neg)
  std::vector<std::size_t> order(scores.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return scores[a] < scores[b];
  });

  std::size_t n_pos = 0, n_neg = 0;
  for (int l : labels) (l != 0 ? n_pos : n_neg)++;
  if (n_pos == 0 || n_neg == 0) return 0.5;

  // Assign average ranks to ties.
  std::vector<double> rank(scores.size());
  std::size_t i = 0;
  while (i < order.size()) {
    std::size_t j = i;
    while (j + 1 < order.size() && scores[order[j + 1]] == scores[order[i]]) ++j;
    const double avg_rank = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
    for (std::size_t k = i; k <= j; ++k) rank[order[k]] = avg_rank;
    i = j + 1;
  }

  double rank_sum_pos = 0.0;
  for (std::size_t k = 0; k < labels.size(); ++k)
    if (labels[k] != 0) rank_sum_pos += rank[k];

  const double np = static_cast<double>(n_pos);
  const double nn = static_cast<double>(n_neg);
  return (rank_sum_pos - np * (np + 1.0) / 2.0) / (np * nn);
}

void RunningStat::add(double x) {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStat::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

}  // namespace s2a
