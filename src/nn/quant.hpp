// Int8 quantized inference path for the forward-only hot loops.
//
// Scheme: per-output-row symmetric weight scales (scale_i =
// max|row_i| / 127, so every weight maps to [-127, 127] with zero
// exactly representable) and one per-tensor symmetric activation scale.
// The int8 GEMM accumulates w_q * x_q products in int32 — integer
// addition is associative, so unlike the float path the accumulation
// order is free and the scalar and AVX2 int8 kernels are *exactly*
// equal, at every thread count. The int32 sum is dequantized in one
// step, `c[i][j] += scales[i] * x_scale * acc`, on top of the caller's
// bias-seeded C, mirroring the float GEMM's contract.
//
// Overflow headroom: each product is at most 127*127 < 2^14, so the
// int32 accumulator is safe for k < 2^31 / 2^14 ≈ 131000 — orders of
// magnitude above the conv/dense reduction depths here (k ≤ ~600).
//
// Routing: quant_backend() resolves the process-wide setting; kAuto
// re-reads S2A_QUANT=1 per call (same pattern as ConvBackend /
// S2A_NAIVE_CONV) so tests and CLI runs can flip it without rebuilds.
// The quantized forward is inference-only — backward always runs the
// float path, and training steps see float weights.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/scratch_arena.hpp"

namespace s2a::nn {

/// Whether quantize()d layers run their int8 forward. kAuto defers to
/// the S2A_QUANT environment variable (=1 enables int8), re-read per
/// call.
enum class QuantBackend { kAuto, kFloat, kInt8 };

void set_quant_backend(QuantBackend backend);
/// The resolved backend (never kAuto).
QuantBackend quant_backend();

/// A row-major int8 matrix with one symmetric scale per row. For a
/// conv/dense weight this is [out_channels, reduction], so the per-row
/// scale is the per-output-channel scale.
struct QuantizedMatrix {
  int rows = 0;
  int cols = 0;
  std::vector<std::int8_t> data;  // row-major [rows, cols]
  std::vector<double> scales;     // scales[i] dequantizes row i
};

/// Quantizes row-major a ([rows, cols], row stride lda) with per-row
/// symmetric scales. An all-zero row gets scale 1 (quantizes to zeros).
QuantizedMatrix quantize_rows(const double* a, int lda, int rows, int cols);

/// Per-tensor symmetric scale: max|x| / 127 (1 when the tensor is all
/// zero). Computed over the WHOLE tensor so any banding/sharding the
/// caller does cannot change the quantization grid.
double activation_scale(const double* x, std::size_t n);

/// out[i] = clamp(round(x[i] / scale), -127, 127). Round-half-away
/// (std::lround), deterministic across platforms in practice for the
/// magnitudes here.
void quantize_values(const double* x, std::size_t n, double scale,
                     std::int8_t* out);

/// Carves an int8 buffer out of a double arena (8 int8 per slot,
/// rounded up). Lifetime follows the arena's reset() like any other
/// scratch allocation.
std::int8_t* alloc_int8(util::ScratchArena& arena, std::size_t count);

/// C += diag(a.scales) * (a_q * b_q) * b_scale, with int32 accumulate.
/// b: row-major int8 [a.cols, n] with row stride ldb; c: row-major
/// [a.rows, n] with row stride ldc, pre-initialized (bias-seeded).
/// Dispatches to the AVX2 kernel when the CPU has it and S2A_SIMD is
/// not forcing scalar; both kernels return identical results.
void gemm_int8(const QuantizedMatrix& a, int n, const std::int8_t* b, int ldb,
               double b_scale, double* c, int ldc);

namespace detail {

/// Reference int8 GEMM (also the tail path of the AVX2 kernel).
void gemm_int8_scalar(int m, int n, int k, const std::int8_t* a,
                      const double* a_scales, const std::int8_t* b, int ldb,
                      double b_scale, double* c, int ldc);

#if defined(__x86_64__) || defined(_M_X64)
/// AVX2 int8 GEMM (vpmaddwd over widened int16 pairs). Exactly equal to
/// the scalar kernel — exposed for the differential tests.
void gemm_int8_avx2(int m, int n, int k, const std::int8_t* a,
                    const double* a_scales, const std::int8_t* b, int ldb,
                    double b_scale, double* c, int ldc);
#endif

}  // namespace detail

}  // namespace s2a::nn
