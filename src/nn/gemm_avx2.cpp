// AVX2 GEMM micro-kernels (x86-64). Compiled with
// -mavx2 -mfma -ffp-contract=off — see gemm_kernels.hpp for why the
// contraction flag matters.
#if defined(__x86_64__) || defined(_M_X64)

#include <immintrin.h>

#include "nn/gemm_kernels.hpp"

namespace s2a::nn::detail {

namespace {

// 4 rows x 8 columns: 8 __m256d accumulators + 2 B vectors + 1 A
// broadcast = 11 of the 16 ymm registers. Per k step: two B loads
// shared across four A broadcasts. The prefetch pulls the B row 8 k
// steps ahead — B rows are ldb-strided (several KiB apart for the conv
// column panels), which defeats the hardware stride prefetchers, and
// the first pass over a B strip is otherwise latency-bound.
template <bool kFused>
void micro_4x8(int kc, const double* ap, const double* b, int ldb, double* c,
               int ldc) {
  __m256d acc00 = _mm256_loadu_pd(c);
  __m256d acc01 = _mm256_loadu_pd(c + 4);
  __m256d acc10 = _mm256_loadu_pd(c + static_cast<std::size_t>(ldc));
  __m256d acc11 = _mm256_loadu_pd(c + static_cast<std::size_t>(ldc) + 4);
  __m256d acc20 = _mm256_loadu_pd(c + 2 * static_cast<std::size_t>(ldc));
  __m256d acc21 = _mm256_loadu_pd(c + 2 * static_cast<std::size_t>(ldc) + 4);
  __m256d acc30 = _mm256_loadu_pd(c + 3 * static_cast<std::size_t>(ldc));
  __m256d acc31 = _mm256_loadu_pd(c + 3 * static_cast<std::size_t>(ldc) + 4);
  for (int kk = 0; kk < kc; ++kk) {
    const double* brow = b + static_cast<std::size_t>(kk) * ldb;
    __builtin_prefetch(brow + 8 * static_cast<std::size_t>(ldb));
    const __m256d b0 = _mm256_loadu_pd(brow);
    const __m256d b1 = _mm256_loadu_pd(brow + 4);
    const double* acol = ap + static_cast<std::size_t>(kk) * 4;
    const __m256d a0 = _mm256_broadcast_sd(acol);
    const __m256d a1 = _mm256_broadcast_sd(acol + 1);
    const __m256d a2 = _mm256_broadcast_sd(acol + 2);
    const __m256d a3 = _mm256_broadcast_sd(acol + 3);
    if constexpr (kFused) {
      acc00 = _mm256_fmadd_pd(a0, b0, acc00);
      acc01 = _mm256_fmadd_pd(a0, b1, acc01);
      acc10 = _mm256_fmadd_pd(a1, b0, acc10);
      acc11 = _mm256_fmadd_pd(a1, b1, acc11);
      acc20 = _mm256_fmadd_pd(a2, b0, acc20);
      acc21 = _mm256_fmadd_pd(a2, b1, acc21);
      acc30 = _mm256_fmadd_pd(a3, b0, acc30);
      acc31 = _mm256_fmadd_pd(a3, b1, acc31);
    } else {
      acc00 = _mm256_add_pd(acc00, _mm256_mul_pd(a0, b0));
      acc01 = _mm256_add_pd(acc01, _mm256_mul_pd(a0, b1));
      acc10 = _mm256_add_pd(acc10, _mm256_mul_pd(a1, b0));
      acc11 = _mm256_add_pd(acc11, _mm256_mul_pd(a1, b1));
      acc20 = _mm256_add_pd(acc20, _mm256_mul_pd(a2, b0));
      acc21 = _mm256_add_pd(acc21, _mm256_mul_pd(a2, b1));
      acc30 = _mm256_add_pd(acc30, _mm256_mul_pd(a3, b0));
      acc31 = _mm256_add_pd(acc31, _mm256_mul_pd(a3, b1));
    }
  }
  _mm256_storeu_pd(c, acc00);
  _mm256_storeu_pd(c + 4, acc01);
  _mm256_storeu_pd(c + static_cast<std::size_t>(ldc), acc10);
  _mm256_storeu_pd(c + static_cast<std::size_t>(ldc) + 4, acc11);
  _mm256_storeu_pd(c + 2 * static_cast<std::size_t>(ldc), acc20);
  _mm256_storeu_pd(c + 2 * static_cast<std::size_t>(ldc) + 4, acc21);
  _mm256_storeu_pd(c + 3 * static_cast<std::size_t>(ldc), acc30);
  _mm256_storeu_pd(c + 3 * static_cast<std::size_t>(ldc) + 4, acc31);
}

// 2-row half tile against the 4-row packing (A row stride stays 4).
template <bool kFused>
void micro_2x8(int kc, const double* ap, const double* b, int ldb, double* c,
               int ldc) {
  __m256d acc00 = _mm256_loadu_pd(c);
  __m256d acc01 = _mm256_loadu_pd(c + 4);
  __m256d acc10 = _mm256_loadu_pd(c + static_cast<std::size_t>(ldc));
  __m256d acc11 = _mm256_loadu_pd(c + static_cast<std::size_t>(ldc) + 4);
  for (int kk = 0; kk < kc; ++kk) {
    const double* brow = b + static_cast<std::size_t>(kk) * ldb;
    __builtin_prefetch(brow + 8 * static_cast<std::size_t>(ldb));
    const __m256d b0 = _mm256_loadu_pd(brow);
    const __m256d b1 = _mm256_loadu_pd(brow + 4);
    const double* acol = ap + static_cast<std::size_t>(kk) * 4;
    const __m256d a0 = _mm256_broadcast_sd(acol);
    const __m256d a1 = _mm256_broadcast_sd(acol + 1);
    if constexpr (kFused) {
      acc00 = _mm256_fmadd_pd(a0, b0, acc00);
      acc01 = _mm256_fmadd_pd(a0, b1, acc01);
      acc10 = _mm256_fmadd_pd(a1, b0, acc10);
      acc11 = _mm256_fmadd_pd(a1, b1, acc11);
    } else {
      acc00 = _mm256_add_pd(acc00, _mm256_mul_pd(a0, b0));
      acc01 = _mm256_add_pd(acc01, _mm256_mul_pd(a0, b1));
      acc10 = _mm256_add_pd(acc10, _mm256_mul_pd(a1, b0));
      acc11 = _mm256_add_pd(acc11, _mm256_mul_pd(a1, b1));
    }
  }
  _mm256_storeu_pd(c, acc00);
  _mm256_storeu_pd(c + 4, acc01);
  _mm256_storeu_pd(c + static_cast<std::size_t>(ldc), acc10);
  _mm256_storeu_pd(c + static_cast<std::size_t>(ldc) + 4, acc11);
}

}  // namespace

const GemmMicroKernel& gemm_kernel_avx2() {
  static const GemmMicroKernel k{"avx2", 4, 8, micro_4x8<false>,
                                 micro_2x8<false>};
  return k;
}

const GemmMicroKernel& gemm_kernel_avx2fma() {
  static const GemmMicroKernel k{"avx2fma", 4, 8, micro_4x8<true>,
                                 micro_2x8<true>};
  return k;
}

}  // namespace s2a::nn::detail

#endif  // x86-64
