#include "nn/optimizer.hpp"

#include <cmath>

#include "util/check.hpp"

namespace s2a::nn {

void Optimizer::attach(std::vector<Tensor*> params, std::vector<Tensor*> grads) {
  S2A_CHECK(params.size() == grads.size());
  for (std::size_t i = 0; i < params.size(); ++i)
    S2A_CHECK_MSG(params[i]->same_shape(*grads[i]),
                  "param/grad shape mismatch at index " << i);
  params_ = std::move(params);
  grads_ = std::move(grads);
}

void Optimizer::zero_grad() {
  for (Tensor* g : grads_) g->fill(0.0);
}

void SGD::step() {
  if (momentum_ != 0.0 && velocity_.empty())
    for (Tensor* p : params_) velocity_.emplace_back(p->shape());

  for (std::size_t i = 0; i < params_.size(); ++i) {
    Tensor& p = *params_[i];
    const Tensor& g = *grads_[i];
    if (momentum_ != 0.0) {
      Tensor& v = velocity_[i];
      for (std::size_t j = 0; j < p.numel(); ++j) {
        v[j] = momentum_ * v[j] + g[j];
        p[j] -= lr_ * v[j];
      }
    } else {
      for (std::size_t j = 0; j < p.numel(); ++j) p[j] -= lr_ * g[j];
    }
  }
}

void Adam::step() {
  if (m_.empty()) {
    for (Tensor* p : params_) {
      m_.emplace_back(p->shape());
      v_.emplace_back(p->shape());
    }
  }
  ++t_;
  const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  for (std::size_t i = 0; i < params_.size(); ++i) {
    Tensor& p = *params_[i];
    const Tensor& g = *grads_[i];
    Tensor& m = m_[i];
    Tensor& v = v_[i];
    for (std::size_t j = 0; j < p.numel(); ++j) {
      m[j] = beta1_ * m[j] + (1.0 - beta1_) * g[j];
      v[j] = beta2_ * v[j] + (1.0 - beta2_) * g[j] * g[j];
      const double mhat = m[j] / bc1;
      const double vhat = v[j] / bc2;
      p[j] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
    }
  }
}

double clip_grad_norm(const std::vector<Tensor*>& grads, double max_norm) {
  S2A_CHECK(max_norm > 0.0);
  double sq = 0.0;
  for (const Tensor* g : grads) sq += g->squared_norm();
  const double norm = std::sqrt(sq);
  if (norm > max_norm) {
    const double scale = max_norm / norm;
    for (Tensor* g : grads)
      for (std::size_t i = 0; i < g->numel(); ++i) (*g)[i] *= scale;
  }
  return norm;
}

}  // namespace s2a::nn
