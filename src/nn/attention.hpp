// Single-head scaled dot-product self-attention over a token sequence.
//
// Backs the "Transformer model" baseline of the RoboKoop comparison
// (Fig. 5a/5b): a context window of past (state, action) tokens is encoded,
// attended over, and the last token's output predicts the next latent state.
#pragma once

#include "nn/layer.hpp"

namespace s2a::nn {

/// Input and output are [T, d] — one sequence per forward call.
class SelfAttention : public Layer {
 public:
  SelfAttention(int dim, Rng& rng);

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<Tensor*> params() override { return {&wq_, &wk_, &wv_, &wo_}; }
  std::vector<Tensor*> grads() override { return {&gq_, &gk_, &gv_, &go_}; }
  std::size_t macs_per_sample() const override;

 private:
  int d_;
  Tensor wq_, wk_, wv_, wo_;  // each [d, d], applied as y = x·Wᵀ
  Tensor gq_, gk_, gv_, go_;
  Tensor x_, q_, k_, v_, p_, att_;  // caches: P = softmax rows, att = P·V
  mutable std::size_t last_t_ = 0;
};

}  // namespace s2a::nn
