// Elementwise activation layers.
#pragma once

#include "nn/layer.hpp"

namespace s2a::nn {

class ReLU : public Layer {
 public:
  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;

 private:
  Tensor last_x_;
};

class LeakyReLU : public Layer {
 public:
  explicit LeakyReLU(double slope = 0.1) : slope_(slope) {}
  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;

 private:
  double slope_;
  Tensor last_x_;
};

class Tanh : public Layer {
 public:
  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;

 private:
  Tensor last_y_;
};

class Sigmoid : public Layer {
 public:
  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;

 private:
  Tensor last_y_;
};

}  // namespace s2a::nn
