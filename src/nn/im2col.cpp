#include "nn/im2col.hpp"

#include <algorithm>
#include <cstring>

namespace s2a::nn {

void im2col(const double* x, int cin, int h, int w, int k, int stride,
            int pad, int ow, int oy_lo, int oy_hi, double* col) {
  const int band = oy_hi - oy_lo;
  double* out = col;
  for (int ic = 0; ic < cin; ++ic) {
    const double* plane = x + static_cast<std::size_t>(ic) * h * w;
    for (int ky = 0; ky < k; ++ky)
      for (int kx = 0; kx < k; ++kx) {
        // One lowered row: tap (ic, ky, kx) for every output pixel in
        // the band, in (oy, ox) order.
        for (int oy = oy_lo; oy < oy_hi; ++oy) {
          double* row = out + static_cast<std::size_t>(oy - oy_lo) * ow;
          const int iy = oy * stride + ky - pad;
          if (iy < 0 || iy >= h) {
            std::memset(row, 0, sizeof(double) * static_cast<std::size_t>(ow));
            continue;
          }
          const double* src = plane + static_cast<std::size_t>(iy) * w;
          if (stride == 1) {
            // Contiguous case: the valid ox span is one memcpy.
            const int ix0 = kx - pad;  // ix at ox = 0
            const int ox_lo = std::max(0, -ix0);
            const int ox_hi = std::min(ow, w - ix0);
            for (int ox = 0; ox < std::min(ox_lo, ow); ++ox) row[ox] = 0.0;
            if (ox_hi > ox_lo)
              std::memcpy(row + ox_lo, src + ix0 + ox_lo,
                          sizeof(double) *
                              static_cast<std::size_t>(ox_hi - ox_lo));
            for (int ox = std::max(ox_lo, ox_hi); ox < ow; ++ox) row[ox] = 0.0;
          } else {
            for (int ox = 0; ox < ow; ++ox) {
              const int ix = ox * stride + kx - pad;
              row[ox] = (ix < 0 || ix >= w) ? 0.0 : src[ix];
            }
          }
        }
        out += static_cast<std::size_t>(band) * ow;
      }
  }
}

void col2im(const double* col, int cin, int h, int w, int k, int stride,
            int pad, int ow, int oy_lo, int oy_hi, double* x) {
  const int band = oy_hi - oy_lo;
  const double* in = col;
  for (int ic = 0; ic < cin; ++ic) {
    double* plane = x + static_cast<std::size_t>(ic) * h * w;
    for (int ky = 0; ky < k; ++ky)
      for (int kx = 0; kx < k; ++kx) {
        for (int oy = oy_lo; oy < oy_hi; ++oy) {
          const double* row = in + static_cast<std::size_t>(oy - oy_lo) * ow;
          const int iy = oy * stride + ky - pad;
          if (iy < 0 || iy >= h) continue;
          double* dst = plane + static_cast<std::size_t>(iy) * w;
          for (int ox = 0; ox < ow; ++ox) {
            const int ix = ox * stride + kx - pad;
            if (ix < 0 || ix >= w) continue;
            dst[ix] += row[ox];
          }
        }
        in += static_cast<std::size_t>(band) * ow;
      }
  }
}

void im2col_t(const double* x, int cin, int h, int w, int k, int stride,
              int pad, int ow, int oy_lo, int oy_hi, double* colt) {
  double* row = colt;
  for (int oy = oy_lo; oy < oy_hi; ++oy)
    for (int ox = 0; ox < ow; ++ox) {
      // One lowered row: every tap output pixel (oy, ox) reads, walked
      // in the naive accumulation order (ic, ky, kx).
      double* out = row;
      for (int ic = 0; ic < cin; ++ic) {
        const double* plane = x + static_cast<std::size_t>(ic) * h * w;
        for (int ky = 0; ky < k; ++ky) {
          const int iy = oy * stride + ky - pad;
          if (iy < 0 || iy >= h) {
            std::fill_n(out, k, 0.0);
            out += k;
            continue;
          }
          const double* src = plane + static_cast<std::size_t>(iy) * w;
          for (int kx = 0; kx < k; ++kx) {
            const int ix = ox * stride + kx - pad;
            out[kx] = (ix < 0 || ix >= w) ? 0.0 : src[ix];
          }
          out += k;
        }
      }
      row += static_cast<std::size_t>(cin) * k * k;
    }
}

void col2im_band(const double* col, int cin, int h, int w, int k, int stride,
                 int pad, int ow, int iy_lo, int iy_hi, double* x) {
  const int oh = (h + 2 * pad - k) / stride + 1;
  const double* in = col;
  for (int ic = 0; ic < cin; ++ic) {
    double* plane = x + static_cast<std::size_t>(ic) * h * w;
    for (int ky = 0; ky < k; ++ky)
      for (int kx = 0; kx < k; ++kx) {
        // Output rows whose tap (ky, kx) lands inside [iy_lo, iy_hi):
        // iy = oy*stride + ky - pad, so oy spans a contiguous range.
        const int num_lo = iy_lo + pad - ky;
        const int oy_begin = num_lo > 0 ? (num_lo + stride - 1) / stride : 0;
        const int num_hi = iy_hi - 1 + pad - ky;
        const int oy_end = num_hi >= 0 ? std::min(oh - 1, num_hi / stride) : -1;
        for (int oy = oy_begin; oy <= oy_end; ++oy) {
          const double* row = in + static_cast<std::size_t>(oy) * ow;
          const int iy = oy * stride + ky - pad;
          double* dst = plane + static_cast<std::size_t>(iy) * w;
          for (int ox = 0; ox < ow; ++ox) {
            const int ix = ox * stride + kx - pad;
            if (ix < 0 || ix >= w) continue;
            dst[ix] += row[ox];
          }
        }
        in += static_cast<std::size_t>(oh) * ow;
      }
  }
}

}  // namespace s2a::nn
