// Layer interface for the library's networks.
//
// Layers are stateful trainers: forward() caches whatever backward() needs,
// backward() accumulates parameter gradients and returns the gradient with
// respect to the layer input. This matches how the training loops in each
// subsystem drive them (single-threaded, one batch in flight).
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "nn/tensor.hpp"

namespace s2a::util {
class ScratchArena;
}

namespace s2a::nn {

class Layer {
 public:
  virtual ~Layer() = default;

  virtual Tensor forward(const Tensor& x) = 0;
  /// grad_out is dL/d(output); returns dL/d(input). Parameter gradients
  /// accumulate until zero_grad().
  virtual Tensor backward(const Tensor& grad_out) = 0;

  /// Trainable parameters and their gradient buffers, index-aligned.
  virtual std::vector<Tensor*> params() { return {}; }
  virtual std::vector<Tensor*> grads() { return {}; }

  void zero_grad() {
    for (Tensor* g : grads()) g->fill(0.0);
  }

  /// Snapshots the current weights into an int8 form (per-output-channel
  /// symmetric scales — see nn/quant.hpp). Once quantized, forward() runs
  /// the int8 kernel whenever the quant backend resolves to kInt8;
  /// backward() and the optimizer always see the float weights, so call
  /// quantize() again after training steps to refresh the snapshot.
  /// Layers without an int8 path (activations, GRU, attention) are a
  /// no-op and keep reporting is_quantized() == false.
  virtual void quantize() {}
  virtual bool is_quantized() const { return false; }

  /// Multiply-accumulate operations for one forward pass of a single sample.
  /// Used by the Fig. 5a / Table II compute-cost instrumentation.
  virtual std::size_t macs_per_sample() const { return 0; }

  /// The layer's kernel workspace, if it owns one (conv/deconv/dense do).
  /// Lets training loops and tests audit the zero-steady-state-allocation
  /// invariant without knowing concrete layer types.
  virtual const util::ScratchArena* scratch() const { return nullptr; }

  std::size_t param_count() {
    std::size_t n = 0;
    for (Tensor* p : params()) n += p->numel();
    return n;
  }
};

using LayerPtr = std::unique_ptr<Layer>;

}  // namespace s2a::nn
