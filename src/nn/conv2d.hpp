// 2-D convolution and transposed convolution over NCHW tensors.
//
// These back the BEV detector backbones (lidar), the occupancy decoder's
// upsampling stages, and the optical-flow networks (neuro). Implementations
// are direct loops — the networks are small and the hot path is measured,
// not raced.
#pragma once

#include "nn/layer.hpp"

namespace s2a::nn {

class Conv2D : public Layer {
 public:
  Conv2D(int in_channels, int out_channels, int kernel, int stride,
         int padding, Rng& rng);

  Tensor forward(const Tensor& x) override;  ///< x: [N, Cin, H, W]
  Tensor backward(const Tensor& grad_out) override;
  std::vector<Tensor*> params() override { return {&w_, &b_}; }
  std::vector<Tensor*> grads() override { return {&gw_, &gb_}; }
  std::size_t macs_per_sample() const override;

  int out_size(int in_size) const {
    return (in_size + 2 * pad_ - k_) / stride_ + 1;
  }
  int in_channels() const { return cin_; }
  int out_channels() const { return cout_; }
  int kernel() const { return k_; }

 private:
  int cin_, cout_, k_, stride_, pad_;
  Tensor w_, b_, gw_, gb_;  // w: [Cout, Cin, k, k]
  Tensor last_x_;
  mutable std::size_t last_out_hw_ = 0;  // set by forward, used by macs
};

/// Transposed convolution (a.k.a. deconvolution) for decoder upsampling.
/// Output spatial size: (in-1)*stride - 2*pad + kernel.
class ConvTranspose2D : public Layer {
 public:
  ConvTranspose2D(int in_channels, int out_channels, int kernel, int stride,
                  int padding, Rng& rng);

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<Tensor*> params() override { return {&w_, &b_}; }
  std::vector<Tensor*> grads() override { return {&gw_, &gb_}; }
  std::size_t macs_per_sample() const override;

  int out_size(int in_size) const {
    return (in_size - 1) * stride_ - 2 * pad_ + k_;
  }

 private:
  int cin_, cout_, k_, stride_, pad_;
  Tensor w_, b_, gw_, gb_;  // w: [Cin, Cout, k, k]
  Tensor last_x_;
  mutable std::size_t last_in_hw_ = 0;
};

}  // namespace s2a::nn
