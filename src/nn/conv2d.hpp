// 2-D convolution and transposed convolution over NCHW tensors.
//
// These back the BEV detector backbones (lidar), the occupancy decoder's
// upsampling stages, and the optical-flow networks (neuro).
//
// Forward AND backward passes run as im2col + cache-blocked GEMM
// (nn/im2col.hpp, nn/gemm.hpp) with per-layer ScratchArena workspaces —
// several times faster than the original direct loops on the occupancy
// autoencoder shapes — and stay bit-exact against those loops because
// the lowered matrix rows follow the naive accumulation order (see
// docs/ARCHITECTURE.md, "Kernels & memory"). Weight gradients lower to
// grad_out x im2col(input)ᵀ, input gradients to Wᵀ x grad_out folded by
// col2im (Conv2D) or to a plain strided convolution of grad_out by the
// adjoint kernel (ConvTranspose2D). The direct loops are retained as
// the oracle: set S2A_NAIVE_CONV=1 (or
// set_conv_backend(ConvBackend::kNaive)) to run them instead; the
// kernel equivalence tests diff the two paths bit-for-bit and the
// finite-difference gradient checks pin the arithmetic of both.
#pragma once

#include <vector>

#include "nn/layer.hpp"
#include "nn/quant.hpp"
#include "util/scratch_arena.hpp"

namespace s2a::nn {

/// Which implementation the conv/dense layers use (forward and backward).
///  kAuto  — S2A_NAIVE_CONV=1 selects the naive loops, else GEMM.
///  kGemm  — im2col + blocked GEMM (the default resolution).
///  kNaive — direct loops in the GEMM chain order (the bit-exactness
///           oracle).
enum class ConvBackend { kAuto, kGemm, kNaive };

/// Process-wide override, primarily for tests and benches; kAuto (the
/// initial state) defers to the S2A_NAIVE_CONV environment variable,
/// which is re-read on every forward/backward so setenv mid-process
/// works.
void set_conv_backend(ConvBackend backend);
/// The backend the next forward/backward will take: kGemm or kNaive,
/// never kAuto.
ConvBackend conv_backend();

class Conv2D : public Layer {
 public:
  Conv2D(int in_channels, int out_channels, int kernel, int stride,
         int padding, Rng& rng);

  Tensor forward(const Tensor& x) override;  ///< x: [N, Cin, H, W]
  Tensor backward(const Tensor& grad_out) override;
  std::vector<Tensor*> params() override { return {&w_, &b_}; }
  std::vector<Tensor*> grads() override { return {&gw_, &gb_}; }
  std::size_t macs_per_sample() const override;
  void quantize() override;
  bool is_quantized() const override { return quantized_; }

  int out_size(int in_size) const {
    return (in_size + 2 * pad_ - k_) / stride_ + 1;
  }
  int in_channels() const { return cin_; }
  int out_channels() const { return cout_; }
  int kernel() const { return k_; }
  const util::ScratchArena* scratch() const override { return &arena_; }

 private:
  void forward_naive(const Tensor& x, Tensor& y, int n, int h, int w, int oh,
                     int ow);
  void forward_gemm(const Tensor& x, Tensor& y, int n, int h, int w, int oh,
                    int ow);
  void backward_naive(const Tensor& grad_out, Tensor& dx, int n, int h, int w,
                      int oh, int ow);
  void backward_gemm(const Tensor& grad_out, Tensor& dx, int n, int h, int w,
                     int oh, int ow);

  int cin_, cout_, k_, stride_, pad_;
  bool quantized_ = false;
  QuantizedMatrix qw_;  // int8 snapshot of w_ as [Cout, Cin*k*k]
  Tensor w_, b_, gw_, gb_;  // w: [Cout, Cin, k, k]
  Tensor last_x_;
  mutable std::size_t last_out_hw_ = 0;  // set by forward, used by macs
  // im2col panels + packed weights; sized on first forward, reused after.
  util::ScratchArena arena_;
};

/// Transposed convolution (a.k.a. deconvolution) for decoder upsampling.
/// Output spatial size: (in-1)*stride - 2*pad + kernel.
class ConvTranspose2D : public Layer {
 public:
  ConvTranspose2D(int in_channels, int out_channels, int kernel, int stride,
                  int padding, Rng& rng);

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<Tensor*> params() override { return {&w_, &b_}; }
  std::vector<Tensor*> grads() override { return {&gw_, &gb_}; }
  std::size_t macs_per_sample() const override;
  void quantize() override;
  bool is_quantized() const override { return quantized_; }

  int out_size(int in_size) const {
    return (in_size - 1) * stride_ - 2 * pad_ + k_;
  }
  const util::ScratchArena* scratch() const override { return &arena_; }

 private:
  void forward_naive(const Tensor& x, Tensor& y, int n, int h, int w, int oh,
                     int ow);
  void forward_gemm(const Tensor& x, Tensor& y, int n, int h, int w, int oh,
                    int ow);
  void backward_naive(const Tensor& grad_out, Tensor& dx, int n, int h, int w,
                      int oh, int ow);
  void backward_gemm(const Tensor& grad_out, Tensor& dx, int n, int h, int w,
                     int oh, int ow);

  int cin_, cout_, k_, stride_, pad_;
  bool quantized_ = false;
  // One int8 weight snapshot per (py, px) sub-pixel phase — the same
  // dense [Cout, kdim] matrices forward_gemm gathers per call, built
  // once at quantize() time. Indexed py * stride + px.
  std::vector<QuantizedMatrix> qw_ph_;
  Tensor w_, b_, gw_, gb_;  // w: [Cin, Cout, k, k]
  Tensor last_x_;
  mutable std::size_t last_in_hw_ = 0;
  util::ScratchArena arena_;
};

}  // namespace s2a::nn
