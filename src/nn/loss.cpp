#include "nn/loss.hpp"

#include <cmath>

#include "util/check.hpp"

namespace s2a::nn {

LossResult mse_loss(const Tensor& pred, const Tensor& target) {
  S2A_CHECK(pred.same_shape(target));
  S2A_CHECK(pred.numel() > 0);
  LossResult r;
  r.grad = pred;
  const double inv_n = 1.0 / static_cast<double>(pred.numel());
  for (std::size_t i = 0; i < pred.numel(); ++i) {
    const double d = pred[i] - target[i];
    r.value += d * d;
    r.grad[i] = 2.0 * d * inv_n;
  }
  r.value *= inv_n;
  return r;
}

LossResult bce_with_logits(const Tensor& logits, const Tensor& target) {
  S2A_CHECK(logits.same_shape(target));
  S2A_CHECK(logits.numel() > 0);
  LossResult r;
  r.grad = logits;
  const double inv_n = 1.0 / static_cast<double>(logits.numel());
  for (std::size_t i = 0; i < logits.numel(); ++i) {
    const double x = logits[i], t = target[i];
    S2A_DCHECK(t >= 0.0 && t <= 1.0);
    // loss = max(x,0) - x*t + log(1 + exp(-|x|))
    r.value += std::max(x, 0.0) - x * t + std::log1p(std::exp(-std::abs(x)));
    const double sig = 1.0 / (1.0 + std::exp(-x));
    r.grad[i] = (sig - t) * inv_n;
  }
  r.value *= inv_n;
  return r;
}

Tensor softmax(const Tensor& logits) {
  S2A_CHECK(logits.shape().size() == 2);
  const int n = logits.dim(0), c = logits.dim(1);
  Tensor p = logits;
  for (int i = 0; i < n; ++i) {
    double mx = p[static_cast<std::size_t>(i) * c];
    for (int j = 1; j < c; ++j)
      mx = std::max(mx, p[static_cast<std::size_t>(i) * c + j]);
    double sum = 0.0;
    for (int j = 0; j < c; ++j) {
      double& e = p[static_cast<std::size_t>(i) * c + j];
      e = std::exp(e - mx);
      sum += e;
    }
    for (int j = 0; j < c; ++j) p[static_cast<std::size_t>(i) * c + j] /= sum;
  }
  return p;
}

LossResult softmax_cross_entropy(const Tensor& logits,
                                 const std::vector<int>& labels) {
  S2A_CHECK(logits.shape().size() == 2);
  const int n = logits.dim(0), c = logits.dim(1);
  S2A_CHECK(static_cast<int>(labels.size()) == n);
  LossResult r;
  r.grad = softmax(logits);
  const double inv_n = 1.0 / n;
  for (int i = 0; i < n; ++i) {
    const int y = labels[static_cast<std::size_t>(i)];
    S2A_CHECK_MSG(0 <= y && y < c, "label " << y << " out of range");
    const std::size_t idx = static_cast<std::size_t>(i) * c + y;
    r.value += -std::log(std::max(r.grad[idx], 1e-12));
    r.grad[idx] -= 1.0;
  }
  for (std::size_t i = 0; i < r.grad.numel(); ++i) r.grad[i] *= inv_n;
  r.value *= inv_n;
  return r;
}

double accuracy(const Tensor& logits, const std::vector<int>& labels) {
  S2A_CHECK(logits.shape().size() == 2);
  const int n = logits.dim(0), c = logits.dim(1);
  S2A_CHECK(static_cast<int>(labels.size()) == n);
  if (n == 0) return 0.0;
  int correct = 0;
  for (int i = 0; i < n; ++i) {
    int best = 0;
    for (int j = 1; j < c; ++j)
      if (logits[static_cast<std::size_t>(i) * c + j] >
          logits[static_cast<std::size_t>(i) * c + best])
        best = j;
    if (best == labels[static_cast<std::size_t>(i)]) ++correct;
  }
  return static_cast<double>(correct) / n;
}

}  // namespace s2a::nn
