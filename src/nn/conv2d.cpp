#include "nn/conv2d.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>

#include "nn/gemm.hpp"
#include "nn/im2col.hpp"
#include "obs/obs.hpp"
#include "util/check.hpp"
#include "util/thread_pool.hpp"

namespace s2a::nn {

namespace {

std::atomic<ConvBackend> g_backend{ConvBackend::kAuto};

// Forward passes below this many MACs run inline: pool dispatch would
// cost more than the convolution itself.
constexpr std::size_t kMinParallelMacs = 1 << 15;

// Splits `total` units of independent work into chunks sized for the
// global pool (~4 chunks per slot hides worker imbalance) and runs
// fn(lo, hi, band_arena) over them, giving each chunk a private
// ScratchArena slot for its im2col panel. Falls back to one inline call
// (slot 0) when the work is too small or effective_parallelism() says
// sharding cannot win — e.g. an S2A_THREADS override on a 1-core box.
// fn must write disjoint outputs per unit so results are bit-exact at
// every thread count.
void parallel_bands(
    std::size_t total, std::size_t macs, util::ScratchArena& arena,
    const std::function<void(std::size_t, std::size_t, util::ScratchArena&)>&
        fn) {
  util::ThreadPool& pool = util::global_pool();
  if (util::effective_parallelism() <= 1 || macs < kMinParallelMacs ||
      total <= 1) {
    arena.ensure_slots(1);
    fn(0, total, arena.slot(0));
    return;
  }
  const std::size_t grain = std::max<std::size_t>(
      1, total / (static_cast<std::size_t>(pool.size()) * 4));
  const std::size_t chunks = util::ThreadPool::num_chunks(0, total, grain);
  arena.ensure_slots(chunks);
  pool.parallel_for_chunks(0, total, grain,
                           [&fn, &arena](std::size_t lo, std::size_t hi,
                                         std::size_t c) {
                             fn(lo, hi, arena.slot(c));
                           });
}

// Row-sharded variant without arena slots, for the naive oracle loops.
void parallel_rows(std::size_t total, std::size_t macs,
                   const std::function<void(std::size_t, std::size_t)>& fn) {
  util::ThreadPool& pool = util::global_pool();
  if (util::effective_parallelism() <= 1 || macs < kMinParallelMacs ||
      total <= 1) {
    fn(0, total);
    return;
  }
  const std::size_t grain = std::max<std::size_t>(
      1, total / (static_cast<std::size_t>(pool.size()) * 4));
  pool.parallel_for_chunks(
      0, total, grain,
      [&fn](std::size_t lo, std::size_t hi, std::size_t) { fn(lo, hi); });
}

Tensor conv_weight_init(int c0, int c1, int k, Rng& rng) {
  const int fan_in = c1 * k * k;
  Tensor w({c0, c1, k, k});
  const double stddev = std::sqrt(2.0 / fan_in);
  for (std::size_t i = 0; i < w.numel(); ++i) w[i] = rng.normal(0.0, stddev);
  return w;
}

inline std::size_t idx4(int a, int b, int c, int d, int db, int dc, int dd) {
  return ((static_cast<std::size_t>(a) * db + b) * dc + c) * dd + d;
}
}  // namespace

void set_conv_backend(ConvBackend backend) { g_backend.store(backend); }

ConvBackend conv_backend() {
  const ConvBackend b = g_backend.load();
  if (b != ConvBackend::kAuto) return b;
  const char* s = std::getenv("S2A_NAIVE_CONV");
  return (s != nullptr && *s == '1') ? ConvBackend::kNaive
                                     : ConvBackend::kGemm;
}

Conv2D::Conv2D(int in_channels, int out_channels, int kernel, int stride,
               int padding, Rng& rng)
    : cin_(in_channels),
      cout_(out_channels),
      k_(kernel),
      stride_(stride),
      pad_(padding),
      w_(conv_weight_init(out_channels, in_channels, kernel, rng)),
      b_({out_channels}),
      gw_({out_channels, in_channels, kernel, kernel}),
      gb_({out_channels}) {
  S2A_CHECK(kernel > 0 && stride > 0 && padding >= 0);
}

Tensor Conv2D::forward(const Tensor& x) {
  S2A_CHECK_MSG(x.shape().size() == 4 && x.dim(1) == cin_,
                "Conv2D expects [N," << cin_ << ",H,W]");
  last_x_ = x;
  const int n = x.dim(0), h = x.dim(2), w = x.dim(3);
  const int oh = out_size(h), ow = out_size(w);
  S2A_CHECK_MSG(oh > 0 && ow > 0, "conv output collapsed to zero");
  last_out_hw_ = static_cast<std::size_t>(oh) * ow;

  Tensor y({n, cout_, oh, ow});
  if (conv_backend() == ConvBackend::kNaive)
    forward_naive(x, y, n, h, w, oh, ow);
  else
    forward_gemm(x, y, n, h, w, oh, ow);
  return y;
}

// im2col + blocked-GEMM path. The band space is the flattened
// (image, output-row) grid — one parallel pass covers the whole batch,
// so a batched forward (nn/batch.hpp, the fleet's cross-loop inference
// path) shards across the batch axis instead of serializing per image.
// Each band of output rows lowers its input patches into a private
// column panel (band arena) and multiplies the packed weight panel —
// packed ONCE per call, covering every image — against it, writing the
// band's slice of y directly. Bands are disjoint in y and the GEMM
// accumulates every element in ascending (ic, ky, kx) order — the naive
// loop's order — so this is bit-exact vs. forward_naive, across thread
// counts, and across batch compositions (the band split only changes
// which elements go together).
void Conv2D::forward_gemm(const Tensor& x, Tensor& y, int n, int h, int w,
                          int oh, int ow) {
  const int kdim = im2col_rows(cin_, k_);
  const std::size_t out_hw = static_cast<std::size_t>(oh) * ow;
  arena_.reset();
  // Int8 path (quantize() + S2A_QUANT=1): same lowering, but each band's
  // column panel is quantized against ONE per-tensor activation scale —
  // computed over the whole input, so the band split cannot change the
  // quantization grid — and multiplied by the int8 weight snapshot.
  // Integer accumulation is order-exact, so this path is deterministic
  // across thread counts too.
  const bool int8 = quantized_ && quant_backend() == QuantBackend::kInt8;
  const double xs = int8 ? activation_scale(x.data(), x.numel()) : 0.0;
  double* wp = nullptr;
  if (!int8) {
    // Weights move between forwards during training, so repack per call —
    // O(cout*cin*k^2), noise next to the GEMM itself.
    wp = arena_.alloc(packed_a_size(cout_, kdim));
    pack_a(w_.data(), kdim, cout_, kdim, wp);
  }

  const std::size_t macs = static_cast<std::size_t>(cout_) * kdim *
                           static_cast<std::size_t>(n) * out_hw;
  parallel_bands(
      static_cast<std::size_t>(n) * oh, macs, arena_,
      [&](std::size_t lo, std::size_t hi, util::ScratchArena& band_arena) {
        band_arena.reset();
        // A chunk may span image boundaries; split it at each one so the
        // im2col/GEMM below always sees rows of a single image.
        for (std::size_t u = lo; u < hi;) {
          const int b = static_cast<int>(u / static_cast<std::size_t>(oh));
          const int oy_lo = static_cast<int>(u % static_cast<std::size_t>(oh));
          const int oy_hi = static_cast<int>(
              std::min<std::size_t>(static_cast<std::size_t>(oh),
                                    static_cast<std::size_t>(oy_lo) + (hi - u)));
          const double* xb =
              x.data() + static_cast<std::size_t>(b) * cin_ * h * w;
          double* yb = y.data() + static_cast<std::size_t>(b) * cout_ * out_hw;
          const int width = (oy_hi - oy_lo) * ow;
          double* col =
              band_arena.alloc(static_cast<std::size_t>(kdim) * width);
          im2col(xb, cin_, h, w, k_, stride_, pad_, ow, oy_lo, oy_hi, col);
          double* cband = yb + static_cast<std::size_t>(oy_lo) * ow;
          for (int oc = 0; oc < cout_; ++oc)
            std::fill_n(cband + static_cast<std::size_t>(oc) * out_hw, width,
                        b_[static_cast<std::size_t>(oc)]);
          if (int8) {
            const std::size_t count = static_cast<std::size_t>(kdim) * width;
            std::int8_t* colq = alloc_int8(band_arena, count);
            quantize_values(col, count, xs, colq);
            gemm_int8(qw_, width, colq, width, xs, cband,
                      static_cast<int>(out_hw));
          } else {
            gemm_packed(cout_, width, kdim, wp, col, width, cband,
                        static_cast<int>(out_hw));
          }
          u += static_cast<std::size_t>(oy_hi - oy_lo);
        }
      });
}

// Direct-loop oracle (S2A_NAIVE_CONV=1): the original implementation,
// kept verbatim so the kernel equivalence tests have a fixed reference.
void Conv2D::forward_naive(const Tensor& x, Tensor& y, int n, int h, int w,
                           int oh, int ow) {
  // Rows (b, oc, oy) are independent — each output element is produced by
  // exactly one row, with a fixed inner summation order, so the sharded
  // and serial passes are bit-identical.
  const std::size_t total_rows = static_cast<std::size_t>(n) * cout_ * oh;
  const std::size_t macs = static_cast<std::size_t>(cout_) * cin_ * k_ * k_ *
                           static_cast<std::size_t>(n) * oh * ow;
  parallel_rows(total_rows, macs, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t row = lo; row < hi; ++row) {
      const int oy = static_cast<int>(row % static_cast<std::size_t>(oh));
      const int oc = static_cast<int>((row / static_cast<std::size_t>(oh)) %
                                      static_cast<std::size_t>(cout_));
      const int b = static_cast<int>(row / static_cast<std::size_t>(oh) /
                                     static_cast<std::size_t>(cout_));
      for (int ox = 0; ox < ow; ++ox) {
        double acc = b_[static_cast<std::size_t>(oc)];
        for (int ic = 0; ic < cin_; ++ic)
          for (int ky = 0; ky < k_; ++ky) {
            const int iy = oy * stride_ + ky - pad_;
            if (iy < 0 || iy >= h) continue;
            for (int kx = 0; kx < k_; ++kx) {
              const int ix = ox * stride_ + kx - pad_;
              if (ix < 0 || ix >= w) continue;
              acc += x[idx4(b, ic, iy, ix, cin_, h, w)] *
                     w_[idx4(oc, ic, ky, kx, cin_, k_, k_)];
            }
          }
        y[idx4(b, oc, oy, ox, cout_, oh, ow)] = acc;
      }
    }
  });
}

Tensor Conv2D::backward(const Tensor& grad_out) {
  S2A_TRACE_SCOPE_CAT("nn.conv_backward", "nn");
  S2A_CHECK(!last_x_.empty());
  const int n = last_x_.dim(0), h = last_x_.dim(2), w = last_x_.dim(3);
  const int oh = out_size(h), ow = out_size(w);
  S2A_CHECK(grad_out.shape().size() == 4 && grad_out.dim(1) == cout_ &&
            grad_out.dim(2) == oh && grad_out.dim(3) == ow);

  // Bias gradient, shared by both backends: one addend per output pixel
  // of the channel, accumulated in (b, oy, ox) order.
  const std::size_t out_hw = static_cast<std::size_t>(oh) * ow;
  for (int b = 0; b < n; ++b)
    for (int oc = 0; oc < cout_; ++oc) {
      const double* g = grad_out.data() +
                        (static_cast<std::size_t>(b) * cout_ + oc) * out_hw;
      double acc = gb_[static_cast<std::size_t>(oc)];
      for (std::size_t i = 0; i < out_hw; ++i) acc += g[i];
      gb_[static_cast<std::size_t>(oc)] = acc;
    }

  Tensor dx({n, cin_, h, w});
  if (conv_backend() == ConvBackend::kNaive)
    backward_naive(grad_out, dx, n, h, w, oh, ow);
  else
    backward_gemm(grad_out, dx, n, h, w, oh, ow);
  return dx;
}

// Direct-loop oracle (S2A_NAIVE_CONV=1), written in the GEMM chain
// order so the two backends agree bit-for-bit (the finite-difference
// tests independently pin the arithmetic):
//  - each gW element sums g*x over (b; oy, ox) ascending,
//  - each dx element sums per-tap (ky, kx ascending) sub-chains, each
//    sub-chain reducing over out-channels from zero first.
// Out-of-range taps are skipped here and zero-filled in the lowered
// matrices; adding a*0.0 to a finite accumulator is exact, so both
// treatments leave identical bits.
void Conv2D::backward_naive(const Tensor& grad_out, Tensor& dx, int n, int h,
                            int w, int oh, int ow) {
  for (int b = 0; b < n; ++b) {
    for (int oc = 0; oc < cout_; ++oc)
      for (int ic = 0; ic < cin_; ++ic)
        for (int ky = 0; ky < k_; ++ky)
          for (int kx = 0; kx < k_; ++kx) {
            double acc = gw_[idx4(oc, ic, ky, kx, cin_, k_, k_)];
            for (int oy = 0; oy < oh; ++oy) {
              const int iy = oy * stride_ + ky - pad_;
              if (iy < 0 || iy >= h) continue;
              for (int ox = 0; ox < ow; ++ox) {
                const int ix = ox * stride_ + kx - pad_;
                if (ix < 0 || ix >= w) continue;
                acc += grad_out[idx4(b, oc, oy, ox, cout_, oh, ow)] *
                       last_x_[idx4(b, ic, iy, ix, cin_, h, w)];
              }
            }
            gw_[idx4(oc, ic, ky, kx, cin_, k_, k_)] = acc;
          }
    for (int ic = 0; ic < cin_; ++ic)
      for (int iy = 0; iy < h; ++iy)
        for (int ix = 0; ix < w; ++ix) {
          double acc = 0.0;
          for (int ky = 0; ky < k_; ++ky) {
            const int num_y = iy + pad_ - ky;
            if (num_y < 0 || num_y % stride_ != 0) continue;
            const int oy = num_y / stride_;
            if (oy >= oh) continue;
            for (int kx = 0; kx < k_; ++kx) {
              const int num_x = ix + pad_ - kx;
              if (num_x < 0 || num_x % stride_ != 0) continue;
              const int ox = num_x / stride_;
              if (ox >= ow) continue;
              double t = 0.0;
              for (int oc = 0; oc < cout_; ++oc)
                t += grad_out[idx4(b, oc, oy, ox, cout_, oh, ow)] *
                     w_[idx4(oc, ic, ky, kx, cin_, k_, k_)];
              acc += t;
            }
          }
          dx[idx4(b, ic, iy, ix, cin_, h, w)] = acc;
        }
  }
}

// GEMM backward. Per image:
//   gW += G_b x im2col(x_b)ᵀ   (reduction over output pixels, ascending)
//   dcol = Wᵀ x G_b ; dx_b = col2im(dcol)   (per-tap oc-sums, folded in
//                                            (ky, kx) order)
// Sharding keeps every gradient element's complete reduction chain
// inside one task — im2col_t bands write disjoint rows, the gW/dcol
// GEMMs are striped over *columns* (never over the reduction axis), and
// col2im_band splits by input row — so results are bit-identical to
// backward_naive at every thread count.
void Conv2D::backward_gemm(const Tensor& grad_out, Tensor& dx, int n, int h,
                           int w, int oh, int ow) {
  const int kdim = im2col_rows(cin_, k_);
  const std::size_t out_hw = static_cast<std::size_t>(oh) * ow;
  const std::size_t in_hw = static_cast<std::size_t>(h) * w;
  arena_.reset();
  // Root allocations happen on the calling thread before any parallel
  // section; tasks only read them (or write disjoint slices).
  double* wt = arena_.alloc(static_cast<std::size_t>(kdim) * cout_);
  transpose(w_.data(), cout_, kdim, wt);
  double* wtp = arena_.alloc(packed_a_size(kdim, cout_));
  pack_a(wt, cout_, kdim, cout_, wtp);
  double* colt = arena_.alloc(out_hw * static_cast<std::size_t>(kdim));
  double* gpk = arena_.alloc(packed_a_size(cout_, static_cast<int>(out_hw)));
  double* dcol = arena_.alloc(static_cast<std::size_t>(kdim) * out_hw);

  const std::size_t macs = static_cast<std::size_t>(cout_) * kdim *
                           static_cast<std::size_t>(n) * out_hw;
  for (int b = 0; b < n; ++b) {
    const double* gb =
        grad_out.data() + static_cast<std::size_t>(b) * cout_ * out_hw;
    const double* xb =
        last_x_.data() + static_cast<std::size_t>(b) * cin_ * in_hw;
    double* dxb = dx.data() + static_cast<std::size_t>(b) * cin_ * in_hw;

    // im2col(x_b)ᵀ: bands of output rows write disjoint row ranges.
    parallel_rows(static_cast<std::size_t>(oh), macs,
                  [&](std::size_t lo, std::size_t hi) {
                    im2col_t(xb, cin_, h, w, k_, stride_, pad_, ow,
                             static_cast<int>(lo), static_cast<int>(hi),
                             colt + lo * ow * kdim);
                  });

    // gW += G_b x colt, striped over gW columns: each element's whole
    // per-image reduction (ascending output pixels) runs in one stripe.
    pack_a(gb, static_cast<int>(out_hw), cout_, static_cast<int>(out_hw),
           gpk);
    parallel_rows(static_cast<std::size_t>(kdim), macs,
                  [&](std::size_t lo, std::size_t hi) {
                    gemm_packed(cout_, static_cast<int>(hi - lo),
                                static_cast<int>(out_hw), gpk, colt + lo,
                                kdim, gw_.data() + lo, kdim);
                  });

    // dcol = Wᵀ x G_b, striped over output pixels (zero-init per stripe
    // so each element's oc-reduction starts from 0 like the oracle's t).
    parallel_rows(out_hw, macs, [&](std::size_t lo, std::size_t hi) {
      for (int r = 0; r < kdim; ++r)
        std::fill_n(dcol + static_cast<std::size_t>(r) * out_hw + lo, hi - lo,
                    0.0);
      gemm_packed(kdim, static_cast<int>(hi - lo), cout_, wtp, gb + lo,
                  static_cast<int>(out_hw), dcol + lo,
                  static_cast<int>(out_hw));
    });

    // Fold dcol onto dx_b, banded over input rows: each dx element gets
    // all of its (ky, kx) addends inside one band.
    parallel_rows(static_cast<std::size_t>(h), macs,
                  [&](std::size_t lo, std::size_t hi) {
                    col2im_band(dcol, cin_, h, w, k_, stride_, pad_, ow,
                                static_cast<int>(lo), static_cast<int>(hi),
                                dxb);
                  });
  }
}

std::size_t Conv2D::macs_per_sample() const {
  return static_cast<std::size_t>(cout_) * cin_ * k_ * k_ * last_out_hw_;
}

void Conv2D::quantize() {
  // One row per output channel over the (ic, ky, kx) reduction — w_ is
  // [Cout, Cin, k, k] row-major, so each row is already contiguous.
  const int kdim = im2col_rows(cin_, k_);
  qw_ = quantize_rows(w_.data(), kdim, cout_, kdim);
  quantized_ = true;
}

ConvTranspose2D::ConvTranspose2D(int in_channels, int out_channels, int kernel,
                                 int stride, int padding, Rng& rng)
    : cin_(in_channels),
      cout_(out_channels),
      k_(kernel),
      stride_(stride),
      pad_(padding),
      w_(conv_weight_init(in_channels, out_channels, kernel, rng)),
      b_({out_channels}),
      gw_({in_channels, out_channels, kernel, kernel}),
      gb_({out_channels}) {
  S2A_CHECK(kernel > 0 && stride > 0 && padding >= 0);
}

Tensor ConvTranspose2D::forward(const Tensor& x) {
  S2A_CHECK(x.shape().size() == 4 && x.dim(1) == cin_);
  last_x_ = x;
  const int n = x.dim(0), h = x.dim(2), w = x.dim(3);
  const int oh = out_size(h), ow = out_size(w);
  S2A_CHECK(oh > 0 && ow > 0);
  last_in_hw_ = static_cast<std::size_t>(h) * w;

  Tensor y({n, cout_, oh, ow});
  if (conv_backend() == ConvBackend::kNaive)
    forward_naive(x, y, n, h, w, oh, ow);
  else
    forward_gemm(x, y, n, h, w, oh, ow);
  return y;
}

// Deconv as flipped-kernel im2col with sub-pixel phase decomposition.
//
// Gathering output pixel (oy, ox) over flipped taps visits the
// scattering inputs in exactly the naive loop's (ic, iy, ix) order
// (iy/ix ascend as the flipped taps ascend), so the GEMM chain matches
// the naive scatter per element.
//
// For stride 1 every tap can contribute to every output pixel and a
// single full-K GEMM over im2col_flipped is efficient. For stride s > 1
// only taps with ky % s == (oy+pad) % s (and likewise for x) pass the
// phase gate — a full-K GEMM would spend (s*s-1)/(s*s) of its MACs
// multiplying structural zeros. So the output is split into its s*s
// sub-pixel phase grids, each with a dense tap list and its own
// repacked weight panel, and each phase runs a compact GEMM into a
// scratch tile that is scattered onto y. Dropping the structural zeros
// removes exact no-op additions from each element's chain, so the
// result stays bit-identical to the naive scatter.
void ConvTranspose2D::forward_gemm(const Tensor& x, Tensor& y, int n, int h,
                                   int w, int oh, int ow) {
  const std::size_t out_hw = static_cast<std::size_t>(oh) * ow;
  const int s = stride_;
  arena_.reset();
  // Int8 path: the per-phase weight matrices were snapshotted by
  // quantize(); each phase's column panel is quantized against the one
  // whole-input activation scale (band-invariant) before its compact
  // int8 GEMM.
  const bool int8 = quantized_ && quant_backend() == QuantBackend::kInt8;
  const double xs = int8 ? activation_scale(x.data(), x.numel()) : 0.0;

  // Tap lists per phase: ky values with ky % s == phase, descending so
  // ascending list order is ascending source row iy.
  std::vector<std::vector<int>> phase_taps(static_cast<std::size_t>(s));
  for (int p = 0; p < s; ++p)
    for (int t = k_ - 1; t >= 0; --t)
      if (t % s == p) phase_taps[static_cast<std::size_t>(p)].push_back(t);

  // Repacked weight panel per (py, px) phase pair: rows (ic, jy, jx)
  // over the dense tap lists, matching the phase column matrix below.
  std::vector<double*> wp(static_cast<std::size_t>(s) * s, nullptr);
  std::vector<int> kdim_ph(static_cast<std::size_t>(s) * s, 0);
  for (int py = 0; py < s; ++py)
    for (int px = 0; px < s; ++px) {
      const auto& kys = phase_taps[static_cast<std::size_t>(py)];
      const auto& kxs = phase_taps[static_cast<std::size_t>(px)];
      const int nky = static_cast<int>(kys.size());
      const int nkx = static_cast<int>(kxs.size());
      const int kdim = cin_ * nky * nkx;
      kdim_ph[static_cast<std::size_t>(py) * s + px] = kdim;
      if (kdim == 0 || int8) continue;
      double* wph = arena_.alloc(static_cast<std::size_t>(cout_) * kdim);
      for (int ic = 0; ic < cin_; ++ic)
        for (int jy = 0; jy < nky; ++jy)
          for (int jx = 0; jx < nkx; ++jx) {
            const int r = (ic * nky + jy) * nkx + jx;
            for (int oc = 0; oc < cout_; ++oc)
              wph[static_cast<std::size_t>(oc) * kdim + r] =
                  w_[idx4(ic, oc, kys[static_cast<std::size_t>(jy)],
                          kxs[static_cast<std::size_t>(jx)], cout_, k_, k_)];
          }
      double* packed = arena_.alloc(packed_a_size(cout_, kdim));
      pack_a(wph, kdim, cout_, kdim, packed);
      wp[static_cast<std::size_t>(py) * s + px] = packed;
    }

  // One band of one image: every phase subgrid intersecting output rows
  // [oy_lo, oy_hi) of image b gets its compact GEMM. Extracted so the
  // cross-image band pass below can split a chunk at image boundaries.
  const auto run_band = [&](int b, int oy_lo, int oy_hi,
                            util::ScratchArena& band_arena) {
    const double* xb = x.data() + static_cast<std::size_t>(b) * cin_ * h * w;
    double* yb = y.data() + static_cast<std::size_t>(b) * cout_ * out_hw;
    for (int py = 0; py < s; ++py)
            for (int px = 0; px < s; ++px) {
              // This phase's output subgrid within the band: rows
              // oy0, oy0+s, ... and columns ox0, ox0+s, ...
              int oy0 = oy_lo;
              while (oy0 < oy_hi && (oy0 + pad_) % s != py) ++oy0;
              const int ny = oy0 < oy_hi ? (oy_hi - oy0 + s - 1) / s : 0;
              const int ox0_raw = (px - pad_) % s;
              const int ox0 = ox0_raw < 0 ? ox0_raw + s : ox0_raw;
              const int nx = ox0 < ow ? (ow - ox0 + s - 1) / s : 0;
              if (ny == 0 || nx == 0) continue;

              const int kdim = kdim_ph[static_cast<std::size_t>(py) * s + px];
              const int nph = ny * nx;
              if (kdim == 0) {
                // No tap reaches this phase (kernel shorter than the
                // stride): those pixels are pure bias.
                for (int oc = 0; oc < cout_; ++oc)
                  for (int yi = 0; yi < ny; ++yi) {
                    double* yrow = yb + static_cast<std::size_t>(oc) * out_hw +
                                   static_cast<std::size_t>(oy0 + yi * s) * ow;
                    for (int xi = 0; xi < nx; ++xi)
                      yrow[ox0 + xi * s] = b_[static_cast<std::size_t>(oc)];
                  }
                continue;
              }

              const auto& kys = phase_taps[static_cast<std::size_t>(py)];
              const auto& kxs = phase_taps[static_cast<std::size_t>(px)];
              const int nky = static_cast<int>(kys.size());
              const int nkx = static_cast<int>(kxs.size());
              double* col =
                  band_arena.alloc(static_cast<std::size_t>(kdim) * nph);
              double* row = col;
              for (int ic = 0; ic < cin_; ++ic) {
                const double* plane =
                    xb + static_cast<std::size_t>(ic) * h * w;
                for (int jy = 0; jy < nky; ++jy) {
                  const int ky = kys[static_cast<std::size_t>(jy)];
                  for (int jx = 0; jx < nkx; ++jx) {
                    const int kx = kxs[static_cast<std::size_t>(jx)];
                    for (int yi = 0; yi < ny; ++yi) {
                      // Phase membership guarantees s divides num_y.
                      const int num_y = oy0 + yi * s + pad_ - ky;
                      const int iy = num_y / s;
                      double* dst = row + static_cast<std::size_t>(yi) * nx;
                      if (num_y < 0 || iy >= h) {
                        std::fill_n(dst, nx, 0.0);
                        continue;
                      }
                      const double* src =
                          plane + static_cast<std::size_t>(iy) * w;
                      for (int xi = 0; xi < nx; ++xi) {
                        const int num_x = ox0 + xi * s + pad_ - kx;
                        const int ix = num_x / s;
                        dst[xi] = (num_x < 0 || ix >= w) ? 0.0 : src[ix];
                      }
                    }
                    row += static_cast<std::size_t>(nph);
                  }
                }
              }

              double* tile =
                  band_arena.alloc(static_cast<std::size_t>(cout_) * nph);
              for (int oc = 0; oc < cout_; ++oc)
                std::fill_n(tile + static_cast<std::size_t>(oc) * nph, nph,
                            b_[static_cast<std::size_t>(oc)]);
              if (int8) {
                const std::size_t count =
                    static_cast<std::size_t>(kdim) * nph;
                std::int8_t* colq = alloc_int8(band_arena, count);
                quantize_values(col, count, xs, colq);
                gemm_int8(qw_ph_[static_cast<std::size_t>(py) * s + px], nph,
                          colq, nph, xs, tile, nph);
              } else {
                gemm_packed(cout_, nph, kdim,
                            wp[static_cast<std::size_t>(py) * s + px], col,
                            nph, tile, nph);
              }
              for (int oc = 0; oc < cout_; ++oc) {
                const double* trow = tile + static_cast<std::size_t>(oc) * nph;
                for (int yi = 0; yi < ny; ++yi) {
                  double* yrow =
                      yb + static_cast<std::size_t>(oc) * out_hw +
                      static_cast<std::size_t>(oy0 + yi * s) * ow;
                  for (int xi = 0; xi < nx; ++xi)
                    yrow[ox0 + xi * s] =
                        trow[static_cast<std::size_t>(yi) * nx + xi];
                }
              }
            }
  };

  // Band space is the flattened (image, output-row) grid, so a batched
  // forward shards across the batch axis in one pass (see
  // Conv2D::forward_gemm for the bit-exactness argument).
  const std::size_t macs = static_cast<std::size_t>(cin_) * cout_ * k_ * k_ *
                           static_cast<std::size_t>(n) * h * w;
  parallel_bands(
      static_cast<std::size_t>(n) * oh, macs, arena_,
      [&](std::size_t lo, std::size_t hi, util::ScratchArena& band_arena) {
        band_arena.reset();
        for (std::size_t u = lo; u < hi;) {
          const int b = static_cast<int>(u / static_cast<std::size_t>(oh));
          const int oy_lo = static_cast<int>(u % static_cast<std::size_t>(oh));
          const int oy_hi = static_cast<int>(
              std::min<std::size_t>(static_cast<std::size_t>(oh),
                                    static_cast<std::size_t>(oy_lo) + (hi - u)));
          run_band(b, oy_lo, oy_hi, band_arena);
          u += static_cast<std::size_t>(oy_hi - oy_lo);
        }
      });
}

// Direct scatter oracle (S2A_NAIVE_CONV=1): the original implementation.
void ConvTranspose2D::forward_naive(const Tensor& x, Tensor& y, int n, int h,
                                    int w, int oh, int ow) {
  // Sharded over bands of output rows: each band scatters only from the
  // input rows that can reach it (iy such that iy*stride + ky - pad lands
  // in [lo, hi)) and skips contributions outside its band, so every
  // output element is written by exactly one task with the same
  // accumulation order (b, ic, iy, ix) as a serial pass.
  const std::size_t macs = static_cast<std::size_t>(cin_) * cout_ * k_ * k_ *
                           static_cast<std::size_t>(n) * h * w;
  parallel_rows(
      static_cast<std::size_t>(oh), macs,
      [&](std::size_t band_lo, std::size_t band_hi) {
        const int lo = static_cast<int>(band_lo);
        const int hi = static_cast<int>(band_hi);
        for (int b = 0; b < n; ++b)
          for (int oc = 0; oc < cout_; ++oc)
            for (int oy = lo; oy < hi; ++oy)
              for (int ox = 0; ox < ow; ++ox)
                y[idx4(b, oc, oy, ox, cout_, oh, ow)] =
                    b_[static_cast<std::size_t>(oc)];

        const int lo_num = lo + pad_ - (k_ - 1);
        const int iy_lo = lo_num > 0 ? (lo_num + stride_ - 1) / stride_ : 0;
        const int iy_hi = std::min(h - 1, (hi - 1 + pad_) / stride_);
        for (int b = 0; b < n; ++b)
          for (int ic = 0; ic < cin_; ++ic)
            for (int iy = iy_lo; iy <= iy_hi; ++iy)
              for (int ix = 0; ix < w; ++ix) {
                const double v = x[idx4(b, ic, iy, ix, cin_, h, w)];
                if (v == 0.0) continue;
                for (int oc = 0; oc < cout_; ++oc)
                  for (int ky = 0; ky < k_; ++ky) {
                    const int oy = iy * stride_ + ky - pad_;
                    if (oy < lo || oy >= hi) continue;
                    for (int kx = 0; kx < k_; ++kx) {
                      const int ox = ix * stride_ + kx - pad_;
                      if (ox < 0 || ox >= ow) continue;
                      y[idx4(b, oc, oy, ox, cout_, oh, ow)] +=
                          v * w_[idx4(ic, oc, ky, kx, cout_, k_, k_)];
                    }
                  }
              }
      });
}

Tensor ConvTranspose2D::backward(const Tensor& grad_out) {
  S2A_TRACE_SCOPE_CAT("nn.deconv_backward", "nn");
  S2A_CHECK(!last_x_.empty());
  const int n = last_x_.dim(0), h = last_x_.dim(2), w = last_x_.dim(3);
  const int oh = out_size(h), ow = out_size(w);
  S2A_CHECK(grad_out.shape().size() == 4 && grad_out.dim(1) == cout_ &&
            grad_out.dim(2) == oh && grad_out.dim(3) == ow);

  // Bias gradient, shared by both backends ((b, oy, ox) order).
  const std::size_t out_hw = static_cast<std::size_t>(oh) * ow;
  for (int b = 0; b < n; ++b)
    for (int oc = 0; oc < cout_; ++oc) {
      const double* g = grad_out.data() +
                        (static_cast<std::size_t>(b) * cout_ + oc) * out_hw;
      double acc = gb_[static_cast<std::size_t>(oc)];
      for (std::size_t i = 0; i < out_hw; ++i) acc += g[i];
      gb_[static_cast<std::size_t>(oc)] = acc;
    }

  Tensor dx({n, cin_, h, w});
  if (conv_backend() == ConvBackend::kNaive)
    backward_naive(grad_out, dx, n, h, w, oh, ow);
  else
    backward_gemm(grad_out, dx, n, h, w, oh, ow);
  return dx;
}

// Direct-loop oracle (S2A_NAIVE_CONV=1): the original gather loops,
// whose per-element chains already match the GEMM lowering — gW
// elements sum g*x over (b; iy, ix) ascending, dx elements sum g*w over
// (oc, ky, kx) ascending.
void ConvTranspose2D::backward_naive(const Tensor& grad_out, Tensor& dx,
                                     int n, int h, int w, int oh, int ow) {
  for (int b = 0; b < n; ++b)
    for (int ic = 0; ic < cin_; ++ic)
      for (int iy = 0; iy < h; ++iy)
        for (int ix = 0; ix < w; ++ix) {
          const double v = last_x_[idx4(b, ic, iy, ix, cin_, h, w)];
          double acc = 0.0;
          for (int oc = 0; oc < cout_; ++oc)
            for (int ky = 0; ky < k_; ++ky) {
              const int oy = iy * stride_ + ky - pad_;
              if (oy < 0 || oy >= oh) continue;
              for (int kx = 0; kx < k_; ++kx) {
                const int ox = ix * stride_ + kx - pad_;
                if (ox < 0 || ox >= ow) continue;
                const double g = grad_out[idx4(b, oc, oy, ox, cout_, oh, ow)];
                acc += g * w_[idx4(ic, oc, ky, kx, cout_, k_, k_)];
                gw_[idx4(ic, oc, ky, kx, cout_, k_, k_)] += g * v;
              }
            }
          dx[idx4(b, ic, iy, ix, cin_, h, w)] = acc;
        }
}

// GEMM backward. The deconv's backward-input pass is a *plain* strided
// convolution of grad_out with the un-flipped kernel (W viewed as
// [cin, cout*k*k]): the forward's scatter oy = iy*s + ky - pad becomes
// a gather with the stride folded into the im2col addressing, so no
// phase decomposition is needed — unlike the forward there are no
// structural zeros to skip. Per image:
//   gW += X_b x im2col(G_b)ᵀ   (reduction over input pixels, ascending)
//   dx_b = W x im2col(G_b)      (banded over input rows, like a forward)
// Same sharding rules as Conv2D::backward_gemm, so bit-identical to the
// oracle at every thread count.
void ConvTranspose2D::backward_gemm(const Tensor& grad_out, Tensor& dx,
                                    int n, int h, int w, int oh, int ow) {
  const int kdim = im2col_rows(cout_, k_);
  const std::size_t out_hw = static_cast<std::size_t>(oh) * ow;
  const std::size_t in_hw = static_cast<std::size_t>(h) * w;
  arena_.reset();
  // w_ is [Cin, Cout, k, k] row-major — already the [cin, kdim] A matrix
  // of the adjoint convolution; no transpose needed.
  double* wp = arena_.alloc(packed_a_size(cin_, kdim));
  pack_a(w_.data(), kdim, cin_, kdim, wp);
  double* colt = arena_.alloc(in_hw * static_cast<std::size_t>(kdim));
  double* xpk = arena_.alloc(packed_a_size(cin_, static_cast<int>(in_hw)));

  const std::size_t macs = static_cast<std::size_t>(cin_) * kdim *
                           static_cast<std::size_t>(n) * in_hw;
  for (int b = 0; b < n; ++b) {
    const double* gb =
        grad_out.data() + static_cast<std::size_t>(b) * cout_ * out_hw;
    const double* xb =
        last_x_.data() + static_cast<std::size_t>(b) * cin_ * in_hw;
    double* dxb = dx.data() + static_cast<std::size_t>(b) * cin_ * in_hw;

    // im2col(G_b)ᵀ over the adjoint-conv geometry: its "output" pixels
    // are the deconv's input pixels, so bands split input rows.
    parallel_rows(static_cast<std::size_t>(h), macs,
                  [&](std::size_t lo, std::size_t hi) {
                    im2col_t(gb, cout_, oh, ow, k_, stride_, pad_, w,
                             static_cast<int>(lo), static_cast<int>(hi),
                             colt + lo * w * kdim);
                  });

    // gW += X_b x colt, striped over gW columns.
    pack_a(xb, static_cast<int>(in_hw), cin_, static_cast<int>(in_hw), xpk);
    parallel_rows(static_cast<std::size_t>(kdim), macs,
                  [&](std::size_t lo, std::size_t hi) {
                    gemm_packed(cin_, static_cast<int>(hi - lo),
                                static_cast<int>(in_hw), xpk, colt + lo,
                                kdim, gw_.data() + lo, kdim);
                  });

    // dx_b = W x im2col(G_b), banded over input rows with per-band
    // column panels (mirrors Conv2D::forward_gemm; dx is zero-init so
    // each element's chain starts from 0 like the oracle's acc).
    parallel_bands(
        static_cast<std::size_t>(h), macs, arena_,
        [&](std::size_t lo, std::size_t hi, util::ScratchArena& band_arena) {
          const int iy_lo = static_cast<int>(lo), iy_hi = static_cast<int>(hi);
          const int width = (iy_hi - iy_lo) * w;
          band_arena.reset();
          double* col =
              band_arena.alloc(static_cast<std::size_t>(kdim) * width);
          im2col(gb, cout_, oh, ow, k_, stride_, pad_, w, iy_lo, iy_hi, col);
          gemm_packed(cin_, width, kdim, wp, col, width,
                      dxb + static_cast<std::size_t>(iy_lo) * w,
                      static_cast<int>(in_hw));
        });
  }
}

void ConvTranspose2D::quantize() {
  // Snapshot the same dense per-phase [Cout, kdim] matrices
  // forward_gemm gathers each call (rows (ic, jy, jx) over the
  // descending-tap lists), one QuantizedMatrix per (py, px) phase.
  const int s = stride_;
  std::vector<std::vector<int>> phase_taps(static_cast<std::size_t>(s));
  for (int p = 0; p < s; ++p)
    for (int t = k_ - 1; t >= 0; --t)
      if (t % s == p) phase_taps[static_cast<std::size_t>(p)].push_back(t);
  qw_ph_.assign(static_cast<std::size_t>(s) * s, QuantizedMatrix{});
  std::vector<double> wph;
  for (int py = 0; py < s; ++py)
    for (int px = 0; px < s; ++px) {
      const auto& kys = phase_taps[static_cast<std::size_t>(py)];
      const auto& kxs = phase_taps[static_cast<std::size_t>(px)];
      const int nky = static_cast<int>(kys.size());
      const int nkx = static_cast<int>(kxs.size());
      const int kdim = cin_ * nky * nkx;
      if (kdim == 0) continue;
      wph.assign(static_cast<std::size_t>(cout_) * kdim, 0.0);
      for (int ic = 0; ic < cin_; ++ic)
        for (int jy = 0; jy < nky; ++jy)
          for (int jx = 0; jx < nkx; ++jx) {
            const int r = (ic * nky + jy) * nkx + jx;
            for (int oc = 0; oc < cout_; ++oc)
              wph[static_cast<std::size_t>(oc) * kdim + r] =
                  w_[idx4(ic, oc, kys[static_cast<std::size_t>(jy)],
                          kxs[static_cast<std::size_t>(jx)], cout_, k_, k_)];
          }
      qw_ph_[static_cast<std::size_t>(py) * s + px] =
          quantize_rows(wph.data(), kdim, cout_, kdim);
    }
  quantized_ = true;
}

std::size_t ConvTranspose2D::macs_per_sample() const {
  return static_cast<std::size_t>(cin_) * cout_ * k_ * k_ * last_in_hw_;
}

}  // namespace s2a::nn
