#include "nn/conv2d.hpp"

#include <cmath>

#include "util/check.hpp"

namespace s2a::nn {

namespace {
Tensor conv_weight_init(int c0, int c1, int k, Rng& rng) {
  const int fan_in = c1 * k * k;
  Tensor w({c0, c1, k, k});
  const double stddev = std::sqrt(2.0 / fan_in);
  for (std::size_t i = 0; i < w.numel(); ++i) w[i] = rng.normal(0.0, stddev);
  return w;
}

inline std::size_t idx4(int a, int b, int c, int d, int db, int dc, int dd) {
  return ((static_cast<std::size_t>(a) * db + b) * dc + c) * dd + d;
}
}  // namespace

Conv2D::Conv2D(int in_channels, int out_channels, int kernel, int stride,
               int padding, Rng& rng)
    : cin_(in_channels),
      cout_(out_channels),
      k_(kernel),
      stride_(stride),
      pad_(padding),
      w_(conv_weight_init(out_channels, in_channels, kernel, rng)),
      b_({out_channels}),
      gw_({out_channels, in_channels, kernel, kernel}),
      gb_({out_channels}) {
  S2A_CHECK(kernel > 0 && stride > 0 && padding >= 0);
}

Tensor Conv2D::forward(const Tensor& x) {
  S2A_CHECK_MSG(x.shape().size() == 4 && x.dim(1) == cin_,
                "Conv2D expects [N," << cin_ << ",H,W]");
  last_x_ = x;
  const int n = x.dim(0), h = x.dim(2), w = x.dim(3);
  const int oh = out_size(h), ow = out_size(w);
  S2A_CHECK_MSG(oh > 0 && ow > 0, "conv output collapsed to zero");
  last_out_hw_ = static_cast<std::size_t>(oh) * ow;

  Tensor y({n, cout_, oh, ow});
  for (int b = 0; b < n; ++b)
    for (int oc = 0; oc < cout_; ++oc)
      for (int oy = 0; oy < oh; ++oy)
        for (int ox = 0; ox < ow; ++ox) {
          double acc = b_[static_cast<std::size_t>(oc)];
          for (int ic = 0; ic < cin_; ++ic)
            for (int ky = 0; ky < k_; ++ky) {
              const int iy = oy * stride_ + ky - pad_;
              if (iy < 0 || iy >= h) continue;
              for (int kx = 0; kx < k_; ++kx) {
                const int ix = ox * stride_ + kx - pad_;
                if (ix < 0 || ix >= w) continue;
                acc += x[idx4(b, ic, iy, ix, cin_, h, w)] *
                       w_[idx4(oc, ic, ky, kx, cin_, k_, k_)];
              }
            }
          y[idx4(b, oc, oy, ox, cout_, oh, ow)] = acc;
        }
  return y;
}

Tensor Conv2D::backward(const Tensor& grad_out) {
  S2A_CHECK(!last_x_.empty());
  const int n = last_x_.dim(0), h = last_x_.dim(2), w = last_x_.dim(3);
  const int oh = out_size(h), ow = out_size(w);
  S2A_CHECK(grad_out.shape().size() == 4 && grad_out.dim(1) == cout_ &&
            grad_out.dim(2) == oh && grad_out.dim(3) == ow);

  Tensor dx({n, cin_, h, w});
  for (int b = 0; b < n; ++b)
    for (int oc = 0; oc < cout_; ++oc)
      for (int oy = 0; oy < oh; ++oy)
        for (int ox = 0; ox < ow; ++ox) {
          const double g = grad_out[idx4(b, oc, oy, ox, cout_, oh, ow)];
          if (g == 0.0) continue;
          gb_[static_cast<std::size_t>(oc)] += g;
          for (int ic = 0; ic < cin_; ++ic)
            for (int ky = 0; ky < k_; ++ky) {
              const int iy = oy * stride_ + ky - pad_;
              if (iy < 0 || iy >= h) continue;
              for (int kx = 0; kx < k_; ++kx) {
                const int ix = ox * stride_ + kx - pad_;
                if (ix < 0 || ix >= w) continue;
                gw_[idx4(oc, ic, ky, kx, cin_, k_, k_)] +=
                    g * last_x_[idx4(b, ic, iy, ix, cin_, h, w)];
                dx[idx4(b, ic, iy, ix, cin_, h, w)] +=
                    g * w_[idx4(oc, ic, ky, kx, cin_, k_, k_)];
              }
            }
        }
  return dx;
}

std::size_t Conv2D::macs_per_sample() const {
  return static_cast<std::size_t>(cout_) * cin_ * k_ * k_ * last_out_hw_;
}

ConvTranspose2D::ConvTranspose2D(int in_channels, int out_channels, int kernel,
                                 int stride, int padding, Rng& rng)
    : cin_(in_channels),
      cout_(out_channels),
      k_(kernel),
      stride_(stride),
      pad_(padding),
      w_(conv_weight_init(in_channels, out_channels, kernel, rng)),
      b_({out_channels}),
      gw_({in_channels, out_channels, kernel, kernel}),
      gb_({out_channels}) {
  S2A_CHECK(kernel > 0 && stride > 0 && padding >= 0);
}

Tensor ConvTranspose2D::forward(const Tensor& x) {
  S2A_CHECK(x.shape().size() == 4 && x.dim(1) == cin_);
  last_x_ = x;
  const int n = x.dim(0), h = x.dim(2), w = x.dim(3);
  const int oh = out_size(h), ow = out_size(w);
  S2A_CHECK(oh > 0 && ow > 0);
  last_in_hw_ = static_cast<std::size_t>(h) * w;

  Tensor y({n, cout_, oh, ow});
  for (int b = 0; b < n; ++b)
    for (int oc = 0; oc < cout_; ++oc)
      for (int oy = 0; oy < oh; ++oy)
        for (int ox = 0; ox < ow; ++ox)
          y[idx4(b, oc, oy, ox, cout_, oh, ow)] = b_[static_cast<std::size_t>(oc)];

  for (int b = 0; b < n; ++b)
    for (int ic = 0; ic < cin_; ++ic)
      for (int iy = 0; iy < h; ++iy)
        for (int ix = 0; ix < w; ++ix) {
          const double v = x[idx4(b, ic, iy, ix, cin_, h, w)];
          if (v == 0.0) continue;
          for (int oc = 0; oc < cout_; ++oc)
            for (int ky = 0; ky < k_; ++ky) {
              const int oy = iy * stride_ + ky - pad_;
              if (oy < 0 || oy >= oh) continue;
              for (int kx = 0; kx < k_; ++kx) {
                const int ox = ix * stride_ + kx - pad_;
                if (ox < 0 || ox >= ow) continue;
                y[idx4(b, oc, oy, ox, cout_, oh, ow)] +=
                    v * w_[idx4(ic, oc, ky, kx, cout_, k_, k_)];
              }
            }
        }
  return y;
}

Tensor ConvTranspose2D::backward(const Tensor& grad_out) {
  S2A_CHECK(!last_x_.empty());
  const int n = last_x_.dim(0), h = last_x_.dim(2), w = last_x_.dim(3);
  const int oh = out_size(h), ow = out_size(w);
  S2A_CHECK(grad_out.shape().size() == 4 && grad_out.dim(1) == cout_ &&
            grad_out.dim(2) == oh && grad_out.dim(3) == ow);

  for (int b = 0; b < n; ++b)
    for (int oc = 0; oc < cout_; ++oc)
      for (int oy = 0; oy < oh; ++oy)
        for (int ox = 0; ox < ow; ++ox)
          gb_[static_cast<std::size_t>(oc)] +=
              grad_out[idx4(b, oc, oy, ox, cout_, oh, ow)];

  Tensor dx({n, cin_, h, w});
  for (int b = 0; b < n; ++b)
    for (int ic = 0; ic < cin_; ++ic)
      for (int iy = 0; iy < h; ++iy)
        for (int ix = 0; ix < w; ++ix) {
          const double v = last_x_[idx4(b, ic, iy, ix, cin_, h, w)];
          double acc = 0.0;
          for (int oc = 0; oc < cout_; ++oc)
            for (int ky = 0; ky < k_; ++ky) {
              const int oy = iy * stride_ + ky - pad_;
              if (oy < 0 || oy >= oh) continue;
              for (int kx = 0; kx < k_; ++kx) {
                const int ox = ix * stride_ + kx - pad_;
                if (ox < 0 || ox >= ow) continue;
                const double g = grad_out[idx4(b, oc, oy, ox, cout_, oh, ow)];
                acc += g * w_[idx4(ic, oc, ky, kx, cout_, k_, k_)];
                gw_[idx4(ic, oc, ky, kx, cout_, k_, k_)] += g * v;
              }
            }
          dx[idx4(b, ic, iy, ix, cin_, h, w)] = acc;
        }
  return dx;
}

std::size_t ConvTranspose2D::macs_per_sample() const {
  return static_cast<std::size_t>(cin_) * cout_ * k_ * k_ * last_in_hw_;
}

}  // namespace s2a::nn
