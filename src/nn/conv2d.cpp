#include "nn/conv2d.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>

#include "nn/gemm.hpp"
#include "nn/im2col.hpp"
#include "util/check.hpp"
#include "util/thread_pool.hpp"

namespace s2a::nn {

namespace {

std::atomic<ConvBackend> g_backend{ConvBackend::kAuto};

// Forward passes below this many MACs run inline: pool dispatch would
// cost more than the convolution itself.
constexpr std::size_t kMinParallelMacs = 1 << 15;

// Splits `total` units of independent work into chunks sized for the
// global pool (~4 chunks per slot hides worker imbalance) and runs
// fn(lo, hi, band_arena) over them, giving each chunk a private
// ScratchArena slot for its im2col panel. Falls back to one inline call
// (slot 0) when the work is too small or effective_parallelism() says
// sharding cannot win — e.g. an S2A_THREADS override on a 1-core box.
// fn must write disjoint outputs per unit so results are bit-exact at
// every thread count.
void parallel_bands(
    std::size_t total, std::size_t macs, util::ScratchArena& arena,
    const std::function<void(std::size_t, std::size_t, util::ScratchArena&)>&
        fn) {
  util::ThreadPool& pool = util::global_pool();
  if (util::effective_parallelism() <= 1 || macs < kMinParallelMacs ||
      total <= 1) {
    arena.ensure_slots(1);
    fn(0, total, arena.slot(0));
    return;
  }
  const std::size_t grain = std::max<std::size_t>(
      1, total / (static_cast<std::size_t>(pool.size()) * 4));
  const std::size_t chunks = util::ThreadPool::num_chunks(0, total, grain);
  arena.ensure_slots(chunks);
  pool.parallel_for_chunks(0, total, grain,
                           [&fn, &arena](std::size_t lo, std::size_t hi,
                                         std::size_t c) {
                             fn(lo, hi, arena.slot(c));
                           });
}

// Row-sharded variant without arena slots, for the naive oracle loops.
void parallel_rows(std::size_t total, std::size_t macs,
                   const std::function<void(std::size_t, std::size_t)>& fn) {
  util::ThreadPool& pool = util::global_pool();
  if (util::effective_parallelism() <= 1 || macs < kMinParallelMacs ||
      total <= 1) {
    fn(0, total);
    return;
  }
  const std::size_t grain = std::max<std::size_t>(
      1, total / (static_cast<std::size_t>(pool.size()) * 4));
  pool.parallel_for_chunks(
      0, total, grain,
      [&fn](std::size_t lo, std::size_t hi, std::size_t) { fn(lo, hi); });
}

Tensor conv_weight_init(int c0, int c1, int k, Rng& rng) {
  const int fan_in = c1 * k * k;
  Tensor w({c0, c1, k, k});
  const double stddev = std::sqrt(2.0 / fan_in);
  for (std::size_t i = 0; i < w.numel(); ++i) w[i] = rng.normal(0.0, stddev);
  return w;
}

inline std::size_t idx4(int a, int b, int c, int d, int db, int dc, int dd) {
  return ((static_cast<std::size_t>(a) * db + b) * dc + c) * dd + d;
}
}  // namespace

void set_conv_backend(ConvBackend backend) { g_backend.store(backend); }

ConvBackend conv_backend() {
  const ConvBackend b = g_backend.load();
  if (b != ConvBackend::kAuto) return b;
  const char* s = std::getenv("S2A_NAIVE_CONV");
  return (s != nullptr && *s == '1') ? ConvBackend::kNaive
                                     : ConvBackend::kGemm;
}

Conv2D::Conv2D(int in_channels, int out_channels, int kernel, int stride,
               int padding, Rng& rng)
    : cin_(in_channels),
      cout_(out_channels),
      k_(kernel),
      stride_(stride),
      pad_(padding),
      w_(conv_weight_init(out_channels, in_channels, kernel, rng)),
      b_({out_channels}),
      gw_({out_channels, in_channels, kernel, kernel}),
      gb_({out_channels}) {
  S2A_CHECK(kernel > 0 && stride > 0 && padding >= 0);
}

Tensor Conv2D::forward(const Tensor& x) {
  S2A_CHECK_MSG(x.shape().size() == 4 && x.dim(1) == cin_,
                "Conv2D expects [N," << cin_ << ",H,W]");
  last_x_ = x;
  const int n = x.dim(0), h = x.dim(2), w = x.dim(3);
  const int oh = out_size(h), ow = out_size(w);
  S2A_CHECK_MSG(oh > 0 && ow > 0, "conv output collapsed to zero");
  last_out_hw_ = static_cast<std::size_t>(oh) * ow;

  Tensor y({n, cout_, oh, ow});
  if (conv_backend() == ConvBackend::kNaive)
    forward_naive(x, y, n, h, w, oh, ow);
  else
    forward_gemm(x, y, n, h, w, oh, ow);
  return y;
}

// im2col + blocked-GEMM path. Per image: each band of output rows
// lowers its input patches into a private column panel (band arena) and
// multiplies the packed weight panel against it, writing the band's
// slice of y directly. Bands are disjoint in y and the GEMM accumulates
// every element in ascending (ic, ky, kx) order — the naive loop's
// order — so this is bit-exact vs. forward_naive and across thread
// counts (the band split only changes which elements go together).
void Conv2D::forward_gemm(const Tensor& x, Tensor& y, int n, int h, int w,
                          int oh, int ow) {
  const int kdim = im2col_rows(cin_, k_);
  const std::size_t out_hw = static_cast<std::size_t>(oh) * ow;
  arena_.reset();
  // Weights move between forwards during training, so repack per call —
  // O(cout*cin*k^2), noise next to the GEMM itself.
  double* wp = arena_.alloc(packed_a_size(cout_, kdim));
  pack_a(w_.data(), kdim, cout_, kdim, wp);

  const std::size_t macs = static_cast<std::size_t>(cout_) * kdim *
                           static_cast<std::size_t>(n) * out_hw;
  for (int b = 0; b < n; ++b) {
    const double* xb =
        x.data() + static_cast<std::size_t>(b) * cin_ * h * w;
    double* yb = y.data() + static_cast<std::size_t>(b) * cout_ * out_hw;
    parallel_bands(
        static_cast<std::size_t>(oh), macs, arena_,
        [&](std::size_t lo, std::size_t hi, util::ScratchArena& band_arena) {
          const int oy_lo = static_cast<int>(lo), oy_hi = static_cast<int>(hi);
          const int width = (oy_hi - oy_lo) * ow;
          band_arena.reset();
          double* col =
              band_arena.alloc(static_cast<std::size_t>(kdim) * width);
          im2col(xb, cin_, h, w, k_, stride_, pad_, ow, oy_lo, oy_hi, col);
          double* cband = yb + static_cast<std::size_t>(oy_lo) * ow;
          for (int oc = 0; oc < cout_; ++oc)
            std::fill_n(cband + static_cast<std::size_t>(oc) * out_hw, width,
                        b_[static_cast<std::size_t>(oc)]);
          gemm_packed(cout_, width, kdim, wp, col, width, cband,
                      static_cast<int>(out_hw));
        });
  }
}

// Direct-loop oracle (S2A_NAIVE_CONV=1): the original implementation,
// kept verbatim so the kernel equivalence tests have a fixed reference.
void Conv2D::forward_naive(const Tensor& x, Tensor& y, int n, int h, int w,
                           int oh, int ow) {
  // Rows (b, oc, oy) are independent — each output element is produced by
  // exactly one row, with a fixed inner summation order, so the sharded
  // and serial passes are bit-identical.
  const std::size_t total_rows = static_cast<std::size_t>(n) * cout_ * oh;
  const std::size_t macs = static_cast<std::size_t>(cout_) * cin_ * k_ * k_ *
                           static_cast<std::size_t>(n) * oh * ow;
  parallel_rows(total_rows, macs, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t row = lo; row < hi; ++row) {
      const int oy = static_cast<int>(row % static_cast<std::size_t>(oh));
      const int oc = static_cast<int>((row / static_cast<std::size_t>(oh)) %
                                      static_cast<std::size_t>(cout_));
      const int b = static_cast<int>(row / static_cast<std::size_t>(oh) /
                                     static_cast<std::size_t>(cout_));
      for (int ox = 0; ox < ow; ++ox) {
        double acc = b_[static_cast<std::size_t>(oc)];
        for (int ic = 0; ic < cin_; ++ic)
          for (int ky = 0; ky < k_; ++ky) {
            const int iy = oy * stride_ + ky - pad_;
            if (iy < 0 || iy >= h) continue;
            for (int kx = 0; kx < k_; ++kx) {
              const int ix = ox * stride_ + kx - pad_;
              if (ix < 0 || ix >= w) continue;
              acc += x[idx4(b, ic, iy, ix, cin_, h, w)] *
                     w_[idx4(oc, ic, ky, kx, cin_, k_, k_)];
            }
          }
        y[idx4(b, oc, oy, ox, cout_, oh, ow)] = acc;
      }
    }
  });
}

Tensor Conv2D::backward(const Tensor& grad_out) {
  S2A_CHECK(!last_x_.empty());
  const int n = last_x_.dim(0), h = last_x_.dim(2), w = last_x_.dim(3);
  const int oh = out_size(h), ow = out_size(w);
  S2A_CHECK(grad_out.shape().size() == 4 && grad_out.dim(1) == cout_ &&
            grad_out.dim(2) == oh && grad_out.dim(3) == ow);

  Tensor dx({n, cin_, h, w});
  for (int b = 0; b < n; ++b)
    for (int oc = 0; oc < cout_; ++oc)
      for (int oy = 0; oy < oh; ++oy)
        for (int ox = 0; ox < ow; ++ox) {
          const double g = grad_out[idx4(b, oc, oy, ox, cout_, oh, ow)];
          if (g == 0.0) continue;
          gb_[static_cast<std::size_t>(oc)] += g;
          for (int ic = 0; ic < cin_; ++ic)
            for (int ky = 0; ky < k_; ++ky) {
              const int iy = oy * stride_ + ky - pad_;
              if (iy < 0 || iy >= h) continue;
              for (int kx = 0; kx < k_; ++kx) {
                const int ix = ox * stride_ + kx - pad_;
                if (ix < 0 || ix >= w) continue;
                gw_[idx4(oc, ic, ky, kx, cin_, k_, k_)] +=
                    g * last_x_[idx4(b, ic, iy, ix, cin_, h, w)];
                dx[idx4(b, ic, iy, ix, cin_, h, w)] +=
                    g * w_[idx4(oc, ic, ky, kx, cin_, k_, k_)];
              }
            }
        }
  return dx;
}

std::size_t Conv2D::macs_per_sample() const {
  return static_cast<std::size_t>(cout_) * cin_ * k_ * k_ * last_out_hw_;
}

ConvTranspose2D::ConvTranspose2D(int in_channels, int out_channels, int kernel,
                                 int stride, int padding, Rng& rng)
    : cin_(in_channels),
      cout_(out_channels),
      k_(kernel),
      stride_(stride),
      pad_(padding),
      w_(conv_weight_init(in_channels, out_channels, kernel, rng)),
      b_({out_channels}),
      gw_({in_channels, out_channels, kernel, kernel}),
      gb_({out_channels}) {
  S2A_CHECK(kernel > 0 && stride > 0 && padding >= 0);
}

Tensor ConvTranspose2D::forward(const Tensor& x) {
  S2A_CHECK(x.shape().size() == 4 && x.dim(1) == cin_);
  last_x_ = x;
  const int n = x.dim(0), h = x.dim(2), w = x.dim(3);
  const int oh = out_size(h), ow = out_size(w);
  S2A_CHECK(oh > 0 && ow > 0);
  last_in_hw_ = static_cast<std::size_t>(h) * w;

  Tensor y({n, cout_, oh, ow});
  if (conv_backend() == ConvBackend::kNaive)
    forward_naive(x, y, n, h, w, oh, ow);
  else
    forward_gemm(x, y, n, h, w, oh, ow);
  return y;
}

// Deconv as flipped-kernel im2col with sub-pixel phase decomposition.
//
// Gathering output pixel (oy, ox) over flipped taps visits the
// scattering inputs in exactly the naive loop's (ic, iy, ix) order
// (iy/ix ascend as the flipped taps ascend), so the GEMM chain matches
// the naive scatter per element.
//
// For stride 1 every tap can contribute to every output pixel and a
// single full-K GEMM over im2col_flipped is efficient. For stride s > 1
// only taps with ky % s == (oy+pad) % s (and likewise for x) pass the
// phase gate — a full-K GEMM would spend (s*s-1)/(s*s) of its MACs
// multiplying structural zeros. So the output is split into its s*s
// sub-pixel phase grids, each with a dense tap list and its own
// repacked weight panel, and each phase runs a compact GEMM into a
// scratch tile that is scattered onto y. Dropping the structural zeros
// removes exact no-op additions from each element's chain, so the
// result stays bit-identical to the naive scatter.
void ConvTranspose2D::forward_gemm(const Tensor& x, Tensor& y, int n, int h,
                                   int w, int oh, int ow) {
  const std::size_t out_hw = static_cast<std::size_t>(oh) * ow;
  const int s = stride_;
  arena_.reset();

  // Tap lists per phase: ky values with ky % s == phase, descending so
  // ascending list order is ascending source row iy.
  std::vector<std::vector<int>> phase_taps(static_cast<std::size_t>(s));
  for (int p = 0; p < s; ++p)
    for (int t = k_ - 1; t >= 0; --t)
      if (t % s == p) phase_taps[static_cast<std::size_t>(p)].push_back(t);

  // Repacked weight panel per (py, px) phase pair: rows (ic, jy, jx)
  // over the dense tap lists, matching the phase column matrix below.
  std::vector<double*> wp(static_cast<std::size_t>(s) * s, nullptr);
  std::vector<int> kdim_ph(static_cast<std::size_t>(s) * s, 0);
  for (int py = 0; py < s; ++py)
    for (int px = 0; px < s; ++px) {
      const auto& kys = phase_taps[static_cast<std::size_t>(py)];
      const auto& kxs = phase_taps[static_cast<std::size_t>(px)];
      const int nky = static_cast<int>(kys.size());
      const int nkx = static_cast<int>(kxs.size());
      const int kdim = cin_ * nky * nkx;
      kdim_ph[static_cast<std::size_t>(py) * s + px] = kdim;
      if (kdim == 0) continue;
      double* wph = arena_.alloc(static_cast<std::size_t>(cout_) * kdim);
      for (int ic = 0; ic < cin_; ++ic)
        for (int jy = 0; jy < nky; ++jy)
          for (int jx = 0; jx < nkx; ++jx) {
            const int r = (ic * nky + jy) * nkx + jx;
            for (int oc = 0; oc < cout_; ++oc)
              wph[static_cast<std::size_t>(oc) * kdim + r] =
                  w_[idx4(ic, oc, kys[static_cast<std::size_t>(jy)],
                          kxs[static_cast<std::size_t>(jx)], cout_, k_, k_)];
          }
      double* packed = arena_.alloc(packed_a_size(cout_, kdim));
      pack_a(wph, kdim, cout_, kdim, packed);
      wp[static_cast<std::size_t>(py) * s + px] = packed;
    }

  const std::size_t macs = static_cast<std::size_t>(cin_) * cout_ * k_ * k_ *
                           static_cast<std::size_t>(n) * h * w;
  for (int b = 0; b < n; ++b) {
    const double* xb =
        x.data() + static_cast<std::size_t>(b) * cin_ * h * w;
    double* yb = y.data() + static_cast<std::size_t>(b) * cout_ * out_hw;
    parallel_bands(
        static_cast<std::size_t>(oh), macs, arena_,
        [&](std::size_t lo, std::size_t hi, util::ScratchArena& band_arena) {
          const int oy_lo = static_cast<int>(lo), oy_hi = static_cast<int>(hi);
          band_arena.reset();
          for (int py = 0; py < s; ++py)
            for (int px = 0; px < s; ++px) {
              // This phase's output subgrid within the band: rows
              // oy0, oy0+s, ... and columns ox0, ox0+s, ...
              int oy0 = oy_lo;
              while (oy0 < oy_hi && (oy0 + pad_) % s != py) ++oy0;
              const int ny = oy0 < oy_hi ? (oy_hi - oy0 + s - 1) / s : 0;
              const int ox0_raw = (px - pad_) % s;
              const int ox0 = ox0_raw < 0 ? ox0_raw + s : ox0_raw;
              const int nx = ox0 < ow ? (ow - ox0 + s - 1) / s : 0;
              if (ny == 0 || nx == 0) continue;

              const int kdim = kdim_ph[static_cast<std::size_t>(py) * s + px];
              const int nph = ny * nx;
              if (kdim == 0) {
                // No tap reaches this phase (kernel shorter than the
                // stride): those pixels are pure bias.
                for (int oc = 0; oc < cout_; ++oc)
                  for (int yi = 0; yi < ny; ++yi) {
                    double* yrow = yb + static_cast<std::size_t>(oc) * out_hw +
                                   static_cast<std::size_t>(oy0 + yi * s) * ow;
                    for (int xi = 0; xi < nx; ++xi)
                      yrow[ox0 + xi * s] = b_[static_cast<std::size_t>(oc)];
                  }
                continue;
              }

              const auto& kys = phase_taps[static_cast<std::size_t>(py)];
              const auto& kxs = phase_taps[static_cast<std::size_t>(px)];
              const int nky = static_cast<int>(kys.size());
              const int nkx = static_cast<int>(kxs.size());
              double* col =
                  band_arena.alloc(static_cast<std::size_t>(kdim) * nph);
              double* row = col;
              for (int ic = 0; ic < cin_; ++ic) {
                const double* plane =
                    xb + static_cast<std::size_t>(ic) * h * w;
                for (int jy = 0; jy < nky; ++jy) {
                  const int ky = kys[static_cast<std::size_t>(jy)];
                  for (int jx = 0; jx < nkx; ++jx) {
                    const int kx = kxs[static_cast<std::size_t>(jx)];
                    for (int yi = 0; yi < ny; ++yi) {
                      // Phase membership guarantees s divides num_y.
                      const int num_y = oy0 + yi * s + pad_ - ky;
                      const int iy = num_y / s;
                      double* dst = row + static_cast<std::size_t>(yi) * nx;
                      if (num_y < 0 || iy >= h) {
                        std::fill_n(dst, nx, 0.0);
                        continue;
                      }
                      const double* src =
                          plane + static_cast<std::size_t>(iy) * w;
                      for (int xi = 0; xi < nx; ++xi) {
                        const int num_x = ox0 + xi * s + pad_ - kx;
                        const int ix = num_x / s;
                        dst[xi] = (num_x < 0 || ix >= w) ? 0.0 : src[ix];
                      }
                    }
                    row += static_cast<std::size_t>(nph);
                  }
                }
              }

              double* tile =
                  band_arena.alloc(static_cast<std::size_t>(cout_) * nph);
              for (int oc = 0; oc < cout_; ++oc)
                std::fill_n(tile + static_cast<std::size_t>(oc) * nph, nph,
                            b_[static_cast<std::size_t>(oc)]);
              gemm_packed(cout_, nph, kdim,
                          wp[static_cast<std::size_t>(py) * s + px], col, nph,
                          tile, nph);
              for (int oc = 0; oc < cout_; ++oc) {
                const double* trow = tile + static_cast<std::size_t>(oc) * nph;
                for (int yi = 0; yi < ny; ++yi) {
                  double* yrow =
                      yb + static_cast<std::size_t>(oc) * out_hw +
                      static_cast<std::size_t>(oy0 + yi * s) * ow;
                  for (int xi = 0; xi < nx; ++xi)
                    yrow[ox0 + xi * s] =
                        trow[static_cast<std::size_t>(yi) * nx + xi];
                }
              }
            }
        });
  }
}

// Direct scatter oracle (S2A_NAIVE_CONV=1): the original implementation.
void ConvTranspose2D::forward_naive(const Tensor& x, Tensor& y, int n, int h,
                                    int w, int oh, int ow) {
  // Sharded over bands of output rows: each band scatters only from the
  // input rows that can reach it (iy such that iy*stride + ky - pad lands
  // in [lo, hi)) and skips contributions outside its band, so every
  // output element is written by exactly one task with the same
  // accumulation order (b, ic, iy, ix) as a serial pass.
  const std::size_t macs = static_cast<std::size_t>(cin_) * cout_ * k_ * k_ *
                           static_cast<std::size_t>(n) * h * w;
  parallel_rows(
      static_cast<std::size_t>(oh), macs,
      [&](std::size_t band_lo, std::size_t band_hi) {
        const int lo = static_cast<int>(band_lo);
        const int hi = static_cast<int>(band_hi);
        for (int b = 0; b < n; ++b)
          for (int oc = 0; oc < cout_; ++oc)
            for (int oy = lo; oy < hi; ++oy)
              for (int ox = 0; ox < ow; ++ox)
                y[idx4(b, oc, oy, ox, cout_, oh, ow)] =
                    b_[static_cast<std::size_t>(oc)];

        const int lo_num = lo + pad_ - (k_ - 1);
        const int iy_lo = lo_num > 0 ? (lo_num + stride_ - 1) / stride_ : 0;
        const int iy_hi = std::min(h - 1, (hi - 1 + pad_) / stride_);
        for (int b = 0; b < n; ++b)
          for (int ic = 0; ic < cin_; ++ic)
            for (int iy = iy_lo; iy <= iy_hi; ++iy)
              for (int ix = 0; ix < w; ++ix) {
                const double v = x[idx4(b, ic, iy, ix, cin_, h, w)];
                if (v == 0.0) continue;
                for (int oc = 0; oc < cout_; ++oc)
                  for (int ky = 0; ky < k_; ++ky) {
                    const int oy = iy * stride_ + ky - pad_;
                    if (oy < lo || oy >= hi) continue;
                    for (int kx = 0; kx < k_; ++kx) {
                      const int ox = ix * stride_ + kx - pad_;
                      if (ox < 0 || ox >= ow) continue;
                      y[idx4(b, oc, oy, ox, cout_, oh, ow)] +=
                          v * w_[idx4(ic, oc, ky, kx, cout_, k_, k_)];
                    }
                  }
              }
      });
}

Tensor ConvTranspose2D::backward(const Tensor& grad_out) {
  S2A_CHECK(!last_x_.empty());
  const int n = last_x_.dim(0), h = last_x_.dim(2), w = last_x_.dim(3);
  const int oh = out_size(h), ow = out_size(w);
  S2A_CHECK(grad_out.shape().size() == 4 && grad_out.dim(1) == cout_ &&
            grad_out.dim(2) == oh && grad_out.dim(3) == ow);

  for (int b = 0; b < n; ++b)
    for (int oc = 0; oc < cout_; ++oc)
      for (int oy = 0; oy < oh; ++oy)
        for (int ox = 0; ox < ow; ++ox)
          gb_[static_cast<std::size_t>(oc)] +=
              grad_out[idx4(b, oc, oy, ox, cout_, oh, ow)];

  Tensor dx({n, cin_, h, w});
  for (int b = 0; b < n; ++b)
    for (int ic = 0; ic < cin_; ++ic)
      for (int iy = 0; iy < h; ++iy)
        for (int ix = 0; ix < w; ++ix) {
          const double v = last_x_[idx4(b, ic, iy, ix, cin_, h, w)];
          double acc = 0.0;
          for (int oc = 0; oc < cout_; ++oc)
            for (int ky = 0; ky < k_; ++ky) {
              const int oy = iy * stride_ + ky - pad_;
              if (oy < 0 || oy >= oh) continue;
              for (int kx = 0; kx < k_; ++kx) {
                const int ox = ix * stride_ + kx - pad_;
                if (ox < 0 || ox >= ow) continue;
                const double g = grad_out[idx4(b, oc, oy, ox, cout_, oh, ow)];
                acc += g * w_[idx4(ic, oc, ky, kx, cout_, k_, k_)];
                gw_[idx4(ic, oc, ky, kx, cout_, k_, k_)] += g * v;
              }
            }
          dx[idx4(b, ic, iy, ix, cin_, h, w)] = acc;
        }
  return dx;
}

std::size_t ConvTranspose2D::macs_per_sample() const {
  return static_cast<std::size_t>(cin_) * cout_ * k_ * k_ * last_in_hw_;
}

}  // namespace s2a::nn
