#include "nn/conv2d.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"
#include "util/thread_pool.hpp"

namespace s2a::nn {

namespace {

// Forward passes below this many MACs run inline: pool dispatch would
// cost more than the convolution itself.
constexpr std::size_t kMinParallelMacs = 1 << 15;

// Splits `total` units of independent work into chunks sized for the
// global pool (~4 chunks per slot hides worker imbalance) and runs
// fn(lo, hi) over them. Falls back to one inline call when the work is
// too small or the pool has a single slot. fn must write disjoint
// outputs per unit so results are bit-exact at every thread count.
void parallel_rows(std::size_t total, std::size_t macs,
                   const std::function<void(std::size_t, std::size_t)>& fn) {
  util::ThreadPool& pool = util::global_pool();
  if (pool.size() <= 1 || macs < kMinParallelMacs || total <= 1) {
    fn(0, total);
    return;
  }
  const std::size_t grain = std::max<std::size_t>(
      1, total / (static_cast<std::size_t>(pool.size()) * 4));
  pool.parallel_for_chunks(
      0, total, grain,
      [&fn](std::size_t lo, std::size_t hi, std::size_t) { fn(lo, hi); });
}

Tensor conv_weight_init(int c0, int c1, int k, Rng& rng) {
  const int fan_in = c1 * k * k;
  Tensor w({c0, c1, k, k});
  const double stddev = std::sqrt(2.0 / fan_in);
  for (std::size_t i = 0; i < w.numel(); ++i) w[i] = rng.normal(0.0, stddev);
  return w;
}

inline std::size_t idx4(int a, int b, int c, int d, int db, int dc, int dd) {
  return ((static_cast<std::size_t>(a) * db + b) * dc + c) * dd + d;
}
}  // namespace

Conv2D::Conv2D(int in_channels, int out_channels, int kernel, int stride,
               int padding, Rng& rng)
    : cin_(in_channels),
      cout_(out_channels),
      k_(kernel),
      stride_(stride),
      pad_(padding),
      w_(conv_weight_init(out_channels, in_channels, kernel, rng)),
      b_({out_channels}),
      gw_({out_channels, in_channels, kernel, kernel}),
      gb_({out_channels}) {
  S2A_CHECK(kernel > 0 && stride > 0 && padding >= 0);
}

Tensor Conv2D::forward(const Tensor& x) {
  S2A_CHECK_MSG(x.shape().size() == 4 && x.dim(1) == cin_,
                "Conv2D expects [N," << cin_ << ",H,W]");
  last_x_ = x;
  const int n = x.dim(0), h = x.dim(2), w = x.dim(3);
  const int oh = out_size(h), ow = out_size(w);
  S2A_CHECK_MSG(oh > 0 && ow > 0, "conv output collapsed to zero");
  last_out_hw_ = static_cast<std::size_t>(oh) * ow;

  Tensor y({n, cout_, oh, ow});
  // Rows (b, oc, oy) are independent — each output element is produced by
  // exactly one row, with a fixed inner summation order, so the sharded
  // and serial passes are bit-identical.
  const std::size_t total_rows =
      static_cast<std::size_t>(n) * cout_ * oh;
  const std::size_t macs = static_cast<std::size_t>(cout_) * cin_ * k_ * k_ *
                           static_cast<std::size_t>(n) * oh * ow;
  parallel_rows(total_rows, macs, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t row = lo; row < hi; ++row) {
      const int oy = static_cast<int>(row % static_cast<std::size_t>(oh));
      const int oc = static_cast<int>((row / static_cast<std::size_t>(oh)) %
                                      static_cast<std::size_t>(cout_));
      const int b = static_cast<int>(row / static_cast<std::size_t>(oh) /
                                     static_cast<std::size_t>(cout_));
      for (int ox = 0; ox < ow; ++ox) {
        double acc = b_[static_cast<std::size_t>(oc)];
        for (int ic = 0; ic < cin_; ++ic)
          for (int ky = 0; ky < k_; ++ky) {
            const int iy = oy * stride_ + ky - pad_;
            if (iy < 0 || iy >= h) continue;
            for (int kx = 0; kx < k_; ++kx) {
              const int ix = ox * stride_ + kx - pad_;
              if (ix < 0 || ix >= w) continue;
              acc += x[idx4(b, ic, iy, ix, cin_, h, w)] *
                     w_[idx4(oc, ic, ky, kx, cin_, k_, k_)];
            }
          }
        y[idx4(b, oc, oy, ox, cout_, oh, ow)] = acc;
      }
    }
  });
  return y;
}

Tensor Conv2D::backward(const Tensor& grad_out) {
  S2A_CHECK(!last_x_.empty());
  const int n = last_x_.dim(0), h = last_x_.dim(2), w = last_x_.dim(3);
  const int oh = out_size(h), ow = out_size(w);
  S2A_CHECK(grad_out.shape().size() == 4 && grad_out.dim(1) == cout_ &&
            grad_out.dim(2) == oh && grad_out.dim(3) == ow);

  Tensor dx({n, cin_, h, w});
  for (int b = 0; b < n; ++b)
    for (int oc = 0; oc < cout_; ++oc)
      for (int oy = 0; oy < oh; ++oy)
        for (int ox = 0; ox < ow; ++ox) {
          const double g = grad_out[idx4(b, oc, oy, ox, cout_, oh, ow)];
          if (g == 0.0) continue;
          gb_[static_cast<std::size_t>(oc)] += g;
          for (int ic = 0; ic < cin_; ++ic)
            for (int ky = 0; ky < k_; ++ky) {
              const int iy = oy * stride_ + ky - pad_;
              if (iy < 0 || iy >= h) continue;
              for (int kx = 0; kx < k_; ++kx) {
                const int ix = ox * stride_ + kx - pad_;
                if (ix < 0 || ix >= w) continue;
                gw_[idx4(oc, ic, ky, kx, cin_, k_, k_)] +=
                    g * last_x_[idx4(b, ic, iy, ix, cin_, h, w)];
                dx[idx4(b, ic, iy, ix, cin_, h, w)] +=
                    g * w_[idx4(oc, ic, ky, kx, cin_, k_, k_)];
              }
            }
        }
  return dx;
}

std::size_t Conv2D::macs_per_sample() const {
  return static_cast<std::size_t>(cout_) * cin_ * k_ * k_ * last_out_hw_;
}

ConvTranspose2D::ConvTranspose2D(int in_channels, int out_channels, int kernel,
                                 int stride, int padding, Rng& rng)
    : cin_(in_channels),
      cout_(out_channels),
      k_(kernel),
      stride_(stride),
      pad_(padding),
      w_(conv_weight_init(in_channels, out_channels, kernel, rng)),
      b_({out_channels}),
      gw_({in_channels, out_channels, kernel, kernel}),
      gb_({out_channels}) {
  S2A_CHECK(kernel > 0 && stride > 0 && padding >= 0);
}

Tensor ConvTranspose2D::forward(const Tensor& x) {
  S2A_CHECK(x.shape().size() == 4 && x.dim(1) == cin_);
  last_x_ = x;
  const int n = x.dim(0), h = x.dim(2), w = x.dim(3);
  const int oh = out_size(h), ow = out_size(w);
  S2A_CHECK(oh > 0 && ow > 0);
  last_in_hw_ = static_cast<std::size_t>(h) * w;

  Tensor y({n, cout_, oh, ow});
  // Sharded over bands of output rows: each band scatters only from the
  // input rows that can reach it (iy such that iy*stride + ky - pad lands
  // in [lo, hi)) and skips contributions outside its band, so every
  // output element is written by exactly one task with the same
  // accumulation order (b, ic, iy, ix) as a serial pass.
  const std::size_t macs = static_cast<std::size_t>(cin_) * cout_ * k_ * k_ *
                           static_cast<std::size_t>(n) * h * w;
  parallel_rows(
      static_cast<std::size_t>(oh), macs,
      [&](std::size_t band_lo, std::size_t band_hi) {
        const int lo = static_cast<int>(band_lo);
        const int hi = static_cast<int>(band_hi);
        for (int b = 0; b < n; ++b)
          for (int oc = 0; oc < cout_; ++oc)
            for (int oy = lo; oy < hi; ++oy)
              for (int ox = 0; ox < ow; ++ox)
                y[idx4(b, oc, oy, ox, cout_, oh, ow)] =
                    b_[static_cast<std::size_t>(oc)];

        const int lo_num = lo + pad_ - (k_ - 1);
        const int iy_lo = lo_num > 0 ? (lo_num + stride_ - 1) / stride_ : 0;
        const int iy_hi = std::min(h - 1, (hi - 1 + pad_) / stride_);
        for (int b = 0; b < n; ++b)
          for (int ic = 0; ic < cin_; ++ic)
            for (int iy = iy_lo; iy <= iy_hi; ++iy)
              for (int ix = 0; ix < w; ++ix) {
                const double v = x[idx4(b, ic, iy, ix, cin_, h, w)];
                if (v == 0.0) continue;
                for (int oc = 0; oc < cout_; ++oc)
                  for (int ky = 0; ky < k_; ++ky) {
                    const int oy = iy * stride_ + ky - pad_;
                    if (oy < lo || oy >= hi) continue;
                    for (int kx = 0; kx < k_; ++kx) {
                      const int ox = ix * stride_ + kx - pad_;
                      if (ox < 0 || ox >= ow) continue;
                      y[idx4(b, oc, oy, ox, cout_, oh, ow)] +=
                          v * w_[idx4(ic, oc, ky, kx, cout_, k_, k_)];
                    }
                  }
              }
      });
  return y;
}

Tensor ConvTranspose2D::backward(const Tensor& grad_out) {
  S2A_CHECK(!last_x_.empty());
  const int n = last_x_.dim(0), h = last_x_.dim(2), w = last_x_.dim(3);
  const int oh = out_size(h), ow = out_size(w);
  S2A_CHECK(grad_out.shape().size() == 4 && grad_out.dim(1) == cout_ &&
            grad_out.dim(2) == oh && grad_out.dim(3) == ow);

  for (int b = 0; b < n; ++b)
    for (int oc = 0; oc < cout_; ++oc)
      for (int oy = 0; oy < oh; ++oy)
        for (int ox = 0; ox < ow; ++ox)
          gb_[static_cast<std::size_t>(oc)] +=
              grad_out[idx4(b, oc, oy, ox, cout_, oh, ow)];

  Tensor dx({n, cin_, h, w});
  for (int b = 0; b < n; ++b)
    for (int ic = 0; ic < cin_; ++ic)
      for (int iy = 0; iy < h; ++iy)
        for (int ix = 0; ix < w; ++ix) {
          const double v = last_x_[idx4(b, ic, iy, ix, cin_, h, w)];
          double acc = 0.0;
          for (int oc = 0; oc < cout_; ++oc)
            for (int ky = 0; ky < k_; ++ky) {
              const int oy = iy * stride_ + ky - pad_;
              if (oy < 0 || oy >= oh) continue;
              for (int kx = 0; kx < k_; ++kx) {
                const int ox = ix * stride_ + kx - pad_;
                if (ox < 0 || ox >= ow) continue;
                const double g = grad_out[idx4(b, oc, oy, ox, cout_, oh, ow)];
                acc += g * w_[idx4(ic, oc, ky, kx, cout_, k_, k_)];
                gw_[idx4(ic, oc, ky, kx, cout_, k_, k_)] += g * v;
              }
            }
          dx[idx4(b, ic, iy, ix, cin_, h, w)] = acc;
        }
  return dx;
}

std::size_t ConvTranspose2D::macs_per_sample() const {
  return static_cast<std::size_t>(cin_) * cout_ * k_ * k_ * last_in_hw_;
}

}  // namespace s2a::nn
