#include "nn/gru.hpp"

#include <cmath>

#include "util/check.hpp"

namespace s2a::nn {

namespace {
Tensor affine(const Tensor& x, const Tensor& w, const Tensor& h,
              const Tensor& u, const Tensor& b) {
  Tensor y = matmul_nt(x, w);
  y.add_scaled(matmul_nt(h, u), 1.0);
  const int n = y.dim(0), m = y.dim(1);
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < m; ++j)
      y[static_cast<std::size_t>(i) * m + j] += b[static_cast<std::size_t>(j)];
  return y;
}

void sigmoid_inplace(Tensor& t) {
  for (std::size_t i = 0; i < t.numel(); ++i)
    t[i] = 1.0 / (1.0 + std::exp(-t[i]));
}

void bias_grad(Tensor& gb, const Tensor& g) {
  const int n = g.dim(0), m = g.dim(1);
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < m; ++j)
      gb[static_cast<std::size_t>(j)] += g[static_cast<std::size_t>(i) * m + j];
}
}  // namespace

GRUCell::GRUCell(int input_size, int hidden_size, Rng& rng)
    : in_(input_size),
      hid_(hidden_size),
      wz_(Tensor::xavier(hidden_size, input_size, rng)),
      wr_(Tensor::xavier(hidden_size, input_size, rng)),
      wc_(Tensor::xavier(hidden_size, input_size, rng)),
      uz_(Tensor::xavier(hidden_size, hidden_size, rng)),
      ur_(Tensor::xavier(hidden_size, hidden_size, rng)),
      uc_(Tensor::xavier(hidden_size, hidden_size, rng)),
      bz_({hidden_size}),
      br_({hidden_size}),
      bc_({hidden_size}),
      gwz_({hidden_size, input_size}),
      gwr_({hidden_size, input_size}),
      gwc_({hidden_size, input_size}),
      guz_({hidden_size, hidden_size}),
      gur_({hidden_size, hidden_size}),
      guc_({hidden_size, hidden_size}),
      gbz_({hidden_size}),
      gbr_({hidden_size}),
      gbc_({hidden_size}) {
  S2A_CHECK(input_size > 0 && hidden_size > 0);
}

Tensor GRUCell::step(const Tensor& x, const Tensor& h) {
  S2A_CHECK(x.shape().size() == 2 && x.dim(1) == in_);
  S2A_CHECK(h.shape().size() == 2 && h.dim(1) == hid_ && h.dim(0) == x.dim(0));
  x_ = x;
  h_ = h;

  z_ = affine(x, wz_, h, uz_, bz_);
  sigmoid_inplace(z_);
  r_ = affine(x, wr_, h, ur_, br_);
  sigmoid_inplace(r_);

  rh_ = r_;
  for (std::size_t i = 0; i < rh_.numel(); ++i) rh_[i] *= h[i];

  c_ = affine(x, wc_, rh_, uc_, bc_);
  for (std::size_t i = 0; i < c_.numel(); ++i) c_[i] = std::tanh(c_[i]);

  Tensor h_new = c_;
  for (std::size_t i = 0; i < h_new.numel(); ++i)
    h_new[i] = (1.0 - z_[i]) * c_[i] + z_[i] * h[i];
  return h_new;
}

std::pair<Tensor, Tensor> GRUCell::backward(const Tensor& grad_h_new) {
  S2A_CHECK_MSG(!x_.empty(), "backward before step");
  S2A_CHECK(grad_h_new.same_shape(z_));

  // h' = (1-z) ⊙ c + z ⊙ h
  Tensor dc = grad_h_new, dz = grad_h_new, dh = grad_h_new;
  for (std::size_t i = 0; i < dc.numel(); ++i) {
    dc[i] = grad_h_new[i] * (1.0 - z_[i]);
    dz[i] = grad_h_new[i] * (h_[i] - c_[i]);
    dh[i] = grad_h_new[i] * z_[i];
  }

  // Candidate pre-activation: a_c = x·Wcᵀ + (r⊙h)·Ucᵀ + bc, c = tanh(a_c).
  Tensor dac = dc;
  for (std::size_t i = 0; i < dac.numel(); ++i) dac[i] *= 1.0 - c_[i] * c_[i];
  gwc_.add_scaled(matmul_tn(dac, x_), 1.0);
  guc_.add_scaled(matmul_tn(dac, rh_), 1.0);
  bias_grad(gbc_, dac);
  Tensor dx = matmul(dac, wc_);
  const Tensor drh = matmul(dac, uc_);
  Tensor dr = drh;
  for (std::size_t i = 0; i < dr.numel(); ++i) {
    dr[i] = drh[i] * h_[i];
    dh[i] += drh[i] * r_[i];
  }

  // Update gate: a_z pre-sigmoid.
  Tensor daz = dz;
  for (std::size_t i = 0; i < daz.numel(); ++i) daz[i] *= z_[i] * (1.0 - z_[i]);
  gwz_.add_scaled(matmul_tn(daz, x_), 1.0);
  guz_.add_scaled(matmul_tn(daz, h_), 1.0);
  bias_grad(gbz_, daz);
  dx.add_scaled(matmul(daz, wz_), 1.0);
  dh.add_scaled(matmul(daz, uz_), 1.0);

  // Reset gate: a_r pre-sigmoid.
  Tensor dar = dr;
  for (std::size_t i = 0; i < dar.numel(); ++i) dar[i] *= r_[i] * (1.0 - r_[i]);
  gwr_.add_scaled(matmul_tn(dar, x_), 1.0);
  gur_.add_scaled(matmul_tn(dar, h_), 1.0);
  bias_grad(gbr_, dar);
  dx.add_scaled(matmul(dar, wr_), 1.0);
  dh.add_scaled(matmul(dar, ur_), 1.0);

  return {dx, dh};
}

std::vector<Tensor*> GRUCell::params() {
  return {&wz_, &wr_, &wc_, &uz_, &ur_, &uc_, &bz_, &br_, &bc_};
}

std::vector<Tensor*> GRUCell::grads() {
  return {&gwz_, &gwr_, &gwc_, &guz_, &gur_, &guc_, &gbz_, &gbr_, &gbc_};
}

void GRUCell::zero_grad() {
  for (Tensor* g : grads()) g->fill(0.0);
}

}  // namespace s2a::nn
