#include "nn/sequential.hpp"

#include "nn/activations.hpp"
#include "nn/dense.hpp"
#include "util/check.hpp"
#include "util/scratch_arena.hpp"

namespace s2a::nn {

Tensor Sequential::forward(const Tensor& x) {
  Tensor h = x;
  for (auto& l : layers_) h = l->forward(h);
  return h;
}

Tensor Sequential::backward(const Tensor& grad_out) {
  Tensor g = grad_out;
  for (std::size_t i = layers_.size(); i-- > 0;) g = layers_[i]->backward(g);
  return g;
}

std::vector<Tensor*> Sequential::params() {
  std::vector<Tensor*> out;
  for (auto& l : layers_)
    for (Tensor* p : l->params()) out.push_back(p);
  return out;
}

std::vector<Tensor*> Sequential::grads() {
  std::vector<Tensor*> out;
  for (auto& l : layers_)
    for (Tensor* g : l->grads()) out.push_back(g);
  return out;
}

std::size_t Sequential::scratch_growth_count() const {
  std::size_t total = 0;
  for (const auto& l : layers_)
    if (const util::ScratchArena* a = l->scratch())
      total += a->total_growth_count();
  return total;
}

std::size_t Sequential::scratch_capacity() const {
  std::size_t total = 0;
  for (const auto& l : layers_)
    if (const util::ScratchArena* a = l->scratch())
      total += a->total_capacity();
  return total;
}

std::size_t Sequential::macs_per_sample() const {
  std::size_t n = 0;
  for (const auto& l : layers_) n += l->macs_per_sample();
  return n;
}

Sequential make_mlp(int in, const std::vector<int>& hidden, int out, Rng& rng,
                    bool tanh_act) {
  S2A_CHECK(in > 0 && out > 0);
  Sequential net;
  int prev = in;
  for (int h : hidden) {
    net.emplace<Dense>(prev, h, rng);
    if (tanh_act)
      net.emplace<Tanh>();
    else
      net.emplace<ReLU>();
    prev = h;
  }
  net.emplace<Dense>(prev, out, rng);
  return net;
}

}  // namespace s2a::nn
