#include "nn/batch.hpp"

#include <algorithm>
#include <cstddef>

#include "util/check.hpp"

namespace s2a::nn {

Tensor stack_batch(const std::vector<const std::vector<double>*>& samples,
                   const std::vector<int>& sample_shape) {
  S2A_CHECK(!samples.empty());
  std::size_t sample_numel = 1;
  for (int d : sample_shape) {
    S2A_CHECK(d > 0);
    sample_numel *= static_cast<std::size_t>(d);
  }
  std::vector<int> shape;
  shape.reserve(sample_shape.size() + 1);
  shape.push_back(static_cast<int>(samples.size()));
  shape.insert(shape.end(), sample_shape.begin(), sample_shape.end());

  Tensor out(std::move(shape));
  double* dst = out.data();
  for (const std::vector<double>* s : samples) {
    S2A_CHECK(s != nullptr);
    S2A_CHECK_MSG(s->size() == sample_numel,
                  "stack_batch: sample has " << s->size() << " values, shape "
                                             << "wants " << sample_numel);
    std::copy(s->begin(), s->end(), dst);
    dst += sample_numel;
  }
  return out;
}

std::vector<std::vector<double>> unstack_batch(const Tensor& batched) {
  S2A_CHECK(!batched.shape().empty());
  const std::size_t n = static_cast<std::size_t>(batched.dim(0));
  S2A_CHECK(n > 0);
  const std::size_t sample_numel = batched.numel() / n;
  std::vector<std::vector<double>> rows;
  rows.reserve(n);
  const double* src = batched.data();
  for (std::size_t i = 0; i < n; ++i) {
    rows.emplace_back(src, src + sample_numel);
    src += sample_numel;
  }
  return rows;
}

}  // namespace s2a::nn
