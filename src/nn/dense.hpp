// Fully connected layer, plus a LoRA-adapted variant used by STARNet's
// on-device fine-tuning (Sec. V): the base weights stay frozen and only a
// rank-r update B·A is trained.
//
// Dense forward/backward route through the same cache-blocked gemm entry
// point as the conv layers (nn/gemm.hpp), drawing scratch from a
// per-layer ScratchArena; S2A_NAIVE_CONV=1 / ConvBackend::kNaive selects
// the original tensor matmuls instead. Both paths accumulate every
// output element in the same ascending order, so they are bit-identical
// for finite inputs (the kernel tests assert EXPECT_EQ, no tolerance).
#pragma once

#include "nn/layer.hpp"
#include "nn/quant.hpp"
#include "util/scratch_arena.hpp"

namespace s2a::nn {

/// y = x·Wᵀ + b with x: [N, in], W: [out, in], b: [out].
class Dense : public Layer {
 public:
  Dense(int in_features, int out_features, Rng& rng, bool bias = true);

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<Tensor*> params() override;
  std::vector<Tensor*> grads() override;
  std::size_t macs_per_sample() const override;
  void quantize() override;
  bool is_quantized() const override { return quantized_; }

  int in_features() const { return in_; }
  int out_features() const { return out_; }
  Tensor& weight() { return w_; }
  Tensor& bias() { return b_; }
  const Tensor& weight() const { return w_; }

  /// Frozen parameters are excluded from params()/grads(), so optimizers
  /// never see them. Gradients still flow through to the layer input.
  void set_frozen(bool frozen) { frozen_ = frozen; }
  bool frozen() const { return frozen_; }

  const util::ScratchArena* scratch() const override { return &arena_; }

 private:
  int in_, out_;
  bool has_bias_;
  bool frozen_ = false;
  bool quantized_ = false;
  QuantizedMatrix qw_;  // int8 snapshot of w_ ([out, in], per-row scales)
  Tensor w_, b_, gw_, gb_;
  Tensor last_x_;
  // Transposed operands + packed panels for the gemm path; sized on the
  // first call, reused after.
  util::ScratchArena arena_;
};

/// Low-Rank Adaptation around a frozen weight matrix:
///   y = x·(W + (alpha/r)·B·A)ᵀ + b
/// with A: [r, in], B: [out, r]. Only A and B are trainable. A starts
/// gaussian, B starts at zero so the adapted layer initially equals the
/// base layer exactly.
class LoRADense : public Layer {
 public:
  /// Takes a snapshot of `base`'s current weight and bias as the frozen core.
  LoRADense(const Dense& base, int rank, double alpha, Rng& rng);

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<Tensor*> params() override;
  std::vector<Tensor*> grads() override;
  std::size_t macs_per_sample() const override;

  /// Trainable parameter count (A and B only) — the quantity LoRA buys down.
  std::size_t trainable_params() const { return a_.numel() + b_lora_.numel(); }
  /// Folds B·A into a copy of the frozen weight (for export / inspection).
  Tensor merged_weight() const;

 private:
  int in_, out_, rank_;
  double scale_;
  Tensor w_, b_;          // frozen core
  Tensor a_, b_lora_;     // trainable low-rank factors
  Tensor ga_, gb_lora_;
  Tensor last_x_, last_xa_;
};

}  // namespace s2a::nn
