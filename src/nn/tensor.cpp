#include "nn/tensor.hpp"

#include <cmath>

#include "util/check.hpp"

namespace s2a::nn {

namespace {
std::size_t shape_numel(const std::vector<int>& shape) {
  std::size_t n = 1;
  for (int d : shape) {
    S2A_CHECK_MSG(d >= 0, "negative dimension " << d);
    n *= static_cast<std::size_t>(d);
  }
  return shape.empty() ? 0 : n;
}
}  // namespace

Tensor::Tensor(std::vector<int> shape)
    : shape_(std::move(shape)), data_(shape_numel(shape_), 0.0) {}

Tensor::Tensor(std::vector<int> shape, std::vector<double> data)
    : shape_(std::move(shape)), data_(std::move(data)) {
  S2A_CHECK_MSG(data_.size() == shape_numel(shape_),
                "data size " << data_.size() << " does not match shape");
}

Tensor Tensor::full(std::vector<int> shape, double value) {
  Tensor t(std::move(shape));
  t.fill(value);
  return t;
}

Tensor Tensor::randn(std::vector<int> shape, Rng& rng, double stddev) {
  Tensor t(std::move(shape));
  for (std::size_t i = 0; i < t.numel(); ++i) t[i] = rng.normal(0.0, stddev);
  return t;
}

Tensor Tensor::xavier(int fan_out, int fan_in, Rng& rng) {
  Tensor t({fan_out, fan_in});
  const double limit = std::sqrt(6.0 / (fan_in + fan_out));
  for (std::size_t i = 0; i < t.numel(); ++i)
    t[i] = rng.uniform(-limit, limit);
  return t;
}

int Tensor::dim(int i) const {
  S2A_DCHECK(i >= 0 && static_cast<std::size_t>(i) < shape_.size());
  return shape_[static_cast<std::size_t>(i)];
}

double& Tensor::at(int r, int c) {
  S2A_DCHECK(shape_.size() == 2);
  S2A_DCHECK(r >= 0 && r < shape_[0] && c >= 0 && c < shape_[1]);
  return data_[static_cast<std::size_t>(r) * shape_[1] + c];
}

double Tensor::at(int r, int c) const {
  return const_cast<Tensor*>(this)->at(r, c);
}

Tensor Tensor::reshaped(std::vector<int> shape) const {
  S2A_CHECK(shape_numel(shape) == numel());
  return Tensor(std::move(shape), data_);
}

void Tensor::fill(double v) {
  for (auto& x : data_) x = v;
}

void Tensor::add_scaled(const Tensor& other, double scale) {
  S2A_CHECK(same_shape(other));
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += scale * other[i];
}

double Tensor::squared_norm() const {
  double s = 0.0;
  for (double x : data_) s += x * x;
  return s;
}

Tensor matmul(const Tensor& a, const Tensor& b) {
  S2A_CHECK(a.shape().size() == 2 && b.shape().size() == 2);
  const int m = a.dim(0), k = a.dim(1), n = b.dim(1);
  S2A_CHECK_MSG(b.dim(0) == k, "matmul: " << k << " vs " << b.dim(0));
  Tensor out({m, n});
  for (int i = 0; i < m; ++i) {
    for (int p = 0; p < k; ++p) {
      const double av = a[static_cast<std::size_t>(i) * k + p];
      if (av == 0.0) continue;
      const double* brow = b.data() + static_cast<std::size_t>(p) * n;
      double* orow = out.data() + static_cast<std::size_t>(i) * n;
      for (int j = 0; j < n; ++j) orow[j] += av * brow[j];
    }
  }
  return out;
}

Tensor matmul_nt(const Tensor& a, const Tensor& b) {
  S2A_CHECK(a.shape().size() == 2 && b.shape().size() == 2);
  const int m = a.dim(0), k = a.dim(1), n = b.dim(0);
  S2A_CHECK(b.dim(1) == k);
  Tensor out({m, n});
  for (int i = 0; i < m; ++i) {
    const double* arow = a.data() + static_cast<std::size_t>(i) * k;
    for (int j = 0; j < n; ++j) {
      const double* brow = b.data() + static_cast<std::size_t>(j) * k;
      double s = 0.0;
      for (int p = 0; p < k; ++p) s += arow[p] * brow[p];
      out[static_cast<std::size_t>(i) * n + j] = s;
    }
  }
  return out;
}

Tensor matmul_tn(const Tensor& a, const Tensor& b) {
  S2A_CHECK(a.shape().size() == 2 && b.shape().size() == 2);
  const int k = a.dim(0), m = a.dim(1), n = b.dim(1);
  S2A_CHECK(b.dim(0) == k);
  Tensor out({m, n});
  for (int p = 0; p < k; ++p) {
    const double* arow = a.data() + static_cast<std::size_t>(p) * m;
    const double* brow = b.data() + static_cast<std::size_t>(p) * n;
    for (int i = 0; i < m; ++i) {
      const double av = arow[i];
      if (av == 0.0) continue;
      double* orow = out.data() + static_cast<std::size_t>(i) * n;
      for (int j = 0; j < n; ++j) orow[j] += av * brow[j];
    }
  }
  return out;
}

}  // namespace s2a::nn
