// NEON (AArch64 Advanced SIMD) GEMM micro-kernel. Compiled with
// -ffp-contract=off: GCC on AArch64 fuses mul+add pairs into fmla by
// default, which would silently break the bit-exactness contract — see
// gemm_kernels.hpp. No fused variant is shipped for NEON yet; add one
// only with an explicit opt-in name, never under "neon".
#if defined(__aarch64__)

#include <arm_neon.h>

#include "nn/gemm_kernels.hpp"

namespace s2a::nn::detail {

namespace {

// 4 rows x 8 columns: 16 float64x2_t accumulators + 4 B vectors + 1 A
// broadcast = 21 of the 32 NEON registers.
void micro_4x8(int kc, const double* ap, const double* b, int ldb, double* c,
               int ldc) {
  float64x2_t acc[4][4];
  for (int i = 0; i < 4; ++i)
    for (int v = 0; v < 4; ++v)
      acc[i][v] = vld1q_f64(c + static_cast<std::size_t>(i) * ldc + 2 * v);
  for (int kk = 0; kk < kc; ++kk) {
    const double* brow = b + static_cast<std::size_t>(kk) * ldb;
    __builtin_prefetch(brow + 8 * static_cast<std::size_t>(ldb));
    float64x2_t bv[4];
    for (int v = 0; v < 4; ++v) bv[v] = vld1q_f64(brow + 2 * v);
    const double* acol = ap + static_cast<std::size_t>(kk) * 4;
    for (int i = 0; i < 4; ++i) {
      const float64x2_t a = vdupq_n_f64(acol[i]);
      for (int v = 0; v < 4; ++v)
        acc[i][v] = vaddq_f64(acc[i][v], vmulq_f64(a, bv[v]));
    }
  }
  for (int i = 0; i < 4; ++i)
    for (int v = 0; v < 4; ++v)
      vst1q_f64(c + static_cast<std::size_t>(i) * ldc + 2 * v, acc[i][v]);
}

// 2-row half tile against the 4-row packing (A row stride stays 4).
void micro_2x8(int kc, const double* ap, const double* b, int ldb, double* c,
               int ldc) {
  float64x2_t acc[2][4];
  for (int i = 0; i < 2; ++i)
    for (int v = 0; v < 4; ++v)
      acc[i][v] = vld1q_f64(c + static_cast<std::size_t>(i) * ldc + 2 * v);
  for (int kk = 0; kk < kc; ++kk) {
    const double* brow = b + static_cast<std::size_t>(kk) * ldb;
    __builtin_prefetch(brow + 8 * static_cast<std::size_t>(ldb));
    float64x2_t bv[4];
    for (int v = 0; v < 4; ++v) bv[v] = vld1q_f64(brow + 2 * v);
    const double* acol = ap + static_cast<std::size_t>(kk) * 4;
    for (int i = 0; i < 2; ++i) {
      const float64x2_t a = vdupq_n_f64(acol[i]);
      for (int v = 0; v < 4; ++v)
        acc[i][v] = vaddq_f64(acc[i][v], vmulq_f64(a, bv[v]));
    }
  }
  for (int i = 0; i < 2; ++i)
    for (int v = 0; v < 4; ++v)
      vst1q_f64(c + static_cast<std::size_t>(i) * ldc + 2 * v, acc[i][v]);
}

}  // namespace

const GemmMicroKernel& gemm_kernel_neon() {
  static const GemmMicroKernel k{"neon", 4, 8, micro_4x8, micro_2x8};
  return k;
}

}  // namespace s2a::nn::detail

#endif  // __aarch64__
