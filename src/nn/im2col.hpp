// Patch lowering for the conv/deconv GEMM path.
//
// im2col turns a convolution into a dense matrix product: column j of
// the lowered matrix holds every input tap that output pixel j reads,
// and row r walks the kernel taps in the order (in-channel, ky, kx) —
// the *same* order the naive Conv2D loops accumulate in, so
// W[cout, cin*k*k] x col[cin*k*k, oh*ow] reproduces the naive forward
// bit-for-bit (out-of-bounds taps become 0.0, which is an exact no-op
// on the accumulation chain). See docs/ARCHITECTURE.md.
//
// The transposed convolution uses the same idea with the kernel flipped
// and the taps phase-split by stride; that lowering is specialised
// enough (dense per-phase tap lists, compact output tiles) that it
// lives with its only caller in conv2d.cpp rather than here.
//
// Both functions operate on a horizontal band of output rows
// [oy_lo, oy_hi): the pool-sharded conv forwards give each task its own
// band (and its own ScratchArena slot to hold it).
#pragma once

namespace s2a::nn {

/// Lowered-matrix row count for a (cin, k) convolution.
inline int im2col_rows(int cin, int k) { return cin * k * k; }

/// Writes the im2col matrix for output rows [oy_lo, oy_hi) of a direct
/// convolution over x (one image, [cin, h, w] row-major): col is
/// [cin*k*k, (oy_hi-oy_lo)*ow] row-major.
void im2col(const double* x, int cin, int h, int w, int k, int stride,
            int pad, int ow, int oy_lo, int oy_hi, double* col);

/// Adjoint of im2col: scatters col (layout as above) back onto x,
/// *accumulating* into it — each input pixel receives one addend per
/// output pixel that reads it. col2im(im2col(x)) therefore multiplies
/// every pixel by its read count; the kernel tests rely on that
/// identity, and conv backward can use it to fold gradient columns.
void col2im(const double* col, int cin, int h, int w, int k, int stride,
            int pad, int ow, int oy_lo, int oy_hi, double* x);

/// Transposed im2col for the weight-gradient GEMMs: writes the band's
/// rows of im2col(x)ᵀ — row j is output pixel j's taps in (ic, ky, kx)
/// order, so colt is [(oy_hi-oy_lo)*ow, cin*k*k] row-major. Used as the
/// B operand of gW += grad_out × im2col(x)ᵀ, whose reduction then runs
/// over output pixels in ascending (oy, ox) order — the naive
/// accumulation order. Bands write disjoint row ranges of the full
/// matrix (pass colt + oy_lo*ow*cin*k*k when assembling one).
void im2col_t(const double* x, int cin, int h, int w, int k, int stride,
              int pad, int ow, int oy_lo, int oy_hi, double* colt);

/// Band-restricted col2im for the pool-sharded input-gradient scatter:
/// col is the FULL [cin*k*k, oh*ow] matrix, but only input rows
/// [iy_lo, iy_hi) of x are accumulated into — each (ky, kx) row visits
/// just the output rows that land in the band. Covering [0, h) with
/// disjoint bands reproduces col2im(col, ..., 0, oh, x) bit-for-bit:
/// each x element's addends arrive in the same (ic, ky, kx, oy, ox)
/// order, the bands merely split *which elements* each call touches.
void col2im_band(const double* col, int cin, int h, int w, int k, int stride,
                 int pad, int ow, int iy_lo, int iy_hi, double* x);

}  // namespace s2a::nn
