#include "nn/activations.hpp"

#include <cmath>

#include "util/check.hpp"

namespace s2a::nn {

Tensor ReLU::forward(const Tensor& x) {
  last_x_ = x;
  Tensor y = x;
  for (std::size_t i = 0; i < y.numel(); ++i)
    if (y[i] < 0.0) y[i] = 0.0;
  return y;
}

Tensor ReLU::backward(const Tensor& grad_out) {
  S2A_CHECK(grad_out.same_shape(last_x_));
  Tensor dx = grad_out;
  for (std::size_t i = 0; i < dx.numel(); ++i)
    if (last_x_[i] <= 0.0) dx[i] = 0.0;
  return dx;
}

Tensor LeakyReLU::forward(const Tensor& x) {
  last_x_ = x;
  Tensor y = x;
  for (std::size_t i = 0; i < y.numel(); ++i)
    if (y[i] < 0.0) y[i] *= slope_;
  return y;
}

Tensor LeakyReLU::backward(const Tensor& grad_out) {
  S2A_CHECK(grad_out.same_shape(last_x_));
  Tensor dx = grad_out;
  for (std::size_t i = 0; i < dx.numel(); ++i)
    if (last_x_[i] <= 0.0) dx[i] *= slope_;
  return dx;
}

Tensor Tanh::forward(const Tensor& x) {
  Tensor y = x;
  for (std::size_t i = 0; i < y.numel(); ++i) y[i] = std::tanh(y[i]);
  last_y_ = y;
  return y;
}

Tensor Tanh::backward(const Tensor& grad_out) {
  S2A_CHECK(grad_out.same_shape(last_y_));
  Tensor dx = grad_out;
  for (std::size_t i = 0; i < dx.numel(); ++i)
    dx[i] *= 1.0 - last_y_[i] * last_y_[i];
  return dx;
}

Tensor Sigmoid::forward(const Tensor& x) {
  Tensor y = x;
  for (std::size_t i = 0; i < y.numel(); ++i)
    y[i] = 1.0 / (1.0 + std::exp(-y[i]));
  last_y_ = y;
  return y;
}

Tensor Sigmoid::backward(const Tensor& grad_out) {
  S2A_CHECK(grad_out.same_shape(last_y_));
  Tensor dx = grad_out;
  for (std::size_t i = 0; i < dx.numel(); ++i)
    dx[i] *= last_y_[i] * (1.0 - last_y_[i]);
  return dx;
}

}  // namespace s2a::nn
