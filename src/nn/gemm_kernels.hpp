// Internal: per-ISA GEMM micro-kernel descriptors.
//
// Each kernel family lives in its own translation unit compiled with
// exactly the instruction-set flags it needs plus -ffp-contract=off
// (src/nn/CMakeLists.txt). The contraction flag is load-bearing: the
// vector kernels issue an explicit multiply followed by an explicit add
// so every C element keeps the scalar chain's per-step rounding, and
// the compiler must not re-fuse that pair into an FMA behind our back.
// The *fma descriptors fuse on purpose and are opt-in only
// (S2A_SIMD=avx2fma / avx512fma) — they are faster but not
// bit-identical to the scalar oracle.
//
// gemm.cpp owns the one dispatch table that maps util::SimdIsa to these
// descriptors; nothing else should include this header.
#pragma once

namespace s2a::nn::detail {

/// One micro-kernel family. `full` computes an mr x nr C tile;
/// `half` (optional) computes an (mr/2) x nr tile against a packed A
/// panel that still has row stride mr — it serves m-tail panels of
/// exactly mr/2 rows (e.g. the m=4 stride-2 deconv phase GEMMs under
/// the 8-row AVX-512 packing) without dropping to the scalar tail.
/// Both take kc (panel depth), the packed A panel slice, a B panel
/// (row-major, stride ldb) and the C tile (row-major, stride ldc), and
/// accumulate in ascending-k order per element.
struct GemmMicroKernel {
  const char* name;
  int mr;
  int nr;
  void (*full)(int kc, const double* ap, const double* b, int ldb, double* c,
               int ldc);
  void (*half)(int kc, const double* ap, const double* b, int ldb, double* c,
               int ldc);
};

#if defined(__x86_64__) || defined(_M_X64)
const GemmMicroKernel& gemm_kernel_avx2();     // 4x8, mul+add (bit-exact)
const GemmMicroKernel& gemm_kernel_avx2fma();  // 4x8, fused (opt-in)
const GemmMicroKernel& gemm_kernel_avx512();   // 8x16 + 4x16 half, mul+add
const GemmMicroKernel& gemm_kernel_avx512fma();  // 8x16 + 4x16, fused
#endif
#if defined(__aarch64__)
const GemmMicroKernel& gemm_kernel_neon();  // 4x8, mul+add (bit-exact)
#endif

}  // namespace s2a::nn::detail
