// Batched-forward entry points for cross-loop inference.
//
// Every layer in this library is batch-first (tensor.hpp), so serving B
// tenants with one forward is a gather/scatter problem, not a kernel
// problem: stack B equally-shaped flat samples along a leading batch
// axis, run the network once, and hand each tenant its row back. The
// win is amortization — the conv kernels pack their weight panels once
// per forward call (covering the whole batch) and shard their
// (image, output-row) band space across the pool in one pass, instead
// of paying the per-call fixed costs (packing, arena bookkeeping,
// tensor allocation, pool dispatch) once per member.
//
// Bit-exactness contract: row i of the batched output is bit-identical
// to the B=1 forward of sample i, at every thread count. The conv
// lowering guarantees this — batching only adds images to the band
// space; no element's reduction chain is ever split or reordered.
#pragma once

#include <vector>

#include "nn/tensor.hpp"

namespace s2a::nn {

/// Stacks B flat samples into a [B, ...sample_shape] tensor. Every
/// sample must have exactly numel(sample_shape) entries.
Tensor stack_batch(const std::vector<const std::vector<double>*>& samples,
                   const std::vector<int>& sample_shape);

/// Splits a [B, ...] tensor back into its B flat per-sample rows
/// (inverse of stack_batch).
std::vector<std::vector<double>> unstack_batch(const Tensor& batched);

}  // namespace s2a::nn
