#include "nn/gemm.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace s2a::nn {

namespace {

// Full MR x NR micro-kernel with compile-time loop bounds so the
// compiler unrolls the register block and vectorizes the NR loop. The
// accumulators are loaded from C, swept over the k panel in ascending
// order, and stored back — one contiguous slice of each C element's
// accumulation chain.
void micro_full(int kc, const double* ap, const double* b, int ldb,
                double* c, int ldc) {
  double acc[kGemmMR][kGemmNR];
  for (int i = 0; i < kGemmMR; ++i)
    for (int j = 0; j < kGemmNR; ++j)
      acc[i][j] = c[static_cast<std::size_t>(i) * ldc + j];
  for (int kk = 0; kk < kc; ++kk) {
    const double* brow = b + static_cast<std::size_t>(kk) * ldb;
    const double* acol = ap + static_cast<std::size_t>(kk) * kGemmMR;
    for (int i = 0; i < kGemmMR; ++i) {
      const double a = acol[i];
      for (int j = 0; j < kGemmNR; ++j) acc[i][j] += a * brow[j];
    }
  }
  for (int i = 0; i < kGemmMR; ++i)
    for (int j = 0; j < kGemmNR; ++j)
      c[static_cast<std::size_t>(i) * ldc + j] = acc[i][j];
}

// Remainder tile (mr < MR and/or nr < NR). Same per-element arithmetic —
// `acc += a*b` in ascending k — just with runtime bounds, so edge tiles
// stay bit-identical to what a bigger kernel would have produced.
void micro_tail(int kc, const double* ap, const double* b, int ldb,
                double* c, int ldc, int mr, int nr) {
  double acc[kGemmMR][kGemmNR] = {};
  for (int i = 0; i < mr; ++i)
    for (int j = 0; j < nr; ++j)
      acc[i][j] = c[static_cast<std::size_t>(i) * ldc + j];
  for (int kk = 0; kk < kc; ++kk) {
    const double* brow = b + static_cast<std::size_t>(kk) * ldb;
    const double* acol = ap + static_cast<std::size_t>(kk) * kGemmMR;
    for (int i = 0; i < mr; ++i) {
      const double a = acol[i];
      for (int j = 0; j < nr; ++j) acc[i][j] += a * brow[j];
    }
  }
  for (int i = 0; i < mr; ++i)
    for (int j = 0; j < nr; ++j)
      c[static_cast<std::size_t>(i) * ldc + j] = acc[i][j];
}

}  // namespace

std::size_t packed_a_size(int m, int k) {
  const std::size_t panels =
      (static_cast<std::size_t>(m) + kGemmMR - 1) / kGemmMR;
  return panels * kGemmMR * static_cast<std::size_t>(k);
}

void pack_a(const double* a, int lda, int m, int k, double* out) {
  for (int i0 = 0; i0 < m; i0 += kGemmMR) {
    const int rows = std::min(kGemmMR, m - i0);
    for (int kk = 0; kk < k; ++kk) {
      for (int i = 0; i < rows; ++i)
        out[i] = a[static_cast<std::size_t>(i0 + i) * lda + kk];
      for (int i = rows; i < kGemmMR; ++i) out[i] = 0.0;
      out += kGemmMR;
    }
  }
}

void gemm_packed(int m, int n, int k, const double* a_packed,
                 const double* b, int ldb, double* c, int ldc) {
  if (m <= 0 || n <= 0 || k <= 0) return;
  const std::size_t panel_stride =
      static_cast<std::size_t>(k) * kGemmMR;  // one MR row-panel, all of k
  for (int jc = 0; jc < n; jc += kGemmNC) {
    const int nc = std::min(kGemmNC, n - jc);
    // k panels ascend so each C element's chain stays in k order.
    for (int pc = 0; pc < k; pc += kGemmKC) {
      const int kc = std::min(kGemmKC, k - pc);
      const double* bpanel = b + static_cast<std::size_t>(pc) * ldb + jc;
      for (int ic = 0; ic < m; ic += kGemmMR) {
        const int mr = std::min(kGemmMR, m - ic);
        const double* ap = a_packed +
                           static_cast<std::size_t>(ic / kGemmMR) *
                               panel_stride +
                           static_cast<std::size_t>(pc) * kGemmMR;
        double* crow = c + static_cast<std::size_t>(ic) * ldc + jc;
        int jr = 0;
        if (mr == kGemmMR)
          for (; jr + kGemmNR <= nc; jr += kGemmNR)
            micro_full(kc, ap, bpanel + jr, ldb, crow + jr, ldc);
        for (; jr < nc; jr += kGemmNR)
          micro_tail(kc, ap, bpanel + jr, ldb, crow + jr, ldc, mr,
                     std::min(kGemmNR, nc - jr));
      }
    }
  }
}

void gemm(int m, int n, int k, const double* a, int lda, const double* b,
          int ldb, double* c, int ldc, util::ScratchArena& arena) {
  S2A_CHECK(m >= 0 && n >= 0 && k >= 0);
  if (m == 0 || n == 0 || k == 0) return;
  double* ap = arena.alloc(packed_a_size(m, k));
  pack_a(a, lda, m, k, ap);
  gemm_packed(m, n, k, ap, b, ldb, c, ldc);
}

void transpose(const double* a, int rows, int cols, double* out) {
  for (int i = 0; i < rows; ++i) {
    const double* src = a + static_cast<std::size_t>(i) * cols;
    for (int j = 0; j < cols; ++j)
      out[static_cast<std::size_t>(j) * rows + i] = src[j];
  }
}

}  // namespace s2a::nn
