#include "nn/gemm.hpp"

#include <algorithm>

#include "nn/gemm_kernels.hpp"
#include "util/check.hpp"
#include "util/cpu_features.hpp"

namespace s2a::nn {

namespace {

using detail::GemmMicroKernel;

// Scalar full tile with compile-time loop bounds so the compiler
// unrolls the register block. The accumulators are loaded from C, swept
// over the k panel in ascending order, and stored back — one contiguous
// slice of each C element's accumulation chain. Always compiled; this
// is the bit-exactness oracle the vector kernels are diffed against.
void micro_full(int kc, const double* ap, const double* b, int ldb,
                double* c, int ldc) {
  double acc[kGemmMR][kGemmNR];
  for (int i = 0; i < kGemmMR; ++i)
    for (int j = 0; j < kGemmNR; ++j)
      acc[i][j] = c[static_cast<std::size_t>(i) * ldc + j];
  for (int kk = 0; kk < kc; ++kk) {
    const double* brow = b + static_cast<std::size_t>(kk) * ldb;
    const double* acol = ap + static_cast<std::size_t>(kk) * kGemmMR;
    for (int i = 0; i < kGemmMR; ++i) {
      const double a = acol[i];
      for (int j = 0; j < kGemmNR; ++j) acc[i][j] += a * brow[j];
    }
  }
  for (int i = 0; i < kGemmMR; ++i)
    for (int j = 0; j < kGemmNR; ++j)
      c[static_cast<std::size_t>(i) * ldc + j] = acc[i][j];
}

// Remainder tile (mr < MR and/or nr < NR) for any kernel family: reads
// the packed A panel at the family's row stride `astride`. Same
// per-element arithmetic — `acc += a*b` in ascending k — so edge tiles
// stay bit-identical to what the full kernel would have produced.
void micro_tail(int kc, const double* ap, const double* b, int ldb,
                double* c, int ldc, int mr, int nr, int astride) {
  double acc[kGemmMaxMR][kGemmMaxNR] = {};
  for (int i = 0; i < mr; ++i)
    for (int j = 0; j < nr; ++j)
      acc[i][j] = c[static_cast<std::size_t>(i) * ldc + j];
  for (int kk = 0; kk < kc; ++kk) {
    const double* brow = b + static_cast<std::size_t>(kk) * ldb;
    const double* acol = ap + static_cast<std::size_t>(kk) * astride;
    for (int i = 0; i < mr; ++i) {
      const double a = acol[i];
      for (int j = 0; j < nr; ++j) acc[i][j] += a * brow[j];
    }
  }
  for (int i = 0; i < mr; ++i)
    for (int j = 0; j < nr; ++j)
      c[static_cast<std::size_t>(i) * ldc + j] = acc[i][j];
}

const GemmMicroKernel& scalar_kernel() {
  static const GemmMicroKernel k{"scalar", kGemmMR, kGemmNR, micro_full,
                                 nullptr};
  return k;
}

const GemmMicroKernel& kernel_for(util::SimdIsa isa) {
  switch (isa) {
#if defined(__x86_64__) || defined(_M_X64)
    case util::SimdIsa::kAvx2:
      return detail::gemm_kernel_avx2();
    case util::SimdIsa::kAvx2Fma:
      return detail::gemm_kernel_avx2fma();
    case util::SimdIsa::kAvx512:
      return detail::gemm_kernel_avx512();
    case util::SimdIsa::kAvx512Fma:
      return detail::gemm_kernel_avx512fma();
#endif
#if defined(__aarch64__)
    case util::SimdIsa::kNeon:
      return detail::gemm_kernel_neon();
#endif
    default:
      return scalar_kernel();
  }
}

const GemmMicroKernel& active_kernel() {
  return kernel_for(util::active_simd_isa());
}

}  // namespace

int gemm_mr() { return active_kernel().mr; }
int gemm_nr() { return active_kernel().nr; }
const char* gemm_kernel_name() { return active_kernel().name; }

std::size_t packed_a_size(int m, int k) {
  const int mr = active_kernel().mr;
  const std::size_t panels = (static_cast<std::size_t>(m) + mr - 1) / mr;
  return panels * static_cast<std::size_t>(mr) * static_cast<std::size_t>(k);
}

void pack_a(const double* a, int lda, int m, int k, double* out) {
  const int mr = active_kernel().mr;
  for (int i0 = 0; i0 < m; i0 += mr) {
    const int rows = std::min(mr, m - i0);
    for (int kk = 0; kk < k; ++kk) {
      for (int i = 0; i < rows; ++i)
        out[i] = a[static_cast<std::size_t>(i0 + i) * lda + kk];
      for (int i = rows; i < mr; ++i) out[i] = 0.0;
      out += mr;
    }
  }
}

void gemm_packed(int m, int n, int k, const double* a_packed,
                 const double* b, int ldb, double* c, int ldc) {
  if (m <= 0 || n <= 0 || k <= 0) return;
  const GemmMicroKernel& K = active_kernel();
  const int MR = K.mr;
  const int NR = K.nr;
  const std::size_t panel_stride =
      static_cast<std::size_t>(k) * MR;  // one MR row-panel, all of k
  for (int jc = 0; jc < n; jc += kGemmNC) {
    const int nc = std::min(kGemmNC, n - jc);
    // k panels ascend so each C element's chain stays in k order.
    for (int pc = 0; pc < k; pc += kGemmKC) {
      const int kc = std::min(kGemmKC, k - pc);
      const double* bpanel = b + static_cast<std::size_t>(pc) * ldb + jc;
      // jr outer / ic inner: one kc x nr B strip is reused across every
      // row panel while still hot in L1. B rows are ldb-strided (KiB
      // apart for conv stripes), so a cold strip is latency-bound — the
      // reuse plus the kernels' software prefetch is what closes the
      // gap to the hot-loop peak.
      for (int jr = 0; jr < nc; jr += NR) {
        const int nr = std::min(NR, nc - jr);
        for (int ic = 0; ic < m; ic += MR) {
          const int mr = std::min(MR, m - ic);
          const double* ap = a_packed +
                             static_cast<std::size_t>(ic / MR) * panel_stride +
                             static_cast<std::size_t>(pc) * MR;
          double* ctile = c + static_cast<std::size_t>(ic) * ldc + jc + jr;
          if (mr == MR && nr == NR)
            K.full(kc, ap, bpanel + jr, ldb, ctile, ldc);
          else if (2 * mr == MR && nr == NR && K.half != nullptr)
            K.half(kc, ap, bpanel + jr, ldb, ctile, ldc);
          else
            micro_tail(kc, ap, bpanel + jr, ldb, ctile, ldc, mr, nr, MR);
        }
      }
    }
  }
}

void gemm(int m, int n, int k, const double* a, int lda, const double* b,
          int ldb, double* c, int ldc, util::ScratchArena& arena) {
  S2A_CHECK(m >= 0 && n >= 0 && k >= 0);
  if (m == 0 || n == 0 || k == 0) return;
  double* ap = arena.alloc(packed_a_size(m, k));
  pack_a(a, lda, m, k, ap);
  gemm_packed(m, n, k, ap, b, ldb, c, ldc);
}

void transpose(const double* a, int rows, int cols, double* out) {
  for (int i = 0; i < rows; ++i) {
    const double* src = a + static_cast<std::size_t>(i) * cols;
    for (int j = 0; j < cols; ++j)
      out[static_cast<std::size_t>(j) * rows + i] = src[j];
  }
}

}  // namespace s2a::nn
