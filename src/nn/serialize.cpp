#include "nn/serialize.hpp"

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/check.hpp"

namespace s2a::nn {

namespace {
constexpr const char* kMagic = "s2a-params";
constexpr int kVersion = 1;
}  // namespace

void save_params(const std::vector<Tensor*>& params, std::ostream& os) {
  os << kMagic << " v" << kVersion << "\n" << params.size() << "\n";
  char buf[64];
  for (const Tensor* t : params) {
    S2A_CHECK(t != nullptr);
    os << t->shape().size();
    for (int d : t->shape()) os << ' ' << d;
    os << '\n';
    for (std::size_t i = 0; i < t->numel(); ++i) {
      // %a prints an exact hexadecimal float: loads are bit-identical.
      std::snprintf(buf, sizeof(buf), "%a", (*t)[i]);
      os << buf << (i + 1 == t->numel() ? '\n' : ' ');
    }
    if (t->numel() == 0) os << '\n';
  }
}

void load_params(const std::vector<Tensor*>& params, std::istream& is) {
  std::string magic, version;
  is >> magic >> version;
  S2A_CHECK_MSG(magic == kMagic && version == "v1",
                "not an s2a-params v1 stream (got '" << magic << " "
                                                     << version << "')");
  std::size_t count = 0;
  is >> count;
  S2A_CHECK_MSG(count == params.size(),
                "stream holds " << count << " tensors, model expects "
                                << params.size());
  for (Tensor* t : params) {
    S2A_CHECK(t != nullptr);
    std::size_t rank = 0;
    is >> rank;
    std::vector<int> shape(rank);
    for (auto& d : shape) is >> d;
    S2A_CHECK_MSG(shape == t->shape(),
                  "tensor shape mismatch while loading parameters");
    for (std::size_t i = 0; i < t->numel(); ++i) {
      std::string tok;
      is >> tok;
      S2A_CHECK_MSG(is.good() || is.eof(), "truncated parameter stream");
      (*t)[i] = std::strtod(tok.c_str(), nullptr);
    }
  }
}

void save_params_file(const std::vector<Tensor*>& params,
                      const std::string& path) {
  std::ofstream os(path);
  S2A_CHECK_MSG(os.good(), "cannot open '" << path << "' for writing");
  save_params(params, os);
}

void load_params_file(const std::vector<Tensor*>& params,
                      const std::string& path) {
  std::ifstream is(path);
  S2A_CHECK_MSG(is.good(), "cannot open '" << path << "' for reading");
  load_params(params, is);
}

}  // namespace s2a::nn
