// Dense row-major tensor of doubles.
//
// Deliberately minimal: the library's networks are small enough that a
// contiguous buffer + shape vector covers every need, and double precision
// keeps analytic gradient checks tight. All layers operate batch-first.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <vector>

#include "util/rng.hpp"

namespace s2a::nn {

class Tensor {
 public:
  Tensor() = default;
  /// Zero-filled tensor of the given shape.
  explicit Tensor(std::vector<int> shape);
  Tensor(std::vector<int> shape, std::vector<double> data);

  static Tensor zeros(std::vector<int> shape) { return Tensor(std::move(shape)); }
  static Tensor full(std::vector<int> shape, double value);
  /// I.i.d. normal entries with the given standard deviation.
  static Tensor randn(std::vector<int> shape, Rng& rng, double stddev = 1.0);
  /// Xavier/Glorot-uniform initialization for a [fan_out, fan_in] matrix.
  static Tensor xavier(int fan_out, int fan_in, Rng& rng);

  const std::vector<int>& shape() const { return shape_; }
  int dim(int i) const;
  std::size_t numel() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }
  double& operator[](std::size_t i) { return data_[i]; }
  double operator[](std::size_t i) const { return data_[i]; }

  /// 2-D indexed access (checked in debug builds).
  double& at(int r, int c);
  double at(int r, int c) const;

  /// Same data, new shape; total element count must match.
  Tensor reshaped(std::vector<int> shape) const;

  void fill(double v);
  void add_scaled(const Tensor& other, double scale);  ///< *this += scale*other
  double squared_norm() const;

  bool same_shape(const Tensor& other) const { return shape_ == other.shape_; }

 private:
  std::vector<int> shape_;
  std::vector<double> data_;
};

/// out = a * b for 2-D tensors: [m,k] x [k,n] -> [m,n].
Tensor matmul(const Tensor& a, const Tensor& b);
/// out = a * b^T: [m,k] x [n,k] -> [m,n].
Tensor matmul_nt(const Tensor& a, const Tensor& b);
/// out = a^T * b: [k,m] x [k,n] -> [m,n].
Tensor matmul_tn(const Tensor& a, const Tensor& b);

}  // namespace s2a::nn
