// Cache-blocked double-precision GEMM for the conv/deconv hot path.
//
// Computes C += A * B where A is [m,k], B is [k,n] (row-major, strided)
// and C is [m,n] (row-major, strided). C must be pre-initialized by the
// caller — the conv layers seed it with the bias so the whole
// bias-plus-dot-product chain is a single accumulation stream.
//
// Determinism contract (load-bearing — see docs/ARCHITECTURE.md):
// every C element accumulates its k products in ascending-k order, as
// one chain of rounded `c += a*b` updates starting from the caller's
// initial value. Cache blocking (KC panels), register tiling (MR x NR
// micro-kernel) and any column partitioning the caller layers on top
// only regroup *which elements* are computed together, never the order
// of additions within an element — so results are bit-identical to the
// naive triple loop and invariant under thread-count or tile-size
// changes. k panels are visited in ascending order and the micro-kernel
// reloads C between panels, which keeps the per-element chain unbroken.
//
// A is consumed in packed form: pack_a() lays the matrix out as
// row-panels of kGemmMR rows, k-major within the panel, zero-padding the
// final partial panel. For the conv layers A is the weight matrix, so
// the packed form is the "repacked weight panel" that lives in the
// layer's ScratchArena and is rebuilt once per forward (weights move
// between forwards during training).
#pragma once

#include <cstddef>

#include "util/scratch_arena.hpp"

namespace s2a::nn {

/// Register micro-tile: MR rows of A against NR columns of B are held in
/// MR*NR scalar accumulators for the whole k sweep. 2x4 keeps the eight
/// accumulators plus the A broadcasts and B row inside the 16 SSE2 xmm
/// registers of baseline x86-64 — larger tiles (4x8 etc.) spill to the
/// stack and measured ~2x slower on the conv shapes this kernel serves.
inline constexpr int kGemmMR = 2;
inline constexpr int kGemmNR = 4;
/// k-panel depth: one MR-strip of packed A (kGemmKC * kGemmMR doubles =
/// 4 KiB) plus the touched B rows stay cache-resident per panel.
inline constexpr int kGemmKC = 256;
/// Column block: bounds the B working set of a panel sweep to
/// kGemmKC * kGemmNC doubles (2 MiB worst case; real conv stripes are
/// far narrower).
inline constexpr int kGemmNC = 1024;

/// Doubles needed by pack_a for an [m,k] matrix (includes padding of the
/// last partial MR panel).
std::size_t packed_a_size(int m, int k);

/// Packs row-major A ([m,k], row stride lda) into MR row-panels:
/// panel p holds rows [p*MR, p*MR+MR), stored k-major so the micro-kernel
/// reads MR contiguous values per k step. Rows beyond m are zero-filled.
void pack_a(const double* a, int lda, int m, int k, double* out);

/// C += A_packed * B with the determinism contract above.
/// B: row-major [k,n] with row stride ldb; C: row-major [m,n] with row
/// stride ldc, pre-initialized.
void gemm_packed(int m, int n, int k, const double* a_packed,
                 const double* b, int ldb, double* c, int ldc);

/// Convenience wrapper: packs A into `arena` (one alloc, freed by the
/// caller's next arena.reset()) and runs gemm_packed.
void gemm(int m, int n, int k, const double* a, int lda, const double* b,
          int ldb, double* c, int ldc, util::ScratchArena& arena);

/// out[j*rows + i] = a[i*cols + j]: materializes Aᵀ so the backward
/// kernels can feed gemm_packed operands whose reduction axis is
/// contiguous (e.g. Wᵀ for input gradients, xᵀ/gᵀ for Dense). A plain
/// copy — transposition changes element addresses, never values, so it
/// is exact.
void transpose(const double* a, int rows, int cols, double* out);

}  // namespace s2a::nn
