// Cache-blocked double-precision GEMM for the conv/deconv hot path,
// with runtime-dispatched SIMD micro-kernels.
//
// Computes C += A * B where A is [m,k], B is [k,n] (row-major, strided)
// and C is [m,n] (row-major, strided). C must be pre-initialized by the
// caller — the conv layers seed it with the bias so the whole
// bias-plus-dot-product chain is a single accumulation stream.
//
// Determinism contract (load-bearing — see docs/ARCHITECTURE.md):
// every C element accumulates its k products in ascending-k order, as
// one chain of rounded `c += a*b` updates starting from the caller's
// initial value. Cache blocking (KC panels), register tiling (MR x NR
// micro-kernel) and any column partitioning the caller layers on top
// only regroup *which elements* are computed together, never the order
// of additions within an element — so results are bit-identical to the
// naive triple loop and invariant under thread-count, tile-size, or
// kernel-ISA changes. k panels are visited in ascending order and the
// micro-kernel reloads C between panels, which keeps the per-element
// chain unbroken. The vector kernels keep the contract by issuing an
// explicit multiply then an explicit add per k step (their TUs are
// compiled with -ffp-contract=off so the pair is never re-fused); only
// the explicitly opt-in S2A_SIMD=avx2fma/avx512fma kernels fuse, and
// they are excluded from the default selection.
//
// Micro-tile geometry is per ISA, picked so the accumulator block plus
// the broadcast A value and the B row fit the register file with room
// to spare:
//   scalar  2x4   8 accumulators — fits the 16 SSE2 xmm registers of
//                 baseline x86-64; bigger scalar tiles spill.
//   avx2    4x8   8 ymm accumulators + 2 B + 1 A = 11 of 16 ymm.
//   avx512  8x16  16 zmm accumulators + 2 B + 1 A = 19 of 32 zmm; the
//                 tall M halves the passes over the (strided,
//                 prefetcher-hostile) B strip, and a 4x16 half tile
//                 keeps 4-row panels (the deconv phase GEMMs) on the
//                 vector path.
//   neon    4x8   16 float64x2 accumulators + 4 B + 1 A = 21 of 32.
// The scalar kernel is always compiled and is the bit-exactness oracle
// every other kernel is diffed against; util::active_simd_isa()
// (S2A_SIMD={auto,scalar,avx2,avx2fma,avx512,avx512fma,neon}) decides
// which family runs.
//
// A is consumed in packed form: pack_a() lays the matrix out as
// row-panels of gemm_mr() rows, k-major within the panel, zero-padding
// the final partial panel. The panel height follows the ACTIVE kernel,
// so never switch kernels between a pack_a() and the gemm_packed()
// consuming it. For the conv layers A is the weight matrix, so the
// packed form is the "repacked weight panel" that lives in the layer's
// ScratchArena and is rebuilt once per forward (weights move between
// forwards during training).
#pragma once

#include <cstddef>

#include "util/scratch_arena.hpp"

namespace s2a::nn {

/// Scalar micro-tile (the always-available fallback kernel and
/// bit-exactness oracle). Vector kernels use larger per-ISA tiles —
/// see gemm_mr()/gemm_nr() for the active geometry.
inline constexpr int kGemmMR = 2;
inline constexpr int kGemmNR = 4;
/// Upper bounds over every compiled-in kernel family; sizes the scalar
/// tail kernel's accumulator block.
inline constexpr int kGemmMaxMR = 8;
inline constexpr int kGemmMaxNR = 16;
/// k-panel depth: one MR-strip of packed A plus the touched B rows stay
/// cache-resident per panel.
inline constexpr int kGemmKC = 256;
/// Column block: bounds the B working set of a panel sweep to
/// kGemmKC * kGemmNC doubles (2 MiB worst case; real conv stripes are
/// far narrower).
inline constexpr int kGemmNC = 1024;

/// The active kernel's packed-panel row height / column tile width.
int gemm_mr();
int gemm_nr();
/// The active kernel family's name ("scalar", "avx2", "avx512", ...)
/// for bench headers and report payloads.
const char* gemm_kernel_name();

/// Doubles needed by pack_a for an [m,k] matrix (includes padding of the
/// last partial panel). Follows the active kernel's panel height.
std::size_t packed_a_size(int m, int k);

/// Packs row-major A ([m,k], row stride lda) into gemm_mr() row-panels:
/// panel p holds rows [p*MR, p*MR+MR), stored k-major so the micro-kernel
/// reads MR contiguous values per k step. Rows beyond m are zero-filled.
void pack_a(const double* a, int lda, int m, int k, double* out);

/// C += A_packed * B with the determinism contract above.
/// B: row-major [k,n] with row stride ldb; C: row-major [m,n] with row
/// stride ldc, pre-initialized.
void gemm_packed(int m, int n, int k, const double* a_packed,
                 const double* b, int ldb, double* c, int ldc);

/// Convenience wrapper: packs A into `arena` (one alloc, freed by the
/// caller's next arena.reset()) and runs gemm_packed.
void gemm(int m, int n, int k, const double* a, int lda, const double* b,
          int ldb, double* c, int ldc, util::ScratchArena& arena);

/// out[j*rows + i] = a[i*cols + j]: materializes Aᵀ so the backward
/// kernels can feed gemm_packed operands whose reduction axis is
/// contiguous (e.g. Wᵀ for input gradients, xᵀ/gᵀ for Dense). A plain
/// copy — transposition changes element addresses, never values, so it
/// is exact.
void transpose(const double* a, int rows, int cols, double* out);

}  // namespace s2a::nn
